# Build configuration for the BNS-GCN reproduction.
#
# GOAMD64 defaults to v3 (AVX2-era x86-64): the hand-written assembly
# kernels are CPUID-gated either way, but v3 lets the compiler use AVX/BMI
# and fused multiply-adds in the scalar tails and the rest of the runtime.
# CI proves the whole suite under both v1 and v3 (the bit-identity
# equivalence tests are within-build, so either mode is self-consistent);
# BENCH_hotpath.json records the measured v1→v3 delta. Override for baseline
# hardware with `make GOAMD64=v1 <target>`.
GOAMD64 ?= v3
export GOAMD64

GO ?= go

.PHONY: build test race bench bench-spmm bench-fused bench-epoch bench-serve bench-samplers vet release

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/tensor/ ./internal/comm/ ./internal/core/ ./internal/nn/ ./internal/graph/

# The kernel + aggregation benchmark set behind BENCH_hotpath.json.
bench-spmm:
	$(GO) test -run=xxx -bench='BenchmarkSpMM|BenchmarkMatMul$$' -benchtime=2s ./internal/tensor/

# Fused aggregate-project kernels against the unfused SpMM+copy+MatMul
# pipeline they replace (forward and the backward split sweep).
bench-fused:
	$(GO) test -run=xxx -bench='BenchmarkAggProj|BenchmarkBackwardSplit' -benchtime=2s ./internal/tensor/

bench-epoch:
	$(GO) test -run=xxx -bench='BenchmarkEpoch' -benchtime=100x ./internal/core/

bench: bench-spmm bench-fused bench-epoch

# The serving load test behind BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/bnsbench -exp serve -out BENCH_serve.json

# The epoch-sampling strategy matrix behind BENCH_samplers.json:
# BNS vs partition-local LADIES vs GraphSAINT-style subgraphs,
# over SAGE/GAT and k ∈ {2, 4}.
bench-samplers:
	$(GO) run ./cmd/bnsbench -exp samplers -out BENCH_samplers.json

# Release build: the shipped binaries (trainer, partitioner, bench harness,
# inference server).
release: vet build
	$(GO) build -o bin/bnsgcn ./cmd/bnsgcn
	$(GO) build -o bin/bnspart ./cmd/bnspart
	$(GO) build -o bin/bnsbench ./cmd/bnsbench
	$(GO) build -o bin/bnsserve ./cmd/bnsserve
