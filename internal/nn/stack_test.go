package nn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// stackLoss runs a 2-layer SAGE stack with an interleaved dropout in eval
// mode and returns the CE loss — used for a full-chain gradient check, which
// catches errors that single-layer checks cannot (e.g. wrong dH row ranges
// between layers).
func stackLoss(l1, l2 *SAGEConv, g *graph.Graph, h *tensor.Matrix, labels []int32, mask []bool, invDeg []float32) float64 {
	h1 := l1.Forward(g, h, g.N, invDeg)
	h2 := l2.Forward(g, h1, g.N, invDeg)
	loss, _ := SoftmaxCrossEntropy(h2, labels, mask)
	return loss
}

func TestTwoLayerStackGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(21)
	g := randGraph(rng, 9, 20)
	h := tensor.New(9, 3)
	tensor.GaussianInit(h, 1, rng)
	l1 := NewSAGEConv(3, 5, ReLUAct, rng)
	l2 := NewSAGEConv(5, 4, NoAct, rng)
	labels := []int32{0, 1, 2, 3, 0, 1, 2, 3, 0}
	mask := make([]bool, 9)
	for i := range mask {
		mask[i] = i%2 == 0
	}
	invDeg := InvDegrees(g)

	h1 := l1.Forward(g, h, g.N, invDeg)
	h2 := l2.Forward(g, h1, g.N, invDeg)
	_, dOut := SoftmaxCrossEntropy(h2, labels, mask)
	l1.ZeroGrad()
	l2.ZeroGrad()
	d1 := l2.Backward(dOut)
	_ = l1.Backward(d1)

	const eps = 1e-2
	check := func(name string, param, grad *tensor.Matrix, stride int) {
		for i := 0; i < len(param.Data); i += stride {
			orig := param.Data[i]
			param.Data[i] = orig + eps
			lp := stackLoss(l1, l2, g, h, labels, mask, invDeg)
			param.Data[i] = orig - eps
			lm := stackLoss(l1, l2, g, h, labels, mask, invDeg)
			param.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-float64(grad.Data[i])) > 3e-2*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: fd %v vs analytic %v", name, i, fd, grad.Data[i])
			}
		}
	}
	check("W1", l1.W, l1.DW, 4)
	check("B1", l1.B, l1.DB, 1)
	check("W2", l2.W, l2.DW, 3)
}

func TestGradAccumulationAcrossBackwardCalls(t *testing.T) {
	// Two backward passes without ZeroGrad must accumulate (the trainer
	// relies on Zero+single accumulate; pin the accumulate semantics).
	rng := tensor.NewRNG(22)
	g := randGraph(rng, 6, 12)
	h := tensor.New(6, 3)
	tensor.GaussianInit(h, 1, rng)
	l := NewSAGEConv(3, 2, NoAct, rng)
	out := l.Forward(g, h, 6, InvDegrees(g))
	dOut := tensor.New(out.Rows, out.Cols)
	dOut.Fill(1)
	l.ZeroGrad()
	l.Backward(dOut)
	once := l.DW.Clone()
	l.Backward(dOut)
	twice := l.DW.Clone()
	once.Scale(2)
	if !once.Equal(twice, 1e-5) {
		t.Fatal("gradients must accumulate across Backward calls")
	}
}

func TestDropoutZeroRateIsIdentityInTraining(t *testing.T) {
	rng := tensor.NewRNG(23)
	d := NewDropout(0, rng)
	x := tensor.New(4, 4)
	tensor.GaussianInit(x, 1, rng)
	out := d.Forward(x, true)
	if !out.Equal(x, 0) {
		t.Fatal("rate-0 dropout must be identity even in training")
	}
}

func TestNewDropoutRejectsBadRate(t *testing.T) {
	rng := tensor.NewRNG(24)
	for _, rate := range []float32{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("rate %v must panic", rate)
				}
			}()
			NewDropout(rate, rng)
		}()
	}
}

func TestSAGEConvRejectsBadShapes(t *testing.T) {
	rng := tensor.NewRNG(25)
	g := randGraph(rng, 4, 6)
	l := NewSAGEConv(3, 2, NoAct, rng)
	cases := []func(){
		func() { l.Forward(g, tensor.New(4, 5), 4, make([]float32, 4)) }, // wrong dim
		func() { l.Forward(g, tensor.New(5, 3), 5, make([]float32, 5)) }, // rows != g.N
		func() { l.Forward(g, tensor.New(4, 3), 5, make([]float32, 5)) }, // nOut > rows
		func() { l.Forward(g, tensor.New(4, 3), 4, make([]float32, 2)) }, // short invDeg
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d must panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestGATConvRejectsBadShapes(t *testing.T) {
	rng := tensor.NewRNG(26)
	g := randGraph(rng, 4, 6)
	l := NewGATConv(3, 2, NoAct, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Forward(g, tensor.New(4, 5), 4)
}

func TestUnflattenRejectsWrongLength(t *testing.T) {
	rng := tensor.NewRNG(27)
	layers := []Layer{NewSAGEConv(2, 2, NoAct, rng)}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnflattenGrads(layers, make([]float32, 3))
}
