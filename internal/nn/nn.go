// Package nn implements the neural-network layers used by the paper's
// models — GraphSAGE convolution with a mean aggregator (Eq. 1–2) and a GAT
// attention layer — plus dropout, activations and the two loss functions
// (softmax cross-entropy for single-label datasets, sigmoid BCE for the
// multi-label Yelp analogue). All backward passes are hand-derived and
// verified against finite differences in the tests.
//
// Layers operate on a local node space: rows [0, nOut) of the input feature
// matrix are the nodes whose outputs are produced (a partition's inner
// nodes), rows [nOut, H.Rows) are halo rows (boundary-node features received
// from other partitions). The adjacency used for aggregation is over this
// local space. In single-process full-graph training nOut == H.Rows.
package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Activation selects the nonlinearity applied by a layer.
type Activation int

const (
	// NoAct applies no nonlinearity (used before a loss that applies its own).
	NoAct Activation = iota
	// ReLUAct applies max(0, x).
	ReLUAct
)

func applyActivation(a Activation, pre *tensor.Matrix) *tensor.Matrix {
	out := tensor.New(pre.Rows, pre.Cols)
	applyActivationInto(out, a, pre)
	return out
}

// applyActivationInto writes act(pre) into dst, overwriting every element.
func applyActivationInto(dst *tensor.Matrix, a Activation, pre *tensor.Matrix) {
	switch a {
	case NoAct:
		copy(dst.Data, pre.Data)
	case ReLUAct:
		for i, v := range pre.Data {
			if v < 0 {
				dst.Data[i] = 0
			} else {
				dst.Data[i] = v
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// ensureMat returns a rows×cols matrix stored at *buf, reusing the existing
// storage when its capacity suffices. Contents are UNDEFINED; callers must
// fully overwrite or explicitly zero. This is how layers keep per-call
// scratch out of the allocator: shapes are stable across epochs, so after
// warm-up every call reuses the same backing arrays.
func ensureMat(buf **tensor.Matrix, rows, cols int) *tensor.Matrix {
	m := *buf
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		m = tensor.New(rows, cols)
		*buf = m
		return m
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// ensureF32 returns a length-n float32 slice stored at *buf with undefined
// contents, reusing capacity when possible.
func ensureF32(buf *[]float32, n int) []float32 {
	s := *buf
	if cap(s) < n {
		s = make([]float32, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// activationRow writes act(pre) into one row slice; elementwise, so
// bit-identical to applyActivationInto restricted to that row.
func activationRow(dst []float32, a Activation, pre []float32) {
	switch a {
	case NoAct:
		copy(dst, pre)
	case ReLUAct:
		for j, x := range pre {
			if x < 0 {
				dst[j] = 0
			} else {
				dst[j] = x
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// activationRows writes act(pre) into dst for the given rows only. The
// activations are elementwise, so per-row application is bit-identical to
// applyActivationInto restricted to those rows.
func activationRows(dst *tensor.Matrix, a Activation, pre *tensor.Matrix, rows []int32) {
	switch a {
	case NoAct:
		for _, v := range rows {
			copy(dst.Row(int(v)), pre.Row(int(v)))
		}
	case ReLUAct:
		for _, v := range rows {
			drow := dst.Row(int(v))
			for j, x := range pre.Row(int(v)) {
				if x < 0 {
					drow[j] = 0
				} else {
					drow[j] = x
				}
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// activationGrad multiplies dOut in place by act'(pre).
func activationGrad(a Activation, dOut, pre *tensor.Matrix) {
	switch a {
	case NoAct:
	case ReLUAct:
		for i, v := range pre.Data {
			if v <= 0 {
				dOut.Data[i] = 0
			}
		}
	default:
		panic(fmt.Sprintf("nn: unknown activation %d", a))
	}
}

// Layer is the common interface of trainable graph layers.
type Layer interface {
	// Params returns the trainable parameter matrices (shared storage).
	Params() []*tensor.Matrix
	// Grads returns the gradient matrices aligned with Params.
	Grads() []*tensor.Matrix
	// ZeroGrad clears all gradients.
	ZeroGrad()
}

// zeroGradAll clears each gradient matrix.
func zeroGradAll(gs []*tensor.Matrix) {
	for _, g := range gs {
		g.Zero()
	}
}

// ParamCount returns the total number of scalar parameters in layers.
func ParamCount(layers []Layer) int {
	n := 0
	for _, l := range layers {
		for _, p := range l.Params() {
			n += len(p.Data)
		}
	}
	return n
}

// FlattenGrads copies all layer gradients into one contiguous slice, in a
// deterministic order, for AllReduce.
func FlattenGrads(layers []Layer, out []float32) []float32 {
	out = out[:0]
	for _, l := range layers {
		out = appendMats(out, l.Grads())
	}
	return out
}

// FlattenMats copies the elements of each matrix into out (reset to length
// zero first) and returns it. With a pre-cached matrix slice and sufficient
// capacity it allocates nothing, unlike FlattenGrads whose per-layer Grads()
// calls build fresh slices.
func FlattenMats(mats []*tensor.Matrix, out []float32) []float32 {
	return appendMats(out[:0], mats)
}

func appendMats(out []float32, mats []*tensor.Matrix) []float32 {
	for _, g := range mats {
		out = append(out, g.Data...)
	}
	return out
}

// UnflattenGrads copies flat back into the layer gradient matrices,
// inverting FlattenGrads.
func UnflattenGrads(layers []Layer, flat []float32) {
	i := 0
	for _, l := range layers {
		i = consumeMats(l.Grads(), flat, i)
	}
	if i != len(flat) {
		panic(fmt.Sprintf("nn: UnflattenGrads consumed %d of %d", i, len(flat)))
	}
}

// UnflattenMats copies flat back into the matrices, inverting FlattenMats.
func UnflattenMats(mats []*tensor.Matrix, flat []float32) {
	if i := consumeMats(mats, flat, 0); i != len(flat) {
		panic(fmt.Sprintf("nn: UnflattenMats consumed %d of %d", i, len(flat)))
	}
}

func consumeMats(mats []*tensor.Matrix, flat []float32, i int) int {
	for _, g := range mats {
		copy(g.Data, flat[i:i+len(g.Data)])
		i += len(g.Data)
	}
	return i
}

// Dropout zeroes each element with probability Rate during training and
// scales survivors by 1/(1-Rate) (inverted dropout).
//
// Both passes can run in row chunks (ForwardBegin/ForwardRows and
// BackwardBegin/BackwardRows) so the pipelined epoch engine can drop a
// partition's inner rows while halo rows are still in flight. The mask RNG
// stream is consumed in element order, so forward chunks must be ascending,
// disjoint ranges covering [0, Rows) — then chunking draws exactly the masks
// a single full pass would, and results are bit-identical.
type Dropout struct {
	Rate float32
	rng  *tensor.RNG
	mask *tensor.Matrix // nil when the last Forward was identity

	fwdSrc *tensor.Matrix // input of the in-progress chunked forward
	bwdSrc *tensor.Matrix // dOut of the in-progress chunked backward

	maskBuf, outBuf, dxBuf *tensor.Matrix
}

// NewDropout returns a dropout layer with its own RNG stream.
func NewDropout(rate float32, rng *tensor.RNG) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng.Split()}
}

// RNGState returns the mask RNG's stream position. A resumed run must
// continue drawing masks exactly where the interrupted one stopped, so
// checkpoints persist this alongside the weights.
func (d *Dropout) RNGState() uint64 { return d.rng.State() }

// SetRNGState repositions the mask RNG stream (checkpoint restore).
func (d *Dropout) SetRNGState(s uint64) { d.rng.SetState(s) }

// Forward applies dropout when train is true; at inference it is identity.
// The returned matrix is layer-owned scratch, valid until the next Forward.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := d.ForwardBegin(x, train)
	d.ForwardRows(0, x.Rows)
	return out
}

// ForwardBegin starts a chunked training-mode pass over x and returns the
// output matrix the chunks will fill (x itself when the pass is identity).
// ForwardRows must then be called with ascending, disjoint row ranges
// covering [0, x.Rows); a row's output is valid once its range has run.
func (d *Dropout) ForwardBegin(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.Rate == 0 {
		d.mask = nil
		d.fwdSrc = nil
		return x
	}
	d.fwdSrc = x
	d.mask = ensureMat(&d.maskBuf, x.Rows, x.Cols)
	return ensureMat(&d.outBuf, x.Rows, x.Cols)
}

// ForwardRows draws masks for rows [r0, r1) and writes the matching output
// rows. A no-op when the pass is identity.
func (d *Dropout) ForwardRows(r0, r1 int) {
	if d.mask == nil {
		return
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	lo, hi := r0*d.fwdSrc.Cols, r1*d.fwdSrc.Cols
	mask, out := d.mask.Data, d.outBuf.Data
	for i, v := range d.fwdSrc.Data[lo:hi] {
		if d.rng.Float32() < keep {
			mask[lo+i] = scale
			out[lo+i] = v * scale
		} else {
			mask[lo+i] = 0
			out[lo+i] = 0
		}
	}
}

// MaskRows draws the dropout masks for rows [r0, r1) without producing
// output, consuming the RNG stream exactly as ForwardRows would. This
// decouples the stream-ordered mask draw from the value-dependent output
// write: the arrival-order epoch drain draws the halo rows' masks in
// ascending row order while the row values are still in flight, then fills
// each peer's rows with ApplyMaskedRows as they land — bit-identical to a
// single ascending ForwardRows pass over the same range. A no-op when the
// pass is identity.
func (d *Dropout) MaskRows(r0, r1 int) {
	if d.mask == nil {
		return
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	lo, hi := r0*d.fwdSrc.Cols, r1*d.fwdSrc.Cols
	mask := d.mask.Data
	for i := lo; i < hi; i++ {
		if d.rng.Float32() < keep {
			mask[i] = scale
		} else {
			mask[i] = 0
		}
	}
}

// ApplyMaskedRows writes the output rows listed in rows from the current
// input and the masks drawn by MaskRows. Elementwise (no RNG), so rows may
// be applied in any order; each row exactly once per pass, after its input
// values are in place. Writes v*scale for kept elements and 0 for dropped
// ones — exactly what ForwardRows writes — so the split pass is
// bit-identical. A no-op when the pass is identity.
func (d *Dropout) ApplyMaskedRows(rows []int32) {
	if d.mask == nil {
		return
	}
	cols := d.fwdSrc.Cols
	src, mask, out := d.fwdSrc.Data, d.mask.Data, d.outBuf.Data
	for _, r := range rows {
		lo := int(r) * cols
		for c := 0; c < cols; c++ {
			// Branch like ForwardRows does: a literal 0 for dropped
			// elements, not src*0 (which differs on ±0/NaN inputs).
			if m := mask[lo+c]; m != 0 {
				out[lo+c] = src[lo+c] * m
			} else {
				out[lo+c] = 0
			}
		}
	}
}

// Backward routes gradients through the last Forward's mask. The returned
// matrix is layer-owned scratch, valid until the next Backward.
func (d *Dropout) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	dx := d.BackwardBegin(dOut)
	d.BackwardRows(0, dOut.Rows)
	return dx
}

// BackwardBegin starts a chunked backward pass and returns the gradient
// matrix the chunks will fill (dOut itself when the last Forward was
// identity). The mask application is elementwise — no RNG — so backward
// chunks may run in any order; each row must be covered exactly once.
func (d *Dropout) BackwardBegin(dOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		d.bwdSrc = nil
		return dOut
	}
	d.bwdSrc = dOut
	return ensureMat(&d.dxBuf, dOut.Rows, dOut.Cols)
}

// BackwardRows applies the mask to gradient rows [r0, r1). A no-op when the
// pass is identity.
func (d *Dropout) BackwardRows(r0, r1 int) {
	if d.bwdSrc == nil {
		return
	}
	lo, hi := r0*d.bwdSrc.Cols, r1*d.bwdSrc.Cols
	dx, mask := d.dxBuf.Data, d.mask.Data
	for i, v := range d.bwdSrc.Data[lo:hi] {
		dx[lo+i] = v * mask[lo+i]
	}
}

// SoftmaxCrossEntropy computes mean softmax cross-entropy over the rows of
// logits selected by mask, and the gradient with respect to logits.
// Rows outside the mask contribute zero loss and zero gradient.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int32, mask []bool) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	return SoftmaxCrossEntropyInto(grad, logits, labels, mask), grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing the gradient into a
// caller-owned matrix (overwritten), for allocation-free training loops.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Matrix, labels []int32, mask []bool) float64 {
	if len(labels) < logits.Rows || len(mask) < logits.Rows {
		panic(fmt.Sprintf("nn: loss needs %d labels/mask, have %d/%d", logits.Rows, len(labels), len(mask)))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: loss grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	grad.Zero()
	count := 0
	for i := 0; i < logits.Rows; i++ {
		if mask[i] {
			count++
		}
	}
	if count == 0 {
		return 0
	}
	inv := 1 / float64(count)
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		row := logits.Row(i)
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - mx))
		}
		logZ := math.Log(sum) + float64(mx)
		y := labels[i]
		loss += (logZ - float64(row[y])) * inv
		g := grad.Row(i)
		for j, v := range row {
			p := math.Exp(float64(v) - logZ)
			g[j] = float32(p * inv)
		}
		g[y] -= float32(inv)
	}
	return loss
}

// SigmoidBCE computes mean binary cross-entropy with logits over masked rows
// against a 0/1 target matrix, averaged over rows and classes, plus the
// gradient with respect to logits.
func SigmoidBCE(logits, targets *tensor.Matrix, mask []bool) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	return SigmoidBCEInto(grad, logits, targets, mask), grad
}

// SigmoidBCEInto is SigmoidBCE writing the gradient into a caller-owned
// matrix (overwritten).
func SigmoidBCEInto(grad, logits, targets *tensor.Matrix, mask []bool) float64 {
	if logits.Rows != targets.Rows || logits.Cols != targets.Cols {
		panic(fmt.Sprintf("nn: BCE shape mismatch %dx%d vs %dx%d", logits.Rows, logits.Cols, targets.Rows, targets.Cols))
	}
	if grad.Rows != logits.Rows || grad.Cols != logits.Cols {
		panic(fmt.Sprintf("nn: BCE grad shape %dx%d, want %dx%d", grad.Rows, grad.Cols, logits.Rows, logits.Cols))
	}
	grad.Zero()
	count := 0
	for i := 0; i < logits.Rows; i++ {
		if mask[i] {
			count++
		}
	}
	if count == 0 {
		return 0
	}
	inv := 1 / (float64(count) * float64(logits.Cols))
	var loss float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		lrow, trow, grow := logits.Row(i), targets.Row(i), grad.Row(i)
		for j, x := range lrow {
			t := float64(trow[j])
			fx := float64(x)
			// log(1+exp(-|x|)) formulation for stability.
			loss += (math.Max(fx, 0) - fx*t + math.Log1p(math.Exp(-math.Abs(fx)))) * inv
			sig := 1 / (1 + math.Exp(-fx))
			grow[j] = float32((sig - t) * inv)
		}
	}
	return loss
}
