package nn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// The sparse-engine contract: installing an aggregation plan (SetAgg) must
// never change a single output bit — it only changes how the edge walks are
// blocked and parallelized. These tests drive every pass shape (one-shot,
// chunked forward, staged backward) with and without the plan and compare
// bitwise, on the same partition-shaped graphs as the chunked-pass tests.

// aggCase reuses the chunkedCases shapes plus denser/high-degree ones where
// the four-edge blocking always has full blocks and tails.
var aggCases = []chunkedCase{
	{"odd-prime", 13, 7, 5, 11, 3, 0.4},
	{"all-halo-dep", 17, 5, 4, 7, 5, 1.0},
	{"no-halo", 19, 0, 4, 5, 2, 0},
	{"dense", 29, 13, 17, 9, 6, 0.35},
	{"wide", 31, 11, 6, 23, 13, 0.3},
}

// TestSAGEAggEngineMatchesFallback: one-shot and staged passes with the
// SpMM engine installed must reproduce the scalar fallback bit for bit.
func TestSAGEAggEngineMatchesFallback(t *testing.T) {
	for _, tc := range aggCases {
		rng := tensor.NewRNG(301)
		g := localGraph(rng, tc.nIn, tc.nBd, tc.deg, tc.haloP)
		free, dep, slots := splitHalo(g, tc.nIn)
		h := randMat(rng, g.N, tc.inDim)
		invDeg := make([]float32, tc.nIn)
		for v := range invDeg {
			if d := g.Degree(int32(v)); d > 0 {
				invDeg[v] = 1 / float32(d)
			}
		}
		dOut := randMat(rng, tc.nIn, tc.outDim)

		ref := NewSAGEConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))
		eng := NewSAGEConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))
		eng.SetAgg(graph.NewAggIndex(g))

		wantOut := ref.Forward(g, h, tc.nIn, invDeg)
		wantDH := ref.Backward(dOut)
		gotOut := eng.Forward(g, h, tc.nIn, invDeg)
		gotDH := eng.Backward(dOut)
		sameBits(t, tc.name+"/forward", gotOut.Data, wantOut.Data)
		sameBits(t, tc.name+"/backward", gotDH.Data, wantDH.Data)
		sameBits(t, tc.name+"/DW", eng.DW.Data, ref.DW.Data)
		sameBits(t, tc.name+"/DB", eng.DB.Data, ref.DB.Data)

		// Staged passes with the engine: chunked forward over the halo
		// split, staged backward — still bit-identical to the fallback
		// one-shot.
		chk := NewSAGEConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))
		chk.SetAgg(graph.NewAggIndex(g))
		got := chk.ForwardBegin(g, h, tc.nIn, invDeg)
		chk.ForwardPrep(0, tc.nIn)
		chk.ForwardRows(free)
		chk.ForwardPrep(tc.nIn, g.N)
		chk.ForwardRows(dep)
		sameBits(t, tc.name+"/chunked-forward", got.Data, wantOut.Data)
		chk.BackwardBegin(dOut)
		gotStaged := chk.BackwardHalo(dep, slots, tc.nIn)
		chk.BackwardFinish(free, tc.nIn)
		inner := make([]int32, tc.nIn)
		for v := range inner {
			inner[v] = int32(v)
		}
		sameRowsBits(t, tc.name+"/staged-inner", gotStaged, wantDH, inner)
		sameRowsBits(t, tc.name+"/staged-halo", gotStaged, wantDH, slots)
		sameBits(t, tc.name+"/staged-DW", chk.DW.Data, ref.DW.Data)
	}
}

// TestGATAggEngineMatchesFallback: the chunk-parallel attention sweep must
// reproduce the serial sweep bit for bit.
func TestGATAggEngineMatchesFallback(t *testing.T) {
	for _, tc := range aggCases {
		rng := tensor.NewRNG(302)
		g := localGraph(rng, tc.nIn, tc.nBd, tc.deg, tc.haloP)
		h := randMat(rng, g.N, tc.inDim)
		dOut := randMat(rng, tc.nIn, tc.outDim)

		ref := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(6))
		eng := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(6))
		eng.SetAgg(graph.NewAggIndex(g))

		wantOut := ref.Forward(g, h, tc.nIn)
		wantDH := ref.Backward(dOut)
		gotOut := eng.Forward(g, h, tc.nIn)
		gotDH := eng.Backward(dOut)
		sameBits(t, tc.name+"/forward", gotOut.Data, wantOut.Data)
		sameBits(t, tc.name+"/backward", gotDH.Data, wantDH.Data)
		sameBits(t, tc.name+"/DW", eng.DW.Data, ref.DW.Data)
		sameBits(t, tc.name+"/DA1", eng.DA1.Data, ref.DA1.Data)
		sameBits(t, tc.name+"/DA2", eng.DA2.Data, ref.DA2.Data)
	}
}

// isolatedGraph builds a local graph where nodes isoA (inner) and the last
// halo row are completely isolated, the other inner rows draw deg neighbors.
func isolatedGraph(rng *tensor.RNG, nIn, nBd, deg int, isolated map[int]bool) *graph.Graph {
	n := nIn + nBd
	indptr := make([]int64, n+1)
	var indices []int32
	for v := 0; v < nIn; v++ {
		indptr[v] = int64(len(indices))
		if isolated[v] {
			continue
		}
		for e := 0; e < deg; e++ {
			u := rng.Intn(n - 1)
			if isolated[u] || u == v {
				u = (v + 1) % nIn // deterministic non-isolated fallback
				if isolated[u] {
					continue
				}
			}
			indices = append(indices, int32(u))
		}
	}
	for v := nIn; v <= n; v++ {
		indptr[v] = int64(len(indices))
	}
	return &graph.Graph{N: n, Indptr: indptr, Indices: indices}
}

// TestSAGEZeroDegreeNodesFullPass drives zero-degree and isolated nodes
// through the full forward+backward: the aggregate half must be exactly
// zero, the output reduce to σ(W·[0|h_v]+b), parameter gradients must pass
// a finite-difference check, and nothing may go NaN — with and without the
// aggregation plan, bitwise equal.
func TestSAGEZeroDegreeNodesFullPass(t *testing.T) {
	const nIn, nBd, deg, inDim, outDim = 11, 4, 3, 5, 3
	iso := map[int]bool{2: true, 7: true}
	rng := tensor.NewRNG(777)
	g := isolatedGraph(rng, nIn, nBd, deg, iso)
	h := randMat(rng, g.N, inDim)
	invDeg := make([]float32, nIn)
	for v := range invDeg {
		if d := g.Degree(int32(v)); d > 0 {
			invDeg[v] = 1 / float32(d)
		}
	}
	if invDeg[2] != 0 || invDeg[7] != 0 {
		t.Fatal("test graph: nodes 2 and 7 must be isolated")
	}

	labels := make([]int32, nIn)
	mask := make([]bool, nIn)
	for v := 0; v < nIn; v++ {
		labels[v] = int32(v % outDim)
		mask[v] = true
	}

	for _, withAgg := range []bool{false, true} {
		l := NewSAGEConv(inDim, outDim, ReLUAct, tensor.NewRNG(9))
		if withAgg {
			l.SetAgg(graph.NewAggIndex(g))
		}
		out := l.Forward(g, h, nIn, invDeg)
		// Isolated node: aggregate half is zero, so out = σ(W₂·h_v + b)
		// where W₂ is the lower half of W.
		for _, v := range []int{2, 7} {
			for j := 0; j < outDim; j++ {
				var s float32
				for c := 0; c < inDim; c++ {
					s += h.At(v, c) * l.W.At(inDim+c, j)
				}
				s += l.B.At(0, j)
				if s < 0 {
					s = 0
				}
				if math.Abs(float64(out.At(v, j)-s)) > 1e-5 {
					t.Fatalf("agg=%v isolated node %d col %d: out %v, want self-only %v", withAgg, v, j, out.At(v, j), s)
				}
			}
		}
		for _, x := range out.Data {
			if math.IsNaN(float64(x)) {
				t.Fatalf("agg=%v: NaN in forward output", withAgg)
			}
		}

		// Finite-difference gradient check of W and the input through the
		// full masked loss, isolated nodes included in the mask.
		loss := func() float64 {
			o := l.Forward(g, h, nIn, invDeg)
			ls, _ := SoftmaxCrossEntropy(o, labels, mask)
			return ls
		}
		l.ZeroGrad()
		out = l.Forward(g, h, nIn, invDeg)
		ls, dOut := SoftmaxCrossEntropy(out, labels, mask)
		_ = ls
		dH := l.Backward(dOut)
		const eps = 1e-3
		checkFD := func(name string, param []float32, grad []float32, idx int) {
			t.Helper()
			old := param[idx]
			param[idx] = old + eps
			up := loss()
			param[idx] = old - eps
			down := loss()
			param[idx] = old
			fd := (up - down) / (2 * eps)
			if diff := math.Abs(fd - float64(grad[idx])); diff > 2e-3*(1+math.Abs(fd)) {
				t.Fatalf("agg=%v %s[%d]: analytic %v vs fd %v", withAgg, name, idx, grad[idx], fd)
			}
		}
		// Probe the self-half rows of W feeding the isolated nodes, a few
		// aggregate-half entries, the bias, and the isolated nodes' input
		// rows (whose gradient flows only through the self term).
		for _, idx := range []int{0, inDim*outDim + 1, (2*inDim - 1) * outDim} {
			checkFD("W", l.W.Data, l.DW.Data, idx)
		}
		checkFD("B", l.B.Data, l.DB.Data, 1)
		checkFD("h", h.Data, dH.Data, 2*inDim+1) // input row of isolated node 2
		for _, x := range dH.Data {
			if math.IsNaN(float64(x)) {
				t.Fatalf("agg=%v: NaN in input gradient", withAgg)
			}
		}
	}
}

// TestGATZeroDegreeNodesFullPass: isolated nodes attend only to themselves
// (α = 1), so out = σ(W·h_v), and the full forward+backward stays finite
// and passes a finite-difference probe — with and without the plan.
func TestGATZeroDegreeNodesFullPass(t *testing.T) {
	const nIn, nBd, deg, inDim, outDim = 9, 3, 3, 4, 3
	iso := map[int]bool{0: true, 5: true}
	rng := tensor.NewRNG(778)
	g := isolatedGraph(rng, nIn, nBd, deg, iso)
	h := randMat(rng, g.N, inDim)
	labels := make([]int32, nIn)
	mask := make([]bool, nIn)
	for v := 0; v < nIn; v++ {
		labels[v] = int32(v % outDim)
		mask[v] = true
	}

	for _, withAgg := range []bool{false, true} {
		l := NewGATConv(inDim, outDim, ReLUAct, tensor.NewRNG(11))
		if withAgg {
			l.SetAgg(graph.NewAggIndex(g))
		}
		out := l.Forward(g, h, nIn)
		for _, v := range []int{0, 5} {
			for j := 0; j < outDim; j++ {
				var s float32
				for c := 0; c < inDim; c++ {
					s += h.At(v, c) * l.W.At(c, j)
				}
				if s < 0 {
					s = 0
				}
				if math.Abs(float64(out.At(v, j)-s)) > 1e-5 {
					t.Fatalf("agg=%v isolated node %d col %d: out %v, want self-attention %v", withAgg, v, j, out.At(v, j), s)
				}
			}
		}

		loss := func() float64 {
			o := l.Forward(g, h, nIn)
			ls, _ := SoftmaxCrossEntropy(o, labels, mask)
			return ls
		}
		l.ZeroGrad()
		out = l.Forward(g, h, nIn)
		_, dOut := SoftmaxCrossEntropy(out, labels, mask)
		dH := l.Backward(dOut)
		const eps = 1e-3
		for _, probe := range []struct {
			name  string
			param []float32
			grad  []float32
			idx   int
		}{
			{"W", l.W.Data, l.DW.Data, 1},
			{"A1", l.A1.Data, l.DA1.Data, 0},
			{"A2", l.A2.Data, l.DA2.Data, 2},
			{"h", h.Data, dH.Data, 0}, // input row of isolated node 0
		} {
			old := probe.param[probe.idx]
			probe.param[probe.idx] = old + eps
			up := loss()
			probe.param[probe.idx] = old - eps
			down := loss()
			probe.param[probe.idx] = old
			fd := (up - down) / (2 * eps)
			if diff := math.Abs(fd - float64(probe.grad[probe.idx])); diff > 2e-3*(1+math.Abs(fd)) {
				t.Fatalf("agg=%v %s[%d]: analytic %v vs fd %v", withAgg, probe.name, probe.idx, probe.grad[probe.idx], fd)
			}
		}
		for _, x := range dH.Data {
			if math.IsNaN(float64(x)) {
				t.Fatalf("agg=%v: NaN in input gradient", withAgg)
			}
		}
	}
}
