package nn

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// GATConv is a single-head graph attention layer (Veličković et al., 2017),
// used by the paper's Table 10 to show BNS-GCN generalizes beyond
// GraphSAGE:
//
//	e_vu = LeakyReLU(a₁·(W h_v) + a₂·(W h_u))   for u ∈ N(v) ∪ {v}
//	α_v· = softmax(e_v·)
//	z_v  = σ( Σ_u α_vu (W h_u) )
//
// Self-attention is always included so isolated nodes still produce output.
type GATConv struct {
	InDim, OutDim int
	Act           Activation
	NegSlope      float32 // LeakyReLU slope; default 0.2

	W   *tensor.Matrix // InDim × OutDim
	A1  *tensor.Matrix // 1 × OutDim (attention on destination v)
	A2  *tensor.Matrix // 1 × OutDim (attention on source u)
	DW  *tensor.Matrix
	DA1 *tensor.Matrix
	DA2 *tensor.Matrix

	// agg, when set, provides the edge-balanced chunk index the one-shot
	// Forward parallelizes its per-node attention sweep over (output rows
	// are fully independent, so chunk scheduling cannot change bits). The
	// backward keeps its node-serial sweep: its dWh/da1/da2 accumulations
	// are order-sensitive across nodes.
	agg *graph.AggIndex

	// Caches.
	g     *graph.Graph
	nOut  int
	nAll  int
	h     *tensor.Matrix
	wh    *tensor.Matrix // nAll × OutDim
	alpha [][]float32    // per output node: attention over (self + neighbors)
	eRaw  [][]float32    // pre-LeakyReLU attention logits
	pre   *tensor.Matrix

	// Layer-owned scratch: alpha/eRaw subslice the flat alphaBuf/rawBuf
	// (one segment per output node), and the per-node e/raw allocations of
	// the unoptimized layer are gone. Reused across calls; capacity grows
	// to the largest epoch subgraph seen.
	alphaBuf, rawBuf, s1, s2, dAlpha, da1, da2 []float32
	out, dPre, dWh, dWScratch, dH              *tensor.Matrix
}

// NewGATConv creates a single-head GAT layer with Xavier initialization.
func NewGATConv(inDim, outDim int, act Activation, rng *tensor.RNG) *GATConv {
	l := &GATConv{
		InDim:    inDim,
		OutDim:   outDim,
		Act:      act,
		NegSlope: 0.2,
		W:        tensor.New(inDim, outDim),
		A1:       tensor.New(1, outDim),
		A2:       tensor.New(1, outDim),
		DW:       tensor.New(inDim, outDim),
		DA1:      tensor.New(1, outDim),
		DA2:      tensor.New(1, outDim),
	}
	tensor.XavierInit(l.W, inDim, outDim, rng)
	tensor.XavierInit(l.A1, outDim, 1, rng)
	tensor.XavierInit(l.A2, outDim, 1, rng)
	return l
}

// Params implements Layer.
func (l *GATConv) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.A1, l.A2} }

// Grads implements Layer.
func (l *GATConv) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.DW, l.DA1, l.DA2} }

// ZeroGrad implements Layer.
func (l *GATConv) ZeroGrad() { zeroGradAll(l.Grads()) }

// SetAgg installs the aggregation plan for subsequent passes (GAT uses only
// its chunk index; nil reverts to the serial sweep with identical bits).
func (l *GATConv) SetAgg(ai *graph.AggIndex) { l.agg = ai }

// Forward computes attention outputs for the first nOut rows of h. With an
// aggregation plan the per-node sweep runs chunk-parallel: forwardNode
// writes only node-owned state (the node's flat alpha/raw segment and its
// pre/out rows) and reads only the shared prep arrays, so any chunk
// schedule produces the serial sweep's bits.
func (l *GATConv) Forward(g *graph.Graph, h *tensor.Matrix, nOut int) *tensor.Matrix {
	out := l.ForwardBegin(g, h, nOut)
	l.ForwardPrep(0, h.Rows)
	if l.agg != nil && len(l.agg.Chunks) > 2 && tensor.Parallelism() > 1 {
		chunks := l.agg.Chunks
		tensor.ParallelChunks(len(chunks)-1, func(c int) {
			lo, hi := int(chunks[c]), int(chunks[c+1])
			if hi > nOut {
				hi = nOut
			}
			for v := lo; v < hi; v++ {
				l.forwardNode(v)
			}
		})
		return out
	}
	for v := 0; v < nOut; v++ {
		l.forwardNode(v)
	}
	return out
}

// ForwardBegin starts a chunked forward pass: it validates shapes, installs
// the backward caches, and returns the output matrix whose rows ForwardRows
// will fill. ForwardPrep must cover a node's feature row before any output
// row that attends to it runs. Chunking cannot change results — every output
// row is produced by the same per-node computation in the same flat buffer
// slot — so any duplicate-free partition of [0, nOut) reproduces Forward bit
// for bit; the chunked-pass property tests pin this.
func (l *GATConv) ForwardBegin(g *graph.Graph, h *tensor.Matrix, nOut int) *tensor.Matrix {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GATConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows || nOut > h.Rows {
		panic(fmt.Sprintf("nn: GATConv graph %d nodes, features %d rows, nOut %d", g.N, h.Rows, nOut))
	}
	l.g, l.nOut, l.nAll, l.h = g, nOut, h.Rows, h
	ensureMat(&l.wh, h.Rows, l.OutDim)
	ensureF32(&l.s1, h.Rows)
	ensureF32(&l.s2, h.Rows)
	// One attention entry per (node, self∪neighbor) pair, packed flat.
	total := nOut + int(g.Indptr[nOut]-g.Indptr[0])
	ensureF32(&l.alphaBuf, total)
	ensureF32(&l.rawBuf, total)
	if cap(l.alpha) < nOut {
		l.alpha = make([][]float32, nOut)
		l.eRaw = make([][]float32, nOut)
	}
	l.alpha = l.alpha[:nOut]
	l.eRaw = l.eRaw[:nOut]
	ensureMat(&l.pre, nOut, l.OutDim)
	return ensureMat(&l.out, nOut, l.OutDim)
}

// ForwardPrep computes Wh and the attention scores s1/s2 for feature rows
// [r0, r1). Rows are independent, so ranges may run in any order; each row
// must be covered exactly once per pass.
func (l *GATConv) ForwardPrep(r0, r1 int) {
	tensor.MatMulRange(l.wh, l.h, l.W, r0, r1)
	a1 := l.A1.Row(0)
	a2 := l.A2.Row(0)
	for u := r0; u < r1; u++ {
		l.s1[u] = tensor.Dot(a1, l.wh.Row(u))
		l.s2[u] = tensor.Dot(a2, l.wh.Row(u))
	}
}

// ForwardPrepRows is ForwardPrep for an explicit row list: the arrival-order
// drain preps exactly one peer's halo slots the moment that peer's payload
// lands. Per row it runs the same kernels as the range form
// (tensor.MatMulRows reproduces MatMulRange row for row), so any
// duplicate-free cover of the rows a pass reads is bit-identical.
func (l *GATConv) ForwardPrepRows(rows []int32) {
	tensor.MatMulRows(l.wh, l.h, l.W, rows)
	a1 := l.A1.Row(0)
	a2 := l.A2.Row(0)
	for _, u32 := range rows {
		u := int(u32)
		l.s1[u] = tensor.Dot(a1, l.wh.Row(u))
		l.s2[u] = tensor.Dot(a2, l.wh.Row(u))
	}
}

// forwardRowsSeg is the segment size ForwardRows hands to pool workers.
// Any list longer than one segment parallelizes — typically the halo-free
// bucket, but also a large per-peer drain bucket; both are safe because
// every input row a listed output row reads is in place before the call
// and rows write disjoint state.
const forwardRowsSeg = 64

// ForwardRows computes the output rows listed in rows (each row of [0, nOut)
// must appear exactly once across all calls of one pass). Rows are
// independent (see Forward), so large lists — the pipelined engine's
// halo-free bucket — run segment-parallel with unchanged bits.
func (l *GATConv) ForwardRows(rows []int32) {
	if len(rows) > forwardRowsSeg && tensor.Parallelism() > 1 {
		nSeg := (len(rows) + forwardRowsSeg - 1) / forwardRowsSeg
		tensor.ParallelChunks(nSeg, func(c int) {
			lo := c * forwardRowsSeg
			hi := lo + forwardRowsSeg
			if hi > len(rows) {
				hi = len(rows)
			}
			for _, v := range rows[lo:hi] {
				l.forwardNode(int(v))
			}
		})
		return
	}
	for _, v := range rows {
		l.forwardNode(int(v))
	}
}

// forwardNode computes attention and the activated output for node v. Its
// alpha/raw segment lives at the deterministic flat offset
// v + Indptr[v]−Indptr[0] — the packing a sequential full pass produces — so
// chunk order cannot move entries.
func (l *GATConv) forwardNode(v int) {
	g := l.g
	nbrs := g.Neighbors(int32(v))
	k := len(nbrs) + 1 // self first, then neighbors
	off := v + int(g.Indptr[v]-g.Indptr[0])
	e := l.alphaBuf[off : off+k]
	raw := l.rawBuf[off : off+k]
	s1, s2 := l.s1, l.s2
	// Per-edge coefficient fill: e_i = s1[v] + s2[u_i], self first.
	e[0] = s1[v] + s2[v]
	s1v := s1[v]
	en := e[1:]
	for i, u := range nbrs {
		en[i] = s1v + s2[u]
	}
	copy(raw, e)
	l.eRaw[v] = raw
	for i, x := range e {
		if x < 0 {
			e[i] = x * l.NegSlope
		}
	}
	// Softmax over k entries.
	mx := e[0]
	for _, x := range e {
		if x > mx {
			mx = x
		}
	}
	var sum float64
	for i, x := range e {
		ex := math.Exp(float64(x - mx))
		e[i] = float32(ex)
		sum += ex
	}
	inv := float32(1 / sum)
	for i := range e {
		e[i] *= inv
	}
	l.alpha[v] = e
	// z_v = Σ α · Wh: self term, then the attention-weighted neighbor
	// gather on the engine's blocked axpy (bit-identical to sequential
	// per-edge Axpy).
	row := l.pre.Row(v)
	self := l.wh.Row(v)
	for j, x := range self {
		row[j] = e[0] * x
	}
	tensor.GatherAxpy(row, l.wh, nbrs, e[1:])
	activationRow(l.out.Row(v), l.Act, row)
}

// Backward accumulates parameter gradients and returns the gradient with
// respect to the full input matrix (nAll × InDim).
func (l *GATConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	l.BackwardBegin(dOut)
	for v := 0; v < l.nOut; v++ {
		l.backwardNode(v, 0, l.nAll, true)
	}
	l.backwardParams()
	dH := l.dH
	tensor.MatMulTransB(dH, l.dWh, l.W)
	return dH
}

// BackwardBegin starts a staged backward pass: it computes the
// pre-activation gradient for every output row and zeroes the Wh-gradient
// and attention-vector accumulators. The staged schedule (BackwardBegin →
// BackwardHalo → BackwardFinish) reproduces the one-shot Backward bit for
// bit: halo rows of dWh receive contributions only from outputs with a halo
// neighbor, sweeps are destination-filtered so every += lands on each
// destination row (and on da1/da2) in exactly the order of the unsplit
// sweep, and the dH matmuls are per-row stable.
func (l *GATConv) BackwardBegin(dOut *tensor.Matrix) {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: GATConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)
	dWh := ensureMat(&l.dWh, l.nAll, l.OutDim)
	dWh.Zero()
	da1 := ensureF32(&l.da1, l.OutDim)
	da2 := ensureF32(&l.da2, l.OutDim)
	for j := range da1 {
		da1[j] = 0
		da2[j] = 0
	}
	ensureMat(&l.dH, l.nAll, l.InDim) // rows computed stage by stage
}

// BackwardHalo completes the listed halo rows of the input gradient so they
// can be sent while the rest of the backward pass runs. haloSrc must list,
// in ascending order, every output row with at least one neighbor ≥ nIn;
// haloSlots lists the halo rows whose gradients are needed (the sampled
// boundary slots). The returned matrix is the shared input-gradient
// accumulator: the haloSlots rows are final, rows < nIn complete only after
// BackwardFinish, and unlisted halo rows stay undefined.
func (l *GATConv) BackwardHalo(haloSrc, haloSlots []int32, nIn int) *tensor.Matrix {
	for _, v := range haloSrc {
		l.backwardNode(int(v), nIn, l.nAll, false)
	}
	tensor.MatMulTransBRows(l.dH, l.dWh, l.W, haloSlots)
	return l.dH
}

// BackwardFinish accumulates DW/DA1/DA2 and completes the inner rows
// [0, nIn) of the input gradient. The sweep revisits every output row (the
// attention backward of a halo-dependent row also feeds inner destinations),
// so freeSrc is unused by GAT — SAGE needs it.
func (l *GATConv) BackwardFinish(freeSrc []int32, nIn int) *tensor.Matrix {
	for v := 0; v < l.nOut; v++ {
		l.backwardNode(v, 0, nIn, true)
	}
	l.backwardParams()
	tensor.MatMulTransBRange(l.dH, l.dWh, l.W, 0, nIn)
	return l.dH
}

// backwardNode runs the attention backward for output node v, applying
// gradient writes only to dWh destination rows u with destLo ≤ u < destHi
// and accumulating da1/da2 only when accumA is set. Splitting one sweep into
// destination-filtered sweeps preserves, for every destination row and for
// da1/da2, the exact += order of the unfiltered sweep (the staged schedule
// recomputes dα for halo-dependent rows, which is pure recomputation of the
// same values). The inner loops run on the engine primitives: dα is a
// four-blocked gather of dots (dz loaded once per four neighbor rows), and
// every accumulation row op is a SIMD Axpy.
func (l *GATConv) backwardNode(v, destLo, destHi int, accumA bool) {
	nbrs := l.g.Neighbors(int32(v))
	alpha := l.alpha[v]
	raw := l.eRaw[v]
	dz := l.dPre.Row(v)
	k := len(alpha)

	// dα_i = dz · Wh_{u_i} (self first), then dWh_{u_i} += α_i dz in the
	// same self-then-ascending-i order as the fused sweep it replaces.
	dAlpha := ensureF32(&l.dAlpha, k)
	dAlpha[0] = tensor.Dot(dz, l.wh.Row(v))
	tensor.GatherDots(dAlpha[1:], dz, l.wh, nbrs)
	if v >= destLo && v < destHi {
		tensor.Axpy(l.dWh.Row(v), dz, alpha[0])
	}
	for i, u32 := range nbrs {
		if u := int(u32); u >= destLo && u < destHi {
			tensor.Axpy(l.dWh.Row(u), dz, alpha[i+1])
		}
	}
	// Softmax backward: de_i = α_i (dα_i − Σ_j α_j dα_j). The inner product
	// is a per-edge dot over the attention row; every computation of it goes
	// through the same SIMD Dot, so the staged recomputation for
	// halo-dependent rows reproduces identical bits.
	inner := tensor.Dot(alpha, dAlpha)
	a1 := l.A1.Row(0)
	a2 := l.A2.Row(0)
	whv := l.wh.Row(v)
	for i := 0; i < k; i++ {
		de := alpha[i] * (dAlpha[i] - inner)
		// LeakyReLU backward.
		if raw[i] < 0 {
			de *= l.NegSlope
		}
		// e_i = a1·Wh_v + a2·Wh_{u_i}.
		u := v
		if i > 0 {
			u = int(nbrs[i-1])
		}
		if accumA {
			tensor.Axpy(l.da1, whv, de)
			tensor.Axpy(l.da2, l.wh.Row(u), de)
		}
		if v >= destLo && v < destHi {
			tensor.Axpy(l.dWh.Row(v), a1, de)
		}
		if u >= destLo && u < destHi {
			tensor.Axpy(l.dWh.Row(u), a2, de)
		}
	}
}

// backwardParams folds the per-pass accumulators into DA1/DA2 and DW.
func (l *GATConv) backwardParams() {
	for j := 0; j < l.OutDim; j++ {
		l.DA1.Data[j] += l.da1[j]
		l.DA2.Data[j] += l.da2[j]
	}
	dW := ensureMat(&l.dWScratch, l.InDim, l.OutDim)
	tensor.MatMulTransA(dW, l.h, l.dWh)
	l.DW.Add(dW)
}
