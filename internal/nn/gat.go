package nn

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// GATConv is a single-head graph attention layer (Veličković et al., 2017),
// used by the paper's Table 10 to show BNS-GCN generalizes beyond
// GraphSAGE:
//
//	e_vu = LeakyReLU(a₁·(W h_v) + a₂·(W h_u))   for u ∈ N(v) ∪ {v}
//	α_v· = softmax(e_v·)
//	z_v  = σ( Σ_u α_vu (W h_u) )
//
// Self-attention is always included so isolated nodes still produce output.
type GATConv struct {
	InDim, OutDim int
	Act           Activation
	NegSlope      float32 // LeakyReLU slope; default 0.2

	W   *tensor.Matrix // InDim × OutDim
	A1  *tensor.Matrix // 1 × OutDim (attention on destination v)
	A2  *tensor.Matrix // 1 × OutDim (attention on source u)
	DW  *tensor.Matrix
	DA1 *tensor.Matrix
	DA2 *tensor.Matrix

	// Caches.
	g     *graph.Graph
	nOut  int
	nAll  int
	h     *tensor.Matrix
	wh    *tensor.Matrix // nAll × OutDim
	alpha [][]float32    // per output node: attention over (self + neighbors)
	eRaw  [][]float32    // pre-LeakyReLU attention logits
	pre   *tensor.Matrix

	// Layer-owned scratch: alpha/eRaw subslice the flat alphaBuf/rawBuf
	// (one segment per output node), and the per-node e/raw allocations of
	// the unoptimized layer are gone. Reused across calls; capacity grows
	// to the largest epoch subgraph seen.
	alphaBuf, rawBuf, s1, s2, dAlpha, da1, da2 []float32
	out, dPre, dWh, dWScratch, dH              *tensor.Matrix
}

// NewGATConv creates a single-head GAT layer with Xavier initialization.
func NewGATConv(inDim, outDim int, act Activation, rng *tensor.RNG) *GATConv {
	l := &GATConv{
		InDim:    inDim,
		OutDim:   outDim,
		Act:      act,
		NegSlope: 0.2,
		W:        tensor.New(inDim, outDim),
		A1:       tensor.New(1, outDim),
		A2:       tensor.New(1, outDim),
		DW:       tensor.New(inDim, outDim),
		DA1:      tensor.New(1, outDim),
		DA2:      tensor.New(1, outDim),
	}
	tensor.XavierInit(l.W, inDim, outDim, rng)
	tensor.XavierInit(l.A1, outDim, 1, rng)
	tensor.XavierInit(l.A2, outDim, 1, rng)
	return l
}

// Params implements Layer.
func (l *GATConv) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.A1, l.A2} }

// Grads implements Layer.
func (l *GATConv) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.DW, l.DA1, l.DA2} }

// ZeroGrad implements Layer.
func (l *GATConv) ZeroGrad() { zeroGradAll(l.Grads()) }

// Forward computes attention outputs for the first nOut rows of h.
func (l *GATConv) Forward(g *graph.Graph, h *tensor.Matrix, nOut int) *tensor.Matrix {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: GATConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows || nOut > h.Rows {
		panic(fmt.Sprintf("nn: GATConv graph %d nodes, features %d rows, nOut %d", g.N, h.Rows, nOut))
	}
	l.g, l.nOut, l.nAll, l.h = g, nOut, h.Rows, h

	wh := ensureMat(&l.wh, h.Rows, l.OutDim)
	tensor.MatMul(wh, h, l.W)

	a1 := l.A1.Row(0)
	a2 := l.A2.Row(0)
	// s1[u] = a1·Wh_u, s2[u] = a2·Wh_u precomputed for all nodes.
	s1 := ensureF32(&l.s1, h.Rows)
	s2 := ensureF32(&l.s2, h.Rows)
	for u := 0; u < h.Rows; u++ {
		s1[u] = tensor.Dot(a1, wh.Row(u))
		s2[u] = tensor.Dot(a2, wh.Row(u))
	}

	// One attention entry per (node, self∪neighbor) pair, packed flat.
	total := nOut + int(g.Indptr[nOut]-g.Indptr[0])
	flatE := ensureF32(&l.alphaBuf, total)
	flatRaw := ensureF32(&l.rawBuf, total)
	if cap(l.alpha) < nOut {
		l.alpha = make([][]float32, nOut)
		l.eRaw = make([][]float32, nOut)
	}
	l.alpha = l.alpha[:nOut]
	l.eRaw = l.eRaw[:nOut]

	pre := ensureMat(&l.pre, nOut, l.OutDim)
	off := 0
	for v := 0; v < nOut; v++ {
		nbrs := g.Neighbors(int32(v))
		k := len(nbrs) + 1 // self first, then neighbors
		e := flatE[off : off+k]
		raw := flatRaw[off : off+k]
		off += k
		e[0] = s1[v] + s2[v]
		for i, u := range nbrs {
			e[i+1] = s1[v] + s2[u]
		}
		copy(raw, e)
		l.eRaw[v] = raw
		for i, x := range e {
			if x < 0 {
				e[i] = x * l.NegSlope
			}
		}
		// Softmax over k entries.
		mx := e[0]
		for _, x := range e {
			if x > mx {
				mx = x
			}
		}
		var sum float64
		for i, x := range e {
			ex := math.Exp(float64(x - mx))
			e[i] = float32(ex)
			sum += ex
		}
		inv := float32(1 / sum)
		for i := range e {
			e[i] *= inv
		}
		l.alpha[v] = e
		// z_v = Σ α · Wh.
		row := pre.Row(v)
		self := wh.Row(v)
		for j, x := range self {
			row[j] = e[0] * x
		}
		for i, u := range nbrs {
			tensor.Axpy(row, wh.Row(int(u)), e[i+1])
		}
	}
	out := ensureMat(&l.out, nOut, l.OutDim)
	applyActivationInto(out, l.Act, pre)
	return out
}

// Backward accumulates parameter gradients and returns the gradient with
// respect to the full input matrix (nAll × InDim).
func (l *GATConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: GATConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)

	a1 := l.A1.Row(0)
	a2 := l.A2.Row(0)
	dWh := ensureMat(&l.dWh, l.nAll, l.OutDim)
	dWh.Zero()
	da1 := ensureF32(&l.da1, l.OutDim)
	da2 := ensureF32(&l.da2, l.OutDim)
	for j := range da1 {
		da1[j] = 0
		da2[j] = 0
	}

	for v := 0; v < l.nOut; v++ {
		nbrs := l.g.Neighbors(int32(v))
		alpha := l.alpha[v]
		raw := l.eRaw[v]
		dz := dPre.Row(v)
		k := len(alpha)

		// dα_i = dz · Wh_{u_i}; and dWh_{u_i} += α_i dz.
		dAlpha := ensureF32(&l.dAlpha, k)
		nodeOf := func(i int) int {
			if i == 0 {
				return v
			}
			return int(nbrs[i-1])
		}
		for i := 0; i < k; i++ {
			u := nodeOf(i)
			dAlpha[i] = tensor.Dot(dz, l.wh.Row(u))
			tensor.Axpy(dWh.Row(u), dz, alpha[i])
		}
		// Softmax backward: de_i = α_i (dα_i − Σ_j α_j dα_j).
		var inner float32
		for i := 0; i < k; i++ {
			inner += alpha[i] * dAlpha[i]
		}
		for i := 0; i < k; i++ {
			de := alpha[i] * (dAlpha[i] - inner)
			// LeakyReLU backward.
			if raw[i] < 0 {
				de *= l.NegSlope
			}
			// e_i = a1·Wh_v + a2·Wh_{u_i}.
			u := nodeOf(i)
			whv := l.wh.Row(v)
			whu := l.wh.Row(u)
			dv := dWh.Row(v)
			duu := dWh.Row(u)
			for j := 0; j < l.OutDim; j++ {
				da1[j] += de * whv[j]
				da2[j] += de * whu[j]
				dv[j] += de * a1[j]
				duu[j] += de * a2[j]
			}
		}
	}
	for j := 0; j < l.OutDim; j++ {
		l.DA1.Data[j] += da1[j]
		l.DA2.Data[j] += da2[j]
	}

	dW := ensureMat(&l.dWScratch, l.InDim, l.OutDim)
	tensor.MatMulTransA(dW, l.h, dWh)
	l.DW.Add(dW)

	dH := ensureMat(&l.dH, l.nAll, l.InDim)
	tensor.MatMulTransB(dH, dWh, l.W)
	return dH
}
