package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// SAGEConv is a GraphSAGE layer with a mean aggregator, the paper's primary
// model (Section 2):
//
//	z_v   = mean_{u ∈ N(v)} h_u                     (Eq. 1)
//	h'_v  = σ(W · concat(z_v, h_v) + b)             (Eq. 2)
//
// The mean is normalized by invDeg[v], supplied by the caller. In exact
// training invDeg[v] = 1/|N_global(v)|; under BNS the caller keeps the
// global-degree normalizer while halo feature rows arrive pre-scaled by 1/p,
// which makes z_v an unbiased estimator of the full-graph aggregation
// (Section 3.2).
//
// Aggregation runs on the FUSED aggregate-project engine
// (tensor.SpMMMatMul and the MatMulTrans*Split family): the forward gathers
// each aggregated row z_v and feeds it to the projection FMAs while still
// cache-hot — the nOut × 2·InDim concat matrix of the textbook formulation
// is never materialized, eliminating its three DRAM round-trips (SpMM write,
// self-copy write, MatMul read) from the epoch hot path. Only z (needed by
// the backward's dW) is kept. The backward is fused symmetrically: one sweep
// produces the aggregation gradient dz AND writes the self term straight
// into the input-gradient rows, and dW reads [z|h] in place. The backward
// gather runs over the TRANSPOSED index, so everything parallelizes over
// edge-balanced chunks with no scatter races; chunk weights include the
// per-row projection cost (graph.AggIndex.ChunksFor) so wide layers stay
// balanced. The per-destination accumulation order is fixed by construction:
// the self term first (an overwrite), then the incoming neighbor
// contributions in ascending source order — exactly what the scalar
// fallback below produces over its explicit concat, so engine and fallback
// are bit-identical (the aggregation property tests and the fused kernel
// tests pin this).
type SAGEConv struct {
	InDim, OutDim int
	Act           Activation

	W  *tensor.Matrix // (2*InDim) × OutDim
	B  *tensor.Matrix // 1 × OutDim
	DW *tensor.Matrix
	DB *tensor.Matrix

	// agg, when set, is the aggregation plan (transposed index +
	// edge-balanced chunks) for the graph the passes run over; nil falls
	// back to serial per-edge walks with identical bits.
	agg *graph.AggIndex

	// Forward caches for backward.
	g      *graph.Graph
	nOut   int
	nAll   int
	invDeg []float32
	hIn    *tensor.Matrix // input features of the in-progress chunked pass
	z      *tensor.Matrix // nOut × InDim aggregated half (fused engine path)
	concat *tensor.Matrix // nOut × 2*InDim (scalar fallback path only)
	pre    *tensor.Matrix // nOut × OutDim

	// Layer-owned scratch, reused across calls so steady-state training
	// allocates nothing. All are fully rewritten (or zeroed) before use.
	// dz is the fused path's aggregation gradient; dConcat only backs the
	// scalar fallback.
	out, dPre, dz, dConcat, dH, dWScratch *tensor.Matrix
}

// NewSAGEConv creates a SAGE layer with Xavier-initialized weights.
func NewSAGEConv(inDim, outDim int, act Activation, rng *tensor.RNG) *SAGEConv {
	l := &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		Act:    act,
		W:      tensor.New(2*inDim, outDim),
		B:      tensor.New(1, outDim),
		DW:     tensor.New(2*inDim, outDim),
		DB:     tensor.New(1, outDim),
	}
	tensor.XavierInit(l.W, 2*inDim, outDim, rng)
	return l
}

// Params implements Layer.
func (l *SAGEConv) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }

// Grads implements Layer.
func (l *SAGEConv) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.DW, l.DB} }

// ZeroGrad implements Layer.
func (l *SAGEConv) ZeroGrad() { zeroGradAll(l.Grads()) }

// SetAgg installs the aggregation plan for subsequent passes. ai must be
// built from the same graph the passes receive (trainers rebuild the plan
// whenever the epoch graph changes); nil reverts to the scalar fallback.
// Engine and fallback are bit-identical, so flipping this never changes
// results — only how the edge walks are blocked and parallelized.
func (l *SAGEConv) SetAgg(ai *graph.AggIndex) { l.agg = ai }

// checkForward validates the shared Forward/ForwardBegin contract.
func (l *SAGEConv) checkForward(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows {
		panic(fmt.Sprintf("nn: SAGEConv graph has %d nodes, features %d rows", g.N, h.Rows))
	}
	if nOut > h.Rows || len(invDeg) < nOut {
		panic(fmt.Sprintf("nn: SAGEConv nOut=%d rows=%d invDeg=%d", nOut, h.Rows, len(invDeg)))
	}
}

// fusedChunks returns the edge-balanced chunk list for the fused forward,
// weighted with the per-row projection cost: one edge gather is an
// InDim-wide add, the projection is 2·InDim·OutDim FLOPs per row, so a row
// weighs ≈ 2·OutDim extra edge-equivalents on top of its degree.
func (l *SAGEConv) fusedChunks() []int32 {
	return l.agg.ChunksFor(int64(2 * l.OutDim))
}

// Forward computes outputs for the first nOut rows of h, aggregating over g
// (whose node space matches h's rows). invDeg[v] is the normalizer for node
// v's neighbor sum; len(invDeg) >= nOut.
func (l *SAGEConv) Forward(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix {
	l.checkForward(g, h, nOut, invDeg)
	l.g, l.nOut, l.nAll, l.invDeg, l.hIn = g, nOut, h.Rows, invDeg, h

	in := l.InDim
	pre := ensureMat(&l.pre, nOut, l.OutDim)
	if l.agg != nil {
		// Fused path: pre = [diag(invDeg)·A·h | h]·W with no concat matrix;
		// z_v = invDeg[v]·Σ_{u∈N(v)} h_u is kept for the backward's dW.
		z := ensureMat(&l.z, nOut, in)
		tensor.SpMMMatMul(pre, z, h, l.W, g.Indptr, g.Indices, invDeg, l.fusedChunks())
	} else {
		// Scalar fallback: aggregate into the left half of the concat
		// buffer, place h_v in the right half, project. Bit-identical to
		// the fused path (the fused kernel tests pin this).
		concat := ensureMat(&l.concat, nOut, 2*in)
		tensor.SpMM(concat, h, g.Indptr, g.Indices, invDeg, nil)
		for v := 0; v < nOut; v++ {
			copy(concat.Row(v)[in:], h.Row(v))
		}
		tensor.MatMul(pre, concat, l.W)
	}
	for v := 0; v < nOut; v++ {
		row := pre.Row(v)
		for j, b := range l.B.Row(0) {
			row[j] += b
		}
	}
	out := ensureMat(&l.out, nOut, l.OutDim)
	applyActivationInto(out, l.Act, pre)
	return out
}

// ForwardBegin starts a chunked forward pass: it validates shapes, installs
// the backward caches, and returns the output matrix whose rows ForwardRows
// will fill. Chunking cannot change results — every output row is computed
// with exactly the per-row arithmetic of the one-shot Forward (see
// tensor.SpMMRows/MatMulRows) and rows are independent — so any
// duplicate-free partition of [0, nOut) reproduces Forward bit for bit; the
// chunked-pass property tests pin this.
func (l *SAGEConv) ForwardBegin(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix {
	l.checkForward(g, h, nOut, invDeg)
	l.g, l.nOut, l.nAll, l.invDeg, l.hIn = g, nOut, h.Rows, invDeg, h
	if l.agg != nil {
		ensureMat(&l.z, nOut, l.InDim)
	} else {
		ensureMat(&l.concat, nOut, 2*l.InDim)
	}
	ensureMat(&l.pre, nOut, l.OutDim)
	return ensureMat(&l.out, nOut, l.OutDim)
}

// ForwardPrep computes per-node precomputations for feature rows [r0, r1).
// SAGE has none; GAT uses it for Wh and the attention scores.
func (l *SAGEConv) ForwardPrep(r0, r1 int) {}

// ForwardPrepRows is ForwardPrep for an explicit row list (the arrival-order
// drain preps one peer's halo slots as they land). SAGE has none.
func (l *SAGEConv) ForwardPrepRows(rows []int32) {}

// ForwardRows computes the output rows listed in rows (each row of [0, nOut)
// must appear exactly once across all calls of one pass). A row may be
// computed as soon as the feature rows of its neighbors are in place — the
// pipelined engine runs halo-independent rows while boundary features are
// still in flight.
func (l *SAGEConv) ForwardRows(rows []int32) {
	in := l.InDim
	h := l.hIn
	if l.agg != nil {
		tensor.SpMMMatMulRows(l.pre, l.z, h, l.W, l.g.Indptr, l.g.Indices, l.invDeg, rows)
	} else {
		tensor.SpMMRows(l.concat, h, l.g.Indptr, l.g.Indices, l.invDeg, rows)
		for _, v32 := range rows {
			v := int(v32)
			copy(l.concat.Row(v)[in:], h.Row(v))
		}
		tensor.MatMulRows(l.pre, l.concat, l.W, rows)
	}
	for _, v32 := range rows {
		row := l.pre.Row(int(v32))
		for j, b := range l.B.Row(0) {
			row[j] += b
		}
	}
	activationRows(l.out, l.Act, l.pre, rows)
}

// addNeighborGrads accumulates the neighbor term of the input gradient for
// every destination row in [destLo, destHi): dH.Row(u) += Σ invDeg[v]·dz_v
// over the sources v with u ∈ N(v), in ascending source order. With an
// aggregation plan this is a parallel gather over the transposed index;
// without one it is the equivalent serial scatter — destinations still
// receive contributions in ascending v because the sweep itself ascends.
func (l *SAGEConv) addNeighborGrads(destLo, destHi int) {
	in := l.InDim
	if l.agg != nil {
		tensor.SpMMTransRange(l.dH, l.dz, l.agg.IncIndptr, l.agg.IncSrc, l.invDeg, l.agg.IncChunks, destLo, destHi)
		return
	}
	for v := 0; v < l.nOut; v++ {
		s := l.invDeg[v]
		dz := l.dConcat.Row(v)[:in]
		for _, u := range l.g.Neighbors(int32(v)) {
			if int(u) >= destLo && int(u) < destHi {
				tensor.Axpy(l.dH.Data[int(u)*in:int(u)*in+in], dz, s)
			}
		}
	}
}

// Backward consumes dOut (nOut × OutDim), accumulates DW/DB, and returns the
// gradient with respect to the full input feature matrix (nAll × InDim),
// including halo rows. The returned matrix is layer-owned scratch, valid
// until the next Backward.
func (l *SAGEConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: SAGEConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)

	// Parameter gradients. The fused path reads the concat operand's halves
	// in place ([z|h]) — bit-identical to MatMulTransA over the explicit
	// concat the fallback keeps.
	dW := ensureMat(&l.dWScratch, 2*l.InDim, l.OutDim)
	if l.agg != nil {
		tensor.MatMulTransASplit(dW, l.z, l.hIn, dPre)
	} else {
		tensor.MatMulTransA(dW, l.concat, dPre)
	}
	l.DW.Add(dW)
	for v := 0; v < l.nOut; v++ {
		tensor.AddTo(l.DB.Row(0), dPre.Row(v))
	}

	// Input gradients: self terms first (an overwrite of the accumulator
	// row), then the neighbor gather in ascending source order.
	in := l.InDim
	dH := ensureMat(&l.dH, l.nAll, in)
	if l.agg != nil {
		// Fused sweep: dz and the self terms in one pass, no dConcat. Every
		// row < nOut is fully overwritten by the split writes, so only the
		// remaining rows need zeroing before the gather accumulates.
		dz := ensureMat(&l.dz, l.nOut, in)
		l.zeroDHTail()
		tensor.MatMulTransBSplit(dz, dH, dPre, l.W)
	} else {
		dConcat := ensureMat(&l.dConcat, l.nOut, 2*in)
		tensor.MatMulTransB(dConcat, dPre, l.W)
		dH.Zero()
		for v := 0; v < l.nOut; v++ {
			copy(dH.Row(v), dConcat.Row(v)[in:])
		}
	}
	l.addNeighborGrads(0, l.nAll)
	return dH
}

// zeroDHTail zeroes the input-gradient rows the fused backward sweep does not
// overwrite: [nOut, nAll) — halo rows and any non-output inner rows — which
// only ever receive gather accumulations.
func (l *SAGEConv) zeroDHTail() {
	tail := l.dH.Data[l.nOut*l.InDim:]
	for i := range tail {
		tail[i] = 0
	}
}

// BackwardBegin starts a staged backward pass: it computes the
// pre-activation gradient for every output row and zeroes the input-gradient
// accumulator. The staged schedule (BackwardBegin → BackwardHalo →
// BackwardFinish) reproduces the one-shot Backward bit for bit: a halo row
// of the input gradient receives contributions only from outputs with a halo
// neighbor (ascending, like the full gather), and an inner row only from the
// finish sweep (self copy, then ascending sources), so every accumulation
// lands on each destination row in exactly the order of the unsplit pass.
func (l *SAGEConv) BackwardBegin(dOut *tensor.Matrix) {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: SAGEConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)
	ensureMat(&l.dH, l.nAll, l.InDim)
	if l.agg != nil {
		ensureMat(&l.dz, l.nOut, l.InDim) // rows filled stage by stage
		// The halo/finish split writes overwrite every dH row < nOut
		// exactly once (haloSrc ∪ freeSrc covers [0,nOut)) before any
		// gather lands on it, so only the tail rows need zeroing.
		l.zeroDHTail()
	} else {
		ensureMat(&l.dConcat, l.nOut, 2*l.InDim) // rows filled stage by stage
		l.dH.Zero()
	}
}

// BackwardHalo completes the halo rows [nIn, nAll) of the input gradient so
// they can be sent while the rest of the backward pass runs. haloSrc must
// list, in ascending order, every output row with at least one neighbor
// ≥ nIn; haloSlots is the ascending list of halo rows whose gradients are
// needed. The returned matrix is the shared input-gradient accumulator: its
// rows ≥ nIn are final, rows < nIn complete only after BackwardFinish.
func (l *SAGEConv) BackwardHalo(haloSrc, haloSlots []int32, nIn int) *tensor.Matrix {
	in := l.InDim
	if l.agg != nil {
		// Fused sweep over the halo sources: each dz row and its self term
		// (overwriting its dH row, before any gather reaches it) land in one
		// pass. Every source of a halo destination has a halo neighbor, i.e.
		// is in haloSrc — its dz row was just computed — so the row gather
		// over the transposed index is complete and in ascending order.
		tensor.MatMulTransBSplitRows(l.dz, l.dH, l.dPre, l.W, haloSrc)
		tensor.SpMMTransRows(l.dH, l.dz, l.agg.IncIndptr, l.agg.IncSrc, l.invDeg, haloSlots)
		return l.dH
	}
	tensor.MatMulTransBRows(l.dConcat, l.dPre, l.W, haloSrc)
	for _, v32 := range haloSrc {
		v := int(v32)
		s := l.invDeg[v]
		dz := l.dConcat.Row(v)[:in]
		for _, u := range l.g.Neighbors(v32) {
			if int(u) >= nIn {
				tensor.Axpy(l.dH.Data[int(u)*in:int(u)*in+in], dz, s)
			}
		}
	}
	return l.dH
}

// BackwardFinish accumulates DW/DB and completes the inner rows [0, nIn) of
// the input gradient. freeSrc must list, ascending, every output row not in
// BackwardHalo's haloSrc; together they cover [0, nOut) exactly once.
func (l *SAGEConv) BackwardFinish(freeSrc []int32, nIn int) *tensor.Matrix {
	dW := ensureMat(&l.dWScratch, 2*l.InDim, l.OutDim)
	if l.agg != nil {
		tensor.MatMulTransASplit(dW, l.z, l.hIn, l.dPre)
	} else {
		tensor.MatMulTransA(dW, l.concat, l.dPre)
	}
	l.DW.Add(dW)
	for v := 0; v < l.nOut; v++ {
		tensor.AddTo(l.DB.Row(0), l.dPre.Row(v))
	}
	if l.agg != nil {
		// The halo stage already wrote haloSrc's dz rows and self terms;
		// this sweep covers the rest, completing [0, nOut) exactly once
		// before the inner-row gather accumulates.
		tensor.MatMulTransBSplitRows(l.dz, l.dH, l.dPre, l.W, freeSrc)
		l.addNeighborGrads(0, nIn)
		return l.dH
	}
	tensor.MatMulTransBRows(l.dConcat, l.dPre, l.W, freeSrc)
	in := l.InDim
	for v := 0; v < l.nOut; v++ {
		copy(l.dH.Row(v), l.dConcat.Row(v)[in:]) // self term (v < nIn by construction)
	}
	l.addNeighborGrads(0, nIn)
	return l.dH
}

// InvDegrees returns 1/degree for every node of g (0 for isolated nodes),
// the standard normalizer for exact full-graph mean aggregation.
func InvDegrees(g *graph.Graph) []float32 {
	return InvDegreesInto(make([]float32, g.N), g)
}

// InvDegreesInto is InvDegrees writing into a caller-owned slice (length
// g.N, fully overwritten), for allocation-free batch loops. Returns inv.
func InvDegreesInto(inv []float32, g *graph.Graph) []float32 {
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > 0 {
			inv[v] = 1 / float32(d)
		} else {
			inv[v] = 0
		}
	}
	return inv
}
