package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// SAGEConv is a GraphSAGE layer with a mean aggregator, the paper's primary
// model (Section 2):
//
//	z_v   = mean_{u ∈ N(v)} h_u                     (Eq. 1)
//	h'_v  = σ(W · concat(z_v, h_v) + b)             (Eq. 2)
//
// The mean is normalized by invDeg[v], supplied by the caller. In exact
// training invDeg[v] = 1/|N_global(v)|; under BNS the caller keeps the
// global-degree normalizer while halo feature rows arrive pre-scaled by 1/p,
// which makes z_v an unbiased estimator of the full-graph aggregation
// (Section 3.2).
type SAGEConv struct {
	InDim, OutDim int
	Act           Activation

	W  *tensor.Matrix // (2*InDim) × OutDim
	B  *tensor.Matrix // 1 × OutDim
	DW *tensor.Matrix
	DB *tensor.Matrix

	// Forward caches for backward.
	g      *graph.Graph
	nOut   int
	nAll   int
	invDeg []float32
	hIn    *tensor.Matrix // input features of the in-progress chunked pass
	concat *tensor.Matrix // nOut × 2*InDim
	pre    *tensor.Matrix // nOut × OutDim

	// Layer-owned scratch, reused across calls so steady-state training
	// allocates nothing. All are fully rewritten (or zeroed) before use.
	out, dPre, dConcat, dH, dWScratch *tensor.Matrix
}

// NewSAGEConv creates a SAGE layer with Xavier-initialized weights.
func NewSAGEConv(inDim, outDim int, act Activation, rng *tensor.RNG) *SAGEConv {
	l := &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		Act:    act,
		W:      tensor.New(2*inDim, outDim),
		B:      tensor.New(1, outDim),
		DW:     tensor.New(2*inDim, outDim),
		DB:     tensor.New(1, outDim),
	}
	tensor.XavierInit(l.W, 2*inDim, outDim, rng)
	return l
}

// Params implements Layer.
func (l *SAGEConv) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }

// Grads implements Layer.
func (l *SAGEConv) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.DW, l.DB} }

// ZeroGrad implements Layer.
func (l *SAGEConv) ZeroGrad() { zeroGradAll(l.Grads()) }

// Forward computes outputs for the first nOut rows of h, aggregating over g
// (whose node space matches h's rows). invDeg[v] is the normalizer for node
// v's neighbor sum; len(invDeg) >= nOut.
func (l *SAGEConv) Forward(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows {
		panic(fmt.Sprintf("nn: SAGEConv graph has %d nodes, features %d rows", g.N, h.Rows))
	}
	if nOut > h.Rows || len(invDeg) < nOut {
		panic(fmt.Sprintf("nn: SAGEConv nOut=%d rows=%d invDeg=%d", nOut, h.Rows, len(invDeg)))
	}
	l.g, l.nOut, l.nAll, l.invDeg = g, nOut, h.Rows, invDeg

	// Aggregate: z_v = invDeg[v] * Σ_{u∈N(v)} h_u, then concat with h_v.
	in := l.InDim
	concat := ensureMat(&l.concat, nOut, 2*in)
	for v := 0; v < nOut; v++ {
		row := concat.Row(v)
		zrow := row[:in]
		for j := range zrow {
			zrow[j] = 0
		}
		for _, u := range g.Neighbors(int32(v)) {
			tensor.AddTo(zrow, h.Data[int(u)*in:int(u)*in+in])
		}
		s := invDeg[v]
		for j := range zrow {
			zrow[j] *= s
		}
		copy(row[in:], h.Row(v))
	}

	pre := ensureMat(&l.pre, nOut, l.OutDim)
	tensor.MatMul(pre, concat, l.W)
	for v := 0; v < nOut; v++ {
		row := pre.Row(v)
		for j, b := range l.B.Row(0) {
			row[j] += b
		}
	}
	out := ensureMat(&l.out, nOut, l.OutDim)
	applyActivationInto(out, l.Act, pre)
	return out
}

// ForwardBegin starts a chunked forward pass: it validates shapes, installs
// the backward caches, and returns the output matrix whose rows ForwardRows
// will fill. Chunking cannot change results — every output row is computed
// with exactly the per-row arithmetic of the one-shot Forward (see
// tensor.MatMulRows) and rows are independent — so any duplicate-free
// partition of [0, nOut) reproduces Forward bit for bit; the chunked-pass
// property tests pin this.
func (l *SAGEConv) ForwardBegin(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows {
		panic(fmt.Sprintf("nn: SAGEConv graph has %d nodes, features %d rows", g.N, h.Rows))
	}
	if nOut > h.Rows || len(invDeg) < nOut {
		panic(fmt.Sprintf("nn: SAGEConv nOut=%d rows=%d invDeg=%d", nOut, h.Rows, len(invDeg)))
	}
	l.g, l.nOut, l.nAll, l.invDeg, l.hIn = g, nOut, h.Rows, invDeg, h
	ensureMat(&l.concat, nOut, 2*l.InDim)
	ensureMat(&l.pre, nOut, l.OutDim)
	return ensureMat(&l.out, nOut, l.OutDim)
}

// ForwardPrep computes per-node precomputations for feature rows [r0, r1).
// SAGE has none; GAT uses it for Wh and the attention scores.
func (l *SAGEConv) ForwardPrep(r0, r1 int) {}

// ForwardPrepRows is ForwardPrep for an explicit row list (the arrival-order
// drain preps one peer's halo slots as they land). SAGE has none.
func (l *SAGEConv) ForwardPrepRows(rows []int32) {}

// ForwardRows computes the output rows listed in rows (each row of [0, nOut)
// must appear exactly once across all calls of one pass). A row may be
// computed as soon as the feature rows of its neighbors are in place — the
// pipelined engine runs halo-independent rows while boundary features are
// still in flight.
func (l *SAGEConv) ForwardRows(rows []int32) {
	in := l.InDim
	h := l.hIn
	for _, v32 := range rows {
		v := int(v32)
		row := l.concat.Row(v)
		zrow := row[:in]
		for j := range zrow {
			zrow[j] = 0
		}
		for _, u := range l.g.Neighbors(int32(v)) {
			tensor.AddTo(zrow, h.Data[int(u)*in:int(u)*in+in])
		}
		s := l.invDeg[v]
		for j := range zrow {
			zrow[j] *= s
		}
		copy(row[in:], h.Row(v))
	}
	tensor.MatMulRows(l.pre, l.concat, l.W, rows)
	for _, v32 := range rows {
		row := l.pre.Row(int(v32))
		for j, b := range l.B.Row(0) {
			row[j] += b
		}
	}
	activationRows(l.out, l.Act, l.pre, rows)
}

// Backward consumes dOut (nOut × OutDim), accumulates DW/DB, and returns the
// gradient with respect to the full input feature matrix (nAll × InDim),
// including halo rows. The returned matrix is layer-owned scratch, valid
// until the next Backward.
func (l *SAGEConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: SAGEConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)

	// Parameter gradients.
	dW := ensureMat(&l.dWScratch, 2*l.InDim, l.OutDim)
	tensor.MatMulTransA(dW, l.concat, dPre)
	l.DW.Add(dW)
	for v := 0; v < l.nOut; v++ {
		tensor.AddTo(l.DB.Row(0), dPre.Row(v))
	}

	// Input gradients.
	in := l.InDim
	dConcat := ensureMat(&l.dConcat, l.nOut, 2*in)
	tensor.MatMulTransB(dConcat, dPre, l.W)
	dH := ensureMat(&l.dH, l.nAll, in)
	dH.Zero()
	for v := 0; v < l.nOut; v++ {
		drow := dConcat.Row(v)
		dz := drow[:in]
		// Self term.
		tensor.AddTo(dH.Row(v), drow[in:])
		// Neighbor terms: each u in N(v) receives invDeg[v] * dz.
		s := l.invDeg[v]
		if s == 0 {
			continue
		}
		for _, u := range l.g.Neighbors(int32(v)) {
			tensor.Axpy(dH.Data[int(u)*in:int(u)*in+in], dz, s)
		}
	}
	return dH
}

// BackwardBegin starts a staged backward pass: it computes the
// pre-activation gradient for every output row and zeroes the input-gradient
// accumulator. The staged schedule (BackwardBegin → BackwardHalo →
// BackwardFinish) reproduces the one-shot Backward bit for bit: a halo row
// of the input gradient receives contributions only from outputs with a halo
// neighbor, and an inner row only from the finish sweep, so every += lands
// on each destination row in exactly the order of the unsplit sweep.
func (l *SAGEConv) BackwardBegin(dOut *tensor.Matrix) {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: SAGEConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)
	ensureMat(&l.dConcat, l.nOut, 2*l.InDim) // rows filled stage by stage
	dH := ensureMat(&l.dH, l.nAll, l.InDim)
	dH.Zero()
}

// BackwardHalo completes the halo rows [nIn, nAll) of the input gradient so
// they can be sent while the rest of the backward pass runs. haloSrc must
// list, in ascending order, every output row with at least one neighbor
// ≥ nIn; haloSlots is unused by SAGE (GAT needs it). The returned matrix is
// the shared input-gradient accumulator: its rows ≥ nIn are final, rows
// < nIn complete only after BackwardFinish.
func (l *SAGEConv) BackwardHalo(haloSrc, haloSlots []int32, nIn int) *tensor.Matrix {
	tensor.MatMulTransBRows(l.dConcat, l.dPre, l.W, haloSrc)
	in := l.InDim
	for _, v32 := range haloSrc {
		v := int(v32)
		s := l.invDeg[v]
		if s == 0 {
			continue
		}
		dz := l.dConcat.Row(v)[:in]
		for _, u := range l.g.Neighbors(v32) {
			if int(u) >= nIn {
				tensor.Axpy(l.dH.Data[int(u)*in:int(u)*in+in], dz, s)
			}
		}
	}
	return l.dH
}

// BackwardFinish accumulates DW/DB and completes the inner rows [0, nIn) of
// the input gradient. freeSrc must list, ascending, every output row not in
// BackwardHalo's haloSrc; together they cover [0, nOut) exactly once.
func (l *SAGEConv) BackwardFinish(freeSrc []int32, nIn int) *tensor.Matrix {
	dW := ensureMat(&l.dWScratch, 2*l.InDim, l.OutDim)
	tensor.MatMulTransA(dW, l.concat, l.dPre)
	l.DW.Add(dW)
	for v := 0; v < l.nOut; v++ {
		tensor.AddTo(l.DB.Row(0), l.dPre.Row(v))
	}
	tensor.MatMulTransBRows(l.dConcat, l.dPre, l.W, freeSrc)
	in := l.InDim
	for v := 0; v < l.nOut; v++ {
		drow := l.dConcat.Row(v)
		tensor.AddTo(l.dH.Row(v), drow[in:]) // self term (v < nIn by construction)
		s := l.invDeg[v]
		if s == 0 {
			continue
		}
		dz := drow[:in]
		for _, u := range l.g.Neighbors(int32(v)) {
			if int(u) < nIn {
				tensor.Axpy(l.dH.Data[int(u)*in:int(u)*in+in], dz, s)
			}
		}
	}
	return l.dH
}

// InvDegrees returns 1/degree for every node of g (0 for isolated nodes),
// the standard normalizer for exact full-graph mean aggregation.
func InvDegrees(g *graph.Graph) []float32 {
	inv := make([]float32, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > 0 {
			inv[v] = 1 / float32(d)
		}
	}
	return inv
}
