package nn

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// SAGEConv is a GraphSAGE layer with a mean aggregator, the paper's primary
// model (Section 2):
//
//	z_v   = mean_{u ∈ N(v)} h_u                     (Eq. 1)
//	h'_v  = σ(W · concat(z_v, h_v) + b)             (Eq. 2)
//
// The mean is normalized by invDeg[v], supplied by the caller. In exact
// training invDeg[v] = 1/|N_global(v)|; under BNS the caller keeps the
// global-degree normalizer while halo feature rows arrive pre-scaled by 1/p,
// which makes z_v an unbiased estimator of the full-graph aggregation
// (Section 3.2).
type SAGEConv struct {
	InDim, OutDim int
	Act           Activation

	W  *tensor.Matrix // (2*InDim) × OutDim
	B  *tensor.Matrix // 1 × OutDim
	DW *tensor.Matrix
	DB *tensor.Matrix

	// Forward caches for backward.
	g      *graph.Graph
	nOut   int
	nAll   int
	invDeg []float32
	concat *tensor.Matrix // nOut × 2*InDim
	pre    *tensor.Matrix // nOut × OutDim

	// Layer-owned scratch, reused across calls so steady-state training
	// allocates nothing. All are fully rewritten (or zeroed) before use.
	out, dPre, dConcat, dH, dWScratch *tensor.Matrix
}

// NewSAGEConv creates a SAGE layer with Xavier-initialized weights.
func NewSAGEConv(inDim, outDim int, act Activation, rng *tensor.RNG) *SAGEConv {
	l := &SAGEConv{
		InDim:  inDim,
		OutDim: outDim,
		Act:    act,
		W:      tensor.New(2*inDim, outDim),
		B:      tensor.New(1, outDim),
		DW:     tensor.New(2*inDim, outDim),
		DB:     tensor.New(1, outDim),
	}
	tensor.XavierInit(l.W, 2*inDim, outDim, rng)
	return l
}

// Params implements Layer.
func (l *SAGEConv) Params() []*tensor.Matrix { return []*tensor.Matrix{l.W, l.B} }

// Grads implements Layer.
func (l *SAGEConv) Grads() []*tensor.Matrix { return []*tensor.Matrix{l.DW, l.DB} }

// ZeroGrad implements Layer.
func (l *SAGEConv) ZeroGrad() { zeroGradAll(l.Grads()) }

// Forward computes outputs for the first nOut rows of h, aggregating over g
// (whose node space matches h's rows). invDeg[v] is the normalizer for node
// v's neighbor sum; len(invDeg) >= nOut.
func (l *SAGEConv) Forward(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix {
	if h.Cols != l.InDim {
		panic(fmt.Sprintf("nn: SAGEConv input dim %d, want %d", h.Cols, l.InDim))
	}
	if g.N != h.Rows {
		panic(fmt.Sprintf("nn: SAGEConv graph has %d nodes, features %d rows", g.N, h.Rows))
	}
	if nOut > h.Rows || len(invDeg) < nOut {
		panic(fmt.Sprintf("nn: SAGEConv nOut=%d rows=%d invDeg=%d", nOut, h.Rows, len(invDeg)))
	}
	l.g, l.nOut, l.nAll, l.invDeg = g, nOut, h.Rows, invDeg

	// Aggregate: z_v = invDeg[v] * Σ_{u∈N(v)} h_u, then concat with h_v.
	in := l.InDim
	concat := ensureMat(&l.concat, nOut, 2*in)
	for v := 0; v < nOut; v++ {
		row := concat.Row(v)
		zrow := row[:in]
		for j := range zrow {
			zrow[j] = 0
		}
		for _, u := range g.Neighbors(int32(v)) {
			tensor.AddTo(zrow, h.Data[int(u)*in:int(u)*in+in])
		}
		s := invDeg[v]
		for j := range zrow {
			zrow[j] *= s
		}
		copy(row[in:], h.Row(v))
	}

	pre := ensureMat(&l.pre, nOut, l.OutDim)
	tensor.MatMul(pre, concat, l.W)
	for v := 0; v < nOut; v++ {
		row := pre.Row(v)
		for j, b := range l.B.Row(0) {
			row[j] += b
		}
	}
	out := ensureMat(&l.out, nOut, l.OutDim)
	applyActivationInto(out, l.Act, pre)
	return out
}

// Backward consumes dOut (nOut × OutDim), accumulates DW/DB, and returns the
// gradient with respect to the full input feature matrix (nAll × InDim),
// including halo rows. The returned matrix is layer-owned scratch, valid
// until the next Backward.
func (l *SAGEConv) Backward(dOut *tensor.Matrix) *tensor.Matrix {
	if dOut.Rows != l.nOut || dOut.Cols != l.OutDim {
		panic(fmt.Sprintf("nn: SAGEConv backward shape %dx%d, want %dx%d", dOut.Rows, dOut.Cols, l.nOut, l.OutDim))
	}
	dPre := ensureMat(&l.dPre, dOut.Rows, dOut.Cols)
	copy(dPre.Data, dOut.Data)
	activationGrad(l.Act, dPre, l.pre)

	// Parameter gradients.
	dW := ensureMat(&l.dWScratch, 2*l.InDim, l.OutDim)
	tensor.MatMulTransA(dW, l.concat, dPre)
	l.DW.Add(dW)
	for v := 0; v < l.nOut; v++ {
		tensor.AddTo(l.DB.Row(0), dPre.Row(v))
	}

	// Input gradients.
	in := l.InDim
	dConcat := ensureMat(&l.dConcat, l.nOut, 2*in)
	tensor.MatMulTransB(dConcat, dPre, l.W)
	dH := ensureMat(&l.dH, l.nAll, in)
	dH.Zero()
	for v := 0; v < l.nOut; v++ {
		drow := dConcat.Row(v)
		dz := drow[:in]
		// Self term.
		tensor.AddTo(dH.Row(v), drow[in:])
		// Neighbor terms: each u in N(v) receives invDeg[v] * dz.
		s := l.invDeg[v]
		if s == 0 {
			continue
		}
		for _, u := range l.g.Neighbors(int32(v)) {
			tensor.Axpy(dH.Data[int(u)*in:int(u)*in+in], dz, s)
		}
	}
	return dH
}

// InvDegrees returns 1/degree for every node of g (0 for isolated nodes),
// the standard normalizer for exact full-graph mean aggregation.
func InvDegrees(g *graph.Graph) []float32 {
	inv := make([]float32, g.N)
	for v := 0; v < g.N; v++ {
		if d := g.Degree(int32(v)); d > 0 {
			inv[v] = 1 / float32(d)
		}
	}
	return inv
}
