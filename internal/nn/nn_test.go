package nn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// lineGraph returns the path 0-1-2-3-4.
func lineGraph() *graph.Graph {
	b := graph.NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func randGraph(rng *tensor.RNG, n, edges int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestReLUForwardBackward(t *testing.T) {
	pre := tensor.NewFrom(1, 4, []float32{-1, 0, 2, -3})
	out := applyActivation(ReLUAct, pre)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("relu[%d] = %v", i, out.Data[i])
		}
	}
	d := tensor.NewFrom(1, 4, []float32{1, 1, 1, 1})
	activationGrad(ReLUAct, d, pre)
	wantG := []float32{0, 0, 1, 0}
	for i, w := range wantG {
		if d.Data[i] != w {
			t.Fatalf("relu grad[%d] = %v", i, d.Data[i])
		}
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDropout(0.5, rng)
	x := tensor.New(50, 50)
	x.Fill(1)
	out := d.Forward(x, true)
	zeros, twos := 0, 0
	for _, v := range out.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout value %v, want 0 or 2", v)
		}
	}
	if zeros < 1000 || twos < 1000 {
		t.Fatalf("dropout counts off: %d zeros, %d twos", zeros, twos)
	}
	// Eval mode is identity (same backing object allowed).
	ev := d.Forward(x, false)
	if !ev.Equal(x, 0) {
		t.Fatal("eval dropout must be identity")
	}
	if g := d.Backward(x); !g.Equal(x, 0) {
		t.Fatal("eval dropout backward must be identity")
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewDropout(0.3, rng)
	x := tensor.New(10, 10)
	x.Fill(1)
	out := d.Forward(x, true)
	g := tensor.New(10, 10)
	g.Fill(1)
	back := d.Backward(g)
	// Gradient must be nonzero exactly where output is nonzero.
	for i := range out.Data {
		if (out.Data[i] == 0) != (back.Data[i] == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.NewFrom(2, 2, []float32{0, 0, 100, 0})
	labels := []int32{0, 0}
	mask := []bool{true, true}
	loss, grad := SoftmaxCrossEntropy(logits, labels, mask)
	// Row 0: uniform -> ln 2; row 1: confident correct -> ~0.
	if math.Abs(loss-math.Ln2/2) > 1e-4 {
		t.Fatalf("loss = %v, want %v", loss, math.Ln2/2)
	}
	// Row gradient sums to 0.
	if s := float64(grad.Row(0)[0] + grad.Row(0)[1]); math.Abs(s) > 1e-6 {
		t.Fatalf("grad row sum %v", s)
	}
}

func TestSoftmaxCrossEntropyMaskedRowsZero(t *testing.T) {
	logits := tensor.NewFrom(2, 3, []float32{1, 2, 3, 4, 5, 6})
	_, grad := SoftmaxCrossEntropy(logits, []int32{0, 1}, []bool{false, true})
	for _, v := range grad.Row(0) {
		if v != 0 {
			t.Fatal("masked row must have zero gradient")
		}
	}
}

func TestSoftmaxCrossEntropyGradFiniteDiff(t *testing.T) {
	rng := tensor.NewRNG(3)
	logits := tensor.New(4, 5)
	tensor.GaussianInit(logits, 1, rng)
	labels := []int32{1, 4, 0, 2}
	mask := []bool{true, false, true, true}
	_, grad := SoftmaxCrossEntropy(logits, labels, mask)
	const eps = 1e-3
	for i := 0; i < len(logits.Data); i += 3 {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels, mask)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels, mask)
		logits.Data[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("elem %d: fd %v vs analytic %v", i, fd, grad.Data[i])
		}
	}
}

func TestSigmoidBCEGradFiniteDiff(t *testing.T) {
	rng := tensor.NewRNG(4)
	logits := tensor.New(3, 4)
	tensor.GaussianInit(logits, 1, rng)
	targets := tensor.New(3, 4)
	for i := range targets.Data {
		if rng.Float32() < 0.4 {
			targets.Data[i] = 1
		}
	}
	mask := []bool{true, true, false}
	_, grad := SigmoidBCE(logits, targets, mask)
	const eps = 1e-3
	for i := 0; i < len(logits.Data); i += 2 {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SigmoidBCE(logits, targets, mask)
		logits.Data[i] = orig - eps
		lm, _ := SigmoidBCE(logits, targets, mask)
		logits.Data[i] = orig
		fd := (lp - lm) / (2 * eps)
		if math.Abs(fd-float64(grad.Data[i])) > 1e-3 {
			t.Fatalf("elem %d: fd %v vs analytic %v", i, fd, grad.Data[i])
		}
	}
}

func TestLossEmptyMask(t *testing.T) {
	logits := tensor.New(2, 2)
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0, 0}, []bool{false, false})
	if loss != 0 || grad.MaxAbs() != 0 {
		t.Fatal("empty mask must give zero loss and grad")
	}
	loss, grad = SigmoidBCE(logits, tensor.New(2, 2), []bool{false, false})
	if loss != 0 || grad.MaxAbs() != 0 {
		t.Fatal("empty mask BCE must give zero loss and grad")
	}
}

// sageLoss runs a 1-layer SAGE + CE loss; used for finite-difference checks.
func sageLoss(l *SAGEConv, g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32, labels []int32, mask []bool) float64 {
	out := l.Forward(g, h, nOut, invDeg)
	loss, _ := SoftmaxCrossEntropy(out, labels, mask)
	return loss
}

func TestSAGEConvGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(5)
	g := randGraph(rng, 8, 16)
	h := tensor.New(8, 3)
	tensor.GaussianInit(h, 1, rng)
	l := NewSAGEConv(3, 4, ReLUAct, rng)
	invDeg := InvDegrees(g)
	nOut := 6 // rows 6,7 act as halo rows
	labels := []int32{0, 1, 2, 3, 0, 1}
	mask := []bool{true, true, true, false, true, true}

	out := l.Forward(g, h, nOut, invDeg)
	_, dOut := SoftmaxCrossEntropy(out, labels, mask)
	l.ZeroGrad()
	dH := l.Backward(dOut)

	const eps = 1e-2
	check := func(name string, param *tensor.Matrix, grad *tensor.Matrix, stride int) {
		for i := 0; i < len(param.Data); i += stride {
			orig := param.Data[i]
			param.Data[i] = orig + eps
			lp := sageLoss(l, g, h, nOut, invDeg, labels, mask)
			param.Data[i] = orig - eps
			lm := sageLoss(l, g, h, nOut, invDeg, labels, mask)
			param.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-float64(grad.Data[i])) > 2e-2*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: fd %v vs analytic %v", name, i, fd, grad.Data[i])
			}
		}
	}
	check("W", l.W, l.DW, 3)
	check("B", l.B, l.DB, 1)
	check("H", h, dH, 2)
}

func TestSAGEConvHaloRowsGetGradient(t *testing.T) {
	rng := tensor.NewRNG(6)
	// Node 0's only neighbor is halo node 2 -> halo must receive gradient.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 2)
	b.AddEdge(0, 1)
	g := b.Build()
	h := tensor.New(3, 2)
	tensor.GaussianInit(h, 1, rng)
	l := NewSAGEConv(2, 2, NoAct, rng)
	out := l.Forward(g, h, 2, InvDegrees(g))
	if out.Rows != 2 {
		t.Fatalf("out rows %d", out.Rows)
	}
	dOut := tensor.New(2, 2)
	dOut.Fill(1)
	l.ZeroGrad()
	dH := l.Backward(dOut)
	if dH.Rows != 3 {
		t.Fatalf("dH rows %d, want 3 (including halo)", dH.Rows)
	}
	var haloNorm float32
	for _, v := range dH.Row(2) {
		haloNorm += v * v
	}
	if haloNorm == 0 {
		t.Fatal("halo row received no gradient")
	}
}

func TestSAGEConvMeanAggregation(t *testing.T) {
	// Identity-ish check: with W = [I;0] (z passthrough), output = mean of
	// neighbors.
	rng := tensor.NewRNG(7)
	g := lineGraph()
	h := tensor.New(5, 2)
	for v := 0; v < 5; v++ {
		h.Set(v, 0, float32(v))
		h.Set(v, 1, 1)
	}
	l := NewSAGEConv(2, 2, NoAct, rng)
	l.W.Zero()
	l.B.Zero()
	l.W.Set(0, 0, 1) // z[0] -> out[0]
	l.W.Set(1, 1, 1) // z[1] -> out[1]
	out := l.Forward(g, h, 5, InvDegrees(g))
	// Node 2 neighbors {1,3}: mean = (1+3)/2 = 2 in dim0, 1 in dim1.
	if math.Abs(float64(out.At(2, 0)-2)) > 1e-6 || math.Abs(float64(out.At(2, 1)-1)) > 1e-6 {
		t.Fatalf("node 2 aggregation = (%v,%v), want (2,1)", out.At(2, 0), out.At(2, 1))
	}
	// Node 0 neighbors {1}: mean = 1.
	if math.Abs(float64(out.At(0, 0)-1)) > 1e-6 {
		t.Fatalf("node 0 aggregation = %v, want 1", out.At(0, 0))
	}
}

func TestSAGEConvIsolatedNodeZeroAggregate(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := graph.NewBuilder(2).Build() // no edges
	h := tensor.New(2, 2)
	h.Fill(3)
	l := NewSAGEConv(2, 2, NoAct, rng)
	l.W.Zero()
	l.W.Set(0, 0, 1)
	out := l.Forward(g, h, 2, InvDegrees(g))
	if out.At(0, 0) != 0 {
		t.Fatalf("isolated node aggregate = %v, want 0", out.At(0, 0))
	}
}

func gatLoss(l *GATConv, g *graph.Graph, h *tensor.Matrix, nOut int, labels []int32, mask []bool) float64 {
	out := l.Forward(g, h, nOut)
	loss, _ := SoftmaxCrossEntropy(out, labels, mask)
	return loss
}

func TestGATConvGradientCheck(t *testing.T) {
	rng := tensor.NewRNG(9)
	g := randGraph(rng, 7, 14)
	h := tensor.New(7, 3)
	tensor.GaussianInit(h, 1, rng)
	l := NewGATConv(3, 4, ReLUAct, rng)
	nOut := 5
	labels := []int32{0, 1, 2, 3, 0}
	mask := []bool{true, true, false, true, true}

	out := l.Forward(g, h, nOut)
	_, dOut := SoftmaxCrossEntropy(out, labels, mask)
	l.ZeroGrad()
	dH := l.Backward(dOut)

	const eps = 1e-2
	check := func(name string, param, grad *tensor.Matrix, stride int) {
		for i := 0; i < len(param.Data); i += stride {
			orig := param.Data[i]
			param.Data[i] = orig + eps
			lp := gatLoss(l, g, h, nOut, labels, mask)
			param.Data[i] = orig - eps
			lm := gatLoss(l, g, h, nOut, labels, mask)
			param.Data[i] = orig
			fd := (lp - lm) / (2 * eps)
			if math.Abs(fd-float64(grad.Data[i])) > 3e-2*(1+math.Abs(fd)) {
				t.Fatalf("%s[%d]: fd %v vs analytic %v", name, i, fd, grad.Data[i])
			}
		}
	}
	check("W", l.W, l.DW, 2)
	check("A1", l.A1, l.DA1, 1)
	check("A2", l.A2, l.DA2, 1)
	check("H", h, dH, 2)
}

func TestGATAttentionSumsToOne(t *testing.T) {
	rng := tensor.NewRNG(10)
	g := randGraph(rng, 10, 30)
	h := tensor.New(10, 4)
	tensor.GaussianInit(h, 1, rng)
	l := NewGATConv(4, 4, NoAct, rng)
	l.Forward(g, h, 10)
	for v, alpha := range l.alpha {
		var s float64
		for _, a := range alpha {
			if a < 0 {
				t.Fatalf("negative attention at %d", v)
			}
			s += float64(a)
		}
		if math.Abs(s-1) > 1e-4 {
			t.Fatalf("attention of %d sums to %v", v, s)
		}
	}
}

func TestFlattenUnflattenGrads(t *testing.T) {
	rng := tensor.NewRNG(11)
	layers := []Layer{
		NewSAGEConv(3, 4, ReLUAct, rng),
		NewSAGEConv(4, 2, NoAct, rng),
	}
	for _, l := range layers {
		for _, g := range l.Grads() {
			tensor.GaussianInit(g, 1, rng)
		}
	}
	flat := FlattenGrads(layers, nil)
	if len(flat) != ParamCount(layers) {
		t.Fatalf("flat len %d, want %d", len(flat), ParamCount(layers))
	}
	// Perturb and restore.
	saved := make([]float32, len(flat))
	copy(saved, flat)
	for _, l := range layers {
		l.ZeroGrad()
	}
	UnflattenGrads(layers, saved)
	flat2 := FlattenGrads(layers, nil)
	for i := range flat2 {
		if flat2[i] != saved[i] {
			t.Fatal("unflatten did not restore gradients")
		}
	}
}

func TestInvDegrees(t *testing.T) {
	g := lineGraph()
	inv := InvDegrees(g)
	if inv[0] != 1 || inv[1] != 0.5 {
		t.Fatalf("inv degrees %v", inv[:2])
	}
	iso := graph.NewBuilder(1).Build()
	if InvDegrees(iso)[0] != 0 {
		t.Fatal("isolated node inverse degree must be 0")
	}
}
