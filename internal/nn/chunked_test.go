package nn

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// The chunked-pass contract behind the pipelined epoch engine: splitting a
// layer's forward into halo-free/halo-dependent row chunks and its backward
// into the staged halo→finish schedule must reproduce the one-shot passes
// bit for bit. These tests build partition-shaped local graphs (inner rows
// [0,nIn) with neighbors, halo rows [nIn,n) without) on odd/prime shapes,
// including the two extremes: every row halo-dependent (worst case — zero
// overlap available) and no halo edges at all.

// localGraph builds a partition-style subgraph: each of the nIn inner rows
// gets deg neighbors drawn from the whole local space (inner + halo); halo
// rows have empty adjacency, halo fraction haloP of the draws.
func localGraph(rng *tensor.RNG, nIn, nBd, deg int, haloP float64) *graph.Graph {
	n := nIn + nBd
	indptr := make([]int64, n+1)
	var indices []int32
	for v := 0; v < nIn; v++ {
		indptr[v] = int64(len(indices))
		for e := 0; e < deg; e++ {
			if nBd > 0 && rng.Float64() < haloP {
				indices = append(indices, int32(nIn+rng.Intn(nBd)))
			} else {
				indices = append(indices, int32(rng.Intn(nIn)))
			}
		}
	}
	for v := nIn; v <= n; v++ {
		indptr[v] = int64(len(indices))
	}
	return &graph.Graph{N: n, Indptr: indptr, Indices: indices}
}

// splitHalo partitions the inner rows by halo dependence (ascending) and
// collects the halo rows actually referenced (ascending), mirroring
// core.LocalPartition.splitRows.
func splitHalo(g *graph.Graph, nIn int) (free, dep, slots []int32) {
	used := make([]bool, g.N)
	for v := int32(0); v < int32(nIn); v++ {
		needs := false
		for _, u := range g.Neighbors(v) {
			if int(u) >= nIn {
				needs = true
				used[u] = true
			}
		}
		if needs {
			dep = append(dep, v)
		} else {
			free = append(free, v)
		}
	}
	for s := nIn; s < g.N; s++ {
		if used[s] {
			slots = append(slots, int32(s))
		}
	}
	return free, dep, slots
}

func randMat(rng *tensor.RNG, rows, cols int) *tensor.Matrix {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func sameBits(t *testing.T, name string, a, b []float32) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: element %d = %v, want %v", name, i, a[i], b[i])
		}
	}
}

func sameRowsBits(t *testing.T, name string, a, b *tensor.Matrix, rows []int32) {
	t.Helper()
	for _, v := range rows {
		ra, rb := a.Row(int(v)), b.Row(int(v))
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("%s: row %d col %d = %v, want %v", name, v, j, ra[j], rb[j])
			}
		}
	}
}

// chunkedCase is one graph/dimension configuration; haloP=1 with nBd>0 makes
// every inner row halo-dependent, nBd=0 makes every row halo-free.
type chunkedCase struct {
	name          string
	nIn, nBd, deg int
	inDim, outDim int
	haloP         float64
}

var chunkedCases = []chunkedCase{
	{"odd-prime", 13, 7, 5, 11, 3, 0.4},
	{"tiny", 3, 2, 2, 1, 1, 0.5},
	{"all-halo-dep", 17, 5, 4, 7, 5, 1.0},
	{"no-halo", 19, 0, 4, 5, 2, 0},
	{"wide", 31, 11, 6, 23, 13, 0.3},
}

// TestSAGEChunkedMatchesOneShot: ForwardBegin/ForwardRows over the halo
// split and the staged backward must reproduce Forward/Backward exactly.
func TestSAGEChunkedMatchesOneShot(t *testing.T) {
	for _, tc := range chunkedCases {
		rng := tensor.NewRNG(101)
		g := localGraph(rng, tc.nIn, tc.nBd, tc.deg, tc.haloP)
		free, dep, slots := splitHalo(g, tc.nIn)
		h := randMat(rng, g.N, tc.inDim)
		invDeg := make([]float32, tc.nIn)
		for v := range invDeg {
			if d := g.Degree(int32(v)); d > 0 {
				invDeg[v] = 1 / float32(d)
			}
		}
		dOut := randMat(rng, tc.nIn, tc.outDim)

		ref := NewSAGEConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))
		chk := NewSAGEConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))

		wantOut := ref.Forward(g, h, tc.nIn, invDeg)
		wantDH := ref.Backward(dOut)

		gotOut := chk.ForwardBegin(g, h, tc.nIn, invDeg)
		chk.ForwardPrep(0, tc.nIn)
		chk.ForwardRows(free)
		chk.ForwardPrep(tc.nIn, g.N)
		chk.ForwardRows(dep)
		sameBits(t, tc.name+"/forward", gotOut.Data, wantOut.Data)

		chk.BackwardBegin(dOut)
		gotDH := chk.BackwardHalo(dep, slots, tc.nIn)
		chk.BackwardFinish(free, tc.nIn)
		// Inner rows and referenced halo slots must match; unreferenced halo
		// rows are zero for SAGE (the accumulator is zeroed) but the engine
		// never reads them.
		inner := make([]int32, tc.nIn)
		for v := range inner {
			inner[v] = int32(v)
		}
		sameRowsBits(t, tc.name+"/backward-inner", gotDH, wantDH, inner)
		sameRowsBits(t, tc.name+"/backward-halo", gotDH, wantDH, slots)
		sameBits(t, tc.name+"/DW", chk.DW.Data, ref.DW.Data)
		sameBits(t, tc.name+"/DB", chk.DB.Data, ref.DB.Data)
	}
}

// TestGATChunkedMatchesOneShot is the same contract for the attention layer,
// whose backward sweeps are destination-filtered rather than source-split.
func TestGATChunkedMatchesOneShot(t *testing.T) {
	for _, tc := range chunkedCases {
		rng := tensor.NewRNG(202)
		g := localGraph(rng, tc.nIn, tc.nBd, tc.deg, tc.haloP)
		free, dep, slots := splitHalo(g, tc.nIn)
		h := randMat(rng, g.N, tc.inDim)
		dOut := randMat(rng, tc.nIn, tc.outDim)

		ref := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(6))
		chk := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(6))

		wantOut := ref.Forward(g, h, tc.nIn)
		wantDH := ref.Backward(dOut)

		gotOut := chk.ForwardBegin(g, h, tc.nIn)
		chk.ForwardPrep(0, tc.nIn)
		chk.ForwardRows(free)
		chk.ForwardPrep(tc.nIn, g.N)
		chk.ForwardRows(dep)
		sameBits(t, tc.name+"/forward", gotOut.Data, wantOut.Data)

		chk.BackwardBegin(dOut)
		gotDH := chk.BackwardHalo(dep, slots, tc.nIn)
		chk.BackwardFinish(free, tc.nIn)
		inner := make([]int32, tc.nIn)
		for v := range inner {
			inner[v] = int32(v)
		}
		sameRowsBits(t, tc.name+"/backward-inner", gotDH, wantDH, inner)
		sameRowsBits(t, tc.name+"/backward-halo", gotDH, wantDH, slots)
		sameBits(t, tc.name+"/DW", chk.DW.Data, ref.DW.Data)
		sameBits(t, tc.name+"/DA1", chk.DA1.Data, ref.DA1.Data)
		sameBits(t, tc.name+"/DA2", chk.DA2.Data, ref.DA2.Data)
	}
}

// TestDropoutChunkedMatchesOneShot: chunked forward must consume the mask
// RNG stream exactly like a full pass (inner rows before halo rows), and the
// chunked backward must reproduce the one-shot mask application.
func TestDropoutChunkedMatchesOneShot(t *testing.T) {
	const rows, cols, cut = 23, 7, 9
	x := randMat(tensor.NewRNG(3), rows, cols)
	dOut := randMat(tensor.NewRNG(4), rows, cols)

	ref := NewDropout(0.4, tensor.NewRNG(9))
	chk := NewDropout(0.4, tensor.NewRNG(9))

	want := ref.Forward(x, true)
	got := chk.ForwardBegin(x, true)
	chk.ForwardRows(0, cut)
	chk.ForwardRows(cut, rows)
	sameBits(t, "dropout/forward", got.Data, want.Data)

	wantDX := ref.Backward(dOut)
	gotDX := chk.BackwardBegin(dOut)
	chk.BackwardRows(cut, rows) // backward chunks may run in any order
	chk.BackwardRows(0, cut)
	sameBits(t, "dropout/backward", gotDX.Data, wantDX.Data)

	// Identity pass: chunk calls are no-ops and the inputs pass through.
	if out := chk.ForwardBegin(x, false); out != x {
		t.Fatal("identity ForwardBegin must return x")
	}
	chk.ForwardRows(0, rows)
	if dx := chk.BackwardBegin(dOut); dx != dOut {
		t.Fatal("identity BackwardBegin must return dOut")
	}
	chk.BackwardRows(0, rows)
}

// TestDropoutMaskApplySplitMatchesForwardRows: drawing all masks up front
// (MaskRows, the RNG-stream-ordered half) and applying them later in
// arbitrary per-peer row batches (ApplyMaskedRows, the value-dependent half)
// must reproduce a plain ascending ForwardRows pass bit for bit — the
// contract the arrival-order halo drain rests on.
func TestDropoutMaskApplySplitMatchesForwardRows(t *testing.T) {
	const rows, cols, cut = 23, 7, 9
	x := randMat(tensor.NewRNG(3), rows, cols)
	// Poison a "late" row with ±0 and extreme values to pin the dropped-
	// element semantics (a literal 0, not value*0).
	copy(x.Row(rows-1), []float32{float32(math.Inf(1)), float32(math.Copysign(0, -1)), -1e30, 0, 1, -2, 3})

	ref := NewDropout(0.4, tensor.NewRNG(9))
	chk := NewDropout(0.4, tensor.NewRNG(9))

	want := ref.ForwardBegin(x, true)
	ref.ForwardRows(0, cut)
	ref.ForwardRows(cut, rows)

	got := chk.ForwardBegin(x, true)
	chk.ForwardRows(0, cut)
	chk.MaskRows(cut, rows)
	// Apply in out-of-order, disjoint batches, as peers landing would.
	chk.ApplyMaskedRows([]int32{21, 22, 10, 15})
	chk.ApplyMaskedRows([]int32{9, 20, 11})
	chk.ApplyMaskedRows([]int32{14, 12, 13, 16, 17, 18, 19})
	sameBits(t, "dropout/mask-apply", got.Data, want.Data)

	// Identity pass: both halves are no-ops.
	if out := chk.ForwardBegin(x, false); out != x {
		t.Fatal("identity ForwardBegin must return x")
	}
	chk.MaskRows(0, rows)
	chk.ApplyMaskedRows([]int32{0, 1})
}

// TestGATForwardPrepRowsMatchesRange: per-row-list prep must reproduce the
// range form bit for bit in any duplicate-free cover order, so the
// arrival-order drain can prep one peer's halo slots as they land.
func TestGATForwardPrepRowsMatchesRange(t *testing.T) {
	for _, tc := range chunkedCases {
		rng := tensor.NewRNG(77)
		g := localGraph(rng, tc.nIn, tc.nBd, tc.deg, tc.haloP)
		h := randMat(rng, g.N, tc.inDim)
		free, dep, slots := splitHalo(g, tc.nIn)

		ref := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))
		chk := NewGATConv(tc.inDim, tc.outDim, ReLUAct, tensor.NewRNG(5))

		want := ref.ForwardBegin(g, h, tc.nIn)
		ref.ForwardPrep(0, g.N)
		ref.ForwardRows(free)
		ref.ForwardRows(dep)

		got := chk.ForwardBegin(g, h, tc.nIn)
		chk.ForwardPrep(0, tc.nIn)
		chk.ForwardRows(free)
		// Prep the referenced halo slots in reversed per-row batches (the
		// arrival order is arbitrary), then complete the dependent rows.
		for i := len(slots) - 1; i >= 0; i-- {
			chk.ForwardPrepRows(slots[i : i+1])
		}
		chk.ForwardRows(dep)
		sameBits(t, tc.name+"/gat-prep-rows", got.Data, want.Data)
	}
}
