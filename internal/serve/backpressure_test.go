package serve

import (
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPredictFloodShedsBoundedAnd503 is the backpressure regression test:
// with the dispatcher stalled and the queue at its brim, a flood of predict
// requests must be shed immediately — every caller gets ErrOverloaded, the
// queue never grows past MaxQueue (bounded memory: a shed request parks no
// goroutine and holds no slot), the HTTP layer answers 503 with the
// configured Retry-After, and once the dispatcher resumes the staged work
// still completes and the server takes traffic again.
func TestPredictFloodShedsBoundedAnd503(t *testing.T) {
	ds := testDataset(t, 24)
	ft, _ := trainedModel(t, ds, core.ArchSAGE, 2)
	eng, err := NewEngine(ft.Model, ds.G, ds.Features, 256)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()

	const maxQueue = 8
	// newServer seam: no dispatcher yet, so the queue fills and stays full —
	// the deterministic stand-in for an engine pass that is taking too long.
	srv := newServer(eng, ServerConfig{MaxBatch: 4, MaxQueue: maxQueue, RetryAfter: 2 * time.Second})
	staged := make([]chan predictResp, maxQueue)
	for i := range staged {
		staged[i] = make(chan predictResp, 1)
		srv.reqCh <- predictReq{nodes: []int32{0}, resp: staged[i]}
	}

	// The flood: hundreds of concurrent callers against a full queue. All of
	// them must return at once with ErrOverloaded — if any blocked, wg.Wait
	// would hang and the deadline below would flag it.
	const flood = 500
	errs := make(chan error, flood)
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := srv.Predict([]int32{1})
			errs <- err
		}()
	}
	floodDone := make(chan struct{})
	go func() { wg.Wait(); close(floodDone) }()
	select {
	case <-floodDone:
	case <-time.After(30 * time.Second):
		t.Fatal("flood callers blocked on a full queue instead of shedding")
	}
	close(errs)
	for err := range errs {
		if err != ErrOverloaded {
			t.Fatalf("flood caller got %v, want ErrOverloaded", err)
		}
	}
	if n := len(srv.reqCh); n != maxQueue {
		t.Fatalf("queue depth %d after flood, want pinned at MaxQueue=%d", n, maxQueue)
	}
	if got := srv.shed.Load(); got != flood {
		t.Fatalf("shed counter %d, want %d", got, flood)
	}

	// The HTTP layer translates a shed into 503 + Retry-After (whole
	// seconds from ServerConfig.RetryAfter).
	hs := httptest.NewServer(srv.Handler())
	resp, err := http.Get(hs.URL + "/v1/predict?nodes=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request answered %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After header %q, want %q", ra, "2")
	}

	// Recovery: the dispatcher starts, drains the staged queue (none of the
	// staged work was lost to the flood), the shed total lands in stats, and
	// a fresh predict succeeds.
	go srv.dispatch()
	for i, c := range staged {
		if r := <-c; r.err != nil {
			t.Fatalf("staged request %d failed after dispatcher resumed: %v", i, r.err)
		}
	}
	if _, err := srv.Predict([]int32{2}); err != nil {
		t.Fatalf("predict after recovery: %v", err)
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shed != flood+1 {
		t.Fatalf("stats report %d shed requests, want %d (flood + HTTP probe)", st.Shed, flood+1)
	}

	hs.Close()
	srv.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak after flood: %d before, %d after", before, now)
	}
}
