// Package serve turns a trained BNS-GCN checkpoint into an online
// node-classification service. The training side of the repo computes
// full-graph passes; serving inverts the access pattern — many small queries
// against a mostly-static graph — so the engine precomputes every hidden
// layer once at startup, keeps the final layer's chunked pass permanently
// open, and answers each query batch with one row-subset pass over exactly
// the requested logit rows, riding the same tensor.MatMulRows/SpMMRows
// kernels the pipelined trainer uses. Because those row passes are pinned
// bit-identical to the one-shot Forward, a served logit row equals the
// FullTrainer.Forward(false) row for the same checkpoint, bit for bit.
//
// Feature updates do not recompute the graph: an incremental pass re-embeds
// only the changed node's receptive field — the frontier grows one
// neighborhood hop per layer — and evicts just the affected logit rows from
// the cache.
package serve

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Stats counts what the engine has done. All counters are cumulative; the
// engine is single-owner (see Server's dispatcher), so reads are exact.
type Stats struct {
	Predicts int64 `json:"predicts"` // Predict calls (batches)
	Nodes    int64 `json:"nodes"`    // node lookups across all Predict calls
	Hits     int64 `json:"hits"`     // lookups answered from the embedding cache
	Misses   int64 `json:"misses"`   // lookups that needed a fresh final-layer row pass
	Updates  int64 `json:"updates"`  // UpdateFeature calls
	// Recomputed counts hidden-layer rows re-embedded by updates;
	// Evicted counts final-layer cache rows invalidated by updates.
	Recomputed int64 `json:"recomputed"`
	Evicted    int64 `json:"evicted"`
	CacheLen   int   `json:"cache_len"`
	CacheCap   int   `json:"cache_cap"`
}

// Engine owns a model, a graph, and the activation state of a permanently
// open inference pass. It is NOT safe for concurrent use — the HTTP layer
// serializes access through a single dispatcher goroutine, which is also
// what makes request batching natural.
type Engine struct {
	g      *graph.Graph
	model  *core.Model
	invDeg []float32
	agg    *graph.AggIndex

	// acts[l] is the input to layer l (acts[0] is the mutable feature
	// copy); outs[l] is layer l's own output buffer, whose rows l's
	// ForwardRows fills. Hidden-layer outputs are mirrored into acts[l+1]
	// because the layer reuses its buffer across passes while acts must
	// stay authoritative.
	acts []*tensor.Matrix
	outs []*tensor.Matrix

	// Reverse CSR: revIndices[revIndptr[u]:revIndptr[u+1]] lists the nodes
	// whose aggregation reads u — the one-hop spread of a feature change.
	revIndptr  []int64
	revIndices []int32

	cache *lruCache
	// mark/stamp implement O(frontier) set membership without clearing.
	mark  []int64
	stamp int64
	stats Stats
}

// NewEngine precomputes all hidden activations for the graph and opens the
// final layer's row pass. feats is copied, and the model's weights are cloned
// into a private model — the caller keeps ownership of both. Cloning is
// load-bearing, not defensive copying for style: the engine's permanently
// open pass lives in the layers' forward state, and a shared trainer calling
// Forward on the same layer objects would silently re-point that state at
// its own activations.
func NewEngine(model *core.Model, g *graph.Graph, feats *tensor.Matrix, cacheSize int) (*Engine, error) {
	if feats.Rows != g.N {
		return nil, fmt.Errorf("serve: %d feature rows for a %d-node graph", feats.Rows, g.N)
	}
	if feats.Cols != model.InDim {
		return nil, fmt.Errorf("serve: feature dim %d, model wants %d", feats.Cols, model.InDim)
	}
	if cacheSize <= 0 {
		cacheSize = 1
	}
	clone, err := core.NewModel(model.Config, model.InDim, model.OutDim)
	if err != nil {
		return nil, err
	}
	clone.CopyWeightsFrom(model)
	model = clone
	e := &Engine{
		g:      g,
		model:  model,
		invDeg: nn.InvDegrees(g),
		agg:    graph.NewAggIndex(g),
		cache:  newLRUCache(cacheSize),
		mark:   make([]int64, g.N),
	}
	model.SetAgg(e.agg)

	// Reverse adjacency by counting sort over the edge list.
	e.revIndptr = make([]int64, g.N+1)
	for _, u := range g.Indices {
		e.revIndptr[u+1]++
	}
	for v := 0; v < g.N; v++ {
		e.revIndptr[v+1] += e.revIndptr[v]
	}
	e.revIndices = make([]int32, len(g.Indices))
	fill := make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		for _, u := range g.Indices[g.Indptr[v]:g.Indptr[v+1]] {
			e.revIndices[e.revIndptr[u]+fill[u]] = int32(v)
			fill[u]++
		}
	}

	// Startup pass: exactly FullTrainer.Forward(false) — dropout is identity
	// at inference, so the stack reduces to the layer forwards. Hidden
	// layers run one-shot and are mirrored; the final layer's pass is left
	// open (ForwardBegin + full prep) so ForwardRows can fill any logit row
	// on demand.
	L := len(model.LayersL)
	e.acts = make([]*tensor.Matrix, L)
	e.outs = make([]*tensor.Matrix, L)
	e.acts[0] = tensor.New(feats.Rows, feats.Cols)
	e.acts[0].CopyFrom(feats)
	for l := 0; l < L-1; l++ {
		layer := model.LayersL[l]
		out := layer.Forward(g, e.acts[l], g.N, e.invDeg)
		e.outs[l] = out
		e.acts[l+1] = tensor.New(out.Rows, out.Cols)
		e.acts[l+1].CopyFrom(out)
	}
	final := model.LayersL[L-1]
	e.outs[L-1] = final.ForwardBegin(g, e.acts[L-1], g.N, e.invDeg)
	final.ForwardPrep(0, g.N)
	return e, nil
}

// NumNodes returns the size of the served graph's node space.
func (e *Engine) NumNodes() int { return e.g.N }

// NumClasses returns the width of a logit row.
func (e *Engine) NumClasses() int { return e.model.OutDim }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	s.CacheLen = e.cache.len()
	s.CacheCap = e.cache.cap
	return s
}

// Predict returns the logit row for every requested node, in request order.
// Cached rows are served as-is; the misses — deduplicated — are computed in
// ONE final-layer row-subset pass, which is where batching pays: coalescing
// k concurrent single-node queries costs one kernel launch over k rows, not
// k launches. Every returned row is a private copy.
func (e *Engine) Predict(nodes []int32) ([][]float32, error) {
	for _, v := range nodes {
		if v < 0 || int(v) >= e.g.N {
			return nil, fmt.Errorf("serve: node %d outside [0,%d)", v, e.g.N)
		}
	}
	e.stats.Predicts++
	e.stats.Nodes += int64(len(nodes))

	// Batch-local rows: cache hits plus everything computed this batch. A
	// local map (not the cache) carries the batch so an eviction mid-batch
	// cannot drop a row a later request in the same batch needs.
	rows := make(map[int32][]float32, len(nodes))
	var miss []int32
	e.stamp++
	for _, v := range nodes {
		if _, ok := rows[v]; ok {
			e.stats.Hits++
			continue
		}
		if row, ok := e.cache.get(v); ok {
			rows[v] = row
			e.stats.Hits++
			continue
		}
		e.stats.Misses++
		if e.mark[v] != e.stamp {
			e.mark[v] = e.stamp
			miss = append(miss, v)
		}
	}
	if len(miss) > 0 {
		final := e.model.LayersL[len(e.model.LayersL)-1]
		final.ForwardRows(miss)
		out := e.outs[len(e.outs)-1]
		for _, v := range miss {
			row := append([]float32(nil), out.Row(int(v))...)
			rows[v] = row
			e.cache.put(v, row)
		}
	}
	res := make([][]float32, len(nodes))
	for i, v := range nodes {
		res[i] = rows[v]
	}
	return res, nil
}

// affected expands a set of changed input rows by one aggregation hop: the
// rows themselves (every layer reads its own row — SAGE's self-concat,
// GAT's self-attention slot) plus every node whose neighborhood contains
// one. Returns a sorted, duplicate-free list.
func (e *Engine) affected(changed []int32) []int32 {
	e.stamp++
	var out []int32
	add := func(v int32) {
		if e.mark[v] != e.stamp {
			e.mark[v] = e.stamp
			out = append(out, v)
		}
	}
	for _, u := range changed {
		add(u)
		for _, v := range e.revIndices[e.revIndptr[u]:e.revIndptr[u+1]] {
			add(v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// UpdateFeature replaces node's input features and re-embeds exactly its
// receptive field: the changed-row frontier starts at the node and widens by
// one hop per layer — hidden rows are recomputed in place, and the final
// layer's affected logit rows are evicted from the cache to be recomputed
// lazily on their next request. Returns the number of hidden rows
// recomputed plus logit rows evicted.
func (e *Engine) UpdateFeature(node int32, feat []float32) (int, error) {
	if node < 0 || int(node) >= e.g.N {
		return 0, fmt.Errorf("serve: node %d outside [0,%d)", node, e.g.N)
	}
	if len(feat) != e.model.InDim {
		return 0, fmt.Errorf("serve: %d features for node %d, model wants %d", len(feat), node, e.model.InDim)
	}
	e.stats.Updates++
	copy(e.acts[0].Row(int(node)), feat)

	touched := 0
	changed := []int32{node}
	L := len(e.model.LayersL)
	for l := 0; l < L; l++ {
		layer := e.model.LayersL[l]
		// Refresh per-input-row precomputations for the rows that changed
		// (GAT's Wh and attention scores; a no-op for SAGE) before any
		// output row that attends to them is recomputed.
		layer.ForwardPrepRows(changed)
		rows := e.affected(changed)
		if l < L-1 {
			layer.ForwardRows(rows)
			for _, v := range rows {
				copy(e.acts[l+1].Row(int(v)), e.outs[l].Row(int(v)))
			}
			e.stats.Recomputed += int64(len(rows))
		} else {
			for _, v := range rows {
				if e.cache.remove(v) {
					e.stats.Evicted++
				}
			}
		}
		touched += len(rows)
		changed = rows
	}
	return touched, nil
}
