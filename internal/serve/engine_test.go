package serve

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/tensor"
)

func testDataset(t testing.TB, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "serve-test", Nodes: 400, Communities: 5, AvgDegree: 7,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 10,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// trainedModel trains a FullTrainer for a few epochs (so the weights are not
// an init pattern) and returns it plus a snapshot of its exact inference
// logits — taken before the engine touches the model's layer state.
func trainedModel(t testing.TB, ds *datagen.Dataset, arch core.Arch, layers int) (*core.FullTrainer, *tensor.Matrix) {
	t.Helper()
	cfg := core.ModelConfig{Arch: arch, Layers: layers, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 7}
	ft, err := core.NewFullTrainer(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		ft.TrainEpoch()
	}
	logits := ft.Forward(false)
	ref := tensor.New(logits.Rows, logits.Cols)
	ref.CopyFrom(logits)
	return ft, ref
}

func rowsEqual(a []float32, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestPredictMatchesFullTrainer is the serving bit-identity contract: every
// logit row the engine serves — cache miss or hit, any batch split — equals
// the FullTrainer.Forward(false) row for the same weights, bit for bit.
func TestPredictMatchesFullTrainer(t *testing.T) {
	for _, tc := range []struct {
		arch   core.Arch
		layers int
	}{
		{core.ArchSAGE, 2},
		{core.ArchSAGE, 3},
		{core.ArchGAT, 2},
	} {
		t.Run(string(tc.arch)+"-"+string(rune('0'+tc.layers))+"layer", func(t *testing.T) {
			ds := testDataset(t, 11)
			ft, ref := trainedModel(t, ds, tc.arch, tc.layers)
			eng, err := NewEngine(ft.Model, ds.G, ds.Features, 64)
			if err != nil {
				t.Fatal(err)
			}
			// Uneven batch sizes, repeats within a batch, and re-requests of
			// cached rows all must produce the reference bits.
			var nodes []int32
			for v := 0; v < ds.G.N; v++ {
				nodes = append(nodes, int32(v))
			}
			for _, batch := range [][]int32{nodes[:7], nodes[5:100], {3, 3, 9}, nodes} {
				rows, err := eng.Predict(batch)
				if err != nil {
					t.Fatal(err)
				}
				for i, v := range batch {
					if !rowsEqual(rows[i], ref.Row(int(v))) {
						t.Fatalf("node %d: served logits %v != reference %v", v, rows[i], ref.Row(int(v)))
					}
				}
			}
			st := eng.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Fatalf("exercise should produce both hits and misses: %+v", st)
			}
		})
	}
}

// TestEngineFromHydratedCheckpoint pins the full serving path: trainer
// checkpoint on disk → weights-only hydration → engine → bit-identical
// logits. This is exactly what cmd/bnsserve does at startup.
func TestEngineFromHydratedCheckpoint(t *testing.T) {
	ds := testDataset(t, 12)
	ft, ref := trainedModel(t, ds, core.ArchSAGE, 2)
	path := filepath.Join(t.TempDir(), "m.bnsc")
	if err := core.SaveCheckpointFile(path, ft.Model); err != nil {
		t.Fatal(err)
	}
	m, err := core.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(m, ds.G, ds.Features, 32)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []int32
	for v := 0; v < ds.G.N; v++ {
		nodes = append(nodes, int32(v))
	}
	rows, err := eng.Predict(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range nodes {
		if !rowsEqual(rows[i], ref.Row(int(v))) {
			t.Fatalf("node %d: hydrated-checkpoint logits differ from the training model's", v)
		}
	}
}

// TestCacheCountersAndEviction: the LRU must bound itself at capacity, serve
// repeats from cache, and recompute evicted rows correctly.
func TestCacheCountersAndEviction(t *testing.T) {
	ds := testDataset(t, 13)
	ft, ref := trainedModel(t, ds, core.ArchSAGE, 2)
	eng, err := NewEngine(ft.Model, ds.G, ds.Features, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict([]int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.Misses != 2 || st.Hits != 0 || st.CacheLen != 2 || st.CacheCap != 2 {
		t.Fatalf("after first batch: %+v", st)
	}
	if _, err := eng.Predict([]int32{0, 1}); err != nil {
		t.Fatal(err)
	}
	if st = eng.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("repeat batch should be all hits: %+v", st)
	}
	// Node 2 evicts the LRU entry (node 0); re-requesting 0 is a miss whose
	// recompute must still produce the reference bits.
	if _, err := eng.Predict([]int32{2}); err != nil {
		t.Fatal(err)
	}
	rows, err := eng.Predict([]int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(rows[0], ref.Row(0)) {
		t.Fatal("re-computed evicted row differs from reference")
	}
	if st = eng.Stats(); st.Misses != 4 || st.CacheLen != 2 {
		t.Fatalf("after eviction cycle: %+v", st)
	}
	// Out-of-range requests are rejected, not served.
	if _, err := eng.Predict([]int32{int32(ds.G.N)}); err == nil {
		t.Fatal("predict accepted an out-of-range node")
	}
	if _, err := eng.Predict([]int32{-1}); err == nil {
		t.Fatal("predict accepted a negative node")
	}
}

// TestUpdateFeatureMatchesFullRecompute is the incremental-update
// correctness contract: after an update, every served logit row — affected
// or not — must equal a from-scratch full-graph pass over the modified
// features, bit for bit. Covers SAGE (2- and 3-layer receptive fields) and
// GAT (attention re-prep on the changed rows).
func TestUpdateFeatureMatchesFullRecompute(t *testing.T) {
	for _, tc := range []struct {
		arch   core.Arch
		layers int
	}{
		{core.ArchSAGE, 2},
		{core.ArchSAGE, 3},
		{core.ArchGAT, 2},
	} {
		t.Run(string(tc.arch)+"-"+string(rune('0'+tc.layers))+"layer", func(t *testing.T) {
			ds := testDataset(t, 14)
			ft, _ := trainedModel(t, ds, tc.arch, tc.layers)
			eng, err := NewEngine(ft.Model, ds.G, ds.Features, 1024)
			if err != nil {
				t.Fatal(err)
			}
			var nodes []int32
			for v := 0; v < ds.G.N; v++ {
				nodes = append(nodes, int32(v))
			}
			// Warm the whole cache so the update's eviction is load-bearing:
			// stale cached rows would survive a missing eviction and fail below.
			if _, err := eng.Predict(nodes); err != nil {
				t.Fatal(err)
			}

			// Mutate two nodes' features (one hub-ish, one arbitrary).
			newFeat := make([]float32, ds.FeatureDim())
			for j := range newFeat {
				newFeat[j] = float32(j)*0.25 - 1
			}
			touched, err := eng.UpdateFeature(5, newFeat)
			if err != nil {
				t.Fatal(err)
			}
			if touched == 0 {
				t.Fatal("update re-embedded nothing")
			}
			neg := make([]float32, ds.FeatureDim())
			for j := range neg {
				neg[j] = -newFeat[j]
			}
			if _, err := eng.UpdateFeature(200, neg); err != nil {
				t.Fatal(err)
			}

			// From-scratch reference over the modified features: a fresh
			// dataset (same seed), mutated the same way, same weights.
			ds2 := testDataset(t, 14)
			copy(ds2.Features.Row(5), newFeat)
			copy(ds2.Features.Row(200), neg)
			cfg := ft.Model.Config
			ft2, err := core.NewFullTrainer(ds2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ft2.Model.CopyWeightsFrom(ft.Model)
			ref := ft2.Forward(false)

			rows, err := eng.Predict(nodes)
			if err != nil {
				t.Fatal(err)
			}
			for i, v := range nodes {
				if !rowsEqual(rows[i], ref.Row(int(v))) {
					t.Fatalf("node %d after update: served logits differ from full recompute", v)
				}
			}
			st := eng.Stats()
			if st.Updates != 2 || st.Recomputed == 0 || st.Evicted == 0 {
				t.Fatalf("update stats: %+v", st)
			}
			// The whole point: an update must NOT have recomputed the graph.
			if int(st.Recomputed) >= ds.G.N {
				t.Fatalf("update recomputed %d hidden rows on a %d-node graph — not incremental", st.Recomputed, ds.G.N)
			}

			// Bad updates are rejected without touching state.
			if _, err := eng.UpdateFeature(int32(ds.G.N), newFeat); err == nil {
				t.Fatal("update accepted an out-of-range node")
			}
			if _, err := eng.UpdateFeature(0, newFeat[:1]); err == nil {
				t.Fatal("update accepted a wrong-width feature row")
			}
		})
	}
}
