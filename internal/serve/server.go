package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The HTTP layer. The engine is single-owner, so instead of wrapping it in
// locks the server funnels every operation through one dispatcher goroutine.
// That serialization is not a bottleneck — it is the batching mechanism:
// predict requests that pile up while a pass is running are drained together
// and answered by ONE row-subset kernel pass, so concurrency raises rows per
// pass instead of contention.

// ServerConfig tunes the request path.
type ServerConfig struct {
	// MaxBatch bounds how many queued predict requests one dispatch
	// coalesces into a single engine pass. Default 64.
	MaxBatch int
	// MaxQueue bounds how many predict requests may wait for the dispatcher
	// at once. A request arriving at a full queue is shed immediately with
	// ErrOverloaded (HTTP 503 + Retry-After) instead of parking a handler
	// goroutine — load beyond this depth costs the sender a retry, not the
	// server unbounded memory. Default 4×MaxBatch.
	MaxQueue int
	// RetryAfter is the backoff hint shed responses carry in their
	// Retry-After header, rounded up to whole seconds. Default 1s.
	RetryAfter time.Duration
}

// ServerStats extends the engine counters with batching telemetry.
type ServerStats struct {
	Stats
	// Batches is the number of engine passes the dispatcher ran; Batched is
	// the total predict requests they answered. Batched/Batches is the
	// realized coalescing factor — 1.0 under sequential load, rising with
	// concurrency.
	Batches int64 `json:"batches"`
	Batched int64 `json:"batched_requests"`
	// MaxBatched is the largest single coalesced batch observed.
	MaxBatched int `json:"max_batched"`
	// Shed counts predict requests rejected with ErrOverloaded because the
	// dispatcher queue was full when they arrived.
	Shed int64 `json:"shed_requests"`
}

type predictReq struct {
	nodes []int32
	resp  chan predictResp
}

type predictResp struct {
	rows [][]float32
	err  error
}

type updateReq struct {
	node int32
	feat []float32
	resp chan updateResp
}

type updateResp struct {
	touched int
	err     error
}

// Server owns an Engine and serves it over HTTP.
type Server struct {
	eng        *Engine
	maxBatch   int
	retryAfter time.Duration

	reqCh   chan predictReq
	updCh   chan updateReq
	statsCh chan chan ServerStats

	batches    int64
	batched    int64
	maxBatched int
	shed       atomic.Int64

	closeOnce sync.Once
	done      chan struct{}
	stopped   chan struct{}
}

// NewServer wraps eng and starts the dispatcher. Close releases it.
func NewServer(eng *Engine, cfg ServerConfig) *Server {
	s := newServer(eng, cfg)
	go s.dispatch()
	return s
}

// newServer builds the server without starting the dispatcher — the test
// seam that lets a queue be staged and drained deterministically.
func newServer(eng *Engine, cfg ServerConfig) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 64
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxBatch
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	s := &Server{
		eng:        eng,
		maxBatch:   cfg.MaxBatch,
		retryAfter: cfg.RetryAfter,
		reqCh:      make(chan predictReq, cfg.MaxQueue),
		updCh:      make(chan updateReq),
		statsCh:    make(chan chan ServerStats),
		done:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	return s
}

// Close stops the dispatcher. In-flight handler requests receive an error;
// callers should stop the http.Server first (Shutdown drains handlers).
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.done) })
	<-s.stopped
}

// dispatch is the engine's single owner: it alternates between coalesced
// predict batches, feature updates, and stats snapshots, in arrival order.
func (s *Server) dispatch() {
	defer close(s.stopped)
	for {
		select {
		case <-s.done:
			return
		case u := <-s.updCh:
			touched, err := s.eng.UpdateFeature(u.node, u.feat)
			u.resp <- updateResp{touched: touched, err: err}
		case c := <-s.statsCh:
			c <- s.snapshot()
		case r := <-s.reqCh:
			batch := []predictReq{r}
			// Drain whatever else queued while we were busy — this is the
			// whole batching mechanism. No linger timer: under sequential
			// load the queue is empty and latency stays one pass; under
			// concurrent load the queue is the batch.
		drain:
			for len(batch) < s.maxBatch {
				select {
				case r2 := <-s.reqCh:
					batch = append(batch, r2)
				default:
					break drain
				}
			}
			var all []int32
			for _, b := range batch {
				all = append(all, b.nodes...)
			}
			rows, err := s.eng.Predict(all)
			s.batches++
			s.batched += int64(len(batch))
			if len(batch) > s.maxBatched {
				s.maxBatched = len(batch)
			}
			off := 0
			for _, b := range batch {
				if err != nil {
					b.resp <- predictResp{err: err}
					continue
				}
				b.resp <- predictResp{rows: rows[off : off+len(b.nodes)]}
				off += len(b.nodes)
			}
		}
	}
}

func (s *Server) snapshot() ServerStats {
	return ServerStats{
		Stats:      s.eng.Stats(),
		Batches:    s.batches,
		Batched:    s.batched,
		MaxBatched: s.maxBatched,
		Shed:       s.shed.Load(),
	}
}

// errClosed is what handlers report when the dispatcher has been closed.
var errClosed = fmt.Errorf("serve: server is shut down")

// ErrOverloaded is returned by Predict when the dispatcher queue is full:
// the request was shed without being enqueued. Callers should back off and
// retry; the HTTP layer translates this to 503 with a Retry-After header.
var ErrOverloaded = fmt.Errorf("serve: predict queue is full, request shed")

// Predict routes one request through the dispatcher. It never blocks on a
// full queue — load past MaxQueue is shed with ErrOverloaded so the number
// of parked requests (and the memory holding them) stays bounded.
func (s *Server) Predict(nodes []int32) ([][]float32, error) {
	resp := make(chan predictResp, 1)
	select {
	case s.reqCh <- predictReq{nodes: nodes, resp: resp}:
	case <-s.done:
		return nil, errClosed
	default:
		s.shed.Add(1)
		return nil, ErrOverloaded
	}
	select {
	case r := <-resp:
		return r.rows, r.err
	case <-s.done:
		return nil, errClosed
	}
}

// Update routes one feature update through the dispatcher.
func (s *Server) Update(node int32, feat []float32) (int, error) {
	resp := make(chan updateResp, 1)
	select {
	case s.updCh <- updateReq{node: node, feat: feat, resp: resp}:
	case <-s.done:
		return 0, errClosed
	}
	select {
	case r := <-resp:
		return r.touched, r.err
	case <-s.done:
		return 0, errClosed
	}
}

// Stats returns a consistent snapshot via the dispatcher.
func (s *Server) Stats() (ServerStats, error) {
	c := make(chan ServerStats, 1)
	select {
	case s.statsCh <- c:
	case <-s.done:
		return ServerStats{}, errClosed
	}
	select {
	case st := <-c:
		return st, nil
	case <-s.done:
		return ServerStats{}, errClosed
	}
}

// argmax mirrors metrics.Accuracy's rule: NaN never wins, ties break to the
// lowest class, -1 when no comparable logit exists.
func argmax(row []float32) int {
	best := -1
	for j, v := range row {
		if v != v {
			continue
		}
		if best < 0 || v > row[best] {
			best = j
		}
	}
	return best
}

// Handler returns the HTTP API:
//
//	GET  /v1/healthz              liveness + graph/model shape
//	GET  /v1/stats                engine and batching counters
//	POST /v1/predict              {"nodes":[1,2]} -> logits + argmax classes
//	GET  /v1/predict?nodes=1,2    same, query-string form
//	POST /v1/update               {"node":5,"features":[...]} -> rows touched
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/predict", s.handlePredict)
	mux.HandleFunc("/v1/update", s.handleUpdate)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"nodes":   s.eng.NumNodes(),
		"classes": s.eng.NumClasses(),
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats()
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// parseNodes accepts the query form "?nodes=1,2,3" or a JSON body
// {"nodes":[1,2,3]}.
func parseNodes(r *http.Request) ([]int32, error) {
	if q := r.URL.Query().Get("nodes"); q != "" {
		parts := strings.Split(q, ",")
		nodes := make([]int32, 0, len(parts))
		for _, p := range parts {
			n, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("serve: bad node %q: %w", p, err)
			}
			nodes = append(nodes, int32(n))
		}
		return nodes, nil
	}
	var body struct {
		Nodes []int32 `json:"nodes"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("serve: bad predict body: %w", err)
	}
	return body.Nodes, nil
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	nodes, err := parseNodes(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if len(nodes) == 0 {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: no nodes requested"))
		return
	}
	rows, err := s.Predict(nodes)
	if err != nil {
		code := http.StatusBadRequest
		switch err {
		case errClosed:
			code = http.StatusServiceUnavailable
		case ErrOverloaded:
			code = http.StatusServiceUnavailable
			secs := int(s.retryAfter.Round(time.Second) / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeErr(w, code, err)
		return
	}
	classes := make([]int, len(rows))
	for i, row := range rows {
		classes[i] = argmax(row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"nodes":   nodes,
		"classes": classes,
		"logits":  rows,
	})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("serve: update requires POST"))
		return
	}
	var body struct {
		Node     int32     `json:"node"`
		Features []float32 `json:"features"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("serve: bad update body: %w", err))
		return
	}
	touched, err := s.Update(body.Node, body.Features)
	if err != nil {
		code := http.StatusBadRequest
		if err == errClosed {
			code = http.StatusServiceUnavailable
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": body.Node, "touched": touched})
}
