package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/core"
)

func testServer(t *testing.T) (*Server, *httptest.Server, *core.FullTrainer) {
	t.Helper()
	ds := testDataset(t, 21)
	ft, _ := trainedModel(t, ds, core.ArchSAGE, 2)
	eng, err := NewEngine(ft.Model, ds.G, ds.Features, 256)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, ServerConfig{MaxBatch: 16})
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs, ft
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body any, out any) int {
	t.Helper()
	raw, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: %v", url, err)
	}
	return resp.StatusCode
}

type predictBody struct {
	Nodes   []int32     `json:"nodes"`
	Classes []int       `json:"classes"`
	Logits  [][]float32 `json:"logits"`
}

// TestHTTPEndpoints drives every endpoint through a real HTTP round trip
// and checks the served logits against the trainer's inference bits.
func TestHTTPEndpoints(t *testing.T) {
	_, hs, ft := testServer(t)
	ref := ft.Forward(false)

	var health map[string]any
	if code := getJSON(t, hs.URL+"/v1/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthz %v", health)
	}

	// Query-string form.
	var pr predictBody
	if code := getJSON(t, hs.URL+"/v1/predict?nodes=0,5,9", &pr); code != http.StatusOK {
		t.Fatalf("predict status %d", code)
	}
	if len(pr.Logits) != 3 || len(pr.Classes) != 3 {
		t.Fatalf("predict returned %d logits, %d classes", len(pr.Logits), len(pr.Classes))
	}
	for i, v := range []int{0, 5, 9} {
		if !rowsEqual(pr.Logits[i], ref.Row(v)) {
			t.Fatalf("node %d: HTTP logits differ from trainer inference", v)
		}
		if pr.Classes[i] != argmax(ref.Row(v)) {
			t.Fatalf("node %d: class %d, want %d", v, pr.Classes[i], argmax(ref.Row(v)))
		}
	}

	// JSON-body form must agree with the query form.
	var pr2 predictBody
	if code := postJSON(t, hs.URL+"/v1/predict", map[string]any{"nodes": []int32{5}}, &pr2); code != http.StatusOK {
		t.Fatalf("predict POST status %d", code)
	}
	if !rowsEqual(pr2.Logits[0], pr.Logits[1]) {
		t.Fatal("POST and GET predict disagree")
	}

	// Update shifts the node's logits; a fresh predict must see it.
	feats := make([]float32, ft.DS.FeatureDim())
	for j := range feats {
		feats[j] = 2
	}
	var ur map[string]any
	if code := postJSON(t, hs.URL+"/v1/update", map[string]any{"node": 5, "features": feats}, &ur); code != http.StatusOK {
		t.Fatalf("update status %d: %v", code, ur)
	}
	if ur["touched"].(float64) <= 0 {
		t.Fatalf("update touched %v rows", ur["touched"])
	}
	var pr3 predictBody
	getJSON(t, hs.URL+"/v1/predict?nodes=5", &pr3)
	if rowsEqual(pr3.Logits[0], pr.Logits[1]) {
		t.Fatal("logits unchanged after a feature update")
	}

	var st ServerStats
	if code := getJSON(t, hs.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Predicts == 0 || st.Batches == 0 || st.Updates != 1 {
		t.Fatalf("stats %+v", st)
	}

	// Bad requests get 4xx, not a hang or a panic.
	var e map[string]any
	if code := getJSON(t, hs.URL+"/v1/predict?nodes=999999", &e); code != http.StatusBadRequest {
		t.Fatalf("out-of-range predict status %d", code)
	}
	if code := getJSON(t, hs.URL+"/v1/predict?nodes=abc", &e); code != http.StatusBadRequest {
		t.Fatalf("garbage predict status %d", code)
	}
	if code := postJSON(t, hs.URL+"/v1/update", map[string]any{"node": 0, "features": []float32{1}}, &e); code != http.StatusBadRequest {
		t.Fatalf("bad-width update status %d", code)
	}
}

// TestConcurrentClientsBatchAndAgree hammers the server from many goroutines
// (this test is the -race exercise for the dispatcher) and checks that every
// response carries the right bits and that coalescing actually happened.
func TestConcurrentClientsBatchAndAgree(t *testing.T) {
	srv, hs, ft := testServer(t)
	ref := ft.Forward(false)
	n := ft.DS.G.N

	const clients, perClient = 16, 30
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				v := (c*perClient + i*7) % n
				var pr predictBody
				resp, err := http.Get(fmt.Sprintf("%s/v1/predict?nodes=%d", hs.URL, v))
				if err != nil {
					errs <- err
					return
				}
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if !rowsEqual(pr.Logits[0], ref.Row(v)) {
					errs <- fmt.Errorf("node %d: concurrent response has wrong bits", v)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batched != clients*perClient {
		t.Fatalf("answered %d requests, want %d", st.Batched, clients*perClient)
	}
}

// TestDispatcherCoalescesQueuedRequests pins the batching mechanism itself,
// deterministically: requests staged in the queue before the dispatcher
// wakes must be answered by ONE engine pass — and each response must carry
// its own request's rows, in order, despite the shared pass.
func TestDispatcherCoalescesQueuedRequests(t *testing.T) {
	ds := testDataset(t, 23)
	ft, _ := trainedModel(t, ds, core.ArchSAGE, 2)
	ref := ft.Forward(false)
	eng, err := NewEngine(ft.Model, ds.G, ds.Features, 256)
	if err != nil {
		t.Fatal(err)
	}
	srv := newServer(eng, ServerConfig{MaxBatch: 16})
	// Stage 8 requests — some multi-node, one duplicating another's node —
	// in the buffered queue, THEN start the dispatcher.
	reqs := [][]int32{{0}, {1, 2}, {3}, {1}, {4, 5, 6}, {7}, {8}, {2}}
	resps := make([]chan predictResp, len(reqs))
	for i, nodes := range reqs {
		resps[i] = make(chan predictResp, 1)
		srv.reqCh <- predictReq{nodes: nodes, resp: resps[i]}
	}
	go srv.dispatch()
	defer srv.Close()
	for i, nodes := range reqs {
		r := <-resps[i]
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.rows) != len(nodes) {
			t.Fatalf("request %d got %d rows for %d nodes", i, len(r.rows), len(nodes))
		}
		for j, v := range nodes {
			if !rowsEqual(r.rows[j], ref.Row(int(v))) {
				t.Fatalf("request %d node %d: wrong bits out of the coalesced pass", i, v)
			}
		}
	}
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.Batched != int64(len(reqs)) || st.MaxBatched != len(reqs) {
		t.Fatalf("staged queue should drain in one pass: %+v", st)
	}
	// All 11 lookups are cold (a within-pass duplicate is not a cache hit),
	// but the pass itself dedups: only the 9 distinct nodes enter the cache.
	if st.Misses != 11 || st.Hits != 0 || st.CacheLen != 9 {
		t.Fatalf("coalesced pass dedup: %+v", st)
	}
}

// TestServerClose: a closed server answers with errors, not deadlocks.
func TestServerClose(t *testing.T) {
	ds := testDataset(t, 22)
	ft, _ := trainedModel(t, ds, core.ArchSAGE, 2)
	eng, err := NewEngine(ft.Model, ds.G, ds.Features, 16)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, ServerConfig{})
	if _, err := srv.Predict([]int32{0}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := srv.Predict([]int32{0}); err == nil {
		t.Fatal("predict succeeded after Close")
	}
	if _, err := srv.Update(0, make([]float32, ds.FeatureDim())); err == nil {
		t.Fatal("update succeeded after Close")
	}
	if _, err := srv.Stats(); err == nil {
		t.Fatal("stats succeeded after Close")
	}
	srv.Close() // idempotent
}
