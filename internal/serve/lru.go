package serve

import "container/list"

// lruCache is a fixed-capacity least-recently-used map from node id to its
// cached logit row. Plain intrusive-list LRU; no concurrency — the engine's
// single owner is the only caller.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used
	items map[int32]*list.Element
}

type lruEntry struct {
	node int32
	row  []float32
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[int32]*list.Element, capacity)}
}

func (c *lruCache) len() int { return c.order.Len() }

// get returns the cached row and bumps it to most-recently-used.
func (c *lruCache) get(node int32) ([]float32, bool) {
	el, ok := c.items[node]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).row, true
}

// put inserts or refreshes a row, evicting the least-recently-used entry
// when over capacity.
func (c *lruCache) put(node int32, row []float32) {
	if el, ok := c.items[node]; ok {
		el.Value.(*lruEntry).row = row
		c.order.MoveToFront(el)
		return
	}
	c.items[node] = c.order.PushFront(&lruEntry{node: node, row: row})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).node)
	}
}

// remove drops a node's entry, reporting whether it was present.
func (c *lruCache) remove(node int32) bool {
	el, ok := c.items[node]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, node)
	return true
}
