// Package graph provides the compressed-sparse-row (CSR) graph structure and
// the subgraph operations used throughout the BNS-GCN reproduction: building
// from edge lists, node-induced subgraphs, degree statistics and validation.
//
// Graphs are undirected and stored symmetrically: every edge (u,v) appears in
// both u's and v's adjacency lists, matching the paper's GCN setting where
// neighbor aggregation is over the undirected neighborhood.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected graph in CSR form. Node ids are dense in [0, N).
// Indptr has length N+1; the neighbors of node v are
// Indices[Indptr[v]:Indptr[v+1]], sorted ascending with no duplicates and no
// self-loops (self-loops are handled by the GCN layers themselves).
type Graph struct {
	N       int
	Indptr  []int64
	Indices []int32
}

// NumEdges returns the number of undirected edges (each stored twice).
func (g *Graph) NumEdges() int64 { return int64(len(g.Indices)) / 2 }

// NumDirectedEdges returns the number of stored (directed) adjacency entries.
func (g *Graph) NumDirectedEdges() int64 { return int64(len(g.Indices)) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int32) int {
	return int(g.Indptr[v+1] - g.Indptr[v])
}

// Neighbors returns the (shared, read-only) neighbor slice of v.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Indices[g.Indptr[v]:g.Indptr[v+1]]
}

// AvgDegree returns the average node degree, O(1) from the Indptr endpoints
// (the stored arc count over the node count).
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.Indptr[g.N]-g.Indptr[0]) / float64(g.N)
}

// MaxDegree returns the largest node degree. A true O(1) answer would need a
// cached field, which the in-place epoch-subgraph rebuild would silently
// stale — so this stays a single branch-light pass over adjacent Indptr
// entries, with no per-node method calls or Indices touches.
func (g *Graph) MaxDegree() int {
	if g.N == 0 {
		return 0 // zero-value Graph has nil Indptr
	}
	var mx int64
	prev := g.Indptr[0]
	for _, p := range g.Indptr[1 : g.N+1] {
		if d := p - prev; d > mx {
			mx = d
		}
		prev = p
	}
	return int(mx)
}

// HasEdge reports whether u and v are adjacent (binary search).
func (g *Graph) HasEdge(u, v int32) bool {
	nbrs := g.Neighbors(u)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= v })
	return i < len(nbrs) && nbrs[i] == v
}

// Validate checks the CSR invariants: monotone indptr, sorted unique
// neighbor lists, no self loops, symmetric adjacency, ids in range.
func (g *Graph) Validate() error {
	if len(g.Indptr) != g.N+1 {
		return fmt.Errorf("graph: indptr length %d, want %d", len(g.Indptr), g.N+1)
	}
	if g.Indptr[0] != 0 || g.Indptr[g.N] != int64(len(g.Indices)) {
		return fmt.Errorf("graph: indptr endpoints [%d,%d], want [0,%d]", g.Indptr[0], g.Indptr[g.N], len(g.Indices))
	}
	for v := 0; v < g.N; v++ {
		if g.Indptr[v] > g.Indptr[v+1] {
			return fmt.Errorf("graph: indptr not monotone at %d", v)
		}
		nbrs := g.Indices[g.Indptr[v]:g.Indptr[v+1]]
		for i, u := range nbrs {
			if u < 0 || int(u) >= g.N {
				return fmt.Errorf("graph: node %d neighbor %d out of range", v, u)
			}
			if int(u) == v {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("graph: node %d neighbors not sorted/unique", v)
			}
		}
	}
	// Symmetry: count directed edges per (min,max) pair cheaply by checking
	// each stored arc has its reverse.
	for v := int32(0); v < int32(g.N); v++ {
		for _, u := range g.Neighbors(v) {
			if !g.HasEdge(u, v) {
				return fmt.Errorf("graph: missing reverse edge %d->%d", u, v)
			}
		}
	}
	return nil
}

// Builder accumulates undirected edges and produces a canonical Graph.
type Builder struct {
	n   int
	src []int32
	dst []int32
}

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge (u,v). Self-loops and duplicates are
// tolerated and removed at Build time.
func (b *Builder) AddEdge(u, v int32) {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.src = append(b.src, u, v)
	b.dst = append(b.dst, v, u)
}

// EdgeCount returns the number of undirected edges added so far (including
// any duplicates and self loops that Build will drop).
func (b *Builder) EdgeCount() int { return len(b.src) / 2 }

// Build produces the canonical CSR graph: symmetric, sorted, deduplicated,
// self-loop-free. The builder can be reused afterwards.
func (b *Builder) Build() *Graph {
	n := b.n
	// Counting sort arcs by source.
	counts := make([]int64, n+1)
	for _, s := range b.src {
		counts[s+1]++
	}
	for i := 0; i < n; i++ {
		counts[i+1] += counts[i]
	}
	indptr := make([]int64, n+1)
	copy(indptr, counts)
	indices := make([]int32, len(b.src))
	fill := make([]int64, n)
	for i, s := range b.src {
		indices[indptr[s]+fill[s]] = b.dst[i]
		fill[s]++
	}
	// Sort, dedupe, drop self loops per row; compact in place.
	out := indices[:0]
	newptr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		row := indices[indptr[v]:indptr[v+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		start := len(out)
		var prev int32 = -1
		for _, u := range row {
			if u == int32(v) || u == prev {
				continue
			}
			out = append(out, u)
			prev = u
		}
		newptr[v+1] = newptr[v] + int64(len(out)-start)
	}
	final := make([]int32, len(out))
	copy(final, out)
	return &Graph{N: n, Indptr: newptr, Indices: final}
}

// InducedSubgraph returns the node-induced subgraph on nodes (which need not
// be sorted), plus the mapping from new local ids to original ids (= nodes as
// given). Edges are kept iff both endpoints are in nodes. Local ids follow
// the order of the input slice.
func InducedSubgraph(g *Graph, nodes []int32) *Graph {
	local := make(map[int32]int32, len(nodes))
	for i, v := range nodes {
		local[v] = int32(i)
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, u := range g.Neighbors(v) {
			if lu, ok := local[u]; ok && lu > int32(i) { // add each edge once
				b.AddEdge(int32(i), lu)
			}
		}
	}
	return b.Build()
}

// DegreeHistogram returns counts of nodes per degree, up to maxDeg (the last
// bucket collects all degrees >= maxDeg).
func DegreeHistogram(g *Graph, maxDeg int) []int {
	h := make([]int, maxDeg+1)
	for v := int32(0); v < int32(g.N); v++ {
		d := g.Degree(v)
		if d >= maxDeg {
			d = maxDeg
		}
		h[d]++
	}
	return h
}

// ConnectedComponents returns a component label per node and the number of
// components (BFS).
func ConnectedComponents(g *Graph) ([]int32, int) {
	label := make([]int32, g.N)
	for i := range label {
		label[i] = -1
	}
	var queue []int32
	next := int32(0)
	for s := int32(0); s < int32(g.N); s++ {
		if label[s] != -1 {
			continue
		}
		label[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.Neighbors(v) {
				if label[u] == -1 {
					label[u] = next
					queue = append(queue, u)
				}
			}
		}
		next++
	}
	return label, int(next)
}
