package graph

import (
	"math/rand"
	"runtime"
	"testing"
)

// randAggGraph builds a small random symmetric graph with some isolated
// nodes and one hub.
func randAggGraph(t *testing.T, n int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := int32(rng.Intn(n-2)), int32(rng.Intn(n-2)) // nodes n-2, n-1 stay isolated
		if u != v {
			b.AddEdge(u, v)
		}
	}
	for i := 1; i < n-2; i++ { // node 0 is a hub
		b.AddEdge(0, int32(i))
	}
	g := b.Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// TestAggIndexTranspose pins the incoming index: for every destination u,
// IncSrc lists exactly the sources v with u ∈ N(v), ascending.
func TestAggIndexTranspose(t *testing.T) {
	g := randAggGraph(t, 40, 1)
	ai := NewAggIndex(g)
	if len(ai.IncIndptr) != g.N+1 || int(ai.IncIndptr[g.N]) != len(g.Indices) {
		t.Fatalf("incoming index covers %d of %d arcs", ai.IncIndptr[g.N], len(g.Indices))
	}
	for u := int32(0); u < int32(g.N); u++ {
		incoming := ai.IncSrc[ai.IncIndptr[u]:ai.IncIndptr[u+1]]
		var want []int32
		for v := int32(0); v < int32(g.N); v++ {
			for _, w := range g.Neighbors(v) {
				if w == u {
					want = append(want, v)
				}
			}
		}
		if len(incoming) != len(want) {
			t.Fatalf("node %d: %d incoming, want %d", u, len(incoming), len(want))
		}
		for i := range want {
			if incoming[i] != want[i] {
				t.Fatalf("node %d: incoming[%d]=%d, want %d (must ascend)", u, i, incoming[i], want[i])
			}
		}
	}
}

// TestAggIndexRebuildInPlace pins the epoch-loop contract: rebuilding on a
// different graph reuses storage (no allocation once capacities warmed) and
// fully replaces the contents.
func TestAggIndexRebuildInPlace(t *testing.T) {
	big := randAggGraph(t, 60, 2)
	small := randAggGraph(t, 30, 3)
	ai := NewAggIndex(big)
	allocs := testing.AllocsPerRun(10, func() {
		ai.Build(small)
		ai.Build(big)
	})
	if allocs > 0 {
		t.Fatalf("steady-state rebuild allocates %v objects", allocs)
	}
	ai.Build(small)
	if len(ai.IncIndptr) != small.N+1 || int(ai.IncIndptr[small.N]) != len(small.Indices) {
		t.Fatal("rebuild did not replace contents")
	}
}

// chunkWeights checks the EdgeChunks invariants and returns per-chunk
// weights.
func checkChunks(t *testing.T, indptr []int64, chunks []int32, target int64) {
	t.Helper()
	n := len(indptr) - 1
	if chunks[0] != 0 || chunks[len(chunks)-1] != int32(n) {
		t.Fatalf("chunk endpoints [%d,%d], want [0,%d]", chunks[0], chunks[len(chunks)-1], n)
	}
	for c := 0; c+1 < len(chunks); c++ {
		lo, hi := chunks[c], chunks[c+1]
		if lo >= hi {
			t.Fatalf("chunk %d empty or descending: [%d,%d)", c, lo, hi)
		}
		w := indptr[hi] - indptr[lo] + int64(hi-lo)*chunkRowCost
		if w > target && hi-lo > 1 {
			// A multi-row chunk may exceed target only via its last row.
			prev := indptr[hi-1] - indptr[lo] + int64(hi-1-lo)*chunkRowCost
			if prev >= target {
				t.Fatalf("chunk %d [%d,%d) weight %d exceeds target %d before its last row", c, lo, hi, w, target)
			}
		}
	}
}

func TestEdgeChunksBalance(t *testing.T) {
	g := randAggGraph(t, 100, 4)
	for _, target := range []int64{1, 16, 64, 1 << 20} {
		chunks := EdgeChunks(g.Indptr, target, nil)
		checkChunks(t, g.Indptr, chunks, target)
	}
	// A mega row must land in its own chunk when the target is below its
	// degree (node 0 is the hub).
	hubDeg := int64(g.Degree(0))
	chunks := EdgeChunks(g.Indptr, hubDeg/2, nil)
	checkChunks(t, g.Indptr, chunks, hubDeg/2)
	if chunks[1] != 1 {
		t.Fatalf("hub row not isolated: first boundary %d", chunks[1])
	}
}

func TestChunkTarget(t *testing.T) {
	g := randAggGraph(t, 200, 5)
	n := g.N
	total := g.Indptr[n] - g.Indptr[0] + int64(n)*chunkRowCost
	if tg := ChunkTarget(g.Indptr, 1); tg <= total {
		t.Fatalf("1-worker target %d must exceed total weight %d (single chunk)", tg, total)
	}
	tg := ChunkTarget(g.Indptr, 8)
	if tg < minChunkWeight {
		t.Fatalf("target %d below floor %d", tg, minChunkWeight)
	}
	chunks := EdgeChunks(g.Indptr, tg, nil)
	checkChunks(t, g.Indptr, chunks, tg)
}

// checkChunksCost is checkChunks with an explicit per-row weight.
func checkChunksCost(t *testing.T, indptr []int64, chunks []int32, target, rowCost int64) {
	t.Helper()
	n := len(indptr) - 1
	if chunks[0] != 0 || chunks[len(chunks)-1] != int32(n) {
		t.Fatalf("chunk endpoints [%d,%d], want [0,%d]", chunks[0], chunks[len(chunks)-1], n)
	}
	for c := 0; c+1 < len(chunks); c++ {
		lo, hi := chunks[c], chunks[c+1]
		if lo >= hi {
			t.Fatalf("chunk %d empty or descending: [%d,%d)", c, lo, hi)
		}
		w := indptr[hi] - indptr[lo] + int64(hi-lo)*rowCost
		if w > target && hi-lo > 1 {
			prev := indptr[hi-1] - indptr[lo] + int64(hi-1-lo)*rowCost
			if prev >= target {
				t.Fatalf("chunk %d [%d,%d) weight %d exceeds target %d before its last row", c, lo, hi, w, target)
			}
		}
	}
}

// maxChunkCost returns the heaviest chunk's weighted cost.
func maxChunkCost(indptr []int64, chunks []int32, rowCost int64) int64 {
	var worst int64
	for c := 0; c+1 < len(chunks); c++ {
		lo, hi := chunks[c], chunks[c+1]
		w := indptr[hi] - indptr[lo] + int64(hi-lo)*rowCost
		if w > worst {
			worst = w
		}
	}
	return worst
}

// TestEdgeChunksCostSkewedWideHidden is the regression the fused kernels'
// FLOP-weighted chunking exists for: a skewed-degree graph (one mega row,
// thousands of near-empty rows) under a wide hidden layer. Edge-count-only
// balancing cuts the low-degree run into a few huge chunks — cheap in edges,
// enormous in projection FLOPs — while cost-weighted cutting bounds every
// chunk's true cost by the target.
func TestEdgeChunksCostSkewedWideHidden(t *testing.T) {
	const n, megaDeg, workers = 4096, 32768, 8
	indptr := make([]int64, n+1)
	for v := 0; v < n; v++ {
		indptr[v+1] = indptr[v]
		if v == 0 {
			indptr[v+1] += megaDeg
		}
	}
	// Wide hidden: 2·OutDim edge-equivalents per row at OutDim=256.
	rowCost := chunkRowCost + int64(2*256)

	targetW := ChunkTargetCost(indptr, workers, rowCost)
	weighted := EdgeChunksCost(indptr, targetW, rowCost, nil)
	checkChunksCost(t, indptr, weighted, targetW, rowCost)

	unweighted := EdgeChunks(indptr, ChunkTarget(indptr, workers), nil)
	worstUnweighted := maxChunkCost(indptr, unweighted, rowCost)
	worstWeighted := maxChunkCost(indptr, weighted, rowCost)
	if worstWeighted*2 > worstUnweighted {
		t.Fatalf("weighted cutting bought <2x: worst chunk cost %d vs %d edge-balanced",
			worstWeighted, worstUnweighted)
	}
}

// TestAggIndexChunksFor pins the lazy weighted-chunk cache: valid boundaries,
// extraRowCost=0 degenerating to the Chunks weighting, slice reuse across
// calls, allocation-free steady state, and invalidation after Build.
func TestAggIndexChunksFor(t *testing.T) {
	big := randAggGraph(t, 120, 7)
	small := randAggGraph(t, 40, 8)
	ai := NewAggIndex(big)

	const extra = 512
	c1 := ai.ChunksFor(extra)
	checkChunksCost(t, big.Indptr, c1, ChunkTargetCost(big.Indptr, runtime.GOMAXPROCS(0), chunkRowCost+extra), chunkRowCost+extra)

	// Zero extra cost must reproduce the edge-balanced Chunks list.
	c0 := ai.ChunksFor(0)
	if len(c0) != len(ai.Chunks) {
		t.Fatalf("ChunksFor(0) has %d boundaries, Chunks %d", len(c0), len(ai.Chunks))
	}
	for i := range c0 {
		if c0[i] != ai.Chunks[i] {
			t.Fatalf("ChunksFor(0)[%d] = %d, Chunks %d", i, c0[i], ai.Chunks[i])
		}
	}

	// Same cost again: cached, same backing array, no recompute.
	c2 := ai.ChunksFor(extra)
	if &c1[0] != &c2[0] {
		t.Fatal("repeated ChunksFor did not reuse the cached list")
	}

	// Steady state is allocation-free once both graph sizes have been seen.
	ai.Build(small)
	ai.ChunksFor(extra)
	allocs := testing.AllocsPerRun(10, func() {
		ai.Build(big)
		ai.ChunksFor(extra)
		ai.Build(small)
		ai.ChunksFor(extra)
	})
	if allocs > 0 {
		t.Fatalf("steady-state ChunksFor allocates %v objects", allocs)
	}

	// After the last Build the list must describe the small graph.
	if got := ai.ChunksFor(extra); got[len(got)-1] != int32(small.N) {
		t.Fatalf("post-rebuild list ends at %d, want %d", got[len(got)-1], small.N)
	}
}

func TestDegreeSkewHistogram(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1) // deg(0)=1 after dedup with below
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	b.AddEdge(0, 4)
	g := b.Build() // deg: 0→4, 1..4→1, 5→0
	h := DegreeSkewHistogram(g)
	if h[0] != 1 { // the isolated node
		t.Fatalf("bucket 0 = %d, want 1", h[0])
	}
	if h[1] != 4 { // the four degree-1 leaves
		t.Fatalf("bucket 1 = %d, want 4", h[1])
	}
	if h[3] != 1 { // degree 4 lands in [4,8)
		t.Fatalf("bucket 3 = %d, want 1", h[3])
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != g.N {
		t.Fatalf("histogram covers %d of %d nodes", total, g.N)
	}
}

// TestDegreeStatsFromIndptr pins AvgDegree (O(1) from the Indptr endpoints)
// and MaxDegree (single Indptr pass) including the empty graph.
func TestDegreeStatsFromIndptr(t *testing.T) {
	g := randAggGraph(t, 50, 6)
	wantMax := 0
	var sum int
	for v := int32(0); v < int32(g.N); v++ {
		d := g.Degree(v)
		sum += d
		if d > wantMax {
			wantMax = d
		}
	}
	if got := g.MaxDegree(); got != wantMax {
		t.Fatalf("MaxDegree = %d, want %d", got, wantMax)
	}
	if got := g.AvgDegree(); got != float64(sum)/float64(g.N) {
		t.Fatalf("AvgDegree = %v, want %v", got, float64(sum)/float64(g.N))
	}
	empty := &Graph{N: 0, Indptr: []int64{0}}
	if empty.MaxDegree() != 0 || empty.AvgDegree() != 0 {
		t.Fatal("empty graph degree stats must be zero")
	}
}
