package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
	"time"
)

func TestIOReadWriteRoundTrip(t *testing.T) {
	g := triangle()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || len(g2.Indices) != len(g.Indices) {
		t.Fatalf("round trip: N=%d nnz=%d, want N=%d nnz=%d", g2.N, len(g2.Indices), g.N, len(g.Indices))
	}
	for i := range g.Indptr {
		if g2.Indptr[i] != g.Indptr[i] {
			t.Fatalf("indptr[%d] = %d, want %d", i, g2.Indptr[i], g.Indptr[i])
		}
	}
	for i := range g.Indices {
		if g2.Indices[i] != g.Indices[i] {
			t.Fatalf("indices[%d] = %d, want %d", i, g2.Indices[i], g.Indices[i])
		}
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

// rawGraph hand-assembles the binary format so each field can be corrupted
// independently of the writer's invariants.
func rawGraph(n, nnz int64, indptr []int64, indices []int32) []byte {
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, magic)
	binary.Write(&buf, binary.LittleEndian, n)
	binary.Write(&buf, binary.LittleEndian, nnz)
	binary.Write(&buf, binary.LittleEndian, indptr)
	binary.Write(&buf, binary.LittleEndian, indices)
	return buf.Bytes()
}

// TestReadRejectsCorruptGraphs: a graph file is untrusted input, and every
// violated invariant must be rejected with a pointed error — not an OOM on a
// header claiming 2^62 edges, not an index panic deep inside SpMM.
func TestReadRejectsCorruptGraphs(t *testing.T) {
	// The valid baseline these corruptions mutate: 3 nodes, 4 directed edges.
	indptr := []int64{0, 2, 3, 4}
	indices := []int32{1, 2, 0, 0}

	cases := []struct {
		name    string
		raw     []byte
		wantErr string
	}{
		{"huge-n", rawGraph(1<<60, 0, nil, nil), "int32 node-id space"},
		// Claims ~2^61 edges behind a 3-node header; must die on a short
		// read after at most one chunk, never attempt the full allocation.
		{"huge-nnz", rawGraph(3, 1<<61, indptr, indices), "indices"},
		{"negative-n", rawGraph(-1, 0, nil, nil), "negative sizes"},
		{"negative-nnz", rawGraph(3, -4, indptr, indices), "negative sizes"},
		{"indptr-nonzero-start", rawGraph(3, 4, []int64{1, 2, 3, 4}, indices), "indptr[0]"},
		{"indptr-decreasing", rawGraph(3, 4, []int64{0, 3, 2, 4}, indices), "not monotonic"},
		{"indptr-wrong-end", rawGraph(3, 4, []int64{0, 2, 3, 5}, indices), "ends at"},
		{"index-out-of-range", rawGraph(3, 4, indptr, []int32{1, 2, 3, 0}), "outside [0,3)"},
		{"index-negative", rawGraph(3, 4, indptr, []int32{1, 2, -1, 0}), "outside [0,3)"},
		{"truncated-indices", rawGraph(3, 4, indptr, []int32{1, 2}), "indices"},
		{"truncated-indptr", rawGraph(3, 4, []int64{0, 2}, nil), "indptr"},
		{"bad-magic", append([]byte{0xde, 0xad, 0xbe, 0xef}, rawGraph(3, 4, indptr, indices)[4:]...), "bad magic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan struct{})
			var g *Graph
			var err error
			go func() {
				g, err = Read(bytes.NewReader(tc.raw))
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				t.Fatal("Read hung (likely attempting a huge allocation)")
			}
			if err == nil {
				t.Fatalf("Read accepted a corrupt graph (N=%d)", g.N)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}

	// The valid baseline itself must load: the corruptions above fail for
	// the stated reasons, not because the baseline was malformed.
	g, err := Read(bytes.NewReader(rawGraph(3, 4, indptr, indices)))
	if err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	if g.N != 3 || len(g.Indices) != 4 {
		t.Fatalf("baseline loaded as N=%d nnz=%d", g.N, len(g.Indices))
	}
}

// TestReadEmptyGraph: the degenerate shapes stay loadable.
func TestReadEmptyGraph(t *testing.T) {
	g, err := Read(bytes.NewReader(rawGraph(0, 0, []int64{0}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || len(g.Indices) != 0 {
		t.Fatalf("empty graph loaded as N=%d nnz=%d", g.N, len(g.Indices))
	}
	// Isolated nodes: real N, zero edges.
	g, err = Read(bytes.NewReader(rawGraph(2, 0, []int64{0, 0, 0}, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || len(g.Indices) != 0 {
		t.Fatalf("edgeless graph loaded as N=%d nnz=%d", g.N, len(g.Indices))
	}
}
