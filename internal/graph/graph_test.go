package graph

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// triangle returns the 3-cycle on {0,1,2}.
func triangle() *Graph {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	return b.Build()
}

func TestBuilderBasic(t *testing.T) {
	g := triangle()
	if g.N != 3 || g.NumEdges() != 3 {
		t.Fatalf("triangle: N=%d edges=%d", g.N, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 3; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
}

func TestBuilderDedupesAndDropsSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate in reverse
	b.AddEdge(0, 1) // exact duplicate
	b.AddEdge(2, 2) // self loop
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("want 1 edge after dedupe, got %d", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Fatalf("self loop not dropped: degree(2)=%d", g.Degree(2))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestHasEdge(t *testing.T) {
	g := triangle()
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("missing edge 0-1")
	}
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g2 := b.Build()
	if g2.HasEdge(2, 3) {
		t.Fatal("phantom edge 2-3")
	}
}

func TestNeighborsSortedShared(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(2, 4)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.Build()
	nbrs := g.Neighbors(2)
	want := []int32{0, 3, 4}
	if len(nbrs) != 3 {
		t.Fatalf("neighbors = %v", nbrs)
	}
	for i, w := range want {
		if nbrs[i] != w {
			t.Fatalf("neighbors = %v, want %v", nbrs, want)
		}
	}
}

func randomGraph(rng *tensor.RNG, n, edges int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(int32(rng.Intn(n)), int32(rng.Intn(n)))
	}
	return b.Build()
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := tensor.NewRNG(5)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(100)
		g := randomGraph(rng, n, rng.Intn(4*n))
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	// Path 0-1-2-3 plus edge 0-3.
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	g := b.Build()
	sub := InducedSubgraph(g, []int32{3, 1, 2})
	// Local ids: 3->0, 1->1, 2->2. Kept edges: (1,2)->(1,2), (2,3)->(2,0).
	if sub.N != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub: N=%d edges=%d", sub.N, sub.NumEdges())
	}
	if !sub.HasEdge(1, 2) || !sub.HasEdge(0, 2) {
		t.Fatal("wrong induced edges")
	}
	if sub.HasEdge(0, 1) {
		t.Fatal("edge 3-1 should not exist")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphProperty(t *testing.T) {
	// Induced subgraph on all nodes in identity order equals the original.
	rng := tensor.NewRNG(6)
	g := randomGraph(rng, 50, 150)
	all := make([]int32, g.N)
	for i := range all {
		all[i] = int32(i)
	}
	sub := InducedSubgraph(g, all)
	if sub.NumEdges() != g.NumEdges() {
		t.Fatalf("identity induction changed edges: %d vs %d", sub.NumEdges(), g.NumEdges())
	}
	for v := int32(0); v < int32(g.N); v++ {
		if sub.Degree(v) != g.Degree(v) {
			t.Fatalf("degree changed at %d", v)
		}
	}
}

func TestInducedSubgraphEdgeCountNeverGrows(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		n := 5 + rng.Intn(60)
		g := randomGraph(rng, n, 3*n)
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)
		sub := InducedSubgraph(g, perm[:k])
		return sub.NumEdges() <= g.NumEdges() && sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeStats(t *testing.T) {
	g := triangle()
	if g.AvgDegree() != 2 || g.MaxDegree() != 2 {
		t.Fatalf("avg=%v max=%d", g.AvgDegree(), g.MaxDegree())
	}
	h := DegreeHistogram(g, 5)
	if h[2] != 3 {
		t.Fatalf("histogram: %v", h)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	g := b.Build()
	label, n := ConnectedComponents(g)
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if label[0] != label[2] || label[3] != label[4] || label[0] == label[3] || label[5] == label[0] {
		t.Fatalf("labels = %v", label)
	}
}

func TestIORoundTrip(t *testing.T) {
	rng := tensor.NewRNG(7)
	g := randomGraph(rng, 80, 300)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N, g2.NumEdges(), g.N, g.NumEdges())
	}
	for i, v := range g.Indptr {
		if g2.Indptr[i] != v {
			t.Fatal("indptr mismatch")
		}
	}
	for i, v := range g.Indices {
		if g2.Indices[i] != v {
			t.Fatal("indices mismatch")
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8})); err == nil {
		t.Fatal("expected error on bad magic")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := randomGraph(rng, 20, 40)
	path := t.TempDir() + "/g.bin"
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.NumDirectedEdges() != g.NumDirectedEdges() {
		t.Fatal("file round trip mismatch")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 || g.AvgDegree() != 0 {
		t.Fatal("empty graph stats wrong")
	}
}
