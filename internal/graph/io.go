package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a small magic header followed by N, the indptr array
// and the indices array, all little-endian. Used by cmd/bnspart and the
// benchmark harness to cache generated graphs between runs.

const magic = uint32(0x42534743) // "BSGC"

// Write serializes g to w in the binary CSR format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(g.N)); err != nil {
		return fmt.Errorf("graph: write n: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(g.Indices))); err != nil {
		return fmt.Errorf("graph: write nnz: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indptr); err != nil {
		return fmt.Errorf("graph: write indptr: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indices); err != nil {
		return fmt.Errorf("graph: write indices: %w", err)
	}
	return bw.Flush()
}

// Read deserializes a graph written by Write.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %#x", m)
	}
	var n, nnz int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: read n: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("graph: read nnz: %w", err)
	}
	if n < 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: negative sizes n=%d nnz=%d", n, nnz)
	}
	g := &Graph{N: int(n), Indptr: make([]int64, n+1), Indices: make([]int32, nnz)}
	if err := binary.Read(br, binary.LittleEndian, g.Indptr); err != nil {
		return nil, fmt.Errorf("graph: read indptr: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, g.Indices); err != nil {
		return nil, fmt.Errorf("graph: read indices: %w", err)
	}
	return g, nil
}

// SaveFile writes g to path, creating or truncating it.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
