package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph format: a small magic header followed by N, the indptr array
// and the indices array, all little-endian. Used by cmd/bnspart and the
// benchmark harness to cache generated graphs between runs.

const magic = uint32(0x42534743) // "BSGC"

// Write serializes g to w in the binary CSR format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, magic); err != nil {
		return fmt.Errorf("graph: write magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(g.N)); err != nil {
		return fmt.Errorf("graph: write n: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, int64(len(g.Indices))); err != nil {
		return fmt.Errorf("graph: write nnz: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indptr); err != nil {
		return fmt.Errorf("graph: write indptr: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Indices); err != nil {
		return fmt.Errorf("graph: write indices: %w", err)
	}
	return bw.Flush()
}

// readChunkLimit bounds how many array entries a single allocation commits
// to before any of the claimed bytes have actually materialized. A corrupt
// header can claim 2^62 entries; growing the arrays chunk by chunk turns
// that into a short-read error after ~8MB instead of an OOM.
const readChunkLimit = 1 << 20

// readInt64s reads count little-endian int64s from br in bounded chunks.
func readInt64s(br io.Reader, count int64, what string) ([]int64, error) {
	out := make([]int64, 0, min64(count, readChunkLimit))
	for int64(len(out)) < count {
		chunk := min64(count-int64(len(out)), readChunkLimit)
		buf := make([]int64, chunk)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: read %s (%d of %d entries): %w", what, len(out), count, err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

// readInt32s reads count little-endian int32s from br in bounded chunks.
func readInt32s(br io.Reader, count int64, what string) ([]int32, error) {
	out := make([]int32, 0, min64(count, readChunkLimit))
	for int64(len(out)) < count {
		chunk := min64(count-int64(len(out)), readChunkLimit)
		buf := make([]int32, chunk)
		if err := binary.Read(br, binary.LittleEndian, buf); err != nil {
			return nil, fmt.Errorf("graph: read %s (%d of %d entries): %w", what, len(out), count, err)
		}
		out = append(out, buf...)
	}
	return out, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Read deserializes a graph written by Write. The file is untrusted input:
// sizes are allocated in bounded chunks (a corrupt header claiming 2^62
// edges dies on a short read, not an OOM), Indptr must start at 0, be
// non-decreasing, and end at nnz, and every index must fall in [0,N) — the
// SpMM kernels index straight off these arrays with no bounds checks of
// their own, so a violation here is rejected with a pointed error instead of
// a panic (or silent corruption) deep in the compute path.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m uint32
	if err := binary.Read(br, binary.LittleEndian, &m); err != nil {
		return nil, fmt.Errorf("graph: read magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %#x", m)
	}
	var n, nnz int64
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("graph: read n: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &nnz); err != nil {
		return nil, fmt.Errorf("graph: read nnz: %w", err)
	}
	if n < 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: negative sizes n=%d nnz=%d", n, nnz)
	}
	if n > 1<<31 {
		return nil, fmt.Errorf("graph: n=%d exceeds the int32 node-id space", n)
	}
	indptr, err := readInt64s(br, n+1, "indptr")
	if err != nil {
		return nil, err
	}
	indices, err := readInt32s(br, nnz, "indices")
	if err != nil {
		return nil, err
	}
	if indptr[0] != 0 {
		return nil, fmt.Errorf("graph: indptr[0] = %d, want 0", indptr[0])
	}
	for v := int64(1); v <= n; v++ {
		if indptr[v] < indptr[v-1] {
			return nil, fmt.Errorf("graph: indptr not monotonic at node %d (%d < %d)", v, indptr[v], indptr[v-1])
		}
	}
	if indptr[n] != nnz {
		return nil, fmt.Errorf("graph: indptr ends at %d, want nnz=%d", indptr[n], nnz)
	}
	for i, idx := range indices {
		if int64(idx) < 0 || int64(idx) >= n {
			return nil, fmt.Errorf("graph: indices[%d] = %d outside [0,%d)", i, idx, n)
		}
	}
	return &Graph{N: int(n), Indptr: indptr, Indices: indices}, nil
}

// SaveFile writes g to path, creating or truncating it.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
