package graph

import (
	"math/bits"
	"runtime"
)

// AggIndex is the aggregation plan the sparse SpMM engine runs over one
// graph: edge-balanced row-chunk boundaries for the forward gather, and the
// transposed (incoming) CSR index plus its own chunk boundaries for the
// backward gather dH = Aᵀ·dZ. Building it is O(N+E) integer work — far below
// one layer's O(E·dim) float aggregation — and all storage is reused across
// Build calls, so the per-epoch rebuild in the training loop is
// allocation-free once capacities have warmed up.
//
// Ownership: an AggIndex must be rebuilt whenever the graph it was built
// from changes (the per-epoch subgraph is rewritten in place every epoch).
// Consumers that hold the pointer across epochs — the layers installed via
// SetAgg — see fresh contents because Build rewrites the same slices.
type AggIndex struct {
	// Chunks holds edge-balanced row-chunk boundaries over the outgoing CSR:
	// ascending, Chunks[0] = 0, Chunks[len-1] = N. One worker claims one
	// chunk, so a mega-degree row is isolated in its own chunk rather than
	// serializing a worker's whole share.
	Chunks []int32
	// IncIndptr/IncSrc is the transposed index: the sources of destination u
	// are IncSrc[IncIndptr[u]:IncIndptr[u+1]], sorted ascending (duplicates
	// adjacent) — the order that makes the backward gather bit-identical to
	// an ascending-source scatter.
	IncIndptr []int64
	IncSrc    []int32
	// IncChunks is the edge-balanced boundary list over the transposed index.
	IncChunks []int32

	fill []int64 // build scratch: per-destination write cursor

	// ChunksFor state: the outgoing CSR the plan was built from, a build
	// generation counter, and one cached weighted-chunk list per row cost.
	outIndptr []int64
	gen       uint64
	costCache []costChunks
}

// costChunks is one ChunksFor cache entry: the chunk list for a per-row
// extra cost, tagged with the build generation it was derived at.
type costChunks struct {
	extraRowCost int64
	gen          uint64
	chunks       []int32
}

// NewAggIndex builds the aggregation plan for g.
func NewAggIndex(g *Graph) *AggIndex {
	ai := &AggIndex{}
	ai.Build(g)
	return ai
}

// Build (re)derives the plan from g, reusing all prior storage.
func (ai *AggIndex) Build(g *Graph) {
	n := g.N
	e := len(g.Indices)

	// Transposed index: count incoming edges, prefix-sum, fill ascending.
	ai.IncIndptr = ensureI64(ai.IncIndptr, n+1)
	ai.fill = ensureI64(ai.fill, n)
	cnt := ai.fill
	for i := range cnt {
		cnt[i] = 0
	}
	for _, u := range g.Indices {
		cnt[u]++
	}
	ai.IncIndptr[0] = 0
	for u := 0; u < n; u++ {
		ai.IncIndptr[u+1] = ai.IncIndptr[u] + cnt[u]
		cnt[u] = 0
	}
	ai.IncSrc = ensureI32(ai.IncSrc, e)
	for v := 0; v < n; v++ {
		for _, u := range g.Indices[g.Indptr[v]:g.Indptr[v+1]] {
			ai.IncSrc[ai.IncIndptr[u]+cnt[u]] = int32(v)
			cnt[u]++
		}
	}

	target := ChunkTarget(g.Indptr, runtime.GOMAXPROCS(0))
	ai.Chunks = EdgeChunks(g.Indptr, target, ai.Chunks[:0])
	ai.IncChunks = EdgeChunks(ai.IncIndptr, target, ai.IncChunks[:0])

	// Weighted chunk lists are derived lazily: bump the generation so every
	// cached ChunksFor entry recomputes against the fresh indptr on first use.
	ai.outIndptr = g.Indptr
	ai.gen++
}

// ChunksFor returns edge-balanced chunk boundaries over the outgoing CSR
// where every row weighs extraRowCost edge-equivalents on top of its edge
// count (and the baseline per-row cost). The fused aggregate-project kernel
// needs this: projection adds 2·InDim·OutDim FLOPs per row — about 2·OutDim
// edge-equivalents, since one edge gather is an InDim-wide add — so
// edge-count-only balancing hands a worker whose rows are low-degree far more
// projection work than its chunk weight suggests on wide layers.
// extraRowCost = 0 degenerates to the Chunks weighting.
//
// Lists are cached per cost and rebuilt lazily after each Build, reusing
// their storage — allocation-free in steady state, like Build itself. Not
// safe for concurrent use (same contract as Build).
func (ai *AggIndex) ChunksFor(extraRowCost int64) []int32 {
	if extraRowCost < 0 {
		extraRowCost = 0
	}
	for i := range ai.costCache {
		e := &ai.costCache[i]
		if e.extraRowCost == extraRowCost {
			if e.gen != ai.gen {
				ai.fillCostChunks(e)
			}
			return e.chunks
		}
	}
	ai.costCache = append(ai.costCache, costChunks{extraRowCost: extraRowCost})
	e := &ai.costCache[len(ai.costCache)-1]
	ai.fillCostChunks(e)
	return e.chunks
}

func (ai *AggIndex) fillCostChunks(e *costChunks) {
	rowCost := chunkRowCost + e.extraRowCost
	target := ChunkTargetCost(ai.outIndptr, runtime.GOMAXPROCS(0), rowCost)
	e.chunks = EdgeChunksCost(ai.outIndptr, target, rowCost, e.chunks[:0])
	e.gen = ai.gen
}

// chunkRowCost is the fixed per-row weight EdgeChunks adds to a row's edge
// count, so runs of empty or low-degree rows still cut into chunks instead
// of piling into one worker's claim.
const chunkRowCost = 4

// minChunkWeight floors the chunk target: below this the per-chunk claim
// overhead (one atomic advance + one pool handoff) outweighs the balance win.
const minChunkWeight = 2048

// ChunkTarget picks the edge-balanced chunk weight for a CSR index and a
// worker count. The degree-skew histogram drives the oversubscription
// factor: a heavy tail (max-degree bucket far above the average's bucket)
// gets twice the chunks, so the dynamic claim can route small chunks around
// the mega rows that each occupy a worker for a whole chunk's worth of time.
func ChunkTarget(indptr []int64, workers int) int64 {
	return ChunkTargetCost(indptr, workers, chunkRowCost)
}

// ChunkTargetCost is ChunkTarget with an explicit per-row weight (edge
// equivalents added to each row's edge count) — the fused aggregate-project
// kernels account their per-row projection FLOPs this way (see
// AggIndex.ChunksFor).
func ChunkTargetCost(indptr []int64, workers int, rowCost int64) int64 {
	n := len(indptr) - 1
	if n <= 0 {
		return minChunkWeight
	}
	total := indptr[n] - indptr[0] + int64(n)*rowCost
	if workers <= 1 {
		// One worker claims everything anyway: a single chunk skips the
		// whole claim machinery (and its escaping closures) on 1-CPU hosts.
		return total + minChunkWeight
	}
	over := int64(4)
	if skew := histogramSkew(indptr); skew >= 3 {
		over = 8
	}
	target := total / (int64(workers) * over)
	if target < minChunkWeight {
		target = minChunkWeight
	}
	return target
}

// histogramSkew returns the distance, in log2 degree buckets, between the
// largest occupied bucket and the average degree's bucket — 0 for a regular
// graph, large when a few mega rows dominate.
func histogramSkew(indptr []int64) int {
	n := len(indptr) - 1
	hist := DegreeSkewHistogramFromIndptr(indptr)
	top := 0
	for b, c := range hist {
		if c > 0 {
			top = b
		}
	}
	avg := int((indptr[n] - indptr[0]) / int64(n))
	return top - bits.Len(uint(avg))
}

// EdgeChunks cuts the CSR rows into contiguous chunks of roughly target
// weight (edge count plus chunkRowCost per row): boundaries are ascending,
// start at 0, end at the row count, and a chunk exceeds target only when a
// single row does. The result is appended to into (pass into[:0] to reuse).
func EdgeChunks(indptr []int64, target int64, into []int32) []int32 {
	return EdgeChunksCost(indptr, target, chunkRowCost, into)
}

// EdgeChunksCost is EdgeChunks with an explicit per-row weight, the cutting
// half of the ChunkTargetCost pairing.
func EdgeChunksCost(indptr []int64, target, rowCost int64, into []int32) []int32 {
	n := len(indptr) - 1
	if target < 1 {
		target = 1
	}
	into = append(into, 0)
	var w int64
	for v := 0; v < n; v++ {
		w += indptr[v+1] - indptr[v] + rowCost
		if w >= target {
			into = append(into, int32(v+1))
			w = 0
		}
	}
	if into[len(into)-1] != int32(n) {
		into = append(into, int32(n))
	}
	return into
}

// DegreeSkewHistogram counts nodes per log2 degree bucket: bucket 0 holds
// the isolated nodes, bucket b ≥ 1 the nodes with degree in [2^(b-1), 2^b).
// The compact fixed-size summary is what the chunk sizing reads — a heavy
// tail shows up as occupied high buckets regardless of graph size.
func DegreeSkewHistogram(g *Graph) [32]int {
	return DegreeSkewHistogramFromIndptr(g.Indptr)
}

// DegreeSkewHistogramFromIndptr is DegreeSkewHistogram over a raw CSR
// indptr (the AggIndex build uses it on the transposed index too).
func DegreeSkewHistogramFromIndptr(indptr []int64) [32]int {
	var h [32]int
	for v := 0; v+1 < len(indptr); v++ {
		h[bits.Len(uint(indptr[v+1]-indptr[v]))]++
	}
	return h
}

func ensureI64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

func ensureI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}
