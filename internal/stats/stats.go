// Package stats provides the small statistical summaries the experiment
// harness prints: histograms (Figure 3), box statistics (Figure 8), and
// mean/std accumulation (the ±σ columns of Tables 4–5).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MeanStd accumulates a running mean and standard deviation (Welford).
type MeanStd struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *MeanStd) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *MeanStd) N() int { return w.n }

// Mean returns the running mean.
func (w *MeanStd) Mean() float64 { return w.mean }

// Std returns the sample standard deviation (0 for fewer than 2 points).
func (w *MeanStd) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Box holds five-number summary statistics.
type Box struct {
	Min, Q1, Median, Q3, Max float64
}

// BoxStats computes the five-number summary of xs. Panics on empty input.
func BoxStats(xs []float64) Box {
	if len(xs) == 0 {
		panic("stats: BoxStats of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Box{
		Min:    s[0],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// quantile interpolates the q-th quantile of sorted s.
func quantile(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram bins xs into nbins equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram. Values outside [min,max] clamp to the
// first/last bin.
func NewHistogram(xs []float64, min, max float64, nbins int) *Histogram {
	h := &Histogram{Min: min, Max: max, Counts: make([]int, nbins)}
	if max <= min || nbins == 0 {
		return h
	}
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		b := int((x - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
	}
	return h
}

// Render draws the histogram as ASCII rows ("lo-hi | ####  n").
func (h *Histogram) Render(width int) string {
	mx := 0
	for _, c := range h.Counts {
		if c > mx {
			mx = c
		}
	}
	if mx == 0 {
		mx = 1
	}
	var sb strings.Builder
	binW := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*binW
		bar := strings.Repeat("#", c*width/mx)
		fmt.Fprintf(&sb, "%6.2f-%6.2f | %-*s %d\n", lo, lo+binW, width, bar, c)
	}
	return sb.String()
}
