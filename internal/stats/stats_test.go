package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdKnownValues(t *testing.T) {
	var w MeanStd
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Sample std of this classic set is sqrt(32/7).
	if math.Abs(w.Std()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("std = %v", w.Std())
	}
}

func TestMeanStdSinglePoint(t *testing.T) {
	var w MeanStd
	w.Add(3)
	if w.Std() != 0 || w.Mean() != 3 {
		t.Fatalf("single point: mean %v std %v", w.Mean(), w.Std())
	}
}

func TestMeanStdMatchesDirectComputation(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 2 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
				return true
			}
		}
		var w MeanStd
		var sum float64
		for _, x := range xs {
			w.Add(x)
			sum += x
		}
		mean := sum / float64(len(xs))
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		std := math.Sqrt(m2 / float64(len(xs)-1))
		return math.Abs(w.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(w.Std()-std) < 1e-6*(1+std)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxStats(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4, 5})
	if b.Min != 1 || b.Max != 5 || b.Median != 3 || b.Q1 != 2 || b.Q3 != 4 {
		t.Fatalf("box %+v", b)
	}
}

func TestBoxStatsInterpolates(t *testing.T) {
	b := BoxStats([]float64{1, 2, 3, 4})
	if b.Median != 2.5 {
		t.Fatalf("median %v, want 2.5", b.Median)
	}
}

func TestBoxStatsSingle(t *testing.T) {
	b := BoxStats([]float64{7})
	if b.Min != 7 || b.Max != 7 || b.Median != 7 {
		t.Fatalf("box %+v", b)
	}
}

func TestBoxStatsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BoxStats(nil)
}

func TestBoxStatsDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	BoxStats(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("input mutated")
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 1.5, 2.9, -5, 99}, 0, 3, 3)
	// -5 clamps into bin 0; 99 clamps into bin 2.
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[2] != 2 {
		t.Fatalf("counts %v", h.Counts)
	}
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 6 {
		t.Fatalf("histogram lost values: %d", total)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram([]float64{0.5, 0.5, 2.5}, 0, 3, 3)
	out := h.Render(10)
	if !strings.Contains(out, "#") {
		t.Fatal("render produced no bars")
	}
	if strings.Count(out, "\n") != 3 {
		t.Fatalf("expected 3 rows, got %q", out)
	}
}
