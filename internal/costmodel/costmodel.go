// Package costmodel projects epoch times onto the paper's hardware from the
// exact operation and byte counts our runtime produces. The Go substrate
// measures *what* is computed and communicated (FLOPs, feature bytes,
// message counts); this package converts those counts into seconds under a
// device profile calibrated to the paper's testbeds (RTX 2080 Ti + PCIe3x16
// single machine; V100 clusters for ogbn-papers100M).
//
// It also models the two full-graph baselines of Figure 4 from first
// principles: ROC's CPU↔GPU partition swapping and CAGNET's c-way broadcast
// parallelism. The paper's comparisons are between communication regimes;
// reproducing the regimes from counts reproduces who wins and by what
// factor, which is the reproduction target (absolute numbers depend on the
// authors' exact testbed).
package costmodel

import (
	"fmt"

	"repro/internal/core"
)

// Profile describes one hardware configuration.
type Profile struct {
	Name string
	// GPUFlops is the effective FP32 throughput per device (FLOP/s),
	// discounted for sparse-aggregation inefficiency.
	GPUFlops float64
	// LinkBandwidth is point-to-point inter-device bandwidth (bytes/s).
	LinkBandwidth float64
	// LinkLatency is the fixed per-message cost (seconds).
	LinkLatency float64
	// SwapBandwidth is host↔device bandwidth for ROC-style swapping.
	SwapBandwidth float64
}

// SingleMachineRTX approximates the paper's main rig: 10× RTX 2080 Ti on
// PCIe3 x16. Effective GEMM throughput is discounted to ~25% of peak
// (13.4 TFLOPS) for the small, irregular GCN kernels; PCIe3 x16 moves
// ~12 GB/s with the bus shared pairwise.
var SingleMachineRTX = Profile{
	Name:          "rtx2080ti-pcie3",
	GPUFlops:      3.3e12,
	LinkBandwidth: 6.0e9,
	LinkLatency:   20e-6,
	SwapBandwidth: 6.0e9,
}

// MultiMachineV100 approximates the papers100M setup: 32 machines × 6 V100.
// The inter-machine network is the bottleneck; per-GPU effective bandwidth
// is calibrated so that vanilla partition parallelism is communication-bound
// by roughly the paper's Table 6 ratio (comm ≈ 100× compute at p = 1).
var MultiMachineV100 = Profile{
	Name:          "v100-cluster",
	GPUFlops:      7e12,
	LinkBandwidth: 0.15e9,
	LinkLatency:   50e-6,
	SwapBandwidth: 10e9,
}

// Workload summarizes one partitioned training configuration: straggler and
// total counts (the straggler sets the synchronous epoch time; totals set
// aggregate volumes).
type Workload struct {
	K int
	// MaxInner / MaxBoundary are the largest per-partition counts.
	MaxInner    int
	MaxBoundary int
	// TotalBoundary is Eq. 3's communication volume.
	TotalBoundary int64
	// MaxLocalEdges is the largest per-partition directed edge count
	// (inner-node adjacency, including halo edges).
	MaxLocalEdges int64
	// TotalNodes is |V| of the full graph.
	TotalNodes int
	// LayerIn / LayerOut are the per-layer feature dimensions.
	LayerIn  []int
	LayerOut []int
	// Params is the total trainable parameter count.
	Params int
}

// FromTopology derives a Workload from a concrete topology and model shape.
func FromTopology(t *core.Topology, layerIn, layerOut []int, params int) Workload {
	w := Workload{
		K: t.K, TotalNodes: t.G.N,
		LayerIn: layerIn, LayerOut: layerOut, Params: params,
		TotalBoundary: t.CommVolume(),
	}
	for i := 0; i < t.K; i++ {
		if len(t.Inner[i]) > w.MaxInner {
			w.MaxInner = len(t.Inner[i])
		}
		if len(t.Boundary[i]) > w.MaxBoundary {
			w.MaxBoundary = len(t.Boundary[i])
		}
		var edges int64
		for _, v := range t.Inner[i] {
			edges += int64(t.G.Degree(v))
		}
		if edges > w.MaxLocalEdges {
			w.MaxLocalEdges = edges
		}
	}
	return w
}

// Breakdown is a projected epoch time split, in seconds, matching the
// paper's Figure 5 / Table 6 categories.
type Breakdown struct {
	Method  string
	Compute float64
	Comm    float64
	Reduce  float64
	Swap    float64
}

// Total returns the epoch time (phases are synchronous and serialized).
func (b Breakdown) Total() float64 { return b.Compute + b.Comm + b.Reduce + b.Swap }

// Throughput returns epochs per second.
func (b Breakdown) Throughput() float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return 1 / t
}

func (b Breakdown) String() string {
	return fmt.Sprintf("%s: total=%.4fs comp=%.4fs comm=%.4fs reduce=%.4fs swap=%.4fs",
		b.Method, b.Total(), b.Compute, b.Comm, b.Reduce, b.Swap)
}

// computeSeconds estimates the straggler partition's forward+backward FLOPs
// for a SAGE stack: aggregation touches every local edge per layer
// (2·E·d FLOPs) and the dense update is a (n × 2d)·(2d × d') GEMM. Backward
// roughly doubles both.
func computeSeconds(w Workload, p float64, prof Profile) float64 {
	var flops float64
	edges := float64(w.MaxLocalEdges) * p // sampled halo edges scale with p
	n := float64(w.MaxInner)
	for l := range w.LayerIn {
		din := float64(w.LayerIn[l])
		dout := float64(w.LayerOut[l])
		agg := 2 * edges * din
		gemm := 2 * n * (2 * din) * dout
		flops += 3 * (agg + gemm) // fwd + ~2x bwd
	}
	return flops / prof.GPUFlops
}

// commSeconds converts the straggler's boundary feature traffic into time:
// forward sends every layer's input rows, backward all but the first.
func commSeconds(bd float64, w Workload, prof Profile) float64 {
	var bytes float64
	for l, d := range w.LayerIn {
		bytes += bd * float64(d) * 4 // forward
		if l >= 1 {
			bytes += bd * float64(d) * 4 // backward
		}
	}
	msgs := float64(2*len(w.LayerIn)-1) * float64(w.K-1)
	return bytes/prof.LinkBandwidth + msgs*prof.LinkLatency
}

// reduceSeconds models a bandwidth-optimal gradient AllReduce.
func reduceSeconds(w Workload, prof Profile) float64 {
	if w.K <= 1 {
		return 0
	}
	bytes := float64(w.Params) * 4 * 2 * float64(w.K-1) / float64(w.K)
	return bytes/prof.LinkBandwidth + float64(2*(w.K-1))*prof.LinkLatency
}

// EstimateBNS projects one BNS-GCN epoch at sampling rate p (p=1 is vanilla
// partition parallelism).
func EstimateBNS(w Workload, p float64, prof Profile) Breakdown {
	return Breakdown{
		Method:  fmt.Sprintf("BNS-GCN(p=%g)", p),
		Compute: computeSeconds(w, p, prof),
		Comm:    commSeconds(float64(w.MaxBoundary)*p, w, prof),
		Reduce:  reduceSeconds(w, prof),
	}
}

// EstimateROC projects a ROC-style epoch: partitions live in host memory and
// every layer's features are swapped across PCIe in both directions, in
// addition to the boundary exchange.
func EstimateROC(w Workload, prof Profile) Breakdown {
	var swapBytes float64
	rows := float64(w.MaxInner + w.MaxBoundary)
	for _, d := range w.LayerIn {
		swapBytes += rows * float64(d) * 4 * 2 // in and out per layer
	}
	return Breakdown{
		Method:  "ROC",
		Compute: computeSeconds(w, 1, prof),
		Comm:    commSeconds(float64(w.MaxBoundary), w, prof),
		Reduce:  reduceSeconds(w, prof),
		Swap:    swapBytes / prof.SwapBandwidth,
	}
}

// EstimateCAGNET projects a CAGNET(c)-style epoch (1D for c=1, 1.5D for
// c>1): node features are broadcast in slices among K/c process columns each
// layer, so traffic scales with the full feature matrix rather than the
// boundary set. For c>1 the replication that divides the broadcast also
// requires reducing partial aggregates across each replication group of c
// GPUs every layer, which is why c=2 does not come for free (and why the
// paper's Figure 4 shows CAGNET below BNS at every c).
func EstimateCAGNET(w Workload, c int, prof Profile) Breakdown {
	if c < 1 {
		c = 1
	}
	groups := float64(w.K) / float64(c)
	if groups < 1 {
		groups = 1
	}
	var bcastBytes, replBytes float64
	rowsPerGPU := float64(w.TotalNodes) / float64(w.K)
	for i, d := range w.LayerIn {
		// Broadcast of input-feature slices along the process column,
		// forward and backward.
		bcastBytes += rowsPerGPU * float64(d) * 4 * (groups - 1) * 2
		// 1.5D replication: partial aggregates reduced across the c replicas
		// (ring allreduce volume), forward and backward.
		if c > 1 {
			dout := float64(w.LayerOut[i])
			replBytes += rowsPerGPU * dout * 4 * 2 * 2 * float64(c-1) / float64(c)
		}
	}
	msgs := float64(2*len(w.LayerIn)) * (groups - 1 + 2*float64(c-1))
	return Breakdown{
		Method:  fmt.Sprintf("CAGNET(c=%d)", c),
		Compute: computeSeconds(w, 1, prof) / float64(c),
		Comm:    (bcastBytes+replBytes)/prof.LinkBandwidth + msgs*prof.LinkLatency,
		Reduce:  reduceSeconds(w, prof),
	}
}

// MemoryReduction returns 1 − Mem(p)/Mem(1) for the straggler partition
// under Eq. 4, the quantity Figure 6 plots. The non-tensor overhead factor
// accounts for activations/optimizer state that do not shrink with p
// (the paper notes reduction is sublinear for this reason).
func MemoryReduction(w Workload, p float64, overheadFrac float64) float64 {
	full := float64(core.MemoryCost(w.MaxInner, w.MaxBoundary, w.LayerIn))
	sampled := float64(core.MemoryCost(w.MaxInner, int(float64(w.MaxBoundary)*p), w.LayerIn))
	fixed := full * overheadFrac
	return 1 - (sampled+fixed)/(full+fixed)
}
