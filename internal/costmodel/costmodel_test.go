package costmodel

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func testWorkload(t *testing.T) Workload {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "cm", Nodes: 2000, Communities: 8, AvgDegree: 20,
		IntraFrac: 0.7, DegreeSkew: 1.8, FeatureDim: 32,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 1, StructureOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, 8)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, 8)
	if err != nil {
		t.Fatal(err)
	}
	return FromTopology(topo, []int{32, 64, 64}, []int{64, 64, 16}, 10000)
}

func TestFromTopologyCounts(t *testing.T) {
	w := testWorkload(t)
	if w.K != 8 || w.TotalNodes != 2000 {
		t.Fatalf("workload %+v", w)
	}
	if w.MaxInner < 2000/8 {
		t.Fatalf("max inner %d below average", w.MaxInner)
	}
	if w.TotalBoundary <= 0 || w.MaxBoundary <= 0 || w.MaxLocalEdges <= 0 {
		t.Fatalf("empty boundary stats: %+v", w)
	}
}

// redditWorkload mirrors the paper's Reddit/8-partition scale (Table 1:
// ~15k inner and up to 86k boundary nodes per partition; 4-layer 256-hidden
// GraphSAGE on 602-dim features) so the model is exercised in the regime
// the figures report, where byte volume dominates message latency.
func redditWorkload() Workload {
	return Workload{
		K: 8, MaxInner: 15000, MaxBoundary: 86000,
		TotalBoundary: 460000, MaxLocalEdges: 14000000, TotalNodes: 233000,
		LayerIn:  []int{602, 256, 256, 256},
		LayerOut: []int{256, 256, 256, 41},
		Params:   (602*2*256 + 256*2*256*2 + 256*2*41),
	}
}

func TestBNSCommScalesWithP(t *testing.T) {
	w := redditWorkload()
	full := EstimateBNS(w, 1.0, SingleMachineRTX)
	tenth := EstimateBNS(w, 0.1, SingleMachineRTX)
	// Comm must shrink ~10x (latency floor allows some slack).
	if tenth.Comm > full.Comm/5 {
		t.Fatalf("p=0.1 comm %v not well below p=1 %v", tenth.Comm, full.Comm)
	}
	if tenth.Total() >= full.Total() {
		t.Fatal("sampling must reduce epoch time")
	}
	if full.Reduce != tenth.Reduce {
		t.Fatal("reduce time must not depend on p")
	}
}

func TestBNSBeatsBaselines(t *testing.T) {
	// Figure 4's ordering: BNS(p<1) > BNS(p=1) > ROC and CAGNET.
	w := redditWorkload()
	prof := SingleMachineRTX
	bns01 := EstimateBNS(w, 0.01, prof)
	bns1 := EstimateBNS(w, 1.0, prof)
	roc := EstimateROC(w, prof)
	cagnet1 := EstimateCAGNET(w, 1, prof)
	cagnet2 := EstimateCAGNET(w, 2, prof)
	if !(bns01.Throughput() > bns1.Throughput()) {
		t.Fatalf("BNS p=0.01 (%v) not faster than p=1 (%v)", bns01.Total(), bns1.Total())
	}
	if !(bns1.Throughput() > roc.Throughput()) {
		t.Fatalf("BNS p=1 (%v) not faster than ROC (%v)", bns1.Total(), roc.Total())
	}
	if !(bns1.Throughput() > cagnet1.Throughput()) {
		t.Fatalf("BNS p=1 (%v) not faster than CAGNET c=1 (%v)", bns1.Total(), cagnet1.Total())
	}
	if !(bns1.Throughput() > cagnet2.Throughput()) {
		t.Fatalf("BNS p=1 (%v) not faster than CAGNET c=2 (%v)", bns1.Total(), cagnet2.Total())
	}
	if !(cagnet2.Comm < cagnet1.Comm) {
		t.Fatal("CAGNET c=2 must communicate less than c=1 on a broadcast-bound workload")
	}
	if roc.Swap <= 0 {
		t.Fatal("ROC must pay swap time")
	}
}

func TestCommDominatesAtP1(t *testing.T) {
	// Figure 5's headline: communication is the majority of vanilla epoch
	// time on the single-machine profile.
	w := redditWorkload()
	b := EstimateBNS(w, 1.0, SingleMachineRTX)
	if b.Comm < b.Compute {
		t.Fatalf("comm %v below compute %v at p=1; profile not comm-bound", b.Comm, b.Compute)
	}
}

func TestMultiMachineMoreCommBound(t *testing.T) {
	// Table 6: the multi-machine profile is far more communication-bound.
	w := redditWorkload()
	single := EstimateBNS(w, 1.0, SingleMachineRTX)
	multi := EstimateBNS(w, 1.0, MultiMachineV100)
	if multi.Comm/multi.Compute <= single.Comm/single.Compute {
		t.Fatal("multi-machine profile must be more comm-bound")
	}
	if multi.Comm/multi.Compute < 20 {
		t.Fatalf("multi-machine comm/comp ratio %v too low for Table 6's regime",
			multi.Comm/multi.Compute)
	}
}

func TestMemoryReduction(t *testing.T) {
	w := testWorkload(t)
	r01 := MemoryReduction(w, 0.1, 0.3)
	r05 := MemoryReduction(w, 0.5, 0.3)
	if !(r01 > r05 && r05 > 0) {
		t.Fatalf("memory reductions not ordered: p=0.1 %v, p=0.5 %v", r01, r05)
	}
	if r01 >= 1 {
		t.Fatalf("reduction %v impossible", r01)
	}
	if MemoryReduction(w, 1.0, 0.3) != 0 {
		t.Fatal("p=1 must give zero reduction")
	}
}

func TestBreakdownString(t *testing.T) {
	b := Breakdown{Method: "X", Compute: 1, Comm: 2, Reduce: 0.5}
	if b.Total() != 3.5 {
		t.Fatalf("total %v", b.Total())
	}
	if b.Throughput() != 1/3.5 {
		t.Fatalf("throughput %v", b.Throughput())
	}
	if s := b.String(); len(s) == 0 {
		t.Fatal("empty string")
	}
}
