package sampling

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// stratFactories enumerates the non-default strategies under test with
// sub-unity sampling (so plans genuinely vary by epoch).
func stratFactories(seed uint64) map[string]StrategyFactory {
	return map[string]StrategyFactory{
		"ladies": NewLADIESFactory(12, seed),
		"saint":  NewSAINTFactory(0.6, seed),
	}
}

func tcpGroup(t testing.TB, k int) *comm.Group {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]comm.Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := comm.TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = comm.DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	g := comm.NewGroup(ts)
	t.Cleanup(func() { g.Close() })
	return g
}

// stratSignature folds per-epoch losses and every rank's final weights into
// one hash, alongside the summed halo traffic.
func stratSignature(t *testing.T, tr *core.ParallelTrainer, epochs int) (uint64, int64) {
	t.Helper()
	h := fnv.New64a()
	var bytes int64
	var buf [8]byte
	for e := 0; e < epochs; e++ {
		st := tr.TrainEpoch()
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(st.Loss))
		h.Write(buf[:])
		bytes += st.CommBytes
	}
	for _, m := range tr.Models {
		for _, p := range m.Params() {
			for _, v := range p.Data {
				binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
				h.Write(buf[:4])
			}
		}
	}
	return h.Sum64(), bytes
}

// TestStrategiesDeterministicAcrossSchedulesAndTransports is the new
// strategies' end-to-end determinism proof, mirroring the engine's BNS
// equivalence matrix: for LADIES and SAINT, the same seed must produce
// bit-identical losses, weights, and traffic under all three schedules over
// the channel transport and under the pipelined arrival drain over TCP — and
// a different seed must not.
func TestStrategiesDeterministicAcrossSchedulesAndTransports(t *testing.T) {
	for name, factory := range stratFactories(21) {
		for _, arch := range []core.Arch{core.ArchSAGE, core.ArchGAT} {
			ds := testDataset(t, 60)
			topo := buildTopo(t, ds, 3)
			mc := core.ModelConfig{Arch: arch, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
			base := core.ParallelConfig{Model: mc, P: 1, SampleSeed: 17, Schedule: core.ScheduleSerialized, Strategy: factory}

			mk := func(sched core.Schedule, g *comm.Group) *core.ParallelTrainer {
				t.Helper()
				cfg := base
				cfg.Schedule = sched
				var tr *core.ParallelTrainer
				var err error
				if g == nil {
					tr, err = core.NewParallelTrainer(ds, topo, cfg)
				} else {
					tr, err = core.NewParallelTrainerOver(ds, topo, cfg, g)
				}
				if err != nil {
					t.Fatal(err)
				}
				return tr
			}

			const epochs = 4
			refHash, refBytes := stratSignature(t, mk(core.ScheduleSerialized, nil), epochs)
			runs := map[string]*core.ParallelTrainer{
				"chan/overlap-rank":    mk(core.ScheduleOverlapRank, nil),
				"chan/overlap-arrival": mk(core.ScheduleOverlap, nil),
				"tcp/overlap-arrival":  mk(core.ScheduleOverlap, tcpGroup(t, 3)),
			}
			for rn, tr := range runs {
				h, b := stratSignature(t, tr, epochs)
				if h != refHash || b != refBytes {
					t.Errorf("%s/%s %s: signature (%#x,%d) != serialized (%#x,%d)", name, arch, rn, h, b, refHash, refBytes)
				}
			}

			// Different seed must actually change the run, or the matrix above
			// proves nothing about the sampler.
			other := base
			other.Strategy = stratFactories(22)[name]
			otherTr, err := core.NewParallelTrainer(ds, topo, other)
			if err != nil {
				t.Fatal(err)
			}
			oh, _ := stratSignature(t, otherTr, epochs)
			if oh == refHash {
				t.Errorf("%s/%s: different sampler seed reproduced the same signature", name, arch)
			}
		}
	}
}

// TestStrategyCheckpointResumeEquivalence: for each new strategy, training
// six epochs straight through must be bit-identical to training three,
// checkpointing every rank, loading into fresh trainers, and training the
// remaining three — the strategy state word in the v3 trainer checkpoint is
// what carries the sampler RNG across.
func TestStrategyCheckpointResumeEquivalence(t *testing.T) {
	for name, factory := range stratFactories(31) {
		ds := testDataset(t, 61)
		const k = 2
		const total, pre = 6, 3
		topo := buildTopo(t, ds, k)
		mc := core.ModelConfig{Arch: core.ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 5}
		cfg := core.ParallelConfig{Model: mc, P: 1, SampleSeed: 11, Strategy: factory}

		ref, err := core.NewParallelTrainer(ds, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		refLoss := make([]float64, total)
		for e := 0; e < total; e++ {
			refLoss[e] = ref.TrainEpoch().Loss
		}

		interrupted, err := core.NewParallelTrainer(ds, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < pre; e++ {
			if got := interrupted.TrainEpoch().Loss; got != refLoss[e] {
				t.Fatalf("%s pre-save epoch %d: loss %.17g != reference %.17g", name, e, got, refLoss[e])
			}
		}
		bufs := make([]bytes.Buffer, k)
		for r := 0; r < k; r++ {
			if err := core.SaveTrainerCheckpoint(&bufs[r], interrupted.Ranks[r]); err != nil {
				t.Fatal(err)
			}
		}
		resumed, err := core.NewParallelTrainer(ds, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < k; r++ {
			if err := core.LoadTrainerCheckpoint(&bufs[r], resumed.Ranks[r]); err != nil {
				t.Fatal(err)
			}
		}
		for e := pre; e < total; e++ {
			if got := resumed.TrainEpoch().Loss; got != refLoss[e] {
				t.Fatalf("%s resumed epoch %d: loss %.17g != reference %.17g", name, e, got, refLoss[e])
			}
		}
		for r := 0; r < k; r++ {
			if d := core.MaxParamDiff(ref.Models[r], resumed.Models[r]); d != 0 {
				t.Fatalf("%s rank %d: resumed weights diverged by %v", name, r, d)
			}
		}
	}
}

// TestCheckpointRejectsStrategyMismatch: a trainer checkpoint written under
// one sampling strategy must refuse to load into a trainer running another,
// and the error must name both strategies so the operator knows which side
// to change. Silently resuming would switch estimators mid-run.
func TestCheckpointRejectsStrategyMismatch(t *testing.T) {
	ds := testDataset(t, 62)
	topo := buildTopo(t, ds, 2)
	mc := core.ModelConfig{Arch: core.ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0, LR: 0.01, Seed: 5}

	mkRank := func(factory StrategyFactory) *core.RankTrainer {
		t.Helper()
		cfg := core.ParallelConfig{Model: mc, P: 0.5, SampleSeed: 9, Strategy: factory}
		rt, err := core.NewRankTrainer(ds, topo, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rt
	}

	var buf bytes.Buffer
	if err := core.SaveTrainerCheckpoint(&buf, mkRank(NewLADIESFactory(12, 3))); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for _, wrong := range []struct {
		name    string
		factory StrategyFactory
	}{
		{"bns", nil}, // nil factory = engine default BNS
		{"saint", NewSAINTFactory(0.6, 3)},
	} {
		err := core.LoadTrainerCheckpoint(bytes.NewReader(raw), mkRank(wrong.factory))
		if err == nil {
			t.Fatalf("loading a ladies checkpoint into a %s trainer must fail", wrong.name)
		}
		if !strings.Contains(err.Error(), "ladies") || !strings.Contains(err.Error(), wrong.name) {
			t.Fatalf("mismatch error should name both strategies, got: %v", err)
		}
	}

	// Same strategy still loads.
	if err := core.LoadTrainerCheckpoint(bytes.NewReader(raw), mkRank(NewLADIESFactory(12, 3))); err != nil {
		t.Fatalf("matching strategy failed to load: %v", err)
	}
}

// TestSamplerStateMidEpochResume: capturing State() mid-epoch and installing
// it on a freshly built sampler must reproduce the original's remaining
// batch stream exactly — including the rest of the current epoch's shuffle
// order for the reshuffling samplers, not just the next epoch.
func TestSamplerStateMidEpochResume(t *testing.T) {
	ds := testDataset(t, 63)
	parts := make([]int32, ds.G.N)
	for v := range parts {
		parts[v] = int32(v % 8)
	}
	build := func() []Sampler {
		cs, err := NewClusterGCNSampler(ds.G, ds.TrainMask, parts, 8, 2, 9)
		if err != nil {
			t.Fatal(err)
		}
		return []Sampler{
			NewNeighborSampler(ds.G, ds.TrainMask, 32, 5, 2, 9),
			NewFastGCNSampler(ds.G, ds.TrainMask, 32, 64, 9),
			NewLADIESSampler(ds.G, ds.TrainMask, 32, 64, 2, 9),
			cs,
			NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTWalk, 100, 4, 9),
		}
	}
	orig := build()
	for i, s := range orig {
		// Advance into the middle of an epoch (and past one reshuffle).
		steps := s.BatchesPerEpoch() + s.BatchesPerEpoch()/2
		if steps < 3 {
			steps = 3
		}
		for j := 0; j < steps; j++ {
			s.Sample()
		}
		st := s.State()
		clone := build()[i]
		clone.SetState(st)
		for j := 0; j < s.BatchesPerEpoch()+2; j++ {
			if !sameBatch(s.Sample(), clone.Sample()) {
				t.Fatalf("%s: resumed sampler diverged at post-resume step %d", s.Name(), j)
			}
		}
	}
}
