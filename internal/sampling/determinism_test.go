package sampling

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func sameBatch(a, b *Batch) bool {
	if len(a.Nodes) != len(b.Nodes) {
		return false
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] || a.TargetMask[i] != b.TargetMask[i] {
			return false
		}
	}
	return a.G.NumDirectedEdges() == b.G.NumDirectedEdges()
}

func TestSamplersDeterministic(t *testing.T) {
	ds := testDataset(t, 50)
	build := func(seed uint64) []Sampler {
		return []Sampler{
			NewNeighborSampler(ds.G, ds.TrainMask, 32, 5, 2, seed),
			NewFastGCNSampler(ds.G, ds.TrainMask, 32, 64, seed),
			NewLADIESSampler(ds.G, ds.TrainMask, 32, 64, 2, seed),
			NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTWalk, 100, 4, seed),
		}
	}
	as, bs := build(9), build(9)
	for i := range as {
		for step := 0; step < 3; step++ {
			if !sameBatch(as[i].Sample(), bs[i].Sample()) {
				t.Fatalf("%s: same seed diverged at step %d", as[i].Name(), step)
			}
		}
	}
	cs := build(10)
	diverged := false
	for i := range as {
		if !sameBatch(as[i].Sample(), cs[i].Sample()) {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("different seeds produced identical batches for every sampler")
	}
}

func TestNeighborSamplerRespectsFanout(t *testing.T) {
	ds := testDataset(t, 51)
	const fanout = 3
	s := NewNeighborSampler(ds.G, ds.TrainMask, 16, fanout, 1, 2)
	b := s.Sample()
	// One-hop expansion: at most batch*(fanout) context beyond the targets.
	targets := 0
	for _, m := range b.TargetMask {
		if m {
			targets++
		}
	}
	if len(b.Nodes)-targets > targets*fanout {
		t.Fatalf("context %d exceeds fanout bound %d", len(b.Nodes)-targets, targets*fanout)
	}
}

func TestSAINTWalkStaysConnectedToRoots(t *testing.T) {
	// Every walk-sampled node is reachable from some root by construction;
	// with the induced subgraph it must have a neighbor in the batch unless
	// it was an isolated root.
	ds := testDataset(t, 52)
	s := NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTWalk, 150, 5, 3)
	b := s.Sample()
	isolated := 0
	for v := int32(0); v < int32(b.G.N); v++ {
		if b.G.Degree(v) == 0 {
			isolated++
		}
	}
	if isolated > len(b.Nodes)/4 {
		t.Fatalf("%d of %d walk nodes isolated; walks should stay connected", isolated, len(b.Nodes))
	}
}

func TestMinibatchTrainerMultiLabel(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "ml", Nodes: 500, Communities: 8, AvgDegree: 12,
		IntraFrac: 0.75, DegreeSkew: 1.8, FeatureDim: 16,
		FeatureSignal: 0.4, FeatureNoise: 1.0,
		MultiLabel: true, LabelsPerNode: 2,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 53,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTNode, 150, 4, 4)
	tr, err := NewMinibatchTrainer(ds, modelCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	before := tr.Evaluate(ds.TestMask)
	for e := 0; e < 15; e++ {
		tr.TrainEpoch()
	}
	if after := tr.Evaluate(ds.TestMask); !(after > before) {
		t.Fatalf("multi-label minibatch training did not improve: %v -> %v", before, after)
	}
}

func TestBNSDroppedEdgesBounds(t *testing.T) {
	ds := testDataset(t, 54)
	topo := buildTopo(t, ds, 4)
	if got := sampledDropped(topo, 1.0); got != 0 {
		t.Fatalf("p=1 drops %d edges, want 0", got)
	}
	all := sampledDropped(topo, 0.0)
	half := sampledDropped(topo, 0.5)
	if !(half > 0 && half < all) {
		t.Fatalf("drop counts not ordered: half=%d all=%d", half, all)
	}
}

func sampledDropped(topo *core.Topology, p float64) int64 {
	return BNSDroppedEdges(topo, p)
}

func buildTopo(t *testing.T, ds *datagen.Dataset, k int) *core.Topology {
	t.Helper()
	parts := make([]int32, ds.G.N)
	for v := range parts {
		parts[v] = int32(v % k)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}
