package sampling

import (
	"repro/internal/core"
	"repro/internal/tensor"
)

// This file hosts the partition-parallel epoch-sampling strategies. The
// contract itself (Strategy, PartitionView, Plan) lives in core — the
// engine's package — because sampling already imports core for the
// minibatch trainer; the aliases below make sampling.Strategy the canonical
// spelling, and the two non-BNS strategies live here next to their
// single-machine minibatch cousins.
//
// Both strategies are partition-local adaptations: each rank samples against
// its own boundary set (LADIES) or inner set (SAINT) with a rank-seeded
// stream, and the engine's position-exchange protocol reconciles the demands
// exactly as it does for BNS. They therefore ride the pipelined halo
// overlap, the fused SAGE kernels, elastic checkpoint/resume, and the
// alloc-free epoch without any engine-side special cases beyond what the
// Plan expresses (per-slot receive scales, dropped inner rows).

// Strategy produces the per-epoch local subgraph and halo demand for one
// rank; see core.Strategy for the full contract.
type Strategy = core.Strategy

// PartitionView is the static partition description a Strategy samples
// against; see core.PartitionView.
type PartitionView = core.PartitionView

// Plan is one epoch's sampling decision; see core.Plan.
type Plan = core.Plan

// StrategyFactory builds one rank's Strategy; see core.StrategyFactory.
type StrategyFactory = core.StrategyFactory

// NewBNSFactory returns a factory for the paper's boundary-node sampling at
// rate p — the engine's default, spelled as a factory for symmetry with the
// other strategies (cmd/bnsgcn's -sampler flag maps names to factories).
func NewBNSFactory(p float64, seed uint64) StrategyFactory {
	return func(rank int) Strategy { return core.NewBNSStrategy(p, seed, rank) }
}

// ladiesStrategy is partition-local LADIES-style layer-wise importance
// sampling (Zou et al., 2019) hosted on the partition-parallel engine: the
// candidate layer is this rank's boundary set, each slot is kept with a
// static degree-proportional inclusion probability scaled to an expected
// Budget slots per epoch, and kept features arrive rescaled by the inverse
// inclusion probability (per-slot Horvitz–Thompson, Plan.HaloScale) so the
// mean aggregation stays unbiased. Inner rows always participate — like
// BNS, the strategy only modulates the halo, so the loss and the compute
// row set match the full partition every epoch.
type ladiesStrategy struct {
	budget int
	seed   uint64
	rng    *tensor.RNG
	view   *PartitionView
	prob   []float32 // per-slot inclusion probability
	scale  []float32 // per-slot 1/prob (the HT receive rescale)
}

// NewLADIESFactory returns a factory for partition-local LADIES-style
// boundary sampling with an expected budget of kept boundary slots per rank
// per epoch. budget <= 0 keeps every slot (inclusion probability 1).
func NewLADIESFactory(budget int, seed uint64) StrategyFactory {
	return func(rank int) Strategy {
		return &ladiesStrategy{budget: budget, seed: seed + uint64(rank)*0x9e3779b9}
	}
}

// Name implements Strategy.
func (s *ladiesStrategy) Name() string { return "ladies" }

// Bind implements Strategy: the inclusion probabilities are a static
// function of the partition's boundary degrees, computed once.
func (s *ladiesStrategy) Bind(view *PartitionView) {
	s.view = view
	s.rng = tensor.NewRNG(s.seed)
	s.prob = make([]float32, view.NBd)
	s.scale = make([]float32, view.NBd)
	var sum float64
	for _, d := range view.SlotDeg {
		sum += float64(d) + 1
	}
	for i, d := range view.SlotDeg {
		p := 1.0
		if s.budget > 0 && sum > 0 {
			p = float64(s.budget) * (float64(d) + 1) / sum
			if p > 1 {
				p = 1
			}
		}
		s.prob[i] = float32(p)
		s.scale[i] = float32(1 / p)
	}
}

// State implements Strategy.
func (s *ladiesStrategy) State() uint64 { return s.rng.State() }

// SetState implements Strategy.
func (s *ladiesStrategy) SetState(st uint64) { s.rng.SetState(st) }

// PlanEpoch implements Strategy: one draw per boundary slot in ascending
// slot order — a peer-structure-independent RNG stream, so the plan is a
// pure function of (seed, epoch) regardless of schedule or transport.
func (s *ladiesStrategy) PlanEpoch(plan *Plan) {
	v := s.view
	for i := range plan.Active {
		plan.Active[i] = i < v.NIn
	}
	for si := 0; si < v.NBd; si++ {
		if s.rng.Float32() < s.prob[si] {
			plan.Active[v.NIn+si] = true
		}
	}
	for j := 0; j < v.K; j++ {
		if j == v.Rank {
			continue
		}
		pos := plan.Positions[j][:0]
		for x, slot := range v.RecvLists[j] {
			if plan.Active[v.NIn+int(slot)] {
				pos = append(pos, int32(x))
			}
		}
		plan.Positions[j] = pos
	}
	plan.InvP = 1
	plan.HaloScale = s.scale
	plan.DropsInner = false
}

// saintStrategy is GraphSAINT-style subgraph sampling (Zeng et al., 2020)
// hosted on the partition-parallel engine: each epoch every rank keeps a
// degree-proportional random subset of its inner nodes (expected fraction
// Frac) and trains on the node-induced subgraph over the kept rows plus the
// halo slots they touch. Dropped rows leave the compute lists (SAGE) or
// become isolated zero-gradient nodes (GAT), and leave the loss either way;
// rows a peer still requests are promoted back to compute with an empty
// neighborhood (they self-project), so the wire protocol never ships stale
// features. Aggregations renormalize over the present neighbors (the
// self-normalized estimator's generic walk), so no receive rescale applies.
type saintStrategy struct {
	frac float64
	seed uint64
	rng  *tensor.RNG
	view *PartitionView
	prob []float32 // per-inner-row keep probability
}

// NewSAINTFactory returns a factory for GraphSAINT-style node-budget
// subgraph sampling keeping an expected frac of each rank's inner nodes per
// epoch. frac >= 1 (or <= 0) keeps every node.
func NewSAINTFactory(frac float64, seed uint64) StrategyFactory {
	return func(rank int) Strategy {
		return &saintStrategy{frac: frac, seed: seed + uint64(rank)*0x9e3779b9}
	}
}

// Name implements Strategy.
func (s *saintStrategy) Name() string { return "saint" }

// Bind implements Strategy: per-row keep probabilities proportional to
// degree+1, normalized so the expected kept count is frac·NIn (capped at 1
// per row, which skews mass toward low-degree rows exactly like GraphSAINT's
// clipped node sampler).
func (s *saintStrategy) Bind(view *PartitionView) {
	s.view = view
	s.rng = tensor.NewRNG(s.seed)
	s.prob = make([]float32, view.NIn)
	keepAll := s.frac <= 0 || s.frac >= 1
	var sum float64
	for _, d := range view.InnerDeg {
		sum += float64(d) + 1
	}
	for i, d := range view.InnerDeg {
		p := 1.0
		if !keepAll && sum > 0 {
			p = s.frac * float64(view.NIn) * (float64(d) + 1) / sum
			if p > 1 {
				p = 1
			}
		}
		s.prob[i] = float32(p)
	}
}

// State implements Strategy.
func (s *saintStrategy) State() uint64 { return s.rng.State() }

// SetState implements Strategy.
func (s *saintStrategy) SetState(st uint64) { s.rng.SetState(st) }

// PlanEpoch implements Strategy: one draw per inner row in ascending row
// order, then the halo demand is exactly the set of slots adjacent to a
// kept row — nothing else is requested, so comm volume shrinks with the
// subgraph.
func (s *saintStrategy) PlanEpoch(plan *Plan) {
	v := s.view
	for i := range plan.Active {
		plan.Active[i] = false
	}
	for r := 0; r < v.NIn; r++ {
		if s.rng.Float32() < s.prob[r] {
			plan.Active[r] = true
		}
	}
	nIn := int32(v.NIn)
	for r := 0; r < v.NIn; r++ {
		if !plan.Active[r] {
			continue
		}
		for _, u := range v.Indices[v.Indptr[r]:v.Indptr[r+1]] {
			if u >= nIn {
				plan.Active[u] = true
			}
		}
	}
	for j := 0; j < v.K; j++ {
		if j == v.Rank {
			continue
		}
		pos := plan.Positions[j][:0]
		for x, slot := range v.RecvLists[j] {
			if plan.Active[v.NIn+int(slot)] {
				pos = append(pos, int32(x))
			}
		}
		plan.Positions[j] = pos
	}
	plan.InvP = 1
	plan.HaloScale = nil
	plan.DropsInner = true
}
