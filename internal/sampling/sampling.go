// Package sampling implements the sampling-based GCN training baselines the
// paper compares against (Tables 4, 5, 9, 11, 12): GraphSAGE neighbor
// sampling, FastGCN and LADIES layer sampling, ClusterGCN and GraphSAINT
// subgraph sampling, plus the edge-sampling ablations DropEdge and Boundary
// Edge Sampling (BES).
//
// All subgraph-producing samplers share the Batch abstraction: a set of
// global nodes, the induced subgraph over them, and a target mask marking
// the rows where loss is computed. A MinibatchTrainer runs any such sampler
// through the same nn stack used by BNS-GCN, so timing and accuracy
// comparisons are apples-to-apples.
package sampling

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Batch is one sampled training subgraph.
type Batch struct {
	Nodes      []int32      // local row -> global node id
	G          *graph.Graph // induced subgraph over the local space
	TargetMask []bool       // local rows contributing to the loss
}

// SamplerState is a sampler's resumable position: the current RNG state,
// and — for samplers that shuffle their target list per epoch — the RNG
// state the running epoch's shuffle was drawn from plus the cursor into it.
// Restoring replays the shuffle from EpochRNG, repositions the cursor, then
// restores the exact current stream position, so a resumed sampler produces
// the same batch sequence an uninterrupted one would, even mid-epoch.
// Samplers without an epoch order leave EpochRNG/Cursor zero.
type SamplerState struct {
	RNG      uint64
	EpochRNG uint64
	Cursor   int
}

// Sampler produces training batches. Implementations must be deterministic
// given the RNG passed at construction.
type Sampler interface {
	Name() string
	// Sample returns the next batch. Implementations may return fewer target
	// nodes near the end of an epoch.
	Sample() *Batch
	// BatchesPerEpoch is how many batches constitute one epoch.
	BatchesPerEpoch() int
	// State and SetState round-trip the sampler's resumable position (the
	// minibatch analogue of the trainer checkpoint's strategy state).
	State() SamplerState
	SetState(SamplerState)
}

// trainNodeList extracts the global ids with mask set.
func trainNodeList(mask []bool) []int32 {
	var out []int32
	for v, b := range mask {
		if b {
			out = append(out, int32(v))
		}
	}
	return out
}

// induceBatch builds a Batch from a target set and an extra context set.
func induceBatch(g *graph.Graph, targets []int32, context map[int32]bool) *Batch {
	nodes := make([]int32, 0, len(targets)+len(context))
	inTargets := make(map[int32]bool, len(targets))
	for _, v := range targets {
		nodes = append(nodes, v)
		inTargets[v] = true
	}
	extra := make([]int32, 0, len(context))
	for v := range context {
		if !inTargets[v] {
			extra = append(extra, v)
		}
	}
	sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
	nodes = append(nodes, extra...)
	sub := graph.InducedSubgraph(g, nodes)
	mask := make([]bool, len(nodes))
	for i := range targets {
		mask[i] = true
	}
	return &Batch{Nodes: nodes, G: sub, TargetMask: mask}
}

// NeighborSampler is GraphSAGE-style node sampling (Hamilton et al., 2017):
// a batch of train nodes is expanded layer by layer, keeping at most Fanout
// random neighbors per node per hop.
type NeighborSampler struct {
	G        *graph.Graph
	Train    []int32
	Batch    int
	Fanout   int
	Hops     int
	rng      *tensor.RNG
	epochRNG uint64 // rng position the running epoch's shuffle was drawn from
	cursor   int
	order    []int32
}

// NewNeighborSampler builds the sampler over the train mask.
func NewNeighborSampler(g *graph.Graph, trainMask []bool, batch, fanout, hops int, seed uint64) *NeighborSampler {
	s := &NeighborSampler{
		G: g, Train: trainNodeList(trainMask), Batch: batch,
		Fanout: fanout, Hops: hops, rng: tensor.NewRNG(seed),
	}
	s.reshuffle()
	return s
}

func (s *NeighborSampler) reshuffle() {
	s.epochRNG = s.rng.State()
	perm := s.rng.Perm(len(s.Train))
	s.order = make([]int32, len(s.Train))
	for i, p := range perm {
		s.order[i] = s.Train[p]
	}
	s.cursor = 0
}

// Name implements Sampler.
func (s *NeighborSampler) Name() string { return "NeighborSampling" }

// State implements Sampler.
func (s *NeighborSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State(), EpochRNG: s.epochRNG, Cursor: s.cursor}
}

// SetState implements Sampler.
func (s *NeighborSampler) SetState(st SamplerState) {
	s.rng.SetState(st.EpochRNG)
	s.reshuffle()
	s.cursor = st.Cursor
	s.rng.SetState(st.RNG)
}

// BatchesPerEpoch implements Sampler.
func (s *NeighborSampler) BatchesPerEpoch() int {
	return (len(s.Train) + s.Batch - 1) / s.Batch
}

// Sample implements Sampler.
func (s *NeighborSampler) Sample() *Batch {
	if s.cursor >= len(s.order) {
		s.reshuffle()
	}
	end := s.cursor + s.Batch
	if end > len(s.order) {
		end = len(s.order)
	}
	targets := s.order[s.cursor:end]
	s.cursor = end

	context := make(map[int32]bool)
	frontier := targets
	for hop := 0; hop < s.Hops; hop++ {
		var next []int32
		for _, v := range frontier {
			nbrs := s.G.Neighbors(v)
			if len(nbrs) <= s.Fanout {
				for _, u := range nbrs {
					if !context[u] {
						context[u] = true
						next = append(next, u)
					}
				}
				continue
			}
			for i := 0; i < s.Fanout; i++ {
				u := nbrs[s.rng.Intn(len(nbrs))]
				if !context[u] {
					context[u] = true
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return induceBatch(s.G, targets, context)
}

// FastGCNSampler is layer sampling with a global, degree-proportional
// proposal (Chen et al., 2018a): each batch pairs seed train nodes with
// LayerSize importance-sampled context nodes drawn from the whole graph.
type FastGCNSampler struct {
	G         *graph.Graph
	Train     []int32
	Batch     int
	LayerSize int
	rng       *tensor.RNG
	epochRNG  uint64    // rng position the running epoch's shuffle was drawn from
	prefix    []float64 // degree-cumulative for importance sampling
	cursor    int
	order     []int32
}

// NewFastGCNSampler builds the sampler.
func NewFastGCNSampler(g *graph.Graph, trainMask []bool, batch, layerSize int, seed uint64) *FastGCNSampler {
	s := &FastGCNSampler{
		G: g, Train: trainNodeList(trainMask), Batch: batch,
		LayerSize: layerSize, rng: tensor.NewRNG(seed),
	}
	s.prefix = make([]float64, g.N+1)
	for v := 0; v < g.N; v++ {
		s.prefix[v+1] = s.prefix[v] + float64(g.Degree(int32(v))+1)
	}
	s.reshuffle()
	return s
}

func (s *FastGCNSampler) reshuffle() {
	s.epochRNG = s.rng.State()
	perm := s.rng.Perm(len(s.Train))
	s.order = make([]int32, len(s.Train))
	for i, p := range perm {
		s.order[i] = s.Train[p]
	}
	s.cursor = 0
}

// Name implements Sampler.
func (s *FastGCNSampler) Name() string { return "FastGCN" }

// State implements Sampler.
func (s *FastGCNSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State(), EpochRNG: s.epochRNG, Cursor: s.cursor}
}

// SetState implements Sampler.
func (s *FastGCNSampler) SetState(st SamplerState) {
	s.rng.SetState(st.EpochRNG)
	s.reshuffle()
	s.cursor = st.Cursor
	s.rng.SetState(st.RNG)
}

// BatchesPerEpoch implements Sampler.
func (s *FastGCNSampler) BatchesPerEpoch() int {
	return (len(s.Train) + s.Batch - 1) / s.Batch
}

// Sample implements Sampler.
func (s *FastGCNSampler) Sample() *Batch {
	if s.cursor >= len(s.order) {
		s.reshuffle()
	}
	end := s.cursor + s.Batch
	if end > len(s.order) {
		end = len(s.order)
	}
	targets := s.order[s.cursor:end]
	s.cursor = end

	context := make(map[int32]bool)
	total := s.prefix[len(s.prefix)-1]
	for i := 0; i < s.LayerSize; i++ {
		x := s.rng.Float64() * total
		v := sort.SearchFloat64s(s.prefix, x)
		if v > 0 {
			v--
		}
		if v >= s.G.N {
			v = s.G.N - 1
		}
		context[int32(v)] = true
	}
	return induceBatch(s.G, targets, context)
}

// LADIESSampler is layer-dependent importance sampling (Zou et al., 2019):
// context nodes are drawn only from the neighborhood of the current batch,
// degree-proportionally, which keeps the sampled layers connected.
type LADIESSampler struct {
	G         *graph.Graph
	Train     []int32
	Batch     int
	LayerSize int
	Hops      int
	rng       *tensor.RNG
	epochRNG  uint64 // rng position the running epoch's shuffle was drawn from
	cursor    int
	order     []int32
}

// NewLADIESSampler builds the sampler.
func NewLADIESSampler(g *graph.Graph, trainMask []bool, batch, layerSize, hops int, seed uint64) *LADIESSampler {
	s := &LADIESSampler{
		G: g, Train: trainNodeList(trainMask), Batch: batch,
		LayerSize: layerSize, Hops: hops, rng: tensor.NewRNG(seed),
	}
	s.reshuffle()
	return s
}

func (s *LADIESSampler) reshuffle() {
	s.epochRNG = s.rng.State()
	perm := s.rng.Perm(len(s.Train))
	s.order = make([]int32, len(s.Train))
	for i, p := range perm {
		s.order[i] = s.Train[p]
	}
	s.cursor = 0
}

// Name implements Sampler.
func (s *LADIESSampler) Name() string { return "LADIES" }

// State implements Sampler.
func (s *LADIESSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State(), EpochRNG: s.epochRNG, Cursor: s.cursor}
}

// SetState implements Sampler.
func (s *LADIESSampler) SetState(st SamplerState) {
	s.rng.SetState(st.EpochRNG)
	s.reshuffle()
	s.cursor = st.Cursor
	s.rng.SetState(st.RNG)
}

// BatchesPerEpoch implements Sampler.
func (s *LADIESSampler) BatchesPerEpoch() int {
	return (len(s.Train) + s.Batch - 1) / s.Batch
}

// Sample implements Sampler.
func (s *LADIESSampler) Sample() *Batch {
	if s.cursor >= len(s.order) {
		s.reshuffle()
	}
	end := s.cursor + s.Batch
	if end > len(s.order) {
		end = len(s.order)
	}
	targets := s.order[s.cursor:end]
	s.cursor = end

	context := make(map[int32]bool)
	current := targets
	for hop := 0; hop < s.Hops; hop++ {
		// Candidate pool: union of neighbors of the current layer.
		var pool []int32
		seen := make(map[int32]bool)
		for _, v := range current {
			for _, u := range s.G.Neighbors(v) {
				if !seen[u] {
					seen[u] = true
					pool = append(pool, u)
				}
			}
		}
		if len(pool) == 0 {
			break
		}
		// Degree-proportional draw of LayerSize nodes from the pool.
		prefix := make([]float64, len(pool)+1)
		for i, u := range pool {
			prefix[i+1] = prefix[i] + float64(s.G.Degree(u)+1)
		}
		var next []int32
		for i := 0; i < s.LayerSize; i++ {
			x := s.rng.Float64() * prefix[len(prefix)-1]
			j := sort.SearchFloat64s(prefix, x)
			if j > 0 {
				j--
			}
			if j >= len(pool) {
				j = len(pool) - 1
			}
			u := pool[j]
			if !context[u] {
				context[u] = true
				next = append(next, u)
			}
		}
		current = next
	}
	return induceBatch(s.G, targets, context)
}

// ClusterGCNSampler (Chiang et al., 2019) pre-partitions the graph into
// Clusters blocks and trains on the induced subgraph of a few randomly
// merged blocks per batch.
type ClusterGCNSampler struct {
	G             *graph.Graph
	trainMask     []bool
	members       [][]int32
	BlocksPerStep int
	rng           *tensor.RNG
}

// NewClusterGCNSampler builds the sampler from a precomputed clustering
// (parts as produced by any Partitioner over nclusters blocks).
func NewClusterGCNSampler(g *graph.Graph, trainMask []bool, parts []int32, nclusters, blocksPerStep int, seed uint64) (*ClusterGCNSampler, error) {
	if len(parts) != g.N {
		return nil, fmt.Errorf("sampling: parts length %d != %d", len(parts), g.N)
	}
	s := &ClusterGCNSampler{
		G: g, trainMask: trainMask, BlocksPerStep: blocksPerStep,
		members: make([][]int32, nclusters), rng: tensor.NewRNG(seed),
	}
	for v, p := range parts {
		if p < 0 || int(p) >= nclusters {
			return nil, fmt.Errorf("sampling: bad cluster id %d", p)
		}
		s.members[p] = append(s.members[p], int32(v))
	}
	return s, nil
}

// Name implements Sampler.
func (s *ClusterGCNSampler) Name() string { return "ClusterGCN" }

// State implements Sampler (no epoch order: the RNG is the whole state).
func (s *ClusterGCNSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State()}
}

// SetState implements Sampler.
func (s *ClusterGCNSampler) SetState(st SamplerState) { s.rng.SetState(st.RNG) }

// BatchesPerEpoch implements Sampler.
func (s *ClusterGCNSampler) BatchesPerEpoch() int {
	n := len(s.members) / s.BlocksPerStep
	if n < 1 {
		n = 1
	}
	return n
}

// Sample implements Sampler.
func (s *ClusterGCNSampler) Sample() *Batch {
	var nodes []int32
	for i := 0; i < s.BlocksPerStep; i++ {
		c := s.rng.Intn(len(s.members))
		nodes = append(nodes, s.members[c]...)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	// Dedupe (blocks may repeat).
	uniq := nodes[:0]
	var prev int32 = -1
	for _, v := range nodes {
		if v != prev {
			uniq = append(uniq, v)
			prev = v
		}
	}
	sub := graph.InducedSubgraph(s.G, uniq)
	mask := make([]bool, len(uniq))
	for i, v := range uniq {
		mask[i] = s.trainMask[v]
	}
	return &Batch{Nodes: uniq, G: sub, TargetMask: mask}
}

// SAINTMode selects GraphSAINT's sampler variant.
type SAINTMode int

const (
	// SAINTNode samples nodes with probability proportional to degree.
	SAINTNode SAINTMode = iota
	// SAINTEdge samples edges uniformly and keeps their endpoints.
	SAINTEdge
	// SAINTWalk samples random-walk roots and keeps the visited nodes.
	SAINTWalk
)

func (m SAINTMode) String() string {
	switch m {
	case SAINTNode:
		return "GraphSAINT-node"
	case SAINTEdge:
		return "GraphSAINT-edge"
	case SAINTWalk:
		return "GraphSAINT-walk"
	}
	return "GraphSAINT-?"
}

// GraphSAINTSampler (Zeng et al., 2020) trains on induced subgraphs drawn by
// node, edge, or random-walk sampling.
type GraphSAINTSampler struct {
	G          *graph.Graph
	trainMask  []bool
	Mode       SAINTMode
	Budget     int // nodes (node/walk modes) or edges (edge mode)
	WalkLength int
	rng        *tensor.RNG
	prefix     []float64
}

// NewGraphSAINTSampler builds the sampler.
func NewGraphSAINTSampler(g *graph.Graph, trainMask []bool, mode SAINTMode, budget, walkLength int, seed uint64) *GraphSAINTSampler {
	s := &GraphSAINTSampler{
		G: g, trainMask: trainMask, Mode: mode, Budget: budget,
		WalkLength: walkLength, rng: tensor.NewRNG(seed),
	}
	s.prefix = make([]float64, g.N+1)
	for v := 0; v < g.N; v++ {
		s.prefix[v+1] = s.prefix[v] + float64(g.Degree(int32(v))+1)
	}
	return s
}

// Name implements Sampler.
func (s *GraphSAINTSampler) Name() string { return s.Mode.String() }

// State implements Sampler (no epoch order: the RNG is the whole state).
func (s *GraphSAINTSampler) State() SamplerState {
	return SamplerState{RNG: s.rng.State()}
}

// SetState implements Sampler.
func (s *GraphSAINTSampler) SetState(st SamplerState) { s.rng.SetState(st.RNG) }

// BatchesPerEpoch implements Sampler.
func (s *GraphSAINTSampler) BatchesPerEpoch() int {
	n := s.G.N / s.Budget
	if n < 1 {
		n = 1
	}
	return n
}

// Sample implements Sampler.
func (s *GraphSAINTSampler) Sample() *Batch {
	picked := make(map[int32]bool)
	switch s.Mode {
	case SAINTNode:
		total := s.prefix[len(s.prefix)-1]
		for len(picked) < s.Budget {
			x := s.rng.Float64() * total
			v := sort.SearchFloat64s(s.prefix, x)
			if v > 0 {
				v--
			}
			if v >= s.G.N {
				v = s.G.N - 1
			}
			picked[int32(v)] = true
		}
	case SAINTEdge:
		for i := 0; i < s.Budget; i++ {
			v := int32(s.rng.Intn(s.G.N))
			nbrs := s.G.Neighbors(v)
			if len(nbrs) == 0 {
				continue
			}
			u := nbrs[s.rng.Intn(len(nbrs))]
			picked[v] = true
			picked[u] = true
		}
	case SAINTWalk:
		roots := s.Budget / (s.WalkLength + 1)
		if roots < 1 {
			roots = 1
		}
		for r := 0; r < roots; r++ {
			v := int32(s.rng.Intn(s.G.N))
			picked[v] = true
			for step := 0; step < s.WalkLength; step++ {
				nbrs := s.G.Neighbors(v)
				if len(nbrs) == 0 {
					break
				}
				v = nbrs[s.rng.Intn(len(nbrs))]
				picked[v] = true
			}
		}
	}
	nodes := make([]int32, 0, len(picked))
	for v := range picked {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	sub := graph.InducedSubgraph(s.G, nodes)
	mask := make([]bool, len(nodes))
	for i, v := range nodes {
		mask[i] = s.trainMask[v]
	}
	return &Batch{Nodes: nodes, G: sub, TargetMask: mask}
}
