package sampling

import (
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// EdgeDropMode selects which edges an EdgeDropTrainer may drop.
type EdgeDropMode int

const (
	// DropEdgeGlobal drops any edge uniformly (DropEdge, Rong et al., 2019).
	DropEdgeGlobal EdgeDropMode = iota
	// DropEdgeBoundary drops only cross-partition edges (the paper's BES
	// ablation, Section 4.3 / Table 9).
	DropEdgeBoundary
)

func (m EdgeDropMode) String() string {
	if m == DropEdgeBoundary {
		return "BES"
	}
	return "DropEdge"
}

// EdgeDropTrainer performs full-graph training on a per-epoch edge-sampled
// graph, used for the Table 9 ablation. It also reports the partition-
// parallel communication volume each epoch's surviving edges would require:
// a boundary node must still be communicated if at least one of its
// cross-partition edges survives — the paper's core argument for why edge
// sampling cannot match boundary-node sampling.
type EdgeDropTrainer struct {
	DS   *datagen.Dataset
	Topo *core.Topology
	Mode EdgeDropMode
	// KeepProb is the survival probability of a droppable edge.
	KeepProb float64

	Model *core.Model
	Opt   optim.Optimizer
	rng   *tensor.RNG

	SampleTime  time.Duration
	ComputeTime time.Duration

	// LastCommVolume is the boundary-node communication volume implied by
	// the surviving cross-partition edges of the last sampled epoch graph.
	LastCommVolume int64
	// LastDroppedEdges counts undirected edges dropped in the last epoch.
	LastDroppedEdges int64
}

// NewEdgeDropTrainer builds the trainer.
func NewEdgeDropTrainer(ds *datagen.Dataset, topo *core.Topology, cfg core.ModelConfig, mode EdgeDropMode, keepProb float64, seed uint64) (*EdgeDropTrainer, error) {
	model, err := core.NewModel(cfg, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return nil, err
	}
	return &EdgeDropTrainer{
		DS: ds, Topo: topo, Mode: mode, KeepProb: keepProb,
		Model: model, Opt: optim.NewAdam(cfg.LR), rng: tensor.NewRNG(seed),
	}, nil
}

// sampleGraph draws the epoch's edge-sampled graph and records the implied
// partition-parallel communication volume.
func (t *EdgeDropTrainer) sampleGraph() *graph.Graph {
	g := t.DS.G
	parts := t.Topo.Parts
	b := graph.NewBuilder(g.N)
	var dropped int64
	// needed[i] tracks which remote nodes partition i still needs.
	needed := make([]map[int32]bool, t.Topo.K)
	for i := range needed {
		needed[i] = make(map[int32]bool)
	}
	for v := int32(0); v < int32(g.N); v++ {
		for _, u := range g.Neighbors(v) {
			if u <= v {
				continue
			}
			cross := parts[v] != parts[u]
			droppable := t.Mode == DropEdgeGlobal || cross
			if droppable && t.rng.Float64() >= t.KeepProb {
				dropped++
				continue
			}
			b.AddEdge(v, u)
			if cross {
				needed[parts[v]][u] = true
				needed[parts[u]][v] = true
			}
		}
	}
	t.LastDroppedEdges = dropped
	t.LastCommVolume = 0
	for _, m := range needed {
		t.LastCommVolume += int64(len(m))
	}
	return b.Build()
}

// TrainEpoch samples an edge-dropped graph and runs one full-graph training
// step on it.
func (t *EdgeDropTrainer) TrainEpoch() float64 {
	ss := time.Now()
	g := t.sampleGraph()
	t.SampleTime += time.Since(ss)

	cs := time.Now()
	defer func() { t.ComputeTime += time.Since(cs) }()

	invDeg := nn.InvDegrees(g)
	h := t.DS.Features
	for l, layer := range t.Model.LayersL {
		h = t.Model.Dropouts[l].Forward(h, true)
		h = layer.Forward(g, h, g.N, invDeg)
	}
	loss, d := core.Loss(t.DS, h, t.DS.Labels, t.DS.LabelMatrix, t.DS.TrainMask, 0)
	t.Model.ZeroGrad()
	for l := len(t.Model.LayersL) - 1; l >= 0; l-- {
		d = t.Model.LayersL[l].Backward(d)
		d = t.Model.Dropouts[l].Backward(d)
	}
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

// Evaluate scores the model with exact full-graph inference.
func (t *EdgeDropTrainer) Evaluate(mask []bool) float64 {
	invDeg := nn.InvDegrees(t.DS.G)
	h := t.DS.Features
	for _, layer := range t.Model.LayersL {
		h = layer.Forward(t.DS.G, h, t.DS.G.N, invDeg)
	}
	return core.Score(t.DS, h, mask)
}

// BNSDroppedEdges returns the expected number of undirected cross-partition
// edges BNS at rate p drops, used to calibrate Table 9's equal-drop
// protocol: a cross edge (v,u) is unusable in the direction v←u when u is
// not sampled by v's partition, and the paper counts each remaining
// undirected edge once, so an edge is "dropped" when neither direction
// survives: probability (1−p)² — approximated here by counting each
// direction with probability (1−p) and halving, matching the paper's
// equal-edge-budget protocol at small p.
func BNSDroppedEdges(topo *core.Topology, p float64) int64 {
	var crossDirected int64
	for i := 0; i < topo.K; i++ {
		for _, v := range topo.Inner[i] {
			for _, u := range topo.G.Neighbors(v) {
				if topo.Parts[u] != int32(i) {
					crossDirected++
				}
			}
		}
	}
	return int64(float64(crossDirected) / 2 * (1 - p))
}
