package sampling

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

func testDataset(t *testing.T, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "sampling-test", Nodes: 600, Communities: 6, AvgDegree: 10,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 12,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func modelCfg() core.ModelConfig {
	return core.ModelConfig{Arch: core.ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0, LR: 0.01, Seed: 7}
}

// checkBatch verifies Batch invariants common to all samplers.
func checkBatch(t *testing.T, ds *datagen.Dataset, b *Batch, trainMask []bool) {
	t.Helper()
	if len(b.Nodes) == 0 {
		t.Fatal("empty batch")
	}
	if b.G.N != len(b.Nodes) || len(b.TargetMask) != len(b.Nodes) {
		t.Fatalf("batch shapes: G.N=%d nodes=%d mask=%d", b.G.N, len(b.Nodes), len(b.TargetMask))
	}
	if err := b.G.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	targets := 0
	for i, v := range b.Nodes {
		if seen[v] {
			t.Fatalf("duplicate node %d in batch", v)
		}
		seen[v] = true
		if b.TargetMask[i] {
			targets++
			if !trainMask[v] {
				t.Fatalf("target %d is not a train node", v)
			}
		}
	}
	if targets == 0 {
		t.Fatal("batch has no targets")
	}
	// Induced edges must exist globally.
	for v := int32(0); v < int32(b.G.N); v++ {
		for _, u := range b.G.Neighbors(v) {
			if !ds.G.HasEdge(b.Nodes[v], b.Nodes[u]) {
				t.Fatalf("phantom edge %d-%d", b.Nodes[v], b.Nodes[u])
			}
		}
	}
}

func TestNeighborSamplerBatches(t *testing.T) {
	ds := testDataset(t, 1)
	s := NewNeighborSampler(ds.G, ds.TrainMask, 32, 5, 2, 1)
	for i := 0; i < 5; i++ {
		checkBatch(t, ds, s.Sample(), ds.TrainMask)
	}
	if s.BatchesPerEpoch() < 5 {
		t.Fatalf("batches per epoch %d", s.BatchesPerEpoch())
	}
}

func TestNeighborSamplerCoversEpoch(t *testing.T) {
	ds := testDataset(t, 2)
	s := NewNeighborSampler(ds.G, ds.TrainMask, 50, 3, 2, 2)
	seen := map[int32]bool{}
	for i := 0; i < s.BatchesPerEpoch(); i++ {
		b := s.Sample()
		for j, v := range b.Nodes {
			if b.TargetMask[j] {
				seen[v] = true
			}
		}
	}
	want := len(trainNodeList(ds.TrainMask))
	if len(seen) != want {
		t.Fatalf("one epoch covered %d of %d train nodes", len(seen), want)
	}
}

func TestFastGCNSampler(t *testing.T) {
	ds := testDataset(t, 3)
	s := NewFastGCNSampler(ds.G, ds.TrainMask, 32, 100, 3)
	b := s.Sample()
	checkBatch(t, ds, b, ds.TrainMask)
	if len(b.Nodes) < 40 { // 32 targets + sampled context (with overlap)
		t.Fatalf("batch only %d nodes", len(b.Nodes))
	}
}

func TestLADIESSampler(t *testing.T) {
	ds := testDataset(t, 4)
	s := NewLADIESSampler(ds.G, ds.TrainMask, 32, 64, 2, 4)
	b := s.Sample()
	checkBatch(t, ds, b, ds.TrainMask)
}

func TestLADIESContextIsNeighborhood(t *testing.T) {
	// Every non-target node must be reachable: it was drawn from a
	// neighborhood pool, so it must be adjacent (in the global graph) to at
	// least one other batch node.
	ds := testDataset(t, 5)
	s := NewLADIESSampler(ds.G, ds.TrainMask, 16, 32, 2, 5)
	b := s.Sample()
	inBatch := map[int32]bool{}
	for _, v := range b.Nodes {
		inBatch[v] = true
	}
	for i, v := range b.Nodes {
		if b.TargetMask[i] {
			continue
		}
		found := false
		for _, u := range ds.G.Neighbors(v) {
			if inBatch[u] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("context node %d disconnected from batch", v)
		}
	}
}

func TestClusterGCNSampler(t *testing.T) {
	ds := testDataset(t, 6)
	parts, err := (&partition.Metis{Seed: 2}).Partition(ds.G, 12)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewClusterGCNSampler(ds.G, ds.TrainMask, parts, 12, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	b := s.Sample()
	checkBatch(t, ds, b, ds.TrainMask)
	if s.BatchesPerEpoch() != 4 {
		t.Fatalf("batches per epoch %d, want 4", s.BatchesPerEpoch())
	}
}

func TestClusterGCNRejectsBadParts(t *testing.T) {
	ds := testDataset(t, 7)
	if _, err := NewClusterGCNSampler(ds.G, ds.TrainMask, []int32{0}, 2, 1, 1); err == nil {
		t.Fatal("short parts must error")
	}
}

func TestGraphSAINTModes(t *testing.T) {
	ds := testDataset(t, 8)
	for _, mode := range []SAINTMode{SAINTNode, SAINTEdge, SAINTWalk} {
		s := NewGraphSAINTSampler(ds.G, ds.TrainMask, mode, 120, 4, 8)
		b := s.Sample()
		checkBatch(t, ds, b, ds.TrainMask)
		if mode == SAINTNode && len(b.Nodes) != 120 {
			t.Fatalf("node mode picked %d nodes, want 120", len(b.Nodes))
		}
	}
}

func TestSamplerNames(t *testing.T) {
	ds := testDataset(t, 9)
	if NewNeighborSampler(ds.G, ds.TrainMask, 8, 2, 1, 1).Name() != "NeighborSampling" {
		t.Fatal("bad name")
	}
	if NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTWalk, 10, 2, 1).Name() != "GraphSAINT-walk" {
		t.Fatal("bad saint name")
	}
}

func TestMinibatchTrainingLearns(t *testing.T) {
	ds := testDataset(t, 10)
	s := NewGraphSAINTSampler(ds.G, ds.TrainMask, SAINTNode, 200, 4, 10)
	tr, err := NewMinibatchTrainer(ds, modelCfg(), s)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainEpoch()
	for i := 0; i < 20; i++ {
		tr.TrainEpoch()
	}
	last := tr.TrainEpoch()
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if acc := tr.Evaluate(ds.TestMask); acc < 0.4 {
		t.Fatalf("GraphSAINT accuracy %v too low", acc)
	}
	if tr.OverheadFraction() <= 0 || tr.OverheadFraction() >= 1 {
		t.Fatalf("overhead fraction %v", tr.OverheadFraction())
	}
}

func TestEdgeDropTrainer(t *testing.T) {
	ds := testDataset(t, 11)
	parts, err := (&partition.Metis{Seed: 3}).Partition(ds.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewEdgeDropTrainer(ds, topo, modelCfg(), DropEdgeGlobal, 0.7, 12)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.TrainEpoch()
	if tr.LastDroppedEdges == 0 {
		t.Fatal("DropEdge dropped nothing")
	}
	// Roughly 30% of edges dropped.
	frac := float64(tr.LastDroppedEdges) / float64(ds.G.NumEdges())
	if math.Abs(frac-0.3) > 0.05 {
		t.Fatalf("dropped fraction %v, want ~0.3", frac)
	}
	for i := 0; i < 15; i++ {
		tr.TrainEpoch()
	}
	last := tr.TrainEpoch()
	if !(last < first) {
		t.Fatalf("DropEdge loss did not decrease: %v -> %v", first, last)
	}
}

func TestBESOnlyDropsCrossEdges(t *testing.T) {
	ds := testDataset(t, 13)
	parts, err := (&partition.Metis{Seed: 4}).Partition(ds.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	var cross int64
	for v := int32(0); v < int32(ds.G.N); v++ {
		for _, u := range ds.G.Neighbors(v) {
			if u > v && parts[u] != parts[v] {
				cross++
			}
		}
	}
	tr, err := NewEdgeDropTrainer(ds, topo, modelCfg(), DropEdgeBoundary, 0.5, 14)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch()
	if tr.LastDroppedEdges > cross {
		t.Fatalf("BES dropped %d > %d cross edges", tr.LastDroppedEdges, cross)
	}
	if tr.LastDroppedEdges == 0 {
		t.Fatal("BES dropped nothing")
	}
}

// TestEdgeDropCommVolumeExceedsBNS reproduces the paper's core Table 9
// claim: dropping edges leaves most boundary nodes still needed, so the
// residual communication volume far exceeds BNS at the same edge budget.
// The effect grows with density (each boundary node has many cross edges, so
// surviving ones keep it alive), hence the denser-than-default graph —
// the paper's Reddit has average degree 984.
func TestEdgeDropCommVolumeExceedsBNS(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "dense", Nodes: 600, Communities: 6, AvgDegree: 40,
		IntraFrac: 0.6, DegreeSkew: 2.0, FeatureDim: 8,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 5}).Partition(ds.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := 0.1
	// Match dropped-edge budgets.
	bnsDrop := BNSDroppedEdges(topo, p)
	var cross int64
	for v := int32(0); v < int32(ds.G.N); v++ {
		for _, u := range ds.G.Neighbors(v) {
			if u > v && parts[u] != parts[v] {
				cross++
			}
		}
	}
	keep := 1 - float64(bnsDrop)/float64(cross)
	if keep < 0 {
		keep = 0
	}
	tr, err := NewEdgeDropTrainer(ds, topo, modelCfg(), DropEdgeBoundary, keep, 16)
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch()
	bnsVol := float64(topo.CommVolume()) * p
	if float64(tr.LastCommVolume) < 2*bnsVol {
		t.Fatalf("BES residual volume %d not well above BNS %v", tr.LastCommVolume, bnsVol)
	}
}
