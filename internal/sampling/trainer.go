package sampling

import (
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// MinibatchTrainer trains a model with any subgraph Sampler, mirroring how
// the OGB reference implementations run the sampling baselines the paper
// compares against in Tables 4, 5 and 11. Sampling time is measured
// separately from compute time so Table 12's overhead percentages can be
// reproduced.
type MinibatchTrainer struct {
	DS      *datagen.Dataset
	Model   *core.Model
	Opt     optim.Optimizer
	Sampler Sampler

	SampleTime  time.Duration
	ComputeTime time.Duration
	evalTrainer *core.FullTrainer

	// Trainer-owned batch scratch, sized to the largest batch seen and
	// reused — the same layer-owned-scratch discipline RankTrainer's epoch
	// engine runs with, so a steady-state TrainStep's only allocations are
	// the sampler's own batch assembly.
	featsBuf    *tensor.Matrix
	labelMatBuf *tensor.Matrix
	gradBuf     *tensor.Matrix
	labelsBuf   []int32
	invDegBuf   []float32
}

// ensureMat returns a rows × cols matrix stored at *buf with undefined
// contents, reallocating only on capacity growth (nn's layer-scratch idiom).
func ensureMat(buf **tensor.Matrix, rows, cols int) *tensor.Matrix {
	m := *buf
	n := rows * cols
	if m == nil || cap(m.Data) < n {
		m = tensor.New(rows, cols)
		*buf = m
		return m
	}
	m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	return m
}

// ensureI32 returns a length-n int32 slice stored at *buf, contents undefined.
func ensureI32(buf *[]int32, n int) []int32 {
	s := *buf
	if cap(s) < n {
		s = make([]int32, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// ensureF32 returns a length-n float32 slice stored at *buf, contents undefined.
func ensureF32(buf *[]float32, n int) []float32 {
	s := *buf
	if cap(s) < n {
		s = make([]float32, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}

// NewMinibatchTrainer builds a trainer around the given sampler.
func NewMinibatchTrainer(ds *datagen.Dataset, cfg core.ModelConfig, s Sampler) (*MinibatchTrainer, error) {
	model, err := core.NewModel(cfg, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return nil, err
	}
	return &MinibatchTrainer{
		DS:      ds,
		Model:   model,
		Opt:     optim.NewAdam(cfg.LR),
		Sampler: s,
	}, nil
}

// TrainStep samples one batch and applies one optimizer step, returning the
// batch loss.
func (t *MinibatchTrainer) TrainStep() float64 {
	ss := time.Now()
	batch := t.Sampler.Sample()
	t.SampleTime += time.Since(ss)

	cs := time.Now()
	defer func() { t.ComputeTime += time.Since(cs) }()

	feats := ensureMat(&t.featsBuf, len(batch.Nodes), t.DS.Features.Cols)
	tensor.GatherRowsInto(feats, t.DS.Features, batch.Nodes)
	var labels []int32
	var labelMatrix *tensor.Matrix
	if t.DS.MultiLabel {
		labelMatrix = ensureMat(&t.labelMatBuf, len(batch.Nodes), t.DS.LabelMatrix.Cols)
		tensor.GatherRowsInto(labelMatrix, t.DS.LabelMatrix, batch.Nodes)
	} else {
		labels = ensureI32(&t.labelsBuf, len(batch.Nodes))
		for i, v := range batch.Nodes {
			labels[i] = t.DS.Labels[v]
		}
	}
	invDeg := nn.InvDegreesInto(ensureF32(&t.invDegBuf, batch.G.N), batch.G)

	h := feats
	for l, layer := range t.Model.LayersL {
		h = t.Model.Dropouts[l].Forward(h, true)
		h = layer.Forward(batch.G, h, batch.G.N, invDeg)
	}
	d := ensureMat(&t.gradBuf, h.Rows, h.Cols)
	loss := core.LossInto(d, t.DS, h, labels, labelMatrix, batch.TargetMask, 0)
	t.Model.ZeroGrad()
	for l := len(t.Model.LayersL) - 1; l >= 0; l-- {
		d = t.Model.LayersL[l].Backward(d)
		d = t.Model.Dropouts[l].Backward(d)
	}
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

// TrainEpoch runs BatchesPerEpoch steps and returns the mean batch loss.
func (t *MinibatchTrainer) TrainEpoch() float64 {
	n := t.Sampler.BatchesPerEpoch()
	var sum float64
	for i := 0; i < n; i++ {
		sum += t.TrainStep()
	}
	return sum / float64(n)
}

// Evaluate scores the model with exact full-graph inference on mask.
func (t *MinibatchTrainer) Evaluate(mask []bool) float64 {
	if t.evalTrainer == nil {
		t.evalTrainer = &core.FullTrainer{DS: t.DS, Model: t.Model}
	}
	logits := t.fullForward()
	return core.Score(t.DS, logits, mask)
}

func (t *MinibatchTrainer) fullForward() *tensor.Matrix {
	invDeg := nn.InvDegrees(t.DS.G)
	h := t.DS.Features
	for _, layer := range t.Model.LayersL {
		h = layer.Forward(t.DS.G, h, t.DS.G.N, invDeg)
	}
	return h
}

// OverheadFraction returns sampling time / (sampling + compute) time, the
// quantity Table 12 reports.
func (t *MinibatchTrainer) OverheadFraction() float64 {
	total := t.SampleTime + t.ComputeTime
	if total == 0 {
		return 0
	}
	return float64(t.SampleTime) / float64(total)
}
