package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12", "table13",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
		"ablation1", "overlap", "serve", "samplers",
	}
	for _, id := range want {
		if _, ok := Lookup(id); !ok {
			t.Fatalf("experiment %q not registered", id)
		}
	}
	if len(Registry()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Registry()), len(want))
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("table99"); ok {
		t.Fatal("unknown id must not resolve")
	}
}

func TestRegistryTitlesNonEmpty(t *testing.T) {
	for _, r := range Registry() {
		if r.Title == "" || r.Run == nil {
			t.Fatalf("experiment %q incomplete", r.ID)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Runs != 1 || o.Seed == 0 {
		t.Fatalf("defaults %+v", o)
	}
	if (Options{Quick: true}).epochs(500) != 3 {
		t.Fatal("quick mode must truncate epochs")
	}
	if (Options{Epochs: 7}).epochs(500) != 7 {
		t.Fatal("epoch override ignored")
	}
	if (Options{}).epochs(500) != 500 {
		t.Fatal("default epochs ignored")
	}
}

// TestStructuralExperimentsRun runs the no-training experiments end to end
// in quick mode and sanity-checks their output.
func TestStructuralExperimentsRun(t *testing.T) {
	cases := map[string]string{
		"table1": "Ratio",
		"table3": "reddit-sim",
		"fig3":   "straggler",
		"fig8":   "median",
		"fig5":   "comm share",
		"fig6":   "p=0.1",
		"table6": "BNS-GCN",
		"table8": "partitioner",
	}
	for id, needle := range cases {
		r, ok := Lookup(id)
		if !ok {
			t.Fatalf("missing %s", id)
		}
		var buf bytes.Buffer
		if err := r.Run(&buf, Options{Quick: true}); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(buf.String(), needle) {
			t.Fatalf("%s output missing %q:\n%s", id, needle, buf.String())
		}
	}
}

// TestTable2OrderingHolds is the variance experiment's headline claim as a
// unit test: BNS variance below LADIES-style below FastGCN-style.
func TestTable2OrderingHolds(t *testing.T) {
	var buf bytes.Buffer
	r, _ := Lookup("table2")
	if err := r.Run(&buf, Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "BNS") {
		t.Fatalf("unexpected output: %s", out)
	}
	// Parse the p=0.50 row: p, bns, ladies, fastgcn, bound.
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "0.50") {
			continue
		}
		var p, bns, ladies, fastgcn, bound float64
		if _, err := fmtSscan(line, &p, &bns, &ladies, &fastgcn, &bound); err != nil {
			t.Fatalf("cannot parse %q: %v", line, err)
		}
		if !(bns < ladies && ladies < fastgcn) {
			t.Fatalf("variance ordering violated: bns=%v ladies=%v fastgcn=%v", bns, ladies, fastgcn)
		}
		if bns > bound {
			t.Fatalf("bns variance %v above bound %v", bns, bound)
		}
		return
	}
	t.Fatal("p=0.50 row not found")
}

// fmtSscan wraps fmt.Sscan to keep the test import list tidy.
func fmtSscan(line string, args ...any) (int, error) {
	return sscan(line, args...)
}
