// Package experiments regenerates every table and figure of the paper's
// evaluation section (Section 4 and Appendices B–E) on the synthetic
// datasets, printing rows/series in the same shape the paper reports.
// cmd/bnsbench dispatches into this package; bench_test.go wraps each
// experiment in a testing.B benchmark.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/partition"
)

// Options control experiment size so the same code serves quick benchmark
// runs and the full EXPERIMENTS.md regeneration.
type Options struct {
	// Scale multiplies dataset node counts (presets are sized for a 2-core
	// CPU budget at Scale=1).
	Scale int
	// Epochs overrides each experiment's default epoch count when > 0.
	Epochs int
	// Runs is the number of repeated runs for mean±std columns (default 1).
	Runs int
	// Quick truncates every experiment to a few epochs — used by benchmarks
	// to exercise the full code path cheaply.
	Quick bool
	// Seed is the master seed; all randomness derives from it.
	Seed uint64
	// OutPath, when non-empty, asks experiments that produce machine-readable
	// results (currently "overlap") to also write them as JSON to this path.
	OutPath string
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Runs <= 0 {
		o.Runs = 1
	}
	if o.Seed == 0 {
		o.Seed = 20220322 // BNS-GCN arXiv date
	}
	return o
}

func (o Options) epochs(def int) int {
	if o.Quick {
		return 3
	}
	if o.Epochs > 0 {
		return o.Epochs
	}
	return def
}

// Runner is one registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(w io.Writer, o Options) error
}

var registry []Runner

func register(id, title string, run func(w io.Writer, o Options) error) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// Registry returns all experiments in paper order.
func Registry() []Runner {
	out := append([]Runner(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup finds an experiment by id.
func Lookup(id string) (Runner, bool) {
	for _, r := range registry {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// dataSpec couples a dataset generator with the paper's per-dataset model
// hyperparameters (Section 4 "Models"), scaled down in width.
type dataSpec struct {
	key    string
	gen    func(scale int, seed uint64) datagen.Config
	model  core.ModelConfig
	epochs int
	parts  []int // partition counts used in the paper's figures
}

func redditSpec() dataSpec {
	return dataSpec{
		key: "reddit", gen: datagen.RedditSim,
		model:  core.ModelConfig{Arch: core.ArchSAGE, Layers: 4, Hidden: 32, Dropout: 0.2, LR: 0.01, Seed: 1},
		epochs: 120,
		parts:  []int{2, 4, 8},
	}
}

func productsSpec() dataSpec {
	return dataSpec{
		key: "products", gen: datagen.ProductsSim,
		model:  core.ModelConfig{Arch: core.ArchSAGE, Layers: 3, Hidden: 32, Dropout: 0.15, LR: 0.005, Seed: 1},
		epochs: 150,
		parts:  []int{5, 8, 10},
	}
}

func yelpSpec() dataSpec {
	return dataSpec{
		key: "yelp", gen: datagen.YelpSim,
		model:  core.ModelConfig{Arch: core.ArchSAGE, Layers: 4, Hidden: 32, Dropout: 0.1, LR: 0.003, Seed: 1},
		epochs: 120,
		parts:  []int{3, 6, 10},
	}
}

func allSpecs() []dataSpec { return []dataSpec{redditSpec(), productsSpec(), yelpSpec()} }

// Dataset cache: experiments within one process share generated datasets and
// partitions.
var (
	dsMu    sync.Mutex
	dsCache = map[string]*datagen.Dataset{}
	ptCache = map[string][]int32{}
)

func dataset(spec dataSpec, o Options) (*datagen.Dataset, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d", spec.key, o.Scale, o.Seed)
	if ds, ok := dsCache[key]; ok {
		return ds, nil
	}
	ds, err := datagen.Generate(spec.gen(o.Scale, o.Seed))
	if err != nil {
		return nil, err
	}
	dsCache[key] = ds
	return ds, nil
}

// partitionFor returns a cached partition assignment.
func partitionFor(ds *datagen.Dataset, k int, method string, seed uint64) ([]int32, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d/%s/%d", ds.Name, ds.G.N, k, method, seed)
	if p, ok := ptCache[key]; ok {
		return p, nil
	}
	var pt partition.Partitioner
	switch method {
	case "metis":
		pt = &partition.Metis{Seed: seed}
	case "random":
		pt = &partition.Random{Seed: seed}
	default:
		return nil, fmt.Errorf("experiments: unknown partitioner %q", method)
	}
	parts, err := pt.Partition(ds.G, k)
	if err != nil {
		return nil, err
	}
	ptCache[key] = parts
	return parts, nil
}

func topology(ds *datagen.Dataset, k int, method string, seed uint64) (*core.Topology, error) {
	parts, err := partitionFor(ds, k, method, seed)
	if err != nil {
		return nil, err
	}
	return core.BuildTopology(ds.G, parts, k)
}

// bnsResult summarizes one BNS training run.
type bnsResult struct {
	TestScore float64
	Curve     metrics.Curve
	// Aggregates over all epochs.
	AvgStats core.EpochStats
	Epochs   int
	Topo     *core.Topology
	Trainer  *core.ParallelTrainer
}

// trainBNS runs BNS-GCN end to end and returns the result. evalEvery=0
// evaluates only at the end.
func trainBNS(ds *datagen.Dataset, topo *core.Topology, model core.ModelConfig, p float64, epochs, evalEvery int, seed uint64) (*bnsResult, error) {
	model.Seed = seed
	tr, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{Model: model, P: p, SampleSeed: seed + 1})
	if err != nil {
		return nil, err
	}
	res := &bnsResult{Topo: topo, Epochs: epochs, Trainer: tr}
	for e := 1; e <= epochs; e++ {
		st := tr.TrainEpoch()
		addEpochStats(&res.AvgStats, st)
		if evalEvery > 0 && e%evalEvery == 0 {
			res.Curve.Add(e, tr.Evaluate(ds.TestMask))
		}
	}
	avgEpochStats(&res.AvgStats, epochs)
	res.TestScore = tr.Evaluate(ds.TestMask)
	return res, nil
}

// addEpochStats accumulates one epoch's stats into agg, and avgEpochStats
// divides the accumulation by the epoch count — the single aggregation pair
// every experiment uses. Every scalar field of core.EpochStats must be
// handled by BOTH functions (the per-partition SampledBd slice is the one
// deliberate exception — no experiment averages it):
// TestEpochStatsAggregationCoversAllFields sets every field via reflection
// and fails when a newly added field is dropped here (it would read 0) or
// summed but never divided (it would read n× its value), so a new stats
// field cannot silently skew BENCH json the way ExposedCommTime once
// threatened to.
func addEpochStats(agg, st *core.EpochStats) {
	agg.Loss += st.Loss
	agg.SampleTime += st.SampleTime
	agg.ComputeTime += st.ComputeTime
	agg.CommTime += st.CommTime
	agg.ExposedCommTime += st.ExposedCommTime
	agg.ReduceTime += st.ReduceTime
	agg.CommBytes += st.CommBytes
	agg.ReduceBytes += st.ReduceBytes
}

func avgEpochStats(agg *core.EpochStats, epochs int) {
	n := int64(epochs)
	agg.Loss /= float64(n)
	agg.SampleTime /= time.Duration(n)
	agg.ComputeTime /= time.Duration(n)
	agg.CommTime /= time.Duration(n)
	agg.ExposedCommTime /= time.Duration(n)
	agg.ReduceTime /= time.Duration(n)
	agg.CommBytes /= n
	agg.ReduceBytes /= n
}

// newTabWriter returns a standard table writer for experiment output.
func newTabWriter(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func pct(x float64) string { return fmt.Sprintf("%.2f%%", 100*x) }
