package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/datagen"
	"repro/internal/nn"
)

func init() {
	register("fig4", "Throughput vs ROC and CAGNET across partition counts", runFig4)
	register("fig5", "Epoch time breakdown (compute / communicate / reduce)", runFig5)
	register("fig6", "Memory usage reduction vs p=1", runFig6)
	register("table6", "Epoch time breakdown projection for papers100M-sim (192 parts)", runTable6)
	register("table8", "Training efficiency of BNS on METIS vs random partitions", runTable8)
}

// workloadFor derives the cost-model workload for a dataset/topology/model
// combination.
func workloadFor(ds *datagen.Dataset, topo *core.Topology, mc core.ModelConfig) (costmodel.Workload, error) {
	model, err := core.NewModel(mc, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return costmodel.Workload{}, err
	}
	layerIn := model.LayerInputDims()
	layerOut := make([]int, len(model.LayersL))
	for i, l := range model.LayersL {
		layerOut[i] = l.OutputDim()
	}
	return costmodel.FromTopology(topo, layerIn, layerOut, nn.ParamCount(model.Layers())), nil
}

// runFig4 reproduces Figure 4: projected epochs/s of BNS-GCN at several
// sampling rates against ROC- and CAGNET-style baselines, across partition
// counts, on the single-machine profile. A real measured column (this Go
// runtime's wall clock) is included as a sanity check of the same ordering.
func runFig4(w io.Writer, o Options) error {
	o = o.withDefaults()
	prof := costmodel.SingleMachineRTX
	measureEpochs := 3
	if o.Quick {
		measureEpochs = 1
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tmethod\tprojected epochs/s\tmeasured epochs/s (Go)\n")
	for _, spec := range allSpecs() {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		for _, k := range spec.parts {
			topo, err := topology(ds, k, "metis", o.Seed)
			if err != nil {
				return err
			}
			wl, err := workloadFor(ds, topo, spec.model)
			if err != nil {
				return err
			}
			for _, p := range []float64{1.0, 0.1, 0.01} {
				res, err := trainBNS(ds, topo, spec.model, p, measureEpochs, 0, o.Seed)
				if err != nil {
					return err
				}
				proj := costmodel.EstimateBNS(wl, p, prof)
				measured := 1.0 / res.AvgStats.TotalTime().Seconds()
				fmt.Fprintf(tw, "%s\t%d\tBNS-GCN (p=%.2g)\t%.2f\t%.2f\n",
					ds.Name, k, p, proj.Throughput(), measured)
			}
			roc := costmodel.EstimateROC(wl, prof)
			fmt.Fprintf(tw, "%s\t%d\tROC\t%.2f\t-\n", ds.Name, k, roc.Throughput())
			for _, c := range []int{1, 2} {
				cg := costmodel.EstimateCAGNET(wl, c, prof)
				fmt.Fprintf(tw, "%s\t%d\tCAGNET (c=%d)\t%.2f\t-\n", ds.Name, k, c, cg.Throughput())
			}
		}
	}
	return tw.Flush()
}

// runFig5 reproduces Figure 5: the per-epoch time breakdown. Communication
// dominates at p=1 and is sharply cut by sampling.
func runFig5(w io.Writer, o Options) error {
	o = o.withDefaults()
	prof := costmodel.SingleMachineRTX
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tp\tcompute(s)\tcomm(s)\treduce(s)\tcomm share\n")
	for _, spec := range []dataSpec{redditSpec(), productsSpec()} {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		for _, k := range spec.parts {
			topo, err := topology(ds, k, "metis", o.Seed)
			if err != nil {
				return err
			}
			wl, err := workloadFor(ds, topo, spec.model)
			if err != nil {
				return err
			}
			for _, p := range []float64{1.0, 0.1, 0.01} {
				b := costmodel.EstimateBNS(wl, p, prof)
				fmt.Fprintf(tw, "%s\t%d\t%.2g\t%.5f\t%.5f\t%.5f\t%s\n",
					ds.Name, k, p, b.Compute, b.Comm, b.Reduce, pct(b.Comm/b.Total()))
			}
		}
	}
	return tw.Flush()
}

// runFig6 reproduces Figure 6: straggler memory reduction (Eq. 4) against
// unsampled training, per partition count and sampling rate.
func runFig6(w io.Writer, o Options) error {
	o = o.withDefaults()
	// Fixed non-tensor overhead (activations caches, optimizer state) makes
	// the reduction sublinear in p, as the paper observes.
	const overheadFrac = 0.3
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tp=0.5\tp=0.1\tp=0.01\n")
	for _, spec := range []dataSpec{redditSpec(), productsSpec()} {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		for _, k := range spec.parts {
			topo, err := topology(ds, k, "metis", o.Seed)
			if err != nil {
				return err
			}
			wl, err := workloadFor(ds, topo, spec.model)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%d\t%s\t%s\t%s\n", ds.Name, k,
				pct(costmodel.MemoryReduction(wl, 0.5, overheadFrac)),
				pct(costmodel.MemoryReduction(wl, 0.1, overheadFrac)),
				pct(costmodel.MemoryReduction(wl, 0.01, overheadFrac)))
		}
	}
	return tw.Flush()
}

// runTable6 reproduces Table 6: the epoch-time breakdown of the hyper-scale
// run, projected onto the multi-machine profile with counts scaled from the
// generated analogue up to ogbn-papers100M's 111M nodes.
func runTable6(w io.Writer, o Options) error {
	o = o.withDefaults()
	ds, topo, k, err := papersTopo(o)
	if err != nil {
		return err
	}
	mc := core.ModelConfig{Arch: core.ArchSAGE, Layers: 3, Hidden: 128, Dropout: 0.5, LR: 0.01, Seed: 1}
	wl := costmodel.Workload{
		K: k, TotalNodes: ds.G.N,
		LayerIn:  []int{128, 128, 128},
		LayerOut: []int{128, 128, 172},
		Params:   128*2*128 + 128*2*128 + 128*2*172,
	}
	wl2, err := workloadFor(ds, topo, mc)
	if err != nil {
		return err
	}
	wl.MaxInner, wl.MaxBoundary = wl2.MaxInner, wl2.MaxBoundary
	wl.TotalBoundary, wl.MaxLocalEdges = wl2.TotalBoundary, wl2.MaxLocalEdges

	// Scale counts from the analogue to the real graph's 111M nodes.
	scale := 111_000_000.0 / float64(ds.G.N)
	wl.MaxInner = int(float64(wl.MaxInner) * scale)
	wl.MaxBoundary = int(float64(wl.MaxBoundary) * scale)
	wl.TotalBoundary = int64(float64(wl.TotalBoundary) * scale)
	wl.MaxLocalEdges = int64(float64(wl.MaxLocalEdges) * scale * 14.4) // papers100M is denser (avg deg ~29 vs our analogue)
	wl.TotalNodes = 111_000_000

	prof := costmodel.MultiMachineV100
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "method\ttotal(s)\tcomp(s)\tcomm(s)\treduce(s)\n")
	for _, p := range []float64{1.0, 0.1, 0.01} {
		b := costmodel.EstimateBNS(wl, p, prof)
		fmt.Fprintf(tw, "BNS-GCN (p=%.2g)\t%.1f\t%.1f\t%.1f\t%.1f\n",
			p, b.Total(), b.Compute, b.Comm, b.Reduce)
	}
	return tw.Flush()
}

// runTable8 reproduces Table 8: BNS (p=0.1) efficiency gains on top of METIS
// vs random partitions — random has far more boundary nodes, so it gains
// more from sampling.
func runTable8(w io.Writer, o Options) error {
	o = o.withDefaults()
	prof := costmodel.SingleMachineRTX
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tpartitioner\t#boundary\tthroughput gain (p=0.1 vs 1)\tmemory (p=0.1 / p=1)\n")
	for _, spec := range allSpecs() {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		k := spec.parts[len(spec.parts)-1]
		for _, method := range []string{"metis", "random"} {
			topo, err := topology(ds, k, method, o.Seed)
			if err != nil {
				return err
			}
			wl, err := workloadFor(ds, topo, spec.model)
			if err != nil {
				return err
			}
			full := costmodel.EstimateBNS(wl, 1.0, prof)
			sampled := costmodel.EstimateBNS(wl, 0.1, prof)
			memFull := core.MemoryCost(wl.MaxInner, wl.MaxBoundary, wl.LayerIn)
			memSampled := core.MemoryCost(wl.MaxInner, wl.MaxBoundary/10, wl.LayerIn)
			fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%.1fx\t%.2fx\n",
				ds.Name, k, method, topo.CommVolume(),
				sampled.Throughput()/full.Throughput(),
				float64(memSampled)/float64(memFull))
		}
	}
	return tw.Flush()
}
