package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/sampling"
	"repro/internal/stats"
)

func init() {
	register("table4", "Test score: BNS-GCN (p, m sweeps) vs sampling baselines", runTable4)
	register("table5", "Train time and accuracy vs sampling methods (products-sim, 10 parts)", runTable5)
	register("fig7", "Test-score convergence for p in {1, 0.1, 0.01, 0} (products-sim)", runFig7)
	register("fig9", "Convergence on reddit-sim and yelp-sim (appendix B analogue)", runFig9)
	register("table7", "BNS on top of random partition (accuracy delta vs METIS)", runTable7)
	register("table13", "Test score for p between 0.1 and 1", runTable13)
}

// baselineSampler builds one of the paper's Table 4/5 baselines.
func baselineSampler(name string, ds *datagen.Dataset, o Options) (sampling.Sampler, error) {
	batch := 128
	switch name {
	case "GraphSAGE":
		return sampling.NewNeighborSampler(ds.G, ds.TrainMask, batch, 10, 2, o.Seed+11), nil
	case "FastGCN":
		return sampling.NewFastGCNSampler(ds.G, ds.TrainMask, batch, 256, o.Seed+12), nil
	case "LADIES":
		return sampling.NewLADIESSampler(ds.G, ds.TrainMask, batch, 256, 2, o.Seed+13), nil
	case "ClusterGCN":
		parts, err := partitionFor(ds, 16, "metis", o.Seed+14)
		if err != nil {
			return nil, err
		}
		return sampling.NewClusterGCNSampler(ds.G, ds.TrainMask, parts, 16, 2, o.Seed+14)
	case "GraphSAINT":
		return sampling.NewGraphSAINTSampler(ds.G, ds.TrainMask, sampling.SAINTNode, ds.G.N/8, 4, o.Seed+15), nil
	}
	return nil, fmt.Errorf("experiments: unknown baseline %q", name)
}

var table4Baselines = []string{"FastGCN", "GraphSAGE", "LADIES", "ClusterGCN", "GraphSAINT"}

// runBaseline trains one sampling baseline and returns its final test score
// and wall-clock seconds spent training.
func runBaseline(name string, ds *datagen.Dataset, mc core.ModelConfig, epochs int, o Options) (score, seconds float64, err error) {
	s, err := baselineSampler(name, ds, o)
	if err != nil {
		return 0, 0, err
	}
	tr, err := sampling.NewMinibatchTrainer(ds, mc, s)
	if err != nil {
		return 0, 0, err
	}
	for e := 0; e < epochs; e++ {
		tr.TrainEpoch()
	}
	return tr.Evaluate(ds.TestMask), (tr.SampleTime + tr.ComputeTime).Seconds(), nil
}

// runTable4 reproduces Table 4: BNS-GCN across sampling rates and partition
// counts against the sampling baselines. Scores are mean over o.Runs seeds.
func runTable4(w io.Writer, o Options) error {
	o = o.withDefaults()
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tmethod\tm\ttest score\n")
	for _, spec := range allSpecs() {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		epochs := o.epochs(spec.epochs)
		// Baselines: minibatch epochs cost several full-graph epochs; halve.
		bEpochs := epochs / 2
		if bEpochs < 1 {
			bEpochs = 1
		}
		for _, b := range table4Baselines {
			score, _, err := runBaseline(b, ds, spec.model, bEpochs, o)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "%s\t%s\t-\t%s\n", ds.Name, b, pct(score))
		}
		for _, p := range []float64{1.0, 0.1, 0.01, 0.0} {
			for _, k := range []int{spec.parts[0], spec.parts[len(spec.parts)-1]} {
				topo, err := topology(ds, k, "metis", o.Seed)
				if err != nil {
					return err
				}
				var agg stats.MeanStd
				for r := 0; r < o.Runs; r++ {
					res, err := trainBNS(ds, topo, spec.model, p, epochs, 0, o.Seed+uint64(r)*101)
					if err != nil {
						return err
					}
					agg.Add(res.TestScore)
				}
				fmt.Fprintf(tw, "%s\tBNS-GCN (p=%.2g)\t%d\t%s ±%.2f\n",
					ds.Name, p, k, pct(agg.Mean()), 100*agg.Std())
			}
		}
		tw.Flush()
	}
	return nil
}

// runTable5 reproduces Table 5: total train time and accuracy against
// ClusterGCN / NeighborSampling / GraphSAINT on products-sim at 10 parts.
func runTable5(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := productsSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(spec.epochs)
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "method\ttotal train time (s)\ttest score\n")
	for _, b := range []string{"ClusterGCN", "GraphSAGE", "GraphSAINT"} {
		score, secs, err := runBaseline(b, ds, spec.model, epochs/2, o)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%s\n", b, secs, pct(score))
	}
	topo, err := topology(ds, 10, "metis", o.Seed)
	if err != nil {
		return err
	}
	for _, p := range []float64{1.0, 0.1, 0.01} {
		res, err := trainBNS(ds, topo, spec.model, p, epochs, 0, o.Seed)
		if err != nil {
			return err
		}
		total := res.AvgStats.TotalTime().Seconds() * float64(epochs)
		fmt.Fprintf(tw, "BNS-GCN (p=%.2g)\t%.1f\t%s\n", p, total, pct(res.TestScore))
	}
	return tw.Flush()
}

// printCurves renders per-p convergence series as rows of (epoch, score).
func printCurves(w io.Writer, title string, curves map[float64]*bnsResult, order []float64) {
	fmt.Fprintln(w, title)
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "epoch")
	for _, p := range order {
		fmt.Fprintf(tw, "\tp=%.2g", p)
	}
	fmt.Fprintln(tw)
	first := curves[order[0]].Curve
	for i, e := range first.Epochs {
		fmt.Fprintf(tw, "%d", e)
		for _, p := range order {
			fmt.Fprintf(tw, "\t%s", pct(curves[p].Curve.Values[i]))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// runFig7 reproduces Figure 7: convergence of test score on products-sim for
// each partition count; p=0.1/0.01 converge at least as well as p=1, while
// p=0 saturates lowest.
func runFig7(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := productsSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(spec.epochs)
	every := epochs / 10
	if every < 1 {
		every = 1
	}
	order := []float64{1.0, 0.1, 0.01, 0.0}
	for _, k := range []int{spec.parts[0], spec.parts[len(spec.parts)-1]} {
		topo, err := topology(ds, k, "metis", o.Seed)
		if err != nil {
			return err
		}
		curves := map[float64]*bnsResult{}
		for _, p := range order {
			res, err := trainBNS(ds, topo, spec.model, p, epochs, every, o.Seed)
			if err != nil {
				return err
			}
			curves[p] = res
		}
		printCurves(w, fmt.Sprintf("-- %s, %d partitions --", ds.Name, k), curves, order)
	}
	return nil
}

// runFig9 extends the convergence study to reddit-sim and yelp-sim
// (the paper's Appendix B).
func runFig9(w io.Writer, o Options) error {
	o = o.withDefaults()
	order := []float64{1.0, 0.1, 0.01, 0.0}
	for _, spec := range []dataSpec{redditSpec(), yelpSpec()} {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		epochs := o.epochs(spec.epochs)
		every := epochs / 10
		if every < 1 {
			every = 1
		}
		k := spec.parts[len(spec.parts)-1]
		topo, err := topology(ds, k, "metis", o.Seed)
		if err != nil {
			return err
		}
		curves := map[float64]*bnsResult{}
		for _, p := range order {
			res, err := trainBNS(ds, topo, spec.model, p, epochs, every, o.Seed)
			if err != nil {
				return err
			}
			curves[p] = res
		}
		printCurves(w, fmt.Sprintf("-- %s, %d partitions --", ds.Name, k), curves, order)
	}
	return nil
}

// runTable7 reproduces Table 7: BNS on random partitions. p=0.1 stays close
// to METIS, while p=0 collapses (random partitions isolate nodes from almost
// all neighbors).
func runTable7(w io.Writer, o Options) error {
	o = o.withDefaults()
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tp\trandom+BNS\tmetis+BNS\tdelta\n")
	for _, spec := range allSpecs() {
		ds, err := dataset(spec, o)
		if err != nil {
			return err
		}
		epochs := o.epochs(spec.epochs)
		k := spec.parts[len(spec.parts)-1]
		// p=1 is omitted: without sampling the two partitioners see the same
		// full graph, so the paper's Table 7 reports an exact +0.00 there.
		for _, p := range []float64{0.1, 0.0} {
			var scores [2]float64
			for mi, method := range []string{"random", "metis"} {
				topo, err := topology(ds, k, method, o.Seed)
				if err != nil {
					return err
				}
				res, err := trainBNS(ds, topo, spec.model, p, epochs, 0, o.Seed)
				if err != nil {
					return err
				}
				scores[mi] = res.TestScore
			}
			fmt.Fprintf(tw, "%s\t%d\t%.2g\t%s\t%s\t%+.2f\n",
				ds.Name, k, p, pct(scores[0]), pct(scores[1]), 100*(scores[0]-scores[1]))
		}
		tw.Flush()
	}
	return nil
}

// runTable13 reproduces Table 13 (Appendix E): the choice of p — scores for
// p between 0.1 and 1 are statistically indistinguishable, so small p wins
// on efficiency.
func runTable13(w io.Writer, o Options) error {
	o = o.withDefaults()
	configs := []struct {
		spec dataSpec
		k    int
	}{
		{redditSpec(), 2},
		{productsSpec(), 5},
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tm\tp=0.1\tp=0.3\tp=0.5\tp=0.8\tp=1.0\n")
	for _, c := range configs {
		ds, err := dataset(c.spec, o)
		if err != nil {
			return err
		}
		epochs := o.epochs(c.spec.epochs)
		topo, err := topology(ds, c.k, "metis", o.Seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d", ds.Name, c.k)
		for _, p := range []float64{0.1, 0.3, 0.5, 0.8, 1.0} {
			res, err := trainBNS(ds, topo, c.spec.model, p, epochs, 0, o.Seed)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", pct(res.TestScore))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}
