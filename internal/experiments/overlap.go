package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
)

func init() {
	register("overlap", "Pipelined epoch engine: exposed comm time by schedule, plus skewed-link arrival-order drain", runOverlap)
}

// overlapResult is one (transport, schedule) measurement, averaged per
// epoch. Times are milliseconds.
type overlapResult struct {
	Transport  string  `json:"transport"`
	LatencyUS  int     `json:"link_latency_us"`
	Schedule   string  `json:"schedule"`
	Overlap    bool    `json:"overlap"`
	SampleMS   float64 `json:"sample_ms"`
	ComputeMS  float64 `json:"compute_ms"`
	CommMS     float64 `json:"comm_ms"`
	ExposedMS  float64 `json:"exposed_comm_ms"`
	ReduceMS   float64 `json:"reduce_ms"`
	TotalMS    float64 `json:"total_ms"`
	CommBytes  int64   `json:"comm_bytes_per_epoch"`
	FinalLoss  float64 `json:"final_loss"`
	WeightHash string  `json:"weight_hash,omitempty"`
}

// overlapReport is the BENCH_overlap.json shape.
type overlapReport struct {
	Workload  string          `json:"workload"`
	K         int             `json:"k"`
	P         float64         `json:"p"`
	Layers    int             `json:"layers"`
	Hidden    int             `json:"hidden"`
	Epochs    int             `json:"epochs"`
	GoMaxProc int             `json:"gomaxprocs"`
	Results   []overlapResult `json:"results"`
	// ExposedReduction is 1 − exposed(overlap/arrival)/exposed(serialized)
	// per transport — the fraction of exposed communication time the
	// pipelined schedule hides behind inner-node compute.
	ExposedReduction map[string]float64 `json:"exposed_comm_reduction"`

	// Skewed-link section: k ranks over per-link latencies chosen so the
	// lowest-rank peer is always the slowest — the adversarial case for the
	// rank-order drain, whose head-of-line wait the arrival-order drain
	// sidesteps by completing whichever peer lands first.
	SkewedK         int             `json:"skewed_k"`
	SkewedLatencies []string        `json:"skewed_link_latencies"`
	Skewed          []overlapResult `json:"skewed_link_results"`
	// SkewedArrivalVsRank is 1 − exposed(arrival)/exposed(rank) per
	// transport: the share of the rank-order drain's exposed comm the
	// arrival-order drain reclaims under skewed links.
	SkewedArrivalVsRank map[string]float64 `json:"skewed_exposed_reduction_arrival_vs_rank"`
}

// tcpLoopback bootstraps k TCP transports over 127.0.0.1 — the same mesh the
// cross-backend tests use — so the experiment measures real socket traffic.
func tcpLoopback(k int) (*comm.Group, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ts := make([]comm.Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := comm.TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 30 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = comm.DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Don't leak the ranks that did connect (sockets plus their
			// demux/writer goroutines) for the rest of the bnsbench run.
			for _, tp := range ts {
				if tp != nil {
					tp.Close()
				}
			}
			return nil, err
		}
	}
	return comm.NewGroup(ts), nil
}

// measureSchedule trains one (transport, link, schedule) configuration and
// returns the per-epoch averaged measurement row.
func measureSchedule(ds dsHandle, k int, p float64, sched core.Schedule, backend string,
	wrap func(*comm.Group) *comm.Group, latencyUS, epochs, warmup int, seed uint64) (overlapResult, error) {
	cfg := core.ParallelConfig{Model: ds.model, P: p, SampleSeed: seed + 1, Schedule: sched}
	cfg.Model.Seed = seed
	var g *comm.Group
	var err error
	if backend == "chan" {
		g = comm.New(k, 0)
	} else {
		g, err = tcpLoopback(k)
		if err != nil {
			return overlapResult{}, err
		}
	}
	if wrap != nil {
		g = wrap(g)
	}
	tr, err := core.NewParallelTrainerOver(ds.ds, ds.topo, cfg, g)
	if err != nil {
		return overlapResult{}, err
	}
	for i := 0; i < warmup; i++ {
		tr.TrainEpoch()
	}
	var agg core.EpochStats
	var lastLoss float64
	for e := 0; e < epochs; e++ {
		st := tr.TrainEpoch()
		addEpochStats(&agg, st)
		lastLoss = st.Loss
	}
	g.Close()
	avgEpochStats(&agg, epochs)
	res := overlapResult{
		Schedule:  sched.String(),
		Overlap:   sched != core.ScheduleSerialized,
		LatencyUS: latencyUS,
		SampleMS:  ms(agg.SampleTime),
		ComputeMS: ms(agg.ComputeTime),
		CommMS:    ms(agg.CommTime),
		ExposedMS: ms(agg.ExposedCommTime),
		ReduceMS:  ms(agg.ReduceTime),
		CommBytes: agg.CommBytes,
		FinalLoss: lastLoss,
	}
	res.TotalMS = res.SampleMS + res.ComputeMS + res.ExposedMS + res.ReduceMS
	return res, nil
}

// dsHandle bundles what measureSchedule needs about the workload.
type dsHandle struct {
	ds    *datagen.Dataset
	topo  *core.Topology
	model core.ModelConfig
}

// runOverlap trains the bundled synthetic Reddit workload with all three
// epoch schedules — serialized, pipelined with rank-order drain, pipelined
// with arrival-order drain — over both transports, reporting the per-epoch
// time breakdown with comm split into raw vs exposed. All runs are
// bit-identical by construction (the overlap equivalence tests pin this);
// the experiment's point is the wall-clock split: how much of the
// boundary-communication cost the stage schedule hides behind halo-free
// compute, and — in the skewed-link section — how much of the rank-order
// drain's head-of-line blocking the arrival-order drain reclaims when the
// lowest-rank peer is the slowest link.
func runOverlap(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	k := 2
	p := 0.1
	epochs := o.epochs(40)
	warmup := 3
	if o.Quick {
		warmup = 1
	}

	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return err
	}
	h := dsHandle{ds: ds, topo: topo, model: spec.model}

	report := overlapReport{
		Workload: ds.Name, K: k, P: p,
		Layers: spec.model.Layers, Hidden: spec.model.Hidden,
		Epochs: epochs, GoMaxProc: runtime.GOMAXPROCS(0),
		ExposedReduction:    map[string]float64{},
		SkewedArrivalVsRank: map[string]float64{},
	}

	fmt.Fprintf(w, "workload %s: %d nodes, k=%d, p=%.2g, %d layers × %d hidden, %d epochs (+%d warm-up)\n\n",
		ds.Name, ds.G.N, k, p, spec.model.Layers, spec.model.Hidden, epochs, warmup)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transport\tschedule\tsample\tcompute\tcomm(raw)\tcomm(exposed)\treduce\ttotal/epoch")

	// The bare rows measure loopback as-is: on a box with enough cores per
	// rank, their exposed-comm delta is the overlap win. On a box where the
	// co-scheduled ranks serialize on few cores, loopback "comm waits" are
	// really CPU time spent running the peers, which no schedule can
	// reclaim — so the +link rows route the same traffic through
	// comm.WithLatency, modelling a link whose propagation delay sleeps
	// instead of burning cycles. The delay must exceed the CPU-contention
	// floor (the peers' per-phase compute) to be visible at all; 2ms does on
	// this k=2 workload, and the overlapped schedules then hide a large
	// share of it behind halo-free compute.
	const linkLatency = 2 * time.Millisecond
	schedules := []core.Schedule{core.ScheduleSerialized, core.ScheduleOverlapRank, core.ScheduleOverlap}
	type linkCfg struct {
		name    string
		backend string
		latency time.Duration
	}
	links := []linkCfg{
		{"chan", "chan", 0},
		{"tcp", "tcp", 0},
		{"chan+2ms", "chan", linkLatency},
		{"tcp+2ms", "tcp", linkLatency},
	}
	for _, link := range links {
		exposed := map[core.Schedule]float64{}
		for _, sched := range schedules {
			var wrap func(*comm.Group) *comm.Group
			if link.latency > 0 {
				d := link.latency
				wrap = func(g *comm.Group) *comm.Group { return comm.WithLatency(g, d) }
			}
			res, err := measureSchedule(h, k, p, sched, link.backend, wrap,
				int(link.latency/time.Microsecond), epochs, warmup, o.Seed)
			if err != nil {
				return err
			}
			res.Transport = link.name
			exposed[sched] = res.ExposedMS
			report.Results = append(report.Results, res)
			fmt.Fprintf(tw, "%s\t%s\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\n",
				link.name, res.Schedule, res.SampleMS, res.ComputeMS, res.CommMS, res.ExposedMS, res.ReduceMS, res.TotalMS)
		}
		if exposed[core.ScheduleSerialized] > 0 {
			report.ExposedReduction[link.name] = 1 - exposed[core.ScheduleOverlap]/exposed[core.ScheduleSerialized]
		}
	}
	tw.Flush()
	for _, link := range links {
		fmt.Fprintf(w, "\n%s: arrival-order overlap hides %.0f%% of the serialized schedule's exposed comm",
			link.name, 100*report.ExposedReduction[link.name])
	}
	fmt.Fprintln(w)

	// --- Skewed links: the arrival-order drain's reason to exist ---
	//
	// k=4 over a modeled WAN whose per-link latency falls with the source
	// rank: every rank's slowest peer is its lowest-ranked one, which is
	// exactly the peer the rank-order drain insists on completing first.
	// The arrival-order drain consumes the fast peers' payloads (and
	// computes their dependent rows) while the slow link is still in
	// flight, so its exposed comm must come in at or below the rank-order
	// drain's.
	kS := 4
	topoS, err := topology(ds, kS, "metis", o.Seed)
	if err != nil {
		return err
	}
	hS := dsHandle{ds: ds, topo: topoS, model: spec.model}
	skewBase := []time.Duration{4 * time.Millisecond, 2 * time.Millisecond, time.Millisecond, 500 * time.Microsecond}
	model := comm.LinkModel{PerLink: map[comm.Link]time.Duration{}, Jitter: 50 * time.Microsecond, Seed: o.Seed}
	for s := 0; s < kS; s++ {
		for d := 0; d < kS; d++ {
			if s != d {
				model.PerLink[comm.Link{Src: s, Dst: d}] = skewBase[s]
			}
		}
	}
	report.SkewedK = kS
	for s, b := range skewBase {
		report.SkewedLatencies = append(report.SkewedLatencies, fmt.Sprintf("src %d: %s", s, b))
	}
	// The per-epoch arrival-vs-rank gap is the fast peers' dependent-row
	// compute — a millisecond-scale signal against ~30ms of modeled link
	// wait — so the skewed section needs the full epoch budget (and a
	// longer warm-up for the TCP demux/writer goroutines) to average
	// scheduler noise below it on small boxes.
	epochsS := epochs
	warmupS := warmup + 2
	fmt.Fprintf(w, "\nskewed links (k=%d, per-source latency %v..%v, jitter ≤%v): rank-order vs arrival-order drain\n\n",
		kS, skewBase[0], skewBase[kS-1], model.Jitter)
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transport\tschedule\tsample\tcompute\tcomm(raw)\tcomm(exposed)\treduce\ttotal/epoch")
	for _, backend := range []string{"chan", "tcp"} {
		exposed := map[core.Schedule]float64{}
		for _, sched := range schedules {
			m := model
			wrap := func(g *comm.Group) *comm.Group { return comm.WithLinkModel(g, m) }
			res, err := measureSchedule(hS, kS, p, sched, backend, wrap,
				int(skewBase[0]/time.Microsecond), epochsS, warmupS, o.Seed)
			if err != nil {
				return err
			}
			res.Transport = backend + "+skew"
			exposed[sched] = res.ExposedMS
			report.Skewed = append(report.Skewed, res)
			fmt.Fprintf(tw, "%s\t%s\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\n",
				res.Transport, res.Schedule, res.SampleMS, res.ComputeMS, res.CommMS, res.ExposedMS, res.ReduceMS, res.TotalMS)
		}
		if exposed[core.ScheduleOverlapRank] > 0 {
			report.SkewedArrivalVsRank[backend] = 1 - exposed[core.ScheduleOverlap]/exposed[core.ScheduleOverlapRank]
		}
	}
	tw.Flush()
	for _, backend := range []string{"chan", "tcp"} {
		fmt.Fprintf(w, "\n%s+skew: arrival-order drain reclaims %.0f%% of the rank-order drain's exposed comm",
			backend, 100*report.SkewedArrivalVsRank[backend])
	}
	fmt.Fprintln(w)

	if o.OutPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.OutPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.OutPath)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
