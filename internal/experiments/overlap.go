package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

func init() {
	register("overlap", "Pipelined epoch engine: exposed comm time, serialized vs overlapped", runOverlap)
}

// overlapResult is one (transport, schedule) measurement, averaged per
// epoch. Times are milliseconds.
type overlapResult struct {
	Transport  string  `json:"transport"`
	LatencyUS  int     `json:"link_latency_us"`
	Overlap    bool    `json:"overlap"`
	SampleMS   float64 `json:"sample_ms"`
	ComputeMS  float64 `json:"compute_ms"`
	CommMS     float64 `json:"comm_ms"`
	ExposedMS  float64 `json:"exposed_comm_ms"`
	ReduceMS   float64 `json:"reduce_ms"`
	TotalMS    float64 `json:"total_ms"`
	CommBytes  int64   `json:"comm_bytes_per_epoch"`
	FinalLoss  float64 `json:"final_loss"`
	WeightHash string  `json:"weight_hash,omitempty"`
}

// overlapReport is the BENCH_overlap.json shape.
type overlapReport struct {
	Workload  string          `json:"workload"`
	K         int             `json:"k"`
	P         float64         `json:"p"`
	Layers    int             `json:"layers"`
	Hidden    int             `json:"hidden"`
	Epochs    int             `json:"epochs"`
	GoMaxProc int             `json:"gomaxprocs"`
	Results   []overlapResult `json:"results"`
	// ExposedReduction is 1 − exposed(overlap)/exposed(serialized) per
	// transport — the fraction of exposed communication time the pipelined
	// schedule hides behind inner-node compute.
	ExposedReduction map[string]float64 `json:"exposed_comm_reduction"`
}

// tcpLoopback bootstraps k TCP transports over 127.0.0.1 — the same mesh the
// cross-backend tests use — so the experiment measures real socket traffic.
func tcpLoopback(k int) (*comm.Group, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ts := make([]comm.Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := comm.TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 30 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = comm.DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// Don't leak the ranks that did connect (sockets plus their
			// demux/writer goroutines) for the rest of the bnsbench run.
			for _, tp := range ts {
				if tp != nil {
					tp.Close()
				}
			}
			return nil, err
		}
	}
	return comm.NewGroup(ts), nil
}

// runOverlap trains the bundled synthetic Reddit workload with the
// serialized and the pipelined schedule over both transports, reporting the
// per-epoch time breakdown with comm split into raw vs exposed. The four
// runs are bit-identical by construction (the overlap equivalence tests pin
// this); the experiment's point is the wall-clock split: how much of the
// boundary-communication cost the stage schedule hides behind halo-free
// compute.
func runOverlap(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	k := 2
	p := 0.1
	epochs := o.epochs(40)
	warmup := 3
	if o.Quick {
		warmup = 1
	}

	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return err
	}

	report := overlapReport{
		Workload: ds.Name, K: k, P: p,
		Layers: spec.model.Layers, Hidden: spec.model.Hidden,
		Epochs: epochs, GoMaxProc: runtime.GOMAXPROCS(0),
		ExposedReduction: map[string]float64{},
	}

	fmt.Fprintf(w, "workload %s: %d nodes, k=%d, p=%.2g, %d layers × %d hidden, %d epochs (+%d warm-up)\n\n",
		ds.Name, ds.G.N, k, p, spec.model.Layers, spec.model.Hidden, epochs, warmup)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transport\tschedule\tsample\tcompute\tcomm(raw)\tcomm(exposed)\treduce\ttotal/epoch")

	// The bare rows measure loopback as-is: on a box with enough cores per
	// rank, their exposed-comm delta is the overlap win. On a box where the
	// co-scheduled ranks serialize on few cores, loopback "comm waits" are
	// really CPU time spent running the peers, which no schedule can
	// reclaim — so the +link rows route the same traffic through
	// comm.WithLatency, modelling a link whose propagation delay sleeps
	// instead of burning cycles. The delay must exceed the CPU-contention
	// floor (the peers' per-phase compute) to be visible at all; 2ms does on
	// this k=2 workload, and the overlapped schedule then hides a large
	// share of it behind halo-free compute.
	const linkLatency = 2 * time.Millisecond
	type linkCfg struct {
		name    string
		backend string
		latency time.Duration
	}
	links := []linkCfg{
		{"chan", "chan", 0},
		{"tcp", "tcp", 0},
		{"chan+2ms", "chan", linkLatency},
		{"tcp+2ms", "tcp", linkLatency},
	}
	for _, link := range links {
		transport := link.name
		exposed := map[bool]float64{}
		for _, overlap := range []bool{false, true} {
			cfg := core.ParallelConfig{Model: spec.model, P: p, SampleSeed: o.Seed + 1, Overlap: overlap}
			cfg.Model.Seed = o.Seed
			var tr *core.ParallelTrainer
			var g *comm.Group
			if link.backend == "chan" {
				g = comm.New(k, 0)
			} else {
				g, err = tcpLoopback(k)
				if err != nil {
					return err
				}
			}
			if link.latency > 0 {
				g = comm.WithLatency(g, link.latency)
			}
			tr, err = core.NewParallelTrainerOver(ds, topo, cfg, g)
			if err != nil {
				return err
			}
			for i := 0; i < warmup; i++ {
				tr.TrainEpoch()
			}
			var agg core.EpochStats
			var lastLoss float64
			for e := 0; e < epochs; e++ {
				st := tr.TrainEpoch()
				agg.SampleTime += st.SampleTime
				agg.ComputeTime += st.ComputeTime
				agg.CommTime += st.CommTime
				agg.ExposedCommTime += st.ExposedCommTime
				agg.ReduceTime += st.ReduceTime
				agg.CommBytes += st.CommBytes
				lastLoss = st.Loss
			}
			g.Close()
			n := time.Duration(epochs)
			res := overlapResult{
				Transport: transport, Overlap: overlap,
				LatencyUS: int(link.latency / time.Microsecond),
				SampleMS:  ms(agg.SampleTime / n),
				ComputeMS: ms(agg.ComputeTime / n),
				CommMS:    ms(agg.CommTime / n),
				ExposedMS: ms(agg.ExposedCommTime / n),
				ReduceMS:  ms(agg.ReduceTime / n),
				CommBytes: agg.CommBytes / int64(epochs),
				FinalLoss: lastLoss,
			}
			res.TotalMS = res.SampleMS + res.ComputeMS + res.ExposedMS + res.ReduceMS
			exposed[overlap] = res.ExposedMS
			report.Results = append(report.Results, res)
			sched := "serialized"
			if overlap {
				sched = "overlapped"
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\n",
				transport, sched, res.SampleMS, res.ComputeMS, res.CommMS, res.ExposedMS, res.ReduceMS, res.TotalMS)
		}
		if exposed[false] > 0 {
			report.ExposedReduction[transport] = 1 - exposed[true]/exposed[false]
		}
	}
	tw.Flush()
	for _, link := range links {
		fmt.Fprintf(w, "\n%s: overlapped schedule hides %.0f%% of exposed comm time",
			link.name, 100*report.ExposedReduction[link.name])
	}
	fmt.Fprintln(w)

	if o.OutPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.OutPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.OutPath)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
