package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
)

func init() {
	register("ablation1", "Estimator ablation: self-normalized vs raw 1/p (Horvitz-Thompson)", runAblation1)
}

// runAblation1 is an extension beyond the paper: it quantifies why this
// reproduction normalizes sampled aggregations by the effective degree
// (DESIGN.md §6). On the paper's dense datasets the two estimators behave
// alike; on CPU-sized sparse graphs the raw 1/p form destabilizes low-p
// training while the self-normalized form tracks p=1.
func runAblation1(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := productsSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(spec.epochs)
	topo, err := topology(ds, 5, "metis", o.Seed)
	if err != nil {
		return err
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "p\tself-normalized\traw 1/p (HT)\n")
	for _, p := range []float64{1.0, 0.3, 0.1} {
		var scores [2]float64
		for i, est := range []core.Estimator{core.EstimatorSelfNorm, core.EstimatorHT} {
			mc := spec.model
			mc.Seed = o.Seed
			tr, err := core.NewParallelTrainer(ds, topo, core.ParallelConfig{
				Model: mc, P: p, SampleSeed: o.Seed + 1, Estimator: est,
			})
			if err != nil {
				return err
			}
			for e := 0; e < epochs; e++ {
				tr.TrainEpoch()
			}
			scores[i] = tr.Evaluate(ds.TestMask)
		}
		fmt.Fprintf(tw, "%.2g\t%s\t%s\n", p, pct(scores[0]), pct(scores[1]))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "at p=1 the estimators coincide exactly; the gap at small p is the variance cost of raw 1/p rescaling")
	return nil
}
