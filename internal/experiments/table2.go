package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/tensor"
)

func init() {
	register("table2", "Feature approximation variance: BNS vs layer-sampling schemes", runTable2)
}

// runTable2 reproduces Table 2 empirically. The paper's analytic argument is
// that with a fixed sample budget the variance scales with the size of the
// sampling domain, and BNS's domain (the boundary set B_i) is the smallest:
// B_i ⊆ N_i ⊆ V. We measure E‖Z̃−Z‖²/|V| for three estimators sharing one
// budget: BNS (sample B_i), a LADIES-style sampler (sample the full neighbor
// set N_i) and a FastGCN-style sampler (sample all of V).
func runTable2(w io.Writer, o Options) error {
	o = o.withDefaults()
	ds, err := dataset(redditSpec(), o)
	if err != nil {
		return err
	}
	const k = 8
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return err
	}
	trials := 40
	if o.Quick {
		trials = 4
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "p\tBNS variance\tLADIES-style\tFastGCN-style\tBNS analytic bound\n")
	for _, p := range []float64{0.1, 0.3, 0.5} {
		bns := core.MeasureBNSVariance(topo, ds.Features, p, trials, o.Seed)
		ladies := measureDomainVariance(topo, ds.Features, p, trials, o.Seed+1, false)
		fastgcn := measureDomainVariance(topo, ds.Features, p, trials, o.Seed+2, true)
		fmt.Fprintf(tw, "%.2f\t%.4g\t%.4g\t%.4g\t%.4g\n", p, bns.Variance, ladies, fastgcn, bns.Bound)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "expected ordering (paper Table 2): BNS < LADIES-style < FastGCN-style")
	return nil
}

// measureDomainVariance estimates E‖Z̃−Z‖²/|V| for a layer sampler whose
// domain is either the partition's full neighbor set N_i (LADIES-style,
// global=false) or the entire node set V (FastGCN-style, global=true).
// Following the paper's fixed-sample-size protocol (s_ℓ = s_n), every scheme
// draws the same expected number of sampled nodes per partition as BNS at
// rate p, namely s = p·|B_i| — but LADIES/FastGCN must spend that budget on
// their whole domain (they treat all neighbors as remote), keeping each
// element with q = s/|domain| and reweighting by 1/q, which is exactly why
// their variance scales with |N_i| and |V| in Table 2.
func measureDomainVariance(t *core.Topology, feats *tensor.Matrix, p float64, trials int, seed uint64, global bool) float64 {
	rng := tensor.NewRNG(seed)
	g := t.G
	var sumSq float64
	keep := make([]bool, g.N)
	for trial := 0; trial < trials; trial++ {
		for i := 0; i < t.K; i++ {
			// Domain and budget for partition i.
			inDomain := make(map[int32]bool)
			for _, v := range t.Inner[i] {
				for _, u := range g.Neighbors(v) {
					inDomain[u] = true
				}
			}
			budget := p * float64(len(t.Boundary[i]))
			domainSize := float64(len(inDomain))
			if global {
				domainSize = float64(g.N)
			}
			q := budget / domainSize
			if q > 1 {
				q = 1
			}
			// Draw the keep mask over the domain.
			for j := range keep {
				keep[j] = false
			}
			if global {
				for u := 0; u < g.N; u++ {
					if rng.Float64() < q {
						keep[u] = true
					}
				}
			} else {
				for u := range inDomain {
					if rng.Float64() < q {
						keep[u] = true
					}
				}
			}
			invQ := float32(1 / q)
			// Accumulate ‖Z̃−Z‖² over partition i's inner nodes.
			for _, v := range t.Inner[i] {
				nbrs := g.Neighbors(v)
				if len(nbrs) == 0 {
					continue
				}
				inv := 1 / float32(len(nbrs))
				for c := 0; c < feats.Cols; c++ {
					var exact, est float32
					for _, u := range nbrs {
						x := feats.At(int(u), c)
						exact += x
						if keep[u] {
							est += x * invQ
						}
					}
					d := float64((est - exact) * inv)
					sumSq += d * d
				}
			}
		}
	}
	return sumSq / float64(trials) / float64(g.N)
}
