package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/sampling"
)

func init() {
	register("samplers", "Epoch-sampling strategies on the partition-parallel engine: BNS vs partition-local LADIES vs GraphSAINT-style subgraphs", runSamplers)
}

// samplerResult is one (strategy, arch, k) cell of the matrix, averaged per
// epoch. FinalLoss is the accuracy proxy the strategies are compared on:
// every cell starts from identical weights and trains the same number of
// epochs, so a higher loss means the estimator's gradient noise (or its
// dropped computation) cost convergence. One caveat: saint's loss reads
// ≈frac× the other strategies' — its dropped train rows leave the numerator
// but the denominator stays the global train count (the strategy's
// fixed-expected-fraction estimator) — so compare saint cells across k and
// arch, not level against bns/ladies.
type samplerResult struct {
	Sampler   string  `json:"sampler"`
	Arch      string  `json:"arch"`
	K         int     `json:"k"`
	SampleMS  float64 `json:"sample_ms"`
	ComputeMS float64 `json:"compute_ms"`
	ExposedMS float64 `json:"exposed_comm_ms"`
	ReduceMS  float64 `json:"reduce_ms"`
	TotalMS   float64 `json:"total_ms"`
	CommBytes int64   `json:"comm_bytes_per_epoch"`
	AvgLoss   float64 `json:"avg_loss"`
	FinalLoss float64 `json:"final_loss"`
}

// samplersReport is the BENCH_samplers.json shape.
type samplersReport struct {
	Workload  string          `json:"workload"`
	P         float64         `json:"bns_p"`
	Budget    int             `json:"ladies_budget"`
	Frac      float64         `json:"saint_frac"`
	Layers    int             `json:"layers"`
	Hidden    int             `json:"hidden"`
	Epochs    int             `json:"epochs"`
	GoMaxProc int             `json:"gomaxprocs"`
	Results   []samplerResult `json:"results"`
	// CommReduction is 1 − bytes(strategy)/bytes(bns) per (arch, k) for the
	// strategies that modulate the halo differently from BNS.
	CommReduction map[string]float64 `json:"comm_reduction_vs_bns"`
}

// runSamplers trains the bundled synthetic Reddit workload with each epoch
// sampling strategy — the paper's boundary-node sampling, partition-local
// LADIES-style layer-wise importance sampling, and GraphSAINT-style subgraph
// sampling — over both architectures and k ∈ {2, 4}, all hosted on the same
// pipelined engine (arrival-order drain, channel transport). Reported per
// cell: the epoch time split, halo traffic, and the loss reached from a
// shared initialization — the three axes a strategy trades between.
func runSamplers(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	const (
		p      = 0.1
		budget = 256
		frac   = 0.5
	)
	epochs := o.epochs(40)
	warmup := 2
	if o.Quick {
		warmup = 1
	}

	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}

	report := samplersReport{
		Workload: ds.Name, P: p, Budget: budget, Frac: frac,
		Layers: spec.model.Layers, Hidden: spec.model.Hidden,
		Epochs: epochs, GoMaxProc: runtime.GOMAXPROCS(0),
		CommReduction: map[string]float64{},
	}

	strategies := []struct {
		name    string
		factory core.StrategyFactory
	}{
		{"bns", nil}, // engine default: boundary-node sampling at rate p
		{"ladies", sampling.NewLADIESFactory(budget, o.Seed+1)},
		{"saint", sampling.NewSAINTFactory(frac, o.Seed+1)},
	}

	fmt.Fprintf(w, "workload %s: %d nodes, %d layers × %d hidden, %d epochs (+%d warm-up)\n",
		ds.Name, ds.G.N, spec.model.Layers, spec.model.Hidden, epochs, warmup)
	fmt.Fprintf(w, "bns p=%.2g, ladies budget=%d slots/rank, saint frac=%.2g\n\n", p, budget, frac)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "arch\tk\tsampler\tsample\tcompute\tcomm(exposed)\treduce\ttotal/epoch\tcomm bytes\tfinal loss")

	for _, arch := range []core.Arch{core.ArchSAGE, core.ArchGAT} {
		for _, k := range []int{2, 4} {
			topo, err := topology(ds, k, "metis", o.Seed)
			if err != nil {
				return err
			}
			bnsBytes := int64(0)
			for _, st := range strategies {
				mc := spec.model
				mc.Arch = arch
				mc.Seed = o.Seed
				cfg := core.ParallelConfig{
					Model: mc, P: p, SampleSeed: o.Seed + 1,
					Schedule: core.ScheduleOverlap, Strategy: st.factory,
				}
				tr, err := core.NewParallelTrainer(ds, topo, cfg)
				if err != nil {
					return err
				}
				for i := 0; i < warmup; i++ {
					tr.TrainEpoch()
				}
				var agg core.EpochStats
				var lastLoss float64
				for e := 0; e < epochs; e++ {
					est := tr.TrainEpoch()
					addEpochStats(&agg, est)
					lastLoss = est.Loss
				}
				avgEpochStats(&agg, epochs)
				res := samplerResult{
					Sampler: st.name, Arch: string(arch), K: k,
					SampleMS:  ms(agg.SampleTime),
					ComputeMS: ms(agg.ComputeTime),
					ExposedMS: ms(agg.ExposedCommTime),
					ReduceMS:  ms(agg.ReduceTime),
					CommBytes: agg.CommBytes,
					AvgLoss:   agg.Loss,
					FinalLoss: lastLoss,
				}
				res.TotalMS = res.SampleMS + res.ComputeMS + res.ExposedMS + res.ReduceMS
				report.Results = append(report.Results, res)
				if st.name == "bns" {
					bnsBytes = res.CommBytes
				} else if bnsBytes > 0 {
					key := fmt.Sprintf("%s/%s/k=%d", st.name, arch, k)
					report.CommReduction[key] = 1 - float64(res.CommBytes)/float64(bnsBytes)
				}
				fmt.Fprintf(tw, "%s\t%d\t%s\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%.2fms\t%d\t%.4f\n",
					arch, k, st.name, res.SampleMS, res.ComputeMS, res.ExposedMS, res.ReduceMS, res.TotalMS, res.CommBytes, res.FinalLoss)
			}
		}
	}
	tw.Flush()
	fmt.Fprintln(w)
	for _, res := range report.Results {
		if res.Sampler == "bns" {
			continue
		}
		key := fmt.Sprintf("%s/%s/k=%d", res.Sampler, res.Arch, res.K)
		fmt.Fprintf(w, "%s: %+.0f%% halo traffic vs bns\n", key, -100*report.CommReduction[key])
	}

	if o.OutPath != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.OutPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.OutPath)
	}
	return nil
}
