package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/stats"
)

func init() {
	register("table1", "Boundary vs inner nodes per partition (Reddit-sim, METIS, 10 parts)", runTable1)
	register("table3", "Dataset details (analogue of paper Table 3)", runTable3)
	register("fig3", "Distribution of boundary/inner ratios (papers100M-sim, 192 parts)", runFig3)
	register("fig8", "Normalized per-partition memory under BNS (papers100M-sim, 192 parts)", runFig8)
}

// runTable1 reproduces Table 1: the per-partition inner/boundary counts of a
// METIS 10-way partition, whose boundary sets dwarf the inner sets.
func runTable1(w io.Writer, o Options) error {
	o = o.withDefaults()
	ds, err := dataset(redditSpec(), o)
	if err != nil {
		return err
	}
	const k = 10
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return err
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "Partition\t# Inner\t# Boundary\tRatio\n")
	for i := 0; i < k; i++ {
		nin, nbd := len(topo.Inner[i]), len(topo.Boundary[i])
		fmt.Fprintf(tw, "%d\t%d\t%d\t%.2f\n", i+1, nin, nbd, float64(nbd)/float64(nin))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "total communication volume (Eq. 3): %d boundary nodes\n", topo.CommVolume())
	return nil
}

// runTable3 prints the generated datasets' shapes alongside the paper's.
func runTable3(w io.Writer, o Options) error {
	o = o.withDefaults()
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "Dataset\t#Nodes\t#Edges\tAvgDeg\t#Feat\t#Classes\tMultiLabel\tTrain/Val/Test\n")
	specs := allSpecs()
	cfgs := []datagen.Config{}
	for _, s := range specs {
		cfgs = append(cfgs, s.gen(o.Scale, o.Seed))
	}
	cfgs = append(cfgs, datagen.Papers100MSim(o.Scale, o.Seed))
	for _, cfg := range cfgs {
		ds, err := datagen.Generate(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.1f\t%d\t%d\t%v\t%.2f/%.2f/%.2f\n",
			ds.Name, ds.G.N, ds.G.NumEdges(), ds.G.AvgDegree(), cfg.FeatureDim,
			ds.NumClasses, ds.MultiLabel, cfg.TrainFrac, cfg.ValFrac, 1-cfg.TrainFrac-cfg.ValFrac)
	}
	return tw.Flush()
}

// papersTopo builds the papers100M-analogue topology (192 parts in full
// mode, 24 in quick mode to keep benchmarks fast).
func papersTopo(o Options) (*datagen.Dataset, *core.Topology, int, error) {
	ds, err := datasetByCfg(datagen.Papers100MSim(o.Scale, o.Seed))
	if err != nil {
		return nil, nil, 0, err
	}
	k := 192
	if o.Quick {
		k = 24
	}
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return nil, nil, 0, err
	}
	return ds, topo, k, nil
}

func datasetByCfg(cfg datagen.Config) (*datagen.Dataset, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	key := fmt.Sprintf("%s/%d/%d", cfg.Name, cfg.Nodes, cfg.Seed)
	if ds, ok := dsCache[key]; ok {
		return ds, nil
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return nil, err
	}
	dsCache[key] = ds
	return ds, nil
}

// runFig3 reproduces Figure 3: the skewed distribution of boundary-to-inner
// ratios at 192 partitions, with a long straggler tail.
func runFig3(w io.Writer, o Options) error {
	o = o.withDefaults()
	_, topo, k, err := papersTopo(o)
	if err != nil {
		return err
	}
	ratios := topo.BoundaryRatios()
	box := stats.BoxStats(ratios)
	fmt.Fprintf(w, "boundary/inner ratios across %d partitions:\n", k)
	fmt.Fprintf(w, "min=%.2f q1=%.2f median=%.2f q3=%.2f max(straggler)=%.2f\n",
		box.Min, box.Q1, box.Median, box.Q3, box.Max)
	h := stats.NewHistogram(ratios, 0, box.Max*1.01, 12)
	fmt.Fprint(w, h.Render(40))
	return nil
}

// runFig8 reproduces Figure 8: per-partition memory (Eq. 4), normalized by
// the straggler, for p ∈ {1, 0.1, 0.01}: sampling restores balance.
func runFig8(w io.Writer, o Options) error {
	o = o.withDefaults()
	_, topo, k, err := papersTopo(o)
	if err != nil {
		return err
	}
	dims := []int{128, 128, 128} // paper: 3-layer, 128-hidden model
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "p\tmin\tq1\tmedian\tq3\tmax\n")
	for _, p := range []float64{1.0, 0.1, 0.01} {
		mems := topo.MemoryCosts(dims, p)
		var mx float64
		vals := make([]float64, k)
		for i, m := range mems {
			vals[i] = float64(m)
			if vals[i] > mx {
				mx = vals[i]
			}
		}
		for i := range vals {
			vals[i] /= mx
		}
		b := stats.BoxStats(vals)
		fmt.Fprintf(tw, "%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n", p, b.Min, b.Q1, b.Median, b.Q3, b.Max)
	}
	return tw.Flush()
}
