package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/sampling"
)

func init() {
	register("table9", "BNS vs DropEdge vs Boundary Edge Sampling (equal edge budget)", runTable9)
	register("table10", "Epoch time speedup of BNS on GAT", runTable10)
	register("table11", "Per-epoch train time vs sampling methods (reddit-sim, 8 parts)", runTable11)
	register("table12", "Sampling overhead of BNS vs GraphSAINT samplers", runTable12)
}

// runTable9 reproduces Table 9: with the same number of dropped edges,
// edge-sampling methods leave most boundary nodes alive and therefore keep
// most of the communication, while BNS removes it at the source.
func runTable9(w io.Writer, o Options) error {
	o = o.withDefaults()
	const p = 0.1 // BNS rate that sets the shared edge budget
	configs := []struct {
		spec dataSpec
		k    int
	}{
		{redditSpec(), 2},
		{productsSpec(), 5},
		{yelpSpec(), 3},
	}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "dataset\tmethod\tepoch comm (MB)\tepoch time (s)\ttest score\n")
	for _, c := range configs {
		ds, err := dataset(c.spec, o)
		if err != nil {
			return err
		}
		epochs := o.epochs(c.spec.epochs * 2 / 3)
		topo, err := topology(ds, c.k, "metis", o.Seed)
		if err != nil {
			return err
		}
		// Shared edge budget: how many undirected edges BNS(p) drops.
		bnsDrop := sampling.BNSDroppedEdges(topo, p)
		var cross int64
		for v := int32(0); v < int32(ds.G.N); v++ {
			for _, u := range ds.G.Neighbors(v) {
				if u > v && topo.Parts[u] != topo.Parts[v] {
					cross++
				}
			}
		}
		dimsSum := modelDimsSum(c.spec.model, ds.FeatureDim(), ds.NumClasses)

		// DropEdge: drop bnsDrop edges anywhere.
		keepGlobal := 1 - float64(bnsDrop)/float64(ds.G.NumEdges())
		// BES: drop bnsDrop edges among cross edges only.
		keepCross := 1 - float64(bnsDrop)/float64(cross)
		if keepCross < 0 {
			keepCross = 0
		}
		for _, m := range []struct {
			mode sampling.EdgeDropMode
			keep float64
		}{{sampling.DropEdgeGlobal, keepGlobal}, {sampling.DropEdgeBoundary, keepCross}} {
			tr, err := sampling.NewEdgeDropTrainer(ds, topo, c.spec.model, m.mode, m.keep, o.Seed)
			if err != nil {
				return err
			}
			start := time.Now()
			for e := 0; e < epochs; e++ {
				tr.TrainEpoch()
			}
			epochTime := time.Since(start).Seconds() / float64(epochs)
			commMB := float64(tr.LastCommVolume) * float64(dimsSum) * 4 / 1e6
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%.3f\t%s\n",
				ds.Name, m.mode, commMB, epochTime, pct(tr.Evaluate(ds.TestMask)))
		}
		res, err := trainBNS(ds, topo, c.spec.model, p, epochs, 0, o.Seed)
		if err != nil {
			return err
		}
		commMB := float64(res.AvgStats.CommBytes) / 1e6
		fmt.Fprintf(tw, "%s\tBNS-GCN\t%.1f\t%.3f\t%s\n",
			ds.Name, commMB, res.AvgStats.TotalTime().Seconds(), pct(res.TestScore))
	}
	return tw.Flush()
}

// modelDimsSum returns Σ_ℓ d_ℓ over layer input dims plus backward dims,
// the per-boundary-node float traffic of one epoch.
func modelDimsSum(mc core.ModelConfig, inDim, outDim int) int {
	sum := 0
	for l := 0; l < mc.Layers; l++ {
		d := mc.Hidden
		if l == 0 {
			d = inDim
		}
		sum += d // forward
		if l >= 1 {
			sum += d // backward
		}
	}
	return sum
}

// runTable10 reproduces Table 10: BNS speedups hold on GAT, a heavier model
// than GraphSAGE. Speedups are measured on this runtime's wall clock.
func runTable10(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(10)
	if !o.Quick && epochs > 20 {
		epochs = 20
	}
	const k = 8
	topo, err := topology(ds, k, "metis", o.Seed)
	if err != nil {
		return err
	}
	mc := core.ModelConfig{Arch: core.ArchGAT, Layers: 2, Hidden: 16, Dropout: 0, LR: 0.01, Seed: 1}
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "p\tepoch time (s)\tspeedup\n")
	var baseline float64
	for _, p := range []float64{1.0, 0.1, 0.01, 0.0} {
		res, err := trainBNS(ds, topo, mc, p, epochs, 0, o.Seed)
		if err != nil {
			return err
		}
		t := res.AvgStats.TotalTime().Seconds()
		if p == 1.0 {
			baseline = t
		}
		fmt.Fprintf(tw, "%.2g\t%.4f\t%.2fx\n", p, t, baseline/t)
	}
	return tw.Flush()
}

// runTable11 reproduces Table 11 (Appendix C): measured per-epoch train time
// of the sampling baselines against BNS-GCN on reddit-sim with 8 partitions.
func runTable11(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(8)
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "method\ttrain time per epoch (s)\tspeedup vs GraphSAGE\n")
	var sageTime float64
	for _, b := range []string{"GraphSAGE", "FastGCN", "ClusterGCN"} {
		s, err := baselineSampler(b, ds, o)
		if err != nil {
			return err
		}
		tr, err := sampling.NewMinibatchTrainer(ds, spec.model, s)
		if err != nil {
			return err
		}
		start := time.Now()
		for e := 0; e < epochs; e++ {
			tr.TrainEpoch()
		}
		per := time.Since(start).Seconds() / float64(epochs)
		if b == "GraphSAGE" {
			sageTime = per
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.1fx\n", b, per, sageTime/per)
	}
	topo, err := topology(ds, 8, "metis", o.Seed)
	if err != nil {
		return err
	}
	for _, p := range []float64{1.0, 0.1, 0.01} {
		res, err := trainBNS(ds, topo, spec.model, p, epochs, 0, o.Seed)
		if err != nil {
			return err
		}
		per := res.AvgStats.TotalTime().Seconds()
		fmt.Fprintf(tw, "BNS-GCN (%.2g)\t%.3f\t%.1fx\n", p, per, sageTime/per)
	}
	return tw.Flush()
}

// runTable12 reproduces Table 12 (Appendix D): boundary node sampling costs
// a few percent of epoch time, against ~20% for whole-graph samplers.
func runTable12(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	epochs := o.epochs(8)
	tw := newTabWriter(w)
	fmt.Fprintf(tw, "sampler\toverhead (sample time / epoch time)\n")
	for _, mode := range []sampling.SAINTMode{sampling.SAINTNode, sampling.SAINTEdge, sampling.SAINTWalk} {
		s := sampling.NewGraphSAINTSampler(ds.G, ds.TrainMask, mode, ds.G.N/8, 4, o.Seed)
		tr, err := sampling.NewMinibatchTrainer(ds, spec.model, s)
		if err != nil {
			return err
		}
		for e := 0; e < epochs; e++ {
			tr.TrainEpoch()
		}
		fmt.Fprintf(tw, "%s\t%s\n", s.Name(), pct(tr.OverheadFraction()))
	}
	for _, k := range []int{2, 4, 8} {
		topo, err := topology(ds, k, "metis", o.Seed)
		if err != nil {
			return err
		}
		for _, p := range []float64{0.1, 0.01} {
			res, err := trainBNS(ds, topo, spec.model, p, epochs, 0, o.Seed)
			if err != nil {
				return err
			}
			frac := float64(res.AvgStats.SampleTime) / float64(res.AvgStats.TotalTime())
			fmt.Fprintf(tw, "BNS (m=%d, p=%.2g)\t%s\n", k, p, pct(frac))
		}
	}
	return tw.Flush()
}
