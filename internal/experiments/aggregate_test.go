package experiments

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// TestEpochStatsAggregationCoversAllFields is the guard the ExposedCommTime
// episode motivated: every scalar field of core.EpochStats must be both
// summed by addEpochStats and divided by avgEpochStats. The test sets every
// numeric field to a sentinel via reflection, pushes n copies through the
// shared aggregation pair, and checks each field came back at exactly the
// sentinel — a field a future PR adds but forgets in addEpochStats reads 0,
// one summed but missed in avgEpochStats reads n×sentinel, and either way
// the test names the field instead of letting BENCH json skew silently.
func TestEpochStatsAggregationCoversAllFields(t *testing.T) {
	const n = 4
	const sentinel = 4096 // divisible by n: duration division must be exact

	var in core.EpochStats
	iv := reflect.ValueOf(&in).Elem()
	typ := iv.Type()
	numeric := 0
	for i := 0; i < iv.NumField(); i++ {
		f := iv.Field(i)
		switch f.Kind() {
		case reflect.Int64: // time.Duration and byte counters
			f.SetInt(sentinel)
			numeric++
		case reflect.Float64:
			f.SetFloat(sentinel)
			numeric++
		case reflect.Slice:
			// SampledBd: per-partition counts, deliberately not averaged by
			// the shared helpers (experiments report it per epoch).
		default:
			t.Fatalf("EpochStats field %s has kind %s the aggregation guard does not model; extend the test",
				typ.Field(i).Name, f.Kind())
		}
	}
	if numeric < 8 {
		t.Fatalf("only %d numeric fields found; reflection walk is broken", numeric)
	}

	var agg core.EpochStats
	for i := 0; i < n; i++ {
		addEpochStats(&agg, &in)
	}
	avgEpochStats(&agg, n)

	av := reflect.ValueOf(agg)
	for i := 0; i < av.NumField(); i++ {
		f := av.Field(i)
		name := typ.Field(i).Name
		var got float64
		switch f.Kind() {
		case reflect.Int64:
			got = float64(f.Int())
		case reflect.Float64:
			got = f.Float()
		default:
			continue
		}
		switch got {
		case sentinel:
		case 0:
			t.Errorf("EpochStats.%s is not summed by addEpochStats (averaged to 0, want %d)", name, sentinel)
		case sentinel * n:
			t.Errorf("EpochStats.%s is summed but never divided by avgEpochStats (got %v, want %d)", name, got, sentinel)
		default:
			t.Errorf("EpochStats.%s averaged to %v, want %d", name, got, sentinel)
		}
	}

	// The duration fields must really be divided as durations (no unit
	// slip): spot-check one.
	if agg.SampleTime != time.Duration(sentinel) {
		t.Errorf("SampleTime averaged to %v, want %v", agg.SampleTime, time.Duration(sentinel))
	}
}
