package experiments

import "fmt"

// sscan parses whitespace-separated values from a line.
func sscan(line string, args ...any) (int, error) {
	return fmt.Sscan(line, args...)
}
