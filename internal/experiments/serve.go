package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

func init() {
	register("serve", "Online serving: one-at-a-time vs coalesced row-subset passes", runServe)
}

// serveModeResult is one load-test mode's measurements. Lookups/s is the
// cross-mode comparable number (a request may carry several node lookups);
// the latency quantiles are per request.
type serveModeResult struct {
	Mode        string  `json:"mode"`
	Clients     int     `json:"clients"`
	PerRequest  int     `json:"lookups_per_request"`
	Lookups     int     `json:"lookups"`
	LookupsPerS float64 `json:"lookups_per_sec"`
	P50US       float64 `json:"p50_us"`
	P99US       float64 `json:"p99_us"`
	AvgBatch    float64 `json:"avg_coalesced_requests"`
	MaxBatch    int     `json:"max_coalesced_requests"`
	HitRate     float64 `json:"cache_hit_rate"`
}

// serveBenchReport is the machine-readable BENCH_serve.json payload.
type serveBenchReport struct {
	Workload   string            `json:"workload"`
	Nodes      int               `json:"nodes"`
	Layers     int               `json:"layers"`
	Hidden     int               `json:"hidden"`
	CacheRows  int               `json:"cache_rows"`
	MaxBatch   int               `json:"max_batch"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Results    []serveModeResult `json:"results"`
	// SpeedupX is coalesced lookups/s over one-at-a-time lookups/s: the
	// measured value of answering a batch with one row-subset pass.
	SpeedupX float64 `json:"batched_speedup_x"`
}

// loadTest drives totalLookups node lookups at the server from the given
// number of clients, perReq pseudo-randomly chosen nodes per request, and
// returns per-request latencies. Node choice is seeded per client so every
// mode sees the same access distribution.
func loadTest(srv *serve.Server, nodes, clients, perReq, totalLookups int, seed uint64) ([]time.Duration, error) {
	perClient := totalLookups / (clients * perReq)
	lat := make([][]time.Duration, clients)
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(c)))
			lat[c] = make([]time.Duration, 0, perClient)
			req := make([]int32, perReq)
			for i := 0; i < perClient; i++ {
				for j := range req {
					req[j] = int32(rng.Intn(nodes))
				}
				t0 := time.Now()
				if _, err := srv.Predict(req); err != nil {
					errs <- err
					return
				}
				lat[c] = append(lat[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		return nil, err
	}
	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	return all, nil
}

func quantileUS(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// runServe measures the serving engine under three request patterns on the
// same checkpointless reddit-sim model, a fresh engine and cache per mode:
//
//   - one-at-a-time: one client, one node per request — every lookup pays a
//     full dispatcher round trip and a one-row pass. The baseline.
//   - concurrent: a fleet of single-node clients. The dispatcher coalesces
//     whatever queued while a pass ran; how much actually coalesces depends
//     on cores (on one CPU, clients cannot enqueue while a pass runs, so the
//     realized batch stays near 1 — the avg/max coalesced columns report it
//     honestly).
//   - coalesced: the engine work the dispatcher runs when max-batch
//     single-node queries are queued — one row-subset pass over the whole
//     batch — driven deterministically by issuing that many lookups per
//     request. The lookups/s ratio against the baseline is the measured
//     value of batching.
func runServe(w io.Writer, o Options) error {
	o = o.withDefaults()
	spec := redditSpec()
	ds, err := dataset(spec, o)
	if err != nil {
		return err
	}
	mc := spec.model
	mc.Seed = o.Seed

	const cacheFrac = 4 // cache holds N/4 rows: misses stay common at steady state
	const maxBatch = 32
	total := 80000
	if o.Quick {
		total = 8000
	}

	modes := []struct {
		name    string
		clients int
		perReq  int
	}{
		{"one-at-a-time", 1, 1},
		{"concurrent", maxBatch, 1},
		{"coalesced", 1, maxBatch},
	}

	report := serveBenchReport{
		Workload: ds.Name, Nodes: ds.G.N, Layers: mc.Layers, Hidden: mc.Hidden,
		CacheRows: ds.G.N / cacheFrac, MaxBatch: maxBatch, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	tw := newTabWriter(w)
	fmt.Fprintf(tw, "mode\tclients\tlookups/req\tlookups/s\tp50(us)\tp99(us)\tavg coalesced\tmax\thit rate\n")
	for _, m := range modes {
		model, err := core.NewModel(mc, ds.FeatureDim(), ds.NumClasses)
		if err != nil {
			return err
		}
		eng, err := serve.NewEngine(model, ds.G, ds.Features, ds.G.N/cacheFrac)
		if err != nil {
			return err
		}
		srv := serve.NewServer(eng, serve.ServerConfig{MaxBatch: maxBatch})
		start := time.Now()
		lats, err := loadTest(srv, ds.G.N, m.clients, m.perReq, total, o.Seed)
		if err != nil {
			srv.Close()
			return err
		}
		wall := time.Since(start)
		st, err := srv.Stats()
		srv.Close()
		if err != nil {
			return err
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		res := serveModeResult{
			Mode: m.name, Clients: m.clients, PerRequest: m.perReq,
			Lookups:     len(lats) * m.perReq,
			LookupsPerS: float64(len(lats)*m.perReq) / wall.Seconds(),
			P50US:       quantileUS(lats, 0.50),
			P99US:       quantileUS(lats, 0.99),
			AvgBatch:    float64(st.Batched) / float64(st.Batches),
			MaxBatch:    st.MaxBatched,
			HitRate:     float64(st.Hits) / float64(st.Hits+st.Misses),
		}
		report.Results = append(report.Results, res)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.1f\t%.1f\t%.2f\t%d\t%s\n",
			res.Mode, res.Clients, res.PerRequest, res.LookupsPerS,
			res.P50US, res.P99US, res.AvgBatch, res.MaxBatch, pct(res.HitRate))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	report.SpeedupX = report.Results[2].LookupsPerS / report.Results[0].LookupsPerS
	fmt.Fprintf(w, "\ncoalesced-pass throughput: %.2fx one-at-a-time\n", report.SpeedupX)

	if o.OutPath != "" {
		raw, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.OutPath, append(raw, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.OutPath)
	}
	return nil
}
