package core

import (
	"fmt"
	"time"

	"repro/internal/comm"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// This file is the pipelined epoch engine: Algorithm 1's loop body from one
// partition's view, executed as a per-layer stage schedule instead of the
// old strictly serialized sample → exchange → compute phases.
//
// Every layer pass runs in compute chunks over a per-epoch row partition
// (LocalPartition.splitRows): the halo-free rows, whose aggregation reads no
// sampled boundary slot, and the halo-dependent remainder. The row buckets
// drive the sparse SpMM engine (tensor.SpMMRows and friends, over the
// aggregation plan LocalPartition rebuilds with each epoch graph): the
// chunked row passes, the one-shot passes, and the engine's edge-blocked
// kernels are all bit-identical per row, so the schedule equivalences below
// hold unchanged on top of it. Halo sends and
// receives are posted asynchronously (comm.Worker.ISendF32/IRecvF32) before
// any chunk runs. The three schedules differ only in where the waits sit and
// in what order peer payloads are consumed:
//
//	ScheduleSerialized:   post → wait+consume (rank order) → chunk1 → chunk2
//	ScheduleOverlapRank:  post → chunk1 → wait+consume (rank order) → chunk2
//	ScheduleOverlap:      post → chunk1 → consume peers in ARRIVAL order,
//	                      computing each peer's dependent rows as its
//	                      payload lands (drainForwardArrival)
//
// The arrival-order drain is the default. It rides on the transports'
// completion notifications (comm.Transport.IRecvF32Notify): every posted
// halo receive reports its peer on RankTrainer.arrCh the moment the payload
// is consumable, and the drain consumes whichever lands first — so one slow
// peer no longer stalls rows whose data already arrived. Determinism
// survives the nondeterministic consumption order because nothing in it is
// order-sensitive:
//
//   - the forward scatter writes each peer's rows into disjoint halo slots;
//   - dropout masks for the whole halo range are drawn up front in ascending
//     element order (nn.Dropout.MaskRows — the RNG stream order of the
//     rank-order schedules) and only *applied* per peer on arrival;
//   - a halo-dependent row is computed exactly once, when its last awaited
//     peer lands (splitRows' per-peer buckets + rowWait countdown), and the
//     chunked row passes are bit-identical per row in any order;
//   - backward peer gradients, whose += folds into shared rows ARE
//     order-sensitive, are only staged per peer on arrival and folded in
//     canonical ascending rank order once all are in.
//
// All schedules therefore issue the same messages and the same per-row
// arithmetic with the same RNG consumption order, and are bit-identical by
// construction: weights, losses, and per-rank payload bytes match exactly on
// every backend (the overlap equivalence tests pin this, including a skewed
// comm.WithLinkModel case that inverts peer completion order). The chunked
// passes themselves are bit-identical to the one-shot layer passes (see nn's
// chunked-pass property tests), so the engine also reproduces the historical
// serialized implementation bit for bit.
//
// Backward is staged the same way per layer: BackwardBegin + BackwardHalo
// complete the halo rows of the input gradient first, their 1/p-scaled
// payloads are posted, and the parameter gradients plus inner rows
// (BackwardFinish) overlap the exchange before the peer gradients are folded
// into the next layer's output gradient.
//
// Timing is split into two comm counters (see EpochStats): CommExposed is
// the critical-path portion (payload gather/serialize plus actual blocked
// waits and halo fills), Comm the raw span from post to last consumption —
// which under overlap runs concurrently with Compute and measures what the
// exchange would cost if nothing hid it. The arrival-order drain attributes
// the row compute it interleaves between waits to Compute, not CommExposed,
// so the exposed figure stays comparable across schedules.

// runEpoch executes one epoch of strategy-sampled partition-parallel
// training for this rank over the worker's transport.
func (rt *RankTrainer) runEpoch(w *comm.Worker) RankStats {
	var ws RankStats
	rank := rt.Rank
	lp := rt.LP
	model := rt.Model
	k := rt.Topo.K
	overlap := rt.Cfg.Schedule.overlapped()
	arrival := rt.Cfg.Schedule.arrival()

	// --- Sampling phase (lines 4–7): the strategy decides the epoch ---
	start := time.Now()
	plan := &rt.plan
	rt.strat.PlanEpoch(plan)
	myPos := plan.Positions // aliases lp.myPos: positions I sampled, per owner
	for j := 0; j < k; j++ {
		if j != rank {
			ws.SampledBd += len(myPos[j])
		}
	}
	// The strategy's 1/p rescaling of received features (Section 3.2 for BNS)
	// makes the *mean aggregator's* neighbor sum unbiased. Attention models
	// normalize per-neighborhood via softmax, so the rescale would only
	// distort the attention logits — GAT runs unscaled whatever the strategy
	// reports, matching the official code.
	invP := plan.InvP
	if invP <= 0 {
		invP = 1
	}
	var haloScale []float32 // per-slot receive rescale; nil = uniform invP
	if rt.Cfg.Model.Arch == ArchSAGE {
		haloScale = plan.HaloScale
	} else {
		invP = 1
	}
	// A row-dropping strategy shrinks the loss to the inner rows it kept; the
	// mask is captured now, before peer demand promotes extra rows back into
	// compute. The normalizer stays the global train count — a property of
	// the dataset alone — so the sampled loss is a fixed-expected-fraction
	// estimate of the full one and ranks need no extra agreement round.
	lossMask := lp.TrainMask
	if plan.DropsInner {
		lossMask = lp.lossMask
		for v := 0; v < lp.NIn; v++ {
			lossMask[v] = lp.TrainMask[v] && lp.active[v]
		}
	}
	// Broadcast selections. The sent position slices alias lp.myPos scratch:
	// the receiver holds them for the rest of the epoch, and the next
	// epoch's rewrite is safe because TrainEpoch joins all workers in
	// between.
	theirPos := lp.theirPos
	if k > 1 {
		for j := 0; j < k; j++ {
			if j != rank {
				w.SendI32(j, tagPositions, myPos[j])
			}
		}
	}
	// Everything derivable from the local sample runs between the position
	// sends and receives, overlapping the peers' sampling even in the
	// serialized schedule: the epoch subgraph, the effective-degree
	// normalizer, the halo-free/halo-dependent row split, and the receive
	// slot lists.
	eg := lp.epochGraph()
	// Self-normalized mean estimator: sampled remote neighbors carry the
	// strategy's receive rescale in the numerator (the received features
	// arrive pre-scaled), and the normalizer is the matching effective
	// degree. For BNS that is |local| + (1/p)·|sampled remote| — at p=1
	// exactly the full degree; for p<1 the estimate is a convex combination
	// of neighbor features, so sampling noise cannot blow up activations the
	// way the unnormalized 1/p estimator does on low-degree nodes. Plans with
	// per-slot scales or dropped inner rows take the generic per-edge walk;
	// the BNS-shaped plan keeps the historical closed-form expression, whose
	// float evaluation order the bit-identity goldens pin.
	invDeg := lp.InvDeg // EstimatorHT: normalize by the full global degree
	if rt.Cfg.Estimator == EstimatorSelfNorm {
		invDeg = lp.epochInvDeg
		if haloScale == nil && !plan.DropsInner {
			for v := 0; v < lp.NIn; v++ {
				row := eg.Neighbors(int32(v))
				remote := float32(len(row) - int(lp.localNbrs[v]))
				eff := float32(lp.localNbrs[v]) + invP*remote
				if eff > 0 {
					invDeg[v] = 1 / eff
				} else {
					invDeg[v] = 0 // scratch is reused; clear stale entries
				}
			}
		} else {
			for v := 0; v < lp.NIn; v++ {
				var eff float32
				for _, u := range eg.Neighbors(int32(v)) {
					switch {
					case int(u) < lp.NIn:
						eff++
					case haloScale != nil:
						eff += haloScale[int(u)-lp.NIn]
					default:
						eff += invP
					}
				}
				if eff > 0 {
					invDeg[v] = 1 / eff
				} else {
					invDeg[v] = 0 // dropped or isolated row
				}
			}
		}
	}
	if !plan.DropsInner {
		lp.splitRows(eg, arrival, false)
	}
	recvSlots := lp.recvSlots // halo local ids I fill from j
	for j := 0; j < k; j++ {
		if j == rank {
			continue
		}
		full := rt.Topo.Recv[rank][j]
		slots := recvSlots[j][:len(myPos[j])]
		for x, posIdx := range myPos[j] {
			slots[x] = int32(lp.NIn) + full[posIdx]
		}
		recvSlots[j] = slots
	}
	if k > 1 {
		for j := 0; j < k; j++ {
			if j != rank {
				theirPos[j] = w.RecvI32(j, tagPositions)
			}
		}
	}
	sendRows := lp.sendRows // inner local ids to send to j, per layer
	for j := 0; j < k; j++ {
		if j == rank {
			continue
		}
		full := rt.Topo.Send[rank][j]
		rows := sendRows[j][:len(theirPos[j])]
		for x, posIdx := range theirPos[j] {
			rows[x] = full[posIdx]
		}
		sendRows[j] = rows
	}
	if plan.DropsInner {
		// Peers may request inner rows the strategy dropped: promote them
		// back into compute so the features they receive are freshly
		// computed. The epoch graph was built before promotion, so a
		// promoted row keeps an empty neighborhood — it self-projects
		// (the loss mask, also captured pre-promotion, never sees it).
		// The row split must wait for this: it runs on the post-promotion
		// active set, restricted (SAGE only — its staged backward tolerates
		// uncomputed rows; GAT computes inactive rows as isolated nodes,
		// which contribute exactly zero gradient).
		for j := 0; j < k; j++ {
			if j == rank {
				continue
			}
			for _, row := range sendRows[j] {
				lp.active[row] = true
			}
		}
		lp.splitRows(eg, arrival, rt.Cfg.Model.Arch == ArchSAGE)
	}
	ws.Sample = time.Since(start)
	// exchanging: does this epoch move any halo traffic at all? (False for
	// k=1, p=0, or an epoch that sampled nothing.) Gates the raw comm-span
	// accounting so halo-free compute is not misreported as comm span when
	// there is no exchange in flight.
	exchanging := false
	for j := 0; j < k; j++ {
		if j != rank && (len(sendRows[j]) > 0 || len(recvSlots[j]) > 0) {
			exchanging = true
		}
	}

	// --- Forward (lines 8–11) ---
	nLocal := lp.NIn + lp.NBd
	hInner := lp.Features // inner activations entering the current layer
	for l, layer := range model.LayersL {
		dim := layer.InputDim()
		drop := model.Dropouts[l]
		// x comes from the epoch workspace with undefined contents: inner
		// rows are overwritten below, sampled halo slots by the drain, and
		// unsampled halo slots are never read because epochGraph dropped
		// every edge into them.
		x := lp.ws.Get(nLocal, dim)
		copy(x.Data[:lp.NIn*dim], hInner.Data[:lp.NIn*dim])
		// Rows the restricted split excluded from compute carry stale
		// scratch in hInner; zero them so the SAGE parameter-gradient
		// kernels — which read every row — see exact zeros.
		for _, v := range lp.skipRows {
			clear(x.Row(int(v)))
		}

		// Post the halo exchange. Payload buffers alias the epoch
		// workspace; receivers consume them within this epoch.
		cs := time.Now()
		for j := 0; j < k; j++ {
			if j == rank || len(sendRows[j]) == 0 {
				continue
			}
			payload := lp.ws.GetF32(len(sendRows[j]) * dim)
			for x2, row := range sendRows[j] {
				copy(payload[x2*dim:(x2+1)*dim], hInner.Row(int(row)))
			}
			w.ISendF32(j, tagForward+l, payload)
			ws.CommBytes += int64(4 * len(payload))
		}
		nPend := 0
		for j := 0; j < k; j++ {
			if j == rank || len(recvSlots[j]) == 0 {
				continue
			}
			if arrival {
				lp.pendRecv[j] = w.IRecvF32Notify(j, tagForward+l, rt.arrCh, j)
			} else {
				lp.pendRecv[j] = w.IRecvF32(j, tagForward+l)
			}
			nPend++
		}
		post := time.Since(cs)
		ws.CommExposed += post
		ws.Comm += post
		flightStart := time.Now()

		switch {
		case arrival:
			// Chunk 1 — halo-free rows — while boundary rows are in flight.
			// The halo range's dropout masks are drawn here (ascending, the
			// exact RNG stream position of the other schedules' chunk 2) so
			// the drain can apply them per peer in any arrival order.
			ps := time.Now()
			xd := drop.ForwardBegin(x, true)
			drop.ForwardRows(0, lp.NIn)
			hInner = layer.ForwardBegin(eg, xd, lp.NIn, invDeg)
			layer.ForwardPrep(0, lp.NIn)
			drop.MaskRows(lp.NIn, nLocal)
			layer.ForwardRows(lp.haloFree)
			ws.Compute += time.Since(ps)

			lastConsume := rt.drainForwardArrival(w, x, l, dim, invP, haloScale, drop, layer, nPend, &ws)
			if exchanging {
				// Raw comm span ends at the last consumption, not after the
				// trailing row compute the drain interleaves — keeping
				// comm(raw) comparable with the rank-order schedule.
				if lastConsume.IsZero() {
					lastConsume = flightStart
				}
				ws.Comm += lastConsume.Sub(flightStart)
			}
		case overlap:
			// Rank-order drain: chunk 1 overlaps the flight, then all peers
			// complete in ascending rank order before chunk 2.
			ps := time.Now()
			xd := drop.ForwardBegin(x, true)
			drop.ForwardRows(0, lp.NIn)
			hInner = layer.ForwardBegin(eg, xd, lp.NIn, invDeg)
			layer.ForwardPrep(0, lp.NIn)
			layer.ForwardRows(lp.haloFree)
			ws.Compute += time.Since(ps)

			ds := time.Now()
			rt.drainForward(w, x, l, dim, invP, haloScale)
			wd := time.Since(ds)
			ws.CommExposed += wd
			if exchanging {
				ws.Comm += time.Since(flightStart)
			} else {
				ws.Comm += wd
			}

			// Chunk 2 — halo-dependent rows — on arrival.
			ps = time.Now()
			drop.ForwardRows(lp.NIn, nLocal)
			layer.ForwardPrep(lp.NIn, nLocal)
			layer.ForwardRows(lp.haloDep)
			ws.Compute += time.Since(ps)
		default:
			// Serialized baseline: identical calls, waits moved up front.
			ds := time.Now()
			rt.drainForward(w, x, l, dim, invP, haloScale)
			d := time.Since(ds)
			ws.CommExposed += d
			ws.Comm += d

			ps := time.Now()
			xd := drop.ForwardBegin(x, true)
			drop.ForwardRows(0, lp.NIn)
			hInner = layer.ForwardBegin(eg, xd, lp.NIn, invDeg)
			layer.ForwardPrep(0, lp.NIn)
			layer.ForwardRows(lp.haloFree)
			drop.ForwardRows(lp.NIn, nLocal)
			layer.ForwardPrep(lp.NIn, nLocal)
			layer.ForwardRows(lp.haloDep)
			ws.Compute += time.Since(ps)
		}
	}

	// --- Loss (line 12) ---
	ls := time.Now()
	d := lp.ws.Get(hInner.Rows, hInner.Cols)
	ws.Loss = LossInto(d, rt.DS, hInner, lp.Labels, lp.LabelMatrix, lossMask, rt.globalTrainCount)
	model.ZeroGrad()
	ws.Compute += time.Since(ls)

	// --- Backward (line 13) ---
	for l := len(model.LayersL) - 1; l >= 0; l-- {
		layer := model.LayersL[l]
		drop := model.Dropouts[l]
		if l == 0 {
			// Input features need no gradient: no halo exchange, and the
			// dropout backward's output is unused — only the parameter
			// gradients matter, which the one-shot backward accumulates.
			bs := time.Now()
			layer.Backward(d)
			ws.Compute += time.Since(bs)
			break
		}
		dim := layer.InputDim()

		// Stage A: pre-activation grads, then the halo rows of the input
		// gradient — the only rows the peers are waiting for.
		bs := time.Now()
		layer.BackwardBegin(d)
		dH := layer.BackwardHalo(lp.haloDep, lp.haloSlots, lp.NIn)
		dxm := drop.BackwardBegin(dH)
		drop.BackwardRows(lp.NIn, nLocal)
		ws.Compute += time.Since(bs)

		// Post the gradient exchange.
		cs := time.Now()
		for j := 0; j < k; j++ {
			if j == rank || len(recvSlots[j]) == 0 {
				continue
			}
			payload := lp.ws.GetF32(len(recvSlots[j]) * dim)
			for x2, slot := range recvSlots[j] {
				src := dxm.Row(int(slot))
				dst := payload[x2*dim : (x2+1)*dim]
				s := invP // chain rule through the receive rescale
				if haloScale != nil {
					s = haloScale[int(slot)-lp.NIn]
				}
				for c, v := range src {
					dst[c] = v * s
				}
			}
			w.ISendF32(j, tagBackward+l, payload)
			ws.CommBytes += int64(4 * len(payload))
		}
		nPend := 0
		for j := 0; j < k; j++ {
			if j == rank || len(sendRows[j]) == 0 {
				continue
			}
			if arrival {
				lp.pendRecv[j] = w.IRecvF32Notify(j, tagBackward+l, rt.arrCh, j)
			} else {
				lp.pendRecv[j] = w.IRecvF32(j, tagBackward+l)
			}
			nPend++
		}
		post := time.Since(cs)
		ws.CommExposed += post
		ws.Comm += post
		flightStart := time.Now()

		if !overlap {
			// Serialized baseline: block for the peer gradients up front.
			ds := time.Now()
			for j := 0; j < k; j++ {
				if j == rank || len(sendRows[j]) == 0 {
					continue
				}
				lp.recvData[j] = lp.pendRecv[j].Wait()
			}
			wd := time.Since(ds)
			ws.CommExposed += wd
			ws.Comm += wd
		}

		// Stage B: parameter gradients + inner rows, overlapping the
		// exchange when the pipelined schedule is on.
		ps := time.Now()
		layer.BackwardFinish(lp.haloFree, lp.NIn)
		drop.BackwardRows(0, lp.NIn)
		ws.Compute += time.Since(ps)

		// Assemble the next output gradient: my inner rows plus the halo
		// gradients the peers computed for them. Peer gradients += into
		// shared destination rows, so the fold itself must stay in ascending
		// rank order (the accumulation order is part of bit-identity) — the
		// arrival-order schedule therefore only *stages* each peer's payload
		// as it lands (the receive, and under a modeled link its latency,
		// completes in arrival order) and folds once all are in.
		as := time.Now()
		if arrival {
			for i := 0; i < nPend; i++ {
				j := <-rt.arrCh
				lp.recvData[j] = lp.pendRecv[j].Wait()
			}
		}
		dNext := lp.ws.Get(lp.NIn, dim)
		copy(dNext.Data, dxm.Data[:lp.NIn*dim])
		// Skipped rows' input-gradient rows are stale scratch (no split
		// write covers them, and no gather reaches an edgeless row); the
		// layer below multiplies its parameter grads by these rows' dPre,
		// so they must be exact zeros.
		for _, v := range lp.skipRows {
			clear(dNext.Row(int(v)))
		}
		for j := 0; j < k; j++ {
			if j == rank || len(sendRows[j]) == 0 {
				continue
			}
			data := lp.recvData[j]
			if data != nil {
				lp.recvData[j] = nil
			} else {
				data = lp.pendRecv[j].Wait()
			}
			for x2, row := range sendRows[j] {
				tensor.AddTo(dNext.Row(int(row)), data[x2*dim:(x2+1)*dim])
			}
			w.RecycleF32(data)
		}
		ad := time.Since(as)
		ws.CommExposed += ad
		if overlap && exchanging {
			ws.Comm += time.Since(flightStart)
		} else {
			ws.Comm += ad
		}
		d = dNext
	}

	// --- Gradient AllReduce + update (lines 14–15) ---
	rs := time.Now()
	flat := nn.FlattenMats(model.Grads(), rt.flatGrad)
	rt.flatGrad = flat
	w.AllReduceSum(flat, tagReduce)
	nn.UnflattenMats(model.Grads(), flat)
	ws.ReduceBytes = int64(4 * len(flat))
	rt.opt.Step(model.Params(), model.Grads())
	ws.Reduce = time.Since(rs)

	// Everything drawn from the epoch workspace is dead now; recycle it.
	lp.ws.Reset()
	return ws
}

// drainForward waits for this layer's boundary feature rows in ascending
// peer order, writes them into the halo slots of x with the strategy's
// receive rescale (the unbiased 1/p of Section 3.2 for BNS), and recycles
// the payload buffers. Callers time the whole call and attribute it to the
// comm counters themselves.
func (rt *RankTrainer) drainForward(w *comm.Worker, x *tensor.Matrix, l, dim int, invP float32, haloScale []float32) {
	for j := 0; j < rt.Topo.K; j++ {
		if j == rt.Rank || len(rt.LP.recvSlots[j]) == 0 {
			continue
		}
		rt.consumeForward(w, x, j, l, dim, invP, haloScale)
	}
}

// consumeForward waits for peer j's boundary feature rows for this layer,
// scatters them into j's halo slots of x with the strategy's receive rescale
// (uniform invP, or the plan's per-slot importance weights), and recycles
// the payload buffer. The slots of different peers are disjoint, so both
// drains — rank order and arrival order — go through this one path and
// cannot diverge.
func (rt *RankTrainer) consumeForward(w *comm.Worker, x *tensor.Matrix, j, l, dim int, invP float32, haloScale []float32) {
	lp := rt.LP
	data := lp.pendRecv[j].Wait()
	if len(data) != len(lp.recvSlots[j])*dim {
		panic(fmt.Sprintf("core: rank %d layer %d: got %d floats from %d, want %d",
			rt.Rank, l, len(data), j, len(lp.recvSlots[j])*dim))
	}
	for x2, slot := range lp.recvSlots[j] {
		dst := x.Row(int(slot))
		src := data[x2*dim : (x2+1)*dim]
		s := invP
		if haloScale != nil {
			s = haloScale[int(slot)-lp.NIn]
		}
		for c, v := range src {
			dst[c] = v * s
		}
	}
	w.RecycleF32(data)
}

// drainForwardArrival consumes this layer's boundary feature rows in
// peer-arrival order: it blocks on the completion queue, and whichever
// peer's payload becomes consumable first is scattered into that peer's halo
// slots (disjoint per peer, so arrival order cannot change the bits), the
// slots get their pre-drawn dropout masks applied and their per-node
// precomputations run, and every halo-dependent row whose last awaited peer
// just landed is computed immediately (splitRows' rowWait countdown). Rows
// unlocked by one peer are ascending (peerRows is built by an ascending row
// scan) and each row runs exactly once, with per-row arithmetic identical to
// the rank-order chunk 2 — so the result is bit-identical while a slow peer
// stalls only the rows that genuinely need it.
//
// Blocked waits and halo fills are attributed to CommExposed, the unlocked
// row compute to Compute, keeping the exposed-comm figure comparable with
// the other schedules; the returned time of the last consumption lets the
// caller end the raw comm span there (zero when nothing was pending).
func (rt *RankTrainer) drainForwardArrival(w *comm.Worker, x *tensor.Matrix, l, dim int, invP float32,
	haloScale []float32, drop *nn.Dropout, layer GraphLayer, nPend int, ws *RankStats) (lastConsume time.Time) {
	lp := rt.LP
	copy(lp.rowWait, lp.rowWaitInit) // re-arm the countdown for this layer's drain
	for i := 0; i < nPend; i++ {
		cs := time.Now()
		j := <-rt.arrCh
		rt.consumeForward(w, x, j, l, dim, invP, haloScale)
		lastConsume = time.Now()
		ws.CommExposed += lastConsume.Sub(cs)

		ps := time.Now()
		drop.ApplyMaskedRows(lp.recvSlots[j])
		layer.ForwardPrepRows(lp.recvSlots[j])
		ready := lp.readyRows[:0]
		for _, v := range lp.peerRows[j] {
			lp.rowWait[v]--
			if lp.rowWait[v] == 0 {
				ready = append(ready, v)
			}
		}
		lp.readyRows = ready
		layer.ForwardRows(ready)
		ws.Compute += time.Since(ps)
	}
	return lastConsume
}
