package core

import (
	"testing"
)

// TestTrainingEngineMatchesScalarFallback extends the schedule-equivalence
// coverage to the sparse SpMM engine end to end: multi-epoch BNS training
// with the aggregation plan installed (the default — edge-blocked gathers,
// transposed-index backward, chunk parallelism) must produce bit-identical
// weights and losses to training with the layers' scalar fallback
// (SetAgg(nil): sequential per-edge walks), under every schedule and both
// model families. Combined with TestOverlapBitIdentical (3 schedules × 2
// transports on the engine) this pins the whole cross product to the scalar
// reference.
func TestTrainingEngineMatchesScalarFallback(t *testing.T) {
	for _, arch := range []Arch{ArchSAGE, ArchGAT} {
		for _, sched := range []Schedule{ScheduleOverlap, ScheduleSerialized} {
			ds := testDataset(t, 91)
			topo := testTopology(t, ds, 4)
			mc := ModelConfig{Arch: arch, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
			cfg := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 23, Schedule: sched}

			engine, err := NewParallelTrainer(ds, topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			fallback, err := NewParallelTrainer(ds, topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, rt := range fallback.Ranks {
				rt.Model.SetAgg(nil)
			}

			for e := 0; e < 3; e++ {
				se := engine.TrainEpoch()
				sf := fallback.TrainEpoch()
				if se.Loss != sf.Loss {
					t.Fatalf("%s/%v epoch %d: engine loss %v, fallback %v", arch, sched, e, se.Loss, sf.Loss)
				}
			}
			for r := range engine.Models {
				pe := engine.Models[r].Params()
				pf := fallback.Models[r].Params()
				for i := range pe {
					for j, v := range pe[i].Data {
						if v != pf[i].Data[j] {
							t.Fatalf("%s/%v rank %d param %d[%d]: engine %v, fallback %v", arch, sched, r, i, j, v, pf[i].Data[j])
						}
					}
				}
			}
		}
	}
}
