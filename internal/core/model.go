package core

import (
	"fmt"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// Arch selects the model family.
type Arch string

const (
	// ArchSAGE is GraphSAGE with a mean aggregator, the paper's main model.
	ArchSAGE Arch = "sage"
	// ArchGAT is single-head graph attention (Table 10 scenario).
	ArchGAT Arch = "gat"
)

// ModelConfig describes a GCN model as in the paper's Section 4 setups
// (e.g. Reddit: 4 layers, 256 hidden, lr 0.01, dropout 0.5).
type ModelConfig struct {
	Arch    Arch
	Layers  int
	Hidden  int
	Dropout float32
	LR      float32
	Seed    uint64
}

// Validate checks the configuration.
func (c *ModelConfig) Validate() error {
	if c.Arch != ArchSAGE && c.Arch != ArchGAT {
		return fmt.Errorf("core: unknown arch %q", c.Arch)
	}
	if c.Layers < 1 {
		return fmt.Errorf("core: need >=1 layer, got %d", c.Layers)
	}
	if c.Hidden < 1 {
		return fmt.Errorf("core: hidden dim %d", c.Hidden)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("core: dropout %v", c.Dropout)
	}
	return nil
}

// GraphLayer is the uniform layer interface the trainers drive: forward over
// a local node space producing outputs for the first nOut rows, backward
// returning input gradients for all rows.
//
// Besides the one-shot Forward/Backward (what the full-graph trainers use),
// every layer exposes the chunked passes the pipelined epoch engine runs so
// halo exchange can overlap with halo-independent compute:
//
//   - ForwardBegin → ForwardPrep/ForwardRows: rows whose aggregation reads no
//     halo slot can run while boundary features are in flight; the remaining
//     rows run on arrival. Any duplicate-free row partition is bit-identical
//     to the one-shot Forward.
//   - BackwardBegin → BackwardHalo → BackwardFinish: halo-row input gradients
//     complete first (so they can be sent), then parameter gradients and the
//     inner rows while the peer gradients are in flight. The staged schedule
//     is bit-identical to the one-shot Backward.
type GraphLayer interface {
	nn.Layer
	Forward(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix
	Backward(dOut *tensor.Matrix) *tensor.Matrix

	// SetAgg installs the sparse-aggregation plan (graph.AggIndex: the
	// transposed index plus edge-balanced chunk boundaries) the layer's
	// passes run over. The plan must be built from the same graph the
	// passes receive; trainers rebuild it whenever the epoch graph changes.
	// nil reverts to the layers' serial fallback with identical bits.
	SetAgg(ai *graph.AggIndex)

	// ForwardBegin prepares a chunked pass and returns the output matrix the
	// ForwardRows calls will fill.
	ForwardBegin(g *graph.Graph, h *tensor.Matrix, nOut int, invDeg []float32) *tensor.Matrix
	// ForwardPrep runs per-node precomputations for feature rows [r0, r1)
	// (a no-op for SAGE; Wh and attention scores for GAT).
	ForwardPrep(r0, r1 int)
	// ForwardPrepRows is ForwardPrep for an explicit row list — the
	// arrival-order drain preps one peer's halo slots as they land.
	ForwardPrepRows(rows []int32)
	// ForwardRows computes the listed output rows; each row of [0, nOut)
	// must be covered exactly once per pass.
	ForwardRows(rows []int32)

	// BackwardBegin computes the pre-activation gradients for dOut and
	// resets the pass accumulators.
	BackwardBegin(dOut *tensor.Matrix)
	// BackwardHalo completes the halo rows of the input gradient: haloSrc
	// lists (ascending) every output row with a neighbor ≥ nIn, haloSlots
	// the halo rows whose gradients are needed. Rows < nIn of the returned
	// matrix are valid only after BackwardFinish.
	BackwardHalo(haloSrc, haloSlots []int32, nIn int) *tensor.Matrix
	// BackwardFinish accumulates parameter gradients and completes rows
	// [0, nIn); freeSrc lists (ascending) the output rows not in haloSrc.
	BackwardFinish(freeSrc []int32, nIn int) *tensor.Matrix

	InputDim() int
	OutputDim() int
}

// sageLayer adapts nn.SAGEConv to GraphLayer.
type sageLayer struct{ *nn.SAGEConv }

func (l sageLayer) InputDim() int  { return l.SAGEConv.InDim }
func (l sageLayer) OutputDim() int { return l.SAGEConv.OutDim }

// gatLayer adapts nn.GATConv to GraphLayer (invDeg is unused by attention).
type gatLayer struct{ *nn.GATConv }

func (l gatLayer) Forward(g *graph.Graph, h *tensor.Matrix, nOut int, _ []float32) *tensor.Matrix {
	return l.GATConv.Forward(g, h, nOut)
}
func (l gatLayer) ForwardBegin(g *graph.Graph, h *tensor.Matrix, nOut int, _ []float32) *tensor.Matrix {
	return l.GATConv.ForwardBegin(g, h, nOut)
}
func (l gatLayer) InputDim() int  { return l.GATConv.InDim }
func (l gatLayer) OutputDim() int { return l.GATConv.OutDim }

// Model is a stack of graph layers with per-layer dropout, replicated on
// every partition during parallel training.
type Model struct {
	Config   ModelConfig
	LayersL  []GraphLayer
	Dropouts []*nn.Dropout
	InDim    int
	OutDim   int

	// Memoized views of the (static) layer stack, so per-epoch calls to
	// Layers/Params/Grads allocate nothing.
	layersCache []nn.Layer
	paramsCache []*tensor.Matrix
	gradsCache  []*tensor.Matrix
}

// NewModel builds a model with deterministic initialization from cfg.Seed.
// All replicas built with the same seed hold bit-identical weights.
func NewModel(cfg ModelConfig, inDim, outDim int) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed)
	m := &Model{Config: cfg, InDim: inDim, OutDim: outDim}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		out := cfg.Hidden
		act := nn.ReLUAct
		if l == 0 {
			in = inDim
		}
		if l == cfg.Layers-1 {
			out = outDim
			act = nn.NoAct
		}
		switch cfg.Arch {
		case ArchSAGE:
			m.LayersL = append(m.LayersL, sageLayer{nn.NewSAGEConv(in, out, act, rng)})
		case ArchGAT:
			m.LayersL = append(m.LayersL, gatLayer{nn.NewGATConv(in, out, act, rng)})
		}
		m.Dropouts = append(m.Dropouts, nn.NewDropout(cfg.Dropout, rng))
	}
	for _, l := range m.LayersL {
		m.layersCache = append(m.layersCache, l)
		m.paramsCache = append(m.paramsCache, l.Params()...)
		m.gradsCache = append(m.gradsCache, l.Grads()...)
	}
	return m, nil
}

// Layers returns the stack as nn.Layer values for optimizers and grad
// flattening. The returned slice is shared; callers must not mutate it.
func (m *Model) Layers() []nn.Layer { return m.layersCache }

// SetAgg installs one aggregation plan on every layer. All layers of a
// model run over the same local graph, so one plan serves the whole stack;
// the caller keeps ownership and rebuilds it when its graph changes.
func (m *Model) SetAgg(ai *graph.AggIndex) {
	for _, l := range m.LayersL {
		l.SetAgg(ai)
	}
}

// LayerInputDims returns the input feature dimension of every layer, the d^(ℓ)
// sequence of Eq. 4.
func (m *Model) LayerInputDims() []int {
	dims := make([]int, len(m.LayersL))
	for i, l := range m.LayersL {
		dims[i] = l.InputDim()
	}
	return dims
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() {
	for _, l := range m.LayersL {
		l.ZeroGrad()
	}
}

// Params returns all trainable parameters in deterministic order. The
// returned slice is shared; callers must not mutate it.
func (m *Model) Params() []*tensor.Matrix { return m.paramsCache }

// Grads returns all gradients aligned with Params. The returned slice is
// shared; callers must not mutate it.
func (m *Model) Grads() []*tensor.Matrix { return m.gradsCache }

// CopyWeightsFrom copies parameters from src (same architecture).
func (m *Model) CopyWeightsFrom(src *Model) {
	sp := src.Params()
	dp := m.Params()
	if len(sp) != len(dp) {
		panic(fmt.Sprintf("core: weight copy across different models: %d vs %d params", len(sp), len(dp)))
	}
	for i := range dp {
		dp[i].CopyFrom(sp[i])
	}
}

// Loss computes the dataset-appropriate loss and logit gradient over masked
// rows, rescaled so that summing across partitions yields the global mean
// loss: both loss and gradient are multiplied by (local masked count /
// denom). Pass denom == global masked count; for single-process training use
// the local count itself.
func Loss(ds *datagen.Dataset, logits *tensor.Matrix, labels []int32, labelMatrix *tensor.Matrix, mask []bool, denom int) (float64, *tensor.Matrix) {
	grad := tensor.New(logits.Rows, logits.Cols)
	loss := LossInto(grad, ds, logits, labels, labelMatrix, mask, denom)
	return loss, grad
}

// LossInto is Loss writing the gradient into a caller-owned matrix
// (overwritten), for allocation-free training loops.
func LossInto(grad *tensor.Matrix, ds *datagen.Dataset, logits *tensor.Matrix, labels []int32, labelMatrix *tensor.Matrix, mask []bool, denom int) float64 {
	local := 0
	for i := 0; i < logits.Rows; i++ {
		if mask[i] {
			local++
		}
	}
	var loss float64
	if ds.MultiLabel {
		loss = nn.SigmoidBCEInto(grad, logits, labelMatrix, mask)
	} else {
		loss = nn.SoftmaxCrossEntropyInto(grad, logits, labels, mask)
	}
	if denom > 0 && local != denom {
		scale := float64(local) / float64(denom)
		loss *= scale
		grad.Scale(float32(scale))
	}
	return loss
}
