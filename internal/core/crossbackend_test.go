package core

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
)

// tcpLoopbackGroup bootstraps k TCP transports over 127.0.0.1 and wraps them
// in a comm.Group so the in-process trainer can drive real sockets.
func tcpLoopbackGroup(t testing.TB, k int) *comm.Group {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ts := make([]comm.Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := comm.TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = comm.DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	g := comm.NewGroup(ts)
	t.Cleanup(func() { g.Close() })
	return g
}

// TestTCPBackendBitIdenticalToChan is the cross-backend equivalence proof:
// the same seeded dataset trained for 5 epochs over the in-process channel
// backend and over real loopback TCP sockets must produce bit-identical
// weights on every rank, bit-identical losses, and identical per-rank
// payload byte and message counts — for k ∈ {2, 4} and p < 1 (so boundary
// sampling, halo exchange, and the ring AllReduce all carry traffic).
func TestTCPBackendBitIdenticalToChan(t *testing.T) {
	for _, k := range []int{2, 4} {
		ds := testDataset(t, uint64(90+k))
		topo := testTopology(t, ds, k)
		cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 11}

		chanTr, err := NewParallelTrainer(ds, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tcpTr, err := NewParallelTrainerOver(ds, topo, cfg, tcpLoopbackGroup(t, k))
		if err != nil {
			t.Fatal(err)
		}

		const epochs = 5
		for e := 0; e < epochs; e++ {
			a := chanTr.TrainEpoch()
			b := tcpTr.TrainEpoch()
			if a.Loss != b.Loss {
				t.Fatalf("k=%d epoch %d: chan loss %.17g != tcp loss %.17g", k, e, a.Loss, b.Loss)
			}
			if a.CommBytes != b.CommBytes || a.ReduceBytes != b.ReduceBytes {
				t.Fatalf("k=%d epoch %d: traffic diverged: chan (%d,%d) vs tcp (%d,%d)",
					k, e, a.CommBytes, a.ReduceBytes, b.CommBytes, b.ReduceBytes)
			}
		}
		for r := 0; r < k; r++ {
			if d := MaxParamDiff(chanTr.Models[r], tcpTr.Models[r]); d != 0 {
				t.Fatalf("k=%d rank %d: weights diverged across backends by %v", k, r, d)
			}
			if cb, tb := chanTr.Cluster.BytesSent(r), tcpTr.Cluster.BytesSent(r); cb != tb {
				t.Fatalf("k=%d rank %d: chan sent %d payload bytes, tcp sent %d", k, r, cb, tb)
			}
			if cm, tm := chanTr.Cluster.MessagesSent(r), tcpTr.Cluster.MessagesSent(r); cm != tm {
				t.Fatalf("k=%d rank %d: chan sent %d messages, tcp sent %d", k, r, cm, tm)
			}
		}
	}
}

// TestRankTrainerMatchesParallelTrainer: k independently constructed
// RankTrainers driven by hand over a group must replay exactly what the
// bundled ParallelTrainer computes — the property multi-process deployment
// rests on, since each OS process bootstraps its own RankTrainer.
func TestRankTrainerMatchesParallelTrainer(t *testing.T) {
	ds := testDataset(t, 96)
	const k = 3
	topo := testTopology(t, ds, k)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.4, SampleSeed: 5}

	ref, err := NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ranks := make([]*RankTrainer, k)
	for r := 0; r < k; r++ {
		if ranks[r], err = NewRankTrainer(ds, topo, cfg, r); err != nil {
			t.Fatal(err)
		}
	}
	g := comm.New(k, 0)
	for e := 0; e < 4; e++ {
		want := ref.TrainEpoch().Loss
		losses := make([]float64, k)
		g.Run(func(w *comm.Worker) {
			st, err := ranks[w.Rank()].TrainEpoch(w)
			if err != nil {
				t.Errorf("rank %d: %v", w.Rank(), err)
				return
			}
			losses[w.Rank()] = st.Loss
		})
		var got float64
		for _, l := range losses {
			got += l
		}
		if got != want {
			t.Fatalf("epoch %d: rank-wise loss %v != bundled %v", e, got, want)
		}
	}
	for r := 0; r < k; r++ {
		if d := MaxParamDiff(ref.Models[r], ranks[r].Model); d != 0 {
			t.Fatalf("rank %d diverged from bundled trainer by %v", r, d)
		}
	}
}

// TestEpochFailureSurfacesAsError: a panic inside one rank's epoch must come
// back as an error from TrainEpoch — and abort the transport so peers fail
// too instead of deadlocking on the unfinished protocol — on both backends.
func TestEpochFailureSurfacesAsError(t *testing.T) {
	ds := testDataset(t, 97)
	const k = 2
	topo := testTopology(t, ds, k)
	cfg := ParallelConfig{Model: testModelConfig(), P: 1, SampleSeed: 1}

	for _, backend := range []struct {
		name  string
		group func() *comm.Group
	}{
		{"chan", func() *comm.Group { return comm.New(k, 0) }},
		{"tcp", func() *comm.Group { return tcpLoopbackGroup(t, k) }},
	} {
		ranks := make([]*RankTrainer, k)
		for r := 0; r < k; r++ {
			var err error
			if ranks[r], err = NewRankTrainer(ds, topo, cfg, r); err != nil {
				t.Fatal(err)
			}
		}
		g := backend.group()
		errsCh := make(chan error, k)
		done := make(chan struct{})
		go func() {
			g.Run(func(w *comm.Worker) {
				if w.Rank() == 1 {
					// Rank 1 dies before participating; rank 0 is left
					// mid-protocol.
					w.Transport().Abort()
					errsCh <- nil
					return
				}
				_, err := ranks[w.Rank()].TrainEpoch(w)
				errsCh <- err
			})
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("%s: surviving rank deadlocked on the dead peer", backend.name)
		}
		var got error
		for i := 0; i < k; i++ {
			if err := <-errsCh; err != nil {
				got = err
			}
		}
		if got == nil {
			t.Fatalf("%s: rank 0 trained through a dead peer without error", backend.name)
		}
	}
}
