package core

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/partition"
)

// The multi-process smoke test re-execs this test binary once per rank (the
// standard helper-process pattern), so the 4 ranks are genuine OS processes
// exchanging frames over real loopback sockets — the deployment shape the
// TCP transport exists for. Each rank independently regenerates the dataset
// and partitioning from seeds, trains for mpEpochs, and prints a hash of its
// final weights plus its per-epoch loss contributions; the parent asserts
// every rank converged to identical bits and that those bits match an
// in-process channel-backend run of the same configuration.

const (
	mpEnvRank  = "BNSGCN_MP_RANK"
	mpEnvWorld = "BNSGCN_MP_WORLD"
	mpEnvAddr  = "BNSGCN_MP_ADDR"
	mpEnvSched = "BNSGCN_MP_SCHED"
	mpWorld    = 4
	mpEpochs   = 3
)

func mpDataset(t testing.TB) (*datagen.Dataset, *Topology) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "mp-test", Nodes: 400, Communities: 4, AvgDegree: 8,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 8,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 123,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, mpWorld)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, mpWorld)
	if err != nil {
		t.Fatal(err)
	}
	return ds, topo
}

func mpConfig(sched Schedule) ParallelConfig {
	return ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 9, Schedule: sched}
}

func mpParamHash(m *Model) string {
	h := sha256.New()
	for _, v := range m.ParamVector() {
		binary.Write(h, binary.LittleEndian, math.Float32bits(v))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestMultiProcessHelper is the per-rank body; it only runs when re-execed
// by TestMultiProcessLoopback and skips otherwise.
func TestMultiProcessHelper(t *testing.T) {
	rankStr := os.Getenv(mpEnvRank)
	if rankStr == "" {
		t.Skip("helper process for TestMultiProcessLoopback")
	}
	rank, _ := strconv.Atoi(rankStr)
	world, _ := strconv.Atoi(os.Getenv(mpEnvWorld))

	ds, topo := mpDataset(t)
	schedNum, _ := strconv.Atoi(os.Getenv(mpEnvSched))
	rt, err := NewRankTrainer(ds, topo, mpConfig(Schedule(schedNum)), rank)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := comm.DialTCP(comm.TCPConfig{
		Rank: rank, World: world, Rendezvous: os.Getenv(mpEnvAddr), Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorker(tp)
	losses := make([]string, 0, mpEpochs)
	for e := 0; e < mpEpochs; e++ {
		st, err := rt.TrainEpoch(w)
		if err != nil {
			t.Fatal(err)
		}
		// Hex float64 bits: the parent re-sums contributions exactly.
		losses = append(losses, strconv.FormatUint(math.Float64bits(st.Loss), 16))
	}
	w.Barrier()
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("MP-RESULT rank=%d hash=%s losses=%s\n", rank, mpParamHash(rt.Model), strings.Join(losses, ","))
}

// TestMultiProcessLoopback is the smoke test CI runs race-enabled: 4 ranks
// as separate OS processes over real sockets must reproduce the in-process
// channel backend bit for bit (serialized schedule).
func TestMultiProcessLoopback(t *testing.T) { mpRun(t, ScheduleSerialized) }

// TestMultiProcessLoopbackOverlap runs the same smoke test with the default
// pipelined schedule in every rank process — the arrival-order halo drain
// over real sockets must still reproduce the in-process run bit for bit.
func TestMultiProcessLoopbackOverlap(t *testing.T) { mpRun(t, ScheduleOverlap) }

// TestMultiProcessLoopbackOverlapRank covers the rank-order pipelined drain
// across processes.
func TestMultiProcessLoopbackOverlapRank(t *testing.T) { mpRun(t, ScheduleOverlapRank) }

func mpRun(t *testing.T, sched Schedule) {
	if os.Getenv(mpEnvRank) != "" {
		t.Skip("already inside a helper process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// Reserve a rendezvous port. The listener is closed before the children
	// start, so there is a small reuse window; losing it fails loudly, not
	// silently.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	cmds := make([]*exec.Cmd, mpWorld)
	outs := make([]*bytes.Buffer, mpWorld)
	for r := 0; r < mpWorld; r++ {
		cmd := exec.CommandContext(ctx, exe, "-test.run=TestMultiProcessHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", mpEnvRank, r),
			fmt.Sprintf("%s=%d", mpEnvWorld, mpWorld),
			fmt.Sprintf("%s=%s", mpEnvAddr, addr),
			fmt.Sprintf("%s=%d", mpEnvSched, int(sched)),
		)
		outs[r] = &bytes.Buffer{}
		cmd.Stdout = outs[r]
		cmd.Stderr = outs[r]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds[r] = cmd
	}
	for r, cmd := range cmds {
		if err := cmd.Wait(); err != nil {
			t.Fatalf("rank %d process failed: %v\n%s", r, err, outs[r].String())
		}
	}

	hashes := make([]string, mpWorld)
	epochLoss := make([]float64, mpEpochs)
	for r := 0; r < mpWorld; r++ {
		sc := bufio.NewScanner(bytes.NewReader(outs[r].Bytes()))
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "MP-RESULT ") {
				continue
			}
			var rank int
			var hash, lossCSV string
			if _, err := fmt.Sscanf(line, "MP-RESULT rank=%d hash=%s losses=%s", &rank, &hash, &lossCSV); err != nil {
				t.Fatalf("rank %d: bad result line %q: %v", r, line, err)
			}
			hashes[rank] = hash
			for e, bits := range strings.Split(lossCSV, ",") {
				u, err := strconv.ParseUint(bits, 16, 64)
				if err != nil {
					t.Fatal(err)
				}
				epochLoss[e] += math.Float64frombits(u)
			}
		}
		if hashes[r] == "" {
			t.Fatalf("rank %d produced no MP-RESULT line:\n%s", r, outs[r].String())
		}
	}
	for r := 1; r < mpWorld; r++ {
		if hashes[r] != hashes[0] {
			t.Fatalf("replicas diverged across processes: rank 0 %s vs rank %d %s", hashes[0], r, hashes[r])
		}
	}

	// Reference run: same configuration, in-process channel backend.
	ds, topo := mpDataset(t)
	ref, err := NewParallelTrainer(ds, topo, mpConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < mpEpochs; e++ {
		if want := ref.TrainEpoch().Loss; want != epochLoss[e] {
			t.Fatalf("epoch %d: multi-process loss %.17g != in-process %.17g", e, epochLoss[e], want)
		}
	}
	if want := mpParamHash(ref.Models[0]); hashes[0] != want {
		t.Fatalf("multi-process weights %s != in-process weights %s", hashes[0], want)
	}
}
