package core

import (
	"bytes"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m1, err := NewModel(testModelConfig(), 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	cfg2 := testModelConfig()
	cfg2.Seed = 999 // different init, must be overwritten by load
	m2, err := NewModel(cfg2, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if MaxParamDiff(m1, m2) == 0 {
		t.Fatal("different seeds should differ before load")
	}
	if err := LoadCheckpoint(&buf, m2); err != nil {
		t.Fatal(err)
	}
	if d := MaxParamDiff(m1, m2); d != 0 {
		t.Fatalf("round trip changed weights by %v", d)
	}
}

func TestCheckpointRejectsArchMismatch(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 12, 6)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	gatCfg := ModelConfig{Arch: ArchGAT, Layers: 2, Hidden: 16, LR: 0.01, Seed: 1}
	m2, _ := NewModel(gatCfg, 12, 6)
	if err := LoadCheckpoint(&buf, m2); err == nil {
		t.Fatal("arch mismatch must error")
	}
}

func TestCheckpointRejectsDimMismatch(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 12, 6)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(testModelConfig(), 14, 6) // different input dim
	if err := LoadCheckpoint(&buf, m2); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m, _ := NewModel(testModelConfig(), 12, 6)
	if err := LoadCheckpoint(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), m); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 8, 4)
	path := t.TempDir() + "/model.ckpt"
	if err := SaveCheckpointFile(path, m1); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(testModelConfig(), 8, 4)
	for _, p := range m2.Params() {
		p.Zero()
	}
	if err := LoadCheckpointFile(path, m2); err != nil {
		t.Fatal(err)
	}
	if MaxParamDiff(m1, m2) != 0 {
		t.Fatal("file round trip changed weights")
	}
}

func TestCheckpointPreservesTrainedModel(t *testing.T) {
	// Save a trained model, load into a fresh one, verify identical logits.
	ds := testDataset(t, 30)
	full, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		full.TrainEpoch()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, full.Model); err != nil {
		t.Fatal(err)
	}
	restored, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(&buf, restored.Model); err != nil {
		t.Fatal(err)
	}
	a := full.Evaluate(ds.TestMask)
	b := restored.Evaluate(ds.TestMask)
	if a != b {
		t.Fatalf("restored model scores %v, original %v", b, a)
	}
}

func TestParamVectorLength(t *testing.T) {
	m, _ := NewModel(testModelConfig(), 12, 6)
	v := m.ParamVector()
	want := 0
	for _, p := range m.Params() {
		want += len(p.Data)
	}
	if len(v) != want {
		t.Fatalf("vector length %d, want %d", len(v), want)
	}
}
