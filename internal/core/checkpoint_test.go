package core

import (
	"bytes"
	"os"
	"testing"
)

func TestCheckpointRoundTrip(t *testing.T) {
	m1, err := NewModel(testModelConfig(), 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	cfg2 := testModelConfig()
	cfg2.Seed = 999 // different init, must be overwritten by load
	m2, err := NewModel(cfg2, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	if MaxParamDiff(m1, m2) == 0 {
		t.Fatal("different seeds should differ before load")
	}
	if err := LoadCheckpoint(&buf, m2); err != nil {
		t.Fatal(err)
	}
	if d := MaxParamDiff(m1, m2); d != 0 {
		t.Fatalf("round trip changed weights by %v", d)
	}
}

func TestCheckpointRejectsArchMismatch(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 12, 6)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	gatCfg := ModelConfig{Arch: ArchGAT, Layers: 2, Hidden: 16, LR: 0.01, Seed: 1}
	m2, _ := NewModel(gatCfg, 12, 6)
	if err := LoadCheckpoint(&buf, m2); err == nil {
		t.Fatal("arch mismatch must error")
	}
}

func TestCheckpointRejectsDimMismatch(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 12, 6)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, m1); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(testModelConfig(), 14, 6) // different input dim
	if err := LoadCheckpoint(&buf, m2); err == nil {
		t.Fatal("dim mismatch must error")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	m, _ := NewModel(testModelConfig(), 12, 6)
	if err := LoadCheckpoint(bytes.NewReader([]byte{1, 2, 3, 4, 5, 6, 7, 8}), m); err == nil {
		t.Fatal("garbage must error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	m1, _ := NewModel(testModelConfig(), 8, 4)
	path := t.TempDir() + "/model.ckpt"
	if err := SaveCheckpointFile(path, m1); err != nil {
		t.Fatal(err)
	}
	m2, _ := NewModel(testModelConfig(), 8, 4)
	for _, p := range m2.Params() {
		p.Zero()
	}
	if err := LoadCheckpointFile(path, m2); err != nil {
		t.Fatal(err)
	}
	if MaxParamDiff(m1, m2) != 0 {
		t.Fatal("file round trip changed weights")
	}
}

func TestCheckpointPreservesTrainedModel(t *testing.T) {
	// Save a trained model, load into a fresh one, verify identical logits.
	ds := testDataset(t, 30)
	full, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		full.TrainEpoch()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, full.Model); err != nil {
		t.Fatal(err)
	}
	restored, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(&buf, restored.Model); err != nil {
		t.Fatal(err)
	}
	a := full.Evaluate(ds.TestMask)
	b := restored.Evaluate(ds.TestMask)
	if a != b {
		t.Fatalf("restored model scores %v, original %v", b, a)
	}
}

func TestParamVectorLength(t *testing.T) {
	m, _ := NewModel(testModelConfig(), 12, 6)
	v := m.ParamVector()
	want := 0
	for _, p := range m.Params() {
		want += len(p.Data)
	}
	if len(v) != want {
		t.Fatalf("vector length %d, want %d", len(v), want)
	}
}

// TestTrainerCheckpointResumeEquivalence is the checkpoint satellite's
// acceptance test: training N epochs straight through must be bit-identical
// to training k epochs, saving every rank's full trainer state, loading it
// into freshly constructed trainers, and training the remaining N−k — same
// per-epoch losses, same final weights on every rank. The config exercises
// everything the trainer checkpoint has to carry: dropout on (mask RNG
// streams), p<1 (boundary-sampling RNG), and enough epochs that Adam's
// moments and bias-correction step are far from their initial state.
func TestTrainerCheckpointResumeEquivalence(t *testing.T) {
	ds := testDataset(t, 77)
	const k = 2
	const total, pre = 6, 3
	topo := testTopology(t, ds, k)
	mc := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 5}
	cfg := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 11}

	// Uninterrupted reference.
	ref, err := NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	refLoss := make([]float64, total)
	for e := 0; e < total; e++ {
		refLoss[e] = ref.TrainEpoch().Loss
	}

	// Interrupted run: k epochs, save every rank, resume into fresh
	// trainers (fresh workspaces, fresh transports — only the checkpoint
	// carries state across).
	interrupted, err := NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < pre; e++ {
		if got := interrupted.TrainEpoch().Loss; got != refLoss[e] {
			t.Fatalf("pre-save epoch %d: loss %.17g != reference %.17g", e, got, refLoss[e])
		}
	}
	bufs := make([]bytes.Buffer, k)
	for r := 0; r < k; r++ {
		if err := SaveTrainerCheckpoint(&bufs[r], interrupted.Ranks[r]); err != nil {
			t.Fatal(err)
		}
	}
	resumed, err := NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < k; r++ {
		if err := LoadTrainerCheckpoint(&bufs[r], resumed.Ranks[r]); err != nil {
			t.Fatal(err)
		}
		if got := resumed.Ranks[r].Epoch(); got != pre {
			t.Fatalf("rank %d resumed at epoch %d, want %d", r, got, pre)
		}
	}
	for e := pre; e < total; e++ {
		if got := resumed.TrainEpoch().Loss; got != refLoss[e] {
			t.Fatalf("resumed epoch %d: loss %.17g != reference %.17g", e, got, refLoss[e])
		}
	}
	for r := 0; r < k; r++ {
		if d := MaxParamDiff(ref.Models[r], resumed.Models[r]); d != 0 {
			t.Fatalf("rank %d: resumed weights diverged by %v", r, d)
		}
	}

	// Control: restoring only the weights into a *fresh* trainer — zeroed
	// Adam moments, bias-correction step back at 0, sampling and dropout
	// RNG streams back at their seeds — is what the old weights-only
	// checkpoint could do, and it must NOT reproduce the reference; if it
	// did, the extra state the trainer format carries would be dead weight
	// and this test vacuous.
	weightsOnly, err := NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < k; r++ {
		var wb bytes.Buffer
		if err := SaveCheckpoint(&wb, interrupted.Models[r]); err != nil {
			t.Fatal(err)
		}
		if err := LoadCheckpoint(bytes.NewReader(wb.Bytes()), weightsOnly.Models[r]); err != nil {
			t.Fatal(err)
		}
	}
	diverged := false
	for e := pre; e < total; e++ {
		if weightsOnly.TrainEpoch().Loss != refLoss[e] {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("weights-only restore reproduced the reference run; the resume-equivalence test is not exercising optimizer/RNG state")
	}
}

// TestTrainerCheckpointRejects pins the failure modes: weights-only files,
// trainer files fed to the model loader, wrong architecture, and garbage.
func TestTrainerCheckpointRejects(t *testing.T) {
	ds := testDataset(t, 78)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	var trainerBuf bytes.Buffer
	if err := SaveTrainerCheckpoint(&trainerBuf, rt); err != nil {
		t.Fatal(err)
	}
	if err := LoadCheckpoint(bytes.NewReader(trainerBuf.Bytes()), rt.Model); err == nil {
		t.Fatal("model loader must reject a trainer checkpoint")
	}

	var modelBuf bytes.Buffer
	if err := SaveCheckpoint(&modelBuf, rt.Model); err != nil {
		t.Fatal(err)
	}
	if err := LoadTrainerCheckpoint(bytes.NewReader(modelBuf.Bytes()), rt); err == nil {
		t.Fatal("trainer loader must reject a weights-only checkpoint")
	}

	gatCfg := cfg
	gatCfg.Model = ModelConfig{Arch: ArchGAT, Layers: 2, Hidden: 16, LR: 0.01, Seed: 1}
	gatRT, err := NewRankTrainer(ds, topo, gatCfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadTrainerCheckpoint(bytes.NewReader(trainerBuf.Bytes()), gatRT); err == nil {
		t.Fatal("trainer loader must reject an architecture mismatch")
	}

	if err := LoadTrainerCheckpoint(bytes.NewReader([]byte{1, 2, 3}), rt); err == nil {
		t.Fatal("trainer loader must reject garbage")
	}

	// A truncated file must fail WITHOUT touching live state: every matrix
	// read is staged, so a half-readable checkpoint cannot leave the
	// trainer half-restored.
	before := rt.Model.ParamVector()
	rngBefore := rt.strat.State()
	truncated := trainerBuf.Bytes()[:trainerBuf.Len()-7]
	if err := LoadTrainerCheckpoint(bytes.NewReader(truncated), rt); err == nil {
		t.Fatal("trainer loader must reject a truncated checkpoint")
	}
	after := rt.Model.ParamVector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("truncated load mutated weight %d: %v -> %v", i, before[i], after[i])
		}
	}
	if rt.strat.State() != rngBefore {
		t.Fatal("truncated load mutated the sampler RNG state")
	}
}

// TestTrainerCheckpointFileRoundTrip covers the file variants.
func TestTrainerCheckpointFileRoundTrip(t *testing.T) {
	ds := testDataset(t, 79)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trainer.ckpt"
	if err := SaveTrainerCheckpointFile(path, rt); err != nil {
		t.Fatal(err)
	}
	rt2, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	rt2.strat.SetState(999)
	if err := LoadTrainerCheckpointFile(path, rt2); err != nil {
		t.Fatal(err)
	}
	if rt2.strat.State() != rt.strat.State() {
		t.Fatal("file round trip lost the sampler RNG state")
	}
	if d := MaxParamDiff(rt.Model, rt2.Model); d != 0 {
		t.Fatalf("file round trip changed weights by %v", d)
	}
}

// TestTrainerCheckpointCorruptionRejected pins the three on-disk failure
// modes a crash mid-save can leave behind — a truncated file, a bit-flipped
// file, and a half-renamed save (only the .tmp exists) — and demands the
// loader and the verify scan reject all of them so recovery falls back a
// generation instead of resuming from garbage.
func TestTrainerCheckpointCorruptionRejected(t *testing.T) {
	ds := testDataset(t, 80)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := dir + "/good.bnst"
	if err := SaveTrainerCheckpointFile(good, rt); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrainerCheckpointFile(good); err != nil {
		t.Fatalf("intact checkpoint failed verification: %v", err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *RankTrainer {
		t.Helper()
		rt2, err := NewRankTrainer(ds, topo, cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		return rt2
	}

	// Truncated mid-stream: cut deep inside the Adam moments, far from any
	// length-prefixed boundary a shape check would catch.
	trunc := dir + "/trunc.bnst"
	if err := os.WriteFile(trunc, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrainerCheckpointFile(trunc); err == nil {
		t.Fatal("verify accepted a truncated checkpoint")
	}
	if err := LoadTrainerCheckpointFile(trunc, fresh()); err == nil {
		t.Fatal("loader accepted a truncated checkpoint")
	}

	// Single bit flip in the middle of the weight data: every shape and
	// length still parses, only the checksum can catch it.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/2] ^= 0x10
	flip := dir + "/flip.bnst"
	if err := os.WriteFile(flip, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrainerCheckpointFile(flip); err == nil {
		t.Fatal("verify accepted a bit-flipped checkpoint")
	}
	if err := LoadTrainerCheckpointFile(flip, fresh()); err == nil {
		t.Fatal("loader accepted a bit-flipped checkpoint")
	}

	// Half-renamed save: the crash happened between writing the .tmp and the
	// rename, so the final name never appeared. The generation scan must not
	// see the orphan .tmp as a checkpoint.
	half := dir + "/half.bnst"
	if err := os.WriteFile(half+".tmp", raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyTrainerCheckpointFile(half); err == nil {
		t.Fatal("verify accepted a checkpoint that was never renamed into place")
	}
	if err := LoadTrainerCheckpointFile(half, fresh()); err == nil {
		t.Fatal("loader accepted a checkpoint that was never renamed into place")
	}
}

// TestTrainerCheckpointSaveIsAtomic: an existing checkpoint under the final
// name must survive a failed re-save untouched (the write happens in a .tmp
// that only replaces it on success).
func TestTrainerCheckpointSaveIsAtomic(t *testing.T) {
	ds := testDataset(t, 81)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := dir + "/ckpt.bnst"
	if err := SaveTrainerCheckpointFile(path, rt); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Force the tmp create to fail: a directory is squatting on the name.
	if err := os.Mkdir(path+".tmp", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveTrainerCheckpointFile(path, rt); err == nil {
		t.Fatal("save over a blocked tmp path should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("failed re-save corrupted the existing checkpoint")
	}
	if err := VerifyTrainerCheckpointFile(path); err != nil {
		t.Fatalf("existing checkpoint no longer verifies: %v", err)
	}
}

// TestModelHydrationFromCheckpoints pins the serving-side loader: a model
// rebuilt from either checkpoint format's header alone — no pre-built model,
// dataset, or optimizer — must carry bit-identical weights to the source.
func TestModelHydrationFromCheckpoints(t *testing.T) {
	ds := testDataset(t, 82)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	weights := dir + "/model.bnsc"
	if err := SaveCheckpointFile(weights, rt.Model); err != nil {
		t.Fatal(err)
	}
	m, err := LoadModelFile(weights)
	if err != nil {
		t.Fatal(err)
	}
	if m.Config.Arch != rt.Model.Config.Arch || m.InDim != rt.Model.InDim || m.OutDim != rt.Model.OutDim {
		t.Fatalf("hydrated model is %s/%d->%d, source is %s/%d->%d",
			m.Config.Arch, m.InDim, m.OutDim, rt.Model.Config.Arch, rt.Model.InDim, rt.Model.OutDim)
	}
	if d := MaxParamDiff(rt.Model, m); d != 0 {
		t.Fatalf("weights-only hydration changed weights by %v", d)
	}

	trainer := dir + "/trainer.bnst"
	if err := SaveTrainerCheckpointFile(trainer, rt); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(trainer)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxParamDiff(rt.Model, m2); d != 0 {
		t.Fatalf("trainer-format hydration changed weights by %v", d)
	}
}

// TestModelHydrationRejectsCorruption: the serving loader must reject a
// damaged trainer checkpoint even though it discards the damaged sections —
// the trailing CRC covers the whole stream.
func TestModelHydrationRejectsCorruption(t *testing.T) {
	ds := testDataset(t, 83)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	good := dir + "/good.bnst"
	if err := SaveTrainerCheckpointFile(good, rt); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}

	// Bit flip deep in the optimizer section (last quarter of the file):
	// hydration discards those bytes, but must still notice them.
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)-64] ^= 0x01
	flip := dir + "/flip.bnst"
	if err := os.WriteFile(flip, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(flip); err == nil {
		t.Fatal("hydration accepted a checkpoint with a corrupt optimizer section")
	}

	trunc := dir + "/trunc.bnst"
	if err := os.WriteFile(trunc, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(trunc); err == nil {
		t.Fatal("hydration accepted a truncated checkpoint")
	}

	junk := dir + "/junk.bin"
	if err := os.WriteFile(junk, []byte("not a checkpoint at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(junk); err == nil {
		t.Fatal("hydration accepted garbage")
	}
}

// TestCheckpointSaveSyncsDirAfterRename pins the durability sequence of both
// save paths: file fsync before the rename, then a directory fsync AFTER the
// rename. Without the trailing directory sync a crash can lose the rename
// itself — the newest generation vanishes even though the save returned.
func TestCheckpointSaveSyncsDirAfterRename(t *testing.T) {
	ds := testDataset(t, 84)
	topo := testTopology(t, ds, 2)
	cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3}
	rt, err := NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var steps []string
	fsyncHook = func(step, path string) { steps = append(steps, step) }
	defer func() { fsyncHook = nil }()

	dir := t.TempDir()
	want := []string{"sync-file", "rename", "sync-dir"}

	steps = nil
	if err := SaveTrainerCheckpointFile(dir+"/t.bnst", rt); err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(want) {
		t.Fatalf("trainer save durability steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("trainer save durability steps = %v, want %v", steps, want)
		}
	}

	steps = nil
	if err := SaveCheckpointFile(dir+"/m.bnsc", rt.Model); err != nil {
		t.Fatal(err)
	}
	if len(steps) != len(want) {
		t.Fatalf("model save durability steps = %v, want %v", steps, want)
	}
	for i := range want {
		if steps[i] != want[i] {
			t.Fatalf("model save durability steps = %v, want %v", steps, want)
		}
	}
}
