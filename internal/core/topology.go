// Package core implements the paper's primary contribution: partition-
// parallel full-graph GCN training with random Boundary Node Sampling
// (BNS-GCN, Algorithm 1), together with the boundary-node analysis of
// Section 3.1 (communication volume Eq. 3, memory cost Eq. 4), a
// single-process reference trainer, and the empirical variance measurement
// of Section 3.3 / Appendix A.
package core

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Topology captures everything derived from a k-way partition assignment
// that partition-parallel training needs: inner node sets, boundary node
// sets (the remote nodes each partition must receive), and the pairwise
// send/receive alignment between partitions.
type Topology struct {
	K     int
	G     *graph.Graph
	Parts []int32 // global node -> part id

	Inner    [][]int32 // Inner[i]: global ids of partition i's inner nodes (sorted)
	Boundary [][]int32 // Boundary[i]: global ids of remote nodes partition i needs (sorted)

	// innerIndex[v] = local inner index of global node v within its owner.
	innerIndex []int32

	// Recv[i][j]: local halo indices (offsets into Boundary[i], i.e. local id
	// minus len(Inner[i])) of partition i's boundary nodes owned by j.
	// Send[j][i]: local inner indices in j of those same nodes, aligned
	// elementwise with Recv[i][j]. Send[j][i][x] is the inner node whose
	// features fill halo slot Recv[i][j][x].
	Recv [][][]int32
	Send [][][]int32
}

// BuildTopology validates parts and computes the partition topology.
func BuildTopology(g *graph.Graph, parts []int32, k int) (*Topology, error) {
	if len(parts) != g.N {
		return nil, fmt.Errorf("core: parts length %d != %d nodes", len(parts), g.N)
	}
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("core: node %d in invalid part %d", v, p)
		}
	}
	t := &Topology{K: k, G: g, Parts: parts}
	t.Inner = make([][]int32, k)
	for v := int32(0); v < int32(g.N); v++ {
		p := parts[v]
		t.Inner[p] = append(t.Inner[p], v)
	}
	t.innerIndex = make([]int32, g.N)
	for _, inner := range t.Inner {
		for idx, v := range inner {
			t.innerIndex[v] = int32(idx)
		}
	}

	// Boundary sets: for partition i, every remote neighbor of an inner node.
	t.Boundary = make([][]int32, k)
	seen := make(map[int32]bool)
	for i := 0; i < k; i++ {
		clear(seen)
		for _, v := range t.Inner[i] {
			for _, u := range g.Neighbors(v) {
				if parts[u] != int32(i) && !seen[u] {
					seen[u] = true
					t.Boundary[i] = append(t.Boundary[i], u)
				}
			}
		}
		sort.Slice(t.Boundary[i], func(a, b int) bool { return t.Boundary[i][a] < t.Boundary[i][b] })
	}

	// Pairwise aligned send/recv lists.
	t.Recv = make([][][]int32, k)
	t.Send = make([][][]int32, k)
	for i := 0; i < k; i++ {
		t.Recv[i] = make([][]int32, k)
		t.Send[i] = make([][]int32, k)
	}
	for i := 0; i < k; i++ {
		for haloIdx, v := range t.Boundary[i] {
			j := parts[v]
			t.Recv[i][j] = append(t.Recv[i][j], int32(haloIdx))
			t.Send[j][i] = append(t.Send[j][i], t.innerIndex[v])
		}
	}
	return t, nil
}

// InnerIndex returns the local inner index of global node v in its owner
// partition.
func (t *Topology) InnerIndex(v int32) int32 { return t.innerIndex[v] }

// CommVolume returns the paper's Eq. 3: the total number of boundary nodes
// summed over partitions, which equals the number of node features sent per
// layer per direction.
func (t *Topology) CommVolume() int64 {
	var vol int64
	for _, b := range t.Boundary {
		vol += int64(len(b))
	}
	return vol
}

// BoundaryRatios returns |Boundary[i]| / |Inner[i]| per partition — the
// quantity whose skew Table 1 and Figure 3 report.
func (t *Topology) BoundaryRatios() []float64 {
	out := make([]float64, t.K)
	for i := 0; i < t.K; i++ {
		if len(t.Inner[i]) > 0 {
			out[i] = float64(len(t.Boundary[i])) / float64(len(t.Inner[i]))
		}
	}
	return out
}

// MemoryCost returns the paper's Eq. 4 for one partition in bytes: each
// GraphSAGE layer with input dimension d stores 3·nIn + nBd feature rows
// (input features of inner+boundary nodes, aggregated features, and the
// concat half kept for backward), 4 bytes per float32. The fused
// aggregate-project engine actually stores less — it keeps only the
// aggregated half z instead of the full concat, 2·nIn + nBd rows — but the
// partitioner keeps the paper's accounting as a conservative bound.
func MemoryCost(nIn, nBd int, layerInputDims []int) int64 {
	var floats int64
	for _, d := range layerInputDims {
		floats += int64(3*nIn+nBd) * int64(d)
	}
	return floats * 4
}

// MemoryCosts returns Eq. 4 per partition for the given layer input
// dimensions, with the boundary set scaled by sampling rate p (the expected
// sampled boundary size under BNS).
func (t *Topology) MemoryCosts(layerInputDims []int, p float64) []int64 {
	out := make([]int64, t.K)
	for i := 0; i < t.K; i++ {
		nBd := int(float64(len(t.Boundary[i])) * p)
		out[i] = MemoryCost(len(t.Inner[i]), nBd, layerInputDims)
	}
	return out
}
