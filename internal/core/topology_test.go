package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

// pathGraph returns 0-1-2-3-4-5 split as {0,1,2} | {3,4,5}.
func pathTopology(t *testing.T) *Topology {
	t.Helper()
	b := graph.NewBuilder(6)
	for i := int32(0); i < 5; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	topo, err := BuildTopology(g, []int32{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyInnerSets(t *testing.T) {
	topo := pathTopology(t)
	if len(topo.Inner[0]) != 3 || len(topo.Inner[1]) != 3 {
		t.Fatalf("inner sizes %d/%d", len(topo.Inner[0]), len(topo.Inner[1]))
	}
	if topo.Inner[0][0] != 0 || topo.Inner[1][0] != 3 {
		t.Fatalf("inner contents %v %v", topo.Inner[0], topo.Inner[1])
	}
}

func TestTopologyBoundarySets(t *testing.T) {
	topo := pathTopology(t)
	// Partition 0 needs node 3 (neighbor of 2); partition 1 needs node 2.
	if len(topo.Boundary[0]) != 1 || topo.Boundary[0][0] != 3 {
		t.Fatalf("boundary[0] = %v", topo.Boundary[0])
	}
	if len(topo.Boundary[1]) != 1 || topo.Boundary[1][0] != 2 {
		t.Fatalf("boundary[1] = %v", topo.Boundary[1])
	}
	if topo.CommVolume() != 2 {
		t.Fatalf("volume = %d", topo.CommVolume())
	}
}

func TestTopologySendRecvAlignment(t *testing.T) {
	topo := pathTopology(t)
	// Partition 0 receives node 3 from partition 1 into halo slot 0;
	// partition 1 must send its inner index of node 3 (which is 0).
	if len(topo.Recv[0][1]) != 1 || topo.Recv[0][1][0] != 0 {
		t.Fatalf("recv[0][1] = %v", topo.Recv[0][1])
	}
	if len(topo.Send[1][0]) != 1 || topo.Send[1][0][0] != 0 {
		t.Fatalf("send[1][0] = %v", topo.Send[1][0])
	}
	// And symmetrically for node 2 (inner index 2 in partition 0).
	if len(topo.Send[0][1]) != 1 || topo.Send[0][1][0] != 2 {
		t.Fatalf("send[0][1] = %v", topo.Send[0][1])
	}
}

func TestTopologyRejectsBadInput(t *testing.T) {
	g := graph.NewBuilder(2).Build()
	if _, err := BuildTopology(g, []int32{0}, 2); err == nil {
		t.Fatal("short parts must error")
	}
	if _, err := BuildTopology(g, []int32{0, 7}, 2); err == nil {
		t.Fatal("invalid part id must error")
	}
}

// TestTopologyBoundaryIsExactlyRemoteNeighbors cross-checks boundary sets on
// a generated graph against a brute-force recomputation.
func TestTopologyBoundaryIsExactlyRemoteNeighbors(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "t", Nodes: 500, Communities: 5, AvgDegree: 8, IntraFrac: 0.7,
		FeatureDim: 4, TrainFrac: 0.5, ValFrac: 0.2, Seed: 3, StructureOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int32, ds.G.N)
	for v := range parts {
		parts[v] = int32(v % 4)
	}
	topo, err := BuildTopology(ds.G, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		want := map[int32]bool{}
		for v := int32(0); v < int32(ds.G.N); v++ {
			if parts[v] != int32(i) {
				continue
			}
			for _, u := range ds.G.Neighbors(v) {
				if parts[u] != int32(i) {
					want[u] = true
				}
			}
		}
		if len(want) != len(topo.Boundary[i]) {
			t.Fatalf("partition %d: %d boundary, want %d", i, len(topo.Boundary[i]), len(want))
		}
		for _, u := range topo.Boundary[i] {
			if !want[u] {
				t.Fatalf("partition %d: %d not a remote neighbor", i, u)
			}
		}
	}
	// Eq. 3 equals the sum of send-set sizes computed independently.
	var sendTotal int64
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			sendTotal += int64(len(topo.Send[i][j]))
		}
	}
	if sendTotal != topo.CommVolume() {
		t.Fatalf("send total %d != volume %d", sendTotal, topo.CommVolume())
	}
}

func TestMemoryCostFormula(t *testing.T) {
	// Eq. 4: (3·nIn + nBd)·d floats per layer, 4 bytes each.
	got := MemoryCost(100, 50, []int{10, 20})
	want := int64((3*100+50)*10+(3*100+50)*20) * 4
	if got != want {
		t.Fatalf("memory cost %d, want %d", got, want)
	}
}

func TestMemoryCostsScaleWithP(t *testing.T) {
	topo := pathTopology(t)
	full := topo.MemoryCosts([]int{8}, 1.0)
	none := topo.MemoryCosts([]int{8}, 0.0)
	for i := range full {
		if full[i] <= none[i] {
			t.Fatalf("partition %d: p=1 memory %d not above p=0 %d", i, full[i], none[i])
		}
	}
}

func TestBoundaryRatios(t *testing.T) {
	topo := pathTopology(t)
	r := topo.BoundaryRatios()
	if r[0] != 1.0/3 || r[1] != 1.0/3 {
		t.Fatalf("ratios %v", r)
	}
}
