package core

import "repro/internal/tensor"

// This file defines the pluggable epoch-sampling contract: boundary-node
// sampling (the paper's Algorithm 1) is one policy for shrinking the
// per-epoch subgraph each partition trains on, and the engine only ever
// needed three things from it — which rows participate, which halo slots to
// request from each peer, and how received features are rescaled. Strategy
// captures exactly that, so LADIES-style layer-wise importance sampling and
// GraphSAINT-style subgraph sampling (internal/sampling) ride the same
// pipelined halo overlap, fused kernels, and checkpoint/resume as BNS.
//
// The interface lives in core rather than internal/sampling because the
// sampling package already imports core (its MinibatchTrainer drives
// core.Model); sampling re-exports the names as type aliases so
// `sampling.Strategy` remains the canonical spelling for implementations.

// PartitionView is the static, read-only description of one rank's
// partition that a Strategy samples against. All slices alias trainer
// state and must not be mutated.
type PartitionView struct {
	Rank int
	K    int
	NIn  int // inner nodes, local rows [0, NIn)
	NBd  int // boundary slots, local rows [NIn, NIn+NBd)

	// RecvLists[j] lists, per peer j, the boundary-slot indices (offsets
	// into [0, NBd)) this rank would receive from j at p=1, in the canonical
	// position order the wire protocol aligns on. RecvLists[Rank] is nil.
	RecvLists [][]int32
	// SlotOwner[s] is the rank owning boundary slot s.
	SlotOwner []int32
	// Indptr/Indices are the full local adjacency over inner ∪ boundary
	// rows (only inner rows have neighbors), the p=1 epoch graph.
	Indptr  []int64
	Indices []int32
	// TrainMask marks the inner rows that carry training loss.
	TrainMask []bool
	// InnerDeg and SlotDeg are global degrees — the importance weights
	// degree-proportional strategies sample with.
	InnerDeg []int32
	SlotDeg  []int32
}

// Plan is one epoch's sampling decision. The engine allocates it once per
// trainer and hands it to the Strategy to fill; every slice keeps its
// capacity across epochs so a steady-state epoch plans without allocating.
type Plan struct {
	// Active[v] marks the local rows (inner and boundary-slot space,
	// length NIn+NBd) participating in this epoch's subgraph. Edges into
	// inactive rows are dropped; inactive inner rows also drop their
	// outgoing edges and leave the loss.
	Active []bool
	// Positions[j] holds the positions (indices into RecvLists[j]) whose
	// boundary features this rank requests from peer j, ascending. Must be
	// consistent with Active: position x of peer j is listed iff
	// Active[NIn+RecvLists[j][x]].
	Positions [][]int32
	// InvP is the uniform Horvitz–Thompson rescale applied to every
	// received boundary feature (and the matching backward payloads).
	// BNS sets 1/p; strategies without a uniform inclusion probability set
	// 1 and use HaloScale. The engine gates it to 1 for architectures that
	// normalize per-neighborhood (GAT).
	InvP float32
	// HaloScale, when non-nil, gives a per-boundary-slot receive rescale
	// (length NBd, indexed by slot) that replaces InvP — how an importance
	// sampler expresses per-node inclusion probabilities. nil = uniform.
	HaloScale []float32
	// DropsInner reports that some inner rows are inactive this epoch
	// (subgraph strategies). The engine then intersects the loss mask with
	// Active and keeps peer-requested rows computable.
	DropsInner bool
}

// Strategy produces the per-epoch local subgraph and halo demand for one
// rank. Implementations must be deterministic functions of their seed and
// call sequence: every rank runs its own instance, and bit-identical
// replicas across schedules and transports rely on PlanEpoch consuming its
// RNG identically regardless of timing. State/SetState expose the RNG
// position for trainer checkpoints, so resumed runs replan identically.
type Strategy interface {
	// Name identifies the strategy in checkpoints; resuming under a
	// different name is rejected.
	Name() string
	// Bind attaches the strategy to one rank's partition before training.
	// Called exactly once, before the first PlanEpoch.
	Bind(view *PartitionView)
	// PlanEpoch fills p (whose slices arrive with stale previous-epoch
	// contents) with this epoch's decision.
	PlanEpoch(p *Plan)
	// State and SetState round-trip the sampling RNG position.
	State() uint64
	SetState(s uint64)
}

// StrategyFactory builds one rank's Strategy instance. ParallelConfig
// carries a factory rather than an instance so every rank — including
// independently bootstrapped processes — constructs its own deterministic,
// rank-seeded stream.
type StrategyFactory func(rank int) Strategy

// bnsStrategy is the default Strategy: the paper's random boundary-node
// sampling, bit-identical to the engine's historically baked-in path — the
// RNG stream (one Float32 per full-list position, peers in ascending rank
// order), the float expressions (1/float32(p) rescale), and the resulting
// Plan reproduce the legacy epoch exactly, which the golden-signature test
// pins.
type bnsStrategy struct {
	p    float64
	seed uint64
	rng  *tensor.RNG
	view *PartitionView
}

// NewBNSStrategy returns the boundary-node sampling strategy at rate p for
// one rank, seeded exactly as the legacy engine seeded its sampling stream.
func NewBNSStrategy(p float64, sampleSeed uint64, rank int) Strategy {
	return &bnsStrategy{p: p, seed: sampleSeed + uint64(rank)*0x9e3779b9}
}

// Name implements Strategy.
func (s *bnsStrategy) Name() string { return "bns" }

// Bind implements Strategy.
func (s *bnsStrategy) Bind(view *PartitionView) {
	s.view = view
	s.rng = tensor.NewRNG(s.seed)
}

// State implements Strategy.
func (s *bnsStrategy) State() uint64 { return s.rng.State() }

// SetState implements Strategy.
func (s *bnsStrategy) SetState(st uint64) { s.rng.SetState(st) }

// PlanEpoch implements Strategy: Algorithm 1 lines 4–6. Every inner row is
// active; each boundary position is kept independently with probability p,
// drawing one Float32 per position with peers visited in ascending rank
// order — the exact RNG consumption order of the legacy engine.
func (s *bnsStrategy) PlanEpoch(plan *Plan) {
	v := s.view
	p32 := float32(s.p)
	for i := range plan.Active {
		plan.Active[i] = i < v.NIn
	}
	for j := 0; j < v.K; j++ {
		if j == v.Rank {
			continue
		}
		full := v.RecvLists[j]
		pos := plan.Positions[j][:0]
		switch {
		case s.p >= 1:
			pos = pos[:len(full)]
			for x := range pos {
				pos[x] = int32(x)
			}
		case s.p <= 0:
			// nothing sampled
		default:
			for x := range full {
				if s.rng.Float32() < p32 {
					pos = append(pos, int32(x))
				}
			}
		}
		plan.Positions[j] = pos
		for _, x := range pos {
			plan.Active[v.NIn+int(full[x])] = true
		}
	}
	plan.InvP = 1
	if s.p > 0 {
		plan.InvP = 1 / float32(s.p)
	}
	plan.HaloScale = nil
	plan.DropsInner = false
}
