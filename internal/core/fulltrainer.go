package core

import (
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// FullTrainer trains a model on the whole graph in a single process — the
// exact full-graph reference that BNS-GCN with p=1 must match, and the
// substrate the sampling-based baselines (Tables 4, 5, 11) run on.
type FullTrainer struct {
	DS     *datagen.Dataset
	Model  *Model
	Opt    optim.Optimizer
	invDeg []float32
}

// NewFullTrainer builds the reference trainer with an Adam optimizer. The
// full graph is static, so its aggregation plan is built once and installed
// on the model here.
func NewFullTrainer(ds *datagen.Dataset, cfg ModelConfig) (*FullTrainer, error) {
	model, err := NewModel(cfg, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return nil, err
	}
	model.SetAgg(graph.NewAggIndex(ds.G))
	return &FullTrainer{
		DS:     ds,
		Model:  model,
		Opt:    optim.NewAdam(cfg.LR),
		invDeg: nn.InvDegrees(ds.G),
	}, nil
}

// Forward runs the model over the full graph and returns logits for every
// node. train enables dropout.
func (t *FullTrainer) Forward(train bool) *tensor.Matrix {
	h := t.DS.Features
	for l, layer := range t.Model.LayersL {
		h = t.Model.Dropouts[l].Forward(h, train)
		h = layer.Forward(t.DS.G, h, t.DS.G.N, t.invDeg)
	}
	return h
}

// backwardFrom propagates dLogits through the model, accumulating parameter
// gradients.
func (t *FullTrainer) backwardFrom(dLogits *tensor.Matrix) {
	d := dLogits
	for l := len(t.Model.LayersL) - 1; l >= 0; l-- {
		d = t.Model.LayersL[l].Backward(d)
		d = t.Model.Dropouts[l].Backward(d)
	}
}

// TrainEpoch runs one full-graph training step and returns the train loss.
func (t *FullTrainer) TrainEpoch() float64 {
	logits := t.Forward(true)
	loss, dLogits := Loss(t.DS, logits, t.DS.Labels, t.DS.LabelMatrix, t.DS.TrainMask, 0)
	t.Model.ZeroGrad()
	t.backwardFrom(dLogits)
	t.Opt.Step(t.Model.Params(), t.Model.Grads())
	return loss
}

// Evaluate returns the score (accuracy or micro-F1) on the given mask using
// exact full-graph inference.
func (t *FullTrainer) Evaluate(mask []bool) float64 {
	logits := t.Forward(false)
	return Score(t.DS, logits, mask)
}

// Score computes the dataset-appropriate metric over masked rows of logits.
func Score(ds *datagen.Dataset, logits *tensor.Matrix, mask []bool) float64 {
	if ds.MultiLabel {
		return metrics.MicroF1(logits, ds.LabelMatrix, mask)
	}
	return metrics.Accuracy(logits, ds.Labels, mask)
}
