package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Checkpoint format: magic, config header, then each parameter matrix as
// (rows, cols, float32 data), little-endian. The architecture is stored so a
// mismatched load fails loudly instead of silently misassigning weights.

const ckptMagic = uint32(0x424E5343) // "BNSC"

// SaveCheckpoint writes the model's configuration and parameters to w.
func SaveCheckpoint(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, ckptMagic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	header := []int64{
		int64(len(m.Config.Arch)),
		int64(m.Config.Layers),
		int64(m.Config.Hidden),
		int64(m.InDim),
		int64(m.OutDim),
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if _, err := bw.WriteString(string(m.Config.Arch)); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	for i, p := range params {
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Rows)); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Cols)); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads parameters written by SaveCheckpoint into m, which
// must have the same architecture and dimensions.
func LoadCheckpoint(r io.Reader, m *Model) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	if magic != ckptMagic {
		return fmt.Errorf("core: bad checkpoint magic %#x", magic)
	}
	header := make([]int64, 5)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	archBytes := make([]byte, header[0])
	if _, err := io.ReadFull(br, archBytes); err != nil {
		return fmt.Errorf("core: checkpoint arch: %w", err)
	}
	if Arch(archBytes) != m.Config.Arch || int(header[1]) != m.Config.Layers ||
		int(header[2]) != m.Config.Hidden || int(header[3]) != m.InDim || int(header[4]) != m.OutDim {
		return fmt.Errorf("core: checkpoint is %s/%d layers/%d hidden/%d->%d, model is %s/%d/%d/%d->%d",
			archBytes, header[1], header[2], header[3], header[4],
			m.Config.Arch, m.Config.Layers, m.Config.Hidden, m.InDim, m.OutDim)
	}
	var nParams int64
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return err
	}
	params := m.Params()
	if int(nParams) != len(params) {
		return fmt.Errorf("core: checkpoint has %d params, model has %d", nParams, len(params))
	}
	for i, p := range params {
		var rows, cols int64
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
		if int(rows) != p.Rows || int(cols) != p.Cols {
			return fmt.Errorf("core: checkpoint param %d is %dx%d, model expects %dx%d", i, rows, cols, p.Rows, p.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint param %d: %w", i, err)
		}
	}
	return nil
}

// SaveCheckpointFile writes a checkpoint to path.
func SaveCheckpointFile(path string, m *Model) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpointFile loads a checkpoint from path into m.
func LoadCheckpointFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCheckpoint(f, m)
}

// ParamVector flattens all parameters into one float32 slice (a copy),
// useful for comparing replicas in tests and tools.
func (m *Model) ParamVector() []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// MaxParamDiff returns the largest absolute elementwise difference between
// the parameters of two same-shaped models.
func MaxParamDiff(a, b *Model) float32 {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		panic("core: MaxParamDiff across different architectures")
	}
	var mx float32
	for i := range pa {
		for j := range pa[i].Data {
			d := pa[i].Data[j] - pb[i].Data[j]
			if d < 0 {
				d = -d
			}
			if d > mx {
				mx = d
			}
		}
	}
	return mx
}
