package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/optim"
	"repro/internal/tensor"
)

// Checkpoint formats, both little-endian and versioned by magic:
//
//   - Model checkpoint ("BNSC", SaveCheckpoint/LoadCheckpoint): config
//     header, then each parameter matrix as (rows, cols, float32 data).
//     Weights only — the right artifact for inference and evaluation.
//   - Trainer checkpoint ("BNST" + format version,
//     SaveTrainerCheckpoint/LoadTrainerCheckpoint): the model section plus
//     everything a bit-exact resume needs — Adam's step count and moment
//     matrices, the epoch-sampling strategy's identity and RNG position,
//     every dropout layer's mask RNG position, and the epoch counter. A
//     weights-only checkpoint silently resets the optimizer moments and the
//     RNG streams, so a resumed run diverges from an uninterrupted one; the
//     trainer format exists so that train(N) ≡ train(k) + save + load +
//     train(N−k), bit for bit (the resume-equivalence test pins this).
//     Version 2 appended a CRC-32 (IEEE) of every preceding byte, so a torn
//     or bit-rotted file is rejected outright and an elastic recovery falls
//     back a generation instead of resuming from garbage. Version 3
//     replaced the bare sampling-RNG word with the strategy name plus its
//     RNG state: resuming under a different strategy than the one that
//     produced the checkpoint would silently train a different estimator,
//     so a name mismatch is rejected with both names spelled out.
//
// The architecture and every matrix shape are stored so a mismatched load
// fails loudly instead of silently misassigning state.

const (
	ckptMagic        = uint32(0x424E5343) // "BNSC": model weights only
	ckptTrainerMagic = uint32(0x424E5354) // "BNST": full resumable trainer state
	ckptTrainerVer   = uint32(3)
	optKindAdam      = uint32(1)
)

// crcWriter hashes everything written through it. It sits ABOVE the
// buffered writer so the checksum covers exactly the bytes the format
// defines, and the trailing CRC itself is written to the underlying writer
// unhashed.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader hashes everything read through it. It must wrap the
// bufio.Reader (not the raw file): hashing below the buffer would fold the
// read-ahead — including the stored CRC bytes themselves — into the sum.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// SaveCheckpoint writes the model's configuration and parameters to w.
func SaveCheckpoint(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, ckptMagic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	if err := writeModelSection(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads parameters written by SaveCheckpoint into m, which
// must have the same architecture and dimensions.
func LoadCheckpoint(r io.Reader, m *Model) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	if magic == ckptTrainerMagic {
		return fmt.Errorf("core: this is a trainer checkpoint; load it with LoadTrainerCheckpoint")
	}
	if magic != ckptMagic {
		return fmt.Errorf("core: bad checkpoint magic %#x", magic)
	}
	return readModelSection(br, m)
}

// writeModelSection writes the config header, arch string, and parameter
// matrices — the section both checkpoint formats share. It takes a plain
// io.Writer so the trainer format can thread a crcWriter through it.
func writeModelSection(bw io.Writer, m *Model) error {
	header := []int64{
		int64(len(m.Config.Arch)),
		int64(m.Config.Layers),
		int64(m.Config.Hidden),
		int64(m.InDim),
		int64(m.OutDim),
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if _, err := io.WriteString(bw, string(m.Config.Arch)); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	return writeMats(bw, params, "param")
}

// readModelSection validates the config header against m and reads the
// parameter matrices into it.
func readModelSection(br io.Reader, m *Model) error {
	if err := readModelHeader(br, m); err != nil {
		return err
	}
	return readMats(br, m.Params(), "param")
}

// ckptHeader is the decoded config header of a model section: everything
// needed to rebuild the model architecture without a pre-built Model.
type ckptHeader struct {
	arch           Arch
	layers, hidden int
	inDim, outDim  int
	nParams        int
}

// readHeaderRaw decodes the config header without validating it against any
// model, so a checkpoint can describe the model to build (LoadModelFromCheckpoint)
// as well as be checked against an existing one (readModelHeader).
func readHeaderRaw(br io.Reader) (ckptHeader, error) {
	var h ckptHeader
	header := make([]int64, 5)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return h, fmt.Errorf("core: checkpoint header: %w", err)
	}
	if header[0] < 0 || header[0] > 64 {
		return h, fmt.Errorf("core: checkpoint arch name length %d", header[0])
	}
	archBytes := make([]byte, header[0])
	if _, err := io.ReadFull(br, archBytes); err != nil {
		return h, fmt.Errorf("core: checkpoint arch: %w", err)
	}
	h.arch = Arch(archBytes)
	h.layers, h.hidden = int(header[1]), int(header[2])
	h.inDim, h.outDim = int(header[3]), int(header[4])
	var nParams int64
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return h, err
	}
	if nParams < 0 || nParams > 1<<20 {
		return h, fmt.Errorf("core: checkpoint parameter count %d", nParams)
	}
	h.nParams = int(nParams)
	return h, nil
}

// readModelHeader validates the config header and parameter count against m
// without touching any weights.
func readModelHeader(br io.Reader, m *Model) error {
	h, err := readHeaderRaw(br)
	if err != nil {
		return err
	}
	if h.arch != m.Config.Arch || h.layers != m.Config.Layers ||
		h.hidden != m.Config.Hidden || h.inDim != m.InDim || h.outDim != m.OutDim {
		return fmt.Errorf("core: checkpoint is %s/%d layers/%d hidden/%d->%d, model is %s/%d/%d/%d->%d",
			h.arch, h.layers, h.hidden, h.inDim, h.outDim,
			m.Config.Arch, m.Config.Layers, m.Config.Hidden, m.InDim, m.OutDim)
	}
	if h.nParams != len(m.Params()) {
		return fmt.Errorf("core: checkpoint has %d params, model has %d", h.nParams, len(m.Params()))
	}
	return nil
}

// modelFromHeader builds a freshly initialized model with the architecture a
// checkpoint header describes. Dropout is zero and the learning rate a
// placeholder: the hydrated model is for inference, not training.
func modelFromHeader(h ckptHeader) (*Model, error) {
	cfg := ModelConfig{Arch: h.arch, Layers: h.layers, Hidden: h.hidden, LR: 0.01, Seed: 0}
	m, err := NewModel(cfg, h.inDim, h.outDim)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint header describes an unbuildable model: %w", err)
	}
	if h.nParams != len(m.Params()) {
		return nil, fmt.Errorf("core: checkpoint has %d params, %s/%d layers model has %d",
			h.nParams, h.arch, h.layers, len(m.Params()))
	}
	return m, nil
}

// writeMats writes each matrix as (rows, cols, data).
func writeMats(bw io.Writer, mats []*tensor.Matrix, what string) error {
	for i, p := range mats {
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Rows)); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Cols)); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
	}
	return nil
}

// readMats reads matrices written by writeMats into mats, validating shapes.
func readMats(br io.Reader, mats []*tensor.Matrix, what string) error {
	for i, p := range mats {
		var rows, cols int64
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if int(rows) != p.Rows || int(cols) != p.Cols {
			return fmt.Errorf("core: checkpoint %s %d is %dx%d, model expects %dx%d", what, i, rows, cols, p.Rows, p.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
	}
	return nil
}

// SaveTrainerCheckpoint writes rank rt's full resumable training state: the
// model section plus the optimizer moments and step count, the epoch-sampling
// strategy's name and RNG position, each dropout layer's mask RNG position,
// and the completed-epoch counter. In a k-rank run every rank saves its own
// checkpoint (states differ per rank: sampling streams are rank-seeded and
// dropout streams advance with local row counts).
func SaveTrainerCheckpoint(w io.Writer, rt *RankTrainer) error {
	adam, ok := rt.opt.(*optim.Adam)
	if !ok {
		return fmt.Errorf("core: trainer checkpoint supports Adam, trainer uses %T", rt.opt)
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, ckptTrainerMagic); err != nil {
		return fmt.Errorf("core: trainer checkpoint magic: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, ckptTrainerVer); err != nil {
		return fmt.Errorf("core: trainer checkpoint version: %w", err)
	}
	if err := writeModelSection(cw, rt.Model); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(rt.epoch)); err != nil {
		return err
	}
	name := rt.strat.Name()
	if err := binary.Write(cw, binary.LittleEndian, int64(len(name))); err != nil {
		return err
	}
	if _, err := io.WriteString(cw, name); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, rt.strat.State()); err != nil {
		return err
	}
	drops := rt.Model.Dropouts
	if err := binary.Write(cw, binary.LittleEndian, int64(len(drops))); err != nil {
		return err
	}
	for _, d := range drops {
		if err := binary.Write(cw, binary.LittleEndian, d.RNGState()); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, optKindAdam); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(adam.StepCount())); err != nil {
		return err
	}
	m, v := adam.Moments(rt.Model.Params())
	if err := writeMats(cw, m, "adam.m"); err != nil {
		return err
	}
	if err := writeMats(cw, v, "adam.v"); err != nil {
		return err
	}
	// Trailing checksum of everything above, written unhashed.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return fmt.Errorf("core: trainer checkpoint checksum: %w", err)
	}
	return bw.Flush()
}

// LoadTrainerCheckpoint restores state written by SaveTrainerCheckpoint
// into rt, which must have the same architecture, dimensions, and
// optimizer kind. After a successful load the trainer continues exactly
// where the saved one stopped: train(N) ≡ train(k) + save/load + train(N−k).
func LoadTrainerCheckpoint(r io.Reader, rt *RankTrainer) error {
	adam, ok := rt.opt.(*optim.Adam)
	if !ok {
		return fmt.Errorf("core: trainer checkpoint supports Adam, trainer uses %T", rt.opt)
	}
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic, ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: trainer checkpoint magic: %w", err)
	}
	if magic == ckptMagic {
		return fmt.Errorf("core: this is a weights-only checkpoint; it cannot resume training (no optimizer or RNG state) — load it with LoadCheckpoint")
	}
	if magic != ckptTrainerMagic {
		return fmt.Errorf("core: bad trainer checkpoint magic %#x", magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("core: trainer checkpoint version: %w", err)
	}
	if ver != ckptTrainerVer {
		return fmt.Errorf("core: trainer checkpoint version %d, this build reads %d", ver, ckptTrainerVer)
	}
	// Stage every matrix read so a truncated or corrupt file cannot leave a
	// half-restored trainer: the live weights and moments are only written
	// after the whole stream has been read, checksummed, and validated.
	params := rt.Model.Params()
	if err := readModelHeader(cr, rt.Model); err != nil {
		return err
	}
	stageParams := stageLike(params)
	if err := readMats(cr, stageParams, "param"); err != nil {
		return err
	}
	var epoch int64
	if err := binary.Read(cr, binary.LittleEndian, &epoch); err != nil {
		return err
	}
	stratName, err := readStrategyName(cr)
	if err != nil {
		return err
	}
	if stratName != rt.strat.Name() {
		return fmt.Errorf("core: trainer checkpoint was written by sampling strategy %q, this trainer runs %q — resuming would silently switch estimators; restart with the original strategy (or train fresh)", stratName, rt.strat.Name())
	}
	var stratState uint64
	if err := binary.Read(cr, binary.LittleEndian, &stratState); err != nil {
		return err
	}
	var nDrops int64
	if err := binary.Read(cr, binary.LittleEndian, &nDrops); err != nil {
		return err
	}
	drops := rt.Model.Dropouts
	if int(nDrops) != len(drops) {
		return fmt.Errorf("core: trainer checkpoint has %d dropout streams, model has %d", nDrops, len(drops))
	}
	dropStates := make([]uint64, nDrops)
	if err := binary.Read(cr, binary.LittleEndian, dropStates); err != nil {
		return err
	}
	var optKind uint32
	if err := binary.Read(cr, binary.LittleEndian, &optKind); err != nil {
		return err
	}
	if optKind != optKindAdam {
		return fmt.Errorf("core: trainer checkpoint optimizer kind %d, trainer uses Adam (%d)", optKind, optKindAdam)
	}
	var stepCount int64
	if err := binary.Read(cr, binary.LittleEndian, &stepCount); err != nil {
		return err
	}
	stageM := stageLike(params)
	stageV := stageLike(params)
	if err := readMats(cr, stageM, "adam.m"); err != nil {
		return err
	}
	if err := readMats(cr, stageV, "adam.v"); err != nil {
		return err
	}
	// The stored CRC is read from the buffered reader directly — it is not
	// part of its own sum. Any truncation, bit flip, or torn write between
	// the magic and here lands in this comparison.
	var storedCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
		return fmt.Errorf("core: trainer checkpoint checksum: %w (truncated file?)", err)
	}
	if storedCRC != cr.crc {
		return fmt.Errorf("core: trainer checkpoint checksum mismatch (stored %#x, computed %#x): truncated or corrupted file", storedCRC, cr.crc)
	}

	// Every read succeeded; commit the whole state at once.
	for i, p := range params {
		copy(p.Data, stageParams[i].Data)
	}
	m, v := adam.Moments(params)
	for i := range m {
		copy(m[i].Data, stageM[i].Data)
		copy(v[i].Data, stageV[i].Data)
	}
	rt.epoch = int(epoch)
	rt.strat.SetState(stratState)
	for i, d := range drops {
		d.SetRNGState(dropStates[i])
	}
	adam.SetStepCount(int(stepCount))
	return nil
}

// readStrategyName decodes the length-prefixed strategy name of the v3
// trainer format, bounding the length so a corrupt word cannot trigger a
// giant allocation before the CRC check is even reached.
func readStrategyName(r io.Reader) (string, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("core: trainer checkpoint strategy name: %w", err)
	}
	if n < 0 || n > 64 {
		return "", fmt.Errorf("core: trainer checkpoint strategy name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("core: trainer checkpoint strategy name: %w", err)
	}
	return string(buf), nil
}

// stageLike returns scratch matrices shaped like mats, used to stage
// checkpoint reads before committing them to live state.
func stageLike(mats []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(mats))
	for i, p := range mats {
		out[i] = tensor.New(p.Rows, p.Cols)
	}
	return out
}

// LoadModelFromCheckpoint builds a model directly from a checkpoint stream,
// reading the architecture from the config header instead of requiring a
// pre-built model — what an inference server needs to hydrate weights from
// disk without a dataset, optimizer, or live transport. Both formats load:
// a weights-only checkpoint ("BNSC") as-is, and a trainer checkpoint
// ("BNST") by taking its model section, draining the resume-only state
// (optimizer moments, RNG positions), and verifying the trailing CRC so a
// torn or bit-rotted file is rejected rather than served.
func LoadModelFromCheckpoint(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("core: checkpoint magic: %w", err)
	}
	switch magic {
	case ckptMagic:
		h, err := readHeaderRaw(cr)
		if err != nil {
			return nil, err
		}
		m, err := modelFromHeader(h)
		if err != nil {
			return nil, err
		}
		if err := readMats(cr, m.Params(), "param"); err != nil {
			return nil, err
		}
		return m, nil
	case ckptTrainerMagic:
		var ver uint32
		if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
			return nil, fmt.Errorf("core: trainer checkpoint version: %w", err)
		}
		if ver != ckptTrainerVer {
			return nil, fmt.Errorf("core: trainer checkpoint version %d, this build reads %d", ver, ckptTrainerVer)
		}
		h, err := readHeaderRaw(cr)
		if err != nil {
			return nil, err
		}
		m, err := modelFromHeader(h)
		if err != nil {
			return nil, err
		}
		if err := readMats(cr, m.Params(), "param"); err != nil {
			return nil, err
		}
		// Drain the resume-only state so the checksum covers the whole
		// stream: a server must not trust weights out of a corrupt file just
		// because the damage sits in the optimizer section.
		var epoch int64
		var stratState uint64
		var nDrops int64
		if err := binary.Read(cr, binary.LittleEndian, &epoch); err != nil {
			return nil, err
		}
		if _, err := readStrategyName(cr); err != nil {
			return nil, err
		}
		if err := binary.Read(cr, binary.LittleEndian, &stratState); err != nil {
			return nil, err
		}
		if err := binary.Read(cr, binary.LittleEndian, &nDrops); err != nil {
			return nil, err
		}
		if int(nDrops) != len(m.Dropouts) {
			return nil, fmt.Errorf("core: trainer checkpoint has %d dropout streams, %d-layer model implies %d", nDrops, h.layers, len(m.Dropouts))
		}
		dropStates := make([]uint64, nDrops)
		if err := binary.Read(cr, binary.LittleEndian, dropStates); err != nil {
			return nil, err
		}
		var optKind uint32
		if err := binary.Read(cr, binary.LittleEndian, &optKind); err != nil {
			return nil, err
		}
		if optKind != optKindAdam {
			return nil, fmt.Errorf("core: trainer checkpoint optimizer kind %d, want Adam (%d)", optKind, optKindAdam)
		}
		var stepCount int64
		if err := binary.Read(cr, binary.LittleEndian, &stepCount); err != nil {
			return nil, err
		}
		discard := stageLike(m.Params())
		if err := readMats(cr, discard, "adam.m"); err != nil {
			return nil, err
		}
		if err := readMats(cr, discard, "adam.v"); err != nil {
			return nil, err
		}
		var storedCRC uint32
		if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
			return nil, fmt.Errorf("core: trainer checkpoint checksum: %w (truncated file?)", err)
		}
		if storedCRC != cr.crc {
			return nil, fmt.Errorf("core: trainer checkpoint checksum mismatch (stored %#x, computed %#x): truncated or corrupted file", storedCRC, cr.crc)
		}
		return m, nil
	}
	return nil, fmt.Errorf("core: bad checkpoint magic %#x", magic)
}

// LoadModelFile hydrates a model from a checkpoint file of either format.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := LoadModelFromCheckpoint(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// fsyncHook, when non-nil, observes the durability-critical steps of an
// atomic checkpoint save in order ("sync-file", "rename", "sync-dir") — a
// test seam pinning that the parent directory is synced AFTER the rename,
// without which a crash between rename and the directory flush can lose the
// newest generation entirely.
var fsyncHook func(step, path string)

// syncDir fsyncs a directory so a just-renamed entry survives a crash. The
// rename itself only orders the file's data (synced before rename) against
// the directory entry; the entry reaches disk only when the directory inode
// does. Filesystems that cannot fsync a directory report EINVAL/ENOTSUP,
// which is tolerated — there is nothing more userspace can do there.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// atomicWriteFile writes a file durably and atomically: the bytes land in
// path+".tmp", are fsynced, are renamed into place only once complete, and
// the parent directory is fsynced so the rename itself survives a crash. A
// crash at any point leaves either the previous file intact or a stray .tmp
// — never a torn file under the final name.
func atomicWriteFile(path string, write func(io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if fsyncHook != nil {
		fsyncHook("sync-file", tmp)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if fsyncHook != nil {
		fsyncHook("rename", path)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("core: sync checkpoint dir after rename: %w", err)
	}
	if fsyncHook != nil {
		fsyncHook("sync-dir", filepath.Dir(path))
	}
	return nil
}

// SaveTrainerCheckpointFile writes a trainer checkpoint to path atomically
// and durably (see atomicWriteFile) — which is what lets elastic recovery,
// and the inference server, trust the newest generation found on disk even
// across a crash right after the save returned.
func SaveTrainerCheckpointFile(path string, rt *RankTrainer) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		return SaveTrainerCheckpoint(w, rt)
	})
}

// VerifyTrainerCheckpointFile checks that path holds a complete, intact
// trainer checkpoint — right magic and version, and the trailing CRC
// matches the contents — without needing a model to load into. The elastic
// recovery scan uses it to pick the newest generation that is actually
// loadable, skipping torn or corrupt files.
func VerifyTrainerCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	// Minimum: magic + version + trailing CRC.
	if st.Size() < 12 {
		return fmt.Errorf("core: %s: %d bytes is too short to be a trainer checkpoint", path, st.Size())
	}
	br := bufio.NewReader(f)
	cr := &crcReader{r: br}
	var magic, ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != ckptTrainerMagic {
		return fmt.Errorf("core: %s: bad trainer checkpoint magic %#x", path, magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != ckptTrainerVer {
		return fmt.Errorf("core: %s: trainer checkpoint version %d, this build reads %d", path, ver, ckptTrainerVer)
	}
	if _, err := io.CopyN(io.Discard, cr, st.Size()-12); err != nil {
		return fmt.Errorf("core: %s: %w", path, err)
	}
	var storedCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
		return fmt.Errorf("core: %s: checksum: %w", path, err)
	}
	if storedCRC != cr.crc {
		return fmt.Errorf("core: %s: checksum mismatch (stored %#x, computed %#x): truncated or corrupted file", path, storedCRC, cr.crc)
	}
	return nil
}

// LoadTrainerCheckpointFile loads a trainer checkpoint from path into rt.
func LoadTrainerCheckpointFile(path string, rt *RankTrainer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadTrainerCheckpoint(f, rt)
}

// SaveCheckpointFile writes a weights-only checkpoint to path via the same
// durable tmp-fsync-rename-fsync dance as SaveTrainerCheckpointFile. (It
// previously skipped both the file and the directory fsync — a crash after
// return could lose the file or leave it torn under the final name.)
func SaveCheckpointFile(path string, m *Model) error {
	return atomicWriteFile(path, func(w io.Writer) error {
		return SaveCheckpoint(w, m)
	})
}

// LoadCheckpointFile loads a checkpoint from path into m.
func LoadCheckpointFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCheckpoint(f, m)
}

// ParamVector flattens all parameters into one float32 slice (a copy),
// useful for comparing replicas in tests and tools.
func (m *Model) ParamVector() []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// MaxParamDiff returns the largest absolute elementwise difference between
// the parameters of two same-shaped models.
func MaxParamDiff(a, b *Model) float32 {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		panic("core: MaxParamDiff across different architectures")
	}
	var mx float32
	for i := range pa {
		for j := range pa[i].Data {
			d := pa[i].Data[j] - pb[i].Data[j]
			if d < 0 {
				d = -d
			}
			if d > mx {
				mx = d
			}
		}
	}
	return mx
}
