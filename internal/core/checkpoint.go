package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/optim"
	"repro/internal/tensor"
)

// Checkpoint formats, both little-endian and versioned by magic:
//
//   - Model checkpoint ("BNSC", SaveCheckpoint/LoadCheckpoint): config
//     header, then each parameter matrix as (rows, cols, float32 data).
//     Weights only — the right artifact for inference and evaluation.
//   - Trainer checkpoint ("BNST" + format version,
//     SaveTrainerCheckpoint/LoadTrainerCheckpoint): the model section plus
//     everything a bit-exact resume needs — Adam's step count and moment
//     matrices, the boundary-sampling RNG position, every dropout layer's
//     mask RNG position, and the epoch counter. A weights-only checkpoint
//     silently resets the optimizer moments and the RNG streams, so a
//     resumed run diverges from an uninterrupted one; the trainer format
//     exists so that train(N) ≡ train(k) + save + load + train(N−k), bit
//     for bit (the resume-equivalence test pins this). Version 2 appends a
//     CRC-32 (IEEE) of every preceding byte, so a torn or bit-rotted file
//     is rejected outright and an elastic recovery falls back a generation
//     instead of resuming from garbage.
//
// The architecture and every matrix shape are stored so a mismatched load
// fails loudly instead of silently misassigning state.

const (
	ckptMagic        = uint32(0x424E5343) // "BNSC": model weights only
	ckptTrainerMagic = uint32(0x424E5354) // "BNST": full resumable trainer state
	ckptTrainerVer   = uint32(2)
	optKindAdam      = uint32(1)
)

// crcWriter hashes everything written through it. It sits ABOVE the
// buffered writer so the checksum covers exactly the bytes the format
// defines, and the trailing CRC itself is written to the underlying writer
// unhashed.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader hashes everything read through it. It must wrap the
// bufio.Reader (not the raw file): hashing below the buffer would fold the
// read-ahead — including the stored CRC bytes themselves — into the sum.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// SaveCheckpoint writes the model's configuration and parameters to w.
func SaveCheckpoint(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, ckptMagic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	if err := writeModelSection(bw, m); err != nil {
		return err
	}
	return bw.Flush()
}

// LoadCheckpoint reads parameters written by SaveCheckpoint into m, which
// must have the same architecture and dimensions.
func LoadCheckpoint(r io.Reader, m *Model) error {
	br := bufio.NewReader(r)
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: checkpoint magic: %w", err)
	}
	if magic == ckptTrainerMagic {
		return fmt.Errorf("core: this is a trainer checkpoint; load it with LoadTrainerCheckpoint")
	}
	if magic != ckptMagic {
		return fmt.Errorf("core: bad checkpoint magic %#x", magic)
	}
	return readModelSection(br, m)
}

// writeModelSection writes the config header, arch string, and parameter
// matrices — the section both checkpoint formats share. It takes a plain
// io.Writer so the trainer format can thread a crcWriter through it.
func writeModelSection(bw io.Writer, m *Model) error {
	header := []int64{
		int64(len(m.Config.Arch)),
		int64(m.Config.Layers),
		int64(m.Config.Hidden),
		int64(m.InDim),
		int64(m.OutDim),
	}
	if err := binary.Write(bw, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if _, err := io.WriteString(bw, string(m.Config.Arch)); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, int64(len(params))); err != nil {
		return err
	}
	return writeMats(bw, params, "param")
}

// readModelSection validates the config header against m and reads the
// parameter matrices into it.
func readModelSection(br io.Reader, m *Model) error {
	if err := readModelHeader(br, m); err != nil {
		return err
	}
	return readMats(br, m.Params(), "param")
}

// readModelHeader validates the config header and parameter count against m
// without touching any weights.
func readModelHeader(br io.Reader, m *Model) error {
	header := make([]int64, 5)
	if err := binary.Read(br, binary.LittleEndian, header); err != nil {
		return fmt.Errorf("core: checkpoint header: %w", err)
	}
	if header[0] < 0 || header[0] > 64 {
		return fmt.Errorf("core: checkpoint arch name length %d", header[0])
	}
	archBytes := make([]byte, header[0])
	if _, err := io.ReadFull(br, archBytes); err != nil {
		return fmt.Errorf("core: checkpoint arch: %w", err)
	}
	if Arch(archBytes) != m.Config.Arch || int(header[1]) != m.Config.Layers ||
		int(header[2]) != m.Config.Hidden || int(header[3]) != m.InDim || int(header[4]) != m.OutDim {
		return fmt.Errorf("core: checkpoint is %s/%d layers/%d hidden/%d->%d, model is %s/%d/%d/%d->%d",
			archBytes, header[1], header[2], header[3], header[4],
			m.Config.Arch, m.Config.Layers, m.Config.Hidden, m.InDim, m.OutDim)
	}
	var nParams int64
	if err := binary.Read(br, binary.LittleEndian, &nParams); err != nil {
		return err
	}
	if int(nParams) != len(m.Params()) {
		return fmt.Errorf("core: checkpoint has %d params, model has %d", nParams, len(m.Params()))
	}
	return nil
}

// writeMats writes each matrix as (rows, cols, data).
func writeMats(bw io.Writer, mats []*tensor.Matrix, what string) error {
	for i, p := range mats {
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Rows)); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Cols)); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Write(bw, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
	}
	return nil
}

// readMats reads matrices written by writeMats into mats, validating shapes.
func readMats(br io.Reader, mats []*tensor.Matrix, what string) error {
	for i, p := range mats {
		var rows, cols int64
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
		if int(rows) != p.Rows || int(cols) != p.Cols {
			return fmt.Errorf("core: checkpoint %s %d is %dx%d, model expects %dx%d", what, i, rows, cols, p.Rows, p.Cols)
		}
		if err := binary.Read(br, binary.LittleEndian, p.Data); err != nil {
			return fmt.Errorf("core: checkpoint %s %d: %w", what, i, err)
		}
	}
	return nil
}

// SaveTrainerCheckpoint writes rank rt's full resumable training state: the
// model section plus the optimizer moments and step count, the
// boundary-sampling RNG position, each dropout layer's mask RNG position,
// and the completed-epoch counter. In a k-rank run every rank saves its own
// checkpoint (states differ per rank: sampling streams are rank-seeded and
// dropout streams advance with local row counts).
func SaveTrainerCheckpoint(w io.Writer, rt *RankTrainer) error {
	adam, ok := rt.opt.(*optim.Adam)
	if !ok {
		return fmt.Errorf("core: trainer checkpoint supports Adam, trainer uses %T", rt.opt)
	}
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if err := binary.Write(cw, binary.LittleEndian, ckptTrainerMagic); err != nil {
		return fmt.Errorf("core: trainer checkpoint magic: %w", err)
	}
	if err := binary.Write(cw, binary.LittleEndian, ckptTrainerVer); err != nil {
		return fmt.Errorf("core: trainer checkpoint version: %w", err)
	}
	if err := writeModelSection(cw, rt.Model); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(rt.epoch)); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, rt.rng.State()); err != nil {
		return err
	}
	drops := rt.Model.Dropouts
	if err := binary.Write(cw, binary.LittleEndian, int64(len(drops))); err != nil {
		return err
	}
	for _, d := range drops {
		if err := binary.Write(cw, binary.LittleEndian, d.RNGState()); err != nil {
			return err
		}
	}
	if err := binary.Write(cw, binary.LittleEndian, optKindAdam); err != nil {
		return err
	}
	if err := binary.Write(cw, binary.LittleEndian, int64(adam.StepCount())); err != nil {
		return err
	}
	m, v := adam.Moments(rt.Model.Params())
	if err := writeMats(cw, m, "adam.m"); err != nil {
		return err
	}
	if err := writeMats(cw, v, "adam.v"); err != nil {
		return err
	}
	// Trailing checksum of everything above, written unhashed.
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return fmt.Errorf("core: trainer checkpoint checksum: %w", err)
	}
	return bw.Flush()
}

// LoadTrainerCheckpoint restores state written by SaveTrainerCheckpoint
// into rt, which must have the same architecture, dimensions, and
// optimizer kind. After a successful load the trainer continues exactly
// where the saved one stopped: train(N) ≡ train(k) + save/load + train(N−k).
func LoadTrainerCheckpoint(r io.Reader, rt *RankTrainer) error {
	adam, ok := rt.opt.(*optim.Adam)
	if !ok {
		return fmt.Errorf("core: trainer checkpoint supports Adam, trainer uses %T", rt.opt)
	}
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var magic, ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("core: trainer checkpoint magic: %w", err)
	}
	if magic == ckptMagic {
		return fmt.Errorf("core: this is a weights-only checkpoint; it cannot resume training (no optimizer or RNG state) — load it with LoadCheckpoint")
	}
	if magic != ckptTrainerMagic {
		return fmt.Errorf("core: bad trainer checkpoint magic %#x", magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return fmt.Errorf("core: trainer checkpoint version: %w", err)
	}
	if ver != ckptTrainerVer {
		return fmt.Errorf("core: trainer checkpoint version %d, this build reads %d", ver, ckptTrainerVer)
	}
	// Stage every matrix read so a truncated or corrupt file cannot leave a
	// half-restored trainer: the live weights and moments are only written
	// after the whole stream has been read, checksummed, and validated.
	params := rt.Model.Params()
	if err := readModelHeader(cr, rt.Model); err != nil {
		return err
	}
	stageParams := stageLike(params)
	if err := readMats(cr, stageParams, "param"); err != nil {
		return err
	}
	var epoch int64
	if err := binary.Read(cr, binary.LittleEndian, &epoch); err != nil {
		return err
	}
	var rngState uint64
	if err := binary.Read(cr, binary.LittleEndian, &rngState); err != nil {
		return err
	}
	var nDrops int64
	if err := binary.Read(cr, binary.LittleEndian, &nDrops); err != nil {
		return err
	}
	drops := rt.Model.Dropouts
	if int(nDrops) != len(drops) {
		return fmt.Errorf("core: trainer checkpoint has %d dropout streams, model has %d", nDrops, len(drops))
	}
	dropStates := make([]uint64, nDrops)
	if err := binary.Read(cr, binary.LittleEndian, dropStates); err != nil {
		return err
	}
	var optKind uint32
	if err := binary.Read(cr, binary.LittleEndian, &optKind); err != nil {
		return err
	}
	if optKind != optKindAdam {
		return fmt.Errorf("core: trainer checkpoint optimizer kind %d, trainer uses Adam (%d)", optKind, optKindAdam)
	}
	var stepCount int64
	if err := binary.Read(cr, binary.LittleEndian, &stepCount); err != nil {
		return err
	}
	stageM := stageLike(params)
	stageV := stageLike(params)
	if err := readMats(cr, stageM, "adam.m"); err != nil {
		return err
	}
	if err := readMats(cr, stageV, "adam.v"); err != nil {
		return err
	}
	// The stored CRC is read from the buffered reader directly — it is not
	// part of its own sum. Any truncation, bit flip, or torn write between
	// the magic and here lands in this comparison.
	var storedCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
		return fmt.Errorf("core: trainer checkpoint checksum: %w (truncated file?)", err)
	}
	if storedCRC != cr.crc {
		return fmt.Errorf("core: trainer checkpoint checksum mismatch (stored %#x, computed %#x): truncated or corrupted file", storedCRC, cr.crc)
	}

	// Every read succeeded; commit the whole state at once.
	for i, p := range params {
		copy(p.Data, stageParams[i].Data)
	}
	m, v := adam.Moments(params)
	for i := range m {
		copy(m[i].Data, stageM[i].Data)
		copy(v[i].Data, stageV[i].Data)
	}
	rt.epoch = int(epoch)
	rt.rng.SetState(rngState)
	for i, d := range drops {
		d.SetRNGState(dropStates[i])
	}
	adam.SetStepCount(int(stepCount))
	return nil
}

// stageLike returns scratch matrices shaped like mats, used to stage
// checkpoint reads before committing them to live state.
func stageLike(mats []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(mats))
	for i, p := range mats {
		out[i] = tensor.New(p.Rows, p.Cols)
	}
	return out
}

// SaveTrainerCheckpointFile writes a trainer checkpoint to path atomically:
// the bytes land in path+".tmp", are synced, and are renamed into place
// only once complete. A crash at any point leaves either the previous
// checkpoint intact or a stray .tmp file — never a torn file under the
// final name — which is what lets elastic recovery trust the newest
// generation it finds on disk.
func SaveTrainerCheckpointFile(path string, rt *RankTrainer) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveTrainerCheckpoint(f, rt); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// VerifyTrainerCheckpointFile checks that path holds a complete, intact
// trainer checkpoint — right magic and version, and the trailing CRC
// matches the contents — without needing a model to load into. The elastic
// recovery scan uses it to pick the newest generation that is actually
// loadable, skipping torn or corrupt files.
func VerifyTrainerCheckpointFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	// Minimum: magic + version + trailing CRC.
	if st.Size() < 12 {
		return fmt.Errorf("core: %s: %d bytes is too short to be a trainer checkpoint", path, st.Size())
	}
	br := bufio.NewReader(f)
	cr := &crcReader{r: br}
	var magic, ver uint32
	if err := binary.Read(cr, binary.LittleEndian, &magic); err != nil {
		return err
	}
	if magic != ckptTrainerMagic {
		return fmt.Errorf("core: %s: bad trainer checkpoint magic %#x", path, magic)
	}
	if err := binary.Read(cr, binary.LittleEndian, &ver); err != nil {
		return err
	}
	if ver != ckptTrainerVer {
		return fmt.Errorf("core: %s: trainer checkpoint version %d, this build reads %d", path, ver, ckptTrainerVer)
	}
	if _, err := io.CopyN(io.Discard, cr, st.Size()-12); err != nil {
		return fmt.Errorf("core: %s: %w", path, err)
	}
	var storedCRC uint32
	if err := binary.Read(br, binary.LittleEndian, &storedCRC); err != nil {
		return fmt.Errorf("core: %s: checksum: %w", path, err)
	}
	if storedCRC != cr.crc {
		return fmt.Errorf("core: %s: checksum mismatch (stored %#x, computed %#x): truncated or corrupted file", path, storedCRC, cr.crc)
	}
	return nil
}

// LoadTrainerCheckpointFile loads a trainer checkpoint from path into rt.
func LoadTrainerCheckpointFile(path string, rt *RankTrainer) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadTrainerCheckpoint(f, rt)
}

// SaveCheckpointFile writes a checkpoint to path via the same
// tmp-and-rename dance as SaveTrainerCheckpointFile.
func SaveCheckpointFile(path string, m *Model) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := SaveCheckpoint(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadCheckpointFile loads a checkpoint from path into m.
func LoadCheckpointFile(path string, m *Model) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCheckpoint(f, m)
}

// ParamVector flattens all parameters into one float32 slice (a copy),
// useful for comparing replicas in tests and tools.
func (m *Model) ParamVector() []float32 {
	var out []float32
	for _, p := range m.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// MaxParamDiff returns the largest absolute elementwise difference between
// the parameters of two same-shaped models.
func MaxParamDiff(a, b *Model) float32 {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		panic("core: MaxParamDiff across different architectures")
	}
	var mx float32
	for i := range pa {
		for j := range pa[i].Data {
			d := pa[i].Data[j] - pb[i].Data[j]
			if d < 0 {
				d = -d
			}
			if d > mx {
				mx = d
			}
		}
	}
	return mx
}
