package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Message tags for the per-epoch protocol. Channels are FIFO per pair and
// the protocol is fully ordered, so constant per-phase tags suffice.
const (
	tagPositions = 1   // sampled boundary positions (Algorithm 1 line 6)
	tagForward   = 10  // + layer index: feature rows (line 9)
	tagBackward  = 200 // + layer index: feature gradient rows (line 13)
	tagReduce    = 900 // AllReduce of weight gradients (line 14)
)

// LocalPartition holds everything one worker owns: its inner slice of the
// dataset, the local adjacency over inner+halo node space, and reusable
// per-epoch scratch buffers.
type LocalPartition struct {
	ID  int
	NIn int // inner nodes (local ids [0, NIn))
	NBd int // boundary/halo slots (local ids [NIn, NIn+NBd))

	GlobalInner    []int32
	GlobalBoundary []int32

	// Full local adjacency at p=1: only inner rows have neighbors; halo rows
	// are empty (their aggregations are never computed locally).
	fullIndptr  []int64
	fullIndices []int32

	InvDeg      []float32 // per inner node, 1/global degree
	localNbrs   []int32   // per inner node, count of same-partition neighbors
	Features    *tensor.Matrix
	Labels      []int32
	LabelMatrix *tensor.Matrix
	TrainMask   []bool
	ValMask     []bool
	TestMask    []bool
	TrainCount  int

	// Per-epoch scratch, reused to avoid allocation churn. The fixed-shape
	// buffers are allocated once in NewLocalPartition; the model-dimension-
	// dependent matrices (layer inputs, halo payloads, gradients) come from
	// ws, an arena that reaches steady state after the first epoch. ws is
	// Reset at the end of every epoch: all buffers drawn from it are dead by
	// then (sent payloads are consumed within the epoch because the halo
	// protocol is fully matched, and activations/gradients are not referenced
	// across epochs).
	epochIndptr  []int64
	epochIndices []int32
	active       []bool
	eg           graph.Graph      // epoch subgraph header, rebuilt in place
	ws           *tensor.Workspace
	myPos        [][]int32 // per peer: positions I sampled (cap: full recv list)
	theirPos     [][]int32 // per peer: received position slices (epoch-lived)
	sendRows     [][]int32 // per peer: inner rows to send (cap: full send list)
	recvSlots    [][]int32 // per peer: halo slots I fill (cap: full recv list)
	epochInvDeg  []float32 // effective-degree normalizer (EstimatorSelfNorm)
}

// NewLocalPartition extracts partition i's local view from the dataset and
// topology.
func NewLocalPartition(ds *datagen.Dataset, t *Topology, i int) *LocalPartition {
	inner := t.Inner[i]
	boundary := t.Boundary[i]
	lp := &LocalPartition{
		ID:             i,
		NIn:            len(inner),
		NBd:            len(boundary),
		GlobalInner:    inner,
		GlobalBoundary: boundary,
	}
	n := lp.NIn + lp.NBd

	// Local id lookup: inner nodes by owner index, boundary via sorted search.
	haloOf := func(u int32) int32 {
		j := sort.Search(len(boundary), func(x int) bool { return boundary[x] >= u })
		return int32(lp.NIn + j)
	}

	lp.fullIndptr = make([]int64, n+1)
	for li, v := range inner {
		lp.fullIndptr[li+1] = lp.fullIndptr[li] + int64(t.G.Degree(v))
	}
	for li := lp.NIn; li < n; li++ {
		lp.fullIndptr[li+1] = lp.fullIndptr[li]
	}
	lp.fullIndices = make([]int32, lp.fullIndptr[lp.NIn])
	pos := 0
	for _, v := range inner {
		for _, u := range t.G.Neighbors(v) {
			if t.Parts[u] == int32(i) {
				lp.fullIndices[pos] = t.InnerIndex(u)
			} else {
				lp.fullIndices[pos] = haloOf(u)
			}
			pos++
		}
	}

	lp.InvDeg = make([]float32, lp.NIn)
	lp.localNbrs = make([]int32, lp.NIn)
	for li, v := range inner {
		if d := t.G.Degree(v); d > 0 {
			lp.InvDeg[li] = 1 / float32(d)
		}
		for _, u := range t.G.Neighbors(v) {
			if t.Parts[u] == int32(i) {
				lp.localNbrs[li]++
			}
		}
	}

	if ds.Features.Rows > 0 {
		lp.Features = tensor.GatherRows(ds.Features, inner)
	}
	if ds.Labels != nil {
		lp.Labels = make([]int32, lp.NIn)
		for li, v := range inner {
			lp.Labels[li] = ds.Labels[v]
		}
	}
	if ds.LabelMatrix != nil {
		lp.LabelMatrix = tensor.GatherRows(ds.LabelMatrix, inner)
	}
	lp.TrainMask = make([]bool, lp.NIn)
	lp.ValMask = make([]bool, lp.NIn)
	lp.TestMask = make([]bool, lp.NIn)
	for li, v := range inner {
		lp.TrainMask[li] = ds.TrainMask[v]
		lp.ValMask[li] = ds.ValMask[v]
		lp.TestMask[li] = ds.TestMask[v]
		if ds.TrainMask[v] {
			lp.TrainCount++
		}
	}

	lp.epochIndptr = make([]int64, n+1)
	lp.epochIndices = make([]int32, len(lp.fullIndices))
	lp.active = make([]bool, n)
	lp.ws = tensor.NewWorkspace()
	k := t.K
	lp.myPos = make([][]int32, k)
	lp.theirPos = make([][]int32, k)
	lp.sendRows = make([][]int32, k)
	lp.recvSlots = make([][]int32, k)
	for j := 0; j < k; j++ {
		if j == i {
			continue
		}
		lp.myPos[j] = make([]int32, 0, len(t.Recv[i][j]))
		lp.recvSlots[j] = make([]int32, 0, len(t.Recv[i][j]))
		lp.sendRows[j] = make([]int32, 0, len(t.Send[i][j]))
	}
	lp.epochInvDeg = make([]float32, lp.NIn)
	return lp
}

// epochGraph rebuilds the node-induced local subgraph on inner ∪ sampled
// boundary (Algorithm 1 line 5): edges to inactive halo slots are dropped.
// The returned graph aliases reusable buffers — valid until the next call.
func (lp *LocalPartition) epochGraph() *graph.Graph {
	n := lp.NIn + lp.NBd
	pos := int64(0)
	for v := 0; v < lp.NIn; v++ {
		lp.epochIndptr[v] = pos
		for _, u := range lp.fullIndices[lp.fullIndptr[v]:lp.fullIndptr[v+1]] {
			if lp.active[u] {
				lp.epochIndices[pos] = u
				pos++
			}
		}
	}
	for v := lp.NIn; v <= n; v++ {
		lp.epochIndptr[v] = pos
	}
	lp.eg = graph.Graph{N: n, Indptr: lp.epochIndptr, Indices: lp.epochIndices[:pos]}
	return &lp.eg
}

// Estimator selects how sampled neighbor aggregations are normalized.
type Estimator int

const (
	// EstimatorSelfNorm (default) pairs the 1/p feature rescale with the
	// matching effective-degree normalizer |local| + (1/p)·|sampled remote|.
	// The estimate is a convex combination of neighbor features — bounded —
	// and equals the exact mean at p=1. See DESIGN.md §6.
	EstimatorSelfNorm Estimator = iota
	// EstimatorHT is the paper's literal form: 1/p rescale normalized by the
	// full global degree (Horvitz–Thompson). Unbiased, but on low-degree
	// graphs a lone sampled neighbor carries weight 1/p and deep stacks
	// amplify the spikes; kept for the ablation study.
	EstimatorHT
)

// ParallelConfig configures BNS-GCN training.
type ParallelConfig struct {
	Model ModelConfig
	// P is the boundary node sampling rate (Algorithm 1): 1 = vanilla
	// partition parallelism, 0 = fully isolated training.
	P float64
	// SampleSeed seeds the per-partition boundary sampling streams.
	SampleSeed uint64
	// Estimator selects the sampled-aggregation normalizer (SAGE only).
	Estimator Estimator
}

// EpochStats reports one epoch of parallel training. Durations are the
// maximum across workers (the straggler defines epoch time); byte counts are
// totals across workers.
type EpochStats struct {
	Loss        float64
	SampleTime  time.Duration
	ComputeTime time.Duration
	CommTime    time.Duration
	ReduceTime  time.Duration
	CommBytes   int64 // boundary feature + gradient traffic
	ReduceBytes int64 // weight gradient AllReduce traffic
	SampledBd   []int // per partition: boundary nodes kept this epoch
}

// TotalTime returns the epoch wall-clock estimate (sum of phases).
func (s *EpochStats) TotalTime() time.Duration {
	return s.SampleTime + s.ComputeTime + s.CommTime + s.ReduceTime
}

// RankTrainer owns everything one rank needs to participate in BNS-GCN
// training: its local partition, its model replica, optimizer and sampling
// stream, and the per-epoch protocol. It is the unit of distribution — the
// in-process ParallelTrainer drives k of them on goroutines over a channel
// cluster, while a multi-process deployment runs exactly one per OS process
// over a TCP transport (see cmd/bnsgcn's -rank/-world/-rendezvous flags).
// Construction is deterministic given (dataset, topology, config, rank), so
// independently bootstrapped processes hold bit-identical replicas.
type RankTrainer struct {
	DS    *datagen.Dataset
	Topo  *Topology
	Cfg   ParallelConfig
	Rank  int
	LP    *LocalPartition
	Model *Model

	opt optim.Optimizer
	rng *tensor.RNG

	globalTrainCount int
	epoch            int
	evalModel        *Model
	evalTrainer      *FullTrainer
	flatGrad         []float32 // reusable gradient AllReduce buffer
}

// NewRankTrainer builds the local state for one rank of a k-way training
// run. Every rank must be constructed with the same dataset, topology, and
// config for the replicas to stay consistent.
func NewRankTrainer(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig, rank int) (*RankTrainer, error) {
	if cfg.P < 0 || cfg.P > 1 {
		return nil, fmt.Errorf("core: sampling rate p=%v outside [0,1]", cfg.P)
	}
	if rank < 0 || rank >= topo.K {
		return nil, fmt.Errorf("core: rank %d out of [0,%d)", rank, topo.K)
	}
	model, err := NewModel(cfg.Model, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return nil, err
	}
	rt := &RankTrainer{
		DS:    ds,
		Topo:  topo,
		Cfg:   cfg,
		Rank:  rank,
		LP:    NewLocalPartition(ds, topo, rank),
		Model: model,
		opt:   optim.NewAdam(cfg.Model.LR),
		rng:   tensor.NewRNG(cfg.SampleSeed + uint64(rank)*0x9e3779b9),
	}
	// The loss normalizer is the global number of training nodes, which is a
	// property of the dataset alone — no cross-rank exchange needed.
	for _, m := range ds.TrainMask {
		if m {
			rt.globalTrainCount++
		}
	}
	rt.flatGrad = make([]float32, 0, nn.ParamCount(model.Layers()))
	return rt, nil
}

// Epoch returns the number of completed training epochs.
func (rt *RankTrainer) Epoch() int { return rt.epoch }

// TrainEpoch runs one epoch of this rank's protocol over the worker's
// transport and reports local statistics. Any panic inside the epoch —
// including the transport failure raised when a peer dies — is converted to
// an error, and the transport is aborted so every surviving rank observes a
// connection error promptly instead of deadlocking on messages that will
// never arrive.
func (rt *RankTrainer) TrainEpoch(w *comm.Worker) (st RankStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.Transport().Abort()
			err = fmt.Errorf("core: rank %d: epoch %d failed: %v", rt.Rank, rt.epoch, r)
		}
	}()
	st = rt.runEpoch(w)
	rt.epoch++
	return st, nil
}

// Evaluate scores this rank's model replica on the given global mask with
// exact full-graph inference (the paper reports full-graph test accuracy).
// Replicas are bit-identical across ranks, so any rank's answer is the
// global answer.
func (rt *RankTrainer) Evaluate(mask []bool) float64 {
	if rt.evalTrainer == nil {
		model, err := NewModel(rt.Cfg.Model, rt.DS.FeatureDim(), rt.DS.NumClasses)
		if err != nil {
			panic(err)
		}
		rt.evalModel = model
		rt.evalTrainer = &FullTrainer{DS: rt.DS, Model: model, invDeg: nn.InvDegrees(rt.DS.G)}
	}
	rt.evalModel.CopyWeightsFrom(rt.Model)
	return rt.evalTrainer.Evaluate(mask)
}

// ParallelTrainer trains one model replica per partition with boundary node
// sampling, following Algorithm 1: k RankTrainers driven concurrently over
// a comm.Group, one goroutine per partition playing the role of one GPU.
type ParallelTrainer struct {
	DS      *datagen.Dataset
	Topo    *Topology
	Cfg     ParallelConfig
	Ranks   []*RankTrainer
	Locals  []*LocalPartition // aliases Ranks[i].LP
	Cluster *comm.Cluster
	Models  []*Model // aliases Ranks[i].Model

	epoch    int
	statsBuf []RankStats
}

// NewParallelTrainer builds local partitions, one model replica per worker
// (identically initialized), and an in-process channel cluster.
func NewParallelTrainer(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig) (*ParallelTrainer, error) {
	if cfg.P < 0 || cfg.P > 1 {
		return nil, fmt.Errorf("core: sampling rate p=%v outside [0,1]", cfg.P)
	}
	return NewParallelTrainerOver(ds, topo, cfg, comm.New(topo.K, 0))
}

// NewParallelTrainerOver is the backend-agnostic constructor: it accepts any
// group of k transport endpoints — the channel cluster NewParallelTrainer
// defaults to, or k loopback TCP endpoints as the cross-backend equivalence
// tests use — and drives the identical protocol over it.
func NewParallelTrainerOver(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig, g *comm.Group) (*ParallelTrainer, error) {
	k := topo.K
	if g.Size() != k {
		return nil, fmt.Errorf("core: transport group has %d ranks, topology has %d", g.Size(), k)
	}
	t := &ParallelTrainer{
		DS:      ds,
		Topo:    topo,
		Cfg:     cfg,
		Cluster: g,
	}
	for i := 0; i < k; i++ {
		rt, err := NewRankTrainer(ds, topo, cfg, i)
		if err != nil {
			return nil, err
		}
		t.Ranks = append(t.Ranks, rt)
		t.Locals = append(t.Locals, rt.LP)
		t.Models = append(t.Models, rt.Model)
	}
	t.statsBuf = make([]RankStats, k)
	return t, nil
}

// RankStats collects one rank's per-epoch timing and byte counters. Loss is
// the rank's contribution to the global loss (the per-node losses of its
// inner training nodes over the global normalizer), so summing across ranks
// yields the global training loss.
type RankStats struct {
	Loss                          float64
	Sample, Compute, Comm, Reduce time.Duration
	CommBytes, ReduceBytes        int64
	SampledBd                     int
}

// TrainEpoch runs one synchronized BNS-GCN epoch across all partitions and
// returns aggregate statistics.
func (t *ParallelTrainer) TrainEpoch() *EpochStats {
	k := t.Topo.K
	stats := t.statsBuf
	t.Cluster.Run(func(w *comm.Worker) {
		// A panic on one rank (protocol bug, NaN guard, model error) aborts
		// the transport so the other ranks fail fast instead of blocking on
		// messages that will never arrive; the panic still propagates
		// through Run.
		defer func() {
			if r := recover(); r != nil {
				w.Transport().Abort()
				panic(r)
			}
		}()
		stats[w.Rank()] = t.Ranks[w.Rank()].runEpoch(w)
	})
	t.epoch++
	for _, rt := range t.Ranks {
		rt.epoch++
	}

	agg := &EpochStats{SampledBd: make([]int, k)}
	for i, s := range stats {
		agg.Loss += s.Loss
		agg.CommBytes += s.CommBytes
		agg.ReduceBytes += s.ReduceBytes
		agg.SampledBd[i] = s.SampledBd
		if s.Sample > agg.SampleTime {
			agg.SampleTime = s.Sample
		}
		if s.Compute > agg.ComputeTime {
			agg.ComputeTime = s.Compute
		}
		if s.Comm > agg.CommTime {
			agg.CommTime = s.Comm
		}
		if s.Reduce > agg.ReduceTime {
			agg.ReduceTime = s.Reduce
		}
	}
	return agg
}

// runEpoch is Algorithm 1's loop body from one partition's view.
func (rt *RankTrainer) runEpoch(w *comm.Worker) RankStats {
	var ws RankStats
	rank := rt.Rank
	lp := rt.LP
	model := rt.Model
	rng := rt.rng
	k := rt.Topo.K
	p := float32(rt.Cfg.P)
	// The paper's 1/p rescaling of received features (Section 3.2) makes the
	// *mean aggregator's* neighbor sum unbiased. Attention models normalize
	// per-neighborhood via softmax, so the rescale would only distort the
	// attention logits — GAT runs unscaled, matching the official code.
	invP := float32(1)
	if rt.Cfg.P > 0 && rt.Cfg.Model.Arch == ArchSAGE {
		invP = 1 / float32(rt.Cfg.P)
	}

	// --- Sampling phase (lines 4–7) ---
	start := time.Now()
	for i := range lp.active {
		lp.active[i] = i < lp.NIn
	}
	myPos := lp.myPos // positions I sampled, per owner partition
	for j := 0; j < k; j++ {
		if j == rank {
			continue
		}
		full := rt.Topo.Recv[rank][j]
		pos := myPos[j][:0]
		switch {
		case rt.Cfg.P >= 1:
			pos = pos[:len(full)]
			for x := range pos {
				pos[x] = int32(x)
			}
		case rt.Cfg.P <= 0:
			// nothing sampled
		default:
			for x := range full {
				if rng.Float32() < p {
					pos = append(pos, int32(x))
				}
			}
		}
		myPos[j] = pos
		for _, x := range pos {
			lp.active[lp.NIn+int(full[x])] = true
			ws.SampledBd++
		}
	}
	// Broadcast selections; build per-destination send row lists. The sent
	// position slices alias lp.myPos scratch: the receiver holds them for
	// the rest of the epoch, and the next epoch's rewrite is safe because
	// TrainEpoch joins all workers in between.
	theirPos := lp.theirPos
	if k > 1 {
		for j := 0; j < k; j++ {
			if j != rank {
				w.SendI32(j, tagPositions, myPos[j])
			}
		}
		for j := 0; j < k; j++ {
			if j != rank {
				theirPos[j] = w.RecvI32(j, tagPositions)
			}
		}
	}
	sendRows := lp.sendRows // inner local ids to send to j, per layer
	for j := 0; j < k; j++ {
		if j == rank {
			continue
		}
		full := rt.Topo.Send[rank][j]
		rows := sendRows[j][:len(theirPos[j])]
		for x, posIdx := range theirPos[j] {
			rows[x] = full[posIdx]
		}
		sendRows[j] = rows
	}
	recvSlots := lp.recvSlots // halo local ids I fill from j
	for j := 0; j < k; j++ {
		if j == rank {
			continue
		}
		full := rt.Topo.Recv[rank][j]
		slots := recvSlots[j][:len(myPos[j])]
		for x, posIdx := range myPos[j] {
			slots[x] = int32(lp.NIn) + full[posIdx]
		}
		recvSlots[j] = slots
	}
	eg := lp.epochGraph()
	// Self-normalized mean estimator: sampled remote neighbors carry weight
	// 1/p in the numerator (the received features arrive pre-scaled), and
	// the normalizer is the matching effective degree
	// |local| + (1/p)·|sampled remote|. At p=1 this is exactly the full
	// degree; for p<1 the estimate is a convex combination of neighbor
	// features, so sampling noise cannot blow up activations the way the
	// unnormalized 1/p estimator does on low-degree nodes.
	invDeg := lp.InvDeg // EstimatorHT: normalize by the full global degree
	if rt.Cfg.Estimator == EstimatorSelfNorm {
		invDeg = lp.epochInvDeg
		for v := 0; v < lp.NIn; v++ {
			row := eg.Neighbors(int32(v))
			remote := float32(len(row) - int(lp.localNbrs[v]))
			eff := float32(lp.localNbrs[v]) + invP*remote
			if eff > 0 {
				invDeg[v] = 1 / eff
			} else {
				invDeg[v] = 0 // scratch is reused; clear stale entries
			}
		}
	}
	ws.Sample = time.Since(start)

	// --- Forward (lines 8–11) ---
	nLocal := lp.NIn + lp.NBd
	hInner := lp.Features // inner activations entering the current layer
	for l, layer := range model.LayersL {
		dim := layer.InputDim()
		// x comes from the epoch workspace with undefined contents: inner
		// rows are overwritten below, sampled halo slots by the receive
		// loop, and unsampled halo slots are never read because epochGraph
		// dropped every edge into them.
		x := lp.ws.Get(nLocal, dim)
		copy(x.Data[:lp.NIn*dim], hInner.Data[:lp.NIn*dim])
		// Halo exchange for this layer. Payload buffers alias the epoch
		// workspace; receivers consume them within this epoch.
		cs := time.Now()
		for j := 0; j < k; j++ {
			if j == rank || len(sendRows[j]) == 0 {
				continue
			}
			payload := lp.ws.GetF32(len(sendRows[j]) * dim)
			for x2, row := range sendRows[j] {
				copy(payload[x2*dim:(x2+1)*dim], hInner.Row(int(row)))
			}
			w.SendF32(j, tagForward+l, payload)
			ws.CommBytes += int64(4 * len(payload))
		}
		for j := 0; j < k; j++ {
			if j == rank || len(recvSlots[j]) == 0 {
				continue
			}
			data := w.RecvF32(j, tagForward+l)
			if len(data) != len(recvSlots[j])*dim {
				panic(fmt.Sprintf("core: rank %d layer %d: got %d floats from %d, want %d",
					rank, l, len(data), j, len(recvSlots[j])*dim))
			}
			for x2, slot := range recvSlots[j] {
				dst := x.Row(int(slot))
				src := data[x2*dim : (x2+1)*dim]
				for c, v := range src {
					dst[c] = v * invP // unbiased 1/p rescaling (Section 3.2)
				}
			}
		}
		ws.Comm += time.Since(cs)

		ps := time.Now()
		xd := model.Dropouts[l].Forward(x, true)
		hInner = layer.Forward(eg, xd, lp.NIn, invDeg)
		ws.Compute += time.Since(ps)
	}

	// --- Loss (line 12) ---
	ls := time.Now()
	d := lp.ws.Get(hInner.Rows, hInner.Cols)
	ws.Loss = LossInto(d, rt.DS, hInner, lp.Labels, lp.LabelMatrix, lp.TrainMask, rt.globalTrainCount)
	model.ZeroGrad()
	ws.Compute += time.Since(ls)

	// --- Backward (line 13) ---
	for l := len(model.LayersL) - 1; l >= 0; l-- {
		bs := time.Now()
		dx := model.LayersL[l].Backward(d)
		dx = model.Dropouts[l].Backward(dx)
		ws.Compute += time.Since(bs)

		dim := model.LayersL[l].InputDim()
		if l == 0 {
			// Input features need no gradient; skip the halo exchange.
			break
		}
		cs := time.Now()
		for j := 0; j < k; j++ {
			if j == rank || len(recvSlots[j]) == 0 {
				continue
			}
			payload := lp.ws.GetF32(len(recvSlots[j]) * dim)
			for x2, slot := range recvSlots[j] {
				src := dx.Row(int(slot))
				dst := payload[x2*dim : (x2+1)*dim]
				for c, v := range src {
					dst[c] = v * invP // chain rule through the 1/p scaling
				}
			}
			w.SendF32(j, tagBackward+l, payload)
			ws.CommBytes += int64(4 * len(payload))
		}
		// Next layer's output gradient: my inner rows plus remote halo grads.
		dNext := lp.ws.Get(lp.NIn, dim)
		copy(dNext.Data, dx.Data[:lp.NIn*dim])
		for j := 0; j < k; j++ {
			if j == rank || len(sendRows[j]) == 0 {
				continue
			}
			data := w.RecvF32(j, tagBackward+l)
			for x2, row := range sendRows[j] {
				tensor.AddTo(dNext.Row(int(row)), data[x2*dim:(x2+1)*dim])
			}
		}
		ws.Comm += time.Since(cs)
		d = dNext
	}

	// --- Gradient AllReduce + update (lines 14–15) ---
	rs := time.Now()
	flat := nn.FlattenMats(model.Grads(), rt.flatGrad)
	rt.flatGrad = flat
	w.AllReduceSum(flat, tagReduce)
	nn.UnflattenMats(model.Grads(), flat)
	ws.ReduceBytes = int64(4 * len(flat))
	rt.opt.Step(model.Params(), model.Grads())
	ws.Reduce = time.Since(rs)

	// Everything drawn from the epoch workspace is dead now; recycle it.
	lp.ws.Reset()
	return ws
}

// Evaluate scores the trained model on the given global mask with exact
// full-graph inference (the paper reports full-graph test accuracy).
func (t *ParallelTrainer) Evaluate(mask []bool) float64 {
	return t.Ranks[0].Evaluate(mask)
}

// Epoch returns the number of completed training epochs.
func (t *ParallelTrainer) Epoch() int { return t.epoch }
