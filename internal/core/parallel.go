package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/nn"
	"repro/internal/optim"
	"repro/internal/tensor"
)

// Message tags for the per-epoch protocol. Channels are FIFO per pair and
// the protocol is fully ordered, so constant per-phase tags suffice.
const (
	tagPositions = 1   // sampled boundary positions (Algorithm 1 line 6)
	tagForward   = 10  // + layer index: feature rows (line 9)
	tagBackward  = 200 // + layer index: feature gradient rows (line 13)
	tagReduce    = 900 // AllReduce of weight gradients (line 14)
)

// LocalPartition holds everything one worker owns: its inner slice of the
// dataset, the local adjacency over inner+halo node space, and reusable
// per-epoch scratch buffers.
type LocalPartition struct {
	ID  int
	NIn int // inner nodes (local ids [0, NIn))
	NBd int // boundary/halo slots (local ids [NIn, NIn+NBd))

	GlobalInner    []int32
	GlobalBoundary []int32

	// Full local adjacency at p=1: only inner rows have neighbors; halo rows
	// are empty (their aggregations are never computed locally).
	fullIndptr  []int64
	fullIndices []int32

	InvDeg      []float32 // per inner node, 1/global degree
	localNbrs   []int32   // per inner node, count of same-partition neighbors
	Features    *tensor.Matrix
	Labels      []int32
	LabelMatrix *tensor.Matrix
	TrainMask   []bool
	ValMask     []bool
	TestMask    []bool
	TrainCount  int

	// Per-epoch scratch, reused to avoid allocation churn. The fixed-shape
	// buffers are allocated once in NewLocalPartition; the model-dimension-
	// dependent matrices (layer inputs, halo payloads, gradients) come from
	// ws, an arena that reaches steady state after the first epoch. ws is
	// Reset at the end of every epoch: all buffers drawn from it are dead by
	// then (sent payloads are consumed within the epoch because the halo
	// protocol is fully matched, and activations/gradients are not referenced
	// across epochs).
	epochIndptr  []int64
	epochIndices []int32
	active       []bool
	eg           graph.Graph     // epoch subgraph header, rebuilt in place
	agg          *graph.AggIndex // epoch aggregation plan, rebuilt with eg
	ws           *tensor.Workspace
	myPos        [][]int32 // per peer: positions I sampled (cap: full recv list)
	theirPos     [][]int32 // per peer: received position slices (epoch-lived)
	sendRows     [][]int32 // per peer: inner rows to send (cap: full send list)
	recvSlots    [][]int32 // per peer: halo slots I fill (cap: full recv list)
	epochInvDeg  []float32 // effective-degree normalizer (EstimatorSelfNorm)

	// Per-epoch row partition for the pipelined engine (see pipeline.go):
	// haloFree lists the inner rows whose epoch-graph neighbors are all
	// inner (computable before boundary features arrive), haloDep the rows
	// with at least one sampled halo neighbor, haloSlots the active halo
	// slots — all ascending, recomputed alongside sampling.
	haloFree  []int32
	haloDep   []int32
	haloSlots []int32
	pendRecv  []comm.PendingRecvF32 // per peer: posted halo receives
	recvData  [][]float32           // per peer: drained payloads (staged fold)

	// Strategy-mode scratch (see strategy.go): lossMask is the per-epoch
	// intersection of TrainMask with the strategy's active inner rows, and
	// skipRows lists the inner rows excluded from compute entirely — only a
	// row-dropping strategy under an architecture whose staged backward
	// tolerates uncomputed rows (SAGE) populates it. For BNS both stay in
	// their pass-through state (lossMask aliases TrainMask semantics via the
	// engine, skipRows empty).
	lossMask []bool
	skipRows []int32

	// Arrival-order drain state (ScheduleOverlap, see pipeline.go): the
	// owner rank of every boundary slot (static), and the per-epoch row
	// buckets splitRows derives from it — peerRows[j] lists (ascending) the
	// halo-dependent rows with at least one active neighbor owned by j,
	// rowWaitInit[v] the number of distinct peers row v awaits (rowWait is
	// the per-layer working countdown, re-armed from rowWaitInit at the
	// start of every layer's drain), readyRows the scratch for rows
	// unlocked by one peer's arrival, peerMark the dedup marker used while
	// bucketing.
	slotOwner   []int32
	peerRows    [][]int32
	rowWaitInit []int32
	rowWait     []int32
	readyRows   []int32
	peerMark    []int32
}

// NewLocalPartition extracts partition i's local view from the dataset and
// topology.
func NewLocalPartition(ds *datagen.Dataset, t *Topology, i int) *LocalPartition {
	inner := t.Inner[i]
	boundary := t.Boundary[i]
	lp := &LocalPartition{
		ID:             i,
		NIn:            len(inner),
		NBd:            len(boundary),
		GlobalInner:    inner,
		GlobalBoundary: boundary,
	}
	n := lp.NIn + lp.NBd

	// Local id lookup: inner nodes by owner index, boundary via sorted search.
	haloOf := func(u int32) int32 {
		j := sort.Search(len(boundary), func(x int) bool { return boundary[x] >= u })
		return int32(lp.NIn + j)
	}

	lp.fullIndptr = make([]int64, n+1)
	for li, v := range inner {
		lp.fullIndptr[li+1] = lp.fullIndptr[li] + int64(t.G.Degree(v))
	}
	for li := lp.NIn; li < n; li++ {
		lp.fullIndptr[li+1] = lp.fullIndptr[li]
	}
	lp.fullIndices = make([]int32, lp.fullIndptr[lp.NIn])
	pos := 0
	for _, v := range inner {
		for _, u := range t.G.Neighbors(v) {
			if t.Parts[u] == int32(i) {
				lp.fullIndices[pos] = t.InnerIndex(u)
			} else {
				lp.fullIndices[pos] = haloOf(u)
			}
			pos++
		}
	}

	lp.InvDeg = make([]float32, lp.NIn)
	lp.localNbrs = make([]int32, lp.NIn)
	for li, v := range inner {
		if d := t.G.Degree(v); d > 0 {
			lp.InvDeg[li] = 1 / float32(d)
		}
		for _, u := range t.G.Neighbors(v) {
			if t.Parts[u] == int32(i) {
				lp.localNbrs[li]++
			}
		}
	}

	if ds.Features.Rows > 0 {
		lp.Features = tensor.GatherRows(ds.Features, inner)
	}
	if ds.Labels != nil {
		lp.Labels = make([]int32, lp.NIn)
		for li, v := range inner {
			lp.Labels[li] = ds.Labels[v]
		}
	}
	if ds.LabelMatrix != nil {
		lp.LabelMatrix = tensor.GatherRows(ds.LabelMatrix, inner)
	}
	lp.TrainMask = make([]bool, lp.NIn)
	lp.ValMask = make([]bool, lp.NIn)
	lp.TestMask = make([]bool, lp.NIn)
	for li, v := range inner {
		lp.TrainMask[li] = ds.TrainMask[v]
		lp.ValMask[li] = ds.ValMask[v]
		lp.TestMask[li] = ds.TestMask[v]
		if ds.TrainMask[v] {
			lp.TrainCount++
		}
	}

	lp.epochIndptr = make([]int64, n+1)
	lp.epochIndices = make([]int32, len(lp.fullIndices))
	lp.active = make([]bool, n)
	lp.agg = &graph.AggIndex{} // built alongside each epoch subgraph
	lp.ws = tensor.NewWorkspace()
	k := t.K
	lp.myPos = make([][]int32, k)
	lp.theirPos = make([][]int32, k)
	lp.sendRows = make([][]int32, k)
	lp.recvSlots = make([][]int32, k)
	for j := 0; j < k; j++ {
		if j == i {
			continue
		}
		lp.myPos[j] = make([]int32, 0, len(t.Recv[i][j]))
		lp.recvSlots[j] = make([]int32, 0, len(t.Recv[i][j]))
		lp.sendRows[j] = make([]int32, 0, len(t.Send[i][j]))
	}
	lp.epochInvDeg = make([]float32, lp.NIn)
	lp.lossMask = make([]bool, lp.NIn)
	lp.skipRows = make([]int32, 0, lp.NIn)
	lp.haloFree = make([]int32, 0, lp.NIn)
	lp.haloDep = make([]int32, 0, lp.NIn)
	lp.haloSlots = make([]int32, 0, lp.NBd)
	lp.pendRecv = make([]comm.PendingRecvF32, k)
	lp.recvData = make([][]float32, k)
	lp.slotOwner = make([]int32, lp.NBd)
	for x, u := range boundary {
		lp.slotOwner[x] = t.Parts[u]
	}
	lp.peerRows = make([][]int32, k)
	lp.rowWaitInit = make([]int32, lp.NIn)
	lp.rowWait = make([]int32, lp.NIn)
	lp.readyRows = make([]int32, 0, lp.NIn)
	lp.peerMark = make([]int32, k)
	return lp
}

// splitRows partitions the inner rows of the epoch subgraph into the
// halo-free set (no sampled boundary neighbor — their aggregation can run
// while halo features are in flight) and the halo-dependent remainder, and
// collects the active halo slots. All three lists are ascending, which the
// staged backward relies on for bit-identical accumulation order.
//
// With buckets set (the arrival-order drain) it additionally buckets the
// halo-dependent rows by awaited peer: peerRows[j] lists every row with an
// active neighbor owned by rank j, and rowWait[v] counts row v's distinct
// awaited peers — the countdown that unlocks a row the moment its last
// peer's payload lands. Bucketing needs the full neighbor scan, so the
// rank-order schedules skip it and keep the early-out row scan.
//
// With restrict set (a row-dropping strategy under SAGE), inner rows with
// lp.active[v] false are excluded from both compute lists and collected in
// lp.skipRows instead: their projections are skipped outright and the
// engine zeroes their rows of the layer inputs and folded gradients so the
// staged SAGE backward — whose parameter-gradient kernels read every row —
// sees exact zeros rather than stale scratch. Without restrict every inner
// row is listed (an inactive row under GAT computes as an isolated node:
// its epoch-graph edges are gone, so it lands in the halo-free list, costs
// one self-attention, and contributes exactly zero gradient).
func (lp *LocalPartition) splitRows(eg *graph.Graph, buckets, restrict bool) {
	free, dep := lp.haloFree[:0], lp.haloDep[:0]
	skip := lp.skipRows[:0]
	nIn := int32(lp.NIn)
	if restrict {
		if buckets {
			for j := range lp.peerRows {
				lp.peerRows[j] = lp.peerRows[j][:0]
				lp.peerMark[j] = -1
			}
		}
		for v := int32(0); v < nIn; v++ {
			if !lp.active[v] {
				skip = append(skip, v)
				lp.rowWaitInit[v] = 0
				continue
			}
			waits := int32(0)
			for _, u := range eg.Neighbors(v) {
				if u >= nIn {
					if !buckets {
						waits = 1
						break
					}
					o := lp.slotOwner[u-nIn]
					if lp.peerMark[o] != v {
						lp.peerMark[o] = v
						lp.peerRows[o] = append(lp.peerRows[o], v)
						waits++
					}
				}
			}
			lp.rowWaitInit[v] = waits
			if waits > 0 {
				dep = append(dep, v)
			} else {
				free = append(free, v)
			}
		}
		lp.haloFree, lp.haloDep, lp.skipRows = free, dep, skip
		slots := lp.haloSlots[:0]
		for s := lp.NIn; s < lp.NIn+lp.NBd; s++ {
			if lp.active[s] {
				slots = append(slots, int32(s))
			}
		}
		lp.haloSlots = slots
		return
	}
	lp.skipRows = skip
	if buckets {
		for j := range lp.peerRows {
			lp.peerRows[j] = lp.peerRows[j][:0]
			lp.peerMark[j] = -1
		}
		for v := int32(0); v < nIn; v++ {
			waits := int32(0)
			for _, u := range eg.Neighbors(v) {
				if u >= nIn {
					o := lp.slotOwner[u-nIn]
					if lp.peerMark[o] != v {
						lp.peerMark[o] = v
						lp.peerRows[o] = append(lp.peerRows[o], v)
						waits++
					}
				}
			}
			lp.rowWaitInit[v] = waits
			if waits > 0 {
				dep = append(dep, v)
			} else {
				free = append(free, v)
			}
		}
	} else {
		for v := int32(0); v < nIn; v++ {
			needsHalo := false
			for _, u := range eg.Neighbors(v) {
				if u >= nIn {
					needsHalo = true
					break
				}
			}
			if needsHalo {
				dep = append(dep, v)
			} else {
				free = append(free, v)
			}
		}
	}
	lp.haloFree, lp.haloDep = free, dep
	slots := lp.haloSlots[:0]
	for s := lp.NIn; s < lp.NIn+lp.NBd; s++ {
		if lp.active[s] {
			slots = append(slots, int32(s))
		}
	}
	lp.haloSlots = slots
}

// epochGraph rebuilds the node-induced local subgraph on the plan's active
// rows (Algorithm 1 line 5 for BNS): edges into inactive rows are dropped,
// and an inactive inner row also drops its outgoing edges — node-induced
// semantics, which row-dropping strategies rely on so no kernel ever reads
// or gathers through an uncomputed row. Under BNS every inner row is active
// and this reduces to the historical boundary-edge filter.
// The aggregation plan (lp.agg — the SpMM engine's transposed index and
// edge-balanced chunks, which the model's layers hold a pointer to) is
// rebuilt in the same breath, so the layers always aggregate over the plan
// of the graph they are handed. The returned graph aliases reusable
// buffers — valid until the next call; the rebuild allocates nothing once
// capacities have warmed up.
func (lp *LocalPartition) epochGraph() *graph.Graph {
	n := lp.NIn + lp.NBd
	pos := int64(0)
	for v := 0; v < lp.NIn; v++ {
		lp.epochIndptr[v] = pos
		if !lp.active[v] {
			continue // inactive inner row: node-induced drop of all its edges
		}
		for _, u := range lp.fullIndices[lp.fullIndptr[v]:lp.fullIndptr[v+1]] {
			if lp.active[u] {
				lp.epochIndices[pos] = u
				pos++
			}
		}
	}
	for v := lp.NIn; v <= n; v++ {
		lp.epochIndptr[v] = pos
	}
	lp.eg = graph.Graph{N: n, Indptr: lp.epochIndptr, Indices: lp.epochIndices[:pos]}
	lp.agg.Build(&lp.eg)
	return &lp.eg
}

// Estimator selects how sampled neighbor aggregations are normalized.
type Estimator int

const (
	// EstimatorSelfNorm (default) pairs the 1/p feature rescale with the
	// matching effective-degree normalizer |local| + (1/p)·|sampled remote|.
	// The estimate is a convex combination of neighbor features — bounded —
	// and equals the exact mean at p=1. See DESIGN.md §6.
	EstimatorSelfNorm Estimator = iota
	// EstimatorHT is the paper's literal form: 1/p rescale normalized by the
	// full global degree (Horvitz–Thompson). Unbiased, but on low-degree
	// graphs a lone sampled neighbor carries weight 1/p and deep stacks
	// amplify the spikes; kept for the ablation study.
	EstimatorHT
)

// Schedule selects the epoch engine's stage schedule (see pipeline.go). All
// three schedules are bit-identical — same weights, losses, and per-rank
// payload bytes over every backend; the overlap equivalence tests pin this —
// they differ only in where the waits sit and in what order peer payloads
// are consumed, never in the arithmetic.
type Schedule int

const (
	// ScheduleOverlap — the default — is the pipelined schedule with the
	// arrival-order drain: halo sends/receives are posted first, halo-free
	// rows compute while boundary data is in flight, and each peer's
	// halo-dependent rows complete the moment that peer's payload lands
	// (whichever peer that is), so one slow peer no longer stalls rows whose
	// data already arrived.
	ScheduleOverlap Schedule = iota
	// ScheduleOverlapRank is the pipelined schedule draining peers in
	// ascending rank order — the straggler-sensitive baseline the
	// arrival-order drain is measured against.
	ScheduleOverlapRank
	// ScheduleSerialized is the historical baseline: every wait up front,
	// then all compute.
	ScheduleSerialized
)

// overlapped reports whether the schedule pipelines comm with compute.
func (s Schedule) overlapped() bool { return s != ScheduleSerialized }

// arrival reports whether the schedule drains peers in arrival order.
func (s Schedule) arrival() bool { return s == ScheduleOverlap }

// String names the schedule for logs and experiment tables.
func (s Schedule) String() string {
	switch s {
	case ScheduleOverlap:
		return "overlap/arrival"
	case ScheduleOverlapRank:
		return "overlap/rank"
	case ScheduleSerialized:
		return "serialized"
	}
	return fmt.Sprintf("Schedule(%d)", int(s))
}

// ParallelConfig configures BNS-GCN training.
type ParallelConfig struct {
	Model ModelConfig
	// P is the boundary node sampling rate (Algorithm 1): 1 = vanilla
	// partition parallelism, 0 = fully isolated training.
	P float64
	// SampleSeed seeds the per-partition boundary sampling streams.
	SampleSeed uint64
	// Estimator selects the sampled-aggregation normalizer (SAGE only).
	Estimator Estimator
	// Schedule selects the epoch stage schedule. The zero value is
	// ScheduleOverlap: the pipelined engine with arrival-order draining is
	// the default, and ScheduleSerialized is the escape hatch
	// (cmd/bnsgcn -overlap=false).
	Schedule Schedule
	// Strategy, when non-nil, builds each rank's epoch-sampling strategy
	// (see strategy.go); nil keeps the paper's boundary-node sampling at
	// rate P, seeded from SampleSeed exactly as before the strategies
	// existed. Every rank of a run — including independently bootstrapped
	// processes — must use the same factory for replicas to stay
	// consistent.
	Strategy StrategyFactory
}

// EpochStats reports one epoch of parallel training. Durations are the
// maximum across workers (the straggler defines epoch time); byte counts are
// totals across workers.
type EpochStats struct {
	Loss        float64
	SampleTime  time.Duration
	ComputeTime time.Duration
	// CommTime is the raw halo-exchange span: payload gather/serialize plus
	// the full post-to-consumed window of every exchange. Under the
	// pipelined schedules (ParallelConfig.Schedule = ScheduleOverlap or
	// ScheduleOverlapRank) that window runs concurrently with ComputeTime,
	// so the two overlap and must not be summed — use ExposedCommTime for
	// critical-path accounting.
	CommTime time.Duration
	// ExposedCommTime is the unoverlapped portion of comm: gather/serialize
	// work plus the time actually spent blocked waiting for boundary data
	// after overlappable compute has run. Serialized schedule: equals
	// CommTime (nothing is hidden). Pipelined schedule: the paper's
	// boundary-communication cost appears here only to the extent it could
	// not be hidden behind inner-node compute.
	ExposedCommTime time.Duration
	ReduceTime      time.Duration
	CommBytes       int64 // boundary feature + gradient traffic
	ReduceBytes     int64 // weight gradient AllReduce traffic
	SampledBd       []int // per partition: boundary nodes kept this epoch
}

// TotalTime returns the epoch wall-clock estimate: the sum of the phases on
// the critical path. Only the exposed (unoverlapped) communication time
// counts — raw CommTime runs concurrently with ComputeTime when overlap is
// on and would be double-counted.
func (s *EpochStats) TotalTime() time.Duration {
	return s.SampleTime + s.ComputeTime + s.ExposedCommTime + s.ReduceTime
}

// RankTrainer owns everything one rank needs to participate in BNS-GCN
// training: its local partition, its model replica, optimizer and sampling
// stream, and the per-epoch protocol. It is the unit of distribution — the
// in-process ParallelTrainer drives k of them on goroutines over a channel
// cluster, while a multi-process deployment runs exactly one per OS process
// over a TCP transport (see cmd/bnsgcn's -rank/-world/-rendezvous flags).
// Construction is deterministic given (dataset, topology, config, rank), so
// independently bootstrapped processes hold bit-identical replicas.
type RankTrainer struct {
	DS    *datagen.Dataset
	Topo  *Topology
	Cfg   ParallelConfig
	Rank  int
	LP    *LocalPartition
	Model *Model

	opt   optim.Optimizer
	strat Strategy
	view  PartitionView
	plan  Plan

	globalTrainCount int
	epoch            int
	evalModel        *Model
	evalTrainer      *FullTrainer
	flatGrad         []float32 // reusable gradient AllReduce buffer
	// arrCh is the completion queue of the arrival-order drain: every
	// notify-posted halo receive delivers its peer's rank here when the
	// payload becomes consumable. Capacity K covers the at most K−1
	// notifications outstanding per phase, so the transport never blocks
	// delivering a token.
	arrCh chan int
}

// NewRankTrainer builds the local state for one rank of a k-way training
// run. Every rank must be constructed with the same dataset, topology, and
// config for the replicas to stay consistent.
func NewRankTrainer(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig, rank int) (*RankTrainer, error) {
	if cfg.P < 0 || cfg.P > 1 {
		return nil, fmt.Errorf("core: sampling rate p=%v outside [0,1]", cfg.P)
	}
	if rank < 0 || rank >= topo.K {
		return nil, fmt.Errorf("core: rank %d out of [0,%d)", rank, topo.K)
	}
	model, err := NewModel(cfg.Model, ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		return nil, err
	}
	rt := &RankTrainer{
		DS:    ds,
		Topo:  topo,
		Cfg:   cfg,
		Rank:  rank,
		LP:    NewLocalPartition(ds, topo, rank),
		Model: model,
		opt:   optim.NewAdam(cfg.Model.LR),
		arrCh: make(chan int, topo.K),
	}
	// The epoch-sampling strategy: BNS by default, or whatever the config's
	// factory builds. It samples against the static partition view and fills
	// the per-epoch plan, whose Active/Positions slices alias the partition
	// scratch the engine already owns — planning an epoch allocates nothing.
	if cfg.Strategy != nil {
		rt.strat = cfg.Strategy(rank)
	} else {
		rt.strat = NewBNSStrategy(cfg.P, cfg.SampleSeed, rank)
	}
	lp := rt.LP
	rt.view = PartitionView{
		Rank: rank, K: topo.K, NIn: lp.NIn, NBd: lp.NBd,
		RecvLists: topo.Recv[rank],
		SlotOwner: lp.slotOwner,
		Indptr:    lp.fullIndptr,
		Indices:   lp.fullIndices,
		TrainMask: lp.TrainMask,
		InnerDeg:  make([]int32, lp.NIn),
		SlotDeg:   make([]int32, lp.NBd),
	}
	for li, v := range lp.GlobalInner {
		rt.view.InnerDeg[li] = int32(topo.G.Degree(v))
	}
	for si, u := range lp.GlobalBoundary {
		rt.view.SlotDeg[si] = int32(topo.G.Degree(u))
	}
	rt.strat.Bind(&rt.view)
	rt.plan = Plan{Active: lp.active, Positions: lp.myPos}
	// The layers aggregate over the per-epoch subgraph; install its plan
	// once — the pointer is stable, epochGraph rebuilds the contents (and
	// bumps the plan generation, so the fused kernels' FLOP-weighted chunk
	// lists refresh lazily on first use each epoch).
	rt.Model.SetAgg(rt.LP.agg)
	// The loss normalizer is the global number of training nodes, which is a
	// property of the dataset alone — no cross-rank exchange needed.
	for _, m := range ds.TrainMask {
		if m {
			rt.globalTrainCount++
		}
	}
	rt.flatGrad = make([]float32, 0, nn.ParamCount(model.Layers()))
	return rt, nil
}

// Epoch returns the number of completed training epochs.
func (rt *RankTrainer) Epoch() int { return rt.epoch }

// TrainEpoch runs one epoch of this rank's protocol over the worker's
// transport and reports local statistics. Any panic inside the epoch —
// including the transport failure raised when a peer dies — is converted to
// an error, and the transport is aborted so every surviving rank observes a
// connection error promptly instead of deadlocking on messages that will
// never arrive.
func (rt *RankTrainer) TrainEpoch(w *comm.Worker) (st RankStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			w.Transport().Abort()
			// Wrap error panic values so callers can dispatch on the cause
			// with errors.As — the elastic supervisor keys recovery on
			// finding a *comm.TransportError in this chain.
			if e, ok := r.(error); ok {
				err = fmt.Errorf("core: rank %d: epoch %d failed: %w", rt.Rank, rt.epoch, e)
			} else {
				err = fmt.Errorf("core: rank %d: epoch %d failed: %v", rt.Rank, rt.epoch, r)
			}
		}
	}()
	st = rt.runEpoch(w)
	rt.epoch++
	return st, nil
}

// Evaluate scores this rank's model replica on the given global mask with
// exact full-graph inference (the paper reports full-graph test accuracy).
// Replicas are bit-identical across ranks, so any rank's answer is the
// global answer.
func (rt *RankTrainer) Evaluate(mask []bool) float64 {
	if rt.evalTrainer == nil {
		model, err := NewModel(rt.Cfg.Model, rt.DS.FeatureDim(), rt.DS.NumClasses)
		if err != nil {
			panic(err)
		}
		model.SetAgg(graph.NewAggIndex(rt.DS.G))
		rt.evalModel = model
		rt.evalTrainer = &FullTrainer{DS: rt.DS, Model: model, invDeg: nn.InvDegrees(rt.DS.G)}
	}
	rt.evalModel.CopyWeightsFrom(rt.Model)
	return rt.evalTrainer.Evaluate(mask)
}

// ParallelTrainer trains one model replica per partition with boundary node
// sampling, following Algorithm 1: k RankTrainers driven concurrently over
// a comm.Group, one goroutine per partition playing the role of one GPU.
type ParallelTrainer struct {
	DS      *datagen.Dataset
	Topo    *Topology
	Cfg     ParallelConfig
	Ranks   []*RankTrainer
	Locals  []*LocalPartition // aliases Ranks[i].LP
	Cluster *comm.Cluster
	Models  []*Model // aliases Ranks[i].Model

	epoch    int
	statsBuf []RankStats
}

// NewParallelTrainer builds local partitions, one model replica per worker
// (identically initialized), and an in-process channel cluster.
func NewParallelTrainer(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig) (*ParallelTrainer, error) {
	if cfg.P < 0 || cfg.P > 1 {
		return nil, fmt.Errorf("core: sampling rate p=%v outside [0,1]", cfg.P)
	}
	return NewParallelTrainerOver(ds, topo, cfg, comm.New(topo.K, 0))
}

// NewParallelTrainerOver is the backend-agnostic constructor: it accepts any
// group of k transport endpoints — the channel cluster NewParallelTrainer
// defaults to, or k loopback TCP endpoints as the cross-backend equivalence
// tests use — and drives the identical protocol over it.
func NewParallelTrainerOver(ds *datagen.Dataset, topo *Topology, cfg ParallelConfig, g *comm.Group) (*ParallelTrainer, error) {
	k := topo.K
	if g.Size() != k {
		return nil, fmt.Errorf("core: transport group has %d ranks, topology has %d", g.Size(), k)
	}
	t := &ParallelTrainer{
		DS:      ds,
		Topo:    topo,
		Cfg:     cfg,
		Cluster: g,
	}
	for i := 0; i < k; i++ {
		rt, err := NewRankTrainer(ds, topo, cfg, i)
		if err != nil {
			return nil, err
		}
		t.Ranks = append(t.Ranks, rt)
		t.Locals = append(t.Locals, rt.LP)
		t.Models = append(t.Models, rt.Model)
	}
	t.statsBuf = make([]RankStats, k)
	return t, nil
}

// RankStats collects one rank's per-epoch timing and byte counters. Loss is
// the rank's contribution to the global loss (the per-node losses of its
// inner training nodes over the global normalizer), so summing across ranks
// yields the global training loss. Comm is the raw exchange span,
// CommExposed its unoverlapped portion (see EpochStats).
type RankStats struct {
	Loss                          float64
	Sample, Compute, Comm, Reduce time.Duration
	CommExposed                   time.Duration
	CommBytes, ReduceBytes        int64
	SampledBd                     int
}

// TrainEpoch runs one synchronized BNS-GCN epoch across all partitions and
// returns aggregate statistics.
func (t *ParallelTrainer) TrainEpoch() *EpochStats {
	k := t.Topo.K
	stats := t.statsBuf
	t.Cluster.Run(func(w *comm.Worker) {
		// A panic on one rank (protocol bug, NaN guard, model error) aborts
		// the transport so the other ranks fail fast instead of blocking on
		// messages that will never arrive; the panic still propagates
		// through Run.
		defer func() {
			if r := recover(); r != nil {
				w.Transport().Abort()
				panic(r)
			}
		}()
		stats[w.Rank()] = t.Ranks[w.Rank()].runEpoch(w)
	})
	t.epoch++
	for _, rt := range t.Ranks {
		rt.epoch++
	}

	agg := &EpochStats{SampledBd: make([]int, k)}
	for i, s := range stats {
		agg.Loss += s.Loss
		agg.CommBytes += s.CommBytes
		agg.ReduceBytes += s.ReduceBytes
		agg.SampledBd[i] = s.SampledBd
		if s.Sample > agg.SampleTime {
			agg.SampleTime = s.Sample
		}
		if s.Compute > agg.ComputeTime {
			agg.ComputeTime = s.Compute
		}
		if s.Comm > agg.CommTime {
			agg.CommTime = s.Comm
		}
		if s.CommExposed > agg.ExposedCommTime {
			agg.ExposedCommTime = s.CommExposed
		}
		if s.Reduce > agg.ReduceTime {
			agg.ReduceTime = s.Reduce
		}
	}
	return agg
}

// Evaluate scores the trained model on the given global mask with exact
// full-graph inference (the paper reports full-graph test accuracy).
func (t *ParallelTrainer) Evaluate(mask []bool) float64 {
	return t.Ranks[0].Evaluate(mask)
}

// Epoch returns the number of completed training epochs.
func (t *ParallelTrainer) Epoch() int { return t.epoch }
