package core

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"

	"repro/internal/tensor"
)

// trainingSignature runs 4 epochs and folds the per-epoch losses followed by
// rank 0's final weights into one FNV-64a hash, returning it with the summed
// halo payload bytes. Any numeric or traffic drift — a changed RNG draw, a
// reordered float add, one extra byte on the wire — changes the signature.
func trainingSignature(t *testing.T, tr *ParallelTrainer) (uint64, int64) {
	t.Helper()
	h := fnv.New64a()
	var bytes int64
	var buf [8]byte
	for e := 0; e < 4; e++ {
		st := tr.TrainEpoch()
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(st.Loss))
		h.Write(buf[:])
		bytes += st.CommBytes
	}
	for _, p := range tr.Models[0].Params() {
		for _, v := range p.Data {
			binary.LittleEndian.PutUint32(buf[:4], math.Float32bits(v))
			h.Write(buf[:4])
		}
	}
	return h.Sum64(), bytes
}

// TestBNSStrategyGolden pins the strategy-hosted BNS path to signatures
// captured from the pre-Strategy engine (the baked-in sampling loop in
// runEpoch), for both architectures and k ∈ {2, 4}. These constants are the
// refactor's bit-identity proof: if the Strategy extraction ever perturbs the
// RNG stream, the estimator arithmetic, or the wire protocol, this fails.
// They must only be re-captured for an intentional numerics change.
//
// The comm-byte counts are pure functions of the sampling RNG stream and
// hold on any box. The weight hashes additionally encode float summation
// order, which varies with the kernel worker-pool width — they are asserted
// only when the pool matches the capture width (GOMAXPROCS=1); the
// schedule/transport equivalence matrix carries the within-width proof
// elsewhere.
func TestBNSStrategyGolden(t *testing.T) {
	golden := map[Arch]map[int]struct {
		hash      uint64
		commBytes int64
	}{
		ArchSAGE: {
			2: {hash: 0x8fbb542f236902be, commBytes: 116864},
			4: {hash: 0x930a70ead12a10a5, commBytes: 253616},
		},
		ArchGAT: {
			2: {hash: 0x5267982eab5a7a30, commBytes: 116864},
			4: {hash: 0x5b98fb8695488be, commBytes: 253616},
		},
	}
	for _, arch := range []Arch{ArchSAGE, ArchGAT} {
		for _, k := range []int{2, 4} {
			ds := testDataset(t, uint64(70+k))
			topo := testTopology(t, ds, k)
			mc := ModelConfig{Arch: arch, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
			cfg := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 17, Schedule: ScheduleSerialized}
			tr, err := NewParallelTrainer(ds, topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hash, bytes := trainingSignature(t, tr)
			want := golden[arch][k]
			if tensor.Parallelism() == 1 {
				if hash != want.hash {
					t.Errorf("%s k=%d: signature %#x, want pre-refactor %#x", arch, k, hash, want.hash)
				}
			} else {
				t.Logf("%s k=%d: kernel pool width %d != capture width 1, weight-hash check skipped", arch, k, tensor.Parallelism())
			}
			if bytes != want.commBytes {
				t.Errorf("%s k=%d: comm bytes %d, want pre-refactor %d", arch, k, bytes, want.commBytes)
			}
		}
	}
}

// TestExplicitBNSFactoryMatchesDefault checks that wiring BNS through
// ParallelConfig.Strategy (as cmd/bnsgcn's -sampler=bns does) is the same
// engine as leaving Strategy nil: same losses, same weights, same traffic.
func TestExplicitBNSFactoryMatchesDefault(t *testing.T) {
	ds := testDataset(t, 72)
	topo := testTopology(t, ds, 2)
	mc := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
	base := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 17, Schedule: ScheduleOverlap}
	explicit := base
	explicit.Strategy = func(rank int) Strategy { return NewBNSStrategy(base.P, base.SampleSeed, rank) }

	trDefault, err := NewParallelTrainer(ds, topo, base)
	if err != nil {
		t.Fatal(err)
	}
	trExplicit, err := NewParallelTrainer(ds, topo, explicit)
	if err != nil {
		t.Fatal(err)
	}
	hd, bd := trainingSignature(t, trDefault)
	he, be := trainingSignature(t, trExplicit)
	if hd != he || bd != be {
		t.Fatalf("explicit BNS factory diverged from default: (%#x,%d) vs (%#x,%d)", he, be, hd, bd)
	}
}
