package core

import (
	"runtime"
	"testing"
)

// TestTCPTrainEpochSteadyStateAllocs pins the recv-buffer pooling on the TCP
// path (ROADMAP open item): after warm-up, a k=2 loopback epoch must run off
// the transport's pooled buffers — serialized outgoing frames, incoming
// frame payloads, and decoded float32 payloads are all recycled — leaving
// only the small fixed overhead of the per-epoch goroutine fan-out, the
// position messages (one int32 slice per peer), and the kernel-pool
// hand-off. Before pooling, every frame allocated its payload twice (socket
// read + decode) and every send serialized into a growing buffer under a
// lock, which scaled with message count and payload size.
func TestTCPTrainEpochSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc budgets only hold without -race")
	}
	for _, sched := range []Schedule{ScheduleSerialized, ScheduleOverlapRank, ScheduleOverlap} {
		ds := testDataset(t, 55)
		const k = 2
		topo := testTopology(t, ds, k)
		cfg := ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 3, Schedule: sched}
		tr, err := NewParallelTrainerOver(ds, topo, cfg, tcpLoopbackGroup(t, k))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			tr.TrainEpoch() // warm up layer scratch, workspaces, and transport pools
		}
		// The fixed overhead mirrors the channel-backend budget in
		// TestTrainEpochSteadyStateAllocs, plus a small per-message term for
		// the position exchanges and scheduler churn of the four demux/writer
		// goroutines. The important property is that the budget is
		// independent of payload sizes and layer count × message volume.
		budget := float64(80)
		if procs := runtime.GOMAXPROCS(0); procs > 1 {
			budget += 50 * float64(procs)
		}
		allocs := testing.AllocsPerRun(10, func() {
			tr.TrainEpoch()
		})
		if allocs > budget {
			t.Errorf("%s: steady-state TCP TrainEpoch allocates %.0f objects/epoch, budget %.0f",
				sched, allocs, budget)
		}
		t.Logf("%s: steady-state TCP allocs/epoch = %.0f", sched, allocs)
	}
}
