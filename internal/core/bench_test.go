package core

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/partition"
)

func benchTrainer(b *testing.B, p float64, k int) *ParallelTrainer {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "bench", Nodes: 2000, Communities: 8, AvgDegree: 16,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 32,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, k)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 32, Dropout: 0, LR: 0.01, Seed: 1}
	tr, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: p, SampleSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkEpochVanilla is partition-parallel training without sampling.
func BenchmarkEpochVanilla(b *testing.B) {
	tr := benchTrainer(b, 1.0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch()
	}
}

// BenchmarkEpochBNS01 shows the per-epoch effect of p=0.1 sampling.
func BenchmarkEpochBNS01(b *testing.B) {
	tr := benchTrainer(b, 0.1, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch()
	}
}

// BenchmarkEpochIsolated is the p=0 lower bound (no communication).
func BenchmarkEpochIsolated(b *testing.B) {
	tr := benchTrainer(b, 0.0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch()
	}
}

func BenchmarkBuildTopology(b *testing.B) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "bench", Nodes: 5000, Communities: 8, AvgDegree: 16,
		IntraFrac: 0.7, DegreeSkew: 1.8, FeatureDim: 4,
		TrainFrac: 0.5, ValFrac: 0.2, Seed: 1, StructureOnly: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTopology(ds.G, parts, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// benchHighDegTrainer builds a redditsim-shaped high-degree workload where
// neighbor aggregation (avg degree ~96) dominates the epoch — the shape the
// sparse SpMM engine targets.
func benchHighDegTrainer(b *testing.B, p float64, k int) *ParallelTrainer {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "redditsim-bench", Nodes: 2500, Communities: 32, AvgDegree: 96,
		IntraFrac: 0.65, DegreeSkew: 2.0, FeatureDim: 48,
		FeatureSignal: 0.14, FeatureNoise: 1.0,
		TrainFrac: 0.66, ValFrac: 0.10, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, k)
	if err != nil {
		b.Fatal(err)
	}
	cfg := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 64, Dropout: 0, LR: 0.01, Seed: 1}
	tr, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: p, SampleSeed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkEpochHighDegK1 and K4 are the aggregation-dominated epoch rows of
// BENCH_hotpath.json's aggregation section (k = partition count).
func BenchmarkEpochHighDegK1(b *testing.B) {
	tr := benchHighDegTrainer(b, 1.0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch()
	}
}

func BenchmarkEpochHighDegK4(b *testing.B) {
	tr := benchHighDegTrainer(b, 1.0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.TrainEpoch()
	}
}
