package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/partition"
)

// testDataset is a small community graph used across core tests.
func testDataset(t *testing.T, seed uint64) *datagen.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "core-test", Nodes: 600, Communities: 6, AvgDegree: 10,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 12,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func testTopology(t *testing.T, ds *datagen.Dataset, k int) *Topology {
	t.Helper()
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, k)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func testModelConfig() ModelConfig {
	return ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0, LR: 0.01, Seed: 42}
}

// TestParallelP1MatchesFullGraph is the central correctness property:
// partition-parallel training with p=1 and no dropout is mathematically
// identical to single-process full-graph training, for any partition count.
func TestParallelP1MatchesFullGraph(t *testing.T) {
	ds := testDataset(t, 1)
	full, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 4} {
		topo := testTopology(t, ds, k)
		par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 1.0, SampleSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		// Fresh full trainer per k so optimizer state starts equal.
		full, err = NewFullTrainer(ds, testModelConfig())
		if err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 5; epoch++ {
			fLoss := full.TrainEpoch()
			stats := par.TrainEpoch()
			if math.Abs(fLoss-stats.Loss) > 1e-3*(1+math.Abs(fLoss)) {
				t.Fatalf("k=%d epoch %d: full loss %v vs parallel %v", k, epoch, fLoss, stats.Loss)
			}
		}
		fAcc := full.Evaluate(ds.TestMask)
		pAcc := par.Evaluate(ds.TestMask)
		if math.Abs(fAcc-pAcc) > 0.02 {
			t.Fatalf("k=%d: full acc %v vs parallel %v", k, fAcc, pAcc)
		}
	}
}

// TestCommBytesMatchEq3 checks the byte counters against Eq. 3 exactly:
// per epoch at p=1, forward traffic is Vol·Σ_ℓ d_ℓ floats and backward
// traffic is Vol·Σ_{ℓ≥1} d_ℓ floats.
func TestCommBytesMatchEq3(t *testing.T) {
	ds := testDataset(t, 2)
	topo := testTopology(t, ds, 3)
	cfg := testModelConfig()
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: 1.0, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats := par.TrainEpoch()
	vol := topo.CommVolume()
	dims := par.Models[0].LayerInputDims()
	var wantFloats int64
	for l, d := range dims {
		wantFloats += vol * int64(d) // forward layer l
		if l >= 1 {
			wantFloats += vol * int64(d) // backward layer l
		}
	}
	if stats.CommBytes != 4*wantFloats {
		t.Fatalf("comm bytes %d, want %d", stats.CommBytes, 4*wantFloats)
	}
}

func TestP0HasNoFeatureTraffic(t *testing.T) {
	ds := testDataset(t, 3)
	topo := testTopology(t, ds, 3)
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	stats := par.TrainEpoch()
	if stats.CommBytes != 0 {
		t.Fatalf("p=0 sent %d feature bytes", stats.CommBytes)
	}
	for _, n := range stats.SampledBd {
		if n != 0 {
			t.Fatal("p=0 sampled boundary nodes")
		}
	}
}

func TestSampledBoundaryCountNearP(t *testing.T) {
	ds := testDataset(t, 4)
	topo := testTopology(t, ds, 4)
	p := 0.3
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: p, SampleSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var total, expect float64
	for epoch := 0; epoch < 10; epoch++ {
		stats := par.TrainEpoch()
		for _, n := range stats.SampledBd {
			total += float64(n)
		}
		expect += p * float64(topo.CommVolume())
	}
	if math.Abs(total-expect) > 0.15*expect {
		t.Fatalf("sampled %v boundary nodes over 10 epochs, expected ~%v", total, expect)
	}
}

func TestBNSTrainingReachesUsefulAccuracy(t *testing.T) {
	ds := testDataset(t, 5)
	topo := testTopology(t, ds, 3)
	cfg := testModelConfig()
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: 0.25, SampleSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 40; epoch++ {
		par.TrainEpoch()
	}
	acc := par.Evaluate(ds.TestMask)
	if acc < 0.5 { // random would be 1/6
		t.Fatalf("BNS p=0.25 accuracy %v too low", acc)
	}
}

func TestParallelDeterministic(t *testing.T) {
	ds := testDataset(t, 6)
	topo := testTopology(t, ds, 3)
	run := func() []float64 {
		par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 9})
		if err != nil {
			t.Fatal(err)
		}
		var losses []float64
		for epoch := 0; epoch < 3; epoch++ {
			losses = append(losses, par.TrainEpoch().Loss)
		}
		return losses
	}
	a, b := run(), run()
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestLocalPartitionStructure(t *testing.T) {
	ds := testDataset(t, 7)
	topo := testTopology(t, ds, 4)
	for i := 0; i < 4; i++ {
		lp := NewLocalPartition(ds, topo, i)
		if lp.NIn != len(topo.Inner[i]) || lp.NBd != len(topo.Boundary[i]) {
			t.Fatalf("partition %d sizes wrong", i)
		}
		// Every inner node's local adjacency must reference valid local ids
		// and correspond to a real global edge.
		for v := 0; v < lp.NIn; v++ {
			gv := lp.GlobalInner[v]
			nbrs := lp.fullIndices[lp.fullIndptr[v]:lp.fullIndptr[v+1]]
			if len(nbrs) != ds.G.Degree(gv) {
				t.Fatalf("partition %d node %d: %d local nbrs, %d global", i, v, len(nbrs), ds.G.Degree(gv))
			}
			for _, u := range nbrs {
				var gu int32
				if int(u) < lp.NIn {
					gu = lp.GlobalInner[u]
				} else {
					gu = lp.GlobalBoundary[int(u)-lp.NIn]
				}
				if !ds.G.HasEdge(gv, gu) {
					t.Fatalf("phantom local edge %d-%d", gv, gu)
				}
			}
		}
	}
}

func TestEpochGraphFiltersInactive(t *testing.T) {
	ds := testDataset(t, 8)
	topo := testTopology(t, ds, 2)
	lp := NewLocalPartition(ds, topo, 0)
	// All active: full degree.
	for i := range lp.active {
		lp.active[i] = true
	}
	gFull := lp.epochGraph()
	fullEdges := gFull.NumDirectedEdges()
	// Only inner active: no halo edges remain.
	for i := range lp.active {
		lp.active[i] = i < lp.NIn
	}
	gInner := lp.epochGraph()
	if gInner.NumDirectedEdges() >= fullEdges {
		t.Fatal("filtering inactive halos did not drop edges")
	}
	for v := 0; v < lp.NIn; v++ {
		for _, u := range gInner.Neighbors(int32(v)) {
			if int(u) >= lp.NIn {
				t.Fatal("inactive halo survived filtering")
			}
		}
	}
}

func TestEvaluateUsesRankZeroWeights(t *testing.T) {
	ds := testDataset(t, 9)
	topo := testTopology(t, ds, 2)
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 1, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	before := par.Evaluate(ds.ValMask)
	for i := 0; i < 15; i++ {
		par.TrainEpoch()
	}
	after := par.Evaluate(ds.ValMask)
	if after <= before {
		t.Fatalf("training did not improve val score: %v -> %v", before, after)
	}
}

func TestParallelRejectsBadP(t *testing.T) {
	ds := testDataset(t, 10)
	topo := testTopology(t, ds, 2)
	if _, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 1.5}); err == nil {
		t.Fatal("p>1 must be rejected")
	}
	if _, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: -0.1}); err == nil {
		t.Fatal("p<0 must be rejected")
	}
}

func TestGATParallelRuns(t *testing.T) {
	ds := testDataset(t, 11)
	topo := testTopology(t, ds, 2)
	cfg := ModelConfig{Arch: ArchGAT, Layers: 2, Hidden: 8, Dropout: 0, LR: 0.01, Seed: 3}
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: 0.5, SampleSeed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for epoch := 0; epoch < 5; epoch++ {
		last = par.TrainEpoch().Loss
		if math.IsNaN(last) {
			t.Fatal("GAT loss is NaN")
		}
	}
}
