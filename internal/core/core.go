package core
