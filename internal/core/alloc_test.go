package core

import (
	"runtime"
	"testing"

	"repro/internal/datagen"
	"repro/internal/partition"
)

// allocTrainer builds a small 4-partition trainer for allocation tests.
func allocTrainer(t testing.TB, p float64) *ParallelTrainer {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "alloc", Nodes: 1200, Communities: 6, AvgDegree: 12,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 32,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 7}).Partition(ds.G, 4)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, 4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 32, Dropout: 0.5, LR: 0.01, Seed: 7}
	tr, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: p, SampleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTrainEpochSteadyStateAllocs pins the zero-allocation hot path: after
// warm-up, one BNS-GCN epoch must allocate only the small fixed overhead of
// the per-epoch goroutine fan-out (Cluster.Run) and the returned stats — far
// below the per-epoch matrices the seed implementation churned through.
func TestTrainEpochSteadyStateAllocs(t *testing.T) {
	for _, p := range []float64{1.0, 0.1} {
		tr := allocTrainer(t, p)
		for i := 0; i < 3; i++ {
			tr.TrainEpoch() // warm up layer scratch and epoch workspaces
		}
		// Measured steady state ≈15 single-proc (seed: ~380). With more
		// procs the parallel kernels add bounded per-call overhead (task
		// closures, pooled partial hand-off, goroutine spawns).
		budget := float64(40)
		if procs := runtime.GOMAXPROCS(0); procs > 1 {
			budget += 50 * float64(procs)
		}
		allocs := testing.AllocsPerRun(10, func() {
			tr.TrainEpoch()
		})
		if allocs > budget {
			t.Errorf("p=%v: steady-state TrainEpoch allocates %.0f objects/epoch, budget %.0f", p, allocs, budget)
		}
		t.Logf("p=%v: steady-state allocs/epoch = %.0f", p, allocs)
	}
}
