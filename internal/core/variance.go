package core

import (
	"repro/internal/tensor"
)

// VarianceReport holds the empirical feature-approximation variance of one
// sampling scheme, the quantity Table 2 and Appendix A bound analytically:
// E‖Z̃ − Z‖²_F / |V|, where Z is the exact mean-aggregated feature matrix
// over inner nodes and Z̃ its estimate under sampling with 1/p rescaling.
type VarianceReport struct {
	Scheme   string
	P        float64
	Trials   int
	Variance float64 // E‖Z̃−Z‖²_F / |V|
	Bound    float64 // analytic upper bound γ²·Σᵢ‖P_{Vi,Bi}‖²_F / (p·|V|)
}

// aggregateExact computes Z rows for partition i's inner nodes: the mean of
// all neighbor features under global-degree normalization.
func aggregateExact(t *Topology, feats *tensor.Matrix, i int) *tensor.Matrix {
	inner := t.Inner[i]
	z := tensor.New(len(inner), feats.Cols)
	for li, v := range inner {
		row := z.Row(li)
		nbrs := t.G.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		for _, u := range nbrs {
			for c, x := range feats.Row(int(u)) {
				row[c] += x
			}
		}
		s := 1 / float32(len(nbrs))
		for c := range row {
			row[c] *= s
		}
	}
	return z
}

// aggregateSampled computes Z̃ for partition i given a keep mask over global
// nodes: local neighbors always contribute; remote neighbors contribute
// x/p when kept and 0 otherwise.
func aggregateSampled(t *Topology, feats *tensor.Matrix, i int, keep []bool, p float64) *tensor.Matrix {
	inner := t.Inner[i]
	invP := float32(1 / p)
	z := tensor.New(len(inner), feats.Cols)
	for li, v := range inner {
		row := z.Row(li)
		nbrs := t.G.Neighbors(v)
		if len(nbrs) == 0 {
			continue
		}
		for _, u := range nbrs {
			if t.Parts[u] == int32(i) {
				for c, x := range feats.Row(int(u)) {
					row[c] += x
				}
			} else if keep[u] {
				for c, x := range feats.Row(int(u)) {
					row[c] += x * invP
				}
			}
		}
		s := 1 / float32(len(nbrs))
		for c := range row {
			row[c] *= s
		}
	}
	return z
}

// MeasureBNSVariance estimates the BNS feature-approximation variance
// empirically over the given number of trials, and computes the analytic
// Appendix A bound for comparison.
func MeasureBNSVariance(t *Topology, feats *tensor.Matrix, p float64, trials int, seed uint64) VarianceReport {
	rep := VarianceReport{Scheme: "BNS", P: p, Trials: trials}
	if p <= 0 || p > 1 {
		panic("core: variance measurement needs 0 < p <= 1")
	}
	rng := tensor.NewRNG(seed)

	exact := make([]*tensor.Matrix, t.K)
	for i := 0; i < t.K; i++ {
		exact[i] = aggregateExact(t, feats, i)
	}

	keep := make([]bool, t.G.N)
	var sumSq float64
	for trial := 0; trial < trials; trial++ {
		// Each partition samples its boundary set independently; a node may
		// be kept by one partition and dropped by another. Sampling is per
		// (partition, boundary node); reuse one keep mask per partition.
		for i := 0; i < t.K; i++ {
			for j := range keep {
				keep[j] = false
			}
			for _, u := range t.Boundary[i] {
				if rng.Float64() < p {
					keep[u] = true
				}
			}
			zt := aggregateSampled(t, feats, i, keep, p)
			zt.Sub(exact[i])
			n := zt.FrobeniusNorm()
			sumSq += n * n
		}
	}
	rep.Variance = sumSq / float64(trials) / float64(t.G.N)

	// Analytic bound: γ² Σ_i ‖P_{Vi,Bi}‖²_F / (p |V|) with P the mean-
	// aggregation operator (row v has entries 1/deg(v) at its neighbors).
	var gamma2 float64
	for v := 0; v < feats.Rows; v++ {
		var s float64
		for _, x := range feats.Row(v) {
			s += float64(x) * float64(x)
		}
		if s > gamma2 {
			gamma2 = s
		}
	}
	var frob float64
	for i := 0; i < t.K; i++ {
		for _, v := range t.Inner[i] {
			d := float64(t.G.Degree(v))
			if d == 0 {
				continue
			}
			remote := 0
			for _, u := range t.G.Neighbors(v) {
				if t.Parts[u] != int32(i) {
					remote++
				}
			}
			frob += float64(remote) / (d * d)
		}
	}
	rep.Bound = gamma2 * frob / (p * float64(t.G.N))
	return rep
}
