package core

import (
	"testing"

	"repro/internal/comm"
)

// TestOverlapBitIdentical is the pipelined engine's equivalence proof: the
// same seeded dataset trained with the overlapped schedule must produce,
// epoch for epoch, bit-identical losses, bit-identical weights on every
// rank, and identical per-rank payload byte/message counts as the serialized
// schedule — over both transports, for k ∈ {2, 4}, for both architectures,
// with dropout on (the mask RNG stream order is part of the contract) and
// p < 1 (so sampling, the row split, and the halo exchange all vary by
// epoch).
func TestOverlapBitIdentical(t *testing.T) {
	for _, arch := range []Arch{ArchSAGE, ArchGAT} {
		for _, k := range []int{2, 4} {
			ds := testDataset(t, uint64(70+k))
			topo := testTopology(t, ds, k)
			mc := ModelConfig{Arch: arch, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
			base := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 17}
			over := base
			over.Overlap = true

			type run struct {
				name string
				tr   *ParallelTrainer
			}
			mk := func(name string, cfg ParallelConfig, g *comm.Group) run {
				t.Helper()
				var tr *ParallelTrainer
				var err error
				if g == nil {
					tr, err = NewParallelTrainer(ds, topo, cfg)
				} else {
					tr, err = NewParallelTrainerOver(ds, topo, cfg, g)
				}
				if err != nil {
					t.Fatal(err)
				}
				return run{name: name, tr: tr}
			}
			runs := []run{
				mk("chan/serialized", base, nil),
				mk("chan/overlap", over, nil),
				mk("tcp/serialized", base, tcpLoopbackGroup(t, k)),
				mk("tcp/overlap", over, tcpLoopbackGroup(t, k)),
			}

			const epochs = 4
			for e := 0; e < epochs; e++ {
				ref := runs[0].tr.TrainEpoch()
				for _, r := range runs[1:] {
					st := r.tr.TrainEpoch()
					if st.Loss != ref.Loss {
						t.Fatalf("%s arch=%s k=%d epoch %d: loss %.17g != serialized %.17g",
							r.name, arch, k, e, st.Loss, ref.Loss)
					}
					if st.CommBytes != ref.CommBytes || st.ReduceBytes != ref.ReduceBytes {
						t.Fatalf("%s arch=%s k=%d epoch %d: traffic (%d,%d) != serialized (%d,%d)",
							r.name, arch, k, e, st.CommBytes, st.ReduceBytes, ref.CommBytes, ref.ReduceBytes)
					}
				}
			}
			for r := 0; r < k; r++ {
				for _, rr := range runs[1:] {
					if d := MaxParamDiff(runs[0].tr.Models[r], rr.tr.Models[r]); d != 0 {
						t.Fatalf("%s arch=%s k=%d rank %d: weights diverged by %v", rr.name, arch, k, r, d)
					}
					if cb, ob := runs[0].tr.Cluster.BytesSent(r), rr.tr.Cluster.BytesSent(r); cb != ob {
						t.Fatalf("%s arch=%s k=%d rank %d: payload bytes %d != serialized %d", rr.name, arch, k, r, ob, cb)
					}
					if cm, om := runs[0].tr.Cluster.MessagesSent(r), rr.tr.Cluster.MessagesSent(r); cm != om {
						t.Fatalf("%s arch=%s k=%d rank %d: messages %d != serialized %d", rr.name, arch, k, r, om, cm)
					}
				}
			}
		}
	}
}

// TestOverlapWorstCaseAllBoundaryDependent pins the degenerate schedule: at
// p=1 on a topology where every inner node of every partition has a remote
// neighbor, the halo-free chunk can be empty (zero overlap available) and
// the pipelined schedule must still be exactly equivalent.
func TestOverlapWorstCaseAllBoundaryDependent(t *testing.T) {
	ds := testDataset(t, 31)
	const k = 2
	topo := testTopology(t, ds, k)
	mc := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.5, LR: 0.01, Seed: 3}
	base := ParallelConfig{Model: mc, P: 1, SampleSeed: 13}
	over := base
	over.Overlap = true

	a, err := NewParallelTrainer(ds, topo, base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParallelTrainer(ds, topo, over)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		sa, sb := a.TrainEpoch(), b.TrainEpoch()
		if sa.Loss != sb.Loss {
			t.Fatalf("epoch %d: loss diverged %.17g vs %.17g", e, sa.Loss, sb.Loss)
		}
	}
	for r := 0; r < k; r++ {
		if d := MaxParamDiff(a.Models[r], b.Models[r]); d != 0 {
			t.Fatalf("rank %d diverged by %v", r, d)
		}
	}
}

// TestSplitRowsPartition checks the per-epoch row split invariants the
// engine relies on: haloFree ∪ haloDep = [0, NIn) ascending and disjoint,
// and haloSlots exactly the sampled boundary slots.
func TestSplitRowsPartition(t *testing.T) {
	ds := testDataset(t, 8)
	topo := testTopology(t, ds, 3)
	tr, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.3, SampleSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch()
	for r, lp := range tr.Locals {
		seen := make([]int, lp.NIn)
		last := int32(-1)
		for _, v := range lp.haloFree {
			seen[v]++
		}
		for _, v := range lp.haloDep {
			seen[v]++
			if v <= last {
				t.Fatalf("rank %d: haloDep not ascending", r)
			}
			last = v
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("rank %d: inner row %d covered %d times", r, v, c)
			}
		}
		nSlots := 0
		for s := lp.NIn; s < lp.NIn+lp.NBd; s++ {
			if lp.active[s] {
				nSlots++
			}
		}
		if len(lp.haloSlots) != nSlots {
			t.Fatalf("rank %d: %d halo slots listed, %d active", r, len(lp.haloSlots), nSlots)
		}
	}
}
