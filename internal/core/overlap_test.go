package core

import (
	"testing"
	"time"

	"repro/internal/comm"
)

// TestOverlapBitIdentical is the pipelined engine's equivalence proof: the
// same seeded dataset trained with the pipelined schedules — rank-order
// drain and arrival-order drain — must produce, epoch for epoch,
// bit-identical losses, bit-identical weights on every rank, and identical
// per-rank payload byte/message counts as the serialized schedule — over
// both transports, for k ∈ {2, 4}, for both architectures, with dropout on
// (the mask RNG stream order is part of the contract) and p < 1 (so
// sampling, the row split, and the halo exchange all vary by epoch).
func TestOverlapBitIdentical(t *testing.T) {
	for _, arch := range []Arch{ArchSAGE, ArchGAT} {
		for _, k := range []int{2, 4} {
			ds := testDataset(t, uint64(70+k))
			topo := testTopology(t, ds, k)
			mc := ModelConfig{Arch: arch, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 42}
			base := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 17, Schedule: ScheduleSerialized}
			rankOrder := base
			rankOrder.Schedule = ScheduleOverlapRank
			arrivalOrder := base
			arrivalOrder.Schedule = ScheduleOverlap

			type run struct {
				name string
				tr   *ParallelTrainer
			}
			mk := func(name string, cfg ParallelConfig, g *comm.Group) run {
				t.Helper()
				var tr *ParallelTrainer
				var err error
				if g == nil {
					tr, err = NewParallelTrainer(ds, topo, cfg)
				} else {
					tr, err = NewParallelTrainerOver(ds, topo, cfg, g)
				}
				if err != nil {
					t.Fatal(err)
				}
				return run{name: name, tr: tr}
			}
			runs := []run{
				mk("chan/serialized", base, nil),
				mk("chan/overlap-rank", rankOrder, nil),
				mk("chan/overlap-arrival", arrivalOrder, nil),
				mk("tcp/serialized", base, tcpLoopbackGroup(t, k)),
				mk("tcp/overlap-rank", rankOrder, tcpLoopbackGroup(t, k)),
				mk("tcp/overlap-arrival", arrivalOrder, tcpLoopbackGroup(t, k)),
			}

			const epochs = 4
			for e := 0; e < epochs; e++ {
				ref := runs[0].tr.TrainEpoch()
				for _, r := range runs[1:] {
					st := r.tr.TrainEpoch()
					if st.Loss != ref.Loss {
						t.Fatalf("%s arch=%s k=%d epoch %d: loss %.17g != serialized %.17g",
							r.name, arch, k, e, st.Loss, ref.Loss)
					}
					if st.CommBytes != ref.CommBytes || st.ReduceBytes != ref.ReduceBytes {
						t.Fatalf("%s arch=%s k=%d epoch %d: traffic (%d,%d) != serialized (%d,%d)",
							r.name, arch, k, e, st.CommBytes, st.ReduceBytes, ref.CommBytes, ref.ReduceBytes)
					}
				}
			}
			for r := 0; r < k; r++ {
				for _, rr := range runs[1:] {
					if d := MaxParamDiff(runs[0].tr.Models[r], rr.tr.Models[r]); d != 0 {
						t.Fatalf("%s arch=%s k=%d rank %d: weights diverged by %v", rr.name, arch, k, r, d)
					}
					if cb, ob := runs[0].tr.Cluster.BytesSent(r), rr.tr.Cluster.BytesSent(r); cb != ob {
						t.Fatalf("%s arch=%s k=%d rank %d: payload bytes %d != serialized %d", rr.name, arch, k, r, ob, cb)
					}
					if cm, om := runs[0].tr.Cluster.MessagesSent(r), rr.tr.Cluster.MessagesSent(r); cm != om {
						t.Fatalf("%s arch=%s k=%d rank %d: messages %d != serialized %d", rr.name, arch, k, r, om, cm)
					}
				}
			}
		}
	}
}

// TestOverlapArrivalSkewedLinksBitIdentical forces peer completion order to
// invert — a skewed comm.WithLinkModel makes the lowest-rank peer's payloads
// the slowest, so the arrival-order drain consumes peers in descending rank
// order while the rank-order drain head-of-line blocks — and requires the
// results to stay bit-identical to the un-modeled serialized schedule for
// both architectures and both pipelined drains. This is the determinism
// argument under real out-of-order completion, not just under loopback's
// near-FIFO timing.
func TestOverlapArrivalSkewedLinksBitIdentical(t *testing.T) {
	for _, k := range []int{2, 4} {
		ds := testDataset(t, uint64(90+k))
		topo := testTopology(t, ds, k)
		mc := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 8}
		base := ParallelConfig{Model: mc, P: 0.5, SampleSeed: 29, Schedule: ScheduleSerialized}

		// Lower source rank ⇒ slower link, everywhere.
		model := comm.LinkModel{
			PerLink: map[comm.Link]time.Duration{},
			Jitter:  100 * time.Microsecond,
			Seed:    5,
		}
		for s := 0; s < k; s++ {
			for d := 0; d < k; d++ {
				if s != d {
					model.PerLink[comm.Link{Src: s, Dst: d}] = time.Duration(k-s) * 800 * time.Microsecond
				}
			}
		}

		ref, err := NewParallelTrainer(ds, topo, base)
		if err != nil {
			t.Fatal(err)
		}
		type skewed struct {
			name string
			tr   *ParallelTrainer
		}
		var runs []skewed
		for _, sched := range []Schedule{ScheduleOverlapRank, ScheduleOverlap} {
			cfg := base
			cfg.Schedule = sched
			tr, err := NewParallelTrainerOver(ds, topo, cfg, comm.WithLinkModel(comm.New(k, 0), model))
			if err != nil {
				t.Fatal(err)
			}
			runs = append(runs, skewed{name: sched.String(), tr: tr})
		}
		const epochs = 3
		for e := 0; e < epochs; e++ {
			want := ref.TrainEpoch()
			for _, r := range runs {
				got := r.tr.TrainEpoch()
				if got.Loss != want.Loss {
					t.Fatalf("k=%d %s epoch %d: loss %.17g != %.17g under skewed links", k, r.name, e, got.Loss, want.Loss)
				}
			}
		}
		for r := 0; r < k; r++ {
			for _, rr := range runs {
				if d := MaxParamDiff(ref.Models[r], rr.tr.Models[r]); d != 0 {
					t.Fatalf("k=%d %s rank %d: weights diverged by %v under skewed links", k, rr.name, r, d)
				}
			}
		}
	}
}

// TestOverlapWorstCaseAllBoundaryDependent pins the degenerate schedule: at
// p=1 on a topology where every inner node of every partition has a remote
// neighbor, the halo-free chunk can be empty (zero overlap available) and
// both pipelined schedules must still be exactly equivalent.
func TestOverlapWorstCaseAllBoundaryDependent(t *testing.T) {
	ds := testDataset(t, 31)
	const k = 2
	topo := testTopology(t, ds, k)
	mc := ModelConfig{Arch: ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.5, LR: 0.01, Seed: 3}
	base := ParallelConfig{Model: mc, P: 1, SampleSeed: 13, Schedule: ScheduleSerialized}

	for _, sched := range []Schedule{ScheduleOverlapRank, ScheduleOverlap} {
		cfg := base
		cfg.Schedule = sched
		b, err := NewParallelTrainer(ds, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		aCopy, err := NewParallelTrainer(ds, topo, base)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 3; e++ {
			sa, sb := aCopy.TrainEpoch(), b.TrainEpoch()
			if sa.Loss != sb.Loss {
				t.Fatalf("%s epoch %d: loss diverged %.17g vs %.17g", sched, e, sa.Loss, sb.Loss)
			}
		}
		for r := 0; r < k; r++ {
			if d := MaxParamDiff(aCopy.Models[r], b.Models[r]); d != 0 {
				t.Fatalf("%s rank %d diverged by %v", sched, r, d)
			}
		}
	}
}

// TestSplitRowsPartition checks the per-epoch row split invariants the
// engine relies on: haloFree ∪ haloDep = [0, NIn) ascending and disjoint,
// haloSlots exactly the sampled boundary slots, and — for the default
// arrival-order schedule — the per-peer buckets: every halo-dependent row
// appears once in the bucket of each peer it awaits, every bucket row has an
// active neighbor owned by that peer, and the drain's countdown consumed
// every wait (rowWait back at zero).
func TestSplitRowsPartition(t *testing.T) {
	ds := testDataset(t, 8)
	topo := testTopology(t, ds, 3)
	tr, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.3, SampleSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.TrainEpoch()
	for r, lp := range tr.Locals {
		seen := make([]int, lp.NIn)
		last := int32(-1)
		for _, v := range lp.haloFree {
			seen[v]++
		}
		for _, v := range lp.haloDep {
			seen[v]++
			if v <= last {
				t.Fatalf("rank %d: haloDep not ascending", r)
			}
			last = v
		}
		for v, c := range seen {
			if c != 1 {
				t.Fatalf("rank %d: inner row %d covered %d times", r, v, c)
			}
		}
		nSlots := 0
		for s := lp.NIn; s < lp.NIn+lp.NBd; s++ {
			if lp.active[s] {
				nSlots++
			}
		}
		if len(lp.haloSlots) != nSlots {
			t.Fatalf("rank %d: %d halo slots listed, %d active", r, len(lp.haloSlots), nSlots)
		}

		// Bucket invariants (arrival-order schedule is the default).
		bucketed := make([]int, lp.NIn)
		for j, rows := range lp.peerRows {
			lastRow := int32(-1)
			for _, v := range rows {
				if v <= lastRow {
					t.Fatalf("rank %d: peerRows[%d] not ascending", r, j)
				}
				lastRow = v
				bucketed[v]++
				found := false
				for _, u := range lp.eg.Neighbors(v) {
					if int(u) >= lp.NIn && lp.slotOwner[int(u)-lp.NIn] == int32(j) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("rank %d: row %d bucketed under peer %d without an active neighbor there", r, v, j)
				}
			}
		}
		isDep := make([]bool, lp.NIn)
		for _, v := range lp.haloDep {
			isDep[v] = true
		}
		for v := 0; v < lp.NIn; v++ {
			if isDep[v] && bucketed[v] == 0 {
				t.Fatalf("rank %d: halo-dependent row %d awaits no peer", r, v)
			}
			if !isDep[v] && bucketed[v] != 0 {
				t.Fatalf("rank %d: halo-free row %d bucketed %d times", r, v, bucketed[v])
			}
			if lp.rowWait[v] != 0 {
				t.Fatalf("rank %d: rowWait[%d]=%d after the drain, want 0", r, v, lp.rowWait[v])
			}
		}
	}
}
