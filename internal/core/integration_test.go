package core

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/nn"
	"repro/internal/partition"
)

// TestReplicasStayIdentical verifies the core replication invariant: after
// any number of epochs at any p, every partition holds bit-identical model
// weights (AllReduce hands everyone the same bytes; Adam is deterministic).
func TestReplicasStayIdentical(t *testing.T) {
	ds := testDataset(t, 40)
	topo := testTopology(t, ds, 4)
	for _, p := range []float64{1.0, 0.3, 0.0} {
		par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: p, SampleSeed: 3})
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < 5; e++ {
			par.TrainEpoch()
		}
		for r := 1; r < 4; r++ {
			if d := MaxParamDiff(par.Models[0], par.Models[r]); d != 0 {
				t.Fatalf("p=%v: replica %d diverged by %v", p, r, d)
			}
		}
	}
}

// TestSinglePartitionEqualsFullTrainer: k=1 partition-parallel training is
// the degenerate case with no boundary at all and must match the reference
// trainer exactly.
func TestSinglePartitionEqualsFullTrainer(t *testing.T) {
	ds := testDataset(t, 41)
	parts := make([]int32, ds.G.N)
	topo, err := BuildTopology(ds.G, parts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if topo.CommVolume() != 0 {
		t.Fatalf("k=1 volume %d", topo.CommVolume())
	}
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewFullTrainer(ds, testModelConfig())
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 4; e++ {
		fLoss := full.TrainEpoch()
		pLoss := par.TrainEpoch().Loss
		// Same math modulo node ordering (partition 0 keeps global order).
		if math.Abs(fLoss-pLoss) > 1e-4*(1+math.Abs(fLoss)) {
			t.Fatalf("epoch %d: %v vs %v", e, fLoss, pLoss)
		}
	}
}

// TestLossDecreasesAcrossP: training must make progress at every sampling
// rate, including p=0.
func TestLossDecreasesAcrossP(t *testing.T) {
	ds := testDataset(t, 42)
	topo := testTopology(t, ds, 3)
	for _, p := range []float64{1.0, 0.5, 0.1, 0.0} {
		par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: p, SampleSeed: 2})
		if err != nil {
			t.Fatal(err)
		}
		first := par.TrainEpoch().Loss
		for e := 0; e < 20; e++ {
			par.TrainEpoch()
		}
		last := par.TrainEpoch().Loss
		if !(last < first) {
			t.Fatalf("p=%v: loss %v -> %v did not decrease", p, first, last)
		}
	}
}

// TestEffectiveDegreeNormalizerAtP1 checks that the self-normalized
// estimator's denominator equals the exact full degree when p=1 (this is
// what makes the parity test possible, so pin it separately).
func TestEffectiveDegreeNormalizerAtP1(t *testing.T) {
	ds := testDataset(t, 43)
	topo := testTopology(t, ds, 3)
	lp := NewLocalPartition(ds, topo, 0)
	for i := range lp.active {
		lp.active[i] = true
	}
	eg := lp.epochGraph()
	for v := 0; v < lp.NIn; v++ {
		if eg.Degree(int32(v)) != ds.G.Degree(lp.GlobalInner[v]) {
			t.Fatalf("node %d: epoch degree %d != global %d",
				v, eg.Degree(int32(v)), ds.G.Degree(lp.GlobalInner[v]))
		}
	}
}

// TestLocalNbrCounts pins localNbrs against a brute-force recount.
func TestLocalNbrCounts(t *testing.T) {
	ds := testDataset(t, 44)
	topo := testTopology(t, ds, 4)
	for i := 0; i < 4; i++ {
		lp := NewLocalPartition(ds, topo, i)
		for li, v := range lp.GlobalInner {
			want := 0
			for _, u := range ds.G.Neighbors(v) {
				if topo.Parts[u] == int32(i) {
					want++
				}
			}
			if int(lp.localNbrs[li]) != want {
				t.Fatalf("partition %d node %d: localNbrs %d, want %d", i, li, lp.localNbrs[li], want)
			}
		}
	}
}

// TestGATHaloNotRescaled: for attention models the received halo features
// must NOT be 1/p-rescaled (softmax self-normalizes). We verify indirectly:
// GAT training at small p must stay numerically sane and reach better than
// p=0-style isolation... at minimum, not NaN and not collapsed to random.
func TestGATSmallPStable(t *testing.T) {
	ds := testDataset(t, 45)
	topo := testTopology(t, ds, 3)
	cfg := ModelConfig{Arch: ArchGAT, Layers: 2, Hidden: 12, Dropout: 0, LR: 0.01, Seed: 4}
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: 0.05, SampleSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 30; e++ {
		if st := par.TrainEpoch(); math.IsNaN(st.Loss) || math.IsInf(st.Loss, 0) {
			t.Fatalf("epoch %d: loss %v", e, st.Loss)
		}
	}
	if acc := par.Evaluate(ds.TestMask); acc < 0.4 {
		t.Fatalf("GAT p=0.05 accuracy %v collapsed", acc)
	}
}

// TestMultiLabelParallelTraining exercises the BCE path end to end under
// partitioning and sampling.
func TestMultiLabelParallelTraining(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Name: "ml", Nodes: 600, Communities: 8, AvgDegree: 14,
		IntraFrac: 0.75, DegreeSkew: 1.8, FeatureDim: 16,
		FeatureSignal: 0.4, FeatureNoise: 1.0,
		MultiLabel: true, LabelsPerNode: 2,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 46,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, 3)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := BuildTopology(ds.G, parts, 3)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.3, SampleSeed: 6})
	if err != nil {
		t.Fatal(err)
	}
	before := par.Evaluate(ds.TestMask)
	for e := 0; e < 40; e++ {
		par.TrainEpoch()
	}
	after := par.Evaluate(ds.TestMask)
	if !(after > before) {
		t.Fatalf("micro-F1 did not improve: %v -> %v", before, after)
	}
}

// TestBackwardCommSkipsInputLayer: backward exchanges happen for layers
// 1..L-1 only, so a 1-layer model must send exactly the forward traffic.
func TestBackwardCommSkipsInputLayer(t *testing.T) {
	ds := testDataset(t, 47)
	topo := testTopology(t, ds, 3)
	cfg := ModelConfig{Arch: ArchSAGE, Layers: 1, Hidden: 8, Dropout: 0, LR: 0.01, Seed: 1}
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: cfg, P: 1.0, SampleSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := par.TrainEpoch()
	wantBytes := 4 * topo.CommVolume() * int64(ds.FeatureDim())
	if st.CommBytes != wantBytes {
		t.Fatalf("1-layer comm %d bytes, want forward-only %d", st.CommBytes, wantBytes)
	}
}

// TestEvalAgreesWithManualForward: ParallelTrainer.Evaluate must equal a
// manual full-graph forward with rank 0's weights.
func TestEvalAgreesWithManualForward(t *testing.T) {
	ds := testDataset(t, 48)
	topo := testTopology(t, ds, 2)
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{Model: testModelConfig(), P: 0.5, SampleSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		par.TrainEpoch()
	}
	got := par.Evaluate(ds.TestMask)

	clone, err := NewModel(testModelConfig(), ds.FeatureDim(), ds.NumClasses)
	if err != nil {
		t.Fatal(err)
	}
	clone.CopyWeightsFrom(par.Models[0])
	ft := &FullTrainer{DS: ds, Model: clone, invDeg: nn.InvDegrees(ds.G)}
	want := ft.Evaluate(ds.TestMask)
	if got != want {
		t.Fatalf("Evaluate %v != manual %v", got, want)
	}
}

// TestEstimatorsCoincideAtP1: Horvitz–Thompson and self-normalized
// aggregation are the same computation when every boundary node is kept.
func TestEstimatorsCoincideAtP1(t *testing.T) {
	ds := testDataset(t, 49)
	topo := testTopology(t, ds, 3)
	var losses [2]float64
	for i, est := range []Estimator{EstimatorSelfNorm, EstimatorHT} {
		par, err := NewParallelTrainer(ds, topo, ParallelConfig{
			Model: testModelConfig(), P: 1.0, SampleSeed: 1, Estimator: est,
		})
		if err != nil {
			t.Fatal(err)
		}
		var last float64
		for e := 0; e < 3; e++ {
			last = par.TrainEpoch().Loss
		}
		losses[i] = last
	}
	if losses[0] != losses[1] {
		t.Fatalf("estimators differ at p=1: %v vs %v", losses[0], losses[1])
	}
}

// TestHTEstimatorUsesGlobalDegree: at p<1 with EstimatorHT the training path
// must still run (unbiased but noisy) and remain finite.
func TestHTEstimatorRuns(t *testing.T) {
	ds := testDataset(t, 50)
	topo := testTopology(t, ds, 3)
	par, err := NewParallelTrainer(ds, topo, ParallelConfig{
		Model: testModelConfig(), P: 0.3, SampleSeed: 2, Estimator: EstimatorHT,
	})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 10; e++ {
		if st := par.TrainEpoch(); math.IsNaN(st.Loss) {
			t.Fatal("HT estimator produced NaN loss")
		}
	}
}
