package core

import (
	"testing"

	"repro/internal/tensor"
)

func TestVarianceDecreasesWithP(t *testing.T) {
	ds := testDataset(t, 20)
	topo := testTopology(t, ds, 4)
	v01 := MeasureBNSVariance(topo, ds.Features, 0.1, 30, 1)
	v05 := MeasureBNSVariance(topo, ds.Features, 0.5, 30, 1)
	v10 := MeasureBNSVariance(topo, ds.Features, 1.0, 5, 1)
	if !(v01.Variance > v05.Variance) {
		t.Fatalf("variance not decreasing: p=0.1 %v, p=0.5 %v", v01.Variance, v05.Variance)
	}
	if v10.Variance > 1e-12 {
		t.Fatalf("p=1 variance %v, want 0", v10.Variance)
	}
}

func TestVarianceWithinBound(t *testing.T) {
	ds := testDataset(t, 21)
	topo := testTopology(t, ds, 4)
	for _, p := range []float64{0.1, 0.3, 0.7} {
		rep := MeasureBNSVariance(topo, ds.Features, p, 30, 2)
		if rep.Variance > rep.Bound {
			t.Fatalf("p=%v: empirical variance %v exceeds analytic bound %v", p, rep.Variance, rep.Bound)
		}
	}
}

func TestSampledAggregationUnbiased(t *testing.T) {
	// The mean of Z̃ over many independent trials must converge to Z.
	ds := testDataset(t, 22)
	topo := testTopology(t, ds, 3)
	p := 0.4
	rng := tensor.NewRNG(3)
	i := 0
	exact := aggregateExact(topo, ds.Features, i)
	mean := tensor.New(exact.Rows, exact.Cols)
	const trials = 400
	keep := make([]bool, ds.G.N)
	for trial := 0; trial < trials; trial++ {
		for j := range keep {
			keep[j] = false
		}
		for _, u := range topo.Boundary[i] {
			if rng.Float64() < p {
				keep[u] = true
			}
		}
		zt := aggregateSampled(topo, ds.Features, i, keep, p)
		mean.Add(zt)
	}
	mean.Scale(1.0 / trials)
	mean.Sub(exact)
	// Relative error of the empirical mean shrinks as 1/sqrt(trials).
	rel := mean.FrobeniusNorm() / (exact.FrobeniusNorm() + 1e-12)
	if rel > 0.1 {
		t.Fatalf("sampled aggregation biased: relative error %v", rel)
	}
}

func TestVarianceReportFields(t *testing.T) {
	ds := testDataset(t, 23)
	topo := testTopology(t, ds, 2)
	rep := MeasureBNSVariance(topo, ds.Features, 0.5, 5, 9)
	if rep.Scheme != "BNS" || rep.P != 0.5 || rep.Trials != 5 {
		t.Fatalf("report fields %+v", rep)
	}
	if rep.Bound <= 0 {
		t.Fatal("bound must be positive for a partitioned graph")
	}
}
