package datagen

// Preset dataset configurations. Each mirrors one of the paper's Table 3
// datasets, scaled so CPU training finishes in seconds-to-minutes while
// preserving the properties the experiments measure: Reddit-sim is dense
// with strong communities (the paper's Reddit has average degree 984);
// products-sim is sparser with a tiny train split (paper: 8% train, 90%
// test — the overfitting study of Figure 7 relies on this); yelp-sim is
// multi-label; papers100m-sim is structure-only with heavy degree skew for
// the partition-statistics experiments (Figures 3 and 8, Table 6).
//
// The `scale` parameter multiplies node counts: 1 is the default used by
// unit tests and examples; the benchmark harness uses larger scales.

// RedditSim mirrors Reddit: dense, community-heavy, inductive 0.66/0.10/0.24.
func RedditSim(scale int, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:          "reddit-sim",
		Nodes:         2500 * scale,
		Communities:   32,
		AvgDegree:     24,
		IntraFrac:     0.65,
		DegreeSkew:    2.0,
		FeatureDim:    48,
		FeatureSignal: 0.14,
		FeatureNoise:  1.0,
		TrainFrac:     0.66,
		ValFrac:       0.10,
		Seed:          seed,
	}
}

// ProductsSim mirrors ogbn-products: sparser, tiny train fraction
// (0.08/0.02/0.90) so models can overfit the train split.
func ProductsSim(scale int, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:          "products-sim",
		Nodes:         6000 * scale,
		Communities:   16,
		AvgDegree:     24,
		IntraFrac:     0.65,
		DegreeSkew:    1.8,
		FeatureDim:    32,
		FeatureSignal: 0.14,
		FeatureNoise:  1.0,
		TrainFrac:     0.15,
		ValFrac:       0.05,
		Seed:          seed,
	}
}

// YelpSim mirrors Yelp: multi-label with 0.75/0.10/0.15 splits.
func YelpSim(scale int, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:          "yelp-sim",
		Nodes:         3000 * scale,
		Communities:   16,
		AvgDegree:     20,
		IntraFrac:     0.65,
		DegreeSkew:    1.8,
		FeatureDim:    64,
		FeatureSignal: 0.20,
		FeatureNoise:  1.0,
		MultiLabel:    true,
		LabelsPerNode: 3,
		TrainFrac:     0.75,
		ValFrac:       0.10,
		Seed:          seed,
	}
}

// Papers100MSim mirrors ogbn-papers100M for partition-structure experiments
// only (no features): strong degree skew so a few partitions become memory
// stragglers under 192-way partitioning, as in Figures 3 and 8.
func Papers100MSim(scale int, seed uint64) Config {
	if scale <= 0 {
		scale = 1
	}
	return Config{
		Name:          "papers100m-sim",
		Nodes:         60000 * scale,
		Communities:   192,
		AvgDegree:     14,
		IntraFrac:     0.55,
		DegreeSkew:    1.3,
		FeatureDim:    128,
		TrainFrac:     0.78,
		ValFrac:       0.08,
		Seed:          seed,
		StructureOnly: true,
	}
}
