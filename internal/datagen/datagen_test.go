package datagen

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func smallConfig(seed uint64) Config {
	return Config{
		Name:          "test",
		Nodes:         800,
		Communities:   8,
		AvgDegree:     12,
		IntraFrac:     0.8,
		DegreeSkew:    2.0,
		FeatureDim:    16,
		FeatureSignal: 0.5,
		FeatureNoise:  1.0,
		TrainFrac:     0.6,
		ValFrac:       0.2,
		Seed:          seed,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	ds, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.N != 800 {
		t.Fatalf("N = %d", ds.G.N)
	}
	if err := ds.G.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Features.Rows != 800 || ds.Features.Cols != 16 {
		t.Fatalf("features %dx%d", ds.Features.Rows, ds.Features.Cols)
	}
	if len(ds.Labels) != 800 {
		t.Fatalf("labels %d", len(ds.Labels))
	}
	for _, l := range ds.Labels {
		if l < 0 || int(l) >= ds.NumClasses {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() != b.G.NumEdges() {
		t.Fatal("same seed produced different graphs")
	}
	if !a.Features.Equal(b.Features, 0) {
		t.Fatal("same seed produced different features")
	}
	c, err := Generate(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumEdges() == c.G.NumEdges() && a.Features.Equal(c.Features, 0) {
		t.Fatal("different seeds produced identical dataset")
	}
}

func TestSplitMasksPartition(t *testing.T) {
	ds, err := Generate(smallConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < ds.G.N; v++ {
		n := 0
		if ds.TrainMask[v] {
			n++
		}
		if ds.ValMask[v] {
			n++
		}
		if ds.TestMask[v] {
			n++
		}
		if n != 1 {
			t.Fatalf("node %d in %d splits", v, n)
		}
	}
	nTrain := CountMask(ds.TrainMask)
	if nTrain < 440 || nTrain > 520 {
		t.Fatalf("train count %d far from 60%% of 800", nTrain)
	}
}

func TestAvgDegreeNearTarget(t *testing.T) {
	ds, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	// Dedupe and self-loop removal lose some edges; expect within 40%.
	if d := ds.G.AvgDegree(); d < 7 || d > 13 {
		t.Fatalf("avg degree %v, target 12", d)
	}
}

func TestCommunityStructureExists(t *testing.T) {
	// With IntraFrac=0.8 most edges must join same-label endpoints.
	ds, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	intra, total := 0, 0
	for v := int32(0); v < int32(ds.G.N); v++ {
		for _, u := range ds.G.Neighbors(v) {
			if u > v {
				total++
				if ds.Labels[u] == ds.Labels[v] {
					intra++
				}
			}
		}
	}
	frac := float64(intra) / float64(total)
	if frac < 0.6 {
		t.Fatalf("intra-community edge fraction %v, want >0.6", frac)
	}
}

func TestFeaturesClassCorrelated(t *testing.T) {
	ds, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Mean distance to own class centroid must be below mean distance to a
	// different class centroid (in expectation over nodes).
	d := ds.FeatureDim()
	centroids := tensor.New(ds.NumClasses, d)
	counts := make([]int, ds.NumClasses)
	for v := 0; v < ds.G.N; v++ {
		c := int(ds.Labels[v])
		row := centroids.Row(c)
		for j, x := range ds.Features.Row(v) {
			row[j] += x
		}
		counts[c]++
	}
	for c := 0; c < ds.NumClasses; c++ {
		row := centroids.Row(c)
		for j := range row {
			row[j] /= float32(counts[c])
		}
	}
	var own, other float64
	for v := 0; v < ds.G.N; v++ {
		c := int(ds.Labels[v])
		oc := (c + 1) % ds.NumClasses
		own += dist(ds.Features.Row(v), centroids.Row(c))
		other += dist(ds.Features.Row(v), centroids.Row(oc))
	}
	if own >= other {
		t.Fatalf("features not class-correlated: own %v >= other %v", own, other)
	}
}

func dist(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i] - b[i])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestDegreeSkewProducesHubs(t *testing.T) {
	cfg := smallConfig(6)
	cfg.DegreeSkew = 1.2
	cfg.Nodes = 2000
	cfg.AvgDegree = 10
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.MaxDegree() < 4*int(ds.G.AvgDegree()) {
		t.Fatalf("max degree %d not hub-like vs avg %v", ds.G.MaxDegree(), ds.G.AvgDegree())
	}
}

func TestMultiLabelGeneration(t *testing.T) {
	cfg := smallConfig(7)
	cfg.MultiLabel = true
	cfg.LabelsPerNode = 3
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.LabelMatrix == nil || ds.Labels != nil {
		t.Fatal("multi-label dataset must use LabelMatrix")
	}
	if ds.LabelMatrix.Rows != cfg.Nodes || ds.LabelMatrix.Cols != cfg.Communities {
		t.Fatalf("label matrix %dx%d", ds.LabelMatrix.Rows, ds.LabelMatrix.Cols)
	}
	var active float64
	for _, v := range ds.LabelMatrix.Data {
		if v != 0 && v != 1 {
			t.Fatalf("label value %v not binary", v)
		}
		active += float64(v)
	}
	perNode := active / float64(cfg.Nodes)
	if perNode < 1.5 || perNode > 5 {
		t.Fatalf("avg active labels per node = %v, want near 3", perNode)
	}
}

func TestStructureOnlySkipsFeatures(t *testing.T) {
	cfg := smallConfig(8)
	cfg.StructureOnly = true
	ds, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Features.Rows != 0 {
		t.Fatal("structure-only must not materialize features")
	}
	if err := ds.G.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{Nodes: 0, Communities: 1},
		{Nodes: 10, Communities: 0},
		{Nodes: 10, Communities: 20},
		{Nodes: 10, Communities: 2, TrainFrac: 0.8, ValFrac: 0.4},
		{Nodes: 10, Communities: 2, IntraFrac: 1.5},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Fatalf("config %d should be rejected", i)
		}
	}
}

func TestPresetsGenerate(t *testing.T) {
	for _, cfg := range []Config{RedditSim(1, 1), ProductsSim(1, 1), YelpSim(1, 1)} {
		ds, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if err := ds.G.Validate(); err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		if ds.G.N != cfg.Nodes {
			t.Fatalf("%s: N=%d want %d", cfg.Name, ds.G.N, cfg.Nodes)
		}
	}
}

func TestPresetScaleMultipliesNodes(t *testing.T) {
	if RedditSim(2, 1).Nodes != 2*RedditSim(1, 1).Nodes {
		t.Fatal("scale must multiply node count")
	}
	if RedditSim(0, 1).Nodes != RedditSim(1, 1).Nodes {
		t.Fatal("scale 0 must default to 1")
	}
}

func TestYelpPresetIsMultiLabel(t *testing.T) {
	if !YelpSim(1, 1).MultiLabel {
		t.Fatal("yelp-sim must be multi-label")
	}
	if !Papers100MSim(1, 1).StructureOnly {
		t.Fatal("papers100m-sim must be structure-only")
	}
}
