// Package datagen generates the seeded synthetic datasets that stand in for
// the paper's Reddit, ogbn-products, Yelp and ogbn-papers100M graphs.
//
// Each dataset is a stochastic-block-model community graph with Chung-Lu
// style power-law degree skew, class-correlated node features, and
// train/val/test splits matching the paper's Table 3 ratios. Community
// structure gives METIS-style partitioners something real to find, the
// degree skew reproduces the boundary-node imbalance of Figure 3, and the
// noisy features make neighbor aggregation genuinely necessary for accuracy
// (so dropping all boundary nodes, p=0, measurably hurts — Table 4's shape).
//
// Everything is deterministic given Config.Seed.
package datagen

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Dataset bundles a graph with features, labels and split masks.
type Dataset struct {
	Name        string
	G           *graph.Graph
	Features    *tensor.Matrix // N × FeatureDim
	Labels      []int32        // single-label targets (nil when MultiLabel)
	LabelMatrix *tensor.Matrix // N × NumClasses 0/1 targets (multi-label only)
	NumClasses  int
	MultiLabel  bool
	TrainMask   []bool
	ValMask     []bool
	TestMask    []bool
}

// FeatureDim returns the node feature dimensionality.
func (d *Dataset) FeatureDim() int { return d.Features.Cols }

// CountMask returns the number of true entries in mask.
func CountMask(mask []bool) int {
	n := 0
	for _, b := range mask {
		if b {
			n++
		}
	}
	return n
}

// Config describes a synthetic community graph.
type Config struct {
	Name          string
	Nodes         int
	Communities   int     // ground-truth blocks; one class per community
	AvgDegree     float64 // target average degree
	IntraFrac     float64 // fraction of edges with both endpoints in one community
	DegreeSkew    float64 // Pareto shape for Chung-Lu weights; 0 disables skew
	FeatureDim    int
	FeatureSignal float64 // centroid magnitude; lower = aggregation matters more
	FeatureNoise  float64 // per-node gaussian noise std
	MultiLabel    bool
	LabelsPerNode int // multi-label: average active labels per node
	TrainFrac     float64
	ValFrac       float64
	Seed          uint64
	StructureOnly bool // skip features/labels (papers100M analogue)
}

// Validate checks config sanity.
func (c *Config) Validate() error {
	if c.Nodes <= 0 || c.Communities <= 0 || c.Communities > c.Nodes {
		return fmt.Errorf("datagen: bad nodes=%d communities=%d", c.Nodes, c.Communities)
	}
	if c.TrainFrac < 0 || c.ValFrac < 0 || c.TrainFrac+c.ValFrac > 1 {
		return fmt.Errorf("datagen: bad split %v/%v", c.TrainFrac, c.ValFrac)
	}
	if c.IntraFrac < 0 || c.IntraFrac > 1 {
		return fmt.Errorf("datagen: bad intra fraction %v", c.IntraFrac)
	}
	return nil
}

// Generate builds the dataset described by c.
func Generate(c Config) (*Dataset, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(c.Seed)

	// Community assignment: contiguous equal-size blocks shuffled so node ids
	// carry no information.
	comm := make([]int32, c.Nodes)
	perm := rng.Perm(c.Nodes)
	for i, v := range perm {
		comm[v] = int32(i % c.Communities)
	}

	// Chung-Lu weights: w_v = (1-u)^(-1/skew) gives a Pareto tail, producing
	// hub nodes whose placement drives boundary-node imbalance.
	weights := make([]float64, c.Nodes)
	for v := range weights {
		if c.DegreeSkew > 0 {
			u := rng.Float64()
			weights[v] = math.Pow(1-u, -1/c.DegreeSkew)
			if weights[v] > float64(c.Nodes)/10 { // clip extreme hubs
				weights[v] = float64(c.Nodes) / 10
			}
		} else {
			weights[v] = 1
		}
	}

	g := buildEdges(c, comm, weights, rng)

	ds := &Dataset{
		Name:       c.Name,
		G:          g,
		NumClasses: c.Communities,
		MultiLabel: c.MultiLabel,
	}
	ds.TrainMask, ds.ValMask, ds.TestMask = splitMasks(c.Nodes, c.TrainFrac, c.ValFrac, rng)

	if c.StructureOnly {
		ds.Features = tensor.New(0, 0)
		return ds, nil
	}

	ds.Features = makeFeatures(c, comm, rng)
	if c.MultiLabel {
		ds.LabelMatrix = makeMultiLabels(c, comm, rng)
	} else {
		ds.Labels = comm
	}
	return ds, nil
}

// buildEdges samples M = Nodes*AvgDegree/2 undirected edges. With probability
// IntraFrac both endpoints come from the same community (weighted within the
// block), otherwise both are drawn from the global weight distribution.
func buildEdges(c Config, comm []int32, weights []float64, rng *tensor.RNG) *graph.Graph {
	// Per-community member lists and weight prefix sums for O(log n) draws.
	members := make([][]int32, c.Communities)
	for v, cm := range comm {
		members[cm] = append(members[cm], int32(v))
	}
	prefix := make([][]float64, c.Communities)
	for cm, ms := range members {
		p := make([]float64, len(ms)+1)
		for i, v := range ms {
			p[i+1] = p[i] + weights[v]
		}
		prefix[cm] = p
	}
	globalPrefix := make([]float64, c.Nodes+1)
	for v := 0; v < c.Nodes; v++ {
		globalPrefix[v+1] = globalPrefix[v] + weights[v]
	}
	commPrefix := make([]float64, c.Communities+1)
	for cm := 0; cm < c.Communities; cm++ {
		commPrefix[cm+1] = commPrefix[cm] + prefix[cm][len(prefix[cm])-1]
	}

	sampleFrom := func(p []float64, ids []int32) int32 {
		total := p[len(p)-1]
		x := rng.Float64() * total
		i := sort.SearchFloat64s(p, x)
		if i > 0 {
			i--
		}
		if i >= len(ids) {
			i = len(ids) - 1
		}
		return ids[i]
	}
	globalIDs := make([]int32, c.Nodes)
	for v := range globalIDs {
		globalIDs[v] = int32(v)
	}
	commIDs := make([]int32, c.Communities)
	for cm := range commIDs {
		commIDs[cm] = int32(cm)
	}

	b := graph.NewBuilder(c.Nodes)
	m := int(float64(c.Nodes) * c.AvgDegree / 2)
	for e := 0; e < m; e++ {
		if rng.Float64() < c.IntraFrac {
			cm := sampleFrom(commPrefix, commIDs)
			u := sampleFrom(prefix[cm], members[cm])
			v := sampleFrom(prefix[cm], members[cm])
			if u != v {
				b.AddEdge(u, v)
			}
		} else {
			u := sampleFrom(globalPrefix, globalIDs)
			v := sampleFrom(globalPrefix, globalIDs)
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	return b.Build()
}

// makeFeatures draws a gaussian centroid per community and emits
// x_v = signal*centroid[comm(v)] + noise*N(0,I).
func makeFeatures(c Config, comm []int32, rng *tensor.RNG) *tensor.Matrix {
	centroids := tensor.New(c.Communities, c.FeatureDim)
	tensor.GaussianInit(centroids, 1.0, rng)
	feats := tensor.New(c.Nodes, c.FeatureDim)
	for v := 0; v < c.Nodes; v++ {
		mu := centroids.Row(int(comm[v]))
		row := feats.Row(v)
		for j := range row {
			row[j] = float32(c.FeatureSignal)*mu[j] + float32(c.FeatureNoise*rng.NormFloat64())
		}
	}
	return feats
}

// makeMultiLabels builds a 0/1 label matrix: each community has a base
// pattern of active labels; per node, each base bit is kept with prob 0.9
// and each inactive bit switched on with a small probability tuned so the
// expected number of active labels per node is LabelsPerNode.
func makeMultiLabels(c Config, comm []int32, rng *tensor.RNG) *tensor.Matrix {
	k := c.LabelsPerNode
	if k <= 0 {
		k = 3
	}
	base := make([][]bool, c.Communities)
	for cm := range base {
		pattern := make([]bool, c.Communities)
		// Community cm always has its own label plus k-1 deterministic others.
		pattern[cm] = true
		for i := 1; i < k; i++ {
			pattern[(cm+i*7+1)%c.Communities] = true
		}
		base[cm] = pattern
	}
	flipOn := 0.3 / float64(c.Communities)
	lm := tensor.New(c.Nodes, c.Communities)
	for v := 0; v < c.Nodes; v++ {
		pattern := base[comm[v]]
		row := lm.Row(v)
		for j := range row {
			active := pattern[j]
			if active && rng.Float64() < 0.1 {
				active = false
			} else if !active && rng.Float64() < flipOn {
				active = true
			}
			if active {
				row[j] = 1
			}
		}
	}
	return lm
}

func splitMasks(n int, trainFrac, valFrac float64, rng *tensor.RNG) (train, val, test []bool) {
	train = make([]bool, n)
	val = make([]bool, n)
	test = make([]bool, n)
	perm := rng.Perm(n)
	nTrain := int(float64(n) * trainFrac)
	nVal := int(float64(n) * valFrac)
	for i, v := range perm {
		switch {
		case i < nTrain:
			train[v] = true
		case i < nTrain+nVal:
			val[v] = true
		default:
			test[v] = true
		}
	}
	return train, val, test
}
