package tensor

import "testing"

func benchMatrices(n, k, m int) (*Matrix, *Matrix, *Matrix) {
	rng := NewRNG(1)
	a := randomMatrix(rng, n, k)
	b := randomMatrix(rng, k, m)
	return New(n, m), a, b
}

// benchMatMulSquare reports GFLOP/s-comparable numbers for n×n×n MatMul via
// SetBytes (2 FLOPs ≈ 8 "bytes" per multiply-add at float32).
func benchMatMulSquare(b *testing.B, n int) {
	out, x, y := benchMatrices(n, n, n)
	b.SetBytes(int64(n) * int64(n) * int64(n) * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMul128(b *testing.B)  { benchMatMulSquare(b, 128) }
func BenchmarkMatMul256(b *testing.B)  { benchMatMulSquare(b, 256) }
func BenchmarkMatMul512(b *testing.B)  { benchMatMulSquare(b, 512) }
func BenchmarkMatMul1024(b *testing.B) { benchMatMulSquare(b, 1024) }

// BenchmarkMatMul is the 512×512×512 acceptance benchmark shape under its
// exact name, so `-bench=BenchmarkMatMul$` selects it alone.
func BenchmarkMatMul(b *testing.B) { benchMatMulSquare(b, 512) }

func BenchmarkMatMulTransB(b *testing.B) {
	rng := NewRNG(2)
	a := randomMatrix(rng, 512, 512)
	c := randomMatrix(rng, 512, 512)
	out := New(512, 512)
	b.SetBytes(512 * 512 * 512 * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(out, a, c)
	}
}

func BenchmarkTranspose(b *testing.B) {
	rng := NewRNG(5)
	a := randomMatrix(rng, 2048, 2048)
	out := New(2048, 2048)
	b.SetBytes(2048 * 2048 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TransposeInto(out, a)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	// GCN shape: many nodes × small feature dims.
	out, x, y := benchMatrices(4096, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(2)
	x := randomMatrix(rng, 4096, 64)
	y := randomMatrix(rng, 4096, 32)
	out := New(64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(out, x, y)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	rng := NewRNG(3)
	src := randomMatrix(rng, 10000, 64)
	idx := make([]int32, 2000)
	for i := range idx {
		idx[i] = int32(rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(src, idx)
	}
}

// benchCSR builds a fixed-degree random CSR for the SpMM benches.
func benchCSR(rng *RNG, n, deg int) ([]int64, []int32) {
	indptr := make([]int64, n+1)
	indices := make([]int32, 0, n*deg)
	for v := 0; v < n; v++ {
		indptr[v] = int64(len(indices))
		for e := 0; e < deg; e++ {
			indices = append(indices, int32(rng.Intn(n)))
		}
	}
	indptr[n] = int64(len(indices))
	return indptr, indices
}

// benchSpMM measures one forward aggregation pass. engine=false runs the
// sequential per-edge reference walk (the pre-engine code shape); true runs
// the blocked SpMM kernel. Low degree ≈ products-sim, high ≈ reddit.
func benchSpMM(b *testing.B, n, deg, dim int, engine bool) {
	rng := NewRNG(42)
	indptr, indices := benchCSR(rng, n, deg)
	x := randomMatrix(rng, n, dim)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = 1 / float32(deg)
	}
	out := New(n, dim)
	b.SetBytes(int64(n) * int64(deg) * int64(dim) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if engine {
			SpMM(out, x, indptr, indices, scale, nil)
		} else {
			refSpMM(out, x, indptr, indices, scale)
		}
	}
}

func BenchmarkSpMMLowDegScalar(b *testing.B)  { benchSpMM(b, 4096, 8, 64, false) }
func BenchmarkSpMMLowDeg(b *testing.B)        { benchSpMM(b, 4096, 8, 64, true) }
func BenchmarkSpMMHighDegScalar(b *testing.B) { benchSpMM(b, 2048, 256, 64, false) }
func BenchmarkSpMMHighDeg(b *testing.B)       { benchSpMM(b, 2048, 256, 64, true) }

// BenchmarkSpMM is the high-degree acceptance shape under its exact name,
// so `-bench=BenchmarkSpMM$` selects it alone.
func BenchmarkSpMM(b *testing.B) { benchSpMM(b, 2048, 256, 64, true) }

// benchSpMMTrans measures the backward gather against the scatter-shaped
// reference it replaces.
func benchSpMMTrans(b *testing.B, n, deg, dim int, engine bool) {
	rng := NewRNG(43)
	indptr, indices := benchCSR(rng, n, deg)
	tIndptr, tSrc := transposeCSR(n, indptr, indices, n)
	src := randomMatrix(rng, n, dim)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = 1 / float32(deg)
	}
	dst := New(n, dim)
	b.SetBytes(int64(n) * int64(deg) * int64(dim) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Zero()
		if engine {
			SpMMTrans(dst, src, tIndptr, tSrc, scale, nil)
		} else {
			refSpMMTrans(dst, src, indptr, indices, scale, n)
		}
	}
}

func BenchmarkSpMMTransHighDegScalar(b *testing.B) { benchSpMMTrans(b, 2048, 256, 64, false) }
func BenchmarkSpMMTransHighDeg(b *testing.B)       { benchSpMMTrans(b, 2048, 256, 64, true) }

// benchAggProj measures the SAGE forward hot pair — aggregate then project —
// fused (SpMMMatMul, no concat ever written) against the unfused pipeline
// (SpMM into the concat's left half, the self-copy pass, MatMul over the
// concat). Bytes = FLOPs·4 (aggregation adds + projection multiply-adds), so
// MB/s comparisons are FLOP-rate comparisons across the two variants.
func benchAggProj(b *testing.B, n, deg, in, out int, fused bool) {
	rng := NewRNG(44)
	indptr, indices := benchCSR(rng, n, deg)
	h := randomMatrix(rng, n, in)
	w := randomMatrix(rng, 2*in, out)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = 1 / float32(deg)
	}
	pre := New(n, out)
	z := New(n, in)
	concat := New(n, 2*in)
	flops := int64(n)*int64(deg)*int64(in) + 2*int64(n)*int64(2*in)*int64(out)
	b.SetBytes(flops * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fused {
			SpMMMatMul(pre, z, h, w, indptr, indices, scale, nil)
		} else {
			SpMM(concat, h, indptr, indices, scale, nil)
			for r := 0; r < n; r++ {
				copy(concat.Row(r)[in:], h.Row(r))
			}
			MatMul(pre, concat, w)
		}
	}
}

func BenchmarkAggProjHighDegUnfused(b *testing.B) { benchAggProj(b, 2048, 256, 64, 64, false) }
func BenchmarkAggProjHighDegFused(b *testing.B)   { benchAggProj(b, 2048, 256, 64, 64, true) }
func BenchmarkAggProjLowDegUnfused(b *testing.B)  { benchAggProj(b, 4096, 8, 64, 64, false) }
func BenchmarkAggProjLowDegFused(b *testing.B)    { benchAggProj(b, 4096, 8, 64, 64, true) }

// benchBackwardSplit measures the backward concat sweep: fused
// (MatMulTransBSplit writing dz and the self gradient in one pass) against
// MatMulTransB into dConcat plus the split-copy pass.
func benchBackwardSplit(b *testing.B, n, in, out int, fused bool) {
	rng := NewRNG(45)
	dPre := randomMatrix(rng, n, out)
	w := randomMatrix(rng, 2*in, out)
	dz := New(n, in)
	dSelf := New(n, in)
	dConcat := New(n, 2*in)
	b.SetBytes(2 * int64(n) * int64(2*in) * int64(out) * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fused {
			MatMulTransBSplit(dz, dSelf, dPre, w)
		} else {
			MatMulTransB(dConcat, dPre, w)
			for r := 0; r < n; r++ {
				copy(dz.Row(r), dConcat.Row(r)[:in])
				copy(dSelf.Row(r), dConcat.Row(r)[in:])
			}
		}
	}
}

func BenchmarkBackwardSplitUnfused(b *testing.B) { benchBackwardSplit(b, 2048, 64, 64, false) }
func BenchmarkBackwardSplitFused(b *testing.B)   { benchBackwardSplit(b, 2048, 64, 64, true) }
