package tensor

import "testing"

func benchMatrices(n, k, m int) (*Matrix, *Matrix, *Matrix) {
	rng := NewRNG(1)
	a := randomMatrix(rng, n, k)
	b := randomMatrix(rng, k, m)
	return New(n, m), a, b
}

func BenchmarkMatMul128(b *testing.B) {
	out, x, y := benchMatrices(128, 128, 128)
	b.SetBytes(int64(128 * 128 * 128 * 2 * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	// GCN shape: many nodes × small feature dims.
	out, x, y := benchMatrices(4096, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(2)
	x := randomMatrix(rng, 4096, 64)
	y := randomMatrix(rng, 4096, 32)
	out := New(64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(out, x, y)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	rng := NewRNG(3)
	src := randomMatrix(rng, 10000, 64)
	idx := make([]int32, 2000)
	for i := range idx {
		idx[i] = int32(rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(src, idx)
	}
}
