package tensor

import "testing"

func benchMatrices(n, k, m int) (*Matrix, *Matrix, *Matrix) {
	rng := NewRNG(1)
	a := randomMatrix(rng, n, k)
	b := randomMatrix(rng, k, m)
	return New(n, m), a, b
}

// benchMatMulSquare reports GFLOP/s-comparable numbers for n×n×n MatMul via
// SetBytes (2 FLOPs ≈ 8 "bytes" per multiply-add at float32).
func benchMatMulSquare(b *testing.B, n int) {
	out, x, y := benchMatrices(n, n, n)
	b.SetBytes(int64(n) * int64(n) * int64(n) * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMul128(b *testing.B)  { benchMatMulSquare(b, 128) }
func BenchmarkMatMul256(b *testing.B)  { benchMatMulSquare(b, 256) }
func BenchmarkMatMul512(b *testing.B)  { benchMatMulSquare(b, 512) }
func BenchmarkMatMul1024(b *testing.B) { benchMatMulSquare(b, 1024) }

// BenchmarkMatMul is the 512×512×512 acceptance benchmark shape under its
// exact name, so `-bench=BenchmarkMatMul$` selects it alone.
func BenchmarkMatMul(b *testing.B) { benchMatMulSquare(b, 512) }

func BenchmarkMatMulTransB(b *testing.B) {
	rng := NewRNG(2)
	a := randomMatrix(rng, 512, 512)
	c := randomMatrix(rng, 512, 512)
	out := New(512, 512)
	b.SetBytes(512 * 512 * 512 * 2 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransB(out, a, c)
	}
}

func BenchmarkTranspose(b *testing.B) {
	rng := NewRNG(5)
	a := randomMatrix(rng, 2048, 2048)
	out := New(2048, 2048)
	b.SetBytes(2048 * 2048 * 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		TransposeInto(out, a)
	}
}

func BenchmarkMatMulTall(b *testing.B) {
	// GCN shape: many nodes × small feature dims.
	out, x, y := benchMatrices(4096, 64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(out, x, y)
	}
}

func BenchmarkMatMulTransA(b *testing.B) {
	rng := NewRNG(2)
	x := randomMatrix(rng, 4096, 64)
	y := randomMatrix(rng, 4096, 32)
	out := New(64, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulTransA(out, x, y)
	}
}

func BenchmarkGatherRows(b *testing.B) {
	rng := NewRNG(3)
	src := randomMatrix(rng, 10000, 64)
	idx := make([]int32, 2000)
	for i := range idx {
		idx[i] = int32(rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherRows(src, idx)
	}
}
