//go:build amd64

package tensor

// useAVX2 gates the assembly kernels: true when the CPU supports AVX2+FMA
// and the OS saves the YMM register state. Detection runs once at package
// init; the pure-Go fallbacks in matmul.go remain the reference semantics.
var useAVX2 = detectAVX2FMA()

// cpuid executes the CPUID instruction for the given leaf and subleaf.
//
//go:noescape
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads extended control register 0 (XCR0).
//
//go:noescape
func xgetbv() (eax, edx uint32)

// axpy4AVX2 computes dst[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] +
// a[3]*b3[j] for j in [0,n). n must be a multiple of 8; callers handle the
// scalar tail.
//
//go:noescape
func axpy4AVX2(dst, b0, b1, b2, b3 *float32, n int, a *[4]float32)

// dot4AVX2 writes the four dot products a·b0, a·b1, a·b2, a·b3 over the
// first n elements into out. n must be a multiple of 8.
//
//go:noescape
func dot4AVX2(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)

// dotAVX2 returns the dot product of a and b over the first n elements.
// n must be a multiple of 8; callers handle the scalar tail. The lane
// reduction differs from a sequential scalar accumulation (like dot4AVX2's),
// so callers needing bit-stability must route every computation of a value
// through the same Dot path — all the repo's bit-identity contracts are
// within-build, which makes that automatic.
//
//go:noescape
func dotAVX2(a, b *float32, n int) float32

// addAVX2 computes dst[j] += src[j] for j in [0,n), n a multiple of 8.
//
//go:noescape
func addAVX2(dst, src *float32, n int)

// axpyAVX2 computes dst[j] += a*src[j] for j in [0,n), n a multiple of 8.
//
//go:noescape
func axpyAVX2(dst, src *float32, n int, a float32)

func detectAVX2FMA() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		fma     = 1 << 12
		osxsave = 1 << 27
		avx     = 1 << 28
	)
	if c1&fma == 0 || c1&osxsave == 0 || c1&avx == 0 {
		return false
	}
	// The OS must have enabled XMM and YMM state saving (XCR0 bits 1,2).
	xa, _ := xgetbv()
	if xa&6 != 6 {
		return false
	}
	_, b7, _, _ := cpuid(7, 0)
	return b7&(1<<5) != 0 // AVX2
}
