package tensor

import "fmt"

// Row-subset matmul variants for the pipelined epoch engine. A layer's
// forward/backward can run in chunks — halo-independent rows while boundary
// features are in flight, halo-dependent rows on arrival — only if chunking
// cannot change a single output bit. These kernels guarantee that by
// construction: each output row is computed with exactly the per-row
// arithmetic of matMulTile/matMulTransBTile (same k-panel walk, same axpy4/
// dot4 primitives, same accumulation order), and rows are fully independent
// of each other, so any duplicate-free partition of the row space reproduces
// the one-shot result bit for bit. The kernel property tests pin this on
// odd/prime shapes with random row partitions.

// MatMulRows computes out.Row(v) = a.Row(v)·b for every v in rows, leaving
// all other rows of out untouched. rows must be in-range and duplicate-free
// (order is irrelevant: rows are independent). Bit-identical per row to
// MatMul.
func MatMulRows(out, a, b *Matrix, rows []int32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulRows inner dim mismatch %d vs %d", a.Cols, b.Rows))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulRows out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if len(rows) <= rowBlock || maxProcs == 1 {
		matMulRowsSeg(out, a, b, rows)
		return
	}
	parallelRows(len(rows), func(lo, hi int) {
		matMulRowsSeg(out, a, b, rows[lo:hi])
	})
}

// matMulRowsSeg is matMulTile iterating an explicit row list instead of a
// contiguous range; the b-panel reuse across the row set is preserved.
func matMulRowsSeg(out, a, b *Matrix, rows []int32) {
	k, m := a.Cols, b.Cols
	bd := b.Data
	for _, v := range rows {
		orow := out.Data[int(v)*m : int(v)*m+m]
		for j := range orow {
			orow[j] = 0
		}
	}
	kk := 0
	for ; kk+4 <= k; kk += 4 {
		b0 := bd[kk*m : kk*m+m]
		b1 := bd[(kk+1)*m : (kk+1)*m+m]
		b2 := bd[(kk+2)*m : (kk+2)*m+m]
		b3 := bd[(kk+3)*m : (kk+3)*m+m]
		for _, v := range rows {
			i := int(v)
			arow := a.Data[i*k : i*k+k]
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue // dropout-sparse input panel
			}
			axpy4(out.Data[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
		}
	}
	for ; kk < k; kk++ {
		brow := bd[kk*m : kk*m+m]
		for _, v := range rows {
			i := int(v)
			av := a.Data[i*k+kk]
			if av == 0 {
				continue
			}
			Axpy(out.Data[i*m:i*m+m], brow, av)
		}
	}
}

// MatMulRange computes rows [lo,hi) of out = a·b, leaving all other rows of
// out untouched. Bit-identical per row to MatMul.
func MatMulRange(out, a, b *Matrix, lo, hi int) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulRange inner dim mismatch %d vs %d", a.Cols, b.Rows))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulRange out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if lo < 0 || hi < lo || hi > a.Rows {
		panic(fmt.Sprintf("tensor: MatMulRange rows [%d,%d) outside [0,%d)", lo, hi, a.Rows))
	}
	if hi-lo <= rowBlock || maxProcs == 1 {
		matMulTile(out, a, b, lo, hi)
		return
	}
	parallelRows(hi-lo, func(l, h int) {
		matMulTile(out, a, b, lo+l, lo+h)
	})
}

// MatMulTransBRows computes out.Row(v) = a.Row(v)·bᵀ for every v in rows,
// leaving all other rows of out untouched. Bit-identical per row to
// MatMulTransB.
func MatMulTransBRows(out, a, b *Matrix, rows []int32) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBRows inner dim mismatch %d vs %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBRows out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if len(rows) <= rowBlock || maxProcs == 1 {
		matMulTransBRowsSeg(out, a, b, rows)
		return
	}
	parallelRows(len(rows), func(lo, hi int) {
		matMulTransBRowsSeg(out, a, b, rows[lo:hi])
	})
}

func matMulTransBRowsSeg(out, a, b *Matrix, rows []int32) {
	k, m := a.Cols, b.Rows
	bd := b.Data
	j := 0
	for ; j+4 <= m; j += 4 {
		b0 := bd[j*k : j*k+k]
		b1 := bd[(j+1)*k : (j+1)*k+k]
		b2 := bd[(j+2)*k : (j+2)*k+k]
		b3 := bd[(j+3)*k : (j+3)*k+k]
		for _, v := range rows {
			i := int(v)
			arow := a.Data[i*k : i*k+k]
			s0, s1, s2, s3 := dot4(arow, b0, b1, b2, b3)
			o := out.Data[i*m+j : i*m+j+4]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		}
	}
	for ; j < m; j++ {
		brow := bd[j*k : j*k+k]
		for _, v := range rows {
			i := int(v)
			out.Data[i*m+j] = Dot(a.Data[i*k:i*k+k], brow)
		}
	}
}

// MatMulTransBRange computes rows [lo,hi) of out = a·bᵀ, leaving all other
// rows of out untouched. Bit-identical per row to MatMulTransB.
func MatMulTransBRange(out, a, b *Matrix, lo, hi int) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransBRange inner dim mismatch %d vs %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBRange out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if lo < 0 || hi < lo || hi > a.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransBRange rows [%d,%d) outside [0,%d)", lo, hi, a.Rows))
	}
	if hi-lo <= rowBlock || maxProcs == 1 {
		matMulTransBTile(out, a, b, lo, hi)
		return
	}
	parallelRows(hi-lo, func(l, h int) {
		matMulTransBTile(out, a, b, lo+l, lo+h)
	})
}
