package tensor

import (
	"testing"
)

// refFusedForward is the unfused pipeline the fused kernel replaces, built
// from the engine's own kernels: SpMM into the concat's left half, a row-copy
// pass into the right half, MatMul over the concat. SpMMMatMul documents
// bit-identity against exactly this sequence. Returns (pre, concat) so
// callers can also check z against the concat's left half.
func refFusedForward(h, w *Matrix, indptr []int64, indices []int32, scale []float32, n int) (*Matrix, *Matrix) {
	in := h.Cols
	concat := New(n, 2*in)
	SpMM(concat, h, indptr, indices, scale, nil)
	for r := 0; r < n; r++ {
		copy(concat.Row(r)[in:], h.Row(r)[:in])
	}
	pre := New(n, w.Cols)
	MatMul(pre, concat, w)
	return pre, concat
}

// fusedOutDims are the projection widths crossed with spmmDims' input widths:
// below one axpy vector, exactly the register-block width, and odd overhangs.
var fusedOutDims = []int{1, 5, 8, 19}

// TestSpMMMatMulMatchesUnfused pins the fused forward against
// SpMM+copy+MatMul, bit for bit, across awkward input/output widths
// (including in % 4 != 0, which makes kk panels straddle the z/h boundary),
// zero-degree rows, chunk layouts, and the Rows/Range entry points.
func TestSpMMMatMulMatchesUnfused(t *testing.T) {
	rng := NewRNG(501)
	const n, nSrc = 53, 61
	indptr, indices := randCSR(rng, n, nSrc, 19)
	for _, in := range spmmDims {
		for _, out := range fusedOutDims {
			h := randomMatrix(rng, nSrc, in)
			w := randomMatrix(rng, 2*in, out)
			scale := make([]float32, n)
			for i := range scale {
				scale[i] = rng.Float32()
			}
			want, concat := refFusedForward(h, w, indptr, indices, scale, n)

			pre := New(n, out)
			z := New(n, in)
			SpMMMatMul(pre, z, h, w, indptr, indices, scale, nil)
			sameBitsF32(t, "pre/nil-chunks", pre.Data, want.Data)
			for r := 0; r < n; r++ {
				sameBitsF32(t, "z", z.Row(r), concat.Row(r)[:in])
			}

			// Adversarial chunk layouts, including single-row chunks and a
			// boundary past pre.Rows (the clamped tail chunk).
			for _, chunks := range [][]int32{
				{0, int32(n)},
				{0, 1, 2, 3, int32(n)},
				{0, 13, 17, 40, int32(n)},
				{0, 29, int32(n + 4)},
			} {
				pre.Zero()
				z.Zero()
				SpMMMatMul(pre, z, h, w, indptr, indices, scale, chunks)
				sameBitsF32(t, "pre/chunks", pre.Data, want.Data)
			}

			// Random duplicate-free row partition through Rows + Range.
			pre.Zero()
			z.Zero()
			var a, b []int32
			for v := 0; v < 20; v++ {
				if rng.Float32() < 0.5 {
					a = append(a, int32(v))
				} else {
					b = append(b, int32(v))
				}
			}
			SpMMMatMulRows(pre, z, h, w, indptr, indices, scale, a)
			SpMMMatMulRows(pre, z, h, w, indptr, indices, scale, b)
			SpMMMatMulRange(pre, z, h, w, indptr, indices, scale, 20, n)
			sameBitsF32(t, "pre/rows+range", pre.Data, want.Data)

			// Unscaled form.
			want, _ = refFusedForward(h, w, indptr, indices, nil, n)
			SpMMMatMul(pre, z, h, w, indptr, indices, nil, nil)
			sameBitsF32(t, "pre/unscaled", pre.Data, want.Data)
		}
	}
}

// TestSpMMMatMulMegaRow pins the fused kernel on the degree-skew shape: one
// row holding most of the edges, isolated in its own chunk.
func TestSpMMMatMulMegaRow(t *testing.T) {
	rng := NewRNG(502)
	const n, nSrc, in, out = 33, 40, 9, 7
	indptr := make([]int64, n+1)
	var indices []int32
	for v := 0; v < n; v++ {
		indptr[v] = int64(len(indices))
		deg := 2
		if v == 11 {
			deg = 900 // the mega row
		}
		for e := 0; e < deg; e++ {
			indices = append(indices, int32(rng.Intn(nSrc)))
		}
	}
	indptr[n] = int64(len(indices))
	h := randomMatrix(rng, nSrc, in)
	w := randomMatrix(rng, 2*in, out)
	want, _ := refFusedForward(h, w, indptr, indices, nil, n)
	pre := New(n, out)
	z := New(n, in)
	SpMMMatMul(pre, z, h, w, indptr, indices, nil, []int32{0, 11, 12, n})
	sameBitsF32(t, "mega-row", pre.Data, want.Data)
}

// TestSpMMMatMulParallelPathMatchesSerial forces the worker-pool branches
// (chunk claim, grain split, and the rows grain split) and checks the fused
// kernel still produces the unfused reference bits.
func TestSpMMMatMulParallelPathMatchesSerial(t *testing.T) {
	saved := maxProcs
	maxProcs = 4
	defer func() { maxProcs = saved }()

	rng := NewRNG(503)
	const n, nSrc, in, out = 97, 83, 17, 19
	indptr, indices := randCSR(rng, n, nSrc, 21)
	h := randomMatrix(rng, n+3, in) // h must cover every output row's self half
	w := randomMatrix(rng, 2*in, out)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = rng.Float32()
	}
	want, _ := refFusedForward(h, w, indptr, indices, scale, n)

	pre := New(n, out)
	z := New(n, in)
	SpMMMatMul(pre, z, h, w, indptr, indices, scale, []int32{0, 5, 40, 41, 77, n})
	sameBitsF32(t, "parallel/chunks", pre.Data, want.Data)
	pre.Zero()
	SpMMMatMul(pre, z, h, w, indptr, indices, scale, nil)
	sameBitsF32(t, "parallel/grain", pre.Data, want.Data)
	pre.Zero()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	SpMMMatMulRows(pre, z, h, w, indptr, indices, scale, rows)
	sameBitsF32(t, "parallel/rows", pre.Data, want.Data)
}

// TestMatMulTransBSplitMatchesUnfused pins the fused backward sweep against
// MatMulTransB-into-dConcat followed by the split, bit for bit, across widths
// and the staged halo/free row subsets the pipelined backward drives.
func TestMatMulTransBSplitMatchesUnfused(t *testing.T) {
	rng := NewRNG(504)
	const n = 41
	for _, in := range spmmDims {
		for _, out := range fusedOutDims {
			dPre := randomMatrix(rng, n, out)
			w := randomMatrix(rng, 2*in, out)

			dConcat := New(n, 2*in)
			MatMulTransB(dConcat, dPre, w)
			wantZ := New(n, in)
			wantSelf := New(n, in)
			for r := 0; r < n; r++ {
				copy(wantZ.Row(r), dConcat.Row(r)[:in])
				copy(wantSelf.Row(r), dConcat.Row(r)[in:])
			}

			dz := New(n, in)
			dSelf := New(n, in)
			MatMulTransBSplit(dz, dSelf, dPre, w)
			sameBitsF32(t, "dz", dz.Data, wantZ.Data)
			sameBitsF32(t, "dSelf", dSelf.Data, wantSelf.Data)

			// Staged backward shape: halo sources first, then the free rest —
			// a duplicate-free partition covering every row exactly once.
			dz.Zero()
			dSelf.Zero()
			var halo, free []int32
			for v := 0; v < n; v++ {
				if rng.Float32() < 0.3 {
					halo = append(halo, int32(v))
				} else {
					free = append(free, int32(v))
				}
			}
			MatMulTransBSplitRows(dz, dSelf, dPre, w, halo)
			MatMulTransBSplitRows(dz, dSelf, dPre, w, free)
			sameBitsF32(t, "dz/staged", dz.Data, wantZ.Data)
			sameBitsF32(t, "dSelf/staged", dSelf.Data, wantSelf.Data)
		}
	}
}

// TestMatMulTransBSplitParallel forces the row-parallel branch of both the
// full and row-list sweeps.
func TestMatMulTransBSplitParallel(t *testing.T) {
	saved := maxProcs
	maxProcs = 4
	defer func() { maxProcs = saved }()

	rng := NewRNG(505)
	const n, in, out = 193, 9, 13
	dPre := randomMatrix(rng, n, out)
	w := randomMatrix(rng, 2*in, out)
	dConcat := New(n, 2*in)
	MatMulTransB(dConcat, dPre, w)
	wantZ := New(n, in)
	wantSelf := New(n, in)
	for r := 0; r < n; r++ {
		copy(wantZ.Row(r), dConcat.Row(r)[:in])
		copy(wantSelf.Row(r), dConcat.Row(r)[in:])
	}

	dz := New(n, in)
	dSelf := New(n, in)
	MatMulTransBSplit(dz, dSelf, dPre, w)
	sameBitsF32(t, "dz/parallel", dz.Data, wantZ.Data)
	sameBitsF32(t, "dSelf/parallel", dSelf.Data, wantSelf.Data)

	dz.Zero()
	dSelf.Zero()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	MatMulTransBSplitRows(dz, dSelf, dPre, w, rows)
	sameBitsF32(t, "dz/parallel-rows", dz.Data, wantZ.Data)
	sameBitsF32(t, "dSelf/parallel-rows", dSelf.Data, wantSelf.Data)
}

// TestMatMulTransASplitMatchesUnfused pins the fused dW accumulation against
// MatMulTransA over a materialized concat — including the k >= 256 parallel
// reduction, whose worker split and in-order fold must match exactly.
func TestMatMulTransASplitMatchesUnfused(t *testing.T) {
	rng := NewRNG(506)
	for _, k := range []int{1, 3, 64, 300} { // 300 crosses the parallel threshold
		for _, in := range []int{1, 7, 8, 17} {
			const out = 11
			z := randomMatrix(rng, k, in)
			h := randomMatrix(rng, k+5, in) // h taller than dPre: prefix is the self half
			dPre := randomMatrix(rng, k, out)

			concat := New(k, 2*in)
			for r := 0; r < k; r++ {
				copy(concat.Row(r)[:in], z.Row(r))
				copy(concat.Row(r)[in:], h.Row(r))
			}
			want := New(2*in, out)
			MatMulTransA(want, concat, dPre)

			got := New(2*in, out)
			MatMulTransASplit(got, z, h, dPre)
			sameBitsF32(t, "dW", got.Data, want.Data)
		}
	}
}

// TestMatMulTransASplitParallel forces the worker-pool reduction and checks
// the in-order partial fold reproduces the serial bits.
func TestMatMulTransASplitParallel(t *testing.T) {
	saved := maxProcs
	maxProcs = 4
	defer func() { maxProcs = saved }()

	rng := NewRNG(507)
	const k, in, out = 513, 9, 13
	z := randomMatrix(rng, k, in)
	h := randomMatrix(rng, k, in)
	dPre := randomMatrix(rng, k, out)

	concat := New(k, 2*in)
	for r := 0; r < k; r++ {
		copy(concat.Row(r)[:in], z.Row(r))
		copy(concat.Row(r)[in:], h.Row(r))
	}
	want := New(2*in, out)
	MatMulTransA(want, concat, dPre)

	got := New(2*in, out)
	MatMulTransASplit(got, z, h, dPre)
	sameBitsF32(t, "dW/parallel", got.Data, want.Data)
}

// TestDotMatchesFloat64 sanity-checks the SIMD Dot against a float64
// accumulation: the AVX2 lane reduction legitimately differs from the scalar
// sum in the low bits, so this is a tolerance check, not a bit pin (all
// bit-identity contracts in the engine are within-build).
func TestDotMatchesFloat64(t *testing.T) {
	rng := NewRNG(508)
	for _, n := range []int{0, 1, 7, 8, 9, 16, 17, 31, 64, 65, 200} {
		a := make([]float32, n)
		b := make([]float32, n)
		var want float64
		for i := range a {
			a[i] = rng.Float32() - 0.5
			b[i] = rng.Float32() - 0.5
			want += float64(a[i]) * float64(b[i])
		}
		got := float64(Dot(a, b))
		if d := got - want; d > 1e-4 || d < -1e-4 {
			t.Fatalf("Dot n=%d: got %v want %v", n, got, want)
		}
	}
}
