package tensor

import (
	"testing"
)

// fillSentinel poisons a matrix so untouched-row checks are meaningful.
func fillSentinel(m *Matrix) {
	for i := range m.Data {
		m.Data[i] = -12345.5
	}
}

// randomSplit partitions [0,n) into two duplicate-free ascending row lists.
func randomSplit(rng *RNG, n int) (a, b []int32) {
	for v := 0; v < n; v++ {
		if rng.Float32() < 0.5 {
			a = append(a, int32(v))
		} else {
			b = append(b, int32(v))
		}
	}
	return a, b
}

// TestMatMulRowsMatchesFull pins the bit-identity contract of the row-subset
// kernels: computing any partition of the rows — in two chunks, scattered or
// contiguous — must reproduce the one-shot kernel exactly, on odd and prime
// shapes that exercise every tail path.
func TestMatMulRowsMatchesFull(t *testing.T) {
	rng := NewRNG(7)
	shapes := [][3]int{{1, 1, 1}, {3, 5, 2}, {7, 13, 11}, {17, 9, 23}, {65, 31, 19}, {130, 67, 37}}
	for _, s := range shapes {
		n, k, m := s[0], s[1], s[2]
		a := New(n, k)
		b := New(k, m)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		want := New(n, m)
		MatMul(want, a, b)

		got := New(n, m)
		fillSentinel(got)
		rows1, rows2 := randomSplit(rng, n)
		MatMulRows(got, a, b, rows1)
		MatMulRows(got, a, b, rows2)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMulRows %dx%dx%d: element %d = %v, want %v", n, k, m, i, got.Data[i], want.Data[i])
			}
		}

		got2 := New(n, m)
		fillSentinel(got2)
		cut := n / 3
		MatMulRange(got2, a, b, 0, cut)
		MatMulRange(got2, a, b, cut, n)
		for i := range want.Data {
			if got2.Data[i] != want.Data[i] {
				t.Fatalf("MatMulRange %dx%dx%d: element %d = %v, want %v", n, k, m, i, got2.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulTransBRowsMatchesFull is the same contract for out = a·bᵀ.
func TestMatMulTransBRowsMatchesFull(t *testing.T) {
	rng := NewRNG(11)
	shapes := [][3]int{{1, 1, 1}, {5, 3, 7}, {13, 11, 5}, {29, 17, 9}, {67, 23, 41}}
	for _, s := range shapes {
		n, k, m := s[0], s[1], s[2]
		a := New(n, k)
		b := New(m, k)
		for i := range a.Data {
			a.Data[i] = float32(rng.NormFloat64())
		}
		for i := range b.Data {
			b.Data[i] = float32(rng.NormFloat64())
		}
		want := New(n, m)
		MatMulTransB(want, a, b)

		got := New(n, m)
		fillSentinel(got)
		rows1, rows2 := randomSplit(rng, n)
		MatMulTransBRows(got, a, b, rows1)
		MatMulTransBRows(got, a, b, rows2)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransBRows %dx%dx%d: element %d = %v, want %v", n, k, m, i, got.Data[i], want.Data[i])
			}
		}

		got2 := New(n, m)
		fillSentinel(got2)
		cut := (n + 1) / 2
		MatMulTransBRange(got2, a, b, 0, cut)
		MatMulTransBRange(got2, a, b, cut, n)
		for i := range want.Data {
			if got2.Data[i] != want.Data[i] {
				t.Fatalf("MatMulTransBRange %dx%dx%d: element %d = %v, want %v", n, k, m, i, got2.Data[i], want.Data[i])
			}
		}
	}
}

// TestMatMulRowsLeavesOtherRowsUntouched: a row-subset call must not write a
// single element outside its listed rows (the engine's output matrices hold
// live chunk-1 results while chunk 2 runs).
func TestMatMulRowsLeavesOtherRowsUntouched(t *testing.T) {
	rng := NewRNG(13)
	const n, k, m = 19, 7, 5
	a := New(n, k)
	b := New(k, m)
	bt := New(m, k)
	for i := range a.Data {
		a.Data[i] = float32(rng.NormFloat64())
	}
	for i := range b.Data {
		b.Data[i] = float32(rng.NormFloat64())
	}
	for i := range bt.Data {
		bt.Data[i] = float32(rng.NormFloat64())
	}
	rows := []int32{2, 3, 11, 17}
	listed := map[int32]bool{}
	for _, v := range rows {
		listed[v] = true
	}
	check := func(name string, got *Matrix) {
		t.Helper()
		for i, v := range got.Data {
			if !listed[int32(i/m)] && v != -12345.5 {
				t.Fatalf("%s wrote element %d of unlisted row %d", name, i, i/m)
			}
		}
	}
	got := New(n, m)
	fillSentinel(got)
	MatMulRows(got, a, b, rows)
	check("MatMulRows", got)
	fillSentinel(got)
	MatMulTransBRows(got, a, bt, rows)
	check("MatMulTransBRows", got)
}
