package tensor

import "fmt"

// Sparse aggregation engine: CSR SpMM kernels for the graph layers' neighbor
// aggregation (forward Z = scale·A·H, backward dH = Aᵀ·scale·dZ as a gather
// over the transposed index), mirroring the dense MatMul* family.
//
// Reference semantics. Each output row is defined by a sequential per-edge
// walk built on the vector primitives:
//
//	SpMM row r:       zero; for each e in CSR row r: AddTo(dst, x.Row(u_e));
//	                  then dst *= scale[r]
//	SpMMTrans row r:  for each e in transposed row r: Axpy(dst, src.Row(v_e),
//	                  scale[v_e])        (dst is NOT zeroed: the caller owns
//	                  the initialization — zero, or a self term)
//
// The kernels below walk edges four at a time through axpy4 instead, and that
// is bit-identical to the sequential walk: the assembly chains its four FMAs
// into one accumulator in source order (dst, then +b0, +b1, +b2, +b3 — and
// fma(1,x,acc) ≡ acc+x exactly, so the unit-coefficient case reproduces
// AddTo), and addTo4/axpySeq4 use sequential mul-then-add scalar tails that
// match Axpy's own tail step for step. Accumulation order per *element* only
// depends on per-element operation order, which edge-blocking preserves.
// The property tests pin kernel ≡ reference on odd/prime shapes, zero-degree
// rows, and random row partitions.
//
// Parallelism. Rows are fully independent (each output row reads only its
// own CSR segment and writes only itself), so any duplicate-free partition of
// the row space is bit-identical in any execution order. The full-pass
// drivers take an optional edge-balanced chunk index (prefix-summed over
// indptr by graph.AggIndex so one mega-degree row lands in its own chunk
// instead of serializing a worker's whole share) and claim chunks dynamically
// from the persistent worker pool; with chunks == nil they fall back to
// dynamic spmmGrain-row claiming, which load-balances everything except a
// single mega row.

// spmmGrain is the dynamic claim size (in rows) of the chunkless sparse
// drivers: small enough that degree skew between claims stays bounded,
// large enough that the atomic cursor is not contended.
const spmmGrain = 8

// unitCoef feeds axpy4AVX2 for the unscaled gather: fma(1,x,acc) ≡ acc+x
// bitwise, so the blocked sum reproduces sequential AddTo exactly.
var unitCoef = [4]float32{1, 1, 1, 1}

// addTo4 computes dst += b0 + b1 + b2 + b3 with, per element, the exact
// accumulation order of four sequential AddTo calls.
func addTo4(dst, b0, b1, b2, b3 []float32) {
	n := len(dst)
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		axpy4AVX2(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], n8, &unitCoef)
		j = n8
	}
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for ; j < n; j++ {
		v := dst[j]
		v += b0[j]
		v += b1[j]
		v += b2[j]
		v += b3[j]
		dst[j] = v
	}
}

// axpySeq4 computes dst += a0*b0 + a1*b1 + a2*b2 + a3*b3 with, per element,
// the exact accumulation order of four sequential Axpy calls (the assembly
// chains the four FMAs; the scalar tail multiplies-then-adds one term at a
// time, unlike axpy4's fused four-term tail).
func axpySeq4(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		a := [4]float32{a0, a1, a2, a3}
		axpy4AVX2(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], n8, &a)
		j = n8
	}
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for ; j < n; j++ {
		v := dst[j]
		v += a0 * b0[j]
		v += a1 * b1[j]
		v += a2 * b2[j]
		v += a3 * b3[j]
		dst[j] = v
	}
}

// GatherSum computes dst = Σ_i x.Row(nbrs[i]), walking the rows in order
// with the edge-blocked accumulation (bit-identical to sequential AddTo).
// len(dst) must equal x.Cols.
func GatherSum(dst []float32, x *Matrix, nbrs []int32) {
	for j := range dst {
		dst[j] = 0
	}
	GatherAdd(dst, x, nbrs)
}

// GatherAdd computes dst += Σ_i x.Row(nbrs[i]) in list order.
func GatherAdd(dst []float32, x *Matrix, nbrs []int32) {
	w := len(dst)
	xd := x.Data
	xw := x.Cols
	i := 0
	for ; i+4 <= len(nbrs); i += 4 {
		u0, u1, u2, u3 := int(nbrs[i])*xw, int(nbrs[i+1])*xw, int(nbrs[i+2])*xw, int(nbrs[i+3])*xw
		addTo4(dst, xd[u0:u0+w], xd[u1:u1+w], xd[u2:u2+w], xd[u3:u3+w])
	}
	for ; i < len(nbrs); i++ {
		u := int(nbrs[i]) * xw
		AddTo(dst, xd[u:u+w])
	}
}

// GatherAxpy computes dst += Σ_i coef[i]·x.Row(nbrs[i]) in list order
// (bit-identical to sequential Axpy calls). len(coef) must be ≥ len(nbrs);
// len(dst) must be ≤ x.Cols (a prefix of each source row is gathered).
func GatherAxpy(dst []float32, x *Matrix, nbrs []int32, coef []float32) {
	w := len(dst)
	xd := x.Data
	xw := x.Cols
	i := 0
	for ; i+4 <= len(nbrs); i += 4 {
		u0, u1, u2, u3 := int(nbrs[i])*xw, int(nbrs[i+1])*xw, int(nbrs[i+2])*xw, int(nbrs[i+3])*xw
		axpySeq4(dst, xd[u0:u0+w], xd[u1:u1+w], xd[u2:u2+w], xd[u3:u3+w],
			coef[i], coef[i+1], coef[i+2], coef[i+3])
	}
	for ; i < len(nbrs); i++ {
		u := int(nbrs[i]) * xw
		Axpy(dst, xd[u:u+w], coef[i])
	}
}

// GatherDots computes out[i] = Σ_j a[j]·x.Row(nbrs[i])[j] for every i, four
// rows per dot4 pass (the shared a vector is loaded once per four rows).
// Each dot is independent, so the blocking affects no other entry; within a
// dot the dot4 lane reduction differs from the scalar Dot — callers that
// need bit-stability must route every computation of a value through this
// one function, which the GAT backward does.
func GatherDots(out []float32, a []float32, x *Matrix, nbrs []int32) {
	w := len(a)
	xd := x.Data
	xw := x.Cols
	i := 0
	for ; i+4 <= len(nbrs); i += 4 {
		u0, u1, u2, u3 := int(nbrs[i])*xw, int(nbrs[i+1])*xw, int(nbrs[i+2])*xw, int(nbrs[i+3])*xw
		out[i], out[i+1], out[i+2], out[i+3] = dot4(a, xd[u0:u0+w], xd[u1:u1+w], xd[u2:u2+w], xd[u3:u3+w])
	}
	for ; i < len(nbrs); i++ {
		u := int(nbrs[i]) * xw
		out[i] = Dot(a, xd[u:u+w])
	}
}

// checkSpMM validates the shared SpMM shape contract: one CSR row per output
// row, destination at least as wide as the gathered width.
func checkSpMM(name string, out, x *Matrix, indptr []int64, indices []int32, scale []float32) {
	if out.Cols < x.Cols {
		panic(fmt.Sprintf("tensor: %s out width %d < x width %d", name, out.Cols, x.Cols))
	}
	if len(indptr) < out.Rows+1 {
		panic(fmt.Sprintf("tensor: %s indptr len %d, need %d", name, len(indptr), out.Rows+1))
	}
	if scale != nil && len(scale) < out.Rows {
		panic(fmt.Sprintf("tensor: %s scale len %d, need %d", name, len(scale), out.Rows))
	}
	_ = indices
}

// spmmRow computes one output row: dst[:w] = scale·Σ x.Row(u) over the CSR
// row's edges, in edge order.
func spmmRow(out, x *Matrix, indptr []int64, indices []int32, scale []float32, r int) {
	w := x.Cols
	dst := out.Data[r*out.Cols : r*out.Cols+w]
	GatherSum(dst, x, indices[indptr[r]:indptr[r+1]])
	if scale != nil {
		s := scale[r]
		for j := range dst {
			dst[j] *= s
		}
	}
}

// SpMM computes, for every row r in [0, out.Rows):
//
//	out.Row(r)[:x.Cols] = scale[r] · Σ_{e ∈ CSR row r} x.Row(indices[e])
//
// i.e. out = diag(scale)·A·x over the CSR adjacency (indptr, indices). scale
// == nil skips the rescale. out.Cols may exceed x.Cols: only the first
// x.Cols entries of each row are written (the SAGE layer aggregates into the
// left half of its concat buffer). chunks, when non-nil, is an edge-balanced
// row-chunk boundary list (graph.AggIndex.Chunks): ascending, chunks[0] = 0,
// boundaries clamped to out.Rows, each chunk claimed whole by one worker.
// Rows are independent, so every execution strategy is bit-identical.
func SpMM(out, x *Matrix, indptr []int64, indices []int32, scale []float32, chunks []int32) {
	checkSpMM("SpMM", out, x, indptr, indices, scale)
	if chunks == nil || maxProcs == 1 {
		spmmRange(out, x, indptr, indices, scale, 0, out.Rows)
		return
	}
	nr := out.Rows
	ParallelChunks(len(chunks)-1, func(c int) {
		lo, hi := int(chunks[c]), int(chunks[c+1])
		if hi > nr {
			hi = nr
		}
		for r := lo; r < hi; r++ {
			spmmRow(out, x, indptr, indices, scale, r)
		}
	})
}

// SpMMRange computes rows [lo,hi) of SpMM, leaving all other rows untouched.
func SpMMRange(out, x *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	checkSpMM("SpMMRange", out, x, indptr, indices, scale)
	if lo < 0 || hi < lo || hi > out.Rows {
		panic(fmt.Sprintf("tensor: SpMMRange rows [%d,%d) outside [0,%d)", lo, hi, out.Rows))
	}
	spmmRange(out, x, indptr, indices, scale, lo, hi)
}

func spmmRange(out, x *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	if hi-lo <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		for r := lo; r < hi; r++ {
			spmmRow(out, x, indptr, indices, scale, r)
		}
		return
	}
	parallelGrain(hi-lo, spmmGrain, func(l, h int) {
		for r := lo + l; r < lo+h; r++ {
			spmmRow(out, x, indptr, indices, scale, r)
		}
	})
}

// SpMMRows computes the listed rows of SpMM, leaving all other rows
// untouched. rows must be in-range and duplicate-free; order is irrelevant.
// This is the row-subset entry the pipelined epoch engine's halo-free and
// per-peer row buckets drive (mirroring MatMulRows).
func SpMMRows(out, x *Matrix, indptr []int64, indices []int32, scale []float32, rows []int32) {
	checkSpMM("SpMMRows", out, x, indptr, indices, scale)
	if len(rows) <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		for _, r := range rows {
			spmmRow(out, x, indptr, indices, scale, int(r))
		}
		return
	}
	parallelGrain(len(rows), spmmGrain, func(l, h int) {
		for _, r := range rows[l:h] {
			spmmRow(out, x, indptr, indices, scale, int(r))
		}
	})
}

// spmmTransRow accumulates one destination row of the transposed product:
// dst.Row(r) += Σ scale[v]·src.Row(v)[:w] over the transposed CSR row's
// sources, in stored (ascending-source) order. The caller owns dst's
// initialization.
func spmmTransRow(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, r int) {
	w := dst.Cols
	drow := dst.Data[r*w : r*w+w]
	srcs := indices[indptr[r]:indptr[r+1]]
	sd := src.Data
	sw := src.Cols
	if scale == nil {
		GatherAdd(drow, src, srcs)
		return
	}
	i := 0
	for ; i+4 <= len(srcs); i += 4 {
		v0, v1, v2, v3 := srcs[i], srcs[i+1], srcs[i+2], srcs[i+3]
		axpySeq4(drow,
			sd[int(v0)*sw:int(v0)*sw+w], sd[int(v1)*sw:int(v1)*sw+w],
			sd[int(v2)*sw:int(v2)*sw+w], sd[int(v3)*sw:int(v3)*sw+w],
			scale[v0], scale[v1], scale[v2], scale[v3])
	}
	for ; i < len(srcs); i++ {
		v := srcs[i]
		Axpy(drow, sd[int(v)*sw:int(v)*sw+w], scale[v])
	}
}

// checkSpMMTrans validates the transposed contract: per-destination incoming
// lists, source matrix at least as wide as the destination, per-SOURCE scale.
func checkSpMMTrans(name string, dst, src *Matrix, indptr []int64) {
	if src.Cols < dst.Cols {
		panic(fmt.Sprintf("tensor: %s src width %d < dst width %d", name, src.Cols, dst.Cols))
	}
	if len(indptr) < dst.Rows+1 {
		panic(fmt.Sprintf("tensor: %s indptr len %d, need %d", name, len(indptr), dst.Rows+1))
	}
}

// SpMMTrans computes the backward aggregation dst += Aᵀ·diag(scale)·src as a
// GATHER: for every destination row r in [0, dst.Rows),
//
//	dst.Row(r) += Σ_{v ∈ transposed CSR row r} scale[v] · src.Row(v)[:dst.Cols]
//
// (indptr, indices) is the TRANSPOSED index — per destination, the ascending
// list of source rows (graph.AggIndex.IncIndptr/IncSrc) — so destination
// rows are independent and the scatter race of the naive formulation never
// exists. scale indexes SOURCE rows; nil skips the scaling. src.Cols may
// exceed dst.Cols (the SAGE layer reads the dz half of its dConcat rows).
// dst is accumulated into, not zeroed: the caller initializes rows (zero, or
// the layer's self term). chunks is the edge-balanced boundary list over the
// transposed index (graph.AggIndex.IncChunks), nil for dynamic row claiming.
func SpMMTrans(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, chunks []int32) {
	checkSpMMTrans("SpMMTrans", dst, src, indptr)
	if chunks == nil || maxProcs == 1 {
		spmmTransRange(dst, src, indptr, indices, scale, 0, dst.Rows)
		return
	}
	nr := dst.Rows
	ParallelChunks(len(chunks)-1, func(c int) {
		lo, hi := int(chunks[c]), int(chunks[c+1])
		if hi > nr {
			hi = nr
		}
		for r := lo; r < hi; r++ {
			spmmTransRow(dst, src, indptr, indices, scale, r)
		}
	})
}

// SpMMTransRange computes destination rows [lo,hi) of SpMMTrans. chunks (may
// be nil) is clamped to the range: the pipelined engine's BackwardFinish
// completes the inner rows [0,nIn) while the halo rows' gradients are
// already in flight.
func SpMMTransRange(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, chunks []int32, lo, hi int) {
	checkSpMMTrans("SpMMTransRange", dst, src, indptr)
	if lo < 0 || hi < lo || hi > dst.Rows {
		panic(fmt.Sprintf("tensor: SpMMTransRange rows [%d,%d) outside [0,%d)", lo, hi, dst.Rows))
	}
	if chunks == nil || maxProcs == 1 {
		spmmTransRange(dst, src, indptr, indices, scale, lo, hi)
		return
	}
	ParallelChunks(len(chunks)-1, func(c int) {
		l, h := int(chunks[c]), int(chunks[c+1])
		if l < lo {
			l = lo
		}
		if h > hi {
			h = hi
		}
		for r := l; r < h; r++ {
			spmmTransRow(dst, src, indptr, indices, scale, r)
		}
	})
}

func spmmTransRange(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	if hi-lo <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		for r := lo; r < hi; r++ {
			spmmTransRow(dst, src, indptr, indices, scale, r)
		}
		return
	}
	parallelGrain(hi-lo, spmmGrain, func(l, h int) {
		for r := lo + l; r < lo+h; r++ {
			spmmTransRow(dst, src, indptr, indices, scale, r)
		}
	})
}

// SpMMTransRows accumulates the listed destination rows of SpMMTrans,
// leaving all other rows untouched — the staged backward's halo stage
// completes exactly the sampled boundary slots this way.
func SpMMTransRows(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, rows []int32) {
	checkSpMMTrans("SpMMTransRows", dst, src, indptr)
	if len(rows) <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		for _, r := range rows {
			spmmTransRow(dst, src, indptr, indices, scale, int(r))
		}
		return
	}
	parallelGrain(len(rows), spmmGrain, func(l, h int) {
		for _, r := range rows[l:h] {
			spmmTransRow(dst, src, indptr, indices, scale, int(r))
		}
	})
}
