//go:build !amd64

package tensor

// useAVX2 is always false on non-amd64 platforms; the pure-Go kernels in
// matmul.go are used instead.
const useAVX2 = false

func axpy4AVX2(dst, b0, b1, b2, b3 *float32, n int, a *[4]float32) {
	panic("tensor: axpy4AVX2 unavailable on this platform")
}

func dot4AVX2(a, b0, b1, b2, b3 *float32, n int, out *[4]float32) {
	panic("tensor: dot4AVX2 unavailable on this platform")
}

func dotAVX2(a, b *float32, n int) float32 {
	panic("tensor: dotAVX2 unavailable on this platform")
}

func addAVX2(dst, src *float32, n int) {
	panic("tensor: addAVX2 unavailable on this platform")
}

func axpyAVX2(dst, src *float32, n int, a float32) {
	panic("tensor: axpyAVX2 unavailable on this platform")
}
