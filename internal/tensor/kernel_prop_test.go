package tensor

import (
	"math"
	"sync/atomic"
	"testing"
)

// propShapes are deliberately awkward: 1 exercises degenerate loops, 3 and 7
// the scalar tails (below one SIMD vector), 65 and 129 the
// one-past-a-power-of-two cases that hit both the 16-wide main loop, the
// 8-wide block and the scalar tail of the assembly kernels.
var propShapes = []int{1, 3, 7, 65, 129}

// refMatMul is an order-obvious reference: out[i][j] = Σ_k a[i][k]*b[k][j]
// accumulated in float64 to give a tolerance anchor for the FMA kernels.
func refMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func maxRelErr(got, want *Matrix) float64 {
	var worst float64
	for i, v := range got.Data {
		w := want.Data[i]
		d := math.Abs(float64(v - w))
		scale := 1 + math.Abs(float64(w))
		if e := d / scale; e > worst {
			worst = e
		}
	}
	return worst
}

func TestMatMulPropertyOddShapes(t *testing.T) {
	rng := NewRNG(101)
	for _, n := range propShapes {
		for _, k := range propShapes {
			for _, m := range propShapes {
				a := randomMatrix(rng, n, k)
				b := randomMatrix(rng, k, m)
				got := New(n, m)
				MatMul(got, a, b)
				want := refMatMul(a, b)
				if e := maxRelErr(got, want); e > 1e-5 {
					t.Fatalf("MatMul %dx%dx%d: max rel err %g", n, k, m, e)
				}
			}
		}
	}
}

func TestMatMulTransBPropertyOddShapes(t *testing.T) {
	rng := NewRNG(102)
	for _, n := range propShapes {
		for _, k := range propShapes {
			for _, m := range propShapes {
				a := randomMatrix(rng, n, k)
				b := randomMatrix(rng, m, k)
				got := New(n, m)
				MatMulTransB(got, a, b)
				want := refMatMul(a, Transpose(b))
				if e := maxRelErr(got, want); e > 1e-5 {
					t.Fatalf("MatMulTransB %dx%dx%d: max rel err %g", n, k, m, e)
				}
			}
		}
	}
}

func TestMatMulTransAPropertyOddShapes(t *testing.T) {
	rng := NewRNG(103)
	for _, n := range propShapes {
		for _, k := range propShapes {
			for _, m := range propShapes {
				a := randomMatrix(rng, k, n)
				b := randomMatrix(rng, k, m)
				got := New(n, m)
				MatMulTransA(got, a, b)
				want := refMatMul(Transpose(a), b)
				if e := maxRelErr(got, want); e > 1e-5 {
					t.Fatalf("MatMulTransA %dx%dx%d: max rel err %g", n, k, m, e)
				}
			}
		}
	}
}

// TestKernelsSkipZeroPanels pins the dropout-sparsity fast path: zeroed
// four-entry panels of a must not perturb the result.
func TestKernelsSkipZeroPanels(t *testing.T) {
	rng := NewRNG(104)
	a := randomMatrix(rng, 65, 129)
	for i := range a.Data {
		if rng.Float32() < 0.5 {
			a.Data[i] = 0
		}
	}
	b := randomMatrix(rng, 129, 65)
	got := New(65, 65)
	MatMul(got, a, b)
	if e := maxRelErr(got, refMatMul(a, b)); e > 1e-5 {
		t.Fatalf("sparse MatMul: max rel err %g", e)
	}
}

func TestVectorPrimitives(t *testing.T) {
	rng := NewRNG(105)
	for _, n := range []int{0, 1, 7, 8, 15, 16, 17, 129} {
		dst := make([]float32, n)
		src := make([]float32, n)
		want := make([]float32, n)
		for i := 0; i < n; i++ {
			dst[i] = rng.Float32()
			src[i] = rng.Float32()
			want[i] = dst[i] + 2.5*src[i]
		}
		Axpy(dst, src, 2.5)
		for i := range dst {
			if math.Abs(float64(dst[i]-want[i])) > 1e-5 {
				t.Fatalf("Axpy n=%d elem %d: got %v want %v", n, i, dst[i], want[i])
			}
		}
		AddTo(dst, src)
		for i := range dst {
			if math.Abs(float64(dst[i]-(want[i]+src[i]))) > 1e-5 {
				t.Fatalf("AddTo n=%d elem %d", n, i)
			}
		}
	}
}

func TestTransposeIntoOddShapes(t *testing.T) {
	rng := NewRNG(106)
	for _, r := range []int{1, 5, 31, 32, 33, 100} {
		for _, c := range []int{1, 7, 32, 65} {
			a := randomMatrix(rng, r, c)
			out := New(c, r)
			TransposeInto(out, a)
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					if out.At(j, i) != a.At(i, j) {
						t.Fatalf("transpose %dx%d mismatch at (%d,%d)", r, c, i, j)
					}
				}
			}
		}
	}
}

func TestTransposeIntoRejectsBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TransposeInto(New(3, 3), New(3, 4))
}

func TestWorkspaceReusesSteadyState(t *testing.T) {
	ws := NewWorkspace()
	m1 := ws.Get(33, 17)
	s1 := ws.GetF32(100)
	p1, q1 := &m1.Data[0], &s1[0]
	ws.Reset()
	m2 := ws.Get(33, 17)
	s2 := ws.GetF32(100)
	if &m2.Data[0] != p1 || &s2[0] != q1 {
		t.Fatal("workspace did not reuse buffers after Reset")
	}
	// Distinctness within one cycle.
	m3 := ws.Get(33, 17)
	if &m3.Data[0] == &m2.Data[0] {
		t.Fatal("workspace handed out the same buffer twice without Reset")
	}
	// Put returns a buffer for immediate reuse.
	ws.Put(m3)
	m4 := ws.Get(30, 18) // same size class
	if &m4.Data[0] != &m3.Data[0] {
		t.Fatal("Put buffer was not reused by the next same-class Get")
	}
	ws.Reset()
	allocs := testing.AllocsPerRun(10, func() {
		ws.Get(33, 17)
		ws.Get(33, 17)
		ws.GetF32(100)
		ws.Reset()
	})
	if allocs > 0 {
		t.Fatalf("steady-state workspace cycle allocates %v objects", allocs)
	}
}

func TestWorkspaceZeroSizes(t *testing.T) {
	ws := NewWorkspace()
	m := ws.Get(0, 5)
	if m.Rows != 0 || len(m.Data) != 0 {
		t.Fatal("zero-row matrix malformed")
	}
	s := ws.GetF32(0)
	if len(s) != 0 {
		t.Fatal("zero-length slice malformed")
	}
	ws.PutF32(s)
	ws.Put(m)
	ws.Reset()
	z := ws.GetZeroed(4, 4)
	for _, v := range z.Data {
		if v != 0 {
			t.Fatal("GetZeroed returned non-zero data")
		}
	}
}

// TestParallelRowsCoversAllRows drives the pooled worker path directly
// (it is inline on single-CPU machines) to check the atomic cursor hands
// out every chunk exactly once.
func TestParallelRowsCoversAllRows(t *testing.T) {
	for _, rows := range []int{1, rowBlock, rowBlock + 1, 10*rowBlock + 3} {
		counts := make([]int32, rows)
		parallelRows(rows, func(lo, hi int) {
			if lo < 0 || hi > rows || lo >= hi {
				t.Errorf("bad chunk [%d,%d) for %d rows", lo, hi, rows)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i := range counts {
			if c := atomic.LoadInt32(&counts[i]); c != 1 {
				t.Fatalf("rows=%d: row %d covered %d times", rows, i, c)
			}
		}
	}
}
