package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float32) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func randomMatrix(rng *RNG, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Float32()*2 - 1
	}
	return m
}

func TestNewShapes(t *testing.T) {
	m := New(3, 4)
	if m.Rows != 3 || m.Cols != 4 || len(m.Data) != 12 {
		t.Fatalf("New(3,4) = %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("New must zero data")
		}
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrom(2, 2, []float32{1, 2, 3})
}

func TestAtSetRow(t *testing.T) {
	m := New(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Fatalf("At(1,2) = %v", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Fatalf("Row(1)[2] = %v", row[2])
	}
	row[0] = 3 // Row shares storage
	if m.At(1, 0) != 3 {
		t.Fatal("Row must share storage")
	}
}

func TestCloneIndependence(t *testing.T) {
	m := New(2, 2)
	m.Fill(1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not share storage")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := NewFrom(2, 2, []float32{1, 2, 3, 4})
	b := NewFrom(2, 2, []float32{10, 20, 30, 40})
	a.Add(b)
	want := []float32{11, 22, 33, 44}
	for i, w := range want {
		if a.Data[i] != w {
			t.Fatalf("Add[%d] = %v want %v", i, a.Data[i], w)
		}
	}
	a.Sub(b)
	for i, w := range []float32{1, 2, 3, 4} {
		if a.Data[i] != w {
			t.Fatalf("Sub[%d] = %v want %v", i, a.Data[i], w)
		}
	}
	a.Scale(2)
	if a.At(1, 1) != 8 {
		t.Fatalf("Scale: %v", a.At(1, 1))
	}
	a.AddScaled(b, 0.5)
	if a.At(0, 0) != 2+5 {
		t.Fatalf("AddScaled: %v", a.At(0, 0))
	}
	a.Hadamard(b)
	if a.At(0, 0) != 70 {
		t.Fatalf("Hadamard: %v", a.At(0, 0))
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).Add(New(2, 3))
}

func TestNorms(t *testing.T) {
	m := NewFrom(1, 2, []float32{3, 4})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("FrobeniusNorm = %v", got)
	}
	if got := m.Sum(); got != 7 {
		t.Fatalf("Sum = %v", got)
	}
	m.Set(0, 0, -9)
	if m.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", m.MaxAbs())
	}
}

func TestHStackAndSplit(t *testing.T) {
	a := NewFrom(2, 2, []float32{1, 2, 3, 4})
	b := NewFrom(2, 1, []float32{5, 6})
	h := HStackRows(a, b)
	if h.Rows != 2 || h.Cols != 3 {
		t.Fatalf("HStack shape %dx%d", h.Rows, h.Cols)
	}
	if h.At(0, 2) != 5 || h.At(1, 2) != 6 || h.At(1, 1) != 4 {
		t.Fatalf("HStack contents wrong: %v", h.Data)
	}
	l, r := SplitCols(h, 2)
	if !l.Equal(a, 0) || !r.Equal(b, 0) {
		t.Fatal("SplitCols must invert HStackRows")
	}
}

func TestGatherScatterRows(t *testing.T) {
	src := NewFrom(3, 2, []float32{1, 1, 2, 2, 3, 3})
	g := GatherRows(src, []int32{2, 0, 2})
	want := []float32{3, 3, 1, 1, 3, 3}
	for i, w := range want {
		if g.Data[i] != w {
			t.Fatalf("Gather[%d] = %v want %v", i, g.Data[i], w)
		}
	}
	dst := New(3, 2)
	ScatterAddRows(dst, g, []int32{0, 0, 1})
	if dst.At(0, 0) != 4 || dst.At(1, 0) != 3 || dst.At(2, 0) != 0 {
		t.Fatalf("ScatterAdd wrong: %v", dst.Data)
	}
	dst2 := New(3, 2)
	ScatterRows(dst2, g, []int32{1, 2, 0})
	if dst2.At(1, 0) != 3 || dst2.At(2, 0) != 1 || dst2.At(0, 0) != 3 {
		t.Fatalf("ScatterRows wrong: %v", dst2.Data)
	}
}

// naiveMatMul is the reference implementation for property tests.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += float64(a.At(i, k)) * float64(b.At(k, j))
			}
			out.Set(i, j, float32(s))
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := NewRNG(1)
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(70)
		k := 1 + rng.Intn(70)
		m := 1 + rng.Intn(70)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, k, m)
		out := New(n, m)
		MatMul(out, a, b)
		want := naiveMatMul(a, b)
		if !out.Equal(want, 1e-3) {
			t.Fatalf("trial %d (%dx%dx%d): MatMul mismatch", trial, n, k, m)
		}
	}
}

func TestMatMulLargeParallel(t *testing.T) {
	rng := NewRNG(2)
	a := randomMatrix(rng, 300, 40)
	b := randomMatrix(rng, 40, 50)
	out := New(300, 50)
	MatMul(out, a, b)
	want := naiveMatMul(a, b)
	if !out.Equal(want, 1e-3) {
		t.Fatal("parallel MatMul mismatch")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := NewRNG(3)
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		a := randomMatrix(rng, n, k)
		b := randomMatrix(rng, m, k)
		out := New(n, m)
		MatMulTransB(out, a, b)
		want := naiveMatMul(a, Transpose(b))
		if !out.Equal(want, 1e-3) {
			t.Fatalf("trial %d: MatMulTransB mismatch", trial)
		}
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := NewRNG(4)
	for trial := 0; trial < 10; trial++ {
		k := 1 + rng.Intn(400) // exercise the parallel reduction path
		n := 1 + rng.Intn(30)
		m := 1 + rng.Intn(30)
		a := randomMatrix(rng, k, n)
		b := randomMatrix(rng, k, m)
		out := New(n, m)
		MatMulTransA(out, a, b)
		want := naiveMatMul(Transpose(a), b)
		if !out.Equal(want, 1e-2) {
			t.Fatalf("trial %d (k=%d): MatMulTransA mismatch", trial, k)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := randomMatrix(rng, 1+rng.Intn(20), 1+rng.Intn(20))
		return Transpose(Transpose(m)).Equal(m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(4, 2))
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGFloatRanges(t *testing.T) {
	rng := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if f := rng.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := rng.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	rng := NewRNG(8)
	const n = 20000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := rng.NormFloat64()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewRNG(9)
	p := rng.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if seen[v] {
			t.Fatal("duplicate in Perm")
		}
		seen[v] = true
	}
}

func TestXavierInitBounds(t *testing.T) {
	rng := NewRNG(10)
	m := New(30, 40)
	XavierInit(m, 30, 40, rng)
	bound := float32(math.Sqrt(6.0/70.0)) + 1e-6
	for _, v := range m.Data {
		if v < -bound || v > bound {
			t.Fatalf("Xavier value %v outside ±%v", v, bound)
		}
	}
	if m.MaxAbs() == 0 {
		t.Fatal("Xavier produced all zeros")
	}
}

func TestIntnUniform(t *testing.T) {
	rng := NewRNG(11)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[rng.Intn(4)]++
	}
	for i, c := range counts {
		if c < 1600 || c > 2400 {
			t.Fatalf("Intn bucket %d count %d far from uniform", i, c)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(12)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams overlap: %d identical draws", same)
	}
}

func TestEqualTolerance(t *testing.T) {
	a := NewFrom(1, 2, []float32{1, 2})
	b := NewFrom(1, 2, []float32{1.0005, 2})
	if !a.Equal(b, 1e-3) {
		t.Fatal("Equal should accept within tolerance")
	}
	if a.Equal(b, 1e-5) {
		t.Fatal("Equal should reject outside tolerance")
	}
	if a.Equal(New(2, 1), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}
