package tensor

import "math"

// RNG is a small, fast, seedable PRNG (splitmix64 core) used everywhere in
// the repository so experiments are reproducible without math/rand's global
// state. The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// State returns the generator's position in its stream. SetState(State())
// round-trips exactly, so checkpoints can persist and resume an RNG stream
// mid-sequence (splitmix64's entire state is one word).
func (r *RNG) State() uint64 { return r.state }

// SetState repositions the generator; see State.
func (r *RNG) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / (1 << 24)
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 1e-300 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split returns a new independent generator derived from r; useful for
// handing one stream to each of m parallel workers deterministically.
func (r *RNG) Split() *RNG { return &RNG{state: r.Uint64()} }

// XavierInit fills m with Glorot-uniform values scaled for fanIn→fanOut.
func XavierInit(m *Matrix, fanIn, fanOut int, rng *RNG) {
	bound := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	for i := range m.Data {
		m.Data[i] = (rng.Float32()*2 - 1) * bound
	}
}

// GaussianInit fills m with N(0, std²) values.
func GaussianInit(m *Matrix, std float64, rng *RNG) {
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64() * std)
	}
}
