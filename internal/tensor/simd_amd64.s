//go:build amd64

#include "textflag.h"

// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func axpy4AVX2(dst, b0, b1, b2, b3 *float32, n int, a *[4]float32)
//
// dst[j] += a[0]*b0[j] + a[1]*b1[j] + a[2]*b2[j] + a[3]*b3[j], j in [0,n).
// n must be a multiple of 8. Main loop handles 16 floats per iteration with
// two destination accumulators; a single 8-wide block mops up n%16.
TEXT ·axpy4AVX2(SB), NOSPLIT, $0-56
	MOVQ dst+0(FP), DI
	MOVQ b0+8(FP), SI
	MOVQ b1+16(FP), R8
	MOVQ b2+24(FP), R9
	MOVQ b3+32(FP), R10
	MOVQ n+40(FP), CX
	MOVQ a+48(FP), AX
	VBROADCASTSS 0(AX), Y0
	VBROADCASTSS 4(AX), Y1
	VBROADCASTSS 8(AX), Y2
	VBROADCASTSS 12(AX), Y3
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   axpy4tail
axpy4loop:
	VMOVUPS (DI)(BX*4), Y4
	VMOVUPS 32(DI)(BX*4), Y5
	VFMADD231PS (SI)(BX*4), Y0, Y4
	VFMADD231PS 32(SI)(BX*4), Y0, Y5
	VFMADD231PS (R8)(BX*4), Y1, Y4
	VFMADD231PS 32(R8)(BX*4), Y1, Y5
	VFMADD231PS (R9)(BX*4), Y2, Y4
	VFMADD231PS 32(R9)(BX*4), Y2, Y5
	VFMADD231PS (R10)(BX*4), Y3, Y4
	VFMADD231PS 32(R10)(BX*4), Y3, Y5
	VMOVUPS Y4, (DI)(BX*4)
	VMOVUPS Y5, 32(DI)(BX*4)
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  axpy4loop
axpy4tail:
	CMPQ BX, CX
	JGE  axpy4done
	VMOVUPS (DI)(BX*4), Y4
	VFMADD231PS (SI)(BX*4), Y0, Y4
	VFMADD231PS (R8)(BX*4), Y1, Y4
	VFMADD231PS (R9)(BX*4), Y2, Y4
	VFMADD231PS (R10)(BX*4), Y3, Y4
	VMOVUPS Y4, (DI)(BX*4)
axpy4done:
	VZEROUPPER
	RET

// func dot4AVX2(a, b0, b1, b2, b3 *float32, n int, out *[4]float32)
//
// out[i] = sum_j a[j]*bi[j] over j in [0,n); n must be a multiple of 8.
// Eight accumulators (two per dot product) hide the FMA latency.
TEXT ·dot4AVX2(SB), NOSPLIT, $0-56
	MOVQ a+0(FP), SI
	MOVQ b0+8(FP), R8
	MOVQ b1+16(FP), R9
	MOVQ b2+24(FP), R10
	MOVQ b3+32(FP), R11
	MOVQ n+40(FP), CX
	MOVQ out+48(FP), DI
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	VXORPS Y10, Y10, Y10
	VXORPS Y11, Y11, Y11
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   dot4tail
dot4loop:
	VMOVUPS (SI)(BX*4), Y0
	VMOVUPS 32(SI)(BX*4), Y1
	VFMADD231PS (R8)(BX*4), Y0, Y4
	VFMADD231PS 32(R8)(BX*4), Y1, Y5
	VFMADD231PS (R9)(BX*4), Y0, Y6
	VFMADD231PS 32(R9)(BX*4), Y1, Y7
	VFMADD231PS (R10)(BX*4), Y0, Y8
	VFMADD231PS 32(R10)(BX*4), Y1, Y9
	VFMADD231PS (R11)(BX*4), Y0, Y10
	VFMADD231PS 32(R11)(BX*4), Y1, Y11
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  dot4loop
dot4tail:
	CMPQ BX, CX
	JGE  dot4reduce
	VMOVUPS (SI)(BX*4), Y0
	VFMADD231PS (R8)(BX*4), Y0, Y4
	VFMADD231PS (R9)(BX*4), Y0, Y6
	VFMADD231PS (R10)(BX*4), Y0, Y8
	VFMADD231PS (R11)(BX*4), Y0, Y10
dot4reduce:
	VADDPS Y5, Y4, Y4
	VADDPS Y7, Y6, Y6
	VADDPS Y9, Y8, Y8
	VADDPS Y11, Y10, Y10
	VEXTRACTF128 $1, Y4, X5
	VADDPS X5, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4
	VMOVSS X4, 0(DI)
	VEXTRACTF128 $1, Y6, X5
	VADDPS X5, X6, X6
	VHADDPS X6, X6, X6
	VHADDPS X6, X6, X6
	VMOVSS X6, 4(DI)
	VEXTRACTF128 $1, Y8, X5
	VADDPS X5, X8, X8
	VHADDPS X8, X8, X8
	VHADDPS X8, X8, X8
	VMOVSS X8, 8(DI)
	VEXTRACTF128 $1, Y10, X5
	VADDPS X5, X10, X10
	VHADDPS X10, X10, X10
	VHADDPS X10, X10, X10
	VMOVSS X10, 12(DI)
	VZEROUPPER
	RET

// func dotAVX2(a, b *float32, n int) float32
//
// Returns sum_j a[j]*b[j] over j in [0,n); n must be a multiple of 8.
// Two accumulators hide the FMA latency (the same schedule as one dot4AVX2
// lane); the reduction is dot4AVX2's extract+hadd sequence.
TEXT ·dotAVX2(SB), NOSPLIT, $0-28
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), DI
	MOVQ n+16(FP), CX
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   dottail
dotloop:
	VMOVUPS (SI)(BX*4), Y0
	VMOVUPS 32(SI)(BX*4), Y1
	VFMADD231PS (DI)(BX*4), Y0, Y4
	VFMADD231PS 32(DI)(BX*4), Y1, Y5
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  dotloop
dottail:
	CMPQ BX, CX
	JGE  dotreduce
	VMOVUPS (SI)(BX*4), Y0
	VFMADD231PS (DI)(BX*4), Y0, Y4
dotreduce:
	VADDPS Y5, Y4, Y4
	VEXTRACTF128 $1, Y4, X5
	VADDPS X5, X4, X4
	VHADDPS X4, X4, X4
	VHADDPS X4, X4, X4
	VMOVSS X4, ret+24(FP)
	VZEROUPPER
	RET

// func addAVX2(dst, src *float32, n int)
//
// dst[j] += src[j] for j in [0,n); n must be a multiple of 8.
TEXT ·addAVX2(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   addtail
addloop:
	VMOVUPS (DI)(BX*4), Y0
	VMOVUPS 32(DI)(BX*4), Y1
	VADDPS (SI)(BX*4), Y0, Y0
	VADDPS 32(SI)(BX*4), Y1, Y1
	VMOVUPS Y0, (DI)(BX*4)
	VMOVUPS Y1, 32(DI)(BX*4)
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  addloop
addtail:
	CMPQ BX, CX
	JGE  adddone
	VMOVUPS (DI)(BX*4), Y0
	VADDPS (SI)(BX*4), Y0, Y0
	VMOVUPS Y0, (DI)(BX*4)
adddone:
	VZEROUPPER
	RET

// func axpyAVX2(dst, src *float32, n int, a float32)
//
// dst[j] += a*src[j] for j in [0,n); n must be a multiple of 8.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-28
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	VBROADCASTSS a+24(FP), Y2
	XORQ BX, BX
	MOVQ CX, DX
	ANDQ $-16, DX
	CMPQ DX, $0
	JE   axpytail
axpyloop:
	VMOVUPS (DI)(BX*4), Y0
	VMOVUPS 32(DI)(BX*4), Y1
	VFMADD231PS (SI)(BX*4), Y2, Y0
	VFMADD231PS 32(SI)(BX*4), Y2, Y1
	VMOVUPS Y0, (DI)(BX*4)
	VMOVUPS Y1, 32(DI)(BX*4)
	ADDQ $16, BX
	CMPQ BX, DX
	JLT  axpyloop
axpytail:
	CMPQ BX, CX
	JGE  axpydone
	VMOVUPS (DI)(BX*4), Y0
	VFMADD231PS (SI)(BX*4), Y2, Y0
	VMOVUPS Y0, (DI)(BX*4)
axpydone:
	VZEROUPPER
	RET
