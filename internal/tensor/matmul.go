package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// rowBlock is the number of output rows each parallel task handles.
const rowBlock = 64

// maxProcs caps the number of worker goroutines used by parallel kernels.
var maxProcs = runtime.GOMAXPROCS(0)

// parallelRows runs fn over [0,rows) split into contiguous chunks, one
// goroutine per chunk, bounded by GOMAXPROCS. For tiny inputs it runs inline.
func parallelRows(rows int, fn func(lo, hi int)) {
	if rows <= rowBlock || maxProcs == 1 {
		fn(0, rows)
		return
	}
	nchunks := (rows + rowBlock - 1) / rowBlock
	workers := maxProcs
	if workers > nchunks {
		workers = nchunks
	}
	var wg sync.WaitGroup
	var next int
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += rowBlock
				mu.Unlock()
				if lo >= rows {
					return
				}
				hi := lo + rowBlock
				if hi > rows {
					hi = rows
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// MatMul computes out = a·b where a is n×k and b is k×m. out must be n×m and
// is overwritten. The kernel is cache-blocked over k and parallel over rows.
func MatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %d vs %d", a.Cols, b.Rows))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	n, k, m := a.Rows, a.Cols, b.Cols
	parallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for j := range orow {
				orow[j] = 0
			}
			for kk, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Data[kk*m : (kk+1)*m]
				for j, bv := range brow {
					orow[j] += av * bv
				}
			}
		}
	})
}

// MatMulTransB computes out = a·bᵀ where a is n×k and b is m×k. out must be
// n×m and is overwritten.
func MatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %d vs %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	n, k, m := a.Rows, a.Cols, b.Rows
	parallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			orow := out.Data[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for kk, av := range arow {
					s += av * brow[kk]
				}
				orow[j] = s
			}
		}
	})
}

// MatMulTransA computes out = aᵀ·b where a is k×n and b is k×m. out must be
// n×m and is overwritten. The reduction over k is split across workers with
// per-worker accumulators to avoid write contention.
func MatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dim mismatch %d vs %d", a.Rows, b.Rows))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	k, n, m := a.Rows, a.Cols, b.Cols
	workers := maxProcs
	if k < 256 || workers == 1 {
		out.Zero()
		accumTransA(out, a, b, 0, k)
		return
	}
	if workers > 8 {
		workers = 8 // diminishing returns; keeps partial buffers small
	}
	partials := make([]*Matrix, workers)
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		partials[w] = New(n, m)
		wg.Add(1)
		go func(p *Matrix, lo, hi int) {
			defer wg.Done()
			accumTransA(p, a, b, lo, hi)
		}(partials[w], lo, hi)
	}
	wg.Wait()
	out.Zero()
	for _, p := range partials {
		if p != nil {
			out.Add(p)
		}
	}
}

// accumTransA accumulates aᵀ·b over rows [lo,hi) of a and b into out.
func accumTransA(out, a, b *Matrix, lo, hi int) {
	n, m := a.Cols, b.Cols
	for kk := lo; kk < hi; kk++ {
		arow := a.Data[kk*n : (kk+1)*n]
		brow := b.Data[kk*m : (kk+1)*m]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*m : (i+1)*m]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			out.Data[j*a.Rows+i] = v
		}
	}
	return out
}
