package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// rowBlock is the number of output rows each parallel task handles. It is
// also the kernel's row-tile height: a four-row b-panel (the L1-resident
// operand) is reused across all rows of one tile before the next panel loads.
const rowBlock = 64

// maxProcs caps the number of worker goroutines used by parallel kernels.
var maxProcs = runtime.GOMAXPROCS(0)

// rowTask is one parallelGrain invocation: workers claim contiguous chunks
// of [0,rows), grain units at a time, by advancing the atomic cursor, so
// there is no per-chunk lock. Dense kernels use rowBlock-unit grains; the
// sparse-aggregation drivers claim single edge-balanced chunks (grain 1).
type rowTask struct {
	fn    func(lo, hi int)
	rows  int
	grain int64
	next  atomic.Int64
	wg    sync.WaitGroup
}

func (t *rowTask) run() {
	rows := t.rows
	g := int(t.grain)
	for {
		hi := int(t.next.Add(t.grain))
		lo := hi - g
		if lo >= rows {
			return
		}
		if hi > rows {
			hi = rows
		}
		t.fn(lo, hi)
	}
}

var (
	taskPool   = sync.Pool{New: func() any { return new(rowTask) }}
	workerOnce sync.Once
	workQueue  chan *rowTask
)

// startWorkers launches the persistent kernel worker pool. Workers block on
// the queue between tasks; they are started lazily on the first parallel
// kernel call and live for the process lifetime.
func startWorkers() {
	workQueue = make(chan *rowTask, 4*maxProcs)
	for i := 0; i < maxProcs; i++ {
		go func() {
			for t := range workQueue {
				t.run()
				t.wg.Done()
			}
		}()
	}
}

// parallelRows runs fn over [0,rows) in rowBlock chunks claimed from an
// atomic cursor. The caller participates, so progress never depends on a
// pool worker being free; helpers that arrive after the cursor is exhausted
// return immediately. For tiny inputs or single-CPU processes it runs inline.
func parallelRows(rows int, fn func(lo, hi int)) {
	parallelGrain(rows, rowBlock, fn)
}

// parallelGrain runs fn over [0,units) in grain-unit chunks claimed from an
// atomic cursor on the persistent worker pool. Every unit is handed out
// exactly once, so a kernel whose chunks write disjoint output rows is
// deterministic regardless of which worker claims what.
func parallelGrain(units, grain int, fn func(lo, hi int)) {
	if units <= grain || maxProcs == 1 {
		fn(0, units)
		return
	}
	workerOnce.Do(startWorkers)
	helpers := (units+grain-1)/grain - 1
	if helpers > maxProcs-1 {
		helpers = maxProcs - 1
	}
	t := taskPool.Get().(*rowTask)
	t.fn, t.rows, t.grain = fn, units, int64(grain)
	t.next.Store(0)
	t.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		workQueue <- t
	}
	t.run()
	t.wg.Wait()
	t.fn = nil
	taskPool.Put(t)
}

// Parallelism reports the kernel worker-pool width (GOMAXPROCS at init).
// Callers use it to skip building parallel closures — which escape to the
// heap — when the kernels would run inline anyway.
func Parallelism() int { return maxProcs }

// ParallelChunks runs fn(c) for every chunk index c in [0,n) on the shared
// persistent kernel worker pool, one chunk claimed per cursor advance. The
// caller's chunks must write disjoint outputs; then results are independent
// of scheduling. Used by the graph layers to drive per-node sweeps over
// edge-balanced chunk indexes (see SpMM for the matrix-level drivers).
func ParallelChunks(n int, fn func(c int)) {
	if n <= 1 || maxProcs == 1 {
		for c := 0; c < n; c++ {
			fn(c)
		}
		return
	}
	parallelGrain(n, 1, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			fn(c)
		}
	})
}

// ---- vector primitives ----
// Each has an AVX2+FMA fast path over the 8-aligned prefix and a pure-Go
// scalar tail; the scalar loops are the reference semantics on other CPUs.

// AddTo computes dst[j] += src[j]. Lengths must match.
func AddTo(dst, src []float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: AddTo length mismatch %d vs %d", len(dst), len(src)))
	}
	n := len(dst)
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		addAVX2(&dst[0], &src[0], n8)
		j = n8
	}
	for ; j < n; j++ {
		dst[j] += src[j]
	}
}

// Axpy computes dst[j] += a*src[j]. Lengths must match.
func Axpy(dst, src []float32, a float32) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(dst), len(src)))
	}
	n := len(dst)
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		axpyAVX2(&dst[0], &src[0], n8, a)
		j = n8
	}
	for ; j < n; j++ {
		dst[j] += a * src[j]
	}
}

// Dot returns the dot product of a and b. Lengths must match. The AVX2 lane
// reduction differs from sequential scalar accumulation in the low bits;
// every bit-identity contract in the repo is within-build, so every path
// computing a given value goes through this same function either way.
func Dot(a, b []float32) float32 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	var s float32
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		s = dotAVX2(&a[0], &b[0], n8)
		j = n8
	}
	for ; j < n; j++ {
		s += a[j] * b[j]
	}
	return s
}

// axpy4 computes dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j].
// All slices have len(dst) elements.
func axpy4(dst, b0, b1, b2, b3 []float32, a0, a1, a2, a3 float32) {
	n := len(dst)
	j := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		a := [4]float32{a0, a1, a2, a3}
		axpy4AVX2(&dst[0], &b0[0], &b1[0], &b2[0], &b3[0], n8, &a)
		j = n8
	}
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for ; j < n; j++ {
		dst[j] += a0*b0[j] + a1*b1[j] + a2*b2[j] + a3*b3[j]
	}
}

// dot4 returns the four dot products of a with b0..b3 (all len(a) long).
func dot4(a, b0, b1, b2, b3 []float32) (s0, s1, s2, s3 float32) {
	n := len(a)
	i := 0
	if useAVX2 && n >= 8 {
		n8 := n &^ 7
		var out [4]float32
		dot4AVX2(&a[0], &b0[0], &b1[0], &b2[0], &b3[0], n8, &out)
		s0, s1, s2, s3 = out[0], out[1], out[2], out[3]
		i = n8
	}
	b0, b1, b2, b3 = b0[:n], b1[:n], b2[:n], b3[:n]
	for ; i < n; i++ {
		av := a[i]
		s0 += av * b0[i]
		s1 += av * b1[i]
		s2 += av * b2[i]
		s3 += av * b3[i]
	}
	return
}

// ---- matrix kernels ----

// MatMul computes out = a·b where a is n×k and b is k×m. out must be n×m and
// is overwritten. Row tiles of rowBlock rows are distributed across workers;
// within a tile the kernel walks four-row b panels so each panel stays hot in
// L1 while the tile of out accumulates in L2.
func MatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %d vs %d", a.Cols, b.Rows))
	}
	if out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Cols))
	}
	if a.Rows <= rowBlock || maxProcs == 1 {
		matMulTile(out, a, b, 0, a.Rows) // skip the closure: it would escape
		return
	}
	parallelRows(a.Rows, func(lo, hi int) {
		matMulTile(out, a, b, lo, hi)
	})
}

// matMulTile computes rows [lo,hi) of out = a·b.
func matMulTile(out, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Cols
	bd := b.Data
	for i := lo; i < hi; i++ {
		orow := out.Data[i*m : i*m+m]
		for j := range orow {
			orow[j] = 0
		}
	}
	kk := 0
	for ; kk+4 <= k; kk += 4 {
		b0 := bd[kk*m : kk*m+m]
		b1 := bd[(kk+1)*m : (kk+1)*m+m]
		b2 := bd[(kk+2)*m : (kk+2)*m+m]
		b3 := bd[(kk+3)*m : (kk+3)*m+m]
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : i*k+k]
			a0, a1, a2, a3 := arow[kk], arow[kk+1], arow[kk+2], arow[kk+3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue // dropout-sparse input panel
			}
			axpy4(out.Data[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
		}
	}
	for ; kk < k; kk++ {
		brow := bd[kk*m : kk*m+m]
		for i := lo; i < hi; i++ {
			av := a.Data[i*k+kk]
			if av == 0 {
				continue
			}
			Axpy(out.Data[i*m:i*m+m], brow, av)
		}
	}
}

// MatMulTransB computes out = a·bᵀ where a is n×k and b is m×k. out must be
// n×m and is overwritten. Both operands are walked along contiguous rows;
// four b rows are dotted against each a row at once so the 4×k b panel is
// reused across the whole row tile.
func MatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dim mismatch %d vs %d", a.Cols, b.Cols))
	}
	if out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Rows, b.Rows))
	}
	if a.Rows <= rowBlock || maxProcs == 1 {
		matMulTransBTile(out, a, b, 0, a.Rows)
		return
	}
	parallelRows(a.Rows, func(lo, hi int) {
		matMulTransBTile(out, a, b, lo, hi)
	})
}

func matMulTransBTile(out, a, b *Matrix, lo, hi int) {
	k, m := a.Cols, b.Rows
	bd := b.Data
	j := 0
	for ; j+4 <= m; j += 4 {
		b0 := bd[j*k : j*k+k]
		b1 := bd[(j+1)*k : (j+1)*k+k]
		b2 := bd[(j+2)*k : (j+2)*k+k]
		b3 := bd[(j+3)*k : (j+3)*k+k]
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : i*k+k]
			s0, s1, s2, s3 := dot4(arow, b0, b1, b2, b3)
			o := out.Data[i*m+j : i*m+j+4]
			o[0], o[1], o[2], o[3] = s0, s1, s2, s3
		}
	}
	for ; j < m; j++ {
		brow := bd[j*k : j*k+k]
		for i := lo; i < hi; i++ {
			out.Data[i*m+j] = Dot(a.Data[i*k:i*k+k], brow)
		}
	}
}

// transAScratch pools the per-worker partial matrices of MatMulTransA so the
// parallel reduction allocates nothing in steady state.
var transAScratch sync.Pool

func getPartial(rows, cols int) *Matrix {
	n := rows * cols
	if v := transAScratch.Get(); v != nil {
		m := v.(*Matrix)
		if cap(m.Data) >= n {
			m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
			m.Zero()
			return m
		}
	}
	return New(rows, cols)
}

// MatMulTransA computes out = aᵀ·b where a is k×n and b is k×m. out must be
// n×m and is overwritten. The reduction over k is split across workers with
// pooled per-worker accumulators to avoid write contention.
func MatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransA inner dim mismatch %d vs %d", a.Rows, b.Rows))
	}
	if out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, b.Cols))
	}
	k, n, m := a.Rows, a.Cols, b.Cols
	workers := maxProcs
	if k < 256 || workers == 1 {
		out.Zero()
		accumTransA(out, a, b, 0, k)
		return
	}
	if workers > 8 {
		workers = 8 // diminishing returns; keeps partial buffers small
	}
	var partials [8]*Matrix
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		partials[w] = getPartial(n, m)
		wg.Add(1)
		go func(p *Matrix, lo, hi int) {
			defer wg.Done()
			accumTransA(p, a, b, lo, hi)
		}(partials[w], lo, hi)
	}
	wg.Wait()
	out.Zero()
	for _, p := range partials[:workers] {
		if p != nil {
			out.Add(p)
			transAScratch.Put(p)
		}
	}
}

// accumTransA accumulates aᵀ·b over rows [lo,hi) of a and b into out, four
// rows of a and b per pass.
func accumTransA(out, a, b *Matrix, lo, hi int) {
	n, m := a.Cols, b.Cols
	ad, bd := a.Data, b.Data
	kk := lo
	for ; kk+4 <= hi; kk += 4 {
		a0 := ad[kk*n : kk*n+n]
		a1 := ad[(kk+1)*n : (kk+1)*n+n]
		a2 := ad[(kk+2)*n : (kk+2)*n+n]
		a3 := ad[(kk+3)*n : (kk+3)*n+n]
		b0 := bd[kk*m : kk*m+m]
		b1 := bd[(kk+1)*m : (kk+1)*m+m]
		b2 := bd[(kk+2)*m : (kk+2)*m+m]
		b3 := bd[(kk+3)*m : (kk+3)*m+m]
		for i := 0; i < n; i++ {
			v0, v1, v2, v3 := a0[i], a1[i], a2[i], a3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4(out.Data[i*m:i*m+m], b0, b1, b2, b3, v0, v1, v2, v3)
		}
	}
	for ; kk < hi; kk++ {
		arow := ad[kk*n : kk*n+n]
		brow := bd[kk*m : kk*m+m]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			Axpy(out.Data[i*m:i*m+m], brow, av)
		}
	}
}

// transposeBlock is the square tile edge for the blocked transpose; a
// 32×32 float32 tile (4KB read + 4KB written) fits L1 comfortably.
const transposeBlock = 32

// TransposeInto writes aᵀ into out, which must be a.Cols×a.Rows and must not
// alias a. Tiles are copied block-wise so both the reads and the writes stay
// within cache lines instead of striding a full column apart.
func TransposeInto(out, a *Matrix) {
	if out.Rows != a.Cols || out.Cols != a.Rows {
		panic(fmt.Sprintf("tensor: TransposeInto out shape %dx%d, want %dx%d", out.Rows, out.Cols, a.Cols, a.Rows))
	}
	rows, cols := a.Rows, a.Cols
	for ii := 0; ii < rows; ii += transposeBlock {
		ihi := ii + transposeBlock
		if ihi > rows {
			ihi = rows
		}
		for jj := 0; jj < cols; jj += transposeBlock {
			jhi := jj + transposeBlock
			if jhi > cols {
				jhi = cols
			}
			for i := ii; i < ihi; i++ {
				row := a.Data[i*cols : i*cols+cols]
				for j := jj; j < jhi; j++ {
					out.Data[j*rows+i] = row[j]
				}
			}
		}
	}
}

// Transpose returns aᵀ as a new matrix.
func Transpose(a *Matrix) *Matrix {
	out := New(a.Cols, a.Rows)
	TransposeInto(out, a)
	return out
}
