package tensor

import "math/bits"

// Workspace is a reusable arena of matrices and float32 slices for
// allocation-free hot loops. Buffers are bucketed by power-of-two capacity;
// after one warm-up pass through a loop with stable shapes, every Get is
// served from a free list and allocates nothing.
//
// Ownership rules: a buffer returned by Get/GetF32 belongs to the caller
// until it is handed back, either individually via Put/PutF32 or wholesale
// via Reset. Get returns buffers with UNDEFINED contents (use GetZeroed when
// the caller accumulates into the buffer). A Workspace is NOT safe for
// concurrent use; each owner — one trainer worker, one partition — keeps its
// own.
type Workspace struct {
	mats   [33][]*Matrix
	slices [33][][]float32

	usedMats   []*Matrix
	usedSlices [][]float32
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// sizeClass returns the bucket index whose buffers have capacity 1<<class.
func sizeClass(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// Get returns a rows×cols matrix with undefined contents.
func (w *Workspace) Get(rows, cols int) *Matrix {
	n := rows * cols
	c := sizeClass(n)
	var m *Matrix
	if bucket := w.mats[c]; len(bucket) > 0 {
		m = bucket[len(bucket)-1]
		w.mats[c] = bucket[:len(bucket)-1]
		m.Rows, m.Cols, m.Data = rows, cols, m.Data[:n]
	} else {
		m = &Matrix{Rows: rows, Cols: cols, Data: make([]float32, n, 1<<c)}
	}
	w.usedMats = append(w.usedMats, m)
	return m
}

// GetZeroed returns a zeroed rows×cols matrix.
func (w *Workspace) GetZeroed(rows, cols int) *Matrix {
	m := w.Get(rows, cols)
	m.Zero()
	return m
}

// GetF32 returns a float32 slice of length n with undefined contents.
func (w *Workspace) GetF32(n int) []float32 {
	c := sizeClass(n)
	var s []float32
	if bucket := w.slices[c]; len(bucket) > 0 {
		s = bucket[len(bucket)-1][:n]
		w.slices[c] = bucket[:len(bucket)-1]
	} else {
		s = make([]float32, n, 1<<c)
	}
	w.usedSlices = append(w.usedSlices, s)
	return s
}

// putClass returns the bucket a buffer of the given capacity may serve:
// the largest class c with 1<<c <= capacity, so every Get from that bucket
// fits. Returns -1 for capacity 0 (not poolable).
func putClass(capacity int) int {
	return bits.Len(uint(capacity)) - 1
}

// Put returns m to the free lists ahead of the next Reset. The caller must
// not use m afterwards. Put scans the outstanding-buffer list (newest
// first), so it is cheap for stack-disciplined early recycling but O(n) in
// the worst case; hot loops that hold many buffers should rely on Reset.
func (w *Workspace) Put(m *Matrix) {
	for i := len(w.usedMats) - 1; i >= 0; i-- {
		if w.usedMats[i] == m {
			w.usedMats = append(w.usedMats[:i], w.usedMats[i+1:]...)
			break
		}
	}
	if c := putClass(cap(m.Data)); c >= 0 {
		w.mats[c] = append(w.mats[c], m)
	}
}

// PutF32 returns s (a slice obtained from GetF32) to the free lists ahead of
// the next Reset.
func (w *Workspace) PutF32(s []float32) {
	if cap(s) == 0 {
		return // zero-capacity slices stay tracked until Reset
	}
	s = s[:cap(s)]
	for i := len(w.usedSlices) - 1; i >= 0; i-- {
		u := w.usedSlices[i]
		if cap(u) > 0 && &u[:1][0] == &s[0] {
			w.usedSlices = append(w.usedSlices[:i], w.usedSlices[i+1:]...)
			break
		}
	}
	w.slices[putClass(cap(s))] = append(w.slices[putClass(cap(s))], s)
}

// Reset returns every outstanding buffer to the free lists. All matrices and
// slices previously handed out become invalid for the caller: the next Gets
// will reuse their storage.
func (w *Workspace) Reset() {
	for i, m := range w.usedMats {
		if c := putClass(cap(m.Data)); c >= 0 {
			w.mats[c] = append(w.mats[c], m)
		}
		w.usedMats[i] = nil
	}
	w.usedMats = w.usedMats[:0]
	for i, s := range w.usedSlices {
		if c := putClass(cap(s)); c >= 0 {
			w.slices[c] = append(w.slices[c], s)
		}
		w.usedSlices[i] = nil
	}
	w.usedSlices = w.usedSlices[:0]
}
