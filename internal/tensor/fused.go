package tensor

import (
	"fmt"
	"sync"
)

// Fused aggregate-then-project kernels for the SAGE layer's hot path:
//
//	pre = [diag(scale)·A·h | h] · w
//
// computed WITHOUT ever materializing the nOut × 2·in concat matrix. The
// unfused pipeline (SpMM into the concat's left half, a row-copy pass into
// the right half, then MatMul over the concat) streams the same nOut × 2·in
// floats through DRAM three times; the fused kernels gather each aggregated
// row into z and feed it to the projection FMAs while the row is still hot in
// L1, splitting w into its aggregation-half (rows [0,in)) and self-half
// (rows [in,2·in)) panels. Only z (nOut × in, needed by the backward for dW)
// is written — the self half is read straight from h and the concat buffer
// and its copy pass disappear entirely.
//
// Bit-identity. Per output row the projection performs the EXACT operation
// sequence of matMulTile over the virtual concat row [z_v | h_v]: the same
// kk-panel walk over the full 2·in width — panels are never restarted at the
// z/h boundary, so axpy4 groupings are unchanged even when in % 4 != 0 — the
// same all-four-zero coefficient skip, and the same scalar-tail Axpy with
// zero skip. The aggregation into z is spmmRow itself. Rows are independent,
// so every partition of the row space (chunks, grains, row lists) is
// bit-identical in any execution order, exactly like SpMM/MatMul. The fused
// property tests pin fused ≡ SpMM+copy+MatMul bitwise on odd/prime widths,
// zero/mega-degree rows, random row partitions, and the forced-parallel path.
//
// The backward is fused symmetrically:
//
//	MatMulTransBSplit  — dConcat = dPre·wᵀ with the left half written to dz
//	                     and the right half (the self term) written straight
//	                     into the input-gradient rows, one sweep, no dConcat.
//	MatMulTransASplit  — dW = [z|h]ᵀ·dPre reading the two operand halves in
//	                     place.

// fusedRowBlock is the gather/project interleave depth: within one claim the
// kernel aggregates this many z rows, then projects them while they are still
// cache-hot, reusing each four-row w panel across the whole block (the same
// panel-reuse tiling as matMulTile's rowBlock).
const fusedRowBlock = rowBlock

// checkFused validates the shared fused-forward contract: z as wide as h,
// w stacking an aggregation half on a self half, one CSR row per output row.
func checkFused(name string, pre, z, h, w *Matrix, indptr []int64, scale []float32) {
	if z.Cols != h.Cols {
		panic(fmt.Sprintf("tensor: %s z width %d != h width %d", name, z.Cols, h.Cols))
	}
	if w.Rows != 2*z.Cols {
		panic(fmt.Sprintf("tensor: %s w rows %d, want 2*%d", name, w.Rows, z.Cols))
	}
	if pre.Cols != w.Cols {
		panic(fmt.Sprintf("tensor: %s pre width %d != w cols %d", name, pre.Cols, w.Cols))
	}
	if pre.Rows > z.Rows || pre.Rows > h.Rows {
		panic(fmt.Sprintf("tensor: %s pre rows %d > z rows %d or h rows %d", name, pre.Rows, z.Rows, h.Rows))
	}
	if len(indptr) < pre.Rows+1 {
		panic(fmt.Sprintf("tensor: %s indptr len %d, need %d", name, len(indptr), pre.Rows+1))
	}
	if scale != nil && len(scale) < pre.Rows {
		panic(fmt.Sprintf("tensor: %s scale len %d, need %d", name, len(scale), pre.Rows))
	}
}

// SpMMMatMul computes, for every row r in [0, pre.Rows):
//
//	z.Row(r)   = scale[r] · Σ_{e ∈ CSR row r} h.Row(indices[e])
//	pre.Row(r) = [z.Row(r) | h.Row(r)] · w
//
// i.e. pre = [diag(scale)·A·h | h]·w with the concat fused away. z must be
// pre.Rows × h.Cols (the caller keeps it for the backward's dW); w is
// (2·h.Cols) × pre.Cols. chunks, when non-nil, is an edge-balanced row-chunk
// boundary list — use graph.AggIndex.ChunksFor with the projection's per-row
// cost so wide layers stay balanced — with the same contract as SpMM's.
// Bit-identical per row to SpMM + self-copy + MatMul over the concat.
func SpMMMatMul(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, chunks []int32) {
	checkFused("SpMMMatMul", pre, z, h, w, indptr, scale)
	if chunks == nil || maxProcs == 1 {
		spmmMatMulRange(pre, z, h, w, indptr, indices, scale, 0, pre.Rows)
		return
	}
	nr := pre.Rows
	ParallelChunks(len(chunks)-1, func(c int) {
		lo, hi := int(chunks[c]), int(chunks[c+1])
		if hi > nr {
			hi = nr
		}
		if lo < hi {
			spmmMatMulSeg(pre, z, h, w, indptr, indices, scale, lo, hi)
		}
	})
}

// SpMMMatMulRange computes rows [lo,hi) of SpMMMatMul, leaving all other rows
// of pre and z untouched.
func SpMMMatMulRange(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	checkFused("SpMMMatMulRange", pre, z, h, w, indptr, scale)
	if lo < 0 || hi < lo || hi > pre.Rows {
		panic(fmt.Sprintf("tensor: SpMMMatMulRange rows [%d,%d) outside [0,%d)", lo, hi, pre.Rows))
	}
	spmmMatMulRange(pre, z, h, w, indptr, indices, scale, lo, hi)
}

func spmmMatMulRange(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	if hi-lo <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		spmmMatMulSeg(pre, z, h, w, indptr, indices, scale, lo, hi)
		return
	}
	parallelGrain(hi-lo, spmmGrain, func(l, r int) {
		spmmMatMulSeg(pre, z, h, w, indptr, indices, scale, lo+l, lo+r)
	})
}

// spmmMatMulSeg runs the fused pass over the contiguous rows [lo,hi):
// fusedRowBlock rows are aggregated into z, then projected while hot.
func spmmMatMulSeg(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, lo, hi int) {
	for b := lo; b < hi; b += fusedRowBlock {
		bh := b + fusedRowBlock
		if bh > hi {
			bh = hi
		}
		for r := b; r < bh; r++ {
			spmmRow(z, h, indptr, indices, scale, r)
		}
		fusedProjectRange(pre, z, h, w, b, bh)
	}
}

// SpMMMatMulRows computes the listed rows of SpMMMatMul, leaving all other
// rows untouched. rows must be in-range and duplicate-free; order is
// irrelevant. This is the row-subset entry the pipelined epoch engine's
// halo-free and per-peer buckets drive (mirroring SpMMRows/MatMulRows).
func SpMMMatMulRows(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, rows []int32) {
	checkFused("SpMMMatMulRows", pre, z, h, w, indptr, scale)
	if len(rows) <= spmmGrain || maxProcs == 1 { // skip the closure: it would escape
		spmmMatMulRowsSeg(pre, z, h, w, indptr, indices, scale, rows)
		return
	}
	parallelGrain(len(rows), spmmGrain, func(l, r int) {
		spmmMatMulRowsSeg(pre, z, h, w, indptr, indices, scale, rows[l:r])
	})
}

func spmmMatMulRowsSeg(pre, z, h, w *Matrix, indptr []int64, indices []int32, scale []float32, rows []int32) {
	for s := 0; s < len(rows); s += fusedRowBlock {
		e := s + fusedRowBlock
		if e > len(rows) {
			e = len(rows)
		}
		sub := rows[s:e]
		for _, r := range sub {
			spmmRow(z, h, indptr, indices, scale, int(r))
		}
		fusedProjectRows(pre, z, h, w, sub)
	}
}

// fusedProjectRange computes pre rows [lo,hi) over the virtual concat [z|h]
// with matMulTile's exact per-row operation sequence: kk panels of four over
// the FULL 2·in width (never restarted at the z/h boundary), the identical
// all-four-zero skip, and the identical scalar tail. Coefficient kk of row i
// reads z when kk < in, h when kk ≥ in.
func fusedProjectRange(pre, z, h, w *Matrix, lo, hi int) {
	in := z.Cols
	k, m := 2*in, w.Cols
	wd, zd, hd := w.Data, z.Data, h.Data
	pd := pre.Data
	for i := lo; i < hi; i++ {
		orow := pd[i*m : i*m+m]
		for j := range orow {
			orow[j] = 0
		}
	}
	kk := 0
	for ; kk+4 <= k; kk += 4 {
		b0 := wd[kk*m : kk*m+m]
		b1 := wd[(kk+1)*m : (kk+1)*m+m]
		b2 := wd[(kk+2)*m : (kk+2)*m+m]
		b3 := wd[(kk+3)*m : (kk+3)*m+m]
		switch {
		case kk+4 <= in: // aggregation-half panel: coefficients from z
			for i := lo; i < hi; i++ {
				arow := zd[i*in+kk : i*in+kk+4]
				a0, a1, a2, a3 := arow[0], arow[1], arow[2], arow[3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue // zero-degree row panel
				}
				axpy4(pd[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
			}
		case kk >= in: // self-half panel: coefficients from h
			off := kk - in
			for i := lo; i < hi; i++ {
				arow := hd[i*in+off : i*in+off+4]
				a0, a1, a2, a3 := arow[0], arow[1], arow[2], arow[3]
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue // dropout-sparse input panel
				}
				axpy4(pd[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
			}
		default: // panel straddles the boundary (in % 4 != 0)
			for i := lo; i < hi; i++ {
				a0 := concatCoef(zd, hd, in, i, kk)
				a1 := concatCoef(zd, hd, in, i, kk+1)
				a2 := concatCoef(zd, hd, in, i, kk+2)
				a3 := concatCoef(zd, hd, in, i, kk+3)
				if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
					continue
				}
				axpy4(pd[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
			}
		}
	}
	for ; kk < k; kk++ {
		brow := wd[kk*m : kk*m+m]
		for i := lo; i < hi; i++ {
			av := concatCoef(zd, hd, in, i, kk)
			if av == 0 {
				continue
			}
			Axpy(pd[i*m:i*m+m], brow, av)
		}
	}
}

// fusedProjectRows is fusedProjectRange iterating an explicit row list
// (matMulRowsSeg's shape); the w-panel reuse across the row set is preserved.
func fusedProjectRows(pre, z, h, w *Matrix, rows []int32) {
	in := z.Cols
	k, m := 2*in, w.Cols
	wd, zd, hd := w.Data, z.Data, h.Data
	pd := pre.Data
	for _, v := range rows {
		orow := pd[int(v)*m : int(v)*m+m]
		for j := range orow {
			orow[j] = 0
		}
	}
	kk := 0
	for ; kk+4 <= k; kk += 4 {
		b0 := wd[kk*m : kk*m+m]
		b1 := wd[(kk+1)*m : (kk+1)*m+m]
		b2 := wd[(kk+2)*m : (kk+2)*m+m]
		b3 := wd[(kk+3)*m : (kk+3)*m+m]
		for _, v := range rows {
			i := int(v)
			a0 := concatCoef(zd, hd, in, i, kk)
			a1 := concatCoef(zd, hd, in, i, kk+1)
			a2 := concatCoef(zd, hd, in, i, kk+2)
			a3 := concatCoef(zd, hd, in, i, kk+3)
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			axpy4(pd[i*m:i*m+m], b0, b1, b2, b3, a0, a1, a2, a3)
		}
	}
	for ; kk < k; kk++ {
		brow := wd[kk*m : kk*m+m]
		for _, v := range rows {
			i := int(v)
			av := concatCoef(zd, hd, in, i, kk)
			if av == 0 {
				continue
			}
			Axpy(pd[i*m:i*m+m], brow, av)
		}
	}
}

// concatCoef reads element kk of the virtual concat row [z_i | h_i].
func concatCoef(zd, hd []float32, in, i, kk int) float32 {
	if kk < in {
		return zd[i*in+kk]
	}
	return hd[i*in+kk-in]
}

// checkSplitB validates the fused backward-sweep contract.
func checkSplitB(name string, dz, dSelf, dPre, w *Matrix) {
	if dz.Cols != dSelf.Cols {
		panic(fmt.Sprintf("tensor: %s dz width %d != dSelf width %d", name, dz.Cols, dSelf.Cols))
	}
	if w.Rows != 2*dz.Cols {
		panic(fmt.Sprintf("tensor: %s w rows %d, want 2*%d", name, w.Rows, dz.Cols))
	}
	if w.Cols != dPre.Cols {
		panic(fmt.Sprintf("tensor: %s w cols %d != dPre width %d", name, w.Cols, dPre.Cols))
	}
	if dz.Rows < dPre.Rows || dSelf.Rows < dPre.Rows {
		panic(fmt.Sprintf("tensor: %s dz rows %d / dSelf rows %d < dPre rows %d", name, dz.Rows, dSelf.Rows, dPre.Rows))
	}
}

// MatMulTransBSplit computes, for every row v in [0, dPre.Rows), the row
// dPre.Row(v)·wᵀ of the concat gradient — writing its left half (the
// aggregation gradient dz_v) to dz.Row(v) and its right half (the self term)
// straight into dSelf.Row(v), which it OVERWRITES. One sweep replaces the
// unfused MatMulTransB-into-dConcat plus the self-copy pass; the j-blocked
// dot4 walk runs over the full 2·in width so every dot is grouped exactly as
// matMulTransBTile groups it — bit-identical to computing the dConcat row and
// splitting it afterwards. Rows are independent.
func MatMulTransBSplit(dz, dSelf, dPre, w *Matrix) {
	checkSplitB("MatMulTransBSplit", dz, dSelf, dPre, w)
	if dPre.Rows <= rowBlock || maxProcs == 1 {
		matMulTransBSplitTile(dz, dSelf, dPre, w, 0, dPre.Rows)
		return
	}
	parallelRows(dPre.Rows, func(lo, hi int) {
		matMulTransBSplitTile(dz, dSelf, dPre, w, lo, hi)
	})
}

func matMulTransBSplitTile(dz, dSelf, dPre, w *Matrix, lo, hi int) {
	in := dz.Cols
	k, m := dPre.Cols, w.Rows
	wd := w.Data
	j := 0
	for ; j+4 <= m; j += 4 {
		b0 := wd[j*k : j*k+k]
		b1 := wd[(j+1)*k : (j+1)*k+k]
		b2 := wd[(j+2)*k : (j+2)*k+k]
		b3 := wd[(j+3)*k : (j+3)*k+k]
		for i := lo; i < hi; i++ {
			arow := dPre.Data[i*k : i*k+k]
			s0, s1, s2, s3 := dot4(arow, b0, b1, b2, b3)
			splitWrite4(dz, dSelf, in, i, j, s0, s1, s2, s3)
		}
	}
	for ; j < m; j++ {
		brow := wd[j*k : j*k+k]
		for i := lo; i < hi; i++ {
			splitWrite(dz, dSelf, in, i, j, Dot(dPre.Data[i*k:i*k+k], brow))
		}
	}
}

// MatMulTransBSplitRows is MatMulTransBSplit for an explicit row list — the
// staged backward's halo and finish sweeps each cover their source subset.
// Bit-identical per row to MatMulTransBSplit.
func MatMulTransBSplitRows(dz, dSelf, dPre, w *Matrix, rows []int32) {
	checkSplitB("MatMulTransBSplitRows", dz, dSelf, dPre, w)
	if len(rows) <= rowBlock || maxProcs == 1 {
		matMulTransBSplitRowsSeg(dz, dSelf, dPre, w, rows)
		return
	}
	parallelRows(len(rows), func(lo, hi int) {
		matMulTransBSplitRowsSeg(dz, dSelf, dPre, w, rows[lo:hi])
	})
}

func matMulTransBSplitRowsSeg(dz, dSelf, dPre, w *Matrix, rows []int32) {
	in := dz.Cols
	k, m := dPre.Cols, w.Rows
	wd := w.Data
	j := 0
	for ; j+4 <= m; j += 4 {
		b0 := wd[j*k : j*k+k]
		b1 := wd[(j+1)*k : (j+1)*k+k]
		b2 := wd[(j+2)*k : (j+2)*k+k]
		b3 := wd[(j+3)*k : (j+3)*k+k]
		for _, v := range rows {
			i := int(v)
			arow := dPre.Data[i*k : i*k+k]
			s0, s1, s2, s3 := dot4(arow, b0, b1, b2, b3)
			splitWrite4(dz, dSelf, in, i, j, s0, s1, s2, s3)
		}
	}
	for ; j < m; j++ {
		brow := wd[j*k : j*k+k]
		for _, v := range rows {
			i := int(v)
			splitWrite(dz, dSelf, in, i, j, Dot(dPre.Data[i*k:i*k+k], brow))
		}
	}
}

// splitWrite4 stores four consecutive concat-gradient elements j..j+3 of row
// i across the dz/dSelf boundary at column `in`.
func splitWrite4(dz, dSelf *Matrix, in, i, j int, s0, s1, s2, s3 float32) {
	switch {
	case j+4 <= in:
		o := dz.Data[i*in+j : i*in+j+4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	case j >= in:
		sc := dSelf.Cols
		o := dSelf.Data[i*sc+j-in : i*sc+j-in+4]
		o[0], o[1], o[2], o[3] = s0, s1, s2, s3
	default:
		splitWrite(dz, dSelf, in, i, j, s0)
		splitWrite(dz, dSelf, in, i, j+1, s1)
		splitWrite(dz, dSelf, in, i, j+2, s2)
		splitWrite(dz, dSelf, in, i, j+3, s3)
	}
}

func splitWrite(dz, dSelf *Matrix, in, i, j int, s float32) {
	if j < in {
		dz.Data[i*in+j] = s
	} else {
		dSelf.Data[i*dSelf.Cols+j-in] = s
	}
}

// MatMulTransASplit computes out = [z|h]ᵀ·dPre where z is n×in, h's first n
// rows are the self half, and dPre is n×m; out must be 2·in × m and is
// overwritten. This is MatMulTransA over the virtual concat with the operand
// halves read in place: per four-row pass the column loop runs [0,in) against
// z and [in,2·in) against h with accumTransA's exact per-column operations
// (same zero skip, same axpy4), so the result is bit-identical to
// MatMulTransA(out, concat, dPre) — including the parallel reduction, which
// mirrors MatMulTransA's worker split and in-order fold.
func MatMulTransASplit(out, z, h, dPre *Matrix) {
	if z.Cols != h.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransASplit z width %d != h width %d", z.Cols, h.Cols))
	}
	if z.Rows != dPre.Rows || h.Rows < dPre.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransASplit z rows %d / h rows %d vs dPre rows %d", z.Rows, h.Rows, dPre.Rows))
	}
	if out.Rows != 2*z.Cols || out.Cols != dPre.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransASplit out shape %dx%d, want %dx%d", out.Rows, out.Cols, 2*z.Cols, dPre.Cols))
	}
	k, n, m := dPre.Rows, out.Rows, out.Cols
	workers := maxProcs
	if k < 256 || workers == 1 {
		out.Zero()
		accumTransASplit(out, z, h, dPre, 0, k)
		return
	}
	if workers > 8 {
		workers = 8 // diminishing returns; keeps partial buffers small
	}
	var partials [8]*Matrix
	var wg sync.WaitGroup
	chunk := (k + workers - 1) / workers
	for wi := 0; wi < workers; wi++ {
		lo := wi * chunk
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		if lo >= hi {
			break
		}
		partials[wi] = getPartial(n, m)
		wg.Add(1)
		go func(p *Matrix, lo, hi int) {
			defer wg.Done()
			accumTransASplit(p, z, h, dPre, lo, hi)
		}(partials[wi], lo, hi)
	}
	wg.Wait()
	out.Zero()
	for _, p := range partials[:workers] {
		if p != nil {
			out.Add(p)
			transAScratch.Put(p)
		}
	}
}

// accumTransASplit accumulates [z|h]ᵀ·b over rows [lo,hi) into out, four
// rows per pass, reading the virtual concat's halves in place.
func accumTransASplit(out, z, h, b *Matrix, lo, hi int) {
	in := z.Cols
	n, m := 2*in, b.Cols
	zd, hd, bd := z.Data, h.Data, b.Data
	hw := h.Cols
	od := out.Data
	kk := lo
	for ; kk+4 <= hi; kk += 4 {
		z0 := zd[kk*in : kk*in+in]
		z1 := zd[(kk+1)*in : (kk+1)*in+in]
		z2 := zd[(kk+2)*in : (kk+2)*in+in]
		z3 := zd[(kk+3)*in : (kk+3)*in+in]
		h0 := hd[kk*hw : kk*hw+in]
		h1 := hd[(kk+1)*hw : (kk+1)*hw+in]
		h2 := hd[(kk+2)*hw : (kk+2)*hw+in]
		h3 := hd[(kk+3)*hw : (kk+3)*hw+in]
		b0 := bd[kk*m : kk*m+m]
		b1 := bd[(kk+1)*m : (kk+1)*m+m]
		b2 := bd[(kk+2)*m : (kk+2)*m+m]
		b3 := bd[(kk+3)*m : (kk+3)*m+m]
		for i := 0; i < in; i++ {
			v0, v1, v2, v3 := z0[i], z1[i], z2[i], z3[i]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4(od[i*m:i*m+m], b0, b1, b2, b3, v0, v1, v2, v3)
		}
		for i := in; i < n; i++ {
			c := i - in
			v0, v1, v2, v3 := h0[c], h1[c], h2[c], h3[c]
			if v0 == 0 && v1 == 0 && v2 == 0 && v3 == 0 {
				continue
			}
			axpy4(od[i*m:i*m+m], b0, b1, b2, b3, v0, v1, v2, v3)
		}
	}
	for ; kk < hi; kk++ {
		zrow := zd[kk*in : kk*in+in]
		hrow := hd[kk*hw : kk*hw+in]
		brow := bd[kk*m : kk*m+m]
		for i, av := range zrow {
			if av == 0 {
				continue
			}
			Axpy(od[i*m:i*m+m], brow, av)
		}
		for c, av := range hrow {
			if av == 0 {
				continue
			}
			Axpy(od[(in+c)*m:(in+c)*m+m], brow, av)
		}
	}
}
