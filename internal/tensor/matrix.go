// Package tensor provides dense row-major float32 matrices and the small set
// of linear-algebra kernels needed for GCN training: parallel blocked matrix
// multiplication, row gather/scatter, and elementwise operations.
//
// It is the stand-in for the GPU tensor library used by the paper's PyTorch
// implementation; the numerics are identical, only absolute speed differs.
package tensor

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major float32 matrix. The zero value is an empty
// matrix; use New or NewFrom to allocate storage.
type Matrix struct {
	Rows, Cols int
	Data       []float32
}

// New returns a zeroed rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// NewFrom wraps data (not copied) as a rows×cols matrix.
func NewFrom(rows, cols int, data []float32) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set stores v at row i, column j.
func (m *Matrix) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// Row returns the i-th row as a slice sharing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// CopyFrom copies src into m. Shapes must match.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: CopyFrom shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// Zero sets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Fill sets every element to v.
func (m *Matrix) Fill(v float32) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Scale multiplies every element by a.
func (m *Matrix) Scale(a float32) {
	for i := range m.Data {
		m.Data[i] *= a
	}
}

// Add accumulates other into m elementwise. Shapes must match.
func (m *Matrix) Add(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: Add shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += v
	}
}

// AddScaled accumulates a*other into m elementwise.
func (m *Matrix) AddScaled(other *Matrix, a float32) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] += a * v
	}
}

// Sub subtracts other from m elementwise.
func (m *Matrix) Sub(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: Sub shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] -= v
	}
}

// Hadamard multiplies m by other elementwise.
func (m *Matrix) Hadamard(other *Matrix) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("tensor: Hadamard shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	for i, v := range other.Data {
		m.Data[i] *= v
	}
}

// FrobeniusNorm returns the Frobenius norm of m, accumulated in float64.
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements, accumulated in float64.
func (m *Matrix) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += float64(v)
	}
	return s
}

// MaxAbs returns the largest absolute element value.
func (m *Matrix) MaxAbs() float32 {
	var mx float32
	for _, v := range m.Data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports whether m and other have the same shape and all elements
// within tol of each other.
func (m *Matrix) Equal(other *Matrix, tol float32) bool {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		return false
	}
	for i, v := range other.Data {
		d := m.Data[i] - v
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}

// HStackRows returns a new matrix whose rows are the concatenation of the
// corresponding rows of a and b: out is a.Rows × (a.Cols+b.Cols).
func HStackRows(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: HStackRows row mismatch %d vs %d", a.Rows, b.Rows))
	}
	out := New(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i)[:a.Cols], a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// SplitCols splits m into two matrices along columns at index c:
// left is m.Rows×c, right is m.Rows×(m.Cols-c).
func SplitCols(m *Matrix, c int) (left, right *Matrix) {
	if c < 0 || c > m.Cols {
		panic(fmt.Sprintf("tensor: SplitCols bad index %d for %d cols", c, m.Cols))
	}
	left = New(m.Rows, c)
	right = New(m.Rows, m.Cols-c)
	for i := 0; i < m.Rows; i++ {
		copy(left.Row(i), m.Row(i)[:c])
		copy(right.Row(i), m.Row(i)[c:])
	}
	return left, right
}

// GatherRows returns a new matrix whose i-th row is src.Row(idx[i]).
func GatherRows(src *Matrix, idx []int32) *Matrix {
	out := New(len(idx), src.Cols)
	GatherRowsInto(out, src, idx)
	return out
}

// GatherRowsInto is GatherRows writing into a caller-owned matrix (which
// must be len(idx) × src.Cols), for allocation-free batch loops.
func GatherRowsInto(out, src *Matrix, idx []int32) {
	if out.Rows != len(idx) || out.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: GatherRowsInto out %dx%d, want %dx%d", out.Rows, out.Cols, len(idx), src.Cols))
	}
	for i, r := range idx {
		copy(out.Row(i), src.Row(int(r)))
	}
}

// ScatterAddRows adds src.Row(i) into dst.Row(idx[i]) for each i.
func ScatterAddRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) {
		panic(fmt.Sprintf("tensor: ScatterAddRows src rows %d != len(idx) %d", src.Rows, len(idx)))
	}
	if dst.Cols != src.Cols {
		panic(fmt.Sprintf("tensor: ScatterAddRows col mismatch %d vs %d", dst.Cols, src.Cols))
	}
	for i, r := range idx {
		d := dst.Row(int(r))
		s := src.Row(i)
		for j, v := range s {
			d[j] += v
		}
	}
}

// ScatterRows copies src.Row(i) into dst.Row(idx[i]) for each i.
func ScatterRows(dst, src *Matrix, idx []int32) {
	if src.Rows != len(idx) {
		panic(fmt.Sprintf("tensor: ScatterRows src rows %d != len(idx) %d", src.Rows, len(idx)))
	}
	for i, r := range idx {
		copy(dst.Row(int(r)), src.Row(i))
	}
}
