package tensor

import (
	"testing"
)

// randCSR builds a random CSR index with n rows over nCols source rows:
// each row draws a degree in [0, maxDeg] (with forced zero-degree rows
// sprinkled in), neighbors drawn with duplicates allowed — the adversarial
// shape for accumulation-order bugs.
func randCSR(rng *RNG, n, nSrc, maxDeg int) ([]int64, []int32) {
	indptr := make([]int64, n+1)
	var indices []int32
	for v := 0; v < n; v++ {
		indptr[v] = int64(len(indices))
		deg := rng.Intn(maxDeg + 1)
		if v%7 == 3 {
			deg = 0 // forced zero-degree rows
		}
		for e := 0; e < deg; e++ {
			indices = append(indices, int32(rng.Intn(nSrc)))
		}
	}
	indptr[n] = int64(len(indices))
	return indptr, indices
}

// refSpMMRow is the scalar reference: zero, sequential AddTo per edge, then
// the row rescale — the exact semantics SpMM documents.
func refSpMMRow(dst []float32, x *Matrix, nbrs []int32, s float32, scaled bool) {
	for j := range dst {
		dst[j] = 0
	}
	for _, u := range nbrs {
		AddTo(dst, x.Data[int(u)*x.Cols:int(u)*x.Cols+len(dst)])
	}
	if scaled {
		for j := range dst {
			dst[j] *= s
		}
	}
}

// refSpMM runs the reference over every row of a (possibly wider) out.
func refSpMM(out, x *Matrix, indptr []int64, indices []int32, scale []float32) {
	for r := 0; r < out.Rows; r++ {
		dst := out.Data[r*out.Cols : r*out.Cols+x.Cols]
		s := float32(0)
		if scale != nil {
			s = scale[r]
		}
		refSpMMRow(dst, x, indices[indptr[r]:indptr[r+1]], s, scale != nil)
	}
}

// refSpMMTrans is the reference backward: an ascending-source SCATTER with
// one sequential Axpy per edge — the formulation the gather kernel replaces.
// It must produce the gather's bits exactly.
func refSpMMTrans(dst, src *Matrix, indptr []int64, indices []int32, scale []float32, n int) {
	w := dst.Cols
	for v := 0; v < n; v++ {
		s := float32(1)
		if scale != nil {
			s = scale[v]
		}
		srow := src.Data[v*src.Cols : v*src.Cols+w]
		for _, u := range indices[indptr[v]:indptr[v+1]] {
			Axpy(dst.Data[int(u)*w:int(u)*w+w], srow, s)
		}
	}
}

// transposeCSR builds the incoming index (ascending sources) of a CSR.
func transposeCSR(n int, indptr []int64, indices []int32, nDst int) ([]int64, []int32) {
	cnt := make([]int64, nDst+1)
	for _, u := range indices {
		cnt[u+1]++
	}
	for i := 0; i < nDst; i++ {
		cnt[i+1] += cnt[i]
	}
	tIndptr := make([]int64, nDst+1)
	copy(tIndptr, cnt)
	tSrc := make([]int32, len(indices))
	fill := make([]int64, nDst)
	for v := 0; v < n; v++ {
		for _, u := range indices[indptr[v]:indptr[v+1]] {
			tSrc[tIndptr[u]+fill[u]] = int32(v)
			fill[u]++
		}
	}
	return tIndptr, tSrc
}

func sameBitsF32(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// spmmDims are deliberately awkward feature widths: below one SIMD vector,
// one past a vector, one past two (exercising the 16-wide loop, the 8-wide
// block and the scalar tail of the blocked kernels).
var spmmDims = []int{1, 3, 7, 8, 9, 17, 65}

// TestSpMMMatchesScalarReference pins the engine's forward kernel against
// the sequential per-edge reference, bit for bit, across feature widths,
// chunk layouts, and row-subset entry points.
func TestSpMMMatchesScalarReference(t *testing.T) {
	rng := NewRNG(401)
	const n, nSrc = 53, 61
	indptr, indices := randCSR(rng, n, nSrc, 19)
	for _, dim := range spmmDims {
		x := randomMatrix(rng, nSrc, dim)
		scale := make([]float32, n)
		for i := range scale {
			scale[i] = rng.Float32()
		}
		want := New(n, dim)
		refSpMM(want, x, indptr, indices, scale)

		got := New(n, dim)
		SpMM(got, x, indptr, indices, scale, nil)
		sameBitsF32(t, "SpMM/nil-chunks", got.Data, want.Data)

		// Adversarial chunk layouts, including single-row chunks.
		for _, chunks := range [][]int32{
			{0, int32(n)},
			{0, 1, 2, 3, int32(n)},
			{0, 13, 17, 40, int32(n)},
		} {
			got.Zero()
			SpMM(got, x, indptr, indices, scale, chunks)
			sameBitsF32(t, "SpMM/chunks", got.Data, want.Data)
		}

		// Random duplicate-free row partition through SpMMRows + a range.
		got.Zero()
		var a, b []int32
		for v := 0; v < 20; v++ {
			if rng.Float32() < 0.5 {
				a = append(a, int32(v))
			} else {
				b = append(b, int32(v))
			}
		}
		SpMMRows(got, x, indptr, indices, scale, a)
		SpMMRows(got, x, indptr, indices, scale, b)
		SpMMRange(got, x, indptr, indices, scale, 20, n)
		sameBitsF32(t, "SpMMRows+Range", got.Data, want.Data)

		// Unscaled form.
		refSpMM(want, x, indptr, indices, nil)
		SpMM(got, x, indptr, indices, nil, nil)
		sameBitsF32(t, "SpMM/unscaled", got.Data, want.Data)
	}
}

// TestSpMMWideDestination pins the strided-destination contract: a
// destination wider than x leaves the extra columns untouched (the SAGE
// concat layout).
func TestSpMMWideDestination(t *testing.T) {
	rng := NewRNG(402)
	const n, nSrc, dim = 23, 29, 7
	indptr, indices := randCSR(rng, n, nSrc, 9)
	x := randomMatrix(rng, nSrc, dim)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = rng.Float32()
	}
	out := randomMatrix(rng, n, 2*dim)
	keep := append([]float32(nil), out.Data...)
	SpMM(out, x, indptr, indices, scale, nil)
	want := New(n, dim)
	refSpMM(want, x, indptr, indices, scale)
	for r := 0; r < n; r++ {
		sameBitsF32(t, "left-half", out.Row(r)[:dim], want.Row(r))
		sameBitsF32(t, "right-half-untouched", out.Row(r)[dim:], keep[r*2*dim+dim:(r+1)*2*dim])
	}
}

// TestSpMMTransMatchesScatterReference pins the backward gather against the
// ascending-source scatter it replaces: same bits for full, range, and
// row-subset entry points, scaled and unscaled, with the source matrix wider
// than the destination (the dConcat layout).
func TestSpMMTransMatchesScatterReference(t *testing.T) {
	rng := NewRNG(403)
	const n, nDst = 47, 59
	indptr, indices := randCSR(rng, n, nDst, 15)
	tIndptr, tSrc := transposeCSR(n, indptr, indices, nDst)
	for _, dim := range spmmDims {
		src := randomMatrix(rng, n, dim+3) // wider than dst: prefix gathered
		scale := make([]float32, n)
		for i := range scale {
			scale[i] = rng.Float32()
		}
		init := randomMatrix(rng, nDst, dim) // caller-owned initialization

		want := New(nDst, dim)
		copy(want.Data, init.Data)
		refSpMMTrans(want, src, indptr, indices, scale, n)

		got := New(nDst, dim)
		copy(got.Data, init.Data)
		SpMMTrans(got, src, tIndptr, tSrc, scale, nil)
		sameBitsF32(t, "SpMMTrans/nil-chunks", got.Data, want.Data)

		copy(got.Data, init.Data)
		SpMMTrans(got, src, tIndptr, tSrc, scale, []int32{0, 7, 8, 31, nDst})
		sameBitsF32(t, "SpMMTrans/chunks", got.Data, want.Data)

		// Split destinations across Rows + Range calls.
		copy(got.Data, init.Data)
		var a []int32
		for u := 0; u < 20; u++ {
			a = append(a, int32(u))
		}
		SpMMTransRows(got, src, tIndptr, tSrc, scale, a)
		SpMMTransRange(got, src, tIndptr, tSrc, scale, nil, 20, nDst)
		sameBitsF32(t, "SpMMTransRows+Range", got.Data, want.Data)

		// Range with a clamped chunk index.
		copy(got.Data, init.Data)
		SpMMTransRange(got, src, tIndptr, tSrc, scale, []int32{0, 13, 44, nDst}, 0, 25)
		SpMMTransRange(got, src, tIndptr, tSrc, scale, []int32{0, 13, 44, nDst}, 25, nDst)
		sameBitsF32(t, "SpMMTransRange/chunked", got.Data, want.Data)

		// Unscaled form.
		copy(want.Data, init.Data)
		refSpMMTrans(want, src, indptr, indices, nil, n)
		copy(got.Data, init.Data)
		SpMMTrans(got, src, tIndptr, tSrc, nil, nil)
		sameBitsF32(t, "SpMMTrans/unscaled", got.Data, want.Data)
	}
}

// TestSpMMMegaRow pins the edge-balanced contract on a pathological graph:
// one row holding most of the edges, isolated in its own chunk, must still
// produce the reference bits.
func TestSpMMMegaRow(t *testing.T) {
	rng := NewRNG(404)
	const n, nSrc, dim = 33, 40, 9
	indptr := make([]int64, n+1)
	var indices []int32
	for v := 0; v < n; v++ {
		indptr[v] = int64(len(indices))
		deg := 2
		if v == 11 {
			deg = 900 // the mega row
		}
		for e := 0; e < deg; e++ {
			indices = append(indices, int32(rng.Intn(nSrc)))
		}
	}
	indptr[n] = int64(len(indices))
	x := randomMatrix(rng, nSrc, dim)
	want := New(n, dim)
	refSpMM(want, x, indptr, indices, nil)
	got := New(n, dim)
	SpMM(got, x, indptr, indices, nil, []int32{0, 11, 12, n})
	sameBitsF32(t, "mega-row", got.Data, want.Data)
}

// TestGatherPrimitives pins the exported row-level gathers against their
// sequential references.
func TestGatherPrimitives(t *testing.T) {
	rng := NewRNG(405)
	for _, dim := range spmmDims {
		x := randomMatrix(rng, 31, dim)
		nbrs := make([]int32, 13)
		coef := make([]float32, 13)
		for i := range nbrs {
			nbrs[i] = int32(rng.Intn(31))
			coef[i] = rng.Float32() - 0.5
		}

		want := make([]float32, dim)
		got := make([]float32, dim)
		for j := 0; j < dim; j++ {
			want[j] = rng.Float32()
			got[j] = want[j]
		}
		for i, u := range nbrs {
			Axpy(want, x.Row(int(u)), coef[i])
		}
		GatherAxpy(got, x, nbrs, coef)
		sameBitsF32(t, "GatherAxpy", got, want)

		for j := range want {
			want[j] = 0
		}
		for _, u := range nbrs {
			AddTo(want, x.Row(int(u)))
		}
		GatherSum(got, x, nbrs)
		sameBitsF32(t, "GatherSum", got, want)

		a := make([]float32, dim)
		for j := range a {
			a[j] = rng.Float32() - 0.5
		}
		dots := make([]float32, len(nbrs))
		GatherDots(dots, a, x, nbrs)
		for i, u := range nbrs {
			// dot4's lane reduction legitimately differs from the scalar
			// Dot in the low bits; check against a float64 accumulation
			// with a loose tolerance instead.
			var s float64
			for j := 0; j < dim; j++ {
				s += float64(a[j]) * float64(x.Row(int(u))[j])
			}
			if d := float64(dots[i]) - s; d > 1e-4 || d < -1e-4 {
				t.Fatalf("GatherDots dim=%d i=%d: got %v want %v", dim, i, dots[i], s)
			}
		}
	}
}

// TestSpMMParallelPathMatchesSerial forces the worker-pool branch (the
// serial guards skip it on 1-CPU hosts) and checks the chunk-claimed
// execution still produces the reference bits.
func TestSpMMParallelPathMatchesSerial(t *testing.T) {
	saved := maxProcs
	maxProcs = 4
	defer func() { maxProcs = saved }()

	rng := NewRNG(406)
	const n, nSrc, dim = 97, 83, 17
	indptr, indices := randCSR(rng, n, nSrc, 21)
	x := randomMatrix(rng, nSrc, dim)
	scale := make([]float32, n)
	for i := range scale {
		scale[i] = rng.Float32()
	}
	want := New(n, dim)
	refSpMM(want, x, indptr, indices, scale)

	got := New(n, dim)
	SpMM(got, x, indptr, indices, scale, []int32{0, 5, 40, 41, 77, n})
	sameBitsF32(t, "parallel/chunks", got.Data, want.Data)
	got.Zero()
	SpMM(got, x, indptr, indices, scale, nil)
	sameBitsF32(t, "parallel/grain", got.Data, want.Data)
	got.Zero()
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	SpMMRows(got, x, indptr, indices, scale, rows)
	sameBitsF32(t, "parallel/rows", got.Data, want.Data)

	tIndptr, tSrc := transposeCSR(n, indptr, indices, nSrc)
	src := randomMatrix(rng, n, dim)
	wantT := New(nSrc, dim)
	refSpMMTrans(wantT, src, indptr, indices, scale, n)
	gotT := New(nSrc, dim)
	SpMMTrans(gotT, src, tIndptr, tSrc, scale, []int32{0, 11, 30, nSrc})
	sameBitsF32(t, "parallel/trans", gotT.Data, wantT.Data)
}
