package optim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadratic f(x) = Σ x², gradient 2x — both optimizers must drive x to 0.
func gradOf(p *tensor.Matrix) *tensor.Matrix {
	g := p.Clone()
	g.Scale(2)
	return g
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{1, -2, 3})
	opt := NewSGD(0.1)
	for i := 0; i < 200; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-4 {
		t.Fatalf("SGD did not converge: %v", p.Data)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{1, -2, 3})
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	for i := 0; i < 300; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-3 {
		t.Fatalf("momentum SGD did not converge: %v", p.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{5, -7, 2})
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-2 {
		t.Fatalf("Adam did not converge: %v", p.Data)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ~LR regardless
	// of gradient scale.
	p := tensor.NewFrom(1, 1, []float32{0})
	g := tensor.NewFrom(1, 1, []float32{1000})
	opt := NewAdam(0.01)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(float64(p.Data[0])+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ~-0.01", p.Data[0])
	}
}

func TestAdamDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas with identical params and gradients stay bit-identical —
	// the property partition-parallel training relies on after AllReduce.
	pa := tensor.NewFrom(1, 4, []float32{1, 2, 3, 4})
	pb := pa.Clone()
	oa, ob := NewAdam(0.01), NewAdam(0.01)
	for i := 0; i < 50; i++ {
		ga := gradOf(pa)
		gb := gradOf(pb)
		oa.Step([]*tensor.Matrix{pa}, []*tensor.Matrix{ga})
		ob.Step([]*tensor.Matrix{pb}, []*tensor.Matrix{gb})
	}
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatal("replicas diverged")
		}
	}
}

func TestStepShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1).Step([]*tensor.Matrix{tensor.New(1, 2)}, []*tensor.Matrix{tensor.New(2, 1)})
}

func TestStepCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0.1).Step([]*tensor.Matrix{tensor.New(1, 2)}, nil)
}

// TestAdamStateRoundTrip: copying one Adam's moments and step count into a
// fresh Adam must make subsequent steps bit-identical — the property the
// trainer checkpoint relies on.
func TestAdamStateRoundTrip(t *testing.T) {
	mk := func() ([]*tensor.Matrix, []*tensor.Matrix) {
		p := []*tensor.Matrix{tensor.New(3, 4), tensor.New(1, 4)}
		g := []*tensor.Matrix{tensor.New(3, 4), tensor.New(1, 4)}
		for i, m := range p {
			for j := range m.Data {
				m.Data[j] = float32(i+1) * 0.1 * float32(j)
				g[i].Data[j] = float32(j%3) - 1
			}
		}
		return p, g
	}
	pa, ga := mk()
	a := NewAdam(0.01)
	for s := 0; s < 3; s++ {
		a.Step(pa, ga)
	}

	pb, gb := mk()
	b := NewAdam(0.01)
	// Restore: copy weights, moments, and step count from a.
	for i := range pb {
		copy(pb[i].Data, pa[i].Data)
	}
	am, av := a.Moments(pa)
	bm, bv := b.Moments(pb)
	for i := range am {
		copy(bm[i].Data, am[i].Data)
		copy(bv[i].Data, av[i].Data)
	}
	b.SetStepCount(a.StepCount())

	for s := 0; s < 2; s++ {
		a.Step(pa, ga)
		b.Step(pb, gb)
	}
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("param %d[%d]: %v vs %v after state restore", i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
	if a.StepCount() != 5 || b.StepCount() != 5 {
		t.Fatalf("step counts %d/%d, want 5", a.StepCount(), b.StepCount())
	}
}

// TestAdamMomentsBeforeFirstStep: Moments on a fresh optimizer materializes
// zeroed state (so an epoch-0 checkpoint is possible) and Step then reuses
// that state rather than re-zeroing it.
func TestAdamMomentsBeforeFirstStep(t *testing.T) {
	p := []*tensor.Matrix{tensor.New(2, 2)}
	g := []*tensor.Matrix{tensor.New(2, 2)}
	for j := range g[0].Data {
		g[0].Data[j] = 1
	}
	a := NewAdam(0.01)
	m, v := a.Moments(p)
	if a.StepCount() != 0 {
		t.Fatalf("fresh step count %d", a.StepCount())
	}
	m[0].Data[0] = 0.5 // pretend restored state
	v[0].Data[0] = 0.25
	a.SetStepCount(2)
	a.Step(p, g)
	m2, _ := a.Moments(p)
	if m2[0] != m[0] {
		t.Fatal("Step replaced the materialized moment matrices")
	}
	if a.StepCount() != 3 {
		t.Fatalf("step count %d after restored step, want 3", a.StepCount())
	}
}
