package optim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// quadratic f(x) = Σ x², gradient 2x — both optimizers must drive x to 0.
func gradOf(p *tensor.Matrix) *tensor.Matrix {
	g := p.Clone()
	g.Scale(2)
	return g
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{1, -2, 3})
	opt := NewSGD(0.1)
	for i := 0; i < 200; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-4 {
		t.Fatalf("SGD did not converge: %v", p.Data)
	}
}

func TestSGDMomentumConverges(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{1, -2, 3})
	opt := &SGD{LR: 0.05, Momentum: 0.9}
	for i := 0; i < 300; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-3 {
		t.Fatalf("momentum SGD did not converge: %v", p.Data)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	p := tensor.NewFrom(1, 3, []float32{5, -7, 2})
	opt := NewAdam(0.1)
	for i := 0; i < 500; i++ {
		opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{gradOf(p)})
	}
	if p.MaxAbs() > 1e-2 {
		t.Fatalf("Adam did not converge: %v", p.Data)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the first Adam step has magnitude ~LR regardless
	// of gradient scale.
	p := tensor.NewFrom(1, 1, []float32{0})
	g := tensor.NewFrom(1, 1, []float32{1000})
	opt := NewAdam(0.01)
	opt.Step([]*tensor.Matrix{p}, []*tensor.Matrix{g})
	if math.Abs(float64(p.Data[0])+0.01) > 1e-4 {
		t.Fatalf("first Adam step = %v, want ~-0.01", p.Data[0])
	}
}

func TestAdamDeterministicAcrossReplicas(t *testing.T) {
	// Two replicas with identical params and gradients stay bit-identical —
	// the property partition-parallel training relies on after AllReduce.
	pa := tensor.NewFrom(1, 4, []float32{1, 2, 3, 4})
	pb := pa.Clone()
	oa, ob := NewAdam(0.01), NewAdam(0.01)
	for i := 0; i < 50; i++ {
		ga := gradOf(pa)
		gb := gradOf(pb)
		oa.Step([]*tensor.Matrix{pa}, []*tensor.Matrix{ga})
		ob.Step([]*tensor.Matrix{pb}, []*tensor.Matrix{gb})
	}
	for i := range pa.Data {
		if pa.Data[i] != pb.Data[i] {
			t.Fatal("replicas diverged")
		}
	}
}

func TestStepShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAdam(0.1).Step([]*tensor.Matrix{tensor.New(1, 2)}, []*tensor.Matrix{tensor.New(2, 1)})
}

func TestStepCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSGD(0.1).Step([]*tensor.Matrix{tensor.New(1, 2)}, nil)
}
