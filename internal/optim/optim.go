// Package optim provides the optimizers used in the paper's experiments:
// Adam (all four datasets use Adam per Section 4) and plain SGD for
// ablations. Optimizers update parameter matrices in place from gradient
// matrices of identical shape.
package optim

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from gradients.
type Optimizer interface {
	// Step applies one update. params[i] and grads[i] must have equal shape
	// and identity must be stable across calls (state is keyed by index).
	Step(params, grads []*tensor.Matrix)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float32
	Momentum float32
	vel      []*tensor.Matrix
}

// NewSGD returns an SGD optimizer.
func NewSGD(lr float32) *SGD { return &SGD{LR: lr} }

// Step implements Optimizer.
func (s *SGD) Step(params, grads []*tensor.Matrix) {
	checkAligned(params, grads)
	if s.Momentum == 0 {
		for i, p := range params {
			p.AddScaled(grads[i], -s.LR)
		}
		return
	}
	if s.vel == nil {
		s.vel = zerosLike(params)
	}
	for i, p := range params {
		v := s.vel[i]
		for j := range v.Data {
			v.Data[j] = s.Momentum*v.Data[j] + grads[i].Data[j]
			p.Data[j] -= s.LR * v.Data[j]
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR      float32
	Beta1   float32
	Beta2   float32
	Epsilon float32
	t       int
	m, v    []*tensor.Matrix
}

// NewAdam returns Adam with the standard defaults (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float32) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step implements Optimizer.
func (a *Adam) Step(params, grads []*tensor.Matrix) {
	checkAligned(params, grads)
	if a.m == nil {
		a.m = zerosLike(params)
		a.v = zerosLike(params)
	}
	a.t++
	b1t := 1 - float32(math.Pow(float64(a.Beta1), float64(a.t)))
	b2t := 1 - float32(math.Pow(float64(a.Beta2), float64(a.t)))
	for i, p := range params {
		g := grads[i]
		m, v := a.m[i], a.v[i]
		for j, gj := range g.Data {
			m.Data[j] = a.Beta1*m.Data[j] + (1-a.Beta1)*gj
			v.Data[j] = a.Beta2*v.Data[j] + (1-a.Beta2)*gj*gj
			mh := m.Data[j] / b1t
			vh := v.Data[j] / b2t
			p.Data[j] -= a.LR * mh / (float32(math.Sqrt(float64(vh))) + a.Epsilon)
		}
	}
}

// StepCount returns the number of updates applied so far — the
// bias-correction time step t. Part of the optimizer's resumable state:
// restoring moments without t would re-warm the bias correction and diverge
// from an uninterrupted run.
func (a *Adam) StepCount() int { return a.t }

// SetStepCount overrides the bias-correction time step (checkpoint restore,
// paired with restoring the moment matrices via Moments).
func (a *Adam) SetStepCount(t int) { a.t = t }

// Moments returns the first and second moment accumulators aligned with
// params, materializing zeroed state on first use so a freshly constructed
// optimizer can be checkpointed or restored before its first Step. The
// returned matrices are the live state: writing into them (checkpoint load)
// changes the optimizer.
func (a *Adam) Moments(params []*tensor.Matrix) (m, v []*tensor.Matrix) {
	if a.m == nil {
		a.m = zerosLike(params)
		a.v = zerosLike(params)
	}
	if len(a.m) != len(params) {
		panic(fmt.Sprintf("optim: Adam has state for %d params, asked about %d", len(a.m), len(params)))
	}
	return a.m, a.v
}

func checkAligned(params, grads []*tensor.Matrix) {
	if len(params) != len(grads) {
		panic(fmt.Sprintf("optim: %d params vs %d grads", len(params), len(grads)))
	}
	for i := range params {
		if params[i].Rows != grads[i].Rows || params[i].Cols != grads[i].Cols {
			panic(fmt.Sprintf("optim: param %d shape %dx%d vs grad %dx%d",
				i, params[i].Rows, params[i].Cols, grads[i].Rows, grads[i].Cols))
		}
	}
}

func zerosLike(params []*tensor.Matrix) []*tensor.Matrix {
	out := make([]*tensor.Matrix, len(params))
	for i, p := range params {
		out[i] = tensor.New(p.Rows, p.Cols)
	}
	return out
}
