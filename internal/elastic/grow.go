package elastic

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// growWatcher is a shrunken cohort's open door back to full strength. While
// a k′<k world trains, the lowest live slot keeps a listener on its own
// rendezvous candidate address and answers EJOIN knocks. A knock from a
// non-member slot is a replacement asking to be re-admitted: the watcher
// parks it with ERETRY (the standard "round incomplete, re-probe" answer
// its bootstrap already understands) and fires onGrow exactly once — the
// runner aborts the shrunken mesh, every survivor falls into its recovery
// loop, and the next rendezvous assembles the full cohort, shedding the
// absorbed rows back to their original owner. A knock claiming a live
// member's slot is a duplicate process and gets the same pointed EERR the
// rendezvous itself would give it — but only while the shrunken world is
// actually running: once the grow knock has fired, the mesh is being torn
// down and a member knock is a survivor's re-rendezvous probe racing the
// watcher's shutdown, so it gets ERETRY and finds the real bootstrap on
// its next probe cycle.
//
// growSignal is a test hook: set non-nil to observe the first admit knock
// (owner slot, joiner slot) before the mesh is aborted.
var growSignal func(owner, joiner int)

type growWatcher struct {
	ln     net.Listener
	owner  int
	world  int
	member map[int]bool
	onGrow func(slot int)
	once   sync.Once
	fired  atomic.Bool
	wg     sync.WaitGroup
}

// newGrowWatcher opens the growth listener on addr (the owner's rendezvous
// candidate, just vacated by its bootstrap — retried briefly in case the
// socket is still draining) and starts answering knocks.
func newGrowWatcher(addr string, owner, world int, members []int, onGrow func(slot int)) (*growWatcher, error) {
	var ln net.Listener
	var err error
	for i := 0; i < 10; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return nil, fmt.Errorf("elastic: rank %d: growth listener on %s: %w", owner, addr, err)
	}
	g := &growWatcher{ln: ln, owner: owner, world: world, member: make(map[int]bool, len(members)), onGrow: onGrow}
	for _, m := range members {
		g.member[m] = true
	}
	g.wg.Add(1)
	go g.loop()
	return g, nil
}

func (g *growWatcher) loop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.handle(conn)
	}
}

func (g *growWatcher) handle(conn net.Conn) {
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	var slot, gen int
	var addr string
	if _, err := fmt.Fscanf(bufio.NewReader(conn), "EJOIN %d %s %d\n", &slot, &addr, &gen); err != nil {
		return
	}
	switch {
	case slot < 0 || slot >= g.world:
		fmt.Fprintf(conn, "EERR rank %d outside [0,%d) — check -rank/-world against the cohort\n", slot, g.world)
	case g.member[slot]:
		if g.fired.Load() {
			// The world is already re-forming; this is a survivor's bootstrap
			// probe landing on the watcher before it closes, not an impostor.
			fmt.Fprint(conn, "ERETRY\n")
			return
		}
		fmt.Fprintf(conn, "EERR rank %d is already a live member of the running cohort — two processes claim the same rank\n", slot)
	default:
		g.once.Do(func() {
			// fired is set before onGrow aborts the mesh: any member probe the
			// abort provokes is guaranteed to see it.
			g.fired.Store(true)
			debugf("rank %d: slot %d knocked to rejoin; growing the world back", g.owner, slot)
			if h := growSignal; h != nil {
				h(g.owner, slot)
			}
			g.onGrow(slot)
		})
		fmt.Fprint(conn, "ERETRY\n")
	}
}

// Close shuts the listener and waits for the accept loop to drain.
func (g *growWatcher) Close() {
	g.ln.Close()
	g.wg.Wait()
}
