package elastic

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"
)

// Multi-process world resizing: genuine OS processes, real loopback sockets,
// real SIGKILL. These are the acceptance tests for the permanent-loss path —
// a k=4 run loses a rank for good, continues at k=3, and (in the grow-back
// test) a late -join replacement grows it back to k=4.

// mpResizeEnv is the resize knob set the multi-process tests share. The
// round/stability margins are deliberately generous: a shrink must only ever
// fire because a rank is DEAD, never because a slow sibling process was still
// generating its fixture when the roster stabilized without it.
func mpResizeEnv() []string {
	return []string{
		empEnvResize + "=3",
		empEnvStagMS + "=100",
		empEnvRoundMS + "=500",
	}
}

type mpResult struct {
	hash       string
	recoveries int
	worlds     []string // world sizes per generation, e.g. ["4", "3", "4"]
}

// safeBuf is a Writer the parent can read WHILE exec's copier goroutine
// writes: the polling in the grow-back test reads a live process's output.
type safeBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *safeBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *safeBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// maxEpoch scans a helper's output for the highest EMP-EPOCH this rank has
// reported so far.
func maxEpoch(out fmt.Stringer, rank int) int {
	best := -1
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var r, e int
		if _, err := fmt.Sscanf(sc.Text(), "EMP-EPOCH rank=%d epoch=%d", &r, &e); err == nil && r == rank && e > best {
			best = e
		}
	}
	return best
}

// parseMPResult extracts the EMP-RESULT line from a helper process's output.
func parseMPResult(t *testing.T, rank int, out fmt.Stringer) mpResult {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(out.String()))
	for sc.Scan() {
		var r, rec int
		var hash, worlds string
		if _, err := fmt.Sscanf(sc.Text(), "EMP-RESULT rank=%d hash=%s recoveries=%d worlds=%s", &r, &hash, &rec, &worlds); err == nil && r == rank {
			return mpResult{hash: hash, recoveries: rec, worlds: strings.Split(worlds, ":")}
		}
	}
	t.Fatalf("rank %d produced no EMP-RESULT line:\n%s", rank, out.String())
	return mpResult{}
}

// TestMultiProcessResizeShrinkDeterminism: four processes train; rank 3
// exits hard at the epoch-3 boundary (a scripted, deterministic death) and is
// never replaced. The three survivors must elect k'=3, absorb slot 3's rows,
// and finish — and the entire scenario, run twice from scratch, must produce
// bit-identical weights, because every input to the shrunken run (the
// consensus generation, the member set, the repartition, the reloaded RNG
// streams) is deterministic.
func TestMultiProcessResizeShrinkDeterminism(t *testing.T) {
	if os.Getenv(empEnvRank) != "" {
		t.Skip("already inside a helper process")
	}
	const world, epochs = 4, 8
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}

	run := func() map[int]mpResult {
		dir := t.TempDir()
		cands := strings.Join(freeCandidates(t, world), ",")
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()

		cmds := make(map[int]*exec.Cmd, world)
		outs := make(map[int]*bytes.Buffer, world)
		for r := 0; r < world; r++ {
			extra := mpResizeEnv()
			if r == world-1 {
				extra = append(extra, empEnvDieAt+"=3")
			}
			cmd := empCommand(ctx, exe, dir, cands, world, r, epochs, extra...)
			outs[r] = &bytes.Buffer{}
			cmd.Stdout, cmd.Stderr = outs[r], outs[r]
			if err := cmd.Start(); err != nil {
				t.Fatal(err)
			}
			cmds[r] = cmd
		}
		for r := 0; r < world-1; r++ {
			if err := cmds[r].Wait(); err != nil {
				t.Fatalf("survivor rank %d failed: %v\n%s", r, err, outs[r].String())
			}
		}
		if err := cmds[world-1].Wait(); err == nil {
			t.Fatalf("the scripted victim exited cleanly — it never died:\n%s", outs[world-1].String())
		}

		results := make(map[int]mpResult, world-1)
		for r := 0; r < world-1; r++ {
			results[r] = parseMPResult(t, r, outs[r])
		}
		return results
	}

	first := run()
	for r := 1; r < world-1; r++ {
		if first[r].hash != first[0].hash {
			t.Fatalf("survivors diverged: rank %d %s vs rank 0 %s", r, first[r].hash, first[0].hash)
		}
	}
	for r := 0; r < world-1; r++ {
		w := first[r].worlds
		if len(w) < 2 || w[0] != "4" || w[len(w)-1] != "3" {
			t.Fatalf("rank %d world sizes %v: want a full k=4 start that ends shrunken at k=3", r, w)
		}
		if first[r].recoveries < 1 {
			t.Fatalf("rank %d absorbed no recovery", r)
		}
	}

	second := run()
	if second[0].hash != first[0].hash {
		t.Fatalf("k'=3 run is not deterministic across repeats: %s vs %s", second[0].hash, first[0].hash)
	}
}

// TestMultiProcessResizeGrowBack is the full lifecycle under real SIGKILL:
// rank 3 is killed mid-training with no replacement waiting; the survivors
// shrink to k'=3 and keep training (slowed per epoch so the window is wide);
// once a survivor is provably training on the shrunken world, the parent
// starts a -join replacement, whose knock on the growth listener makes the
// cohort re-rendezvous at full strength. All four processes must finish at
// the target epoch with identical replicas, and every reassigned row goes
// home: the final generation trains at k=4.
//
// The parent watches progress by polling the children's (mutex-guarded)
// output buffers rather than piping stdout: exec.Cmd.Wait closes a
// StdoutPipe when the child exits, which can truncate the final EMP-RESULT
// line out from under a streaming scanner.
func TestMultiProcessResizeGrowBack(t *testing.T) {
	if os.Getenv(empEnvRank) != "" {
		t.Skip("already inside a helper process")
	}
	const world, epochs = 4, 30
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cands := strings.Join(freeCandidates(t, world), ",")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	slow := empEnvSlowMS + "=150"

	outs := make(map[int]*safeBuf, world)
	start := func(rank int, extra ...string) *exec.Cmd {
		cmd := empCommand(ctx, exe, dir, cands, world, rank, epochs,
			append(append(mpResizeEnv(), slow), extra...)...)
		outs[rank] = &safeBuf{}
		cmd.Stdout, cmd.Stderr = outs[rank], outs[rank]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}

	victim := start(3)
	survivors := make(map[int]*exec.Cmd, world-1)
	for r := 0; r < world-1; r++ {
		survivors[r] = start(r)
	}

	// waitEpoch polls a child's output until it has reported reaching epoch e.
	waitEpoch := func(rank, e int, why string) {
		for maxEpoch(outs[rank], rank) < e {
			select {
			case <-ctx.Done():
				t.Fatalf("%s (rank %d never reached epoch %d):\n%s", why, rank, e, outs[rank].String())
			case <-time.After(50 * time.Millisecond):
			}
		}
	}

	// Kill the victim once it has trained (and checkpointed) past epoch 3.
	waitEpoch(3, 3, "victim made no progress")
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait() // SIGKILL: non-zero exit is the point

	// Wait until a survivor is provably training at k'=3 — any epoch past 5
	// can only happen on the shrunken world, since the full cohort died during
	// epoch 4 and no replacement exists yet — then start the replacement: the
	// -join path, probing every candidate for the growth listener.
	waitEpoch(0, 8, "survivors never trained on the shrunken world")
	replacement := start(3, empEnvJoin+"=1")

	for r := 0; r < world-1; r++ {
		if err := survivors[r].Wait(); err != nil {
			t.Fatalf("survivor rank %d failed: %v\n%s", r, err, outs[r].String())
		}
	}
	if err := replacement.Wait(); err != nil {
		t.Fatalf("replacement rank 3 failed: %v\n%s", err, outs[3].String())
	}

	results := make(map[int]mpResult, world)
	for r := 0; r < world; r++ {
		results[r] = parseMPResult(t, r, outs[r])
	}
	for r := 1; r < world; r++ {
		if results[r].hash != results[0].hash {
			t.Fatalf("rank %d replica %s != rank 0 replica %s after grow-back", r, results[r].hash, results[0].hash)
		}
	}
	for r := 0; r < world-1; r++ {
		w := results[r].worlds
		shrunk := false
		for _, s := range w {
			if s == "3" {
				shrunk = true
			}
		}
		if !shrunk || w[len(w)-1] != "4" {
			t.Fatalf("survivor %d world sizes %v: want a k=3 interlude that grows back to k=4", r, w)
		}
		if results[r].recoveries < 2 {
			t.Fatalf("survivor %d absorbed %d recoveries, want at least the kill and the grow knock", r, results[r].recoveries)
		}
	}
	for _, s := range results[3].worlds {
		if s != "4" {
			t.Fatalf("replacement world sizes %v: a -join rank only ever trains at full strength", results[3].worlds)
		}
	}
}
