package elastic

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"
)

// freeCandidates reserves world distinct loopback ports and releases them
// for the rendezvous to claim. (Small reuse window; losing it fails loudly.)
func freeCandidates(t testing.TB, world int) []string {
	t.Helper()
	out := make([]string, world)
	lns := make([]net.Listener, world)
	for r := 0; r < world; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[r], out[r] = ln, ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return out
}

// TestBootstrapAgreesOnTableAndMinGen: a healthy cohort converges on one
// table — every rank's address in its slot — and the minimum reported
// checkpoint generation.
func TestBootstrapAgreesOnTableAndMinGen(t *testing.T) {
	const world = 3
	cands := freeCandidates(t, world)
	gens := []int{7, 2, 5}
	tables := make([]*table, world)
	errs := make([]error, world)
	deadline := time.Now().Add(20 * time.Second)
	var wg sync.WaitGroup
	for r := 0; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tables[r], errs[r] = bootstrap(bootConfig{rank: r, world: world, cands: cands, dataAddr: fmt.Sprintf("10.0.0.%d:900%d", r, r), myGen: gens[r], deadline: deadline})
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, tbl := range tables {
		if tbl.startGen != 2 {
			t.Fatalf("rank %d agreed on gen %d, want min gen 2", r, tbl.startGen)
		}
		if !reflect.DeepEqual(tbl.members, []int{0, 1, 2}) {
			t.Fatalf("rank %d members %v, want the full world", r, tbl.members)
		}
		if !reflect.DeepEqual(tbl.addrs, tables[0].addrs) {
			t.Fatalf("tables diverged: rank 0 %v vs rank %d %v", tables[0].addrs, r, tbl.addrs)
		}
		if tbl.addrs[r] != fmt.Sprintf("10.0.0.%d:900%d", r, r) {
			t.Fatalf("rank %d slot holds %q", r, tbl.addrs[r])
		}
	}
}

// TestBootstrapElectsSuccessorThenDefersToRankZero is the rank-0-death
// drama in miniature: ranks 1 and 2 start with rank 0 absent (dead), rank 1
// is elected interim server, and when the replacement rank 0 finally comes
// up, everyone converges onto it — one table, no wedged partial rendezvous.
func TestBootstrapElectsSuccessorThenDefersToRankZero(t *testing.T) {
	const world = 3
	cands := freeCandidates(t, world)
	tables := make([]*table, world)
	errs := make([]error, world)
	deadline := time.Now().Add(30 * time.Second)
	var wg sync.WaitGroup
	for r := 1; r < world; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tables[r], errs[r] = bootstrap(bootConfig{rank: r, world: world, cands: cands, dataAddr: fmt.Sprintf("addr-%d:1", r), myGen: 3, deadline: deadline})
		}(r)
	}
	// The replacement rank 0 shows up well after rank 1 has started serving.
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(1500 * time.Millisecond)
		tables[0], errs[0] = bootstrap(bootConfig{rank: 0, world: world, cands: cands, dataAddr: "addr-0:1", myGen: 0, deadline: deadline})
	}()
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, tbl := range tables {
		if tbl.startGen != 0 {
			t.Fatalf("rank %d agreed on gen %d; the fresh replacement holds nothing, so min is 0", r, tbl.startGen)
		}
		if !reflect.DeepEqual(tbl.addrs, []string{"addr-0:1", "addr-1:1", "addr-2:1"}) {
			t.Fatalf("rank %d table %v", r, tbl.addrs)
		}
	}
}

// TestBootstrapWorldOfOne needs no sockets at all.
func TestBootstrapWorldOfOne(t *testing.T) {
	tbl, err := bootstrap(bootConfig{rank: 0, world: 1, cands: []string{"unused:1"}, dataAddr: "me:2", myGen: 4, deadline: time.Now().Add(time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.startGen != 4 || len(tbl.addrs) != 1 || tbl.addrs[0] != "me:2" {
		t.Fatalf("world-of-one table %+v", tbl)
	}
}

// TestBootstrapRejectsBadCandidateSet: a candidate list that disagrees with
// the world size is a misconfiguration, not something to retry.
func TestBootstrapRejectsBadCandidateSet(t *testing.T) {
	if _, err := bootstrap(bootConfig{rank: 0, world: 3, cands: []string{"a:1"}, dataAddr: "me:2", deadline: time.Now().Add(time.Second)}); err == nil {
		t.Fatal("short candidate list must be rejected")
	}
}

// TestBootstrapDeadlineSurfacesPointedError: an incomplete cohort (world 2,
// only one rank) must give up at the deadline with an error naming the
// situation, not hang.
func TestBootstrapDeadlineSurfacesPointedError(t *testing.T) {
	cands := freeCandidates(t, 2)
	_, err := bootstrap(bootConfig{rank: 0, world: 2, cands: cands, dataAddr: "me:2", deadline: time.Now().Add(2 * time.Second)})
	if err == nil {
		t.Fatal("lone rank completed a world-2 rendezvous")
	}
}
