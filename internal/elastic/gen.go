// Package elastic makes BNS-GCN training survive rank death. It connects
// two facts the rest of the repo already establishes — survivors of a dead
// peer get a clean *comm.TransportError, and trainer checkpoints resume
// bit-exactly — into a recovery loop: every N epochs each rank writes an
// atomic generation-numbered checkpoint; when a rank dies, survivors tear
// down their transports, rejoin a generation-bumped rendezvous (served by
// rank 0 or, if rank 0 died, its lowest-ranked live successor), agree on
// the newest checkpoint generation every rank actually holds, reload it,
// and train on. A replacement process re-admitted into the dead rank's slot
// picks up that rank's checkpoint from the shared checkpoint directory, so
// the final weights are bit-identical to an uninterrupted run.
//
// Two entry points: Supervisor drives k ranks in one process (the form the
// bit-exactness and fault-injection tests use, over either backend), and
// Run drives the single rank of a real multi-process deployment
// (cmd/bnsgcn's elastic mode).
package elastic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Checkpoint generations: generation g is the state after g*Every completed
// epochs; generation 0 is "fresh start, nothing on disk". Every rank writes
// its own file per generation — rank state differs (rank-seeded sampling
// streams, local dropout positions) even though the model replicas agree.

// CheckpointPath returns the canonical checkpoint file name for (rank, gen)
// under dir. The fixed-width numbering keeps lexical and numeric order
// identical, so directory listings read in training order.
func CheckpointPath(dir string, rank, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-r%03d-g%08d.bnst", rank, gen))
}

// SaveGeneration atomically writes rank rt.Rank's checkpoint for gen.
func SaveGeneration(dir string, gen int, rt *core.RankTrainer) error {
	return core.SaveTrainerCheckpointFile(CheckpointPath(dir, rt.Rank, gen), rt)
}

// LatestValidGen scans dir for the newest checkpoint generation of rank
// that actually verifies — right magic, right version, intact trailing CRC.
// Torn files never pass (the atomic save leaves them under a .tmp name the
// scan ignores; a bit-rotted or truncated file fails its checksum), so a
// corrupt latest generation silently falls back to the one before it.
// Returns 0 — fresh start — when dir has no loadable checkpoint for rank.
func LatestValidGen(dir string, rank int) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	prefix := fmt.Sprintf("ckpt-r%03d-g", rank)
	var gens []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".bnst") {
			continue
		}
		g, err := strconv.Atoi(strings.TrimSuffix(name[len(prefix):], ".bnst"))
		if err != nil || g <= 0 {
			continue
		}
		gens = append(gens, g)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(gens)))
	for _, g := range gens {
		if core.VerifyTrainerCheckpointFile(CheckpointPath(dir, rank, g)) == nil {
			return g
		}
	}
	return 0
}

// LoadGeneration restores generation gen into rt (a no-op for gen 0). After
// a successful load rt sits exactly at epoch gen*every.
func LoadGeneration(dir string, gen int, rt *core.RankTrainer) error {
	if gen == 0 {
		return nil
	}
	return core.LoadTrainerCheckpointFile(CheckpointPath(dir, rt.Rank, gen), rt)
}
