// Package elastic makes BNS-GCN training survive rank death. It connects
// two facts the rest of the repo already establishes — survivors of a dead
// peer get a clean *comm.TransportError, and trainer checkpoints resume
// bit-exactly — into a recovery loop: every N epochs each rank writes an
// atomic generation-numbered checkpoint; when a rank dies, survivors tear
// down their transports, rejoin a generation-bumped rendezvous (served by
// rank 0 or, if rank 0 died, its lowest-ranked live successor), agree on
// the newest checkpoint generation every rank actually holds, reload it,
// and train on. A replacement process re-admitted into the dead rank's slot
// picks up that rank's checkpoint from the shared checkpoint directory, so
// the final weights are bit-identical to an uninterrupted run.
//
// Two entry points: Supervisor drives k ranks in one process (the form the
// bit-exactness and fault-injection tests use, over either backend), and
// Run drives the single rank of a real multi-process deployment
// (cmd/bnsgcn's elastic mode).
package elastic

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Checkpoint generations: generation g is the state after g*Every completed
// epochs; generation 0 is "fresh start, nothing on disk". Every rank writes
// its own file per generation — rank state differs (rank-seeded sampling
// streams, local dropout positions) even though the model replicas agree.

// CheckpointPath returns the canonical checkpoint file name for (rank, gen)
// under dir. The fixed-width numbering keeps lexical and numeric order
// identical, so directory listings read in training order.
func CheckpointPath(dir string, rank, gen int) string {
	return filepath.Join(dir, fmt.Sprintf("ckpt-r%03d-g%08d.bnst", rank, gen))
}

// SaveGeneration atomically writes rank rt.Rank's checkpoint for gen.
func SaveGeneration(dir string, gen int, rt *core.RankTrainer) error {
	return SaveGenerationAs(dir, gen, rt.Rank, rt)
}

// SaveGenerationAs atomically writes the checkpoint for gen under slot's
// file name. The slot is a rank's PERMANENT identity — its launch-time rank.
// On a full-strength world slot == rt.Rank; after a world shrink the
// trainer's compact rank differs from its slot, and checkpoint files stay
// keyed by slot so a grown-back cohort finds every rank's history where it
// expects it.
func SaveGenerationAs(dir string, gen, slot int, rt *core.RankTrainer) error {
	return core.SaveTrainerCheckpointFile(CheckpointPath(dir, slot, gen), rt)
}

// listGens returns every checkpoint generation present on disk for rank,
// ascending, verified or not.
func listGens(dir string, rank int) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	prefix := fmt.Sprintf("ckpt-r%03d-g", rank)
	var gens []int
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".bnst") {
			continue
		}
		g, err := strconv.Atoi(strings.TrimSuffix(name[len(prefix):], ".bnst"))
		if err != nil || g <= 0 {
			continue
		}
		gens = append(gens, g)
	}
	sort.Ints(gens)
	return gens
}

// LatestValidGen scans dir for the newest checkpoint generation of rank
// that actually verifies — right magic, right version, intact trailing CRC.
// Torn files never pass (the atomic save leaves them under a .tmp name the
// scan ignores; a bit-rotted or truncated file fails its checksum), so a
// corrupt latest generation silently falls back to the one before it.
// Returns 0 — fresh start — when dir has no loadable checkpoint for rank.
func LatestValidGen(dir string, rank int) int {
	gens := listGens(dir, rank)
	for i := len(gens) - 1; i >= 0; i-- {
		if core.VerifyTrainerCheckpointFile(CheckpointPath(dir, rank, gens[i])) == nil {
			return gens[i]
		}
	}
	return 0
}

// CleanupTmp removes orphan checkpoint .tmp files — the residue of saves
// that crashed between writing the temporary and renaming it into place.
// Without this sweep every crash leaks a full-sized file forever. rank < 0
// sweeps all ranks (the in-process Supervisor owns the whole directory);
// a multi-process rank passes its own number so a peer's in-flight save is
// never swept out from under its rename. Call it at bootstrap only, before
// any training resumes — a live save's .tmp must not be removed.
func CleanupTmp(dir string, rank int) (int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	prefix := "ckpt-r"
	if rank >= 0 {
		prefix = fmt.Sprintf("ckpt-r%03d-g", rank)
	}
	removed := 0
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".bnst.tmp") {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// PruneGenerations bounds checkpoint-directory growth: it retains rank's
// newest keep generations plus the floor generation and deletes the rest.
// floor is the cohort's min-consensus generation — the one every rank agreed
// to resume from — and is never deleted, so a recovery (or a re-admitted
// replacement resuming from stale files) can always fall back to it; at most
// keep+1 files per rank remain. keep <= 0 means unlimited retention (the
// prior behavior) and prunes nothing. Returns the number of files removed.
func PruneGenerations(dir string, rank, keep, floor int) (int, error) {
	if keep <= 0 {
		return 0, nil
	}
	gens := listGens(dir, rank)
	if len(gens) <= keep {
		return 0, nil
	}
	removed := 0
	for _, g := range gens[:len(gens)-keep] {
		if g == floor {
			continue
		}
		if err := os.Remove(CheckpointPath(dir, rank, g)); err != nil {
			return removed, err
		}
		removed++
	}
	return removed, nil
}

// LoadGeneration restores generation gen into rt (a no-op for gen 0). After
// a successful load rt sits exactly at epoch gen*every.
func LoadGeneration(dir string, gen int, rt *core.RankTrainer) error {
	if gen == 0 {
		return nil
	}
	return core.LoadTrainerCheckpointFile(CheckpointPath(dir, rt.Rank, gen), rt)
}

// scanSlots returns the distinct slots with at least one checkpoint file in
// dir, ascending.
func scanSlots(dir string) []int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	seen := map[int]bool{}
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "ckpt-r") || !strings.HasSuffix(name, ".bnst") {
			continue
		}
		rest := name[len("ckpt-r"):]
		i := strings.Index(rest, "-g")
		if i < 0 {
			continue
		}
		s, err := strconv.Atoi(rest[:i])
		if err != nil || s < 0 {
			continue
		}
		seen[s] = true
	}
	slots := make([]int, 0, len(seen))
	for s := range seen {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	return slots
}

// LatestValidGenAny returns the newest generation for which ANY slot's shard
// verifies. This is what a -join replacement reports at rendezvous: its own
// slot's files are stale (or missing) after the cohort trained without it,
// but with the shared checkpoint directory the elastic mode mandates, any
// member's shard of a generation carries the replica-identical model state
// it needs — reporting its own stale number would needlessly roll every
// survivor back.
func LatestValidGenAny(dir string) int {
	best := 0
	for _, s := range scanSlots(dir) {
		if g := LatestValidGen(dir, s); g > best {
			best = g
		}
	}
	return best
}

// LoadGenerationAs restores generation gen into rt from slot's own shard
// or, when that shard is missing or fails verification, from the lowest
// slot whose shard of gen does verify — the donor. Donor hydration is how a
// re-admitted replacement (or a survivor absorbing a dead slot's rows)
// catches up past its own stale files: the model and Adam state in every
// shard of a generation are replica-identical, and the donor's sampling/
// dropout RNG positions are adopted wholesale, which keeps the resumed run
// deterministic (the streams are applied to this rank's own partition, so
// the draws decorrelate immediately). Returns the slot actually loaded —
// slot itself on the normal path, -1 for gen 0.
func LoadGenerationAs(dir string, gen, slot int, rt *core.RankTrainer) (int, error) {
	if gen == 0 {
		return -1, nil
	}
	own := CheckpointPath(dir, slot, gen)
	if core.VerifyTrainerCheckpointFile(own) == nil {
		return slot, core.LoadTrainerCheckpointFile(own, rt)
	}
	for _, d := range scanSlots(dir) {
		if d == slot {
			continue
		}
		p := CheckpointPath(dir, d, gen)
		if core.VerifyTrainerCheckpointFile(p) == nil {
			return d, core.LoadTrainerCheckpointFile(p, rt)
		}
	}
	return -1, fmt.Errorf("elastic: no shard of generation %d verifies in %s (slot %d needs one to resume)", gen, dir, slot)
}
