package elastic

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/comm"
	"repro/internal/core"
)

// TestCleanupTmp: orphan .tmp residue is swept — all ranks for the
// in-process Supervisor (rank -1), only our own files for a multi-process
// rank sharing the directory with live peers — and real checkpoints are
// untouched.
func TestCleanupTmp(t *testing.T) {
	dir := t.TempDir()
	junk := []byte("torn half-written save")
	for _, name := range []string{
		CheckpointPath(dir, 0, 3) + ".tmp",
		CheckpointPath(dir, 0, 4) + ".tmp",
		CheckpointPath(dir, 1, 3) + ".tmp",
	} {
		if err := os.WriteFile(name, junk, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A real checkpoint name and an unrelated file must both survive.
	if err := os.WriteFile(CheckpointPath(dir, 0, 2), junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), junk, 0o644); err != nil {
		t.Fatal(err)
	}

	n, err := CleanupTmp(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rank-0 sweep removed %d files, want 2", n)
	}
	if _, err := os.Stat(CheckpointPath(dir, 1, 3) + ".tmp"); err != nil {
		t.Fatal("rank-0 sweep touched rank 1's in-flight .tmp")
	}
	n, err = CleanupTmp(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("all-ranks sweep removed %d files, want 1", n)
	}
	if _, err := os.Stat(CheckpointPath(dir, 0, 2)); err != nil {
		t.Fatal("sweep removed a real checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, "notes.txt")); err != nil {
		t.Fatal("sweep removed an unrelated file")
	}
	// A missing directory is not an error — nothing to clean.
	if _, err := CleanupTmp(filepath.Join(dir, "nope"), -1); err != nil {
		t.Fatal(err)
	}
}

// TestPruneGenerations pins the retention set: newest keep generations plus
// the consensus floor, everything else removed; keep=0 prunes nothing.
func TestPruneGenerations(t *testing.T) {
	ds, topo, cfg := testFixture(t, 2)
	rt, err := core.NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for g := 1; g <= 6; g++ {
		if err := SaveGeneration(dir, g, rt); err != nil {
			t.Fatal(err)
		}
	}

	// keep=0: unlimited retention, the pre-GC behavior.
	if n, err := PruneGenerations(dir, 0, 0, 2); err != nil || n != 0 {
		t.Fatalf("keep=0 pruned %d files (err %v), want 0", n, err)
	}

	// keep=2, floor=2: retain {5,6} ∪ {2}, delete {1,3,4}.
	n, err := PruneGenerations(dir, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("pruned %d files, want 3", n)
	}
	if got := listGens(dir, 0); len(got) != 3 || got[0] != 2 || got[1] != 5 || got[2] != 6 {
		t.Fatalf("surviving generations %v, want [2 5 6]", got)
	}
	if got := LatestValidGen(dir, 0); got != 6 {
		t.Fatalf("latest valid gen %d after prune, want 6", got)
	}

	// Idempotent: the retention set is already in place.
	if n, err := PruneGenerations(dir, 0, 2, 2); err != nil || n != 0 {
		t.Fatalf("second prune removed %d files (err %v), want 0", n, err)
	}

	// Another rank's files are out of scope.
	rt1, err := core.NewRankTrainer(ds, topo, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for g := 1; g <= 4; g++ {
		if err := SaveGeneration(dir, g, rt1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := PruneGenerations(dir, 0, 2, 2); err != nil {
		t.Fatal(err)
	}
	if got := listGens(dir, 1); len(got) != 4 {
		t.Fatalf("rank 0's prune touched rank 1's files: %v", got)
	}
}

// TestSupervisorBoundsCheckpointGrowth runs a real elastic training loop
// with KeepGenerations set and demands the directory stays bounded: at most
// keep+1 files per rank at the end, the newest generations intact, and the
// run still recovers bit-exactly after a mid-run death.
func TestSupervisorBoundsCheckpointGrowth(t *testing.T) {
	const k, epochs, every, keep = 2, 8, 1, 2
	ds, topo, cfg := testFixture(t, k)
	dir := t.TempDir()
	// Seed an orphan .tmp as if a previous incarnation crashed mid-save: the
	// bootstrap sweep must remove it.
	orphan := CheckpointPath(dir, 0, 99) + ".tmp"
	if err := os.WriteFile(orphan, []byte("crashed save"), 0o644); err != nil {
		t.Fatal(err)
	}
	sup := &Supervisor{
		Cfg: Config{Dir: dir, Every: every, Epochs: epochs, MaxRecoveries: 1, KeepGenerations: keep},
		NewTrainer: func(rank int) (*core.RankTrainer, error) {
			return core.NewRankTrainer(ds, topo, cfg, rank)
		},
		NewGroup: func(gen int) (*comm.Group, error) {
			g := comm.New(k, 0)
			if gen == 0 {
				g = comm.WithFaults(g, comm.KillAtEpoch(0, 5))
			}
			return g, nil
		},
	}
	trainers, rep, err := sup.Run()
	if err != nil {
		t.Fatalf("supervisor did not recover: %v (report %+v)", err, rep)
	}
	if rep.Recoveries != 1 {
		t.Fatalf("expected exactly 1 recovery, got %d", rep.Recoveries)
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("bootstrap sweep left the orphan .tmp behind")
	}
	want := referenceHash(t, k, epochs)
	for r, rt := range trainers {
		if got := paramHash(rt.Model); got != want {
			t.Fatalf("rank %d weights diverged under checkpoint GC", r)
		}
		gens := listGens(dir, r)
		if len(gens) > keep+1 {
			t.Fatalf("rank %d retains %d generations %v, want <= %d", r, len(gens), gens, keep+1)
		}
		if gens[len(gens)-1] != epochs/every {
			t.Fatalf("rank %d newest generation %d, want %d", r, gens[len(gens)-1], epochs/every)
		}
	}
}
