package elastic

import (
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
)

// runVictim joins the cohort like a real rank, trains until stopAfter
// epochs are complete, then abandons the cohort without ceremony — the
// in-process stand-in for SIGKILL. Abort poisons the peers exactly the way
// a dead process's closed sockets would; the extra Close only reaps this
// process's goroutines so the leak check stays meaningful.
func runVictim(t *testing.T, ds *datagen.Dataset, topo *core.Topology, cfg core.ParallelConfig,
	rank, world int, cands []string, dir string, every, stopAfter int) {
	t.Helper()
	dataLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := bootstrap(bootConfig{
		rank: rank, world: world, cands: cands, dataAddr: dataLn.Addr().String(),
		myGen: LatestValidGen(dir, rank), deadline: time.Now().Add(30 * time.Second),
	})
	if err != nil {
		dataLn.Close()
		t.Fatalf("victim bootstrap: %v", err)
	}
	tp, err := comm.DialTCPMesh(comm.TCPConfig{
		Rank: indexOf(tbl.members, rank), World: len(tbl.members), ListenHost: "127.0.0.1", Timeout: 30 * time.Second,
	}, dataLn, tbl.addrs)
	if err != nil {
		t.Fatalf("victim mesh: %v", err)
	}
	rt, err := core.NewRankTrainer(ds, topo, cfg, rank)
	if err != nil {
		t.Fatal(err)
	}
	if err := LoadGeneration(dir, tbl.startGen, rt); err != nil {
		t.Fatal(err)
	}
	w := comm.NewWorker(tp)
	for rt.Epoch() < stopAfter {
		if _, err := rt.TrainEpoch(w); err != nil {
			t.Errorf("victim epoch %d: %v", rt.Epoch(), err)
			break
		}
		if rt.Epoch()%every == 0 {
			if err := SaveGeneration(dir, rt.Epoch()/every, rt); err != nil {
				t.Error(err)
			}
		}
	}
	tp.Abort()
	tp.Close()
}

// TestRunnerRecoversAndReadmitsReplacement exercises the full per-process
// elastic loop end to end, in-process: rank 0 runs elastic.Run; rank 1
// joins, trains 3 of 8 epochs, and dies mid-cohort; a replacement rank 1
// then runs elastic.Run against the same checkpoint directory — the -join
// path. Rank 0 must absorb exactly one recovery, the cohort must agree to
// resume from generation 1 (epoch 2, the newest state both ranks hold), and
// both finishers' weights must equal the uninterrupted reference bit for
// bit.
func TestRunnerRecoversAndReadmitsReplacement(t *testing.T) {
	const world, epochs, every, stopAfter = 2, 8, 2, 3
	before := runtime.NumGoroutine()
	ds, topo, cfg := testFixture(t, world)
	dir := t.TempDir()
	cands := freeCandidates(t, world)

	mkRunner := func(rank int) RunnerConfig {
		return RunnerConfig{
			Config:     Config{Dir: dir, Every: every, Epochs: epochs, MaxRecoveries: 2},
			Rank:       rank,
			World:      world,
			Candidates: cands,
			Timeout:    30 * time.Second,
			NewTrainer: func(_ []int, slot int) (*core.RankTrainer, error) {
				return core.NewRankTrainer(ds, topo, cfg, slot)
			},
		}
	}

	type result struct {
		rt  *core.RankTrainer
		rep Report
		err error
	}
	r0done := make(chan result, 1)
	go func() {
		rt, rep, err := Run(mkRunner(0))
		r0done <- result{rt, rep, err}
	}()

	runVictim(t, ds, topo, cfg, 1, world, cands, dir, every, stopAfter)

	// The replacement is started only after the victim is fully gone —
	// exactly like an operator restarting the dead rank's process.
	rt1, rep1, err := Run(mkRunner(1))
	if err != nil {
		t.Fatalf("replacement rank 1: %v (report %+v)", err, rep1)
	}
	r0 := <-r0done
	if r0.err != nil {
		t.Fatalf("rank 0: %v (report %+v)", r0.err, r0.rep)
	}

	if r0.rep.Recoveries != 1 {
		t.Fatalf("rank 0 absorbed %d recoveries, want 1 (%v)", r0.rep.Recoveries, r0.rep.Failures)
	}
	if !recoverable(r0.rep.Failures[0]) {
		t.Fatalf("rank 0's recorded failure %v is not a transport death", r0.rep.Failures[0])
	}
	if n := len(r0.rep.StartGens); n == 0 || r0.rep.StartGens[0] != 0 || r0.rep.StartGens[n-1] != 1 {
		t.Fatalf("rank 0 start generations %v: want a fresh start then a gen-1 resume", r0.rep.StartGens)
	}
	if rep1.Recoveries != 0 {
		t.Fatalf("replacement absorbed %d recoveries, want 0", rep1.Recoveries)
	}
	if n := len(rep1.StartGens); n != 1 || rep1.StartGens[0] != 1 {
		t.Fatalf("replacement start generations %v: want exactly one gen-1 resume", rep1.StartGens)
	}

	want := referenceHash(t, world, epochs)
	for _, fin := range []struct {
		name string
		rt   *core.RankTrainer
	}{{"rank 0", r0.rt}, {"replacement rank 1", rt1}} {
		if fin.rt.Epoch() != epochs {
			t.Fatalf("%s finished at epoch %d, want %d", fin.name, fin.rt.Epoch(), epochs)
		}
		if got := paramHash(fin.rt.Model); got != want {
			t.Fatalf("%s: recovered weights %s != uninterrupted reference %s", fin.name, got, want)
		}
	}
	waitNoLeaks(t, before)
}

// TestRunnerRejectsBadConfig: config validation fires before any sockets.
func TestRunnerRejectsBadConfig(t *testing.T) {
	if _, _, err := Run(RunnerConfig{Config: Config{Dir: "", Every: 1, Epochs: 1}}); err == nil {
		t.Fatal("empty checkpoint dir accepted")
	}
	if _, _, err := Run(RunnerConfig{Config: Config{Dir: t.TempDir(), Every: 0, Epochs: 1}}); err == nil {
		t.Fatal("zero checkpoint cadence accepted")
	}
}
