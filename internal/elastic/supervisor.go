package elastic

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// Config holds the knobs shared by the in-process Supervisor and the
// per-process Run loop.
type Config struct {
	// Dir is the checkpoint directory. In a multi-process deployment every
	// rank (and any replacement process) must see the same directory — a
	// replacement re-admitted into a dead rank's slot resumes from the dead
	// rank's files.
	Dir string
	// Every is the checkpoint cadence in epochs (generation g = state after
	// g*Every epochs). Smaller values bound the recomputation a recovery
	// replays; larger values cost less save time per epoch.
	Every int
	// Epochs is the training target: ranks train until Epoch() == Epochs.
	Epochs int
	// MaxRecoveries bounds how many failures the loop absorbs before giving
	// up and returning the underlying error.
	MaxRecoveries int
	// KeepGenerations, when positive, bounds on-disk checkpoint growth: after
	// each save a rank prunes its own generations down to the newest
	// KeepGenerations, never deleting the generation the cohort last agreed
	// to resume from (see PruneGenerations). Zero keeps everything — the
	// prior behavior.
	KeepGenerations int
	// ResizeAfter, when positive, enables world resizing: a rendezvous whose
	// rounds keep timing out with the same stable partial cohort (at least
	// two live ranks) completes after that many consecutive rounds with just
	// the survivors, who repartition the dead ranks' rows among themselves
	// and train on at the smaller world. Zero (the default) keeps the PR-6
	// behavior: wait for a replacement forever.
	ResizeAfter int
	// ElectionStagger is the per-rank delay unit before a rank gives up
	// probing lower candidates and serves its own rendezvous round (rank r
	// waits r*ElectionStagger). Zero means the 300ms default; chaos tests
	// shrink it to keep elections off the wall clock.
	ElectionStagger time.Duration
	// RendezvousRound is the collection window of one rendezvous round.
	// Zero means the 3s default. ResizeAfter is counted in these rounds, so
	// the time from last heartbeat to a shrink decision is roughly
	// ResizeAfter*RendezvousRound.
	RendezvousRound time.Duration
}

func (c *Config) validate() error {
	if c.Every <= 0 {
		return fmt.Errorf("elastic: checkpoint cadence %d must be positive", c.Every)
	}
	if c.Epochs < 0 {
		return fmt.Errorf("elastic: %d epochs", c.Epochs)
	}
	if c.Dir == "" {
		return fmt.Errorf("elastic: checkpoint directory is required")
	}
	if c.ResizeAfter < 0 {
		return fmt.Errorf("elastic: negative ResizeAfter %d", c.ResizeAfter)
	}
	if c.ElectionStagger < 0 || c.RendezvousRound < 0 {
		return fmt.Errorf("elastic: negative rendezvous timing (stagger %v, round %v)", c.ElectionStagger, c.RendezvousRound)
	}
	return nil
}

// Report describes what a recovery loop lived through.
type Report struct {
	// Recoveries is the number of failures absorbed.
	Recoveries int
	// StartGens records the checkpoint generation each bootstrap agreed to
	// resume from; StartGens[0] is the initial start (0 = fresh).
	StartGens []int
	// Worlds records the member slots each bootstrap agreed on, parallel to
	// StartGens: the full [0,world) on a full-strength generation, the
	// surviving slots on a shrunken one.
	Worlds [][]int
	// Failures holds the error that triggered each recovery.
	Failures []error
}

// recoverable reports whether err is a peer/transport death the elastic
// loop should absorb — anything carrying a *comm.TransportError, which
// includes injected faults and epoch failures wrapping one. Everything else
// (checkpoint I/O failures, programming errors) aborts the run.
func recoverable(err error) bool {
	var te *comm.TransportError
	return errors.As(err, &te)
}

// trainRank drives one rank from its current epoch to cfg.Epochs, saving a
// generation checkpoint every cfg.Every epochs. The MarkEpoch call at the
// top of each epoch is what lets a comm.WithFaults plan kill this rank at a
// deterministic epoch boundary; on plain transports it is a no-op.
// startGen is the generation the cohort agreed to resume from at the last
// bootstrap — the floor the post-save GC must never prune past, since any
// future recovery's consensus can fall back to it. slot is the rank's
// stable launch-time identity; checkpoints are keyed by it, while rt.Rank
// is the compact mesh rank (they differ only on a shrunken world).
func trainRank(cfg *Config, rt *core.RankTrainer, w *comm.Worker, startGen, slot int, onEpoch func(*core.RankTrainer, core.RankStats)) error {
	for rt.Epoch() < cfg.Epochs {
		if err := comm.MarkEpoch(w.Transport(), rt.Epoch()); err != nil {
			return fmt.Errorf("elastic: rank %d: %w", slot, err)
		}
		st, err := rt.TrainEpoch(w)
		if err != nil {
			return err
		}
		if onEpoch != nil {
			onEpoch(rt, st)
		}
		if rt.Epoch()%cfg.Every == 0 {
			if err := SaveGenerationAs(cfg.Dir, rt.Epoch()/cfg.Every, slot, rt); err != nil {
				return fmt.Errorf("elastic: rank %d: checkpoint save: %w", slot, err)
			}
			if _, err := PruneGenerations(cfg.Dir, slot, cfg.KeepGenerations, startGen); err != nil {
				return fmt.Errorf("elastic: rank %d: checkpoint GC: %w", slot, err)
			}
		}
	}
	return nil
}

// Supervisor drives all k ranks of an elastic training run inside one
// process: the in-process twin of the multi-process Run loop, and the
// harness the recovery bit-exactness tests are built on. It owns the full
// loop — train, checkpoint every N epochs, and on any rank's death tear the
// group down, rebuild it through NewGroup, agree on the newest generation
// every rank holds, reload, and resume.
type Supervisor struct {
	Cfg Config
	// NewTrainer constructs rank r's trainer from scratch. It is called
	// afresh on every bootstrap — recovery never reuses a trainer that
	// observed the failure, exactly like a restarted process wouldn't.
	NewTrainer func(rank int) (*core.RankTrainer, error)
	// NewGroup builds the communication fabric for rendezvous generation
	// gen (0 for the initial bootstrap, bumped on every recovery). Tests
	// inject faults by wrapping the returned group in comm.WithFaults for
	// the generation the fault should fire in; a fresh group per generation
	// is what guarantees a one-shot fault cannot re-fire after recovery.
	// When Members is set, the group's size must equal len(Members(gen)).
	NewGroup func(gen int) (*comm.Group, error)
	// Members, when set, scripts world resizing: it returns the live slots
	// of rendezvous generation gen (nil means the full world). This is the
	// in-process stand-in for the rendezvous shrink election — the resize
	// chaos tests use it to pin exactly which generations run shrunken.
	// Requires NewTrainerAt.
	Members func(gen int) []int
	// NewTrainerAt, when set, replaces NewTrainer with a members-aware
	// factory: it builds the trainer for slot within the given member set
	// (compact rank = index of slot in members, k' = len(members)).
	NewTrainerAt func(members []int, slot int) (*core.RankTrainer, error)
	// OnEpoch, when set, observes every completed epoch on every rank.
	OnEpoch func(rt *core.RankTrainer, st core.RankStats)
}

// Run executes the elastic loop to completion and returns the final
// trainers (one per rank, all at Cfg.Epochs) plus the recovery report.
func (s *Supervisor) Run() ([]*core.RankTrainer, Report, error) {
	var rep Report
	if err := s.Cfg.validate(); err != nil {
		return nil, rep, err
	}
	var prev []int
	for gen := 0; ; gen++ {
		g, err := s.NewGroup(gen)
		if err != nil {
			return nil, rep, fmt.Errorf("elastic: generation %d: group: %w", gen, err)
		}
		k := g.Size()
		members := fullMembers(k)
		if s.Members != nil {
			if m := s.Members(gen); m != nil {
				members = m
			}
			if s.NewTrainerAt == nil {
				g.Close()
				return nil, rep, fmt.Errorf("elastic: Members requires NewTrainerAt: a resized world needs a members-aware trainer factory")
			}
			if len(members) != k {
				g.Close()
				return nil, rep, fmt.Errorf("elastic: generation %d: Members lists %d slots but the group has %d endpoints", gen, len(members), k)
			}
		}
		rep.Worlds = append(rep.Worlds, append([]int(nil), members...))
		trainers := make([]*core.RankTrainer, k)
		for r := range trainers {
			if s.NewTrainerAt != nil {
				trainers[r], err = s.NewTrainerAt(members, members[r])
			} else {
				trainers[r], err = s.NewTrainer(members[r])
			}
			if err != nil {
				g.Close()
				return nil, rep, fmt.Errorf("elastic: generation %d: trainer %d: %w", gen, members[r], err)
			}
		}
		// Generation consensus, the in-process degenerate case: every rank's
		// scan is a local directory read, the agreement is a plain min. The
		// multi-process loop exchanges the same numbers through the elastic
		// rendezvous (see bootstrap.go). A slot re-admitted after sitting a
		// generation out (a -join replacement in the multi-process world)
		// reports the newest generation held by ANY slot: its own files are
		// stale, and donor hydration below covers the gap, so its staleness
		// must not drag the whole cohort back.
		start := 0
		for i, slot := range members {
			lg := LatestValidGen(s.Cfg.Dir, slot)
			if gen > 0 && prev != nil && indexOf(prev, slot) < 0 {
				if a := LatestValidGenAny(s.Cfg.Dir); a > lg {
					lg = a
				}
			}
			if i == 0 || lg < start {
				start = lg
			}
		}
		rep.StartGens = append(rep.StartGens, start)
		for r := range trainers {
			if _, err := LoadGenerationAs(s.Cfg.Dir, start, members[r], trainers[r]); err != nil {
				g.Close()
				return nil, rep, fmt.Errorf("elastic: generation %d: load gen %d: %w", gen, start, err)
			}
		}
		// Bootstrap-time GC: sweep .tmp residue of crashed saves (all ranks —
		// the Supervisor owns the directory, nothing else is saving) and prune
		// generations older than the consensus everyone just agreed to.
		if _, err := CleanupTmp(s.Cfg.Dir, -1); err != nil {
			g.Close()
			return nil, rep, fmt.Errorf("elastic: generation %d: tmp cleanup: %w", gen, err)
		}
		for _, slot := range members {
			if _, err := PruneGenerations(s.Cfg.Dir, slot, s.Cfg.KeepGenerations, start); err != nil {
				g.Close()
				return nil, rep, fmt.Errorf("elastic: generation %d: checkpoint GC: %w", gen, err)
			}
		}

		errs := make([]error, k)
		var wg sync.WaitGroup
		for r := 0; r < k; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				errs[r] = trainRank(&s.Cfg, trainers[r], g.Worker(r), start, members[r], s.OnEpoch)
			}(r)
		}
		wg.Wait()
		g.Close()
		prev = members

		// Pick the most informative failure for the report: the victim's own
		// error names the root cause (e.g. an injected fault), while the
		// survivors only see "transport aborted by rank r".
		var failed error
		for _, err := range errs {
			if err == nil {
				continue
			}
			if failed == nil {
				failed = err
			}
			var inj *comm.InjectedFault
			if errors.As(err, &inj) {
				failed = err
				break
			}
		}
		if failed == nil {
			return trainers, rep, nil
		}
		if !recoverable(failed) {
			return nil, rep, failed
		}
		rep.Recoveries++
		rep.Failures = append(rep.Failures, failed)
		if rep.Recoveries > s.Cfg.MaxRecoveries {
			return nil, rep, fmt.Errorf("elastic: giving up after %d recoveries: %w", rep.Recoveries-1, failed)
		}
	}
}
