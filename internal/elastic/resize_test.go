package elastic

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// World resizing, end to end. The tests here cover the three layers of the
// feature separately and then together: the rendezvous shrink election
// (bootstrap), the growth listener (growWatcher), the per-process runner
// (shrink determinism, grow-back, double death), and the in-process
// Supervisor chaos matrix over both transports.

// resizeKnobs are the fast rendezvous timings the resize tests share: small
// enough that a shrink election (resizeAfter * round) costs well under a
// second, large enough that loopback dials comfortably fit in a round.
const (
	tStagger = 40 * time.Millisecond
	tRound   = 250 * time.Millisecond
	tResize  = 2
)

// TestBootstrapResizesToStableSurvivors: world 3 with slot 1 dead. The two
// survivors must elect the two-member world after tResize stable incomplete
// rounds, agree on min(gen), and list addresses in member order.
func TestBootstrapResizesToStableSurvivors(t *testing.T) {
	const world = 3
	cands := freeCandidates(t, world)
	live := []int{0, 2}
	gens := map[int]int{0: 7, 2: 5}
	tables := make(map[int]*table)
	errs := make(map[int]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	deadline := time.Now().Add(20 * time.Second)
	for _, r := range live {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			tbl, err := bootstrap(bootConfig{
				rank: r, world: world, cands: cands,
				dataAddr: fmt.Sprintf("10.0.0.%d:9000", r), myGen: gens[r],
				stagger: tStagger, round: tRound, resizeAfter: tResize,
				deadline: deadline,
			})
			mu.Lock()
			tables[r], errs[r] = tbl, err
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	for _, r := range live {
		if errs[r] != nil {
			t.Fatalf("rank %d: %v", r, errs[r])
		}
		tbl := tables[r]
		if !reflect.DeepEqual(tbl.members, []int{0, 2}) {
			t.Fatalf("rank %d elected members %v, want the two survivors [0 2]", r, tbl.members)
		}
		if tbl.startGen != 5 {
			t.Fatalf("rank %d agreed on gen %d, want min gen 5", r, tbl.startGen)
		}
		if tbl.addrs[0] != "10.0.0.0:9000" || tbl.addrs[1] != "10.0.0.2:9000" {
			t.Fatalf("rank %d addrs %v not in member order", r, tbl.addrs)
		}
	}
}

// TestBootstrapLoneRankNeverSelfElects: resizing must not let a single
// isolated rank fork a one-member "cohort" — it times out with an error that
// says exactly that.
func TestBootstrapLoneRankNeverSelfElects(t *testing.T) {
	cands := freeCandidates(t, 3)
	_, err := bootstrap(bootConfig{
		rank: 1, world: 3, cands: cands, dataAddr: "me:2",
		stagger: tStagger, round: tRound, resizeAfter: 1,
		deadline: time.Now().Add(1500 * time.Millisecond),
	})
	if err == nil {
		t.Fatal("a lone rank completed a resize-enabled rendezvous")
	}
	if !strings.Contains(err.Error(), "lone survivor") {
		t.Fatalf("error does not name the lone-survivor situation: %v", err)
	}
}

// knockGrow dials a growth listener like a rejoining bootstrap would and
// returns the first response line.
func knockGrow(t *testing.T, addr string, slot int) string {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		t.Fatalf("knock %s: %v", addr, err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(2 * time.Second))
	fmt.Fprintf(conn, "EJOIN %d 10.0.0.9:9 0\n", slot)
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("knock %s: read: %v", addr, err)
	}
	return strings.TrimSpace(line)
}

// TestGrowWatcherAdmitsOnceAndRejectsImpostors: the growth listener parks a
// genuine replacement with ERETRY and fires onGrow exactly once; while the
// shrunken world is still running, knocks claiming a live member's slot or
// an out-of-range slot get a pointed EERR and never trigger growth. After
// the grow knock has fired, a member knock is a survivor's re-rendezvous
// probe racing the watcher's shutdown and is parked with ERETRY instead.
func TestGrowWatcherAdmitsOnceAndRejectsImpostors(t *testing.T) {
	before := runtime.NumGoroutine()
	addr := freeCandidates(t, 1)[0]
	var mu sync.Mutex
	var grew []int
	gw, err := newGrowWatcher(addr, 0, 3, []int{0, 2}, func(slot int) {
		mu.Lock()
		grew = append(grew, slot)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}

	// Before any grow knock, a member-slot knock is a duplicate process.
	if got := knockGrow(t, addr, 2); !strings.HasPrefix(got, "EERR") || !strings.Contains(got, "already a live member") {
		t.Fatalf("live-member knock answered %q, want a duplicate-process EERR", got)
	}
	if got := knockGrow(t, addr, 7); !strings.HasPrefix(got, "EERR") {
		t.Fatalf("out-of-range knock answered %q, want EERR", got)
	}
	if got := knockGrow(t, addr, 1); got != "ERETRY" {
		t.Fatalf("replacement knock answered %q, want ERETRY", got)
	}
	if got := knockGrow(t, addr, 1); got != "ERETRY" {
		t.Fatalf("second knock answered %q, want ERETRY", got)
	}
	// After the knock the mesh is re-forming: a member probe gets ERETRY.
	if got := knockGrow(t, addr, 2); got != "ERETRY" {
		t.Fatalf("post-grow member probe answered %q, want ERETRY", got)
	}
	gw.Close()

	mu.Lock()
	defer mu.Unlock()
	if !reflect.DeepEqual(grew, []int{1}) {
		t.Fatalf("onGrow fired for %v, want exactly once for slot 1", grew)
	}
	waitNoLeaks(t, before)
}

// resizeRunner builds a RunnerConfig with the fast resize knobs and the
// members-aware trainer factory the resize runner tests share.
func resizeRunner(ds *coreDataset, rank, world, epochs, every int, dir string, cands []string) RunnerConfig {
	return RunnerConfig{
		Config: Config{
			Dir: dir, Every: every, Epochs: epochs, MaxRecoveries: 4,
			ResizeAfter: tResize, ElectionStagger: tStagger, RendezvousRound: tRound,
		},
		Rank:       rank,
		World:      world,
		Candidates: cands,
		Timeout:    30 * time.Second,
		NewTrainer: ds.factory,
	}
}

// coreDataset bundles a fixture with its members-aware factory so the runner
// tests can pass one handle around.
type coreDataset struct {
	factory func(members []int, slot int) (*core.RankTrainer, error)
}

// TestRunnerResizeShrinkDeterminism is the tentpole's bit-exactness pin for
// the permanent-loss path: world 3 loses rank 2 for good at epoch 3, the two
// survivors elect k'=2, fold slot 2's rows into their own partitions, and
// train to completion. Two full repeats of the same scenario must finish with
// bit-identical weights — the shrink election, the checkpoint consensus, the
// repartition, and the resumed RNG streams are all deterministic.
func TestRunnerResizeShrinkDeterminism(t *testing.T) {
	const world, epochs, every, stopAfter = 3, 8, 2, 3
	before := runtime.NumGoroutine()

	run := func() (hashes [2]string, reps [2]Report) {
		ds, parts, topo, cfg := testFixtureParts(t, world)
		fx := &coreDataset{factory: memberFactory(ds, parts, topo, cfg, world)}
		dir := t.TempDir()
		cands := freeCandidates(t, world)

		type result struct {
			rt  *core.RankTrainer
			rep Report
			err error
		}
		done := make([]chan result, 2)
		for r := 0; r < 2; r++ {
			done[r] = make(chan result, 1)
			go func(r int) {
				rt, rep, err := Run(resizeRunner(fx, r, world, epochs, every, dir, cands))
				done[r] <- result{rt, rep, err}
			}(r)
		}
		runVictim(t, ds, topo, cfg, 2, world, cands, dir, every, stopAfter)
		for r := 0; r < 2; r++ {
			res := <-done[r]
			if res.err != nil {
				t.Fatalf("survivor rank %d: %v (report %+v)", r, res.err, res.rep)
			}
			if res.rt.Epoch() != epochs {
				t.Fatalf("survivor rank %d finished at epoch %d, want %d", r, res.rt.Epoch(), epochs)
			}
			hashes[r], reps[r] = paramHash(res.rt.Model), res.rep
		}
		return hashes, reps
	}

	h1, reps := run()
	if h1[0] != h1[1] {
		t.Fatalf("survivors diverged on the shrunken world: %s vs %s", h1[0], h1[1])
	}
	for r, rep := range reps {
		if len(rep.Worlds) < 2 || !reflect.DeepEqual(rep.Worlds[0], []int{0, 1, 2}) {
			t.Fatalf("rank %d worlds %v: want a full-strength start then a shrink", r, rep.Worlds)
		}
		if last := rep.Worlds[len(rep.Worlds)-1]; !reflect.DeepEqual(last, []int{0, 1}) {
			t.Fatalf("rank %d final world %v, want the two survivors [0 1]", r, last)
		}
		if rep.Recoveries < 1 {
			t.Fatalf("rank %d absorbed no recovery", r)
		}
	}

	h2, _ := run()
	if h1[0] != h2[0] {
		t.Fatalf("k'=2 run is not deterministic across repeats: %s vs %s", h1[0], h2[0])
	}
	waitNoLeaks(t, before)
}

// TestRunnerResizeGrowBack closes the loop: shrink at epoch 3, train at k'=2,
// then a late replacement knocks on the growth listener mid-training. The
// survivors must abort the small mesh, re-rendezvous at full strength with
// the replacement (which hydrates from a donor shard), shed the absorbed rows
// back, and finish — all three ranks with identical replicas.
func TestRunnerResizeGrowBack(t *testing.T) {
	const world, epochs, every, stopAfter, holdEpoch = 3, 8, 2, 3, 5
	before := runtime.NumGoroutine()
	ds, parts, topo, cfg := testFixtureParts(t, world)
	fx := &coreDataset{factory: memberFactory(ds, parts, topo, cfg, world)}
	dir := t.TempDir()
	cands := freeCandidates(t, world)

	// The survivors park at holdEpoch (inside the shrunken generation) until
	// the replacement's knock arrives, so the grow-back provably lands while
	// k'=2 training is in flight, not after it finished. growSignal fires in
	// the watcher before the mesh abort; closing release there lets the held
	// survivors run straight into the abort.
	release := make(chan struct{})
	held := make(chan int, 2*world)
	var releaseOnce sync.Once
	growSignal = func(owner, joiner int) {
		releaseOnce.Do(func() { close(release) })
	}
	defer func() { growSignal = nil }()

	type result struct {
		rt  *core.RankTrainer
		rep Report
		err error
	}
	mkSurvivor := func(r int) RunnerConfig {
		rc := resizeRunner(fx, r, world, epochs, every, dir, cands)
		rc.OnEpoch = func(rt *core.RankTrainer, _ core.RankStats) {
			if rt.Epoch() == holdEpoch {
				select {
				case held <- r:
				default:
				}
				<-release
			}
		}
		return rc
	}
	done := make([]chan result, 2)
	for r := 0; r < 2; r++ {
		done[r] = make(chan result, 1)
		go func(r int) {
			rt, rep, err := Run(mkSurvivor(r))
			done[r] <- result{rt, rep, err}
		}(r)
	}
	runVictim(t, ds, topo, cfg, 2, world, cands, dir, every, stopAfter)

	// Both survivors must reach holdEpoch on the shrunken world before the
	// replacement is launched.
	for i := 0; i < 2; i++ {
		select {
		case <-held:
		case <-time.After(60 * time.Second):
			t.Fatal("survivors never reached the hold epoch on the shrunken world")
		}
	}
	rc2 := resizeRunner(fx, 2, world, epochs, every, dir, cands)
	rc2.Rejoin = true
	rt2, rep2, err := Run(rc2)
	if err != nil {
		t.Fatalf("replacement rank 2: %v (report %+v)", err, rep2)
	}

	finals := []*core.RankTrainer{nil, nil, rt2}
	reps := []Report{{}, {}, rep2}
	for r := 0; r < 2; r++ {
		res := <-done[r]
		if res.err != nil {
			t.Fatalf("survivor rank %d: %v (report %+v)", r, res.err, res.rep)
		}
		finals[r], reps[r] = res.rt, res.rep
	}

	want := paramHash(finals[0].Model)
	for r, rt := range finals {
		if rt.Epoch() != epochs {
			t.Fatalf("rank %d finished at epoch %d, want %d", r, rt.Epoch(), epochs)
		}
		if got := paramHash(rt.Model); got != want {
			t.Fatalf("rank %d replica %s != rank 0 replica %s after grow-back", r, got, want)
		}
	}
	for r := 0; r < 2; r++ {
		shrunk := false
		for _, m := range reps[r].Worlds {
			if reflect.DeepEqual(m, []int{0, 1}) {
				shrunk = true
			}
		}
		if !shrunk {
			t.Fatalf("survivor %d never trained on the shrunken world: %v", r, reps[r].Worlds)
		}
		if last := reps[r].Worlds[len(reps[r].Worlds)-1]; !reflect.DeepEqual(last, []int{0, 1, 2}) {
			t.Fatalf("survivor %d final world %v, want full strength after grow-back", r, last)
		}
	}
	if last := rep2.Worlds[len(rep2.Worlds)-1]; !reflect.DeepEqual(last, []int{0, 1, 2}) {
		t.Fatalf("replacement final world %v, want full strength", rep2.Worlds)
	}
	waitNoLeaks(t, before)
}

// TestRunnerResizeDoubleDeathShrinksToTwo: world 4 loses ranks 2 AND 3 at the
// same epoch — the second death lands during the survivors' re-rendezvous.
// The stable roster is the two survivors, who must shrink straight to k'=2
// (the multi-dead repartition path) and finish in agreement.
func TestRunnerResizeDoubleDeathShrinksToTwo(t *testing.T) {
	const world, epochs, every, stopAfter = 4, 8, 2, 3
	before := runtime.NumGoroutine()
	ds, parts, topo, cfg := testFixtureParts(t, world)
	fx := &coreDataset{factory: memberFactory(ds, parts, topo, cfg, world)}
	dir := t.TempDir()
	cands := freeCandidates(t, world)

	type result struct {
		rt  *core.RankTrainer
		rep Report
		err error
	}
	done := make([]chan result, 2)
	for r := 0; r < 2; r++ {
		done[r] = make(chan result, 1)
		go func(r int) {
			rt, rep, err := Run(resizeRunner(fx, r, world, epochs, every, dir, cands))
			done[r] <- result{rt, rep, err}
		}(r)
	}
	var vwg sync.WaitGroup
	for v := 2; v < 4; v++ {
		vwg.Add(1)
		go func(v int) {
			defer vwg.Done()
			runVictim(t, ds, topo, cfg, v, world, cands, dir, every, stopAfter)
		}(v)
	}
	vwg.Wait()

	var hashes [2]string
	for r := 0; r < 2; r++ {
		res := <-done[r]
		if res.err != nil {
			t.Fatalf("survivor rank %d: %v (report %+v)", r, res.err, res.rep)
		}
		if res.rt.Epoch() != epochs {
			t.Fatalf("survivor rank %d finished at epoch %d, want %d", r, res.rt.Epoch(), epochs)
		}
		hashes[r] = paramHash(res.rt.Model)
		if last := res.rep.Worlds[len(res.rep.Worlds)-1]; !reflect.DeepEqual(last, []int{0, 1}) {
			t.Fatalf("survivor %d final world %v, want [0 1]", r, last)
		}
	}
	if hashes[0] != hashes[1] {
		t.Fatalf("survivors diverged after the double shrink: %s vs %s", hashes[0], hashes[1])
	}
	waitNoLeaks(t, before)
}

// TestRunnerResizeLoneSurvivorFailsPointedly: when the double fault leaves a
// single rank alive, it must NOT deadlock waiting and must NOT self-elect —
// it times out with the lone-survivor error, goroutine-clean.
func TestRunnerResizeLoneSurvivorFailsPointedly(t *testing.T) {
	const world, epochs, every, stopAfter = 2, 8, 2, 3
	before := runtime.NumGoroutine()
	ds, parts, topo, cfg := testFixtureParts(t, world)
	fx := &coreDataset{factory: memberFactory(ds, parts, topo, cfg, world)}
	dir := t.TempDir()
	cands := freeCandidates(t, world)

	rc := resizeRunner(fx, 0, world, epochs, every, dir, cands)
	rc.Timeout = 3 * time.Second
	done := make(chan error, 1)
	go func() {
		_, _, err := Run(rc)
		done <- err
	}()
	runVictim(t, ds, topo, cfg, 1, world, cands, dir, every, stopAfter)

	select {
	case err := <-done:
		if err == nil {
			t.Fatal("lone survivor claims to have finished a world-2 run alone")
		}
		if !strings.Contains(err.Error(), "lone survivor") {
			t.Fatalf("lone survivor's error does not name the situation: %v", err)
		}
	case <-time.After(90 * time.Second):
		t.Fatal("lone survivor deadlocked instead of timing out")
	}
	waitNoLeaks(t, before)
}

// TestSupervisorResizeShrinkGrowMatrix is the in-process chaos matrix over
// both transports and k ∈ {3, 4}: generation 0 trains at full strength until
// slot k−1 is killed at the epoch-3 boundary; generation 1 trains SHRUNKEN
// (the survivors absorb the dead slot's rows) until a second kill at epoch 5
// stands in for the replacement's admit knock; generation 2 is back at full
// strength, with the re-admitted slot hydrating from a donor shard. The run
// must be bit-identical across repeats and across transports, every replica
// must agree, and the final loss must sit within the documented tolerance of
// an uninterrupted run (exact weight equality is forfeited the moment any
// epoch trains at k': the boundary-sampling streams differ by construction —
// see PERFORMANCE.md, "World resizing").
func TestSupervisorResizeShrinkGrowMatrix(t *testing.T) {
	const epochs, every = 8, 2
	type outcome struct {
		hash      string
		finalLoss float64
		rep       Report
	}
	runScript := func(t *testing.T, backend string, k int) outcome {
		ds, parts, topo, cfg := testFixtureParts(t, k)
		shrunken := fullMembers(k)[:k-1]
		var mu sync.Mutex
		var lossSum float64
		sup := &Supervisor{
			Cfg: Config{Dir: t.TempDir(), Every: every, Epochs: epochs, MaxRecoveries: 2},
			Members: func(gen int) []int {
				if gen == 1 {
					return shrunken
				}
				return nil
			},
			NewTrainerAt: memberFactory(ds, parts, topo, cfg, k),
			NewGroup: func(gen int) (*comm.Group, error) {
				size := k
				if gen == 1 {
					size = k - 1
				}
				var g *comm.Group
				var err error
				if backend == "tcp" {
					g, err = tcpGroup(t, size)
					if err != nil {
						return nil, err
					}
				} else {
					g = comm.New(size, 0)
				}
				switch gen {
				case 0:
					g = comm.WithFaults(g, comm.KillAtEpoch(k-1, 3))
				case 1:
					g = comm.WithFaults(g, comm.KillAtEpoch(0, 5))
				}
				return g, nil
			},
			// RankStats.Loss is each rank's contribution to the global loss;
			// summing the final epoch's contributions across ranks yields the
			// global training loss the reference reports.
			OnEpoch: func(rt *core.RankTrainer, st core.RankStats) {
				if rt.Epoch() == epochs {
					mu.Lock()
					lossSum += st.Loss
					mu.Unlock()
				}
			},
		}
		trainers, rep, err := sup.Run()
		if err != nil {
			t.Fatalf("%s/k%d: %v (report %+v)", backend, k, err, rep)
		}
		want := paramHash(trainers[0].Model)
		for r, rt := range trainers {
			if rt.Epoch() != epochs {
				t.Fatalf("%s/k%d: rank %d at epoch %d, want %d", backend, k, r, rt.Epoch(), epochs)
			}
			if got := paramHash(rt.Model); got != want {
				t.Fatalf("%s/k%d: rank %d replica %s != rank 0 %s", backend, k, r, got, want)
			}
		}
		return outcome{hash: want, finalLoss: lossSum, rep: rep}
	}

	for _, k := range []int{3, 4} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			before := runtime.NumGoroutine()
			chan1 := runScript(t, "chan", k)
			chan2 := runScript(t, "chan", k)
			tcp1 := runScript(t, "tcp", k)

			if chan1.hash != chan2.hash {
				t.Fatalf("shrink-grow run not deterministic across repeats: %s vs %s", chan1.hash, chan2.hash)
			}
			if chan1.hash != tcp1.hash {
				t.Fatalf("chan and tcp transports diverged: %s vs %s", chan1.hash, tcp1.hash)
			}
			// The scripted lifecycle: full → shrunken → full, resuming 0/1/2.
			sizes := make([]int, len(chan1.rep.Worlds))
			for i, m := range chan1.rep.Worlds {
				sizes[i] = len(m)
			}
			if !reflect.DeepEqual(sizes, []int{k, k - 1, k}) {
				t.Fatalf("world sizes %v, want [%d %d %d]", sizes, k, k-1, k)
			}
			if !reflect.DeepEqual(chan1.rep.StartGens, []int{0, 1, 2}) {
				t.Fatalf("start generations %v, want [0 1 2]", chan1.rep.StartGens)
			}
			if !reflect.DeepEqual(chan1.rep.Worlds[1], fullMembers(k)[:k-1]) {
				t.Fatalf("shrunken generation members %v, want %v", chan1.rep.Worlds[1], fullMembers(k)[:k-1])
			}

			// Loss tolerance vs the uninterrupted reference: the k' epochs
			// sample boundary nodes from different streams, so trajectories
			// diverge in the weights but must land at an equivalent loss.
			// The 25% relative band is documented in PERFORMANCE.md; observed
			// gaps are far smaller.
			ref := referenceFinalLoss(t, k, epochs)
			if diff := math.Abs(chan1.finalLoss - ref); diff > 0.25*math.Max(ref, 1e-6) {
				t.Fatalf("final loss %.6f strayed %.6f from uninterrupted reference %.6f (>25%%)", chan1.finalLoss, diff, ref)
			} else {
				t.Logf("k=%d final loss %.6f vs reference %.6f (|diff| %.6f)", k, chan1.finalLoss, ref, diff)
			}
			waitNoLeaks(t, before)
		})
	}
}

// referenceFinalLoss trains the fixture straight through and returns the
// final epoch's global loss.
func referenceFinalLoss(t testing.TB, k, epochs int) float64 {
	t.Helper()
	ds, topo, cfg := testFixture(t, k)
	ref, err := core.NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for e := 0; e < epochs; e++ {
		last = ref.TrainEpoch().Loss
	}
	return last
}

// TestSupervisorResizeDoubleFault: the second rank dies while the world is
// already shrunken — k=4 goes to 3 at epoch 3, then to 2 at epoch 5, and
// stays there. Both transports, both replicas in agreement, goroutine-clean.
func TestSupervisorResizeDoubleFault(t *testing.T) {
	const k, epochs, every = 4, 8, 2
	for _, backend := range []string{"chan", "tcp"} {
		t.Run(backend, func(t *testing.T) {
			before := runtime.NumGoroutine()
			ds, parts, topo, cfg := testFixtureParts(t, k)
			members := map[int][]int{1: {0, 1, 2}, 2: {0, 1}}
			sup := &Supervisor{
				Cfg: Config{Dir: t.TempDir(), Every: every, Epochs: epochs, MaxRecoveries: 2},
				Members: func(gen int) []int {
					if m, ok := members[gen]; ok {
						return m
					}
					if gen > 2 {
						return []int{0, 1}
					}
					return nil
				},
				NewTrainerAt: memberFactory(ds, parts, topo, cfg, k),
				NewGroup: func(gen int) (*comm.Group, error) {
					size := k
					if m, ok := members[gen]; ok {
						size = len(m)
					} else if gen > 2 {
						size = 2
					}
					var g *comm.Group
					var err error
					if backend == "tcp" {
						g, err = tcpGroup(t, size)
						if err != nil {
							return nil, err
						}
					} else {
						g = comm.New(size, 0)
					}
					switch gen {
					case 0:
						g = comm.WithFaults(g, comm.KillAtEpoch(k-1, 3))
					case 1:
						g = comm.WithFaults(g, comm.KillAtEpoch(2, 5))
					}
					return g, nil
				},
			}
			trainers, rep, err := sup.Run()
			if err != nil {
				t.Fatalf("double fault not absorbed: %v (report %+v)", err, rep)
			}
			if rep.Recoveries != 2 {
				t.Fatalf("absorbed %d recoveries, want 2 (%v)", rep.Recoveries, rep.Failures)
			}
			for _, f := range rep.Failures {
				var inj *comm.InjectedFault
				if !errors.As(f, &inj) {
					t.Fatalf("recorded failure %v does not wrap an injected fault", f)
				}
			}
			want := paramHash(trainers[0].Model)
			for r, rt := range trainers {
				if rt.Epoch() != epochs {
					t.Fatalf("rank %d at epoch %d, want %d", r, rt.Epoch(), epochs)
				}
				if got := paramHash(rt.Model); got != want {
					t.Fatalf("rank %d replica %s != rank 0 %s", r, got, want)
				}
			}
			sizes := make([]int, len(rep.Worlds))
			for i, m := range rep.Worlds {
				sizes[i] = len(m)
			}
			if !reflect.DeepEqual(sizes, []int{4, 3, 2}) {
				t.Fatalf("world sizes %v, want [4 3 2]", sizes)
			}
			waitNoLeaks(t, before)
		})
	}
}
