package elastic

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// The elastic rendezvous. Classic DialTCP bootstrap assumes rank 0 is
// alive and serves exactly once; an elastic cohort can lose any rank —
// including rank 0 — and must re-rendezvous after every death. The protocol
// here adds two things on top: a deterministic successor election (every
// rank has a well-known candidate address; a rank serves on its own
// candidate only if no lower-ranked candidate answers, so the
// lowest-ranked live rank always ends up serving), and a generation
// consensus (each registrant reports the newest checkpoint generation it
// holds; the server answers with the minimum, which is the newest state
// EVERY rank can actually load).
//
// Wire protocol, one line each way:
//
//	client → server: "EJOIN <rank> <dataAddr> <latestGen>\n"
//	server → client: "ETAB <startGen> <addr0> ... <addrk-1>\n"  (success)
//	                 "ERETRY\n"  (round timed out incomplete; re-probe)
//	                 "EERR <reason>\n"  (misconfigured client; give up)
//
// A server whose round times out before the cohort completes tells its
// registrants to retry and goes back to probing — so when a lower-ranked
// candidate (a replacement rank 0) comes up late, the interim server and
// its registrants all converge onto it instead of wedging in two partial
// rendezvous.
const (
	probeTimeout = 300 * time.Millisecond
	roundTimeout = 3 * time.Second
	// staggerUnit spaces out when ranks give up probing and start serving:
	// rank r waits r*staggerUnit before opening its own candidate listener,
	// which keeps a transient rank-0 slowdown from electing a higher rank.
	staggerUnit = 300 * time.Millisecond
)

// debugf is a test hook for tracing rendezvous rounds; a no-op in production.
var debugf = func(format string, args ...any) {}

// table is what a completed rendezvous agrees on.
type table struct {
	startGen int      // newest checkpoint generation every rank holds
	addrs    []string // data listener address per rank
}

// LoopbackCandidates returns the default candidate set for a single-host
// cohort: port base+r on host for rank r.
func LoopbackCandidates(host string, basePort, world int) []string {
	out := make([]string, world)
	for r := range out {
		out[r] = net.JoinHostPort(host, strconv.Itoa(basePort+r))
	}
	return out
}

// bootstrap runs the elastic rendezvous for one rank until it has a
// complete table or the deadline passes.
func bootstrap(rank, world int, cands []string, dataAddr string, myGen int, deadline time.Time) (*table, error) {
	if len(cands) != world {
		return nil, fmt.Errorf("elastic: rank %d: %d rendezvous candidates for world %d", rank, len(cands), world)
	}
	if world == 1 {
		return &table{startGen: myGen, addrs: []string{dataAddr}}, nil
	}
	begin := time.Now()
	// ln is our candidate listener. It stays open across consecutive serve
	// rounds — closing it between rounds opens a gap that probing peers can
	// hit, and when every rank's 3s rounds synchronize (as they do after a
	// shared ERETRY) those gaps line up into a livelock where nobody ever
	// finds anybody serving. It is closed only when we go back to probing
	// lower-ranked candidates, i.e. when we are willing to defer. Rank 0
	// never probes, so the rank-0 listener is persistent: the deterministic
	// convergence target for the whole cohort.
	var ln net.Listener
	defer func() {
		if ln != nil {
			ln.Close()
		}
	}()
	for time.Now().Before(deadline) {
		// Probe lower-ranked candidates in order: the lowest live one wins.
		// Stop serving first — holding our listener while deferring would trap
		// higher-ranked registrants in a round we no longer intend to finish.
		if rank > 0 && ln != nil {
			ln.Close()
			ln = nil
		}
		for c := 0; c < rank; c++ {
			// Stick with a live candidate across ERETRYs: the server answering
			// ERETRY is alive and will serve the next round too, so going off
			// to serve our own round instead just splits the cohort across two
			// servers — the registrants swap at synchronized round boundaries
			// and no round ever completes.
			for time.Now().Before(deadline) {
				tbl, alive, err := register(cands[c], rank, world, dataAddr, myGen)
				if tbl != nil {
					return tbl, nil
				}
				if err != nil {
					return nil, err // EERR: misconfiguration, retrying won't help
				}
				if !alive {
					break
				}
				debugf("rank %d: cand %d is alive but round incomplete; re-registering", rank, c)
			}
			debugf("rank %d: probe cand %d: no table", rank, c)
		}
		// No lower candidate is serving. Serve on our own candidate once our
		// stagger has elapsed; until then, yield so a slow lower rank can win.
		if time.Since(begin) >= time.Duration(rank)*staggerUnit {
			if ln == nil {
				var err error
				if ln, err = net.Listen("tcp", cands[rank]); err != nil {
					// Our candidate address is occupied or otherwise unusable
					// right now (a predecessor's listener in TIME_WAIT, a stale
					// process); back off and re-probe rather than giving up.
					debugf("rank %d: cannot serve on %s: %v", rank, cands[rank], err)
					time.Sleep(probeTimeout)
					continue
				}
			}
			debugf("rank %d: serving round on %s", rank, cands[rank])
			tbl := serveRound(ln, rank, world, dataAddr, myGen, deadline)
			debugf("rank %d: round done tbl=%v", rank, tbl != nil)
			if tbl != nil {
				return tbl, nil
			}
		} else {
			time.Sleep(probeTimeout / 3)
		}
	}
	return nil, fmt.Errorf("elastic: rank %d: rendezvous incomplete after %v: no full cohort of %d ranks assembled (candidates %v)",
		rank, time.Since(begin).Round(time.Millisecond), world, cands)
}

// register dials a candidate and tries to join its round. Returns a table
// on success. alive reports whether a live server answered ERETRY (the
// caller should re-register with it rather than serve its own round); it is
// false when the candidate is unreachable or died mid-round. A non-nil
// error is a permanent EERR rejection — retrying won't help.
func register(cand string, rank, world int, dataAddr string, myGen int) (tbl *table, alive bool, err error) {
	conn, err := net.DialTimeout("tcp", cand, probeTimeout)
	if err != nil {
		return nil, false, nil // not serving (yet) — caller moves on
	}
	defer conn.Close()
	// The server holds registrations until its round completes or times
	// out, so allow a full round plus slack before declaring it wedged.
	conn.SetDeadline(time.Now().Add(roundTimeout + 2*time.Second))
	if _, err := fmt.Fprintf(conn, "EJOIN %d %s %d\n", rank, dataAddr, myGen); err != nil {
		return nil, false, nil
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return nil, false, nil // server died or timed us out mid-round; re-probe
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "ERETRY":
		return nil, true, nil
	case strings.HasPrefix(line, "EERR "):
		return nil, false, fmt.Errorf("elastic: rank %d: rendezvous %s rejected registration: %s", rank, cand, line[len("EERR "):])
	}
	fields := strings.Fields(line)
	if len(fields) != world+2 || fields[0] != "ETAB" {
		return nil, false, fmt.Errorf("elastic: rank %d: malformed rendezvous table %q", rank, line)
	}
	start, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, false, fmt.Errorf("elastic: rank %d: malformed start generation in %q", rank, line)
	}
	return &table{startGen: start, addrs: fields[2:]}, true, nil
}

// serveRound serves one rendezvous round on the caller's candidate
// listener: collect a registration from every other rank, agree on
// min(gen), broadcast the table. If the round times out incomplete,
// registrants get ERETRY and the caller decides whether to probe or serve
// another round; the listener stays open either way (see bootstrap).
// Returns nil for a round that did not complete.
func serveRound(ln net.Listener, rank, world int, dataAddr string, myGen int, overall time.Time) *table {
	roundDL := time.Now().Add(roundTimeout)
	if roundDL.After(overall) {
		roundDL = overall
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(roundDL)
	}
	addrs := make([]string, world)
	gens := make([]int, world)
	conns := make([]net.Conn, world)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	addrs[rank], gens[rank] = dataAddr, myGen
	have := 1
	for have < world {
		conn, err := ln.Accept()
		if err != nil {
			// Round timed out incomplete: release the registrants to re-probe.
			for _, c := range conns {
				if c != nil {
					fmt.Fprint(c, "ERETRY\n")
				}
			}
			return nil
		}
		conn.SetDeadline(roundDL.Add(time.Second))
		var r, gen int
		var addr string
		if _, err := fmt.Fscanf(bufio.NewReader(conn), "EJOIN %d %s %d\n", &r, &addr, &gen); err != nil {
			fmt.Fprintf(conn, "EERR malformed elastic hello: %v\n", err)
			conn.Close()
			continue
		}
		if r < 0 || r >= world {
			fmt.Fprintf(conn, "EERR rank %d outside [0,%d) — check -rank/-world against the cohort\n", r, world)
			conn.Close()
			continue
		}
		if r == rank {
			fmt.Fprintf(conn, "EERR rank %d is already serving this rendezvous — two processes claim the same rank\n", r)
			conn.Close()
			continue
		}
		if conns[r] != nil {
			// Latest registration wins: the old connection belongs to a
			// client that gave up, died, or redialed across generations.
			conns[r].Close()
			have--
		}
		conns[r], addrs[r], gens[r] = conn, addr, gen
		have++
	}
	start := gens[0]
	for _, g := range gens[1:] {
		if g < start {
			start = g
		}
	}
	line := "ETAB " + strconv.Itoa(start) + " " + strings.Join(addrs, " ") + "\n"
	for _, c := range conns {
		if c == nil {
			continue
		}
		if _, err := c.Write([]byte(line)); err != nil {
			return nil // a registrant died mid-broadcast; rerun the round
		}
	}
	return &table{startGen: start, addrs: addrs}
}
