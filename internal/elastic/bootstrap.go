package elastic

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// The elastic rendezvous. Classic DialTCP bootstrap assumes rank 0 is
// alive and serves exactly once; an elastic cohort can lose any rank —
// including rank 0 — and must re-rendezvous after every death. The protocol
// here adds three things on top: a deterministic successor election (every
// rank has a well-known candidate address; a rank serves on its own
// candidate only if no lower-ranked candidate answers, so the
// lowest-ranked live rank always ends up serving), a generation consensus
// (each registrant reports the newest checkpoint generation it holds; the
// server answers with the minimum, which is the newest state EVERY rank can
// actually load), and — when resizing is enabled — a world-shrink election:
// a server whose rounds keep timing out with the same stable partial cohort
// eventually completes the round with just those members, electing the
// smaller world that trains on without the dead ranks.
//
// Wire protocol, one line each way:
//
//	client → server: "EJOIN <slot> <dataAddr> <latestGen>\n"
//	server → client: "ETAB <startGen> <m> <slot0> <addr0> ... <slot_{m-1}> <addr_{m-1}>\n"
//	                 "ERETRY\n"  (round timed out incomplete; re-probe)
//	                 "EERR <reason>\n"  (misconfigured client; give up)
//
// Ranks in this protocol are SLOTS: the stable launch-time identities that
// name candidate addresses and checkpoint shards. The ETAB member list maps
// slots to data addresses; a shrunken world's mesh then runs on compact
// ranks 0..m-1 in member order, while slots keep naming files and
// candidates so a replacement can grow the world back.
//
// A server whose round times out before the cohort completes tells its
// registrants to retry and goes back to probing — so when a lower-ranked
// candidate (a replacement rank 0) comes up late, the interim server and
// its registrants all converge onto it instead of wedging in two partial
// rendezvous.
const (
	probeTimeout = 300 * time.Millisecond
	// defaultRoundTimeout and defaultStagger are the Config defaults for
	// RendezvousRound and ElectionStagger (see supervisor.go).
	defaultRoundTimeout = 3 * time.Second
	defaultStagger      = 300 * time.Millisecond
)

// debugf is a test hook for tracing rendezvous rounds; a no-op in production.
var debugf = func(format string, args ...any) {}

// table is what a completed rendezvous agrees on.
type table struct {
	startGen int      // newest checkpoint generation every member holds
	members  []int    // sorted live slots; the full world when nothing shrank
	addrs    []string // data listener address per member, in member order
}

// bootConfig parameterizes one rank's rendezvous attempt.
type bootConfig struct {
	rank     int // this rank's slot
	world    int // full (launch-time) world size
	cands    []string
	dataAddr string
	myGen    int
	// rejoin marks a replacement re-admitting itself into a possibly
	// running cohort: it probes EVERY candidate (not just lower-ranked
	// ones), because the shrunken cohort's growth listener lives on the
	// lowest LIVE slot's candidate — which may be above ours.
	rejoin bool
	// stagger spaces out when ranks give up probing and start serving:
	// rank r waits r*stagger before opening its own candidate listener,
	// which keeps a transient rank-0 slowdown from electing a higher rank.
	// Zero means defaultStagger.
	stagger time.Duration
	// round is the per-round collection window; zero means
	// defaultRoundTimeout.
	round time.Duration
	// resizeAfter, when positive, lets a serving rank complete a round with
	// a PARTIAL cohort (at least two members) after that many consecutive
	// rounds timed out with the same stable roster — the permanent-loss
	// path. Zero keeps the PR-6 behavior: wait for the full world forever.
	resizeAfter int
	deadline    time.Time
}

func (bc *bootConfig) norm() {
	if bc.stagger <= 0 {
		bc.stagger = defaultStagger
	}
	if bc.round <= 0 {
		bc.round = defaultRoundTimeout
	}
}

// fullMembers is the identity member set [0, world).
func fullMembers(world int) []int {
	m := make([]int, world)
	for i := range m {
		m[i] = i
	}
	return m
}

// resizeState tracks roster stability across consecutive incomplete serve
// rounds. It lives in bootstrap (not serveRound) so the count survives
// round boundaries, and resets whenever we stop serving to probe — a
// deferral means the cohort is reshaping and no stability has been shown.
type resizeState struct {
	roster string // canonical slot list of the last incomplete round
	stable int    // consecutive incomplete rounds with that roster
}

// LoopbackCandidates returns the default candidate set for a single-host
// cohort: port base+r on host for rank r.
func LoopbackCandidates(host string, basePort, world int) []string {
	out := make([]string, world)
	for r := range out {
		out[r] = net.JoinHostPort(host, strconv.Itoa(basePort+r))
	}
	return out
}

// bootstrap runs the elastic rendezvous for one rank until it has a
// complete table or the deadline passes.
func bootstrap(bc bootConfig) (*table, error) {
	bc.norm()
	if len(bc.cands) != bc.world {
		return nil, fmt.Errorf("elastic: rank %d: %d rendezvous candidates for world %d", bc.rank, len(bc.cands), bc.world)
	}
	if bc.world == 1 {
		return &table{startGen: bc.myGen, members: []int{0}, addrs: []string{bc.dataAddr}}, nil
	}
	begin := time.Now()
	// ln is our candidate listener. It stays open across consecutive serve
	// rounds — closing it between rounds opens a gap that probing peers can
	// hit, and when every rank's rounds synchronize (as they do after a
	// shared ERETRY) those gaps line up into a livelock where nobody ever
	// finds anybody serving. It is closed only when we go back to probing
	// lower-ranked candidates, i.e. when we are willing to defer. Rank 0
	// never probes, so the rank-0 listener is persistent: the deterministic
	// convergence target for the whole cohort.
	var ln net.Listener
	defer func() {
		if ln != nil {
			ln.Close()
		}
	}()
	var rs resizeState
	for time.Now().Before(bc.deadline) {
		// Probe lower-ranked candidates in order: the lowest live one wins.
		// A rejoining replacement probes every candidate instead — the
		// running cohort it wants back into answers on the lowest LIVE
		// slot's candidate, which may be any of them. Stop serving first —
		// holding our listener while deferring would trap higher-ranked
		// registrants in a round we no longer intend to finish.
		probeUpTo := bc.rank
		if bc.rejoin {
			probeUpTo = bc.world
		}
		for c := 0; c < probeUpTo; c++ {
			if c == bc.rank {
				continue
			}
			if ln != nil {
				ln.Close()
				ln = nil
				rs = resizeState{}
			}
			// Stick with a live candidate across ERETRYs: the server answering
			// ERETRY is alive and will serve the next round too, so going off
			// to serve our own round instead just splits the cohort across two
			// servers — the registrants swap at synchronized round boundaries
			// and no round ever completes.
			for time.Now().Before(bc.deadline) {
				tbl, alive, err := register(&bc, bc.cands[c])
				if tbl != nil {
					return tbl, nil
				}
				if err != nil {
					return nil, err // EERR: misconfiguration, retrying won't help
				}
				if !alive {
					break
				}
				debugf("rank %d: cand %d is alive but round incomplete; re-registering", bc.rank, c)
			}
			debugf("rank %d: probe cand %d: no table", bc.rank, c)
		}
		// No lower candidate is serving. Serve on our own candidate once our
		// stagger has elapsed; until then, yield so a slow lower rank can win.
		if time.Since(begin) >= time.Duration(bc.rank)*bc.stagger {
			if ln == nil {
				var err error
				if ln, err = net.Listen("tcp", bc.cands[bc.rank]); err != nil {
					// Our candidate address is occupied or otherwise unusable
					// right now (a predecessor's listener in TIME_WAIT, a stale
					// process); back off and re-probe rather than giving up.
					debugf("rank %d: cannot serve on %s: %v", bc.rank, bc.cands[bc.rank], err)
					time.Sleep(probeTimeout)
					continue
				}
				rs = resizeState{}
			}
			debugf("rank %d: serving round on %s", bc.rank, bc.cands[bc.rank])
			tbl := serveRound(ln, &bc, &rs, bc.deadline)
			debugf("rank %d: round done tbl=%v", bc.rank, tbl != nil)
			if tbl != nil {
				return tbl, nil
			}
		} else {
			time.Sleep(probeTimeout / 3)
		}
	}
	if bc.resizeAfter > 0 {
		return nil, fmt.Errorf("elastic: rank %d: rendezvous incomplete after %v: no cohort of even 2 live ranks stabilized (world %d, candidates %v) — a lone survivor cannot elect a smaller world",
			bc.rank, time.Since(begin).Round(time.Millisecond), bc.world, bc.cands)
	}
	return nil, fmt.Errorf("elastic: rank %d: rendezvous incomplete after %v: no full cohort of %d ranks assembled (candidates %v)",
		bc.rank, time.Since(begin).Round(time.Millisecond), bc.world, bc.cands)
}

// register dials a candidate and tries to join its round. Returns a table
// on success. alive reports whether a live server answered ERETRY (the
// caller should re-register with it rather than serve its own round); it is
// false when the candidate is unreachable or died mid-round. A non-nil
// error is a permanent EERR rejection — retrying won't help.
func register(bc *bootConfig, cand string) (tbl *table, alive bool, err error) {
	conn, err := net.DialTimeout("tcp", cand, probeTimeout)
	if err != nil {
		return nil, false, nil // not serving (yet) — caller moves on
	}
	defer conn.Close()
	// The server holds registrations until its round completes or times
	// out, so allow a full round plus slack before declaring it wedged.
	conn.SetDeadline(time.Now().Add(bc.round + 2*time.Second))
	if _, err := fmt.Fprintf(conn, "EJOIN %d %s %d\n", bc.rank, bc.dataAddr, bc.myGen); err != nil {
		return nil, false, nil
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return nil, false, nil // server died or timed us out mid-round; re-probe
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "ERETRY":
		return nil, true, nil
	case strings.HasPrefix(line, "EERR "):
		return nil, false, fmt.Errorf("elastic: rank %d: rendezvous %s rejected registration: %s", bc.rank, cand, line[len("EERR "):])
	}
	tbl, err = parseTable(line, bc.world)
	if err != nil {
		return nil, false, fmt.Errorf("elastic: rank %d: %v", bc.rank, err)
	}
	if indexOf(tbl.members, bc.rank) < 0 {
		// Cannot happen with a well-behaved server (we registered in this
		// round), but a table that excludes us is unusable — fail loudly
		// rather than dial a mesh we have no seat in.
		return nil, false, fmt.Errorf("elastic: rank %d: rendezvous table %v excludes this rank", bc.rank, tbl.members)
	}
	return tbl, true, nil
}

// parseTable decodes an ETAB line into a table.
func parseTable(line string, world int) (*table, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[0] != "ETAB" {
		return nil, fmt.Errorf("malformed rendezvous table %q", line)
	}
	start, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("malformed start generation in %q", line)
	}
	m, err := strconv.Atoi(fields[2])
	if err != nil || m < 1 || m > world || len(fields) != 3+2*m {
		return nil, fmt.Errorf("malformed member list in %q", line)
	}
	tbl := &table{startGen: start, members: make([]int, m), addrs: make([]string, m)}
	for i := 0; i < m; i++ {
		slot, err := strconv.Atoi(fields[3+2*i])
		if err != nil || slot < 0 || slot >= world {
			return nil, fmt.Errorf("malformed member slot in %q", line)
		}
		if i > 0 && tbl.members[i-1] >= slot {
			return nil, fmt.Errorf("member slots not ascending in %q", line)
		}
		tbl.members[i] = slot
		tbl.addrs[i] = fields[4+2*i]
	}
	return tbl, nil
}

// indexOf returns the position of slot in members, or -1.
func indexOf(members []int, slot int) int {
	for i, m := range members {
		if m == slot {
			return i
		}
	}
	return -1
}

// serveRound serves one rendezvous round on the caller's candidate
// listener: collect a registration from every other rank, agree on
// min(gen), broadcast the table. If the round times out incomplete,
// registrants get ERETRY and the caller decides whether to probe or serve
// another round; the listener stays open either way (see bootstrap). When
// resizing is enabled and the same partial roster (≥2 members) has timed
// out resizeAfter consecutive rounds, the round completes with just those
// members — the survivors elect the smaller world. Returns nil for a round
// that did not complete.
func serveRound(ln net.Listener, bc *bootConfig, rs *resizeState, overall time.Time) *table {
	roundDL := time.Now().Add(bc.round)
	if roundDL.After(overall) {
		roundDL = overall
	}
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(roundDL)
	}
	addrs := make([]string, bc.world)
	gens := make([]int, bc.world)
	conns := make([]net.Conn, bc.world)
	defer func() {
		for _, c := range conns {
			if c != nil {
				c.Close()
			}
		}
	}()
	addrs[bc.rank], gens[bc.rank] = bc.dataAddr, bc.myGen
	have := 1
	for have < bc.world {
		conn, err := ln.Accept()
		if err != nil {
			// Round timed out incomplete. With resizing enabled, a roster
			// that has held stable through enough consecutive rounds IS the
			// new world: the missing slots are dead, not slow. A lone rank
			// never self-elects — a net split that isolates one survivor
			// must not fork a one-rank "cohort" that trains on alone.
			roster := rosterKey(bc.rank, conns)
			if bc.resizeAfter > 0 && have >= 2 {
				if roster == rs.roster {
					rs.stable++
				} else {
					rs.roster, rs.stable = roster, 1
				}
				debugf("rank %d: incomplete round, roster %s stable for %d/%d", bc.rank, roster, rs.stable, bc.resizeAfter)
				if rs.stable >= bc.resizeAfter {
					rs.roster, rs.stable = "", 0
					return finishRound(bc, conns, addrs, gens)
				}
			} else {
				rs.roster, rs.stable = roster, 0
			}
			for _, c := range conns {
				if c != nil {
					fmt.Fprint(c, "ERETRY\n")
				}
			}
			return nil
		}
		conn.SetDeadline(roundDL.Add(time.Second))
		var r, gen int
		var addr string
		if _, err := fmt.Fscanf(bufio.NewReader(conn), "EJOIN %d %s %d\n", &r, &addr, &gen); err != nil {
			fmt.Fprintf(conn, "EERR malformed elastic hello: %v\n", err)
			conn.Close()
			continue
		}
		if r < 0 || r >= bc.world {
			fmt.Fprintf(conn, "EERR rank %d outside [0,%d) — check -rank/-world against the cohort\n", r, bc.world)
			conn.Close()
			continue
		}
		if r == bc.rank {
			fmt.Fprintf(conn, "EERR rank %d is already serving this rendezvous — two processes claim the same rank\n", r)
			conn.Close()
			continue
		}
		if conns[r] != nil {
			// Latest registration wins: the old connection belongs to a
			// client that gave up, died, or redialed across generations.
			conns[r].Close()
			have--
		}
		conns[r], addrs[r], gens[r] = conn, addr, gen
		have++
	}
	rs.roster, rs.stable = "", 0
	return finishRound(bc, conns, addrs, gens)
}

// rosterKey canonicalizes the current registrant set (plus the server
// itself) for stability comparison across rounds.
func rosterKey(rank int, conns []net.Conn) string {
	var b strings.Builder
	for r := range conns {
		if r == rank || conns[r] != nil {
			fmt.Fprintf(&b, "%d,", r)
		}
	}
	return b.String()
}

// finishRound computes the member table from whoever is registered (the
// full world on the normal path, the stable survivors on the resize path),
// broadcasts it, and returns it. Returns nil if a registrant died
// mid-broadcast — the cohort has changed and the round must rerun.
func finishRound(bc *bootConfig, conns []net.Conn, addrs []string, gens []int) *table {
	var members []int
	for r := 0; r < bc.world; r++ {
		if r == bc.rank || conns[r] != nil {
			members = append(members, r)
		}
	}
	start := gens[members[0]]
	for _, m := range members[1:] {
		if gens[m] < start {
			start = gens[m]
		}
	}
	maddrs := make([]string, len(members))
	parts := make([]string, 0, 3+2*len(members))
	parts = append(parts, "ETAB", strconv.Itoa(start), strconv.Itoa(len(members)))
	for i, m := range members {
		maddrs[i] = addrs[m]
		parts = append(parts, strconv.Itoa(m), addrs[m])
	}
	line := strings.Join(parts, " ") + "\n"
	for _, c := range conns {
		if c == nil {
			continue
		}
		if _, err := c.Write([]byte(line)); err != nil {
			return nil // a registrant died mid-broadcast; rerun the round
		}
	}
	if len(members) < bc.world {
		debugf("rank %d: elected shrunken world %v at gen %d", bc.rank, members, start)
	}
	return &table{startGen: start, members: members, addrs: maddrs}
}
