package elastic

import (
	"fmt"
	"net"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// RunnerConfig configures the per-process elastic loop. One process runs
// exactly one rank; a replacement process started with the dead rank's
// number (cmd/bnsgcn -join) runs the same loop and is indistinguishable
// from a survivor once admitted.
type RunnerConfig struct {
	Config
	Rank  int
	World int
	// Candidates is the rendezvous candidate address per rank (see
	// bootstrap.go): every process must agree on this list. cmd/bnsgcn
	// builds it from -hosts or defaults to loopback ports.
	Candidates []string
	// ListenHost is the interface the data listener binds and advertises;
	// on multi-host setups it must be this machine's externally reachable
	// address (loopback default only works single-host).
	ListenHost string
	// Timeout bounds each bootstrap (rendezvous + mesh dial).
	Timeout time.Duration
	// HeartbeatInterval/HeartbeatTimeout arm the wedged-peer detector on
	// the mesh (comm.TCPConfig); zero disables it and only closed
	// connections are detected.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// NewTrainer constructs this rank's trainer from scratch; called afresh
	// on every bootstrap, like the Supervisor's.
	NewTrainer func(rank int) (*core.RankTrainer, error)
	// OnEpoch, when set, observes every completed epoch (progress logging,
	// test instrumentation).
	OnEpoch func(rt *core.RankTrainer, st core.RankStats)
}

// Run executes this rank's elastic training loop: bootstrap (elect a
// rendezvous server, agree on the address table and the resume generation),
// mesh, reload, train with periodic checkpoints — and on a peer's death,
// tear everything down and do it again. It returns the trainer at
// Cfg.Epochs and the recovery report.
func Run(cfg RunnerConfig) (*core.RankTrainer, Report, error) {
	var rep Report
	if err := cfg.validate(); err != nil {
		return nil, rep, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	for {
		rt, startGen, err := runGeneration(&cfg)
		if err == nil {
			rep.StartGens = append(rep.StartGens, startGen)
			return rt, rep, nil
		}
		if startGen >= 0 {
			rep.StartGens = append(rep.StartGens, startGen)
		}
		if !recoverable(err) {
			return nil, rep, err
		}
		rep.Recoveries++
		rep.Failures = append(rep.Failures, err)
		if rep.Recoveries > cfg.MaxRecoveries {
			return nil, rep, fmt.Errorf("elastic: rank %d: giving up after %d recoveries: %w", cfg.Rank, rep.Recoveries-1, err)
		}
	}
}

// meshError marks bootstrap/mesh failures that are worth retrying — the
// cohort may simply not have reassembled yet (a replacement still starting,
// a peer tearing down its old listener). It satisfies recoverable() by
// carrying a *comm.TransportError.
func meshError(rank int, err error) error {
	return &comm.TransportError{Rank: rank, Err: err}
}

// runGeneration runs one bootstrap-train cycle. The returned generation is
// the one the cohort agreed to resume from, or -1 if the failure happened
// before agreement.
func runGeneration(cfg *RunnerConfig) (*core.RankTrainer, int, error) {
	deadline := time.Now().Add(cfg.Timeout)

	// The data listener binds before rendezvous — its address is what we
	// advertise in the registration.
	dataLn, err := net.Listen("tcp", net.JoinHostPort(cfg.ListenHost, "0"))
	if err != nil {
		return nil, -1, fmt.Errorf("elastic: rank %d: data listener: %w", cfg.Rank, err)
	}
	myGen := LatestValidGen(cfg.Dir, cfg.Rank)
	tbl, err := bootstrap(cfg.Rank, cfg.World, cfg.Candidates, dataLn.Addr().String(), myGen, deadline)
	if err != nil {
		dataLn.Close()
		return nil, -1, err
	}
	tp, err := comm.DialTCPMesh(comm.TCPConfig{
		Rank:              cfg.Rank,
		World:             cfg.World,
		ListenHost:        cfg.ListenHost,
		Timeout:           time.Until(deadline),
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
	}, dataLn, tbl.addrs) // DialTCPMesh closes dataLn
	if err != nil {
		// The table went stale between agreement and mesh (another rank died
		// in the window, or a partial broadcast) — retry the bootstrap.
		return nil, tbl.startGen, meshError(cfg.Rank, fmt.Errorf("mesh dial failed: %w", err))
	}

	rt, err := cfg.NewTrainer(cfg.Rank)
	if err != nil {
		tp.Close()
		return nil, tbl.startGen, err
	}
	if err := LoadGeneration(cfg.Dir, tbl.startGen, rt); err != nil {
		tp.Close()
		return nil, tbl.startGen, fmt.Errorf("elastic: rank %d: load gen %d: %w", cfg.Rank, tbl.startGen, err)
	}
	// Bootstrap-time GC, scoped to this rank's own files: peers share the
	// directory and may not have torn down yet, so only our .tmp residue and
	// our generations older than the agreed consensus are swept.
	if _, err := CleanupTmp(cfg.Dir, cfg.Rank); err != nil {
		tp.Close()
		return nil, tbl.startGen, fmt.Errorf("elastic: rank %d: tmp cleanup: %w", cfg.Rank, err)
	}
	if _, err := PruneGenerations(cfg.Dir, cfg.Rank, cfg.KeepGenerations, tbl.startGen); err != nil {
		tp.Close()
		return nil, tbl.startGen, fmt.Errorf("elastic: rank %d: checkpoint GC: %w", cfg.Rank, err)
	}

	w := comm.NewWorker(tp)
	if err := trainRank(&cfg.Config, rt, w, tbl.startGen, cfg.OnEpoch); err != nil {
		tp.Close()
		return nil, tbl.startGen, err
	}
	// Drain in lockstep so no rank tears down while a peer still trains.
	if err := barrier(w); err != nil {
		tp.Close()
		return nil, tbl.startGen, err
	}
	if err := tp.Close(); err != nil {
		return nil, tbl.startGen, err
	}
	return rt, tbl.startGen, nil
}

// barrier runs the final synchronization, converting the transport panic a
// dying peer causes into an error the recovery loop can absorb.
func barrier(w *comm.Worker) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("elastic: final barrier: %w", e)
			} else {
				err = fmt.Errorf("elastic: final barrier: %v", r)
			}
		}
	}()
	w.Barrier()
	return nil
}
