package elastic

import (
	"fmt"
	"net"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
)

// RunnerConfig configures the per-process elastic loop. One process runs
// exactly one rank; a replacement process started with the dead rank's
// number (cmd/bnsgcn -join) runs the same loop and is indistinguishable
// from a survivor once admitted.
type RunnerConfig struct {
	Config
	// Rank is this process's SLOT: its stable launch-time identity, naming
	// its rendezvous candidate and its checkpoint shards. On a shrunken
	// world the mesh rank is the slot's index in the agreed member set.
	Rank  int
	World int
	// Candidates is the rendezvous candidate address per rank (see
	// bootstrap.go): every process must agree on this list. cmd/bnsgcn
	// builds it from -hosts or defaults to loopback ports.
	Candidates []string
	// ListenHost is the interface the data listener binds and advertises;
	// on multi-host setups it must be this machine's externally reachable
	// address (loopback default only works single-host).
	ListenHost string
	// Timeout bounds each bootstrap (rendezvous + mesh dial).
	Timeout time.Duration
	// HeartbeatInterval/HeartbeatTimeout arm the wedged-peer detector on
	// the mesh (comm.TCPConfig); zero disables it and only closed
	// connections are detected.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// Rejoin marks a replacement re-admitting itself into a possibly
	// running cohort (cmd/bnsgcn -join): it probes every rendezvous
	// candidate — a shrunken cohort answers on the lowest LIVE slot, which
	// may be above ours — and reports the newest generation ANY slot holds,
	// since its own shard files are stale.
	Rejoin bool
	// NewTrainer constructs this slot's trainer for the given member set
	// (k' = len(members), compact mesh rank = index of slot in members);
	// called afresh on every bootstrap, like the Supervisor's. On a
	// full-strength world members is simply [0, World).
	NewTrainer func(members []int, slot int) (*core.RankTrainer, error)
	// OnEpoch, when set, observes every completed epoch (progress logging,
	// test instrumentation).
	OnEpoch func(rt *core.RankTrainer, st core.RankStats)
}

// Run executes this rank's elastic training loop: bootstrap (elect a
// rendezvous server, agree on the member table and the resume generation),
// mesh, reload, train with periodic checkpoints — and on a peer's death,
// tear everything down and do it again. With Config.ResizeAfter set, a
// bootstrap that can't reassemble the full world completes with the stable
// survivors instead: they fold the dead slots' rows into their own
// partitions (the members-aware NewTrainer) and train on at k'; while
// shrunken, the lowest live slot keeps a growth listener on its rendezvous
// candidate, so a late replacement's knock aborts the small mesh and the
// next bootstrap reassembles the full world, shedding the absorbed rows
// back. Returns the trainer at Cfg.Epochs and the recovery report.
func Run(cfg RunnerConfig) (*core.RankTrainer, Report, error) {
	var rep Report
	if err := cfg.validate(); err != nil {
		return nil, rep, err
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.ListenHost == "" {
		cfg.ListenHost = "127.0.0.1"
	}
	for {
		rt, startGen, members, err := runGeneration(&cfg)
		if members != nil {
			rep.Worlds = append(rep.Worlds, members)
		}
		if err == nil {
			rep.StartGens = append(rep.StartGens, startGen)
			return rt, rep, nil
		}
		if startGen >= 0 {
			rep.StartGens = append(rep.StartGens, startGen)
		}
		if !recoverable(err) {
			return nil, rep, err
		}
		rep.Recoveries++
		rep.Failures = append(rep.Failures, err)
		if rep.Recoveries > cfg.MaxRecoveries {
			return nil, rep, fmt.Errorf("elastic: rank %d: giving up after %d recoveries: %w", cfg.Rank, rep.Recoveries-1, err)
		}
	}
}

// meshError marks bootstrap/mesh failures that are worth retrying — the
// cohort may simply not have reassembled yet (a replacement still starting,
// a peer tearing down its old listener). It satisfies recoverable() by
// carrying a *comm.TransportError.
func meshError(rank int, err error) error {
	return &comm.TransportError{Rank: rank, Err: err}
}

// runGeneration runs one bootstrap-train cycle. The returned generation is
// the one the cohort agreed to resume from (-1 if the failure happened
// before agreement), and members is the slot set the cohort agreed to train
// as (nil before agreement).
func runGeneration(cfg *RunnerConfig) (*core.RankTrainer, int, []int, error) {
	deadline := time.Now().Add(cfg.Timeout)

	// The data listener binds before rendezvous — its address is what we
	// advertise in the registration.
	dataLn, err := net.Listen("tcp", net.JoinHostPort(cfg.ListenHost, "0"))
	if err != nil {
		return nil, -1, nil, fmt.Errorf("elastic: rank %d: data listener: %w", cfg.Rank, err)
	}
	myGen := LatestValidGen(cfg.Dir, cfg.Rank)
	if cfg.Rejoin {
		if a := LatestValidGenAny(cfg.Dir); a > myGen {
			myGen = a
		}
	}
	tbl, err := bootstrap(bootConfig{
		rank:        cfg.Rank,
		world:       cfg.World,
		cands:       cfg.Candidates,
		dataAddr:    dataLn.Addr().String(),
		myGen:       myGen,
		rejoin:      cfg.Rejoin,
		stagger:     cfg.ElectionStagger,
		round:       cfg.RendezvousRound,
		resizeAfter: cfg.ResizeAfter,
		deadline:    deadline,
	})
	if err != nil {
		dataLn.Close()
		return nil, -1, nil, err
	}
	myIdx := indexOf(tbl.members, cfg.Rank)
	if myIdx < 0 {
		dataLn.Close()
		return nil, tbl.startGen, tbl.members, fmt.Errorf("elastic: rank %d: agreed member set %v has no seat for this rank", cfg.Rank, tbl.members)
	}
	tp, err := comm.DialTCPMesh(comm.TCPConfig{
		Rank:              myIdx,
		World:             len(tbl.members),
		ListenHost:        cfg.ListenHost,
		Timeout:           time.Until(deadline),
		HeartbeatInterval: cfg.HeartbeatInterval,
		HeartbeatTimeout:  cfg.HeartbeatTimeout,
	}, dataLn, tbl.addrs) // DialTCPMesh closes dataLn
	if err != nil {
		// The table went stale between agreement and mesh (another rank died
		// in the window, or a partial broadcast) — retry the bootstrap.
		return nil, tbl.startGen, tbl.members, meshError(cfg.Rank, fmt.Errorf("mesh dial failed: %w", err))
	}

	rt, err := cfg.NewTrainer(tbl.members, cfg.Rank)
	if err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, err
	}
	donor, err := LoadGenerationAs(cfg.Dir, tbl.startGen, cfg.Rank, rt)
	if err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, fmt.Errorf("elastic: rank %d: load gen %d: %w", cfg.Rank, tbl.startGen, err)
	}
	if donor >= 0 && donor != cfg.Rank {
		debugf("rank %d: hydrated gen %d from slot %d's shard", cfg.Rank, tbl.startGen, donor)
	}
	if len(tbl.members) < cfg.World && tbl.startGen > 0 {
		// Shrunken resume: before training on rows absorbed from the dead
		// slots, cross-check the replica invariant against whatever final
		// shards the dead slots left behind.
		if err := verifyDeadShards(cfg, tbl.members, tbl.startGen, rt); err != nil {
			tp.Close()
			return nil, tbl.startGen, tbl.members, err
		}
	}
	// Bootstrap-time GC, scoped to this rank's own files: peers share the
	// directory and may not have torn down yet, so only our .tmp residue and
	// our generations older than the agreed consensus are swept.
	if _, err := CleanupTmp(cfg.Dir, cfg.Rank); err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, fmt.Errorf("elastic: rank %d: tmp cleanup: %w", cfg.Rank, err)
	}
	if _, err := PruneGenerations(cfg.Dir, cfg.Rank, cfg.KeepGenerations, tbl.startGen); err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, fmt.Errorf("elastic: rank %d: checkpoint GC: %w", cfg.Rank, err)
	}

	// While the world is shrunken, the lowest live slot keeps the door open
	// for replacements: a growth listener on its own rendezvous candidate.
	// An admit knock aborts the k' mesh (idempotent, safe from the watcher
	// goroutine), every survivor recovers, and the next bootstrap sees the
	// replacement. Failure to open the listener is not fatal — training at
	// k' proceeds; a replacement then only gets in after an organic failure.
	if len(tbl.members) < cfg.World && cfg.Rank == tbl.members[0] {
		gw, gerr := newGrowWatcher(cfg.Candidates[cfg.Rank], cfg.Rank, cfg.World, tbl.members, func(slot int) {
			tp.Abort()
		})
		if gerr != nil {
			debugf("rank %d: no growth listener: %v", cfg.Rank, gerr)
		} else {
			defer gw.Close()
		}
	}

	w := comm.NewWorker(tp)
	if err := trainRank(&cfg.Config, rt, w, tbl.startGen, cfg.Rank, cfg.OnEpoch); err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, err
	}
	// Drain in lockstep so no rank tears down while a peer still trains.
	if err := barrier(w); err != nil {
		tp.Close()
		return nil, tbl.startGen, tbl.members, err
	}
	if err := tp.Close(); err != nil {
		return nil, tbl.startGen, tbl.members, err
	}
	return rt, tbl.startGen, tbl.members, nil
}

// verifyDeadShards cross-checks the shrink-time replica invariant: the rows
// this rank absorbed carry model state that the dead slots last checkpointed
// too, because every shard of a generation stores the same replica weights.
// A mismatch means the shared checkpoint directory is skewed (mixed runs,
// partial copies) and training on it would silently diverge — a hard error,
// not a recovery. Dead slots that never wrote a verifying shard of this
// generation are skipped; there is nothing to check against.
func verifyDeadShards(cfg *RunnerConfig, members []int, gen int, rt *core.RankTrainer) error {
	for slot := 0; slot < cfg.World; slot++ {
		if indexOf(members, slot) >= 0 {
			continue
		}
		p := CheckpointPath(cfg.Dir, slot, gen)
		if core.VerifyTrainerCheckpointFile(p) != nil {
			continue
		}
		m, err := core.LoadModelFile(p)
		if err != nil {
			continue
		}
		if len(m.ParamVector()) != len(rt.Model.ParamVector()) {
			return fmt.Errorf("elastic: rank %d: dead slot %d's shard of generation %d has a different model shape: checkpoint directory %s mixes runs; refusing to train on absorbed rows", cfg.Rank, slot, gen, cfg.Dir)
		}
		if d := core.MaxParamDiff(m, rt.Model); d != 0 {
			return fmt.Errorf("elastic: rank %d: dead slot %d's shard of generation %d disagrees with the cohort's weights (max param diff %g): checkpoint directory %s is skewed; refusing to train on absorbed rows", cfg.Rank, slot, gen, d, cfg.Dir)
		}
	}
	return nil
}

// barrier runs the final synchronization, converting the transport panic a
// dying peer causes into an error the recovery loop can absorb.
func barrier(w *comm.Worker) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("elastic: final barrier: %w", e)
			} else {
				err = fmt.Errorf("elastic: final barrier: %v", r)
			}
		}
	}()
	w.Barrier()
	return nil
}
