package elastic

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"math"
	"net"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/partition"
)

// The recovery bit-exactness matrix: train(N) with a kill injected at a
// deterministic point, recover, and demand the final weights equal an
// uninterrupted train(N) bit for bit — over both backends, k ∈ {2,4},
// kills at an epoch boundary (rank 0 dies) and mid-epoch (rank k−1 dies
// between two halo sends). The config keeps dropout and boundary sampling
// on so every piece of checkpointed state matters.

func testFixture(t testing.TB, k int) (*datagen.Dataset, *core.Topology, core.ParallelConfig) {
	t.Helper()
	ds, _, topo, cfg := testFixtureParts(t, k)
	return ds, topo, cfg
}

// testFixtureParts additionally exposes the METIS assignment, which the
// resize tests need to fold dead slots' rows into the survivors.
func testFixtureParts(t testing.TB, k int) (*datagen.Dataset, []int32, *core.Topology, core.ParallelConfig) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "elastic-test", Nodes: 300, Communities: 4, AvgDegree: 8,
		IntraFrac: 0.8, DegreeSkew: 2.0, FeatureDim: 8,
		FeatureSignal: 0.5, FeatureNoise: 1.0,
		TrainFrac: 0.6, ValFrac: 0.2, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := (&partition.Metis{Seed: 1}).Partition(ds.G, k)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := core.BuildTopology(ds.G, parts, k)
	if err != nil {
		t.Fatal(err)
	}
	mc := core.ModelConfig{Arch: core.ArchSAGE, Layers: 2, Hidden: 16, Dropout: 0.3, LR: 0.01, Seed: 5}
	return ds, parts, topo, core.ParallelConfig{Model: mc, P: 0.5, SampleSeed: 11}
}

// memberFactory builds a members-aware trainer factory over the fixture: on
// the full member set it reuses the full topology; on a shrunken set it folds
// the dead slots' rows into the survivors (partition.ShrinkToMembers) and
// rebuilds the k' topology — the same layout rule cmd/bnsgcn uses.
func memberFactory(ds *datagen.Dataset, parts []int32, topo *core.Topology, cfg core.ParallelConfig, world int) func(members []int, slot int) (*core.RankTrainer, error) {
	return func(members []int, slot int) (*core.RankTrainer, error) {
		if len(members) == world {
			return core.NewRankTrainer(ds, topo, cfg, slot)
		}
		shrunk, err := partition.ShrinkToMembers(ds.G, parts, world, members)
		if err != nil {
			return nil, err
		}
		st, err := core.BuildTopology(ds.G, shrunk, len(members))
		if err != nil {
			return nil, err
		}
		return core.NewRankTrainer(ds, st, cfg, indexOf(members, slot))
	}
}

func paramHash(m *core.Model) string {
	h := sha256.New()
	for _, v := range m.ParamVector() {
		binary.Write(h, binary.LittleEndian, math.Float32bits(v))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// referenceHash trains the same configuration straight through in-process
// and hashes the (replica-identical) final weights.
func referenceHash(t testing.TB, k, epochs int) string {
	t.Helper()
	ds, topo, cfg := testFixture(t, k)
	ref, err := core.NewParallelTrainer(ds, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < epochs; e++ {
		ref.TrainEpoch()
	}
	return paramHash(ref.Models[0])
}

// tcpGroup bootstraps a k-rank loopback TCP group (no cleanup registration:
// the supervisor owns and closes the groups it gets).
func tcpGroup(t testing.TB, k int) (*comm.Group, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	ts := make([]comm.Transport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := comm.TCPConfig{Rank: r, World: k, Rendezvous: ln.Addr().String(), Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = comm.DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return comm.NewGroup(ts), nil
}

func waitNoLeaks(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("goroutine leak: %d before, %d after recovery run", before, after)
	}
}

func TestSupervisorBitExactRecovery(t *testing.T) {
	const epochs, every = 8, 2
	for _, backend := range []string{"chan", "tcp"} {
		for _, k := range []int{2, 4} {
			for _, kill := range []struct {
				name string
				plan comm.FaultPlan
			}{
				// Rank 0 dies at the epoch-5 boundary: the recovery must
				// re-admit the "replacement" rank 0 and fall back to gen 2
				// (epoch 4), discarding epoch 4's... nothing — 4 is saved —
				// and replaying epoch 4 onward.
				{"rank0-at-epoch5", comm.KillAtEpoch(0, 5)},
				// Rank k−1 dies mid-epoch, between two payload sends:
				// partially exchanged halo state must be thrown away and the
				// epoch replayed from the last complete generation.
				{"lastrank-mid-epoch", comm.KillAtMessage(0, 0)}, // placeholder, fixed below
			} {
				t.Run(backend+"/k"+string(rune('0'+k))+"/"+kill.name, func(t *testing.T) {
					before := runtime.NumGoroutine()
					ds, topo, cfg := testFixture(t, k)
					if kill.name == "lastrank-mid-epoch" {
						// Aim the kill at the middle of epoch 2: measure one
						// epoch's per-rank send count and take 2.5× of it.
						probeG := comm.New(k, 0)
						probe, err := core.NewParallelTrainerOver(ds, topo, cfg, probeG)
						if err != nil {
							t.Fatal(err)
						}
						probe.TrainEpoch()
						m := probeG.MessagesSent(k - 1)
						kill.plan = comm.KillAtMessage(k-1, int(m*2+m/2))
					}
					dir := t.TempDir()
					sup := &Supervisor{
						Cfg: Config{Dir: dir, Every: every, Epochs: epochs, MaxRecoveries: 1},
						NewTrainer: func(rank int) (*core.RankTrainer, error) {
							return core.NewRankTrainer(ds, topo, cfg, rank)
						},
						NewGroup: func(gen int) (*comm.Group, error) {
							var g *comm.Group
							var err error
							if backend == "tcp" {
								g, err = tcpGroup(t, k)
							} else {
								g = comm.New(k, 0)
							}
							if err != nil {
								return nil, err
							}
							if gen == 0 {
								g = comm.WithFaults(g, kill.plan)
							}
							return g, nil
						},
					}
					trainers, rep, err := sup.Run()
					if err != nil {
						t.Fatalf("supervisor did not recover: %v (report %+v)", err, rep)
					}
					if rep.Recoveries != 1 {
						t.Fatalf("expected exactly 1 recovery, got %d (%v)", rep.Recoveries, rep.Failures)
					}
					var inj *comm.InjectedFault
					if !errors.As(rep.Failures[0], &inj) {
						t.Fatalf("recorded failure %v does not wrap the injected fault", rep.Failures[0])
					}
					if rep.StartGens[0] != 0 || rep.StartGens[1] <= 0 {
						t.Fatalf("start generations %v: want fresh start then a positive resume gen", rep.StartGens)
					}
					want := referenceHash(t, k, epochs)
					for r, rt := range trainers {
						if rt.Epoch() != epochs {
							t.Fatalf("rank %d finished at epoch %d, want %d", r, rt.Epoch(), epochs)
						}
						if got := paramHash(rt.Model); got != want {
							t.Fatalf("rank %d: recovered weights %s != uninterrupted reference %s", r, got, want)
						}
					}
					waitNoLeaks(t, before)
				})
			}
		}
	}
}

// TestSupervisorSurvivesRandomSeededKills is the chaos matrix CI runs: each
// rank in turn dies at a seeded pseudo-random epoch; every run must recover
// to the bit-exact reference.
func TestSupervisorSurvivesRandomSeededKills(t *testing.T) {
	const k, epochs, every = 3, 6, 2
	want := referenceHash(t, k, epochs)
	seed := uint64(0x9E3779B97F4A7C15)
	for victim := 0; victim < k; victim++ {
		// Deterministic "random" epoch in [1, epochs-1].
		seed = seed*6364136223846793005 + 1442695040888963407
		atEpoch := 1 + int((seed>>33)%uint64(epochs-1))
		ds, topo, cfg := testFixture(t, k)
		sup := &Supervisor{
			Cfg: Config{Dir: t.TempDir(), Every: every, Epochs: epochs, MaxRecoveries: 1},
			NewTrainer: func(rank int) (*core.RankTrainer, error) {
				return core.NewRankTrainer(ds, topo, cfg, rank)
			},
			NewGroup: func(gen int) (*comm.Group, error) {
				g := comm.New(k, 0)
				if gen == 0 {
					g = comm.WithFaults(g, comm.KillAtEpoch(victim, atEpoch))
				}
				return g, nil
			},
		}
		trainers, rep, err := sup.Run()
		if err != nil {
			t.Fatalf("victim %d at epoch %d: %v", victim, atEpoch, err)
		}
		if rep.Recoveries != 1 {
			t.Fatalf("victim %d at epoch %d: %d recoveries", victim, atEpoch, rep.Recoveries)
		}
		for r, rt := range trainers {
			if got := paramHash(rt.Model); got != want {
				t.Fatalf("victim %d at epoch %d: rank %d weights diverged", victim, atEpoch, r)
			}
		}
	}
}

// TestSupervisorGivesUpAfterMaxRecoveries: a fault that re-fires every
// generation exhausts the budget and surfaces the underlying error instead
// of looping forever.
func TestSupervisorGivesUpAfterMaxRecoveries(t *testing.T) {
	ds, topo, cfg := testFixture(t, 2)
	sup := &Supervisor{
		Cfg: Config{Dir: t.TempDir(), Every: 2, Epochs: 6, MaxRecoveries: 2},
		NewTrainer: func(rank int) (*core.RankTrainer, error) {
			return core.NewRankTrainer(ds, topo, cfg, rank)
		},
		NewGroup: func(gen int) (*comm.Group, error) {
			// The fault fires in EVERY generation — an unrecoverable cohort.
			return comm.WithFaults(comm.New(2, 0), comm.KillAtEpoch(1, 0)), nil
		},
	}
	_, rep, err := sup.Run()
	if err == nil {
		t.Fatal("supervisor kept going despite a fault in every generation")
	}
	var inj *comm.InjectedFault
	if !errors.As(err, &inj) {
		t.Fatalf("final error %v does not surface the underlying fault", err)
	}
	if rep.Recoveries != sup.Cfg.MaxRecoveries+1 {
		t.Fatalf("gave up after %d recoveries, budget was %d", rep.Recoveries, sup.Cfg.MaxRecoveries)
	}
}

// TestLatestValidGenFallsBack: the generation scan skips files that fail
// verification — corrupt newest generation, orphan .tmp from a half-renamed
// save — and lands on the newest intact one.
func TestLatestValidGenFallsBack(t *testing.T) {
	ds, topo, cfg := testFixture(t, 2)
	rt, err := core.NewRankTrainer(ds, topo, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if got := LatestValidGen(dir, 0); got != 0 {
		t.Fatalf("empty dir scanned to gen %d", got)
	}
	for g := 1; g <= 3; g++ {
		if err := SaveGeneration(dir, g, rt); err != nil {
			t.Fatal(err)
		}
	}
	if got := LatestValidGen(dir, 0); got != 3 {
		t.Fatalf("scan found gen %d, want 3", got)
	}
	// Bit-flip the newest generation: the scan must fall back to gen 2.
	p3 := CheckpointPath(dir, 0, 3)
	raw, err := os.ReadFile(p3)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(p3, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := LatestValidGen(dir, 0); got != 2 {
		t.Fatalf("scan found gen %d after corrupting gen 3, want 2", got)
	}
	// A half-renamed gen 4 (.tmp only) must be invisible.
	if err := os.WriteFile(CheckpointPath(dir, 0, 4)+".tmp", raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := LatestValidGen(dir, 0); got != 2 {
		t.Fatalf("scan found gen %d with an orphan .tmp present, want 2", got)
	}
	// Other ranks' files are invisible to this rank's scan.
	if got := LatestValidGen(dir, 1); got != 0 {
		t.Fatalf("rank 1 scan found rank 0's generation %d", got)
	}
}
