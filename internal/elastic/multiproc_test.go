package elastic

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// The kill-and-rejoin smoke test: three genuine OS processes train over
// real loopback sockets; the parent SIGKILLs rank 0 — the hardest rank to
// lose, since it is both the default rendezvous server and a mesh peer —
// mid-training, then starts a replacement process in the dead slot. The
// survivors must detect the death, re-elect a rendezvous (rank 1 serves
// interim, then defers when the replacement claims candidate 0), agree to
// resume from the newest generation every rank holds on disk, and finish
// with weights bit-identical to an uninterrupted in-process run.

const (
	empEnvRank   = "BNSGCN_EMP_RANK"
	empEnvWorld  = "BNSGCN_EMP_WORLD"
	empEnvDir    = "BNSGCN_EMP_DIR"
	empEnvCands  = "BNSGCN_EMP_CANDS"
	empEnvEpochs = "BNSGCN_EMP_EPOCHS"
	empEnvEvery  = "BNSGCN_EMP_EVERY"
	// Resize knobs, unset for the plain kill-and-rejoin test: ResizeAfter
	// rounds, Rejoin flag, rendezvous timing in ms, and a scripted suicide
	// epoch (the process exits hard at that epoch boundary — a deterministic
	// stand-in for a parent SIGKILL, used by the shrink-determinism test).
	empEnvResize  = "BNSGCN_EMP_RESIZE"
	empEnvJoin    = "BNSGCN_EMP_JOIN"
	empEnvStagMS  = "BNSGCN_EMP_STAGGER_MS"
	empEnvRoundMS = "BNSGCN_EMP_ROUND_MS"
	empEnvDieAt   = "BNSGCN_EMP_DIE_AT"
	// empEnvSlowMS stretches every epoch by a sleep, widening the window in
	// which a late replacement can knock while the shrunken world trains.
	empEnvSlowMS = "BNSGCN_EMP_SLOW_MS"
	empWorld     = 3
	empEpochs    = 8
	empEvery     = 2
)

// TestElasticMPHelper is the per-rank body; it only runs when re-execed by
// TestMultiProcessKillAndRejoin and skips otherwise.
func TestElasticMPHelper(t *testing.T) {
	if os.Getenv(empEnvRank) == "" {
		t.Skip("helper process for TestMultiProcessKillAndRejoin")
	}
	rank, _ := strconv.Atoi(os.Getenv(empEnvRank))
	world, _ := strconv.Atoi(os.Getenv(empEnvWorld))
	epochs, _ := strconv.Atoi(os.Getenv(empEnvEpochs))
	every, _ := strconv.Atoi(os.Getenv(empEnvEvery))
	resize, _ := strconv.Atoi(os.Getenv(empEnvResize))
	stagMS, _ := strconv.Atoi(os.Getenv(empEnvStagMS))
	roundMS, _ := strconv.Atoi(os.Getenv(empEnvRoundMS))
	dieAt, _ := strconv.Atoi(os.Getenv(empEnvDieAt))

	ds, parts, topo, cfg := testFixtureParts(t, world)
	rt, rep, err := Run(RunnerConfig{
		Config: Config{
			Dir: os.Getenv(empEnvDir), Every: every, Epochs: epochs, MaxRecoveries: 3,
			ResizeAfter:     resize,
			ElectionStagger: time.Duration(stagMS) * time.Millisecond,
			RendezvousRound: time.Duration(roundMS) * time.Millisecond,
		},
		Rank:       rank,
		World:      world,
		Candidates: strings.Split(os.Getenv(empEnvCands), ","),
		Timeout:    60 * time.Second,
		Rejoin:     os.Getenv(empEnvJoin) == "1",
		NewTrainer: memberFactory(ds, parts, topo, cfg, world),
		// Stream epoch progress so the parent can time the SIGKILL; Printf
		// hits the stdout fd directly, no buffering to defeat. The printed
		// rank is the slot, which on a shrunken world differs from rt.Rank.
		OnEpoch: func(rt *core.RankTrainer, _ core.RankStats) {
			fmt.Printf("EMP-EPOCH rank=%d epoch=%d\n", rank, rt.Epoch())
			if dieAt > 0 && rt.Epoch() == dieAt {
				os.Exit(17) // scripted death, as abrupt as a SIGKILL to the peers
			}
			if ms, _ := strconv.Atoi(os.Getenv(empEnvSlowMS)); ms > 0 {
				time.Sleep(time.Duration(ms) * time.Millisecond)
			}
		},
	})
	if err != nil {
		t.Fatalf("elastic run: %v (report %+v)", err, rep)
	}
	fmt.Printf("EMP-RESULT rank=%d hash=%s recoveries=%d worlds=%s\n",
		rank, paramHash(rt.Model), rep.Recoveries, worldsKey(rep.Worlds))
}

// worldsKey flattens a Report.Worlds history into "3:2:3"-style member-set
// sizes, printable on one line and comparable across ranks.
func worldsKey(worlds [][]int) string {
	sizes := make([]string, len(worlds))
	for i, m := range worlds {
		sizes[i] = strconv.Itoa(len(m))
	}
	return strings.Join(sizes, ":")
}

func empCommand(ctx context.Context, exe, dir, cands string, world, rank, epochs int, extra ...string) *exec.Cmd {
	cmd := exec.CommandContext(ctx, exe, "-test.run=TestElasticMPHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("%s=%d", empEnvRank, rank),
		fmt.Sprintf("%s=%d", empEnvWorld, world),
		fmt.Sprintf("%s=%s", empEnvDir, dir),
		fmt.Sprintf("%s=%s", empEnvCands, cands),
		fmt.Sprintf("%s=%d", empEnvEpochs, epochs),
		fmt.Sprintf("%s=%d", empEnvEvery, empEvery),
	)
	cmd.Env = append(cmd.Env, extra...)
	return cmd
}

func TestMultiProcessKillAndRejoin(t *testing.T) {
	if os.Getenv(empEnvRank) != "" {
		t.Skip("already inside a helper process")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cands := strings.Join(freeCandidates(t, empWorld), ",")

	// The whole drama — train, kill, re-elect, rejoin, finish — gets a hard
	// deadline; a wedged recovery fails the test instead of hanging CI.
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The victim's stdout is streamed so the kill lands mid-training, after
	// it has completed (and checkpointed past) epoch 3.
	// Stdout is teed by the scanner goroutine; stderr gets its own buffer —
	// exec copies stderr on a separate goroutine, so sharing one buffer
	// between the two would race.
	victim := empCommand(ctx, exe, dir, cands, empWorld, 0, empEpochs)
	victimOut, victimErr := &bytes.Buffer{}, &bytes.Buffer{}
	victim.Stderr = victimErr
	pipe, err := victim.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := victim.Start(); err != nil {
		t.Fatal(err)
	}
	epochCh := make(chan int, empEpochs)
	var scanWG sync.WaitGroup
	scanWG.Add(1)
	go func() {
		defer scanWG.Done()
		sc := bufio.NewScanner(io.TeeReader(pipe, victimOut))
		for sc.Scan() {
			var r, e int
			if _, err := fmt.Sscanf(sc.Text(), "EMP-EPOCH rank=%d epoch=%d", &r, &e); err == nil {
				select {
				case epochCh <- e:
				default:
				}
			}
		}
	}()

	survivors := make([]*exec.Cmd, 0, empWorld-1)
	outs := make(map[int]*bytes.Buffer)
	for r := 1; r < empWorld; r++ {
		cmd := empCommand(ctx, exe, dir, cands, empWorld, r, empEpochs)
		outs[r] = &bytes.Buffer{}
		cmd.Stdout, cmd.Stderr = outs[r], outs[r]
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		survivors = append(survivors, cmd)
	}

	killed := false
	for !killed {
		select {
		case e := <-epochCh:
			if e >= 3 {
				if err := victim.Process.Kill(); err != nil {
					t.Fatal(err)
				}
				killed = true
			}
		case <-ctx.Done():
			scanWG.Wait()
			t.Fatalf("victim never reached epoch 3 before the deadline:\n%s%s", victimOut.String(), victimErr.String())
		}
	}
	victim.Wait() // SIGKILL: a non-zero exit is the point
	scanWG.Wait()

	// The replacement process claims the dead slot — the -join path.
	replacement := empCommand(ctx, exe, dir, cands, empWorld, 0, empEpochs)
	outs[0] = &bytes.Buffer{}
	replacement.Stdout, replacement.Stderr = outs[0], outs[0]
	if err := replacement.Start(); err != nil {
		t.Fatal(err)
	}

	for r, cmd := range append(survivors, replacement) {
		rank := r + 1
		if rank == empWorld {
			rank = 0
		}
		if err := cmd.Wait(); err != nil {
			t.Fatalf("rank %d process failed: %v\n%s", rank, err, outs[rank].String())
		}
	}

	want := referenceHash(t, empWorld, empEpochs)
	recoveries := make(map[int]int)
	for rank, out := range outs {
		var hash string
		found := false
		sc := bufio.NewScanner(bytes.NewReader(out.Bytes()))
		for sc.Scan() {
			var r, rec int
			if _, err := fmt.Sscanf(sc.Text(), "EMP-RESULT rank=%d hash=%s recoveries=%d", &r, &hash, &rec); err == nil {
				found = true
				recoveries[r] = rec
			}
		}
		if !found {
			t.Fatalf("rank %d produced no EMP-RESULT line:\n%s", rank, out.String())
		}
		if hash != want {
			t.Errorf("rank %d finished with weights %s != uninterrupted reference %s", rank, hash, want)
		}
	}
	for r := 1; r < empWorld; r++ {
		if recoveries[r] < 1 {
			t.Errorf("survivor rank %d reports %d recoveries; it must have absorbed the kill", r, recoveries[r])
		}
	}
	if recoveries[0] != 0 {
		t.Errorf("replacement rank 0 reports %d recoveries, want a clean single-generation run", recoveries[0])
	}
}
