package partition

import (
	"fmt"

	"repro/internal/graph"
)

// This file implements the elastic world-resizing side of partitioning: the
// initial k-way cut (METIS or Random) stays a launch-time decision, but when
// a rank is lost permanently the survivors must fold the dead partition's
// nodes into their own partitions — deterministically, so every survivor
// computes the identical new layout without any coordination beyond agreeing
// on which slots are dead.
//
// Reassign is the fold: each dead-partition node moves to the surviving
// partition it shares the most boundary edges with (its strongest halo
// affinity), which is the assignment a greedy one-node-at-a-time pass can
// reach that least inflates the new edge cut. Survivor nodes never move —
// their feature rows and training history stay put, which is what makes
// checkpoint remapping after a shrink a pure load (node features are
// replicated inputs, and model/optimizer state is replica-identical across
// ranks, so absorbed rows carry nothing that needs migrating).

// reassignDead folds every partition marked dead into the survivors in one
// ascending-id pass. Each dead node moves to the surviving partition owning
// the most of its neighbors under the updated assignment (so chains of dead
// nodes fold coherently), ties toward the lowest partition id; a node with
// no surviving neighbor at visit time goes to the currently smallest
// survivor (lowest id on ties). The partition id space keeps width k.
func reassignDead(g *graph.Graph, parts []int32, k int, dead []bool) ([]int32, error) {
	if len(parts) != g.N {
		return nil, fmt.Errorf("partition: assignment covers %d nodes, graph has %d", len(parts), g.N)
	}
	survivors := 0
	for p := 0; p < k; p++ {
		if !dead[p] {
			survivors++
		}
	}
	if survivors == 0 {
		return nil, fmt.Errorf("partition: no surviving partition to absorb the rows (k=%d, all dead)", k)
	}
	out := make([]int32, len(parts))
	sizes := make([]int, k)
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("partition: node %d assigned to invalid partition %d (k=%d)", v, p, k)
		}
		out[v] = p
		sizes[p]++
	}
	counts := make([]int, k)
	for v := 0; v < g.N; v++ {
		from := out[v]
		if !dead[from] {
			continue
		}
		for p := range counts {
			counts[p] = 0
		}
		for _, u := range g.Neighbors(int32(v)) {
			if p := out[u]; !dead[p] {
				counts[p]++
			}
		}
		best := -1
		for p := 0; p < k; p++ {
			if dead[p] || counts[p] == 0 {
				continue
			}
			if best < 0 || counts[p] > counts[best] {
				best = p
			}
		}
		if best < 0 {
			// Interior pocket: no surviving neighbor yet. Balance wins.
			for p := 0; p < k; p++ {
				if dead[p] {
					continue
				}
				if best < 0 || sizes[p] < sizes[best] {
					best = p
				}
			}
		}
		out[v] = int32(best)
		sizes[from]--
		sizes[best]++
	}
	return out, nil
}

// Reassign folds partition dead of an existing k-way assignment into the
// surviving partitions and returns the new assignment. See reassignDead for
// the fold rules. Survivor assignments are untouched and the partition id
// space keeps its original width k; use Compact to renumber onto the member
// subset.
func Reassign(g *graph.Graph, parts []int32, k, dead int) ([]int32, error) {
	if k < 2 {
		return nil, fmt.Errorf("partition: cannot reassign with k=%d: no surviving partition to absorb the rows", k)
	}
	if dead < 0 || dead >= k {
		return nil, fmt.Errorf("partition: dead partition %d outside [0,%d)", dead, k)
	}
	deadSet := make([]bool, k)
	deadSet[dead] = true
	return reassignDead(g, parts, k, deadSet)
}

// Compact renumbers an assignment whose partition ids all lie in the member
// set onto dense ids [0, len(members)): members[i] becomes i. members must
// be strictly ascending. This is the bridge between the stable "slot" id
// space (launch-time ranks, checkpoint file names, rendezvous candidates)
// and the dense rank space a k′-sized mesh actually trains with.
func Compact(parts []int32, members []int) ([]int32, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("partition: empty member set")
	}
	remap := make(map[int32]int32, len(members))
	for i, m := range members {
		if m < 0 {
			return nil, fmt.Errorf("partition: negative member slot %d", m)
		}
		if i > 0 && members[i-1] >= m {
			return nil, fmt.Errorf("partition: member set %v is not strictly ascending", members)
		}
		remap[int32(m)] = int32(i)
	}
	out := make([]int32, len(parts))
	for v, p := range parts {
		np, ok := remap[p]
		if !ok {
			return nil, fmt.Errorf("partition: node %d sits in partition %d, which is not in the member set %v", v, p, members)
		}
		out[v] = np
	}
	return out, nil
}

// ShrinkToMembers derives the k′-way layout a surviving member set trains
// with from the launch-time k-way assignment: every non-member partition is
// folded into the survivors in a single deterministic pass (the result is a
// pure function of (parts, members), so every survivor computes the same
// layout independently), then the result is compacted onto dense ranks
// [0, len(members)). Growing back to the full world is the same call with
// the full member set — a no-op fold followed by an identity compaction —
// so shed rows return to exactly their original owners.
func ShrinkToMembers(g *graph.Graph, parts []int32, k int, members []int) ([]int32, error) {
	if len(members) > k {
		return nil, fmt.Errorf("partition: %d members exceed world size %d", len(members), k)
	}
	live := make([]bool, k)
	for i, m := range members {
		if m < 0 || m >= k {
			return nil, fmt.Errorf("partition: member slot %d outside [0,%d)", m, k)
		}
		if i > 0 && members[i-1] >= m {
			return nil, fmt.Errorf("partition: member set %v is not strictly ascending", members)
		}
		live[m] = true
	}
	dead := make([]bool, k)
	for p := 0; p < k; p++ {
		dead[p] = !live[p]
	}
	out, err := reassignDead(g, parts, k, dead)
	if err != nil {
		return nil, err
	}
	return Compact(out, members)
}
