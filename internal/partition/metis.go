package partition

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Metis is a multilevel k-way partitioner in the METIS family
// (Karypis & Kumar, 1998): the graph is repeatedly coarsened by heavy-edge
// matching, partitioned at the coarsest level by greedy region growing, and
// the partition is projected back level by level with Kernighan–Lin-style
// boundary refinement at each step. A final refinement pass on the original
// graph optimizes the paper's objective directly: the number of boundary
// nodes (communication volume, Eq. 3).
type Metis struct {
	Seed      uint64
	Imbalance float64 // allowed load factor; default 1.05
	// VolumePasses is the number of final communication-volume refinement
	// passes on the uncoarsened graph; default 2.
	VolumePasses int
}

// Name implements Partitioner.
func (m *Metis) Name() string { return "metis" }

func (m *Metis) imbalance() float64 {
	if m.Imbalance <= 1 {
		return 1.05
	}
	return m.Imbalance
}

// wedge is a weighted adjacency entry of the coarsening hierarchy.
type wedge struct {
	to int32
	w  int64
}

// wgraph is a weighted graph used during coarsening. vwgt[v] counts original
// nodes merged into v; edge weights count original edges merged.
type wgraph struct {
	n    int
	vwgt []int64
	adj  [][]wedge
}

func fromGraph(g *graph.Graph) *wgraph {
	wg := &wgraph{n: g.N, vwgt: make([]int64, g.N), adj: make([][]wedge, g.N)}
	for v := 0; v < g.N; v++ {
		wg.vwgt[v] = 1
		nbrs := g.Neighbors(int32(v))
		row := make([]wedge, len(nbrs))
		for i, u := range nbrs {
			row[i] = wedge{to: u, w: 1}
		}
		wg.adj[v] = row
	}
	return wg
}

func (wg *wgraph) totalWeight() int64 {
	var t int64
	for _, w := range wg.vwgt {
		t += w
	}
	return t
}

// Partition implements Partitioner.
func (m *Metis) Partition(g *graph.Graph, k int) ([]int32, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	if g.N == 0 {
		return []int32{}, nil
	}
	if k == 1 {
		return make([]int32, g.N), nil
	}
	rng := tensor.NewRNG(m.Seed)

	// Coarsening phase.
	levels := []*wgraph{fromGraph(g)}
	var maps [][]int32 // maps[i][v] = coarse id of fine node v at level i
	coarsestTarget := 40 * k
	if coarsestTarget < 200 {
		coarsestTarget = 200
	}
	for levels[len(levels)-1].n > coarsestTarget {
		cur := levels[len(levels)-1]
		coarse, cmap := coarsen(cur, rng)
		if coarse.n >= cur.n*9/10 { // matching stalled; stop coarsening
			break
		}
		levels = append(levels, coarse)
		maps = append(maps, cmap)
	}

	// Initial partition on the coarsest graph.
	coarsest := levels[len(levels)-1]
	parts := regionGrow(coarsest, k, loadBound(coarsest, k, m.imbalance()), rng)
	refineLevel(coarsest, parts, k, m.imbalance(), rng, 12)

	// Uncoarsening with refinement at each level.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		cmap := maps[i]
		fineParts := make([]int32, fine.n)
		for v := 0; v < fine.n; v++ {
			fineParts[v] = parts[cmap[v]]
		}
		parts = fineParts
		refineLevel(fine, parts, k, m.imbalance(), rng, 8)
	}

	// Final passes minimizing the boundary-node communication volume.
	passes := m.VolumePasses
	if passes == 0 {
		passes = 2
	}
	maxSize := int(float64(g.N) / float64(k) * m.imbalance())
	if maxSize < 1 {
		maxSize = 1
	}
	for p := 0; p < passes; p++ {
		if refineVolume(g, parts, k, maxSize, rng) == 0 {
			break
		}
	}
	return parts, nil
}

// coarsen performs one level of heavy-edge matching and contraction.
func coarsen(wg *wgraph, rng *tensor.RNG) (*wgraph, []int32) {
	match := make([]int32, wg.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(wg.n)
	for _, v := range order {
		if match[v] != -1 {
			continue
		}
		var best int32 = -1
		var bestW int64 = -1
		for _, e := range wg.adj[v] {
			if match[e.to] == -1 && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
	}
	// Assign coarse ids.
	cmap := make([]int32, wg.n)
	for i := range cmap {
		cmap[i] = -1
	}
	var nc int32
	for v := 0; v < wg.n; v++ {
		if cmap[v] != -1 {
			continue
		}
		cmap[v] = nc
		if int(match[v]) != v {
			cmap[match[v]] = nc
		}
		nc++
	}
	// Build coarse graph.
	coarse := &wgraph{n: int(nc), vwgt: make([]int64, nc), adj: make([][]wedge, nc)}
	acc := make(map[int32]int64)
	done := make([]bool, wg.n)
	for v := 0; v < wg.n; v++ {
		cv := cmap[v]
		coarse.vwgt[cv] += wg.vwgt[v]
		if done[v] {
			continue
		}
		// Merge adjacency of v and its match once per coarse node.
		group := []int{v}
		if int(match[v]) != v {
			group = append(group, int(match[v]))
		}
		for _, gv := range group {
			done[gv] = true
		}
		clear(acc)
		for _, gv := range group {
			for _, e := range wg.adj[gv] {
				ct := cmap[e.to]
				if ct == cv {
					continue
				}
				acc[ct] += e.w
			}
		}
		row := make([]wedge, 0, len(acc))
		for to, w := range acc {
			row = append(row, wedge{to: to, w: w})
		}
		sort.Slice(row, func(i, j int) bool { return row[i].to < row[j].to })
		coarse.adj[cv] = row
	}
	return coarse, cmap
}

// regionGrow produces an initial k-way partition by BFS region growing from
// random seeds. Each part keeps seeding fresh BFS frontiers until it reaches
// its weight target, so disconnected pockets do not strand nodes; any
// remainder joins the lightest part adjacent to it when possible.
func regionGrow(wg *wgraph, k int, maxLoad int64, rng *tensor.RNG) []int32 {
	parts := make([]int32, wg.n)
	for i := range parts {
		parts[i] = -1
	}
	loads := make([]int64, k)
	target := wg.totalWeight() / int64(k)
	order := rng.Perm(wg.n)
	oi := 0
	nextSeed := func() int32 {
		for oi < len(order) && parts[order[oi]] != -1 {
			oi++
		}
		if oi >= len(order) {
			return -1
		}
		return order[oi]
	}
	var queue []int32
	for p := 0; p < k; p++ {
		for loads[p] < target {
			seed := nextSeed()
			if seed < 0 {
				break
			}
			queue = append(queue[:0], seed)
			parts[seed] = int32(p)
			loads[p] += wg.vwgt[seed]
			for len(queue) > 0 && loads[p] < target {
				v := queue[0]
				queue = queue[1:]
				for _, e := range wg.adj[v] {
					if parts[e.to] == -1 && loads[p]+wg.vwgt[e.to] <= maxLoad {
						parts[e.to] = int32(p)
						loads[p] += wg.vwgt[e.to]
						queue = append(queue, e.to)
						if loads[p] >= target {
							break
						}
					}
				}
			}
		}
	}
	// Remainder (from rounding of target): prefer the lightest adjacent part,
	// falling back to the globally lightest.
	for v := 0; v < wg.n; v++ {
		if parts[v] != -1 {
			continue
		}
		best := int32(-1)
		for _, e := range wg.adj[v] {
			if p := parts[e.to]; p >= 0 && (best < 0 || loads[p] < loads[best]) {
				best = p
			}
		}
		if best < 0 {
			best = 0
			for p := 1; p < k; p++ {
				if loads[p] < loads[best] {
					best = int32(p)
				}
			}
		}
		parts[v] = best
		loads[best] += wg.vwgt[v]
	}
	return parts
}

func loadBound(wg *wgraph, k int, imbalance float64) int64 {
	b := int64(float64(wg.totalWeight()) / float64(k) * imbalance)
	if b < 1 {
		b = 1
	}
	return b
}

// refineLevel improves the partition of one hierarchy level. A tight balance
// bound blocks the pairwise swaps greedy refinement needs, so it alternates:
// refine under a relaxed bound (letting cut-improving mass flow freely),
// rebalance back under the strict bound with minimum cut damage, then a
// final strictly-bounded polish.
func refineLevel(wg *wgraph, parts []int32, k int, imbalance float64, rng *tensor.RNG, passes int) {
	strict := loadBound(wg, k, imbalance)
	relaxed := loadBound(wg, k, imbalance*1.35)
	refineEdgeCut(wg, parts, k, relaxed, rng, passes)
	rebalance(wg, parts, k, strict)
	refineEdgeCut(wg, parts, k, strict, rng, 3)
}

// rebalance moves nodes out of overloaded parts until every load is within
// maxLoad, choosing at each step the candidate with the least edge-cut
// damage. Targets are chosen greedily among parts with spare capacity.
func rebalance(wg *wgraph, parts []int32, k int, maxLoad int64) {
	loads := make([]int64, k)
	for v := 0; v < wg.n; v++ {
		loads[parts[v]] += wg.vwgt[v]
	}
	conn := make([]int64, k)
	for over := 0; over < k; over++ {
		if loads[over] <= maxLoad {
			continue
		}
		// Rank all members of the overloaded part by the cut damage of
		// evicting them (own-part connectivity), cheapest first.
		type cand struct {
			v    int32
			ownW int64
		}
		var cs []cand
		for v := 0; v < wg.n; v++ {
			if parts[v] != int32(over) {
				continue
			}
			var ownW int64
			for _, e := range wg.adj[v] {
				if parts[e.to] == int32(over) {
					ownW += e.w
				}
			}
			cs = append(cs, cand{v: int32(v), ownW: ownW})
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i].ownW < cs[j].ownW })
		for _, c := range cs {
			if loads[over] <= maxLoad {
				break
			}
			// Best target: adjacent part with max connectivity and capacity,
			// else the lightest part with capacity.
			touched := touchedParts(wg.adj[c.v], parts, conn)
			best := int32(-1)
			var bestW int64 = -1
			for _, p := range touched {
				if p != int32(over) && loads[p]+wg.vwgt[c.v] <= maxLoad && conn[p] > bestW {
					best, bestW = p, conn[p]
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if best < 0 {
				for p := 0; p < k; p++ {
					if p != over && loads[p]+wg.vwgt[c.v] <= maxLoad && (best < 0 || loads[p] < loads[best]) {
						best = int32(p)
					}
				}
			}
			if best < 0 {
				break // nowhere to put anything; give up on this part
			}
			loads[over] -= wg.vwgt[c.v]
			loads[best] += wg.vwgt[c.v]
			parts[c.v] = best
		}
	}
}

// refineEdgeCut runs greedy KL-style passes: each boundary node may move to
// the adjacent part with maximal positive edge-weight gain, subject to the
// load bound. Stops early when a pass makes no moves.
func refineEdgeCut(wg *wgraph, parts []int32, k int, maxLoad int64, rng *tensor.RNG, passes int) {
	loads := make([]int64, k)
	for v := 0; v < wg.n; v++ {
		loads[parts[v]] += wg.vwgt[v]
	}
	conn := make([]int64, k)
	for pass := 0; pass < passes; pass++ {
		moves := 0
		order := rng.Perm(wg.n)
		for _, v := range order {
			own := parts[v]
			row := wg.adj[v]
			if len(row) == 0 {
				continue
			}
			// Connectivity to each adjacent part.
			touched := touchedParts(row, parts, conn)
			ownW := conn[own]
			var best int32 = -1
			var bestGain int64
			for _, p := range touched {
				if p == own {
					continue
				}
				gain := conn[p] - ownW
				if gain > bestGain && loads[p]+wg.vwgt[v] <= maxLoad {
					best, bestGain = p, gain
				}
			}
			for _, p := range touched {
				conn[p] = 0
			}
			if best >= 0 {
				loads[own] -= wg.vwgt[v]
				loads[best] += wg.vwgt[v]
				parts[v] = best
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
}

// touchedParts accumulates edge weight per adjacent part into conn and
// returns the list of parts touched (including the owner part if adjacent).
func touchedParts(row []wedge, parts []int32, conn []int64) []int32 {
	touched := make([]int32, 0, 8)
	for _, e := range row {
		p := parts[e.to]
		if conn[p] == 0 {
			touched = append(touched, p)
		}
		conn[p] += e.w
	}
	return touched
}

// refineVolume performs one greedy pass minimizing the exact boundary-node
// communication volume Vol = Σ_v D(v) (Eq. 3), where D(v) is the number of
// distinct parts other than part(v) among v's neighbors. A node moves to the
// adjacent part with the most negative ΔVol, subject to the size bound.
// Returns the number of moves made.
func refineVolume(g *graph.Graph, parts []int32, k int, maxSize int, rng *tensor.RNG) int {
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	moves := 0
	order := rng.Perm(g.N)
	seen := make([]bool, k)
	for _, v := range order {
		own := parts[v]
		nbrs := g.Neighbors(int32(v))
		// Candidate target parts = parts of neighbors.
		cands := cands(nbrs, parts, own, seen)
		if len(cands) == 0 {
			continue
		}
		bestDelta := 0
		var best int32 = -1
		for _, p := range cands {
			if sizes[p]+1 > maxSize {
				continue
			}
			d := volumeDelta(g, parts, int32(v), p, seen)
			if d < bestDelta {
				bestDelta, best = d, p
			}
		}
		if best >= 0 {
			sizes[own]--
			sizes[best]++
			parts[v] = best
			moves++
		}
	}
	return moves
}

func cands(nbrs []int32, parts []int32, own int32, seen []bool) []int32 {
	out := make([]int32, 0, 4)
	for _, u := range nbrs {
		p := parts[u]
		if p != own && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, p := range out {
		seen[p] = false
	}
	return out
}

// volumeDelta computes the exact change in Σ D(·) if v moves to part b.
// It touches v and v's neighbors only.
func volumeDelta(g *graph.Graph, parts []int32, v, b int32, seen []bool) int {
	a := parts[v]
	// ΔD(v): recompute D under both assignments.
	dOld, dNew := 0, 0
	nbrs := g.Neighbors(v)
	touched := make([]int32, 0, 8)
	for _, u := range nbrs {
		p := parts[u]
		if !seen[p] {
			seen[p] = true
			touched = append(touched, p)
		}
	}
	for _, p := range touched {
		if p != a {
			dOld++
		}
		if p != b {
			dNew++
		}
		seen[p] = false
	}
	delta := dNew - dOld
	// ΔD(u) for each neighbor u: only membership of parts a and b in u's
	// neighbor-part multiset can change, and only via v itself.
	for _, u := range nbrs {
		pu := parts[u]
		var hasAOther, hasBOther bool // a/b present among u's neighbors besides v
		for _, w := range g.Neighbors(u) {
			if w == v {
				continue
			}
			switch parts[w] {
			case a:
				hasAOther = true
			case b:
				hasBOther = true
			}
			if hasAOther && hasBOther {
				break
			}
		}
		// Before the move v contributes part a; after, part b.
		if a != pu && !hasAOther {
			delta-- // u loses remote part a
		}
		if b != pu && !hasBOther {
			delta++ // u gains remote part b
		}
	}
	return delta
}
