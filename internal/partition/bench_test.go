package partition

import (
	"testing"

	"repro/internal/datagen"
)

func benchGraph(b *testing.B, nodes int) *datagen.Dataset {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Name: "bench", Nodes: nodes, Communities: 16, AvgDegree: 16,
		IntraFrac: 0.7, DegreeSkew: 1.8, FeatureDim: 4,
		TrainFrac: 0.5, ValFrac: 0.2, Seed: 1, StructureOnly: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func BenchmarkMetis8Parts(b *testing.B) {
	ds := benchGraph(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Metis{Seed: uint64(i)}).Partition(ds.G, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetis64Parts(b *testing.B) {
	ds := benchGraph(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Metis{Seed: uint64(i)}).Partition(ds.G, 64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomPartition(b *testing.B) {
	ds := benchGraph(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (&Random{Seed: uint64(i)}).Partition(ds.G, 8); err != nil {
			b.Fatal(err)
		}
	}
}
