package partition

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/tensor"
)

func communityGraph(t *testing.T, seed uint64) *graph.Graph {
	t.Helper()
	cfg := datagen.Config{
		Name: "t", Nodes: 1200, Communities: 8, AvgDegree: 12,
		IntraFrac: 0.85, DegreeSkew: 2.0, FeatureDim: 4,
		TrainFrac: 0.5, ValFrac: 0.2, Seed: seed, StructureOnly: true,
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds.G
}

// commVolume computes Eq. 3 directly: Σ_v |{parts p != part(v) : v has a
// neighbor in p}|.
func commVolume(g *graph.Graph, parts []int32, k int) int64 {
	var vol int64
	seen := make([]bool, k)
	for v := int32(0); v < int32(g.N); v++ {
		touched := touched(g, parts, v, seen)
		for _, p := range touched {
			if p != parts[v] {
				vol++
			}
			seen[p] = false
		}
	}
	return vol
}

func touched(g *graph.Graph, parts []int32, v int32, seen []bool) []int32 {
	var out []int32
	for _, u := range g.Neighbors(v) {
		p := parts[u]
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

func checkAssignment(t *testing.T, g *graph.Graph, parts []int32, k int) *Stats {
	t.Helper()
	s, err := ComputeStats(g, parts, k)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, sz := range s.Sizes {
		total += sz
	}
	if total != g.N {
		t.Fatalf("sizes sum to %d, want %d", total, g.N)
	}
	return s
}

func TestRandomPartitionBalanced(t *testing.T) {
	g := communityGraph(t, 1)
	r := &Random{Seed: 7}
	parts, err := r.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := checkAssignment(t, g, parts, 8)
	if s.MaxLoad-s.MinLoad > 1 {
		t.Fatalf("random partition imbalanced: max=%d min=%d", s.MaxLoad, s.MinLoad)
	}
}

func TestRandomPartitionDeterministic(t *testing.T) {
	g := communityGraph(t, 2)
	a, _ := (&Random{Seed: 3}).Partition(g, 4)
	b, _ := (&Random{Seed: 3}).Partition(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same partition")
		}
	}
}

func TestMetisBalanced(t *testing.T) {
	g := communityGraph(t, 3)
	m := &Metis{Seed: 1}
	parts, err := m.Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := checkAssignment(t, g, parts, 8)
	if s.Balance > 1.10 {
		t.Fatalf("metis imbalance %.3f > 1.10", s.Balance)
	}
}

func TestMetisBeatsRandomOnEdgeCut(t *testing.T) {
	g := communityGraph(t, 4)
	mp, err := (&Metis{Seed: 1}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := (&Random{Seed: 1}).Partition(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	ms := checkAssignment(t, g, mp, 8)
	rs := checkAssignment(t, g, rp, 8)
	if ms.EdgeCut*2 > rs.EdgeCut {
		t.Fatalf("metis cut %d not well below random cut %d", ms.EdgeCut, rs.EdgeCut)
	}
}

func TestMetisBeatsRandomOnCommVolume(t *testing.T) {
	g := communityGraph(t, 5)
	mp, _ := (&Metis{Seed: 2}).Partition(g, 8)
	rp, _ := (&Random{Seed: 2}).Partition(g, 8)
	mv := commVolume(g, mp, 8)
	rv := commVolume(g, rp, 8)
	if mv*2 > rv {
		t.Fatalf("metis volume %d not well below random volume %d", mv, rv)
	}
}

func TestMetisRecoversPlantedCommunities(t *testing.T) {
	// With IntraFrac=0.85 and k == #communities the partitioner should place
	// most same-community node pairs together: edge cut well below 30% of
	// edges.
	g := communityGraph(t, 6)
	parts, _ := (&Metis{Seed: 3}).Partition(g, 8)
	s := checkAssignment(t, g, parts, 8)
	frac := float64(s.EdgeCut) / float64(g.NumEdges())
	if frac > 0.35 {
		t.Fatalf("metis cut fraction %.2f too high for planted communities", frac)
	}
}

func TestVolumeRefinementDoesNotHurt(t *testing.T) {
	g := communityGraph(t, 7)
	base := &Metis{Seed: 4, VolumePasses: -1} // negative -> loop body never runs below
	// Build a partition without the volume pass by running edge-cut only:
	// simplest is to run full Metis with 0 (default 2) vs explicit high.
	_ = base
	m0 := &Metis{Seed: 4, VolumePasses: 1}
	m4 := &Metis{Seed: 4, VolumePasses: 4}
	p1, _ := m0.Partition(g, 8)
	p4, _ := m4.Partition(g, 8)
	if commVolume(g, p4, 8) > commVolume(g, p1, 8) {
		t.Fatalf("more volume passes increased volume: %d vs %d",
			commVolume(g, p4, 8), commVolume(g, p1, 8))
	}
}

func TestMetisK1AndErrors(t *testing.T) {
	g := communityGraph(t, 8)
	parts, err := (&Metis{Seed: 1}).Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p != 0 {
			t.Fatal("k=1 must assign everything to part 0")
		}
	}
	if _, err := (&Metis{}).Partition(g, 0); err == nil {
		t.Fatal("k=0 must error")
	}
	small := graph.NewBuilder(3).Build()
	if _, err := (&Metis{}).Partition(small, 10); err == nil {
		t.Fatal("k>N must error")
	}
	if _, err := (&Random{}).Partition(small, 10); err == nil {
		t.Fatal("random k>N must error")
	}
}

func TestMetisDeterministic(t *testing.T) {
	g := communityGraph(t, 9)
	a, _ := (&Metis{Seed: 11}).Partition(g, 4)
	b, _ := (&Metis{Seed: 11}).Partition(g, 4)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same metis partition")
		}
	}
}

func TestMetisManyParts(t *testing.T) {
	g := communityGraph(t, 10)
	parts, err := (&Metis{Seed: 5}).Partition(g, 48)
	if err != nil {
		t.Fatal(err)
	}
	s := checkAssignment(t, g, parts, 48)
	if s.MinLoad == 0 {
		t.Log("warning: some part empty at k=48") // tolerated but logged
	}
	if s.Balance > 1.6 {
		t.Fatalf("metis k=48 balance %.2f too loose", s.Balance)
	}
}

func TestComputeStatsHandGraph(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	parts := []int32{0, 0, 1, 1}
	s, err := ComputeStats(g, parts, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.EdgeCut != 1 {
		t.Fatalf("edge cut %d, want 1", s.EdgeCut)
	}
	if s.MaxLoad != 2 || s.MinLoad != 2 || s.Balance != 1.0 {
		t.Fatalf("stats %+v", s)
	}
}

func TestComputeStatsRejectsBadParts(t *testing.T) {
	g := graph.NewBuilder(2).Build()
	if _, err := ComputeStats(g, []int32{0}, 2); err == nil {
		t.Fatal("length mismatch must error")
	}
	if _, err := ComputeStats(g, []int32{0, 5}, 2); err == nil {
		t.Fatal("out-of-range part must error")
	}
}

func TestVolumeDeltaMatchesRecompute(t *testing.T) {
	// Property: applying a move changes commVolume by exactly volumeDelta.
	rng := tensor.NewRNG(20)
	g := communityGraph(t, 11)
	k := 6
	parts, _ := (&Random{Seed: 21}).Partition(g, k)
	seen := make([]bool, k)
	for trial := 0; trial < 200; trial++ {
		v := int32(rng.Intn(g.N))
		b := int32(rng.Intn(k))
		if parts[v] == b {
			continue
		}
		before := commVolume(g, parts, k)
		delta := volumeDelta(g, parts, v, b, seen)
		old := parts[v]
		parts[v] = b
		after := commVolume(g, parts, k)
		parts[v] = old
		if after-before != int64(delta) {
			t.Fatalf("trial %d: delta %d, actual %d", trial, delta, after-before)
		}
	}
}
