// Package partition implements graph partitioners for partition-parallel
// GCN training: a seeded random partitioner and a METIS-style multilevel
// k-way partitioner (heavy-edge-matching coarsening, greedy region-growing
// initial partitioning, Kernighan–Lin-style refinement) whose objective is
// the paper's: minimize the number of boundary nodes (communication volume,
// Eq. 3) while keeping inner-node counts balanced.
package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Partitioner assigns every node of g to one of k parts, returning a length-N
// slice of part ids in [0, k).
type Partitioner interface {
	Partition(g *graph.Graph, k int) ([]int32, error)
	Name() string
}

// Random assigns nodes to partitions uniformly at random with exact balance
// (shuffle + round-robin), the ablation baseline of Tables 7–8.
type Random struct {
	Seed uint64
}

// Name implements Partitioner.
func (r *Random) Name() string { return "random" }

// Partition implements Partitioner.
func (r *Random) Partition(g *graph.Graph, k int) ([]int32, error) {
	if err := checkArgs(g, k); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(r.Seed)
	perm := rng.Perm(g.N)
	parts := make([]int32, g.N)
	for i, v := range perm {
		parts[v] = int32(i % k)
	}
	return parts, nil
}

func checkArgs(g *graph.Graph, k int) error {
	if k <= 0 {
		return fmt.Errorf("partition: k must be positive, got %d", k)
	}
	if k > g.N && g.N > 0 {
		return fmt.Errorf("partition: k=%d exceeds %d nodes", k, g.N)
	}
	return nil
}

// Stats summarizes the quality of a partition assignment.
type Stats struct {
	K       int
	Sizes   []int   // inner nodes per part
	EdgeCut int64   // undirected edges crossing parts
	MaxLoad int     // largest part size
	MinLoad int     // smallest part size
	Balance float64 // MaxLoad / (N/K)
}

// ComputeStats validates parts and returns summary statistics.
func ComputeStats(g *graph.Graph, parts []int32, k int) (*Stats, error) {
	if len(parts) != g.N {
		return nil, fmt.Errorf("partition: assignment length %d != %d nodes", len(parts), g.N)
	}
	s := &Stats{K: k, Sizes: make([]int, k)}
	for v, p := range parts {
		if p < 0 || int(p) >= k {
			return nil, fmt.Errorf("partition: node %d assigned to invalid part %d", v, p)
		}
		s.Sizes[p]++
	}
	for v := int32(0); v < int32(g.N); v++ {
		for _, u := range g.Neighbors(v) {
			if u > v && parts[u] != parts[v] {
				s.EdgeCut++
			}
		}
	}
	s.MinLoad = g.N
	for _, sz := range s.Sizes {
		if sz > s.MaxLoad {
			s.MaxLoad = sz
		}
		if sz < s.MinLoad {
			s.MinLoad = sz
		}
	}
	if g.N > 0 && k > 0 {
		s.Balance = float64(s.MaxLoad) * float64(k) / float64(g.N)
	}
	return s, nil
}
