package partition

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// pathGraph9 builds a 9-node path 0-1-2-...-8 with the canonical 3-way split
// {0,1,2} {3,4,5} {6,7,8}.
func pathGraph9() (*graph.Graph, []int32) {
	b := graph.NewBuilder(9)
	for v := int32(0); v < 8; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build(), []int32{0, 0, 0, 1, 1, 1, 2, 2, 2}
}

func TestReassignFoldsByAffinity(t *testing.T) {
	g, parts := pathGraph9()
	out, err := Reassign(g, parts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 touches part 0 only; node 4 then touches the freshly folded 3,
	// so the chain folds coherently; node 5 ties 1-1 between parts 0 and 2
	// and the lower id wins.
	want := []int32{0, 0, 0, 0, 0, 0, 2, 2, 2}
	for v := range want {
		if out[v] != want[v] {
			t.Fatalf("node %d: got part %d, want %d (full: %v)", v, out[v], want[v], out)
		}
	}
	// Input untouched.
	if parts[3] != 1 {
		t.Fatal("Reassign mutated its input")
	}
}

func TestReassignPocketGoesToSmallestSurvivor(t *testing.T) {
	// Node 4 is isolated inside dead part 1: no surviving neighbor ever, so
	// balance decides. Part 2 starts smaller (2 nodes vs part 0's 3).
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 5)
	g := b.Build()
	parts := []int32{0, 0, 0, 1, 1, 2}
	out, err := Reassign(g, parts, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if out[3] != 2 {
		t.Fatalf("node 3 neighbors survivor 5 (part 2); got part %d", out[3])
	}
	if out[4] != 2 {
		t.Fatalf("isolated node 4 should fold into the smallest survivor (part 2), got %d", out[4])
	}
}

func TestReassignRejectsBadArgs(t *testing.T) {
	g, parts := pathGraph9()
	if _, err := Reassign(g, parts[:5], 3, 1); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := Reassign(g, parts, 1, 0); err == nil {
		t.Fatal("k=1 accepted: there is no survivor to absorb the rows")
	}
	if _, err := Reassign(g, parts, 3, 3); err == nil {
		t.Fatal("out-of-range dead partition accepted")
	}
	bad := append([]int32(nil), parts...)
	bad[0] = 7
	if _, err := Reassign(g, bad, 3, 1); err == nil {
		t.Fatal("invalid partition id accepted")
	}
}

func TestCompactRenumbersOntoMembers(t *testing.T) {
	parts := []int32{0, 2, 3, 2, 0}
	out, err := Compact(parts, []int{0, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 1, 2, 1, 0}
	for v := range want {
		if out[v] != want[v] {
			t.Fatalf("node %d: got %d want %d", v, out[v], want[v])
		}
	}
	if _, err := Compact(parts, []int{0, 3}); err == nil {
		t.Fatal("assignment with a non-member partition accepted")
	}
	if _, err := Compact(parts, []int{3, 0, 2}); err == nil {
		t.Fatal("unsorted member set accepted")
	}
	if _, err := Compact(parts, nil); err == nil {
		t.Fatal("empty member set accepted")
	}
}

func TestShrinkToMembersIsDeterministicAndValid(t *testing.T) {
	g := communityGraph(t, 7)
	m := &Metis{Seed: 1}
	const k = 4
	parts, err := m.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	members := []int{0, 2, 3}
	a, err := ShrinkToMembers(g, parts, k, members)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ShrinkToMembers(g, parts, k, members)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d: shrink not deterministic (%d vs %d)", v, a[v], b[v])
		}
	}
	// Valid dense k'=3 assignment with survivor rows kept in place.
	if _, err := ComputeStats(g, a, len(members)); err != nil {
		t.Fatalf("shrunken assignment invalid: %v", err)
	}
	compactOf := map[int32]int32{0: 0, 2: 1, 3: 2}
	for v := range a {
		if want, live := compactOf[parts[v]]; live && a[v] != want {
			t.Fatalf("survivor node %d moved: launch part %d, shrunken part %d (want %d)", v, parts[v], a[v], want)
		}
	}
}

func TestShrinkToMembersFullSetIsIdentity(t *testing.T) {
	g := communityGraph(t, 7)
	m := &Metis{Seed: 1}
	const k = 4
	parts, err := m.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ShrinkToMembers(g, parts, k, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range out {
		if out[v] != parts[v] {
			t.Fatalf("node %d moved under the full member set (%d -> %d)", v, parts[v], out[v])
		}
	}
}

func TestShrinkToMembersMultipleDeadSlots(t *testing.T) {
	g := communityGraph(t, 9)
	m := &Metis{Seed: 1}
	const k = 4
	parts, err := m.Partition(g, k)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ShrinkToMembers(g, parts, k, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(g, out, 2)
	if err != nil {
		t.Fatalf("double-shrink assignment invalid: %v", err)
	}
	for p, sz := range st.Sizes {
		if sz == 0 {
			t.Fatalf("partition %d empty after double shrink: %+v", p, st)
		}
	}
	if _, err := ShrinkToMembers(g, parts, k, []int{1, 4}); err == nil {
		t.Fatal("member slot outside the world accepted")
	}
}

func TestShrinkToMembersErrorNamesTheProblem(t *testing.T) {
	g, parts := pathGraph9()
	_, err := ShrinkToMembers(g, parts, 3, []int{2, 0})
	if err == nil {
		t.Fatal("unsorted member set accepted")
	}
	if got := fmt.Sprint(err); got == "" {
		t.Fatal("empty error")
	}
}
