// Package metrics computes the evaluation scores the paper reports: test
// accuracy for Reddit/ogbn-products and micro-F1 for Yelp, plus a
// convergence recorder used by the Figure 7/9 experiments.
package metrics

import (
	"fmt"

	"repro/internal/tensor"
)

// Accuracy returns the fraction of masked rows whose argmax logit equals the
// label. Ties break to the lowest class index (deterministic first-wins).
// NaN logits never win the argmax, and a row with no comparable value at all
// — every logit NaN — counts as wrong rather than silently predicting class
// 0: a diverged model must read as 0 accuracy, not ~1/nClasses. Returns 0
// when the mask is empty.
func Accuracy(logits *tensor.Matrix, labels []int32, mask []bool) float64 {
	if len(labels) < logits.Rows || len(mask) < logits.Rows {
		panic(fmt.Sprintf("metrics: need %d labels/mask, have %d/%d", logits.Rows, len(labels), len(mask)))
	}
	correct, total := 0, 0
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		total++
		row := logits.Row(i)
		best := -1
		for j, v := range row {
			if v != v { // NaN
				continue
			}
			if best < 0 || v > row[best] {
				best = j
			}
		}
		if best >= 0 && int32(best) == labels[i] {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// MicroF1 computes the micro-averaged F1 score over masked rows of a
// multi-label problem: a label is predicted positive when its logit > 0
// (sigmoid > 0.5). Returns 0 when there are no positives at all.
func MicroF1(logits, targets *tensor.Matrix, mask []bool) float64 {
	if logits.Rows != targets.Rows || logits.Cols != targets.Cols {
		panic(fmt.Sprintf("metrics: shape mismatch %dx%d vs %dx%d", logits.Rows, logits.Cols, targets.Rows, targets.Cols))
	}
	var tp, fp, fn float64
	for i := 0; i < logits.Rows; i++ {
		if !mask[i] {
			continue
		}
		lrow, trow := logits.Row(i), targets.Row(i)
		for j, x := range lrow {
			pred := x > 0
			actual := trow[j] > 0.5
			switch {
			case pred && actual:
				tp++
			case pred && !actual:
				fp++
			case !pred && actual:
				fn++
			}
		}
	}
	denom := 2*tp + fp + fn
	if denom == 0 {
		return 0
	}
	return 2 * tp / denom
}

// Curve records a score per epoch for convergence plots.
type Curve struct {
	Name   string
	Epochs []int
	Values []float64
}

// Add appends one (epoch, value) observation.
func (c *Curve) Add(epoch int, value float64) {
	c.Epochs = append(c.Epochs, epoch)
	c.Values = append(c.Values, value)
}

// Best returns the maximum recorded value, or 0 if empty.
func (c *Curve) Best() float64 {
	best := 0.0
	for _, v := range c.Values {
		if v > best {
			best = v
		}
	}
	return best
}

// Final returns the last recorded value, or 0 if empty.
func (c *Curve) Final() float64 {
	if len(c.Values) == 0 {
		return 0
	}
	return c.Values[len(c.Values)-1]
}
