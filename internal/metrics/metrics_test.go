package metrics

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAccuracyBasic(t *testing.T) {
	logits := tensor.NewFrom(3, 2, []float32{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	})
	labels := []int32{0, 1, 0}
	got := Accuracy(logits, labels, []bool{true, true, true})
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestAccuracyRespectsMask(t *testing.T) {
	logits := tensor.NewFrom(2, 2, []float32{2, 1, 0, 5})
	labels := []int32{1, 1} // row 0 wrong, row 1 right
	if got := Accuracy(logits, labels, []bool{false, true}); got != 1 {
		t.Fatalf("masked accuracy = %v", got)
	}
	if got := Accuracy(logits, labels, []bool{false, false}); got != 0 {
		t.Fatalf("empty mask accuracy = %v", got)
	}
}

func TestMicroF1Perfect(t *testing.T) {
	logits := tensor.NewFrom(2, 3, []float32{5, -5, 5, -5, 5, -5})
	targets := tensor.NewFrom(2, 3, []float32{1, 0, 1, 0, 1, 0})
	if got := MicroF1(logits, targets, []bool{true, true}); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
}

func TestMicroF1KnownValue(t *testing.T) {
	// tp=1 (pred+ actual+), fp=1 (pred+ actual-), fn=1 (pred- actual+).
	logits := tensor.NewFrom(1, 3, []float32{5, 5, -5})
	targets := tensor.NewFrom(1, 3, []float32{1, 0, 1})
	got := MicroF1(logits, targets, []bool{true})
	want := 2.0 * 1 / (2*1 + 1 + 1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
}

func TestMicroF1EmptyIsZero(t *testing.T) {
	logits := tensor.NewFrom(1, 2, []float32{-1, -1})
	targets := tensor.New(1, 2)
	if got := MicroF1(logits, targets, []bool{true}); got != 0 {
		t.Fatalf("no-positive F1 = %v", got)
	}
}

func TestCurve(t *testing.T) {
	var c Curve
	if c.Best() != 0 || c.Final() != 0 {
		t.Fatal("empty curve must report 0")
	}
	c.Add(1, 0.5)
	c.Add(2, 0.9)
	c.Add(3, 0.7)
	if c.Best() != 0.9 || c.Final() != 0.7 {
		t.Fatalf("best=%v final=%v", c.Best(), c.Final())
	}
	if len(c.Epochs) != 3 {
		t.Fatal("epochs not recorded")
	}
}

// TestAccuracyTiesAreFirstWins pins the tie-break: equal logits resolve to
// the lowest class index, deterministically, so reported accuracy cannot
// drift between runs or builds.
func TestAccuracyTiesAreFirstWins(t *testing.T) {
	logits := tensor.NewFrom(2, 3, []float32{
		7, 7, 7, // three-way tie -> class 0
		1, 4, 4, // tie between 1 and 2 -> class 1
	})
	if got := Accuracy(logits, []int32{0, 1}, []bool{true, true}); got != 1 {
		t.Fatalf("tie-break accuracy = %v, want 1 (first index wins)", got)
	}
	if got := Accuracy(logits, []int32{2, 2}, []bool{true, true}); got != 0 {
		t.Fatalf("tie-break accuracy = %v, want 0 (later index must not win)", got)
	}
}

// TestAccuracyNaNRows: NaN logits never win the argmax, and an all-NaN row
// is wrong no matter the label — a diverged model must score 0, not pick
// class 0 and collect ~1/nClasses by accident.
func TestAccuracyNaNRows(t *testing.T) {
	nan := float32(math.NaN())
	logits := tensor.NewFrom(3, 3, []float32{
		nan, nan, nan, // all NaN: wrong even though label is 0
		nan, 2, 1, // NaN must not mask the real winner (class 1)
		3, nan, 2, // NaN in a losing slot changes nothing
	})
	labels := []int32{0, 1, 0}
	got := Accuracy(logits, labels, []bool{true, true, true})
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("NaN-row accuracy = %v, want 2/3", got)
	}
	// Fully diverged: every row all-NaN, every label class 0 — the old
	// argmax would have scored this 100%.
	diverged := tensor.NewFrom(2, 2, []float32{nan, nan, nan, nan})
	if got := Accuracy(diverged, []int32{0, 0}, []bool{true, true}); got != 0 {
		t.Fatalf("all-NaN accuracy = %v, want 0", got)
	}
}

// TestMicroF1EdgeRows covers the mask/NaN edges of MicroF1: masked rows
// contribute nothing, and NaN logits read as not-predicted (NaN > 0 is
// false) so they land in fn when the label is positive.
func TestMicroF1EdgeRows(t *testing.T) {
	nan := float32(math.NaN())
	logits := tensor.NewFrom(3, 2, []float32{
		5, -5, // masked out entirely
		nan, nan, // NaN: no positive predictions
		5, -5, // tp=1 on col 0
	})
	targets := tensor.NewFrom(3, 2, []float32{
		1, 1,
		1, 0, // the NaN prediction misses this positive: fn=1
		1, 0,
	})
	got := MicroF1(logits, targets, []bool{false, true, true})
	want := 2.0 * 1 / (2*1 + 0 + 1) // tp=1, fp=0, fn=1
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("edge-row F1 = %v, want %v", got, want)
	}
	if got := MicroF1(logits, targets, []bool{false, false, false}); got != 0 {
		t.Fatalf("empty-mask F1 = %v, want 0", got)
	}
}
