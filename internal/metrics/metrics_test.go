package metrics

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func TestAccuracyBasic(t *testing.T) {
	logits := tensor.NewFrom(3, 2, []float32{
		2, 1, // pred 0
		0, 5, // pred 1
		3, 4, // pred 1
	})
	labels := []int32{0, 1, 0}
	got := Accuracy(logits, labels, []bool{true, true, true})
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestAccuracyRespectsMask(t *testing.T) {
	logits := tensor.NewFrom(2, 2, []float32{2, 1, 0, 5})
	labels := []int32{1, 1} // row 0 wrong, row 1 right
	if got := Accuracy(logits, labels, []bool{false, true}); got != 1 {
		t.Fatalf("masked accuracy = %v", got)
	}
	if got := Accuracy(logits, labels, []bool{false, false}); got != 0 {
		t.Fatalf("empty mask accuracy = %v", got)
	}
}

func TestMicroF1Perfect(t *testing.T) {
	logits := tensor.NewFrom(2, 3, []float32{5, -5, 5, -5, 5, -5})
	targets := tensor.NewFrom(2, 3, []float32{1, 0, 1, 0, 1, 0})
	if got := MicroF1(logits, targets, []bool{true, true}); got != 1 {
		t.Fatalf("perfect F1 = %v", got)
	}
}

func TestMicroF1KnownValue(t *testing.T) {
	// tp=1 (pred+ actual+), fp=1 (pred+ actual-), fn=1 (pred- actual+).
	logits := tensor.NewFrom(1, 3, []float32{5, 5, -5})
	targets := tensor.NewFrom(1, 3, []float32{1, 0, 1})
	got := MicroF1(logits, targets, []bool{true})
	want := 2.0 * 1 / (2*1 + 1 + 1)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
}

func TestMicroF1EmptyIsZero(t *testing.T) {
	logits := tensor.NewFrom(1, 2, []float32{-1, -1})
	targets := tensor.New(1, 2)
	if got := MicroF1(logits, targets, []bool{true}); got != 0 {
		t.Fatalf("no-positive F1 = %v", got)
	}
}

func TestCurve(t *testing.T) {
	var c Curve
	if c.Best() != 0 || c.Final() != 0 {
		t.Fatal("empty curve must report 0")
	}
	c.Add(1, 0.5)
	c.Add(2, 0.9)
	c.Add(3, 0.7)
	if c.Best() != 0.9 || c.Final() != 0.7 {
		t.Fatalf("best=%v final=%v", c.Best(), c.Final())
	}
	if len(c.Epochs) != 3 {
		t.Fatal("epochs not recorded")
	}
}
