package comm

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loopbackTransports bootstraps a full k-rank TCP mesh over 127.0.0.1 and
// registers cleanup. The rendezvous listener is pre-bound so the test never
// races on a free port.
func loopbackTransports(t testing.TB, k int) []*TCPTransport {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ts := make([]*TCPTransport, k)
	errs := make([]error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			cfg := TCPConfig{Rank: r, World: k, Rendezvous: addr, Timeout: 10 * time.Second}
			if r == 0 {
				cfg.RendezvousListener = ln
			}
			ts[r], errs[r] = DialTCP(cfg)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, tp := range ts {
			tp.Close()
		}
	})
	return ts
}

// tcpGroup wraps loopback transports in a Group so tests can reuse the
// in-process Run driver over real sockets.
func tcpGroup(t testing.TB, k int) *Group {
	t.Helper()
	ts := loopbackTransports(t, k)
	generic := make([]Transport, k)
	for i, tp := range ts {
		generic[i] = tp
	}
	return NewGroup(generic)
}

func TestTCPPointToPointAndOrdering(t *testing.T) {
	g := tcpGroup(t, 2)
	g.Run(func(w *Worker) {
		if w.Rank() == 0 {
			for i := 0; i < 50; i++ {
				w.SendF32(1, 7, []float32{float32(i)})
			}
			w.SendI32(1, 8, []int32{-3, 1 << 30})
		} else {
			for i := 0; i < 50; i++ {
				if got := w.RecvF32(0, 7); got[0] != float32(i) {
					t.Errorf("out of order: got %v at %d", got[0], i)
				}
			}
			if got := w.RecvI32(0, 8); got[0] != -3 || got[1] != 1<<30 {
				t.Errorf("i32 payload corrupted: %v", got)
			}
		}
	})
}

func TestTCPInterleavedTagsDemuxed(t *testing.T) {
	// Frames for different tags share one connection; the demux must route
	// them into independent queues so receives can happen in any tag order.
	g := tcpGroup(t, 2)
	g.Run(func(w *Worker) {
		if w.Rank() == 0 {
			w.SendF32(1, 1, []float32{1})
			w.SendF32(1, 2, []float32{2})
			w.SendF32(1, 3, []float32{3})
		} else {
			if got := w.RecvF32(0, 3); got[0] != 3 {
				t.Errorf("tag 3: %v", got)
			}
			if got := w.RecvF32(0, 1); got[0] != 1 {
				t.Errorf("tag 1: %v", got)
			}
			if got := w.RecvF32(0, 2); got[0] != 2 {
				t.Errorf("tag 2: %v", got)
			}
		}
	})
}

func TestTCPBarrierSynchronizes(t *testing.T) {
	const k = 4
	g := tcpGroup(t, k)
	var phase atomic.Int32
	var violations atomic.Int32
	g.Run(func(w *Worker) {
		for round := int32(1); round <= 5; round++ {
			phase.Store(round)
			w.Barrier()
			if phase.Load() != round {
				violations.Add(1)
			}
			w.Barrier()
		}
	})
	if violations.Load() > 0 {
		t.Fatalf("%d barrier violations", violations.Load())
	}
}

// TestTCPMatchesChanBackend runs the same collective script on both backends
// and demands bit-identical results and identical per-rank accounting: the
// proof that byte counters are backend-independent and the cost model can
// trust either.
func TestTCPMatchesChanBackend(t *testing.T) {
	const k, n = 4, 997 // odd length exercises uneven ring chunks
	script := func(w *Worker, out [][]float32) {
		data := make([]float32, n)
		for i := range data {
			data[i] = float32(1.0/3.0) * float32(w.Rank()+1) * float32(i%13+1) * 1e-3
		}
		w.AllReduceSum(data, 40)
		own := []int32{int32(w.Rank() * 11)}
		gathered := w.AllGatherI32(own, 60)
		for r := 0; r < k; r++ {
			if gathered[r][0] != int32(r*11) {
				t.Errorf("rank %d: allgather[%d] = %v", w.Rank(), r, gathered[r])
			}
		}
		w.Barrier()
		out[w.Rank()] = data
	}

	chanC := New(k, 0)
	chanOut := make([][]float32, k)
	chanC.Run(func(w *Worker) { script(w, chanOut) })

	tcpG := tcpGroup(t, k)
	tcpOut := make([][]float32, k)
	tcpG.Run(func(w *Worker) { script(w, tcpOut) })

	for r := 0; r < k; r++ {
		for i := range chanOut[r] {
			if chanOut[r][i] != tcpOut[r][i] {
				t.Fatalf("rank %d elem %d: chan %v != tcp %v", r, i, chanOut[r][i], tcpOut[r][i])
			}
		}
		if cb, tb := chanC.BytesSent(r), tcpG.BytesSent(r); cb != tb {
			t.Fatalf("rank %d: chan sent %d bytes, tcp sent %d", r, cb, tb)
		}
		if cm, tm := chanC.MessagesSent(r), tcpG.MessagesSent(r); cm != tm {
			t.Fatalf("rank %d: chan sent %d messages, tcp sent %d", r, cm, tm)
		}
	}
}

func TestTCPWireOverheadAccounted(t *testing.T) {
	ts := loopbackTransports(t, 2)
	ts[0].SendF32(1, 1, make([]float32, 10))
	if got := ts[0].BytesSent(); got != 40 {
		t.Fatalf("payload bytes %d, want 40", got)
	}
	if got := ts[0].WireBytesSent(); got != 40+frameHeaderSize {
		t.Fatalf("wire bytes %d, want %d", got, 40+frameHeaderSize)
	}
	ts[1].RecvF32(0, 1)
	ts[0].ResetCounters()
	if ts[0].BytesSent() != 0 || ts[0].WireBytesSent() != 0 {
		t.Fatal("ResetCounters did not zero")
	}
}

// TestTCPPeerDeathFailsSurvivors is the fault-injection case: one rank's
// connections are torn down mid-protocol (as a SIGKILL would) and every
// surviving rank must surface a transport error within the deadline — no
// deadlock — and the demux goroutines must all exit (no leak).
func TestTCPPeerDeathFailsSurvivors(t *testing.T) {
	before := runtime.NumGoroutine()
	const k = 4
	ts := loopbackTransports(t, k)
	failures := make(chan error, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if te, ok := p.(*TransportError); ok {
						failures <- te
					} else {
						t.Errorf("rank %d: panic value %T is not a *TransportError: %v", r, p, p)
					}
				}
			}()
			w := NewWorker(ts[r])
			for round := 0; ; round++ {
				if r == k-1 && round == 3 {
					ts[r].Abort() // the emulated kill
					return
				}
				w.SendF32((r+1)%k, round, []float32{float32(r)})
				w.RecvF32((r+k-1)%k, round)
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("survivors did not observe the dead peer within the deadline")
	}
	if got := len(failures); got != k-1 {
		t.Fatalf("%d ranks surfaced a transport error, want %d survivors", got, k-1)
	}
	for _, tp := range ts[:k-1] {
		if tp.Err() == nil {
			t.Fatal("surviving transport recorded no failure")
		}
	}
	// All demux goroutines must have exited with the connections.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("goroutine leak: %d before fault injection, %d after teardown", before, after)
	}
}

// TestTCPGracefulCloseUnblocksPendingRecv: a clean Close by a peer must not
// strand ranks still waiting on it — their Recv fails with a "closed" error
// — but messages sent before the goodbye must still be delivered.
func TestTCPGracefulCloseUnblocksPendingRecv(t *testing.T) {
	ts := loopbackTransports(t, 2)
	ts[1].SendF32(0, 5, []float32{42})
	ts[1].Close()

	if got := ts[0].RecvF32(1, 5); got[0] != 42 { // queued before the goodbye
		t.Fatalf("pre-close message lost: %v", got)
	}
	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		ts[0].RecvF32(1, 6) // nothing more is coming
	}()
	select {
	case p := <-panicked:
		if p == nil || !strings.Contains(p.(*TransportError).Error(), "closed its transport") {
			t.Fatalf("expected closed-peer error, got %v", p)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv from a closed peer deadlocked")
	}
}

// TestChanAbortUnblocksPeers: Abort must work on the channel backend too —
// a rank dying mid-protocol poisons the shared fabric so peers blocked in
// Recv (or in a backpressured Send) panic instead of deadlocking forever.
func TestChanAbortUnblocksPeers(t *testing.T) {
	c := New(3, 0)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		c.Run(func(w *Worker) {
			if w.Rank() == 0 {
				w.Transport().Abort()
				return
			}
			w.RecvF32(0, 1) // nothing will ever arrive
		})
	}()
	select {
	case p := <-done:
		if _, ok := p.(*TransportError); !ok {
			t.Fatalf("expected *TransportError panic from Run, got %v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peers of an aborted chan transport deadlocked")
	}
}

// TestChanAbortUnblocksBarrier: Barrier is abort-aware on the channel
// backend too — a rank waiting on a dead peer's barrier entry fails instead
// of blocking in the condition variable forever.
func TestChanAbortUnblocksBarrier(t *testing.T) {
	c := New(2, 0)
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		c.Run(func(w *Worker) {
			if w.Rank() == 0 {
				w.Transport().Abort()
				return
			}
			w.Barrier() // rank 0 will never arrive
		})
	}()
	select {
	case p := <-done:
		if _, ok := p.(*TransportError); !ok {
			t.Fatalf("expected *TransportError panic from Run, got %v", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("barrier wait on an aborted chan transport deadlocked")
	}
}

func TestTCPWorldOfOne(t *testing.T) {
	tp, err := DialTCP(TCPConfig{Rank: 0, World: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(tp)
	data := []float32{3}
	w.AllReduceSum(data, 0)
	if data[0] != 3 {
		t.Fatalf("m=1 allreduce changed data: %v", data)
	}
	w.Barrier()
	if err := tp.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDialTCPRejectsBadConfig(t *testing.T) {
	if _, err := DialTCP(TCPConfig{Rank: 0, World: 0}); err == nil {
		t.Fatal("world 0 must be rejected")
	}
	if _, err := DialTCP(TCPConfig{Rank: 5, World: 2, Rendezvous: "127.0.0.1:1"}); err == nil {
		t.Fatal("rank out of range must be rejected")
	}
}

func TestDialTCPTimesOutWithoutRendezvous(t *testing.T) {
	// Nothing listens at the rendezvous address; a non-zero rank must give
	// up with a useful error once the bootstrap deadline passes.
	_, err := DialTCP(TCPConfig{
		Rank: 1, World: 2, Rendezvous: "127.0.0.1:1", Timeout: 300 * time.Millisecond,
	})
	if err == nil || !strings.Contains(err.Error(), "rendezvous") {
		t.Fatalf("expected rendezvous timeout error, got %v", err)
	}
}
