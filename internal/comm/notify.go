package comm

import "sync"

// Completion notifications for posted receives — the select-any primitive
// behind the arrival-order halo drain (see Transport.IRecvF32Notify). Each
// endpoint owns one notifyReg: a ledger that matches, per (src, tag) stream,
// consumable messages against posted notification requests in FIFO order.
//
// Backends feed the ledger from their delivery path: the channel backend
// stamps an arrival immediately before enqueuing a float32 payload onto the
// destination's pair queue, and the TCP backend stamps from the demux
// goroutine immediately before routing a decoded f32 frame into its
// per-(peer,tag) queue. Stamping strictly before enqueue means a notified
// consumer's receive can block only momentarily (until the in-flight enqueue
// lands), never spuriously.
//
// Contract: within one transport's lifetime, a given (src, tag) float32
// stream must be consumed either always through notify-posted receives or
// always through plain receives. Mixing the two on one stream would strand
// arrival credits (a plain receive does not consume a stamp) and fire a
// later notification before its message exists. The training protocol obeys
// this naturally — a trainer's schedule is fixed at construction, and the
// collectives' tags never use notifications.

// notifyKey identifies one directed (src, tag) message stream at an endpoint.
type notifyKey struct{ src, tag int }

// notifyWaiter is one posted notification: token is sent on ch when a
// message on the stream becomes consumable.
type notifyWaiter struct {
	ch    chan<- int
	token int
}

// notifyEntry is the per-stream ledger state. Exactly one of pending/waiters
// is nonzero at any time: unmatched arrivals accumulate in pending, unmatched
// registrations queue in waiters (FIFO).
type notifyEntry struct {
	pending int
	waiters []notifyWaiter
}

// notifyReg is one endpoint's completion-notification ledger. All methods
// are safe for concurrent use; waiter channels must have spare capacity (the
// ledger sends without selecting, so an undersized channel would block the
// delivery path).
type notifyReg struct {
	mu      sync.Mutex
	m       map[notifyKey]*notifyEntry
	flushed bool
	// departed marks peers that said goodbye: registrations against them
	// fire immediately (their read loop is gone, so nobody would ever wake
	// the waiter), and the matching receive reports the departure.
	departed map[int]bool
}

func (r *notifyReg) entry(k notifyKey) *notifyEntry {
	if r.m == nil {
		r.m = make(map[notifyKey]*notifyEntry)
	}
	e := r.m[k]
	if e == nil {
		e = &notifyEntry{}
		r.m[k] = e
	}
	return e
}

// arrived records one consumable message on (src, tag), waking the oldest
// posted notification if any is waiting. Called by the delivering side
// before the message is enqueued.
func (r *notifyReg) arrived(src, tag int) {
	r.mu.Lock()
	e := r.entry(notifyKey{src, tag})
	if len(e.waiters) > 0 {
		w := e.waiters[0]
		copy(e.waiters, e.waiters[1:])
		e.waiters = e.waiters[:len(e.waiters)-1]
		r.mu.Unlock()
		w.ch <- w.token
		return
	}
	e.pending++
	r.mu.Unlock()
}

// register posts one notification for the next unclaimed message on
// (src, tag): token is sent on ch immediately if a message already arrived
// (or the transport failed — the matching receive then reports the failure),
// otherwise when one does.
func (r *notifyReg) register(src, tag int, ch chan<- int, token int) {
	r.mu.Lock()
	if r.flushed || r.departed[src] {
		r.mu.Unlock()
		ch <- token
		return
	}
	e := r.entry(notifyKey{src, tag})
	if e.pending > 0 {
		e.pending--
		r.mu.Unlock()
		ch <- token
		return
	}
	e.waiters = append(e.waiters, notifyWaiter{ch: ch, token: token})
	r.mu.Unlock()
}

// flush wakes every posted notification and makes all future registrations
// fire immediately. Called when the transport fails so a drain blocked on a
// notification observes the failure through its receive instead of hanging.
func (r *notifyReg) flush() {
	r.mu.Lock()
	r.flushed = true
	var wake []notifyWaiter
	for _, e := range r.m {
		wake = append(wake, e.waiters...)
		e.waiters = e.waiters[:0]
	}
	r.mu.Unlock()
	for _, w := range wake {
		w.ch <- w.token
	}
}

// flushSrc wakes the posted notifications for one peer and makes future
// registrations against it fire immediately (graceful goodbye: no more
// messages will come from it, and the matching receives will panic with a
// descriptive error). A message the peer delivered before leaving is still
// consumed normally — its arrival credit was stamped first, and the recv
// path prefers queued frames over the departure.
func (r *notifyReg) flushSrc(src int) {
	r.mu.Lock()
	if r.departed == nil {
		r.departed = make(map[int]bool)
	}
	r.departed[src] = true
	var wake []notifyWaiter
	for k, e := range r.m {
		if k.src == src {
			wake = append(wake, e.waiters...)
			e.waiters = e.waiters[:0]
		}
	}
	r.mu.Unlock()
	for _, w := range wake {
		w.ch <- w.token
	}
}
