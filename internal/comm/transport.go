package comm

import (
	"fmt"
	"sync"
)

// Transport is one rank's endpoint on a communication backend: tagged
// point-to-point sends and receives of float32/int32 payloads among k ranks,
// a barrier, and exact payload-byte accounting. Two backends exist:
//
//   - ChanTransport: k goroutines in one process over Go channels (zero-copy,
//     allocation-free); created in bulk by New.
//   - TCPTransport: one OS process per rank over persistent TCP connections;
//     created by DialTCP with a rendezvous address.
//
// Semantics every backend must provide — the training protocol and the
// collectives in Worker rely on all four:
//
//   - messages between a (src,dst) pair with the same tag arrive in send
//     order (per-pair FIFO);
//   - Send blocks only for backpressure (bounded queues) and never drops;
//   - Recv blocks until a matching message arrives or the transport fails,
//     in which case it panics with a descriptive error (converted to an
//     ordinary error at the epoch boundary by RankTrainer.TrainEpoch)
//     rather than deadlocking;
//   - BytesSent counts exactly 4 bytes per payload element and nothing else
//     (no headers, no barrier traffic), so byte accounting is
//     backend-independent and feeds the cost model unchanged.
//
// The payload passed to Send is owned by the transport until delivery: the
// sender must not mutate it afterwards (ChanTransport passes the slice by
// reference, matching RDMA semantics; TCPTransport serializes it before
// returning, which is strictly safer). Backends need not support sending to
// the local rank; the training protocol never does.
type Transport interface {
	Rank() int
	Size() int
	SendF32(dst, tag int, data []float32)
	SendI32(dst, tag int, data []int32)
	RecvF32(src, tag int) []float32
	RecvI32(src, tag int) []int32
	// ISendF32 initiates a nonblocking tagged send and returns a completion
	// handle. Ordering with blocking sends is preserved (one FIFO per pair).
	// Payload ownership matches SendF32 per backend: the TCP backend
	// serializes before returning, so the caller's slice is free immediately;
	// the channel backend holds the slice until delivery.
	ISendF32(dst, tag int, data []float32) PendingSend
	// IRecvF32 posts a nonblocking receive for the next float32 message with
	// the given tag from src. Both backends progress in the background — the
	// channel fabric is push-based and the TCP demux goroutines drain the
	// sockets — so the payload can arrive while the caller computes; Wait
	// only dequeues it (or blocks until arrival). Wait exactly once.
	IRecvF32(src, tag int) PendingRecvF32
	// IRecvF32Notify posts a nonblocking receive like IRecvF32 and
	// additionally arranges for token to be sent on notify exactly once when
	// the matching message becomes consumable — the select-any primitive: a
	// caller with several posted receives blocks on one channel and consumes
	// whichever peer's payload lands first. The handle's Wait then returns
	// (almost) immediately.
	//
	// notify must have spare capacity for every outstanding notification
	// posted on it (the transport sends without selecting). If the transport
	// fails or the peer leaves before the message arrives, the token is
	// still delivered and the matching Wait panics with the descriptive
	// error, so a drain never deadlocks on a notification.
	//
	// Within a transport's lifetime a given (src, tag) stream must be
	// consumed either always through notify-posted receives or always
	// through plain ones; mixing strands arrival credits (see notifyReg).
	IRecvF32Notify(src, tag int, notify chan<- int, token int) PendingRecvF32
	// RecycleF32 hands a slice previously returned by RecvF32 (or a recv
	// handle's Wait) back to the transport for reuse. Optional, and a no-op
	// on the channel backend — whose received slices belong to the sender —
	// but on the TCP backend it feeds the receive-payload pool that keeps
	// steady-state epochs allocation-free. The caller must not touch data
	// afterwards.
	RecycleF32(data []float32)
	Barrier()
	BytesSent() int64
	MessagesSent() int64
	ResetCounters()
	// Abort fails the transport: every blocked and subsequent Send/Recv —
	// on this rank and, transitively, on every peer — panics with a
	// descriptive error instead of waiting forever. Called when an epoch
	// dies mid-protocol so the other ranks are not left deadlocked on
	// messages that will never arrive.
	Abort()
	Close() error
}

// PendingSend is the completion handle of a nonblocking ISendF32. The zero
// value is an already-completed send (what the channel backend returns: its
// sends complete once the message is on the fabric). For the TCP backend,
// Wait blocks until the frame has been handed to the OS by the peer's writer
// goroutine, panicking with a *TransportError if the transport fails first.
// Waiting is optional — the epoch protocol never does; the payload is free
// as soon as ISendF32 returns (TCP serializes eagerly, and the channel
// backend's ownership rule already forbids mutating a sent slice).
//
// The handle is a concrete struct rather than an interface on purpose: the
// engine creates one per halo message per epoch, and an interface value
// would heap-allocate on the hot path. A future backend with its own async
// completion story should generalize the fields (or swap in a small
// completion closure) rather than bolt on a parallel handle type.
type PendingSend struct {
	t   *TCPTransport
	p   *tcpPeer
	seq uint64
}

// Wait blocks until the send has completed (see type doc).
func (s PendingSend) Wait() {
	if s.t != nil {
		s.t.waitWritten(s.p, s.seq)
	}
}

// PendingRecvF32 is the handle of a posted nonblocking receive; Wait returns
// the payload, blocking until it arrives or the transport fails (panic with
// a descriptive error, like RecvF32). Wait must be called exactly once.
type PendingRecvF32 struct {
	t        Transport
	src, tag int
}

// Wait dequeues the posted receive's payload (see type doc).
func (r PendingRecvF32) Wait() []float32 { return r.t.RecvF32(r.src, r.tag) }

// ringScratch holds the per-rank send buffer for the ring AllReduce's first
// reduce-scatter step (the only message whose payload cannot alias the
// caller's data). Two buffers alternate by call parity: before a rank can be
// two collectives ahead, its successor must have drained every message of
// the collective two back (each send in the ring transitively requires the
// whole ring to have progressed), so the buffer being rewritten is never
// still queued.
type ringScratch struct {
	bufs  [2][]float32
	calls uint64
}

// Worker is one rank's handle: the transport primitives plus the collectives
// built on top of them (ring AllReduce, variable AllGather). Methods on a
// Worker must be called only from the goroutine driving that rank.
type Worker struct {
	t    Transport
	ring ringScratch
}

// NewWorker wraps a transport endpoint. Collective scratch state lives in
// the Worker, so one rank must keep using the same Worker across epochs.
func NewWorker(t Transport) *Worker { return &Worker{t: t} }

// Transport returns the underlying backend endpoint.
func (w *Worker) Transport() Transport { return w.t }

// Rank returns this worker's id in [0, Size).
func (w *Worker) Rank() int { return w.t.Rank() }

// Size returns the cluster size.
func (w *Worker) Size() int { return w.t.Size() }

// SendF32 sends a float32 payload to dst with a tag. The payload is owned by
// the transport until delivery; the sender must not mutate it afterwards.
func (w *Worker) SendF32(dst, tag int, data []float32) { w.t.SendF32(dst, tag, data) }

// SendI32 sends an int32 payload to dst with a tag.
func (w *Worker) SendI32(dst, tag int, data []int32) { w.t.SendI32(dst, tag, data) }

// RecvF32 receives the next float32 message from src, which must carry the
// expected tag; a tag mismatch means a protocol bug and panics.
func (w *Worker) RecvF32(src, tag int) []float32 { return w.t.RecvF32(src, tag) }

// RecvI32 receives the next int32 message from src with the expected tag.
func (w *Worker) RecvI32(src, tag int) []int32 { return w.t.RecvI32(src, tag) }

// ISendF32 initiates a nonblocking send; see Transport.ISendF32.
func (w *Worker) ISendF32(dst, tag int, data []float32) PendingSend {
	return w.t.ISendF32(dst, tag, data)
}

// IRecvF32 posts a nonblocking receive; see Transport.IRecvF32.
func (w *Worker) IRecvF32(src, tag int) PendingRecvF32 { return w.t.IRecvF32(src, tag) }

// IRecvF32Notify posts a nonblocking receive with a completion
// notification; see Transport.IRecvF32Notify.
func (w *Worker) IRecvF32Notify(src, tag int, notify chan<- int, token int) PendingRecvF32 {
	return w.t.IRecvF32Notify(src, tag, notify, token)
}

// RecycleF32 returns a received payload to the transport's buffer pool; see
// Transport.RecycleF32.
func (w *Worker) RecycleF32(data []float32) { w.t.RecycleF32(data) }

// Barrier blocks until every rank has entered it.
func (w *Worker) Barrier() { w.t.Barrier() }

// AllReduceSum sums data elementwise across all workers; on return every
// worker's slice holds the global sum, bit-identical on every rank.
//
// The implementation is a ring reduce-scatter followed by a ring all-gather
// (the collective structure NCCL and Gloo use): data is split into m chunks;
// in m−1 steps each rank forwards a partially-reduced chunk to its successor
// while accumulating the chunk arriving from its predecessor, leaving rank r
// with the fully-reduced chunk (r+1) mod m; m−1 further forwarding steps
// distribute the finished chunks. Every rank sends 2(m−1)·n/m ≈ 2n floats
// regardless of m, versus the O(m·n) a reduce-to-root places on rank 0.
// Each chunk's final value is computed once and copied verbatim by the
// all-gather, so all ranks observe identical bits — on every backend, since
// the arithmetic never depends on how payloads move.
func (w *Worker) AllReduceSum(data []float32, tag int) {
	m := w.Size()
	n := len(data)
	if m == 1 || n == 0 {
		return
	}
	lo := func(c int) int { return c * n / m }
	hi := func(c int) int { return (c + 1) * n / m }
	rank := w.Rank()
	next := (rank + 1) % m
	prev := (rank + m - 1) % m

	// Step-0 send must not alias data (the chunk is overwritten by the
	// all-gather before the message is necessarily consumed); copy it into
	// the parity-alternating scratch buffer. Every later send forwards a
	// received buffer, whose ownership travels with the message.
	rs := &w.ring
	scratch := rs.bufs[rs.calls&1]
	rs.calls++
	sz := hi(rank) - lo(rank)
	if cap(scratch) < sz {
		scratch = make([]float32, sz)
		rs.bufs[(rs.calls-1)&1] = scratch
	}
	scratch = scratch[:sz]
	copy(scratch, data[lo(rank):hi(rank)])
	w.SendF32(next, tag, scratch)

	// Reduce-scatter: accumulate the incoming chunk into the received
	// buffer (data stays untouched until the final values arrive) and pass
	// it on. Forwarded and fully consumed buffers are recycled into the
	// transport's pool — safe on both backends, because the TCP backend
	// serializes a payload before Send returns and the channel backend's
	// RecycleF32 is a no-op (its slices belong to the sender).
	var part []float32
	for s := 0; s < m-1; s++ {
		c := (rank - s - 1 + m) % m
		part = w.RecvF32(prev, tag)
		seg := data[lo(c):hi(c)]
		if len(part) != len(seg) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(part), len(seg)))
		}
		for i, v := range seg {
			part[i] += v
		}
		if s < m-2 {
			w.SendF32(next, tag, part)
			w.RecycleF32(part)
		}
	}

	// part now holds the fully reduced chunk (rank+1) mod m.
	done := (rank + 1) % m
	copy(data[lo(done):hi(done)], part)

	// All-gather: circulate the finished chunks around the ring.
	w.SendF32(next, tag+1, part)
	w.RecycleF32(part)
	for s := 0; s < m-1; s++ {
		c := (rank - s + m) % m
		got := w.RecvF32(prev, tag+1)
		copy(data[lo(c):hi(c)], got)
		if s < m-2 {
			w.SendF32(next, tag+1, got)
		}
		w.RecycleF32(got)
	}
}

// AllGatherI32 gathers each worker's variable-length int32 slice; the result
// is indexed by rank and identical on every worker.
func (w *Worker) AllGatherI32(data []int32, tag int) [][]int32 {
	m := w.Size()
	out := make([][]int32, m)
	own := make([]int32, len(data))
	copy(own, data)
	out[w.Rank()] = own
	for dst := 0; dst < m; dst++ {
		if dst != w.Rank() {
			w.SendI32(dst, tag, own)
		}
	}
	for src := 0; src < m; src++ {
		if src != w.Rank() {
			out[src] = w.RecvI32(src, tag)
		}
	}
	return out
}

// Group drives k co-located transport endpoints from one process: one
// persistent Worker per rank plus the Run fan-out the in-process trainer
// uses. The endpoints can belong to any backend — k ChanTransports of one
// in-process cluster (what New returns) or k loopback TCPTransports (what
// the cross-backend equivalence tests build) — which is what makes
// core.NewParallelTrainerOver backend-agnostic.
type Group struct {
	workers []Worker
}

// NewGroup assembles a group from one endpoint per rank; ts[i] must be the
// endpoint for rank i and all endpoints must agree on the group size.
func NewGroup(ts []Transport) *Group {
	if len(ts) == 0 {
		panic("comm: empty transport group")
	}
	g := &Group{workers: make([]Worker, len(ts))}
	for i, t := range ts {
		if t.Rank() != i || t.Size() != len(ts) {
			panic(fmt.Sprintf("comm: transport %d reports rank %d of %d, want rank %d of %d",
				i, t.Rank(), t.Size(), i, len(ts)))
		}
		g.workers[i] = Worker{t: t}
	}
	return g
}

// Size returns the number of workers.
func (g *Group) Size() int { return len(g.workers) }

// Worker returns the handle for the given rank.
func (g *Group) Worker(rank int) *Worker {
	if rank < 0 || rank >= len(g.workers) {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, len(g.workers)))
	}
	return &g.workers[rank]
}

// Run executes fn concurrently on every worker and waits for all to finish.
// A panic in any worker is re-raised (first one wins) after all goroutines
// have stopped or panicked.
func (g *Group) Run(fn func(w *Worker)) {
	var wg sync.WaitGroup
	panics := make(chan any, len(g.workers))
	for r := range g.workers {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			fn(g.Worker(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// BytesSent returns the total payload bytes sent by rank since the last
// ResetCounters.
func (g *Group) BytesSent(rank int) int64 { return g.workers[rank].t.BytesSent() }

// TotalBytesSent sums BytesSent over all workers.
func (g *Group) TotalBytesSent() int64 {
	var t int64
	for r := range g.workers {
		t += g.workers[r].t.BytesSent()
	}
	return t
}

// MessagesSent returns the number of messages sent by rank.
func (g *Group) MessagesSent(rank int) int64 { return g.workers[rank].t.MessagesSent() }

// ResetCounters zeroes all byte and message counters.
func (g *Group) ResetCounters() {
	for r := range g.workers {
		g.workers[r].t.ResetCounters()
	}
}

// Close closes every endpoint in the group and returns the first error.
func (g *Group) Close() error {
	var first error
	for r := range g.workers {
		if err := g.workers[r].t.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
