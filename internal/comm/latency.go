package comm

import (
	"sync"
	"time"
)

// WithLatency wraps every endpoint of a co-located group so that each
// payload message becomes *consumable* only `delay` after it was sent,
// modelling the propagation latency of a real link on top of whatever the
// underlying backend costs. It is shorthand for WithLinkModel with a uniform
// base latency; see LinkModel for the richer per-link form.
func WithLatency(g *Group, delay time.Duration) *Group {
	return WithLinkModel(g, LinkModel{Latency: delay})
}

// Link identifies one directed (src, dst) rank pair.
type Link struct{ Src, Dst int }

// LinkModel describes a simulated network for WithLinkModel. The delay of a
// message of n payload bytes on link (s→d) is
//
//	base(s→d) + n/BytesPerSecond + jitter
//
// where base is PerLink[{s,d}] when present and Latency otherwise, the
// bandwidth term is skipped when BytesPerSecond is 0 (infinite link), and
// jitter is drawn uniformly from [0, Jitter) by a deterministic per-message
// hash of (Seed, src, dst, tag, per-stream sequence number) — so two runs of
// the same protocol see identical delays and remain reproducible.
type LinkModel struct {
	// Latency is the base one-way propagation delay of every link without a
	// PerLink override.
	Latency time.Duration
	// PerLink overrides the base latency of individual directed links —
	// skewed links let a benchmark force peer-completion order to invert.
	PerLink map[Link]time.Duration
	// BytesPerSecond is the link bandwidth applied to payload bytes;
	// 0 means infinite.
	BytesPerSecond float64
	// Jitter is the exclusive upper bound of the per-message jitter term;
	// 0 disables jitter.
	Jitter time.Duration
	// Seed seeds the deterministic jitter stream.
	Seed uint64
}

// baseOf returns the base latency of one directed link.
func (m *LinkModel) baseOf(src, dst int) time.Duration {
	if d, ok := m.PerLink[Link{Src: src, Dst: dst}]; ok {
		return d
	}
	return m.Latency
}

// delayOf computes the full modeled delay of the seq'th message on a
// directed (src, dst, tag) stream carrying payloadBytes.
func (m *LinkModel) delayOf(src, dst, tag int, payloadBytes int, seq uint64) time.Duration {
	d := m.baseOf(src, dst)
	if m.BytesPerSecond > 0 {
		d += time.Duration(float64(payloadBytes) / m.BytesPerSecond * float64(time.Second))
	}
	if m.Jitter > 0 {
		d += time.Duration(jitterHash(m.Seed, src, dst, tag, seq) % uint64(m.Jitter))
	}
	return d
}

// jitterHash is a splitmix64-style mix of the per-message identity, giving
// every message an independent, reproducible jitter draw.
func jitterHash(seed uint64, src, dst, tag int, seq uint64) uint64 {
	z := seed ^ uint64(src)<<48 ^ uint64(dst)<<32 ^ uint64(uint32(tag))<<16 ^ seq
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// WithLinkModel wraps every endpoint of a co-located group so each payload
// message becomes *consumable* only after the model's per-message delay,
// counted from its send. The receive path first performs the backend
// receive, then parks until sendTime+delay — so time a rank spends computing
// while a message is in flight counts against the link delay, exactly as on
// real hardware. That makes the decorator the honest way to measure
// communication/computation overlap on machines whose loopback latency is
// negligible (or where co-scheduled ranks serialize on the CPU, hiding
// nothing): the injected delay sleeps instead of burning cycles, so overlap
// can genuinely reclaim it.
//
// Completion notifications (IRecvF32Notify) are delayed the same way: the
// token is forwarded only once the message is due, so an arrival-order
// drain over a skewed model observes the modeled completion order, not the
// backend's.
//
// Payload bytes, message counts, and delivered bits are untouched — training
// over a wrapped group is bit-identical to the bare group. Control traffic
// (Barrier) is not delayed. The decorator needs a shared clock ledger
// between sender and receiver, so it applies only to groups whose endpoints
// live in one process (the channel cluster or a loopback TCP mesh); it is a
// measurement and simulation tool, not a deployment feature.
func WithLinkModel(g *Group, m LinkModel) *Group {
	s := &linkState{model: m, due: map[linkKey]*stampQueue{}, prepaid: map[linkKey]int{}}
	ts := make([]Transport, g.Size())
	for i := range ts {
		ts[i] = &latencyTransport{Transport: g.workers[i].t, s: s}
	}
	return NewGroup(ts)
}

// linkKey identifies one directed (src, dst, tag) message stream.
type linkKey struct{ src, dst, tag int }

// stamp is one in-flight message's send time and modeled delay.
type stamp struct {
	at    time.Time
	delay time.Duration
}

// stampQueue is a FIFO of in-flight stamps backed by a ring buffer, so the
// ledger's memory stays bounded by the maximum number of simultaneously
// in-flight messages per stream instead of growing by one slot per message
// forever (the bug the old pop-by-reslice ledger had). seq counts every
// message ever pushed, feeding the deterministic jitter stream.
type stampQueue struct {
	buf  []stamp
	head int
	n    int
	seq  uint64
}

func (q *stampQueue) push(s stamp) {
	if q.n == len(q.buf) {
		grown := make([]stamp, max(4, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = s
	q.n++
}

func (q *stampQueue) pop() (stamp, bool) {
	if q.n == 0 {
		return stamp{}, false
	}
	s := q.buf[q.head]
	q.buf[q.head] = stamp{}
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return s, true
}

// linkState is the shared send-stamp ledger of one wrapped group.
type linkState struct {
	model LinkModel
	mu    sync.Mutex
	due   map[linkKey]*stampQueue
	// prepaid counts messages whose delay was already served by a
	// notification forwarder (see latencyTransport.IRecvF32Notify); the
	// matching receive must not pop a stamp or sleep again.
	prepaid map[linkKey]int
}

func (s *linkState) queue(k linkKey) *stampQueue {
	q := s.due[k]
	if q == nil {
		q = &stampQueue{}
		s.due[k] = q
	}
	return q
}

// stampMsg records a message's send time and modeled delay; streams are FIFO
// per key, matching the transport ordering contract.
func (s *linkState) stampMsg(src, dst, tag, payloadBytes int) {
	s.mu.Lock()
	q := s.queue(linkKey{src, dst, tag})
	delay := s.model.delayOf(src, dst, tag, payloadBytes, q.seq)
	q.seq++
	q.push(stamp{at: time.Now(), delay: delay})
	s.mu.Unlock()
}

// arrive pops the oldest stamp for the key and parks until the message is
// due — unless a notification forwarder already served the delay (prepaid).
// The pop happens after the backend receive completed, so the stamp is
// guaranteed to be there (stamping happens before the backend send, which
// happens before delivery).
func (s *linkState) arrive(src, dst, tag int) {
	k := linkKey{src, dst, tag}
	s.mu.Lock()
	if s.prepaid[k] > 0 {
		s.prepaid[k]--
		s.mu.Unlock()
		return
	}
	st, ok := s.queue(k).pop()
	s.mu.Unlock()
	if ok {
		if wait := time.Until(st.at.Add(st.delay)); wait > 0 {
			time.Sleep(wait)
		}
	}
}

// prepay pops the oldest stamp for the key, parks until the message is due,
// and marks the delay as served so the matching receive returns immediately.
// Called by the notification forwarder goroutine before the token is passed
// on.
func (s *linkState) prepay(src, dst, tag int) {
	k := linkKey{src, dst, tag}
	s.mu.Lock()
	st, ok := s.queue(k).pop()
	s.mu.Unlock()
	if ok {
		if wait := time.Until(st.at.Add(st.delay)); wait > 0 {
			time.Sleep(wait)
		}
	}
	s.mu.Lock()
	s.prepaid[k]++
	s.mu.Unlock()
}

// latencyTransport decorates one endpoint; everything not overridden
// (Barrier, counters, Abort, Close, RecycleF32) passes through.
type latencyTransport struct {
	Transport
	s *linkState
}

func (t *latencyTransport) SendF32(dst, tag int, data []float32) {
	t.s.stampMsg(t.Rank(), dst, tag, 4*len(data))
	t.Transport.SendF32(dst, tag, data)
}

func (t *latencyTransport) SendI32(dst, tag int, data []int32) {
	t.s.stampMsg(t.Rank(), dst, tag, 4*len(data))
	t.Transport.SendI32(dst, tag, data)
}

func (t *latencyTransport) ISendF32(dst, tag int, data []float32) PendingSend {
	t.s.stampMsg(t.Rank(), dst, tag, 4*len(data))
	return t.Transport.ISendF32(dst, tag, data)
}

func (t *latencyTransport) RecvF32(src, tag int) []float32 {
	out := t.Transport.RecvF32(src, tag)
	t.s.arrive(src, t.Rank(), tag)
	return out
}

func (t *latencyTransport) RecvI32(src, tag int) []int32 {
	out := t.Transport.RecvI32(src, tag)
	t.s.arrive(src, t.Rank(), tag)
	return out
}

// IRecvF32 re-points the handle at the wrapper so Wait applies the link
// delay.
func (t *latencyTransport) IRecvF32(src, tag int) PendingRecvF32 {
	return PendingRecvF32{t: t, src: src, tag: tag}
}

// IRecvF32Notify interposes a forwarder between the backend's notification
// and the caller's channel: the forwarder waits for the backend arrival,
// serves the modeled delay (prepaying it so the matching receive does not
// sleep again), and only then passes the token on. An arrival-order drain
// therefore observes the modeled completion order — a skewed LinkModel can
// invert it relative to the backend's delivery order.
func (t *latencyTransport) IRecvF32Notify(src, tag int, notify chan<- int, token int) PendingRecvF32 {
	inner := make(chan int, 1)
	t.Transport.IRecvF32Notify(src, tag, inner, 0)
	rank := t.Rank()
	go func() {
		<-inner
		t.s.prepay(src, rank, tag)
		notify <- token
	}()
	return PendingRecvF32{t: t, src: src, tag: tag}
}
