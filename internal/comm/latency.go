package comm

import (
	"sync"
	"time"
)

// WithLatency wraps every endpoint of a co-located group so that each
// payload message becomes *consumable* only `delay` after it was sent,
// modelling the propagation latency of a real link on top of whatever the
// underlying backend costs. The receive path first performs the backend
// receive, then parks until sendTime+delay — so time a rank spends computing
// while a message is in flight counts against the link latency, exactly as
// on real hardware. That makes the decorator the honest way to measure
// communication/computation overlap on machines whose loopback latency is
// negligible (or where co-scheduled ranks serialize on the CPU, hiding
// nothing): the injected delay sleeps instead of burning cycles, so overlap
// can genuinely reclaim it.
//
// Payload bytes, message counts, and delivered bits are untouched — training
// over a latency-wrapped group is bit-identical to the bare group. Control
// traffic (Barrier) is not delayed. The decorator needs a shared clock
// ledger between sender and receiver, so it applies only to groups whose
// endpoints live in one process (the channel cluster or a loopback TCP
// mesh); it is a measurement and simulation tool, not a deployment feature.
func WithLatency(g *Group, delay time.Duration) *Group {
	s := &linkState{delay: delay, due: map[linkKey][]time.Time{}}
	ts := make([]Transport, g.Size())
	for i := range ts {
		ts[i] = &latencyTransport{Transport: g.workers[i].t, s: s}
	}
	return NewGroup(ts)
}

// linkKey identifies one directed (src, dst, tag) message stream.
type linkKey struct{ src, dst, tag int }

// linkState is the shared send-timestamp ledger of one wrapped group.
type linkState struct {
	delay time.Duration
	mu    sync.Mutex
	due   map[linkKey][]time.Time
}

// stamp records a message's send time; streams are FIFO per key, matching
// the transport ordering contract.
func (s *linkState) stamp(src, dst, tag int) {
	s.mu.Lock()
	k := linkKey{src, dst, tag}
	s.due[k] = append(s.due[k], time.Now())
	s.mu.Unlock()
}

// arrive pops the oldest send time for the key and parks until it is
// delay old. The pop happens after the backend receive completed, so the
// stamp is guaranteed to be there (stamping happens before the backend
// send, which happens before delivery).
func (s *linkState) arrive(src, dst, tag int) {
	s.mu.Lock()
	k := linkKey{src, dst, tag}
	q := s.due[k]
	var ts time.Time
	if len(q) > 0 {
		ts = q[0]
		s.due[k] = q[1:]
	}
	s.mu.Unlock()
	if !ts.IsZero() {
		if wait := time.Until(ts.Add(s.delay)); wait > 0 {
			time.Sleep(wait)
		}
	}
}

// latencyTransport decorates one endpoint; everything not overridden
// (Barrier, counters, Abort, Close, RecycleF32) passes through.
type latencyTransport struct {
	Transport
	s *linkState
}

func (t *latencyTransport) SendF32(dst, tag int, data []float32) {
	t.s.stamp(t.Rank(), dst, tag)
	t.Transport.SendF32(dst, tag, data)
}

func (t *latencyTransport) SendI32(dst, tag int, data []int32) {
	t.s.stamp(t.Rank(), dst, tag)
	t.Transport.SendI32(dst, tag, data)
}

func (t *latencyTransport) ISendF32(dst, tag int, data []float32) PendingSend {
	t.s.stamp(t.Rank(), dst, tag)
	return t.Transport.ISendF32(dst, tag, data)
}

func (t *latencyTransport) RecvF32(src, tag int) []float32 {
	out := t.Transport.RecvF32(src, tag)
	t.s.arrive(src, t.Rank(), tag)
	return out
}

func (t *latencyTransport) RecvI32(src, tag int) []int32 {
	out := t.Transport.RecvI32(src, tag)
	t.s.arrive(src, t.Rank(), tag)
	return out
}

// IRecvF32 re-points the handle at the wrapper so Wait applies the link
// delay.
func (t *latencyTransport) IRecvF32(src, tag int) PendingRecvF32 {
	return PendingRecvF32{t: t, src: src, tag: tag}
}
