// Package comm provides the message-passing substrate that stands in for
// Gloo/NCCL in the paper's setup: tagged point-to-point sends and receives,
// AllReduce, variable AllGather, barriers, and per-rank byte accounting. The
// byte counters are exact and feed the cost model that projects wall-clock
// times onto the paper's hardware profiles.
//
// Backends are pluggable behind the Transport interface. The in-process
// backend (one goroutine per partition over Go channels, created by New)
// remains the fast zero-copy default; the TCP backend (one OS process per
// rank, created by DialTCP) runs the same protocol across real sockets and
// is proven bit-identical to the channel backend by the cross-backend tests
// in internal/core.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one tagged payload between a (src,dst) pair. Exactly one of
// F32/I32 is non-nil.
type message struct {
	tag int
	f32 []float32
	i32 []int32
}

// chanState is the shared fabric of one in-process cluster: the all-to-all
// channel matrix, the barrier, and the per-rank counters.
type chanState struct {
	m         int
	chans     [][]chan message // chans[src][dst]
	barrier   *reusableBarrier
	bytesSent []atomic.Int64 // per source rank
	msgsSent  []atomic.Int64
	regs      []notifyReg // per destination rank: completion notifications

	failErr error // written once before failCh closes
	failOn  sync.Once
	failCh  chan struct{}
}

// fail records the first failure and wakes every blocked send and receive
// on the shared fabric.
func (s *chanState) fail(err error) {
	s.failOn.Do(func() {
		s.failErr = err
		close(s.failCh)
		s.barrier.abort()
		for r := range s.regs {
			s.regs[r].flush()
		}
	})
}

// Cluster is a group of in-process workers connected all-to-all; it predates
// the Transport abstraction and is now simply a Group over ChanTransports.
type Cluster = Group

// New creates an in-process cluster of m workers connected all-to-all with
// Go channels.
//
// queueCap bounds the number of outstanding messages per directed (src,dst)
// pair; 0 selects the default of 256. The bound matters because a send to a
// full pair queue blocks until the receiver drains it — messages are never
// dropped — so queueCap only has to cover the maximum number of messages one
// rank can have in flight toward a single peer. For the training protocol
// that is 1 position message + L forward + L−1 backward halo messages per
// epoch toward any one peer, plus 2(m−1) ring AllReduce messages toward the
// ring successor; since the ring lets no rank run more than two collectives
// ahead of its successor, at most two epochs' worth can ever be queued, so
// capacity ≥ 2·(2L + 2(m−1) + 1) guarantees senders never stall. The default
// 256 covers every paper configuration (L ≤ 6, m ≤ 32 needs ≤ 150); larger
// setups still run correctly, senders just block for backpressure.
func New(m int, queueCap int) *Cluster {
	if m <= 0 {
		panic(fmt.Sprintf("comm: cluster size %d", m))
	}
	if queueCap <= 0 {
		queueCap = defaultQueueCap
	}
	s := &chanState{
		m:         m,
		chans:     make([][]chan message, m),
		barrier:   newBarrier(m),
		bytesSent: make([]atomic.Int64, m),
		msgsSent:  make([]atomic.Int64, m),
		regs:      make([]notifyReg, m),
		failCh:    make(chan struct{}),
	}
	ts := make([]Transport, m)
	for r := 0; r < m; r++ {
		s.chans[r] = make([]chan message, m)
		for d := 0; d < m; d++ {
			s.chans[r][d] = make(chan message, queueCap)
		}
		ts[r] = &ChanTransport{s: s, rank: r}
	}
	return NewGroup(ts)
}

// defaultQueueCap is the per-pair queue depth both backends use when the
// caller passes 0; see New for the derivation of the bound.
const defaultQueueCap = 256

// ChanTransport is one rank's endpoint on the in-process channel backend.
// Sends pass payload slices by reference (zero-copy), so the sender must not
// mutate a payload after Send — the same ownership rule real RDMA imposes.
type ChanTransport struct {
	s    *chanState
	rank int
}

// Rank returns this endpoint's id in [0, Size).
func (t *ChanTransport) Rank() int { return t.rank }

// Size returns the cluster size.
func (t *ChanTransport) Size() int { return t.s.m }

// send enqueues one message, blocking for backpressure but waking with a
// panic if the cluster is aborted while blocked.
func (t *ChanTransport) send(dst int, msg message) {
	select {
	case t.s.chans[t.rank][dst] <- msg:
	default:
		select {
		case t.s.chans[t.rank][dst] <- msg:
		case <-t.s.failCh:
			panic(&TransportError{Rank: t.rank, Err: t.s.failErr})
		}
	}
}

// SendF32 sends a float32 payload to dst with a tag. The payload is not
// copied; the sender must not mutate it afterwards. The arrival is stamped
// into the destination's notification ledger before the enqueue, so a
// notified consumer's receive can block only on the enqueue itself.
func (t *ChanTransport) SendF32(dst, tag int, data []float32) {
	t.account(4 * len(data))
	t.s.regs[dst].arrived(t.rank, tag)
	t.send(dst, message{tag: tag, f32: data})
}

// SendI32 sends an int32 payload to dst with a tag.
func (t *ChanTransport) SendI32(dst, tag int, data []int32) {
	t.account(4 * len(data))
	t.send(dst, message{tag: tag, i32: data})
}

// ISendF32 initiates a nonblocking send. On the channel backend a send is
// complete once the message is on the fabric — which SendF32 achieves
// without copying — so the returned handle is already done. It blocks only
// for queue backpressure, exactly like SendF32.
func (t *ChanTransport) ISendF32(dst, tag int, data []float32) PendingSend {
	t.SendF32(dst, tag, data)
	return PendingSend{}
}

// IRecvF32 posts a nonblocking receive. The fabric is push-based (the sender
// enqueues directly into the per-pair channel), so the message makes
// progress regardless of when Wait runs.
func (t *ChanTransport) IRecvF32(src, tag int) PendingRecvF32 {
	return PendingRecvF32{t: t, src: src, tag: tag}
}

// IRecvF32Notify posts a nonblocking receive with a completion
// notification; see Transport.IRecvF32Notify. Senders stamp the
// destination's ledger before enqueuing, so the token fires no earlier than
// the send that satisfies it.
func (t *ChanTransport) IRecvF32Notify(src, tag int, notify chan<- int, token int) PendingRecvF32 {
	t.s.regs[t.rank].register(src, tag, notify, token)
	return PendingRecvF32{t: t, src: src, tag: tag}
}

// RecycleF32 is a no-op: received slices belong to their sender (zero-copy
// delivery), so there is nothing to pool.
func (t *ChanTransport) RecycleF32([]float32) {}

// recv dequeues the next message from src, preferring queued messages over
// an abort so in-flight data is never lost.
func (t *ChanTransport) recv(src int) message {
	select {
	case msg := <-t.s.chans[src][t.rank]:
		return msg
	default:
	}
	select {
	case msg := <-t.s.chans[src][t.rank]:
		return msg
	case <-t.s.failCh:
		select {
		case msg := <-t.s.chans[src][t.rank]:
			return msg
		default:
			panic(&TransportError{Rank: t.rank, Err: t.s.failErr})
		}
	}
}

// RecvF32 receives the next float32 message from src, which must carry the
// expected tag; a tag mismatch means a protocol bug and panics.
func (t *ChanTransport) RecvF32(src, tag int) []float32 {
	msg := t.recv(src)
	if msg.tag != tag || msg.f32 == nil && len(msg.i32) > 0 {
		panic(fmt.Sprintf("comm: rank %d expected f32 tag %d from %d, got tag %d", t.rank, tag, src, msg.tag))
	}
	return msg.f32
}

// RecvI32 receives the next int32 message from src with the expected tag.
func (t *ChanTransport) RecvI32(src, tag int) []int32 {
	msg := t.recv(src)
	if msg.tag != tag || msg.i32 == nil && len(msg.f32) > 0 {
		panic(fmt.Sprintf("comm: rank %d expected i32 tag %d from %d, got tag %d", t.rank, tag, src, msg.tag))
	}
	return msg.i32
}

func (t *ChanTransport) account(bytes int) {
	t.s.bytesSent[t.rank].Add(int64(bytes))
	t.s.msgsSent[t.rank].Add(1)
}

// Barrier blocks until every rank has entered it, or panics with a
// *TransportError if the cluster is aborted while waiting (matching the TCP
// backend, whose barrier rides on fail-aware sends and receives).
func (t *ChanTransport) Barrier() {
	if t.s.barrier.wait() {
		panic(&TransportError{Rank: t.rank, Err: t.s.failErr})
	}
}

// BytesSent returns the payload bytes this rank has sent since the last
// ResetCounters.
func (t *ChanTransport) BytesSent() int64 { return t.s.bytesSent[t.rank].Load() }

// MessagesSent returns the number of messages this rank has sent.
func (t *ChanTransport) MessagesSent() int64 { return t.s.msgsSent[t.rank].Load() }

// ResetCounters zeroes this rank's byte and message counters.
func (t *ChanTransport) ResetCounters() {
	t.s.bytesSent[t.rank].Store(0)
	t.s.msgsSent[t.rank].Store(0)
}

// Abort poisons the shared fabric: every blocked and subsequent Send/Recv
// on any rank of this cluster panics with a *TransportError. (The fabric is
// shared state, so unlike the TCP backend one rank's abort fails the whole
// in-process cluster directly.)
func (t *ChanTransport) Abort() {
	t.s.fail(fmt.Errorf("transport aborted by rank %d", t.rank))
}

// Close is a no-op: channel endpoints hold no OS resources.
func (t *ChanTransport) Close() error { return nil }
