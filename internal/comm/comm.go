// Package comm provides the in-process message-passing substrate that stands
// in for Gloo/NCCL in the paper's setup: one goroutine per partition
// ("device"), tagged point-to-point sends and receives, AllReduce, variable
// AllGather, barriers, and per-worker byte accounting. The byte counters are
// exact and feed the cost model that projects wall-clock times onto the
// paper's hardware profiles.
package comm

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// message is one tagged payload between a (src,dst) pair. Exactly one of
// F32/I32 is non-nil.
type message struct {
	tag int
	f32 []float32
	i32 []int32
}

// Cluster is a group of m workers connected all-to-all. Create with New,
// then either call Run (which spawns one goroutine per worker) or obtain
// Workers manually for tests.
type Cluster struct {
	m         int
	chans     [][]chan message // chans[src][dst]
	barrier   *reusableBarrier
	bytesSent []atomic.Int64 // per source worker
	msgsSent  []atomic.Int64
	workers   []Worker
	ring      []ringScratch
}

// ringScratch holds the per-rank send buffer for the ring AllReduce's first
// reduce-scatter step (the only message whose payload cannot alias the
// caller's data). Two buffers alternate by call parity: before a rank can be
// two collectives ahead, its successor must have drained every message of
// the collective two back (each send in the ring transitively requires the
// whole ring to have progressed), so the buffer being rewritten is never
// still queued.
type ringScratch struct {
	bufs  [2][]float32
	calls uint64
}

// New creates a cluster of m workers. queueCap bounds the number of
// outstanding messages per directed pair; 0 selects a default large enough
// for the all-to-all exchange patterns used in training.
func New(m int, queueCap int) *Cluster {
	if m <= 0 {
		panic(fmt.Sprintf("comm: cluster size %d", m))
	}
	if queueCap <= 0 {
		queueCap = 256
	}
	c := &Cluster{
		m:         m,
		chans:     make([][]chan message, m),
		barrier:   newBarrier(m),
		bytesSent: make([]atomic.Int64, m),
		msgsSent:  make([]atomic.Int64, m),
		workers:   make([]Worker, m),
		ring:      make([]ringScratch, m),
	}
	for s := 0; s < m; s++ {
		c.chans[s] = make([]chan message, m)
		for d := 0; d < m; d++ {
			c.chans[s][d] = make(chan message, queueCap)
		}
		c.workers[s] = Worker{c: c, rank: s}
	}
	return c
}

// Size returns the number of workers.
func (c *Cluster) Size() int { return c.m }

// Worker returns the handle for the given rank.
func (c *Cluster) Worker(rank int) *Worker {
	if rank < 0 || rank >= c.m {
		panic(fmt.Sprintf("comm: rank %d out of [0,%d)", rank, c.m))
	}
	return &c.workers[rank]
}

// Run executes fn concurrently on every worker and waits for all to finish.
// A panic in any worker is re-raised (first one wins) after all goroutines
// have stopped or panicked.
func (c *Cluster) Run(fn func(w *Worker)) {
	var wg sync.WaitGroup
	panics := make(chan any, c.m)
	for r := 0; r < c.m; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics <- p
				}
			}()
			fn(c.Worker(rank))
		}(r)
	}
	wg.Wait()
	select {
	case p := <-panics:
		panic(p)
	default:
	}
}

// BytesSent returns the total payload bytes sent by rank since the last
// ResetCounters.
func (c *Cluster) BytesSent(rank int) int64 { return c.bytesSent[rank].Load() }

// TotalBytesSent sums BytesSent over all workers.
func (c *Cluster) TotalBytesSent() int64 {
	var t int64
	for r := 0; r < c.m; r++ {
		t += c.bytesSent[r].Load()
	}
	return t
}

// MessagesSent returns the number of messages sent by rank.
func (c *Cluster) MessagesSent(rank int) int64 { return c.msgsSent[rank].Load() }

// ResetCounters zeroes all byte and message counters.
func (c *Cluster) ResetCounters() {
	for r := 0; r < c.m; r++ {
		c.bytesSent[r].Store(0)
		c.msgsSent[r].Store(0)
	}
}

// Worker is one rank's endpoint in the cluster. Methods on a Worker must be
// called only from that worker's goroutine.
type Worker struct {
	c    *Cluster
	rank int
}

// Rank returns this worker's id in [0, Size).
func (w *Worker) Rank() int { return w.rank }

// Size returns the cluster size.
func (w *Worker) Size() int { return w.c.m }

// SendF32 sends a float32 payload to dst with a tag. The payload is not
// copied; the sender must not mutate it afterwards (matching real RDMA
// semantics where the buffer is owned by the transport until delivery).
func (w *Worker) SendF32(dst, tag int, data []float32) {
	w.account(4 * len(data))
	w.c.chans[w.rank][dst] <- message{tag: tag, f32: data}
}

// SendI32 sends an int32 payload to dst with a tag.
func (w *Worker) SendI32(dst, tag int, data []int32) {
	w.account(4 * len(data))
	w.c.chans[w.rank][dst] <- message{tag: tag, i32: data}
}

// RecvF32 receives the next float32 message from src, which must carry the
// expected tag; a tag mismatch means a protocol bug and panics.
func (w *Worker) RecvF32(src, tag int) []float32 {
	msg := <-w.c.chans[src][w.rank]
	if msg.tag != tag || msg.f32 == nil && len(msg.i32) > 0 {
		panic(fmt.Sprintf("comm: rank %d expected f32 tag %d from %d, got tag %d", w.rank, tag, src, msg.tag))
	}
	return msg.f32
}

// RecvI32 receives the next int32 message from src with the expected tag.
func (w *Worker) RecvI32(src, tag int) []int32 {
	msg := <-w.c.chans[src][w.rank]
	if msg.tag != tag || msg.i32 == nil && len(msg.f32) > 0 {
		panic(fmt.Sprintf("comm: rank %d expected i32 tag %d from %d, got tag %d", w.rank, tag, src, msg.tag))
	}
	return msg.i32
}

func (w *Worker) account(bytes int) {
	w.c.bytesSent[w.rank].Add(int64(bytes))
	w.c.msgsSent[w.rank].Add(1)
}

// Barrier blocks until every worker has entered it.
func (w *Worker) Barrier() { w.c.barrier.wait() }

// AllReduceSum sums data elementwise across all workers; on return every
// worker's slice holds the global sum, bit-identical on every rank.
//
// The implementation is a ring reduce-scatter followed by a ring all-gather
// (the collective structure NCCL and Gloo use): data is split into m chunks;
// in m−1 steps each rank forwards a partially-reduced chunk to its successor
// while accumulating the chunk arriving from its predecessor, leaving rank r
// with the fully-reduced chunk (r+1) mod m; m−1 further forwarding steps
// distribute the finished chunks. Every rank sends 2(m−1)·n/m ≈ 2n floats
// regardless of m, versus the O(m·n) a reduce-to-root places on rank 0.
// Each chunk's final value is computed once and copied verbatim by the
// all-gather, so all ranks observe identical bits.
func (w *Worker) AllReduceSum(data []float32, tag int) {
	m := w.c.m
	n := len(data)
	if m == 1 || n == 0 {
		return
	}
	lo := func(c int) int { return c * n / m }
	hi := func(c int) int { return (c + 1) * n / m }
	next := (w.rank + 1) % m
	prev := (w.rank + m - 1) % m

	// Step-0 send must not alias data (the chunk is overwritten by the
	// all-gather before the message is necessarily consumed); copy it into
	// the parity-alternating scratch buffer. Every later send forwards a
	// received buffer, whose ownership travels with the message.
	rs := &w.c.ring[w.rank]
	scratch := rs.bufs[rs.calls&1]
	rs.calls++
	own := w.rank
	sz := hi(own) - lo(own)
	if cap(scratch) < sz {
		scratch = make([]float32, sz)
		rs.bufs[(rs.calls-1)&1] = scratch
	}
	scratch = scratch[:sz]
	copy(scratch, data[lo(own):hi(own)])
	w.SendF32(next, tag, scratch)

	// Reduce-scatter: accumulate the incoming chunk into the received
	// buffer (data stays untouched until the final values arrive) and pass
	// it on.
	var part []float32
	for s := 0; s < m-1; s++ {
		c := (w.rank - s - 1 + m) % m
		part = w.RecvF32(prev, tag)
		seg := data[lo(c):hi(c)]
		if len(part) != len(seg) {
			panic(fmt.Sprintf("comm: allreduce length mismatch %d vs %d", len(part), len(seg)))
		}
		for i, v := range seg {
			part[i] += v
		}
		if s < m-2 {
			w.SendF32(next, tag, part)
		}
	}

	// part now holds the fully reduced chunk (rank+1) mod m.
	done := (w.rank + 1) % m
	copy(data[lo(done):hi(done)], part)

	// All-gather: circulate the finished chunks around the ring.
	w.SendF32(next, tag+1, part)
	for s := 0; s < m-1; s++ {
		c := (w.rank - s + m) % m
		got := w.RecvF32(prev, tag+1)
		copy(data[lo(c):hi(c)], got)
		if s < m-2 {
			w.SendF32(next, tag+1, got)
		}
	}
}

// AllGatherI32 gathers each worker's variable-length int32 slice; the result
// is indexed by rank and identical on every worker.
func (w *Worker) AllGatherI32(data []int32, tag int) [][]int32 {
	m := w.c.m
	out := make([][]int32, m)
	own := make([]int32, len(data))
	copy(own, data)
	out[w.rank] = own
	for dst := 0; dst < m; dst++ {
		if dst != w.rank {
			w.SendI32(dst, tag, own)
		}
	}
	for src := 0; src < m; src++ {
		if src != w.rank {
			out[src] = w.RecvI32(src, tag)
		}
	}
	return out
}

// reusableBarrier is a generation-counted barrier usable repeatedly.
type reusableBarrier struct {
	mu    sync.Mutex
	cond  *sync.Cond
	n     int
	count int
	gen   int
}

func newBarrier(n int) *reusableBarrier {
	b := &reusableBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *reusableBarrier) wait() {
	b.mu.Lock()
	gen := b.gen
	b.count++
	if b.count == b.n {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
	} else {
		for gen == b.gen {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}
