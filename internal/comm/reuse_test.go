package comm

import (
	"sync/atomic"
	"testing"
)

// TestClusterReusedAcrossRuns: the trainer calls Run once per epoch on the
// same cluster; channels must be drained and counters must accumulate.
func TestClusterReusedAcrossRuns(t *testing.T) {
	c := New(3, 0)
	for epoch := 0; epoch < 10; epoch++ {
		c.Run(func(w *Worker) {
			next := (w.Rank() + 1) % 3
			prev := (w.Rank() + 2) % 3
			w.SendF32(next, epoch, []float32{float32(epoch)})
			got := w.RecvF32(prev, epoch)
			if got[0] != float32(epoch) {
				t.Errorf("epoch %d: got %v", epoch, got[0])
			}
			w.Barrier()
		})
	}
	if got := c.MessagesSent(0); got != 10 {
		t.Fatalf("rank 0 sent %d messages, want 10", got)
	}
}

func TestAllGatherEmptySlices(t *testing.T) {
	c := New(3, 0)
	c.Run(func(w *Worker) {
		var own []int32
		if w.Rank() == 1 {
			own = []int32{42}
		}
		got := w.AllGatherI32(own, 0)
		if len(got[0]) != 0 || len(got[2]) != 0 {
			t.Errorf("rank %d: empty slices not preserved: %v", w.Rank(), got)
		}
		if len(got[1]) != 1 || got[1][0] != 42 {
			t.Errorf("rank %d: lost rank 1 payload: %v", w.Rank(), got)
		}
	})
}

func TestAllReduceEmptyVector(t *testing.T) {
	c := New(2, 0)
	c.Run(func(w *Worker) {
		w.AllReduceSum(nil, 0) // must not deadlock or panic
	})
}

func TestSingleWorkerCluster(t *testing.T) {
	c := New(1, 0)
	var ran atomic.Bool
	c.Run(func(w *Worker) {
		data := []float32{3}
		w.AllReduceSum(data, 0)
		if data[0] != 3 {
			t.Errorf("m=1 allreduce changed data: %v", data)
		}
		w.Barrier()
		ran.Store(true)
	})
	if !ran.Load() {
		t.Fatal("worker did not run")
	}
}

func TestConcurrentBidirectionalTraffic(t *testing.T) {
	// Every pair exchanges simultaneously in both directions across many
	// rounds — the pattern the per-layer halo exchange produces.
	const m = 5
	c := New(m, 0)
	c.Run(func(w *Worker) {
		for round := 0; round < 20; round++ {
			for dst := 0; dst < m; dst++ {
				if dst != w.Rank() {
					w.SendF32(dst, round, []float32{float32(w.Rank()*1000 + round)})
				}
			}
			for src := 0; src < m; src++ {
				if src != w.Rank() {
					got := w.RecvF32(src, round)
					if got[0] != float32(src*1000+round) {
						t.Errorf("round %d: from %d got %v", round, src, got[0])
					}
				}
			}
		}
	})
}
