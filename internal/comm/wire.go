package comm

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"slices"
)

// Wire codec for the TCP transport. Every frame is a fixed 12-byte
// little-endian header followed by the payload:
//
//	offset 0: uint32 tag
//	offset 4: uint8  dtype (dtypeF32, dtypeI32, dtypeCtrl)
//	offset 5: three reserved bytes, must be zero
//	offset 8: uint32 nelems — number of 4-byte payload elements
//
// The header carries an element count rather than a byte length so a frame
// can never describe a payload that is not a multiple of the element size,
// and nelems is capped at maxFrameElems so a corrupt or hostile header
// cannot make the reader allocate unboundedly. Decoding rejects truncated
// input, oversized lengths, unknown dtypes, and non-zero reserved bytes
// with errors — never panics — which FuzzFrameRoundTrip exercises.

const (
	frameHeaderSize = 12
	maxFrameElems   = 1 << 28 // 1 GiB of payload

	dtypeF32  byte = 0
	dtypeI32  byte = 1
	dtypeCtrl byte = 2 // transport-internal: barrier, goodbye, handshake
)

// frame is one decoded wire message. payload holds the raw little-endian
// element bytes (len = 4·nelems) and is owned by the frame.
type frame struct {
	tag     int
	dtype   byte
	payload []byte
}

// encodeFrameHeader validates and appends the 12-byte header.
func encodeFrameHeader(dst []byte, tag int, dtype byte, nelems int) ([]byte, error) {
	if tag < 0 || int64(tag) > math.MaxUint32 {
		return dst, fmt.Errorf("comm: frame tag %d outside uint32", tag)
	}
	if dtype > dtypeCtrl {
		return dst, fmt.Errorf("comm: unknown frame dtype %d", dtype)
	}
	if nelems < 0 || nelems > maxFrameElems {
		return dst, fmt.Errorf("comm: frame length %d elements exceeds cap %d", nelems, maxFrameElems)
	}
	var h [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(tag))
	h[4] = dtype
	binary.LittleEndian.PutUint32(h[8:], uint32(nelems))
	return append(dst, h[:]...), nil
}

// appendFrameBytes appends a whole frame whose payload is already serialized
// (len must be a multiple of 4).
func appendFrameBytes(dst []byte, tag int, dtype byte, payload []byte) ([]byte, error) {
	if len(payload)%4 != 0 {
		return dst, fmt.Errorf("comm: frame payload %d bytes is not element-aligned", len(payload))
	}
	dst, err := encodeFrameHeader(dst, tag, dtype, len(payload)/4)
	if err != nil {
		return dst, err
	}
	return append(dst, payload...), nil
}

// appendFrameF32 serializes a float32 payload frame.
func appendFrameF32(dst []byte, tag int, data []float32) ([]byte, error) {
	dst, err := encodeFrameHeader(dst, tag, dtypeF32, len(data))
	if err != nil {
		return dst, err
	}
	n := len(dst)
	dst = slices.Grow(dst, 4*len(data))[:n+4*len(data)]
	for i, v := range data {
		binary.LittleEndian.PutUint32(dst[n+4*i:], math.Float32bits(v))
	}
	return dst, nil
}

// appendFrameI32 serializes an int32 payload frame.
func appendFrameI32(dst []byte, tag int, data []int32) ([]byte, error) {
	dst, err := encodeFrameHeader(dst, tag, dtypeI32, len(data))
	if err != nil {
		return dst, err
	}
	n := len(dst)
	dst = slices.Grow(dst, 4*len(data))[:n+4*len(data)]
	for i, v := range data {
		binary.LittleEndian.PutUint32(dst[n+4*i:], uint32(v))
	}
	return dst, nil
}

// parseFrameHeader validates a 12-byte header and returns (tag, dtype,
// nelems).
func parseFrameHeader(h []byte) (int, byte, int, error) {
	if len(h) < frameHeaderSize {
		return 0, 0, 0, fmt.Errorf("comm: truncated frame header: %d of %d bytes", len(h), frameHeaderSize)
	}
	tag := int(binary.LittleEndian.Uint32(h[0:]))
	dtype := h[4]
	if dtype > dtypeCtrl {
		return 0, 0, 0, fmt.Errorf("comm: unknown frame dtype %d", dtype)
	}
	if h[5] != 0 || h[6] != 0 || h[7] != 0 {
		return 0, 0, 0, fmt.Errorf("comm: non-zero reserved bytes in frame header")
	}
	// Compare as uint32: on 32-bit platforms int(n) would wrap negative for
	// n ≥ 2³¹ and slip past a signed bound check into a panicking make.
	n := binary.LittleEndian.Uint32(h[8:])
	if n > maxFrameElems {
		return 0, 0, 0, fmt.Errorf("comm: frame length %d elements exceeds cap %d", n, maxFrameElems)
	}
	return tag, dtype, int(n), nil
}

// decodeFrame parses one frame from the front of b, returning the frame and
// the number of bytes consumed. The frame's payload aliases b. Truncated or
// malformed input yields an error, never a panic.
func decodeFrame(b []byte) (frame, int, error) {
	tag, dtype, nelems, err := parseFrameHeader(b)
	if err != nil {
		return frame{}, 0, err
	}
	need := frameHeaderSize + 4*nelems
	if len(b) < need {
		return frame{}, 0, fmt.Errorf("comm: truncated frame payload: %d of %d bytes", len(b)-frameHeaderSize, 4*nelems)
	}
	return frame{tag: tag, dtype: dtype, payload: b[frameHeaderSize:need]}, need, nil
}

// readFrame reads one frame from r, allocating the payload (its ownership
// passes to the eventual receiver).
func readFrame(r io.Reader) (frame, error) {
	var h [frameHeaderSize]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return frame{}, err
	}
	tag, dtype, nelems, err := parseFrameHeader(h[:])
	if err != nil {
		return frame{}, err
	}
	payload := make([]byte, 4*nelems)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	return frame{tag: tag, dtype: dtype, payload: payload}, nil
}

// payloadF32 decodes a frame payload into float32s (exact bit round-trip).
func payloadF32(b []byte) []float32 {
	out := make([]float32, len(b)/4)
	decodeF32Into(out, b)
	return out
}

// decodeF32Into decodes a frame payload into a caller-owned slice of length
// len(b)/4 (exact bit round-trip); the receive path pairs it with pooled
// buffers so steady-state epochs allocate nothing.
func decodeF32Into(dst []float32, b []byte) {
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
}

// payloadI32 decodes a frame payload into int32s.
func payloadI32(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}
