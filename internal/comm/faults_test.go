package comm

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// TestWithFaultsKillAtMessage: the victim's n'th payload send must panic
// with a *TransportError wrapping *InjectedFault at exactly the planned
// ordinal, and every peer must observe the death through the normal
// transport-failure path rather than deadlocking.
func TestWithFaultsKillAtMessage(t *testing.T) {
	const k, victim, atMsg = 3, 1, 4
	g := WithFaults(New(k, 0), KillAtMessage(victim, atMsg))
	panics := make([]any, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			defer func() { panics[r] = recover() }()
			w := g.Worker(r)
			for i := 0; ; i++ {
				w.SendF32((r+1)%k, i, []float32{float32(i)})
				w.RecvF32((r+k-1)%k, i)
			}
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("ranks did not unblock after the injected kill")
	}
	for r, p := range panics {
		te, ok := p.(*TransportError)
		if !ok {
			t.Fatalf("rank %d: panic value %T, want *TransportError", r, p)
		}
		var inj *InjectedFault
		if r == victim {
			if !errors.As(te, &inj) {
				t.Fatalf("victim error %v does not wrap *InjectedFault", te)
			}
			if inj.Rank != victim || inj.Message != atMsg {
				t.Fatalf("fault fired at wrong point: %+v", inj)
			}
		}
	}
}

// TestWithFaultsKillAtMessageDeterministic: the victim dies at the same
// message ordinal on every run — the property that makes mid-epoch kill
// tests reproducible.
func TestWithFaultsKillAtMessageDeterministic(t *testing.T) {
	run := func() int {
		g := WithFaults(New(2, 0), KillAtMessage(0, 7))
		var got int
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil && r == 0 {
						var inj *InjectedFault
						if errors.As(p.(*TransportError), &inj) {
							got = inj.Message
						}
					}
				}()
				w := g.Worker(r)
				for i := 0; ; i++ {
					if r == 0 {
						w.SendF32(1, i, []float32{1})
					} else {
						w.RecvF32(0, i)
					}
				}
			}(r)
		}
		wg.Wait()
		return got
	}
	if a, b := run(), run(); a != b || a != 7 {
		t.Fatalf("kill ordinal varied across runs: %d vs %d (want 7)", a, b)
	}
}

// TestWithFaultsISendCounted: async sends count toward the message ordinal
// like synchronous ones (the pipelined schedule uses ISendF32 exclusively).
func TestWithFaultsISendCounted(t *testing.T) {
	g := WithFaults(New(2, 0), KillAtMessage(0, 2))
	w := g.Worker(0)
	w.Transport().ISendF32(1, 1, []float32{1}) // msg 0
	w.Transport().ISendF32(1, 2, []float32{2}) // msg 1
	defer func() {
		p := recover()
		te, ok := p.(*TransportError)
		if !ok {
			t.Fatalf("panic value %T, want *TransportError", p)
		}
		var inj *InjectedFault
		if !errors.As(te, &inj) || inj.Message != 2 {
			t.Fatalf("expected injected fault at message 2, got %v", te)
		}
	}()
	w.Transport().ISendF32(1, 3, []float32{3}) // msg 2: boom
	t.Fatal("third ISendF32 did not fire the fault")
}

// TestWithFaultsKillAtEpoch: MarkEpoch fires the kill on the planned rank
// at the planned epoch, returns nil everywhere else, fires only once, and
// poisons the group so peers fail too.
func TestWithFaultsKillAtEpoch(t *testing.T) {
	const k, victim, atEpoch = 3, 2, 2
	g := WithFaults(New(k, 0), KillAtEpoch(victim, atEpoch))
	for epoch := 0; epoch < atEpoch; epoch++ {
		for r := 0; r < k; r++ {
			if err := MarkEpoch(g.Worker(r).Transport(), epoch); err != nil {
				t.Fatalf("rank %d epoch %d: premature fault %v", r, epoch, err)
			}
		}
	}
	err := MarkEpoch(g.Worker(victim).Transport(), atEpoch)
	var inj *InjectedFault
	if !errors.As(err, &inj) || inj.Rank != victim || inj.Epoch != atEpoch {
		t.Fatalf("expected injected fault at epoch %d, got %v", atEpoch, err)
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("fault %v is not a *TransportError — recovery loops dispatch on that type", err)
	}
	// One-shot: marking again must not re-fire.
	if err := MarkEpoch(g.Worker(victim).Transport(), atEpoch+1); err != nil {
		t.Fatalf("fault fired twice: %v", err)
	}
	// The abort reached the fabric: a survivor's blocking op must fail.
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		g.Worker(0).RecvF32(1, 9)
	}()
	select {
	case p := <-done:
		if _, ok := p.(*TransportError); !ok {
			t.Fatalf("survivor saw %v, want *TransportError", p)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("survivor deadlocked after injected epoch kill")
	}
}

// TestMarkEpochNoOpOnPlainTransports: un-decorated endpoints ignore epoch
// marks, so drivers can call MarkEpoch unconditionally.
func TestMarkEpochNoOpOnPlainTransports(t *testing.T) {
	c := New(2, 0)
	for r := 0; r < 2; r++ {
		if err := MarkEpoch(c.Worker(r).Transport(), 3); err != nil {
			t.Fatalf("plain transport returned %v from MarkEpoch", err)
		}
	}
}

// TestWithFaultsDisarmedPlanIsInert: a NewFaultPlan with no trigger set
// never fires, and un-planned ranks train through unperturbed.
func TestWithFaultsDisarmedPlanIsInert(t *testing.T) {
	g := WithFaults(New(2, 0), NewFaultPlan(0))
	g.Run(func(w *Worker) {
		if err := MarkEpoch(w.Transport(), 0); err != nil {
			t.Errorf("disarmed plan fired: %v", err)
		}
		if w.Rank() == 0 {
			w.SendF32(1, 1, []float32{42})
		} else if got := w.RecvF32(0, 1); got[0] != 42 {
			t.Errorf("payload corrupted: %v", got)
		}
	})
}
